package routergeo_test

import (
	"fmt"
	"os"

	"routergeo"
)

// Example shows the minimal end-to-end flow: build a study, list the
// simulated databases, and query one of them.
func Example() {
	study, err := routergeo.New(routergeo.Quick(), routergeo.WithSeed(3))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	for _, db := range study.Databases() {
		fmt.Println(db)
	}
	// Output:
	// IP2Location-Lite
	// MaxMind-GeoLite
	// MaxMind-Paid
	// NetAcuity
}

// ExampleStudy_Accuracy evaluates one database against the ground truth,
// the paper's §5.2 headline measurement.
func ExampleStudy_Accuracy() {
	study, err := routergeo.New(routergeo.Quick(), routergeo.WithSeed(3))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	acc := study.Accuracy("NetAcuity")
	// NetAcuity's near-total coverage is structural (its pipeline emits a
	// record for every allocation), so this is stable across seeds.
	fmt.Printf("full city coverage: %v\n", acc.CityCoverage > 0.99)
	fmt.Printf("answers scored: %v\n", acc.Targets > 0)
	// Output:
	// full city coverage: true
	// answers scored: true
}

// ExampleStudy_RunExperiment regenerates one of the paper's artifacts.
func ExampleStudy_RunExperiment() {
	study, err := routergeo.New(routergeo.Quick(), routergeo.WithSeed(3))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	// Every artifact is addressable by ID; see ExperimentIDs().
	fmt.Println(len(routergeo.ExperimentIDs()), "experiments")
	err = study.RunExperiment("rec", os.Stderr) // write §6 to stderr
	fmt.Println("ran:", err == nil)
	// Output:
	// 14 experiments
	// ran: true
}
