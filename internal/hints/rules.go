package hints

import (
	"strings"

	"routergeo/internal/gazetteer"
)

// Rule is one domain-specific decode rule: given the dot-split labels of a
// hostname (suffix already matched), it returns the candidate location
// token, or "" when the name carries no hint.
type Rule struct {
	// Suffix is the operator domain the rule applies to, e.g. "ntt.net".
	// The empty suffix is the generic fallback rule.
	Suffix string
	// Extract pulls the raw token out of the labels *preceding* the suffix.
	Extract func(labels []string) string
}

// Decoder resolves hostnames to cities using a rule set and a dictionary —
// the DRoP pipeline. The paper only trusts rules for the seven domains
// whose operators confirmed them; Decode reports which rule fired so
// callers can apply the same restriction.
type Decoder struct {
	dict    *Dictionary
	rules   map[string]Rule // by suffix
	generic Rule
}

// NewDecoder builds a decoder with the built-in rules for the seven
// ground-truth domains plus the generic fallback.
func NewDecoder(dict *Dictionary) *Decoder {
	d := &Decoder{dict: dict, rules: make(map[string]Rule)}
	for _, r := range builtinRules() {
		if r.Suffix == "" {
			d.generic = r
			continue
		}
		d.rules[r.Suffix] = r
	}
	return d
}

// GroundTruthDomains lists the seven operator domains with
// operator-confirmed rules (§2.3.1).
func GroundTruthDomains() []string {
	return []string{
		"belwue.de", "cogentco.com", "digitalwest.net", "ntt.net",
		"peak10.net", "seabone.net", "pnap.net",
	}
}

// Decode resolves a hostname. It returns the matched city, the suffix of
// the rule that fired ("" for the generic rule), and ok=false when no rule
// matched or the token was not in the dictionary.
func (d *Decoder) Decode(hostname string) (city gazetteer.City, domain string, ok bool) {
	hostname = strings.ToLower(strings.TrimSuffix(hostname, "."))
	labels := strings.Split(hostname, ".")
	if len(labels) < 3 {
		return gazetteer.City{}, "", false
	}
	// Try the two- and three-label suffixes against the rule table.
	for take := 2; take <= 3 && take < len(labels); take++ {
		suffix := strings.Join(labels[len(labels)-take:], ".")
		rule, found := d.rules[suffix]
		if !found {
			continue
		}
		tok := rule.Extract(labels[:len(labels)-take])
		if tok == "" {
			return gazetteer.City{}, "", false
		}
		c, resolved := d.dict.Lookup(tok)
		if !resolved {
			return gazetteer.City{}, "", false
		}
		return c, suffix, true
	}
	// Generic rule: applies to any other domain.
	if d.generic.Extract != nil {
		if tok := d.generic.Extract(labels[:len(labels)-2]); tok != "" {
			if c, resolved := d.dict.Lookup(tok); resolved {
				return c, "", true
			}
		}
	}
	return gazetteer.City{}, "", false
}

// stripDigits removes trailing decimal digits from a label.
func stripDigits(s string) string {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	return s[:i]
}

// builtinRules returns the decode rules matching internal/rdns's hostname
// grammars. Each rule mirrors the operator's real-world naming style:
//
//	cogent:      be2390.ccr41.jfk02.atlas.cogentco.com  -> "jfk"
//	ntt:         ae-5.r23.dllsus09.us.bb.gin.ntt.net    -> "dllsus"
//	seabone:     xe-3.rome7.fco.seabone.net             -> "fco"
//	pnap:        core2.atl009.pnap.net                  -> "atl"
//	peak10:      clt01-rtr2.peak10.net                  -> "clt"
//	digitalwest: edge1.sbp.digitalwest.net              -> "sbp"
//	belwue:      stuttgart-rtr1.belwue.de               -> "stuttgart"
//	generic:     r7.fra02.as64599.net                   -> "fra"
func builtinRules() []Rule {
	label := func(labels []string, fromEnd int) string {
		i := len(labels) - fromEnd
		if i < 0 || i >= len(labels) {
			return ""
		}
		return labels[i]
	}
	return []Rule{
		{Suffix: "cogentco.com", Extract: func(l []string) string {
			// ...ccrNN.<tok>NN.atlas  — token is 2nd from the end ("atlas"
			// is the trailing label before the domain).
			if label(l, 1) != "atlas" {
				return ""
			}
			return stripDigits(label(l, 2))
		}},
		{Suffix: "ntt.net", Extract: func(l []string) string {
			// ae-K.rNN.<tok>NN.<cc>.bb.gin — token is 4th from the end.
			if label(l, 1) != "gin" || label(l, 2) != "bb" {
				return ""
			}
			return stripDigits(label(l, 4))
		}},
		{Suffix: "seabone.net", Extract: func(l []string) string {
			// xe-K.<cityname>NN.<iata> — prefer the IATA label, fall back
			// to the city-name label.
			if tok := label(l, 1); tok != "" && len(tok) == 3 {
				return tok
			}
			return stripDigits(label(l, 2))
		}},
		{Suffix: "pnap.net", Extract: func(l []string) string {
			// coreK.<tok>NNN
			return stripDigits(label(l, 1))
		}},
		{Suffix: "peak10.net", Extract: func(l []string) string {
			// <tok>NN-rtrK
			head, _, found := strings.Cut(label(l, 1), "-")
			if !found {
				return ""
			}
			return stripDigits(head)
		}},
		{Suffix: "digitalwest.net", Extract: func(l []string) string {
			// edgeK.<tok>
			return label(l, 1)
		}},
		{Suffix: "belwue.de", Extract: func(l []string) string {
			// <cityname>-rtrK
			head, _, found := strings.Cut(label(l, 1), "-")
			if !found {
				return ""
			}
			return head
		}},
		{Suffix: "", Extract: func(l []string) string {
			// rK.<tok>NN — the generic scheme used by synthetic operators.
			// Names like rK.popNN.<domain> yield the token "pop", which the
			// dictionary will not resolve.
			return stripDigits(label(l, 1))
		}},
	}
}
