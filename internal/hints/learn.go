package hints

import (
	"sort"
	"strings"
)

// Example is one training pair for rule inference: a hostname whose
// interface's location is known (from latency proximity, in DRoP's case).
type Example struct {
	Hostname string
	// Country and City name the known location, matched against the
	// dictionary's cities.
	Country string
	City    string
}

// LearnedRule is an inferred domain-specific extraction rule, the artifact
// DRoP (Huffaker et al. 2014) mines from measurement data: for hostnames
// under Suffix, the location token sits in the LabelFromEnd-th label
// before the suffix (1 = rightmost), optionally as the head of a
// dash-separated label, with trailing digits stripped.
type LearnedRule struct {
	Suffix       string
	LabelFromEnd int
	DashHead     bool
	// Support is the number of training examples the rule decoded;
	// Accuracy the fraction it decoded to the correct city.
	Support  int
	Accuracy float64
}

// Extract applies the learned rule to the labels preceding the suffix,
// mirroring Rule.Extract.
func (r LearnedRule) Extract(labels []string) string {
	i := len(labels) - r.LabelFromEnd
	if i < 0 || i >= len(labels) {
		return ""
	}
	tok := labels[i]
	if r.DashHead {
		head, _, found := strings.Cut(tok, "-")
		if !found {
			return ""
		}
		tok = head
	}
	return stripDigits(tok)
}

// AsRule converts the learned rule into the decoder's rule shape.
func (r LearnedRule) AsRule() Rule {
	return Rule{Suffix: r.Suffix, Extract: r.Extract}
}

// LearnRules infers per-domain extraction rules from training examples.
// For every two-label domain suffix with at least minSupport examples it
// tries each candidate token position (and the dash-head variant) and
// keeps the best-scoring candidate whose accuracy reaches minAccuracy.
// Rules are returned sorted by suffix.
//
// This is the data-driven counterpart to the operator-confirmed rules in
// NewDecoder: DRoP learned its 1,398 domain rules exactly this way, and
// the paper trusted only the seven with operator confirmation.
func LearnRules(dict *Dictionary, samples []Example, minSupport int, minAccuracy float64) []LearnedRule {
	byDomain := map[string][]Example{}
	for _, s := range samples {
		host := strings.ToLower(strings.TrimSuffix(s.Hostname, "."))
		labels := strings.Split(host, ".")
		if len(labels) < 3 {
			continue
		}
		suffix := strings.Join(labels[len(labels)-2:], ".")
		byDomain[suffix] = append(byDomain[suffix], s)
	}

	var out []LearnedRule
	for suffix, examples := range byDomain {
		if len(examples) < minSupport {
			continue
		}
		best := LearnedRule{}
		bestCorrect := 0
		for labelFromEnd := 1; labelFromEnd <= 6; labelFromEnd++ {
			for _, dashHead := range []bool{false, true} {
				cand := LearnedRule{Suffix: suffix, LabelFromEnd: labelFromEnd, DashHead: dashHead}
				support, correct := score(dict, cand, examples)
				// Prefer more correct decodes; break ties toward the
				// simpler rule (no dash handling, rightmost label).
				if correct > bestCorrect {
					cand.Support = support
					cand.Accuracy = float64(correct) / float64(support)
					best, bestCorrect = cand, correct
				}
			}
		}
		if bestCorrect >= minSupport && best.Accuracy >= minAccuracy {
			out = append(out, best)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Suffix < out[j].Suffix })
	return out
}

// score counts how many examples a candidate rule decodes (support) and
// how many of those land on the example's known city (correct).
func score(dict *Dictionary, r LearnedRule, examples []Example) (support, correct int) {
	for _, ex := range examples {
		host := strings.ToLower(strings.TrimSuffix(ex.Hostname, "."))
		labels := strings.Split(host, ".")
		if len(labels) < 2 {
			continue
		}
		tok := r.Extract(labels[:len(labels)-2])
		if tok == "" {
			continue
		}
		city, ok := dict.Lookup(tok)
		if !ok {
			continue
		}
		support++
		if city.Country == ex.Country && city.Name == ex.City {
			correct++
		}
	}
	return support, correct
}

// DecoderWithLearned builds a decoder that uses the learned rules (plus
// the generic fallback), so a learned rule set can drive the same
// ground-truth pipeline as the built-in one.
func DecoderWithLearned(dict *Dictionary, rules []LearnedRule) *Decoder {
	d := &Decoder{dict: dict, rules: make(map[string]Rule)}
	for _, r := range builtinRules() {
		if r.Suffix == "" {
			d.generic = r
		}
	}
	for _, lr := range rules {
		d.rules[lr.Suffix] = lr.AsRule()
	}
	return d
}
