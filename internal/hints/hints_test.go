package hints

import (
	"strings"
	"testing"

	"routergeo/internal/gazetteer"
)

func TestDictionaryTokensResolve(t *testing.T) {
	g := gazetteer.New()
	d := NewDictionary(g)
	if d.Size() < 300 {
		t.Errorf("dictionary has only %d tokens", d.Size())
	}
	// IATA tokens.
	dfw, ok := d.Lookup("DFW")
	if !ok || dfw.Name != "Dallas" {
		t.Errorf("Lookup(DFW) = %+v, %v", dfw, ok)
	}
	// Every city with an IATA code must resolve through it.
	for _, c := range g.Cities() {
		if c.IATA == "" {
			continue
		}
		got, ok := d.Lookup(c.IATA)
		if !ok || got.Name != c.Name || got.Country != c.Country {
			t.Errorf("IATA %s resolves to %v, want %s/%s", c.IATA, got, c.Country, c.Name)
		}
	}
}

func TestSiteCodesRoundTrip(t *testing.T) {
	g := gazetteer.New()
	d := NewDictionary(g)
	assigned := 0
	for _, c := range g.Cities() {
		code := d.SiteCode(c)
		if code == "" {
			continue
		}
		assigned++
		got, ok := d.Lookup(code)
		if !ok || got.Name != c.Name || got.Country != c.Country {
			t.Errorf("site code %q resolves to %v, want %s/%s", code, got, c.Country, c.Name)
		}
	}
	// Nearly every city should receive a collision-free site code.
	if frac := float64(assigned) / float64(len(g.Cities())); frac < 0.95 {
		t.Errorf("only %.0f%% of cities have site codes", frac*100)
	}
}

func TestAmbiguousCityNamesDropped(t *testing.T) {
	g := gazetteer.New()
	d := NewDictionary(g)
	// "birmingham" exists in US and GB; the bare name must not resolve
	// (unless an IATA/site code happens to spell it, which it does not).
	if c, ok := d.Lookup("birmingham"); ok {
		t.Errorf("ambiguous name resolved to %v", c)
	}
	// Unambiguous names resolve.
	if c, ok := d.Lookup("stuttgart"); !ok || c.Country != "DE" {
		t.Errorf("Lookup(stuttgart) = %v, %v", c, ok)
	}
}

func TestBestTokenAlwaysDecodes(t *testing.T) {
	g := gazetteer.New()
	d := NewDictionary(g)
	missing := 0
	for _, c := range g.Cities() {
		tok, ok := d.BestToken(c)
		if !ok {
			missing++
			continue
		}
		got, ok := d.Lookup(tok)
		if !ok || got.Name != c.Name || got.Country != c.Country {
			t.Errorf("BestToken(%s/%s) = %q resolves to %v", c.Country, c.Name, tok, got)
		}
	}
	if missing > 2 {
		t.Errorf("%d cities have no usable token", missing)
	}
}

func TestDecodeOperatorNames(t *testing.T) {
	g := gazetteer.New()
	d := NewDecoder(NewDictionary(g))
	tests := []struct {
		host   string
		city   string
		domain string
	}{
		{"be2390.ccr41.jfk02.atlas.cogentco.com", "New York", "cogentco.com"},
		{"ae-5.r23.dfw09.us.bb.gin.ntt.net", "Dallas", "ntt.net"},
		{"xe-3.rome7.fco.seabone.net", "Rome", "seabone.net"},
		{"core2.atl009.pnap.net", "Atlanta", "pnap.net"},
		{"clt01-rtr2.peak10.net", "Charlotte", "peak10.net"},
		{"edge1.sbp.digitalwest.net", "San Luis Obispo", "digitalwest.net"},
		{"stuttgart-rtr1.belwue.de", "Stuttgart", "belwue.de"},
		{"r7.fra02.as64599.net", "Frankfurt", ""},
	}
	for _, tt := range tests {
		city, domain, ok := d.Decode(tt.host)
		if !ok {
			t.Errorf("Decode(%s) failed", tt.host)
			continue
		}
		if city.Name != tt.city {
			t.Errorf("Decode(%s) = %s, want %s", tt.host, city.Name, tt.city)
		}
		if domain != tt.domain {
			t.Errorf("Decode(%s) domain = %q, want %q", tt.host, domain, tt.domain)
		}
	}
}

func TestDecodeRejectsHintFreeNames(t *testing.T) {
	g := gazetteer.New()
	d := NewDecoder(NewDictionary(g))
	for _, host := range []string{
		"be77.ccr12.core03.atlas.cogentco.com",
		"ae-1.r05.core02.us.bb.gin.ntt.net",
		"xe-2.trunk1234.bb.seabone.net",
		"core1.pod042.pnap.net",
		"mgmt03-rtr1.peak10.net",
		"edge9.mgmt.digitalwest.net",
		"bw-rtr7.belwue.de",
		"r12.pop07.as64600.net",
		"ip-10-1-2-3.as64601.net",
		"ip-4-4-4-4.ntt.net",
		"localhost",
		"",
	} {
		if city, _, ok := d.Decode(host); ok {
			t.Errorf("Decode(%q) unexpectedly resolved to %s/%s", host, city.Country, city.Name)
		}
	}
}

func TestDecodeCaseAndTrailingDot(t *testing.T) {
	g := gazetteer.New()
	d := NewDecoder(NewDictionary(g))
	city, _, ok := d.Decode("CORE2.ATL009.PNAP.NET.")
	if !ok || city.Name != "Atlanta" {
		t.Errorf("case/dot-insensitive decode failed: %v %v", city, ok)
	}
}

func TestGroundTruthDomainsAreSeven(t *testing.T) {
	ds := GroundTruthDomains()
	if len(ds) != 7 {
		t.Fatalf("got %d ground-truth domains", len(ds))
	}
	for _, d := range ds {
		if !strings.Contains(d, ".") {
			t.Errorf("bad domain %q", d)
		}
	}
}

func TestStripDigits(t *testing.T) {
	tests := []struct{ in, want string }{
		{"dfw09", "dfw"}, {"abc", "abc"}, {"123", ""}, {"", ""}, {"a1b2", "a1b"},
	}
	for _, tt := range tests {
		if got := stripDigits(tt.in); got != tt.want {
			t.Errorf("stripDigits(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
