// Package hints reimplements the DRoP approach of Huffaker et al. that the
// paper uses to build its DNS-based ground truth (§2.3.1): a dictionary
// mapping location strings (airport codes, CLLI-style site codes, city
// names) to coordinates, plus domain-specific rules that say where in a
// given operator's hostnames the location token sits.
//
// The same dictionary drives both directions: internal/rdns uses it to
// *encode* hints into synthesized hostnames, and this package's rules
// *decode* them, so the reproduction's DNS ground truth is built exactly
// the way the paper's was — by parsing names, not by peeking at the world.
package hints

import (
	"strings"

	"routergeo/internal/gazetteer"
)

// Dictionary maps location tokens to cities.
type Dictionary struct {
	byToken map[string]gazetteer.City
	iata    map[string]string // city key -> lowercase IATA ("" entries absent)
	site    map[string]string // city key -> CLLI-style site code
}

func cityKey(c gazetteer.City) string { return c.Country + "/" + c.Name }

// NewDictionary derives a dictionary from the gazetteer. Token classes, in
// priority order when codes collide: IATA airport codes, generated
// CLLI-style site codes, and collapsed city names. Ambiguous city-name
// tokens (several cities sharing a name) are dropped, as DRoP does when a
// hint cannot be resolved unambiguously.
func NewDictionary(g *gazetteer.Gazetteer) *Dictionary {
	d := &Dictionary{
		byToken: make(map[string]gazetteer.City),
		iata:    make(map[string]string),
		site:    make(map[string]string),
	}
	cities := g.Cities()

	// Pass 1: IATA codes, globally unique by construction.
	for _, c := range cities {
		if c.IATA == "" {
			continue
		}
		tok := strings.ToLower(c.IATA)
		d.byToken[tok] = c
		d.iata[cityKey(c)] = tok
	}

	// Pass 2: CLLI-style site codes ("dllsus" for Dallas/US), skipping any
	// candidate that collides with an existing token.
	for _, c := range cities {
		code := siteCode(c)
		if _, taken := d.byToken[code]; taken {
			// Degrade deterministically: replace the last letter with a
			// counter until free. Collisions are rare; give up after 9.
			base := code[:len(code)-1]
			found := false
			for i := '1'; i <= '9'; i++ {
				alt := base + string(i)
				if _, taken := d.byToken[alt]; !taken {
					code, found = alt, true
					break
				}
			}
			if !found {
				continue
			}
		}
		d.byToken[code] = c
		d.site[cityKey(c)] = code
	}

	// Pass 3: collapsed city names; ambiguous ones are dropped entirely.
	nameCount := map[string]int{}
	for _, c := range cities {
		nameCount[collapseName(c.Name)]++
	}
	for _, c := range cities {
		tok := collapseName(c.Name)
		if nameCount[tok] > 1 {
			continue
		}
		if _, taken := d.byToken[tok]; !taken {
			d.byToken[tok] = c
		}
	}
	return d
}

// Lookup resolves a location token (any class, case-insensitive).
func (d *Dictionary) Lookup(token string) (gazetteer.City, bool) {
	c, ok := d.byToken[strings.ToLower(token)]
	return c, ok
}

// IATA returns the lowercase airport token for a city, or "".
func (d *Dictionary) IATA(c gazetteer.City) string { return d.iata[cityKey(c)] }

// SiteCode returns the CLLI-style token for a city, or "" when the city
// could not be assigned a collision-free code.
func (d *Dictionary) SiteCode(c gazetteer.City) string { return d.site[cityKey(c)] }

// BestToken returns the preferred token for embedding in a hostname:
// IATA if the city has one, else the site code, else the collapsed name.
// ok is false if no token class resolves back to this city.
func (d *Dictionary) BestToken(c gazetteer.City) (string, bool) {
	if t := d.IATA(c); t != "" {
		return t, true
	}
	if t := d.SiteCode(c); t != "" {
		return t, true
	}
	t := collapseName(c.Name)
	if got, ok := d.byToken[t]; ok && got.Country == c.Country && got.Name == c.Name {
		return t, true
	}
	return "", false
}

// Size returns the number of distinct tokens.
func (d *Dictionary) Size() int { return len(d.byToken) }

// siteCode builds a deterministic CLLI-flavoured code: up to four
// consonant-skeleton letters of the name plus the lowercase country code,
// e.g. Dallas/US -> "dllsus".
func siteCode(c gazetteer.City) string {
	name := collapseName(c.Name)
	skeleton := make([]byte, 0, 4)
	for i := 0; i < len(name) && len(skeleton) < 4; i++ {
		ch := name[i]
		if i > 0 && (ch == 'a' || ch == 'e' || ch == 'i' || ch == 'o' || ch == 'u') {
			continue
		}
		skeleton = append(skeleton, ch)
	}
	// Pad short skeletons with the remaining letters (vowels included).
	for i := 1; i < len(name) && len(skeleton) < 4; i++ {
		skeleton = append(skeleton, name[i])
	}
	for len(skeleton) < 4 {
		skeleton = append(skeleton, 'x')
	}
	return string(skeleton) + strings.ToLower(c.Country)
}

// collapseName lowercases a city name and strips every non-letter.
func collapseName(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		if r >= 'a' && r <= 'z' {
			b.WriteRune(r)
		}
	}
	return b.String()
}
