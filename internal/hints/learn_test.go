package hints

import (
	"fmt"
	"testing"

	"routergeo/internal/gazetteer"
)

func learnFixture(t *testing.T) (*gazetteer.Gazetteer, *Dictionary) {
	t.Helper()
	g := gazetteer.New()
	return g, NewDictionary(g)
}

// synthExamples fabricates training pairs under one domain using a given
// hostname renderer.
func synthExamples(g *gazetteer.Gazetteer, dict *Dictionary, n int,
	render func(tok string, i int) string) []Example {
	var out []Example
	cities := g.Cities()
	for i := 0; len(out) < n && i < len(cities); i++ {
		c := cities[i]
		tok, ok := dict.BestToken(c)
		if !ok {
			continue
		}
		out = append(out, Example{
			Hostname: render(tok, i),
			Country:  c.Country,
			City:     c.Name,
		})
	}
	return out
}

func TestLearnRecoversSimpleRule(t *testing.T) {
	g, dict := learnFixture(t)
	// Generic style: r{i}.{tok}{nn}.example.net — token is label 1 from end.
	examples := synthExamples(g, dict, 40, func(tok string, i int) string {
		return fmt.Sprintf("r%d.%s%02d.example.net", i, tok, i%9)
	})
	rules := LearnRules(dict, examples, 10, 0.8)
	if len(rules) != 1 {
		t.Fatalf("learned %d rules, want 1: %+v", len(rules), rules)
	}
	r := rules[0]
	if r.Suffix != "example.net" || r.LabelFromEnd != 1 || r.DashHead {
		t.Errorf("learned wrong shape: %+v", r)
	}
	if r.Accuracy < 0.95 {
		t.Errorf("accuracy = %v", r.Accuracy)
	}
}

func TestLearnRecoversDashRule(t *testing.T) {
	g, dict := learnFixture(t)
	// peak10 style: {tok}01-rtr{i}.example.org — dash-head of label 1.
	examples := synthExamples(g, dict, 40, func(tok string, i int) string {
		return fmt.Sprintf("%s01-rtr%d.example.org", tok, i)
	})
	rules := LearnRules(dict, examples, 10, 0.8)
	if len(rules) != 1 {
		t.Fatalf("learned %d rules: %+v", len(rules), rules)
	}
	if !rules[0].DashHead || rules[0].LabelFromEnd != 1 {
		t.Errorf("learned wrong shape: %+v", rules[0])
	}
}

func TestLearnRecoversDeepLabelRule(t *testing.T) {
	g, dict := learnFixture(t)
	// ntt style: ae-1.r{i}.{tok}02.us.bb.gin.example.com — label 4 from end
	// of the pre-suffix labels [ae-1, r{i}, tok02, us, bb, gin].
	examples := synthExamples(g, dict, 40, func(tok string, i int) string {
		return fmt.Sprintf("ae-1.r%d.%s02.us.bb.gin.example.com", i, tok)
	})
	rules := LearnRules(dict, examples, 10, 0.8)
	if len(rules) != 1 {
		t.Fatalf("learned %d rules: %+v", len(rules), rules)
	}
	if rules[0].LabelFromEnd != 4 {
		t.Errorf("learned label %d, want 4: %+v", rules[0].LabelFromEnd, rules[0])
	}
}

func TestLearnRejectsHintFreeDomains(t *testing.T) {
	g, dict := learnFixture(t)
	_ = g
	var examples []Example
	for i := 0; i < 40; i++ {
		examples = append(examples, Example{
			Hostname: fmt.Sprintf("r%d.pop%02d.noloc.net", i, i),
			Country:  "US", City: "Dallas",
		})
	}
	if rules := LearnRules(dict, examples, 10, 0.8); len(rules) != 0 {
		t.Errorf("learned rules from hint-free names: %+v", rules)
	}
}

func TestLearnRejectsMisleadingTokens(t *testing.T) {
	// Hostnames that *contain* a resolvable token pointing at the wrong
	// city must be rejected by the accuracy threshold.
	g, dict := learnFixture(t)
	examples := synthExamples(g, dict, 40, func(tok string, i int) string {
		return fmt.Sprintf("r%d.%s%02d.liar.net", i, tok, i%9)
	})
	// Corrupt the locations: claim everything is in Dallas.
	for i := range examples {
		examples[i].Country, examples[i].City = "US", "Dallas"
	}
	if rules := LearnRules(dict, examples, 10, 0.8); len(rules) != 0 {
		t.Errorf("learned a rule from mislabelled data: %+v", rules)
	}
}

func TestLearnRespectsMinSupport(t *testing.T) {
	g, dict := learnFixture(t)
	examples := synthExamples(g, dict, 5, func(tok string, i int) string {
		return fmt.Sprintf("r%d.%s.tiny.net", i, tok)
	})
	if rules := LearnRules(dict, examples, 10, 0.8); len(rules) != 0 {
		t.Errorf("learned from %d examples despite minSupport 10", len(examples))
	}
}

func TestLearnedRulesDriveADecoder(t *testing.T) {
	g, dict := learnFixture(t)
	examples := synthExamples(g, dict, 40, func(tok string, i int) string {
		return fmt.Sprintf("core%d.%s%03d.learned.net", i, tok, i)
	})
	rules := LearnRules(dict, examples, 10, 0.8)
	if len(rules) != 1 {
		t.Fatalf("learned %d rules", len(rules))
	}
	dec := DecoderWithLearned(dict, rules)
	// The learned decoder must resolve a fresh name under the domain.
	dal, _ := g.City("US", "Dallas")
	tok, _ := dict.BestToken(dal)
	city, suffix, ok := dec.Decode(fmt.Sprintf("core99.%s001.learned.net", tok))
	if !ok || city.Name != "Dallas" || suffix != "learned.net" {
		t.Errorf("learned decode = %v %q %v", city, suffix, ok)
	}
	// And still reject other domains' names (generic fallback aside).
	if _, _, ok := dec.Decode("clt01-rtr2.peak10.net"); ok {
		t.Error("learned decoder should not know peak10's rule")
	}
}

func TestLearnMultipleDomainsAtOnce(t *testing.T) {
	g, dict := learnFixture(t)
	a := synthExamples(g, dict, 30, func(tok string, i int) string {
		return fmt.Sprintf("r%d.%s%02d.domain-a.net", i, tok, i%9)
	})
	b := synthExamples(g, dict, 30, func(tok string, i int) string {
		return fmt.Sprintf("%s01-rtr%d.domain-b.org", tok, i)
	})
	rules := LearnRules(dict, append(a, b...), 10, 0.8)
	if len(rules) != 2 {
		t.Fatalf("learned %d rules: %+v", len(rules), rules)
	}
	// Sorted by suffix.
	if rules[0].Suffix != "domain-a.net" || rules[1].Suffix != "domain-b.org" {
		t.Errorf("rule order: %+v", rules)
	}
}
