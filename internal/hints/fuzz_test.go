package hints

import (
	"testing"

	"routergeo/internal/gazetteer"
)

// FuzzDecode hardens the hostname decoder: arbitrary strings must decode
// to a real gazetteer city or fail cleanly — never panic, never return a
// fabricated location.
func FuzzDecode(f *testing.F) {
	f.Add("be2390.ccr41.jfk02.atlas.cogentco.com")
	f.Add("ae-5.r23.dllsus09.us.bb.gin.ntt.net")
	f.Add("stuttgart-rtr1.belwue.de")
	f.Add("r7.fra02.as64599.net")
	f.Add("")
	f.Add("....")
	f.Add("a.b")
	f.Add("ип-адрес.example.com")

	g := gazetteer.New()
	dict := NewDictionary(g)
	dec := NewDecoder(dict)

	f.Fuzz(func(t *testing.T, hostname string) {
		city, domain, ok := dec.Decode(hostname)
		if !ok {
			return
		}
		if _, exists := g.City(city.Country, city.Name); !exists {
			t.Fatalf("Decode(%q) fabricated city %s/%s", hostname, city.Country, city.Name)
		}
		if domain != "" {
			found := false
			for _, d := range GroundTruthDomains() {
				if d == domain {
					found = true
				}
			}
			if !found {
				t.Fatalf("Decode(%q) reported unknown rule domain %q", hostname, domain)
			}
		}
	})
}
