package lint

import (
	"strconv"
	"strings"
)

// StdlibOnly enforces the repository's dependency-free policy: every
// import must be either the standard library or this module. The test
// is the go toolchain's own convention — an import path whose first
// element contains a dot is a remote module.
var StdlibOnly = &Analyzer{
	Name: "stdlibonly",
	Doc: "The repository is dependency-free by policy: imports must come " +
		"from the Go standard library or from this module. Anything with a " +
		"dotted first path element (github.com/..., golang.org/x/...) and " +
		"cgo's import \"C\" are rejected.",
	Run: runStdlibOnly,
}

func runStdlibOnly(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "C" {
				p.Reportf(imp.Pos(), `import "C" (cgo) is forbidden: the build must stay pure Go`)
				continue
			}
			if pathIn(path, "routergeo") {
				continue
			}
			first := path
			if i := strings.IndexByte(first, '/'); i >= 0 {
				first = first[:i]
			}
			if strings.Contains(first, ".") {
				p.Reportf(imp.Pos(),
					"import %q is outside the standard library and this module; the repository is dependency-free by policy", path)
			}
		}
	}
}
