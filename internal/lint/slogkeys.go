package lint

import (
	"go/ast"
	"go/constant"
)

// slogArgStart maps each slog call that takes trailing key/value pairs
// to the index where those pairs start.
var slogArgStart = map[string]int{
	"Debug": 1, "Info": 1, "Warn": 1, "Error": 1,
	"DebugContext": 2, "InfoContext": 2, "WarnContext": 2, "ErrorContext": 2,
	"Log":  3, // ctx, level, msg, args...
	"With": 0,
}

// SlogKeys keeps structured logs machine-parseable: every slog call
// must pass an even-length tail of key/value pairs whose keys are
// constant strings (so dashboards and grep have stable field names),
// and nothing outside cmd/ may print straight to stdout with
// fmt.Print*/println — library code logs through slog or writes to an
// injected io.Writer.
var SlogKeys = &Analyzer{
	Name: "slogkeys",
	Doc: "slog calls must pass key/value tails of even length with " +
		"constant-string keys (slog.Attr values are allowed and consume one " +
		"slot). fmt.Print/Printf/Println and the println/print builtins are " +
		"forbidden outside cmd/: library code logs via slog or writes to an " +
		"injected io.Writer.",
	Run: runSlogKeys,
}

func runSlogKeys(p *Pass) {
	info := p.Pkg.Info
	inCmd := pathIn(p.Pkg.Path, "routergeo/cmd")
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkgPath, fn, ok := pkgFuncCall(info, call); ok {
				switch {
				case pkgPath == "log/slog":
					if start, isLog := slogArgStart[fn]; isLog {
						checkSlogArgs(p, call, start)
					} else if fn == "Group" {
						checkSlogArgs(p, call, 1)
					}
				case pkgPath == "fmt" && !inCmd &&
					(fn == "Print" || fn == "Printf" || fn == "Println"):
					p.Reportf(call.Pos(),
						"fmt.%s writes to stdout from library code; log through slog or write to an injected io.Writer", fn)
				}
				return true
			}
			if recv, name, ok := methodCall(info, call); ok {
				if start, isLog := slogArgStart[name]; isLog && namedFrom(recv, "log/slog", "Logger") {
					checkSlogArgs(p, call, start)
				}
				return true
			}
			if !inCmd && (builtinCall(info, call, "println") || builtinCall(info, call, "print")) {
				p.Reportf(call.Pos(),
					"builtin println/print writes to stderr from library code; log through slog instead")
			}
			return true
		})
	}
}

// checkSlogArgs validates the key/value tail of one slog call starting
// at argument index start. A slog.Attr consumes one slot; anything else
// must be a constant-string key followed by a value.
func checkSlogArgs(p *Pass, call *ast.CallExpr, start int) {
	if call.Ellipsis.IsValid() {
		// args... spreads a prebuilt slice; its contents are not visible
		// statically.
		return
	}
	if len(call.Args) < start {
		return // not enough fixed args to even reach the tail; vet's domain
	}
	info := p.Pkg.Info
	i := start
	for i < len(call.Args) {
		arg := call.Args[i]
		if tv, ok := info.Types[arg]; ok && namedFrom(tv.Type, "log/slog", "Attr") {
			i++
			continue
		}
		tv, ok := info.Types[arg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			p.Reportf(arg.Pos(),
				"slog key must be a constant string so log fields stay stable and greppable")
		}
		if i+1 >= len(call.Args) {
			p.Reportf(arg.Pos(),
				"slog call has a key with no value: key/value tail must have even length")
			return
		}
		i += 2
	}
}
