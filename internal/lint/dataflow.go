package lint

// Forward dataflow over the CFGs of cfg.go. The framework implements
// one classic scheme — an iterative forward may-analysis to a fixed
// point — because every rule built so far needs exactly that shape:
// "could fact F hold on SOME path reaching this point?" (a mutex may
// still be held, a defer may have been registered). The lattice is the
// analysis's own fact type; the framework only needs Join (path merge),
// Transfer (one node's effect) and Equal (fixpoint detection).
//
// Termination is the analysis's contract: Join must be monotone over a
// finite-height lattice (in practice: sets and bitmasks that only
// grow). Every analyzer here joins with set union over a bounded key
// space, so the worklist converges in a handful of passes even on
// defer-heavy, labeled-loop control flow.

import "go/ast"

// A FlowAnalysis defines one forward dataflow problem. Transfer MUST be
// pure with respect to its input fact — return a new fact (or the same
// one unchanged), never mutate in place — because the same input fact
// is joined into several successors.
type FlowAnalysis[F any] interface {
	// Entry is the fact at function entry.
	Entry() F
	// Transfer applies one block node's effect to the incoming fact.
	Transfer(fact F, n ast.Node) F
	// Join merges the facts of two converging paths.
	Join(a, b F) F
	// Equal reports whether two facts are the same (fixpoint test).
	Equal(a, b F) bool
}

// ForwardFlow runs the analysis over the CFG to a fixed point and
// returns the fact holding at each block's entry and exit. The fact at
// c.Exit's entry is "what may hold when the function returns" — the
// usual place a balance rule checks.
func ForwardFlow[F any](c *CFG, an FlowAnalysis[F]) (in, out map[*Block]F) {
	in = make(map[*Block]F, len(c.Blocks))
	out = make(map[*Block]F, len(c.Blocks))
	seeded := make(map[*Block]bool, len(c.Blocks))

	in[c.Entry] = an.Entry()
	seeded[c.Entry] = true

	// Worklist of blocks whose input changed, processed FIFO. Blocks
	// are appended at most once while queued (the queued set dedups).
	work := []*Block{c.Entry}
	queued := map[*Block]bool{c.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		fact := in[blk]
		for _, n := range blk.Nodes {
			fact = an.Transfer(fact, n)
		}
		out[blk] = fact

		for _, succ := range blk.Succs {
			var next F
			if !seeded[succ] {
				next = fact
				seeded[succ] = true
			} else {
				next = an.Join(in[succ], fact)
				if an.Equal(next, in[succ]) {
					continue
				}
			}
			in[succ] = next
			if !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in, out
}
