package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// pathIn reports whether pkgPath is prefix itself or below it.
func pathIn(pkgPath, prefix string) bool {
	return pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/")
}

// pathInAny reports whether pkgPath is in any of the given subtrees.
func pathInAny(pkgPath string, prefixes []string) bool {
	for _, p := range prefixes {
		if pathIn(pkgPath, p) {
			return true
		}
	}
	return false
}

// pkgFuncCall resolves a call of the form pkg.Fn where pkg is an
// imported package name, returning the package path and function name.
func pkgFuncCall(info *types.Info, call *ast.CallExpr) (pkgPath, fn string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// methodCall resolves a call of the form recv.M(...) where recv is a
// value (not a package name), returning the receiver's type and the
// method name.
func methodCall(info *types.Info, call *ast.CallExpr) (recv types.Type, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	if id, isID := sel.X.(*ast.Ident); isID {
		if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
			return nil, "", false
		}
	}
	tv, found := info.Types[sel.X]
	if !found || tv.Type == nil {
		return nil, "", false
	}
	return tv.Type, sel.Sel.Name, true
}

// namedFrom reports whether t (or the type it points to) is a named
// type called name declared in package pkgPath.
func namedFrom(t types.Type, pkgPath, name string) bool {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// ioWriterIface is a structural copy of io.Writer, built once so the
// analyzers can use types.Implements without having loaded package io.
var ioWriterIface = func() *types.Interface {
	params := types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte])))
	results := types.NewTuple(
		types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
		types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
	)
	sig := types.NewSignatureType(nil, nil, nil, params, results, false)
	write := types.NewFunc(token.NoPos, nil, "Write", sig)
	return types.NewInterfaceType([]*types.Func{write}, nil).Complete()
}()

// implementsWriter reports whether t satisfies io.Writer directly or
// through a pointer receiver.
func implementsWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, ioWriterIface) || types.Implements(types.NewPointer(t), ioWriterIface)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool { return namedFrom(t, "context", "Context") }

// builtinCall reports whether call invokes the named predeclared
// builtin (append, println, ...).
func builtinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, isID := call.Fun.(*ast.Ident)
	if !isID || id.Name != name {
		return false
	}
	b, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin && b.Name() == name
}
