package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goroPkgs: the packages that launch goroutines as part of the serving
// and measurement machinery. Same blast radius as atomicmix.
var goroPkgs = atomicMixPkgs

// GoroHygiene vets every `go` statement in the concurrency packages.
var GoroHygiene = &Analyzer{
	Name: "gorohygiene",
	Doc: "Goroutines launched in internal/core, internal/geodb/httpapi and " +
		"internal/obs must have a visible termination edge — a " +
		"context.Context they observe, a channel receive/range/select that " +
		"ends when the sender closes, or a sync.WaitGroup they signal — so " +
		"no sweep or request leaves an orphan running. Goroutine closures " +
		"must also not capture sync.Pool-derived values (the pool may hand " +
		"the buffer to another goroutine after Put) and must not capture " +
		"variables that the surrounding loop keeps mutating (every " +
		"iteration's goroutine would observe the last value).",
	Run: runGoroHygiene,
}

func runGoroHygiene(p *Pass) {
	if !pathInAny(p.Pkg.Path, goroPkgs) {
		return
	}
	info := p.Pkg.Info
	inspectFuncs(p.Pkg, func(file *ast.File, fd *ast.FuncDecl) {
		if fd.Body == nil {
			return
		}
		tainted := poolTainted(info, fd.Body)

		// Walk with a parent stack so each `go` statement knows its
		// enclosing loops (for the shared-capture check).
		var stack []ast.Node
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(p, info, gs, stack, tainted)
			return true
		})
	})
}

func checkGoStmt(p *Pass, info *types.Info, gs *ast.GoStmt, stack []ast.Node, tainted map[types.Object]bool) {
	body := goroutineBody(p, info, gs)
	// Termination edge: visible in the launched body, or a context the
	// callee receives as an argument (the callee is trusted to honor it).
	if !callHasContextArg(info, gs.Call) {
		if body == nil {
			p.Reportf(gs.Pos(),
				"goroutine launches a function with no body in this package and no context.Context argument — no visible termination edge; pass a ctx or launch a local function that has one")
		} else if !hasTerminationEdge(info, body) {
			p.Reportf(gs.Pos(),
				"goroutine has no termination edge: no context.Context observed, no channel receive/range/select, no wg.Done() — it can outlive the sweep or request that launched it")
		}
	}

	// Capture checks apply to closures only: a named function cannot
	// capture the launcher's locals.
	lit, ok := gs.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	for _, fv := range freeVars(info, lit) {
		if tainted[fv.obj] {
			p.Reportf(fv.pos,
				"goroutine closure captures %q, which comes from a sync.Pool Get — after the pool reclaims it another goroutine may be writing the same backing array", fv.obj.Name())
			continue
		}
		if loop := sharedLoopCapture(info, fv.obj, gs, stack); loop != token.NoPos {
			p.Reportf(fv.pos,
				"goroutine closure captures %q, declared before the loop at %s and reassigned inside it — every iteration's goroutine shares one variable and races the next write; pass it as an argument instead", fv.obj.Name(), p.Fset.Position(loop))
		}
	}
}

// goroutineBody resolves the body the `go` statement runs: the literal
// itself, or the body of a same-package function/method. Nil when the
// target is outside the package (stdlib, another layer).
func goroutineBody(p *Pass, info *types.Info, gs *ast.GoStmt) *ast.BlockStmt {
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		return declBodyFor(p, info.Uses[fun])
	case *ast.SelectorExpr:
		return declBodyFor(p, info.Uses[fun.Sel])
	}
	return nil
}

// declBodyFor finds the FuncDecl body of obj in the package under
// analysis.
func declBodyFor(p *Pass, obj types.Object) *ast.BlockStmt {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() != p.Pkg.Types {
		return nil
	}
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if p.Pkg.Info.Defs[fd.Name] == obj {
				return fd.Body
			}
		}
	}
	return nil
}

// callHasContextArg reports whether any argument of the launch call is
// a context.Context.
func callHasContextArg(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && tv.Type != nil && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// hasTerminationEdge reports whether the goroutine body contains a
// construct that lets it observe shutdown: a context.Context value, a
// channel receive (<-ch), a range over a channel, a select, or a
// sync.WaitGroup Done (the launcher waits for it, so the goroutine's
// lifetime is bounded by the launcher's).
func hasTerminationEdge(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[v.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		case *ast.CallExpr:
			if recv, name, ok := methodCall(info, v); ok && name == "Done" &&
				namedFrom(recv, "sync", "WaitGroup") {
				found = true
			}
		}
		return !found
	})
	return found
}

// freeVar is a reference inside a closure to a variable declared
// outside it.
type freeVar struct {
	obj types.Object
	pos token.Pos // first referencing identifier inside the closure
}

// freeVars lists the local variables the literal captures by reference:
// identifiers used inside whose declaration lies outside the literal.
// Package-level objects are not captures.
func freeVars(info *types.Info, lit *ast.FuncLit) []freeVar {
	seen := map[types.Object]bool{}
	var out []freeVar
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() || seen[obj] {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true // declared inside the literal (params included)
		}
		if obj.Parent() == nil || obj.Pkg() == nil ||
			obj.Parent() == obj.Pkg().Scope() {
			return true // package-level, not a stack capture
		}
		seen[obj] = true
		out = append(out, freeVar{obj: obj, pos: id.Pos()})
		return true
	})
	return out
}

// sharedLoopCapture reports (by returning the loop's position) whether
// obj is declared OUTSIDE one of the loops enclosing the go statement
// yet assigned INSIDE that loop outside the goroutine itself. Such a
// variable is one shared cell: each iteration's goroutine races the
// next iteration's write. Go ≥1.22 makes loop iteration variables
// per-iteration, so those never trip this — only pre-loop declarations
// mutated in the loop body do.
func sharedLoopCapture(info *types.Info, obj types.Object, gs *ast.GoStmt, stack []ast.Node) token.Pos {
	for _, enc := range stack {
		var loopBody *ast.BlockStmt
		var loopPos token.Pos
		switch l := enc.(type) {
		case *ast.ForStmt:
			loopBody, loopPos = l.Body, l.Pos()
		case *ast.RangeStmt:
			loopBody, loopPos = l.Body, l.Pos()
		default:
			continue
		}
		if obj.Pos() >= loopPos && obj.Pos() <= loopBody.End() {
			continue // declared by/inside this loop: per-iteration since go 1.22
		}
		if assignedOutsideGo(info, loopBody, obj, gs) {
			return loopPos
		}
	}
	return token.NoPos
}

// assignedOutsideGo reports whether obj is assigned (or ++/--/&-taken
// via assignment) anywhere in body other than inside the go statement
// under scrutiny.
func assignedOutsideGo(info *types.Info, body *ast.BlockStmt, obj types.Object, gs *ast.GoStmt) bool {
	hit := false
	ast.Inspect(body, func(n ast.Node) bool {
		if hit || n == gs {
			return false
		}
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if info.Uses[id] == obj || info.Defs[id] == obj {
						hit = true
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := v.X.(*ast.Ident); ok && info.Uses[id] == obj {
				hit = true
			}
		}
		return !hit
	})
	return hit
}
