package lint

import (
	"go/ast"
)

// ctxPkgs are the packages PR 2 threaded context.Context through so the
// run's trace span reaches every build and measurement stage. PR 5
// extended the convention to the HTTP client package when it threaded
// caller contexts through the retry loop: a minted context there had
// made remote lookups uncancellable.
var ctxPkgs = []string{
	"routergeo/internal/core",
	"routergeo/internal/groundtruth",
	"routergeo/internal/ark",
	"routergeo/internal/experiments",
	"routergeo/internal/geodb/httpapi",
}

// CtxFirst enforces the context-threading convention in the pipeline
// packages: a function that accepts a context.Context must accept it as
// its first parameter, and nothing in those packages may mint its own
// root context with context.Background/context.TODO — the caller's
// context (carrying the trace span) must flow through instead.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc: "In internal/core, internal/groundtruth, internal/ark, " +
		"internal/experiments and internal/geodb/httpapi, context.Context " +
		"must be the first parameter of any function that takes one, and " +
		"context.Background/TODO are forbidden: contexts are threaded from " +
		"the binary down, never created mid-pipeline, so trace spans and " +
		"cancellation reach every stage.",
	Run: runCtxFirst,
}

func runCtxFirst(p *Pass) {
	if !pathInAny(p.Pkg.Path, ctxPkgs) {
		return
	}
	info := p.Pkg.Info
	inspectFuncs(p.Pkg, func(_ *ast.File, fn *ast.FuncDecl) {
		idx := 0
		for _, field := range fn.Type.Params.List {
			tv, ok := info.Types[field.Type]
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			if ok && isContextType(tv.Type) && idx != 0 {
				p.Reportf(field.Pos(),
					"%s takes context.Context as parameter %d; it must be the first parameter", fn.Name.Name, idx+1)
			}
			idx += n
		}
	})
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkgPath, fnName, ok := pkgFuncCall(info, call); ok && pkgPath == "context" &&
				(fnName == "Background" || fnName == "TODO") {
				p.Reportf(call.Pos(),
					"context.%s mints a fresh context mid-pipeline; thread the caller's context through instead", fnName)
			}
			return true
		})
	}
}
