package lint

// Diff mode: restrict findings to files changed since a git ref, so CI
// pre-passes stay proportional to the change as the tree grows. The
// analyzers still LOAD and run over whole packages — cross-file facts
// (atomicmix's old-style field collection, layering's import graph)
// need the full picture — only the reporting is narrowed.

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
)

// ChangedSince returns the set of files changed relative to ref —
// committed or staged changes (git diff --name-only), plus untracked
// files (git ls-files --others --exclude-standard) — as absolute paths.
// Callers outside a git repository get an error and should fall back to
// a full run.
func ChangedSince(root, ref string) (map[string]bool, error) {
	changed := map[string]bool{}
	for _, args := range [][]string{
		{"diff", "--name-only", ref, "--"},
		{"ls-files", "--others", "--exclude-standard"},
	} {
		cmd := exec.Command("git", args...)
		cmd.Dir = root
		out, err := cmd.Output()
		if err != nil {
			msg := strings.TrimSpace(stderrOf(err))
			if msg == "" {
				msg = err.Error()
			}
			return nil, fmt.Errorf("git %s: %s", args[0], msg)
		}
		for _, line := range strings.Split(string(out), "\n") {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			changed[filepath.Join(root, filepath.FromSlash(line))] = true
		}
	}
	return changed, nil
}

// stderrOf extracts the captured stderr from an exec error, if any.
func stderrOf(err error) string {
	if ee, ok := err.(*exec.ExitError); ok {
		return string(ee.Stderr)
	}
	return ""
}

// FilterByFile keeps the findings located in one of the given files
// (absolute paths, as ChangedSince returns them).
func FilterByFile(findings []Finding, files map[string]bool) []Finding {
	out := findings[:0]
	for _, f := range findings {
		if files[f.Pos.Filename] {
			out = append(out, f)
		}
	}
	return out
}
