package lint

// All returns every project analyzer in stable (alphabetical) order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicMix,
		CtxFirst,
		Determinism,
		GoroHygiene,
		HotAlloc,
		Layering,
		LockBalance,
		MapOrder,
		PoolEscape,
		SlogKeys,
		StdlibOnly,
	}
}

// ByName returns the named analyzers from All, or false naming the
// first unknown one.
func ByName(names []string) ([]*Analyzer, string, bool) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	out := make([]*Analyzer, 0, len(names))
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, n, false
		}
		out = append(out, a)
	}
	return out, "", true
}
