package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src (a file fragment containing exactly one function
// declaration) and returns that function's body.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfgtest.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fd.Body
		}
	}
	t.Fatal("no function in source")
	return nil
}

// TestCFGStructure pins the exact block/edge structure for the
// adversarial control-flow shapes the dataflow layer must handle:
// early returns, labeled break/continue across nested loops, defers
// with fallthrough and panic exits, goto-formed loops, and range over
// select. Dump is deterministic: entry first, exit last, successors in
// source order.
func TestCFGStructure(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		want   string
		defers int
	}{
		{
			name: "early return if/else-less",
			src: `func f(c bool) int {
	x := 1
	if c {
		return x
	}
	x++
	return x
}`,
			want: "b0 entry[2] -> b1 b2\n" +
				"b1 if.then[1] -> b3\n" +
				"b2 if.join[2] -> b3\n" +
				"b3 exit[0]\n",
		},
		{
			name: "labeled break and continue across nested loops",
			src: `func g(n int) int {
	s := 0
outer:
	for i := 0; i < n; i++ {
		for {
			if s > 10 {
				break outer
			}
			s++
			continue
		}
	}
	return s
}`,
			// The outer post and the inner for.done are unreachable
			// (the inner loop only exits via break outer) and pruned.
			want: "b0 entry[2] -> b1\n" +
				"b1 for.head[1] -> b2 b3\n" +
				"b2 for.body[0] -> b4\n" +
				"b3 for.done[1] -> b8\n" +
				"b4 for.head[0] -> b5\n" +
				"b5 for.body[1] -> b6 b7\n" +
				"b6 if.then[0] -> b3\n" +
				"b7 if.join[1] -> b4\n" +
				"b8 exit[0]\n",
		},
		{
			name: "defers, fallthrough, panic and return exits",
			src: `func h(mode int) {
	defer cleanup()
	switch mode {
	case 0:
		defer cleanup()
		fallthrough
	case 1:
		panic("bad")
	default:
		return
	}
}`,
			// switch.done is unreachable: every case leaves the
			// function. Both defer registrations are recorded.
			want: "b0 entry[2] -> b1 b2 b3\n" +
				"b1 switch.case[2] -> b2\n" +
				"b2 switch.case[2] -> b4\n" +
				"b3 switch.case[1] -> b4\n" +
				"b4 exit[0]\n",
			defers: 2,
		},
		{
			name: "goto-formed loop",
			src: `func k(n int) int {
retry:
	n--
	if n > 0 {
		goto retry
	}
	return n
}`,
			want: "b0 entry[0] -> b1\n" +
				"b1 label.retry[2] -> b2 b3\n" +
				"b2 if.then[1] -> b1\n" +
				"b3 if.join[1] -> b4\n" +
				"b4 exit[0]\n",
		},
		{
			name: "range over select",
			src: `func r(xs []int, ch chan int) int {
	s := 0
	for _, x := range xs {
		select {
		case ch <- x:
		default:
			s += x
		}
	}
	return s
}`,
			want: "b0 entry[1] -> b1\n" +
				"b1 range.head[1] -> b2 b3\n" +
				"b2 range.body[0] -> b4 b5\n" +
				"b3 range.done[1] -> b7\n" +
				"b4 select.comm[1] -> b6\n" +
				"b5 select.comm[1] -> b6\n" +
				"b6 select.done[0] -> b1\n" +
				"b7 exit[0]\n",
		},
		{
			name: "unreachable code after return is pruned",
			src: `func u() int {
	return 1
	return 2
}`,
			want: "b0 entry[1] -> b1\n" +
				"b1 exit[0]\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCFG(parseBody(t, tc.src))
			if got := c.Dump(); got != tc.want {
				t.Errorf("CFG mismatch:\ngot:\n%swant:\n%s", got, tc.want)
			}
			if len(c.Defers) != tc.defers {
				t.Errorf("defers: got %d, want %d", len(c.Defers), tc.defers)
			}
			if c.Blocks[0] != c.Entry || c.Blocks[len(c.Blocks)-1] != c.Exit {
				t.Error("entry must be first and exit last")
			}
		})
	}
}
