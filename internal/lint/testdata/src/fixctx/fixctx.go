// Package fixctx plants context-threading violations. The test loads it
// as a subpackage of internal/ark (in scope) and of internal/geodb
// (out of scope: no findings).
package fixctx

import "context"

// Bad takes its context second.
func Bad(id int, ctx context.Context) error { // want:ctxfirst
	return ctx.Err()
}

// BadMethod does the same on a method.
func (s *Sweep) BadMethod(name string, ctx context.Context) error { // want:ctxfirst
	return ctx.Err()
}

// Mint creates a root context mid-pipeline instead of threading the
// caller's.
func Mint() error {
	ctx := context.Background() // want:ctxfirst
	return ctx.Err()
}

// Good threads the caller's context first.
func Good(ctx context.Context, id int) error {
	return ctx.Err()
}

// NoCtx is fine: pure helpers need no context at all.
func NoCtx(id int) int { return id * 2 }

// Sweep anchors the method fixtures.
type Sweep struct{}
