// Package slogcmd is loaded as a cmd/ package, where printing to
// stdout is the whole point and fmt.Println is allowed.
package slogcmd

import "fmt"

// Report prints a result line, as binaries do.
func Report(v int) { fmt.Println("result:", v) }
