// Package fixatomic exercises the atomicmix analyzer: every way a
// struct field can mix atomic and plain access, next to the legal
// constructor-initialization and method-receiver shapes.
package fixatomic

import "sync/atomic"

type counter struct {
	hits  atomic.Int64 // typed atomic: methods only
	drops int64        // old-style: touched via atomic.AddInt64 below
	name  string       // plain field, never atomic — free to use anywhere
}

// newCounter is the constructor: plain initialization before the value
// escapes cannot race, so nothing here is flagged.
func newCounter(name string) *counter {
	c := &counter{name: name}
	c.drops = 0
	c.hits.Store(0)
	return c
}

// makeCounter returns by value — still a constructor.
func makeCounter() counter {
	var c counter
	c.drops = 0
	return c
}

func (c *counter) bump() {
	c.hits.Add(1)
	atomic.AddInt64(&c.drops, 1)
}

func (c *counter) read() (int64, int64) {
	return c.hits.Load(), atomic.LoadInt64(&c.drops)
}

func (c *counter) badPlainRead() int64 {
	return c.drops // want:atomicmix
}

func (c *counter) badPlainWrite() {
	c.drops = 7 // want:atomicmix
}

func (c *counter) badCopyTyped() atomic.Int64 {
	return c.hits // want:atomicmix
}

func (c *counter) badAddrTyped() *atomic.Int64 {
	return &c.hits // want:atomicmix
}

func (c *counter) okPlainField() string {
	return c.name // never atomic anywhere: plain access is fine
}
