// Package layerobs is loaded as a subpackage of internal/obs: the
// geodb import breaks obs's imports-nothing-internal rule, while the
// obs import stays within obs's own subtree and is allowed.
package layerobs

import (
	_ "routergeo/internal/geodb"
	_ "routergeo/internal/obs"
)
