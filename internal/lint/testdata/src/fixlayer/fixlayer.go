// Package fixlayer plants import-DAG violations. The test loads it as a
// subpackage of internal/stats, where importing obs and geodb breaks
// the leaf rule and importing a cmd package breaks the
// composition-root rule.
package fixlayer

import (
	_ "routergeo/cmd/geolint"    // want:layering
	_ "routergeo/internal/geodb" // want:layering
	_ "routergeo/internal/obs"   // want:layering
)
