// Package fixignore exercises //lint:ignore suppression and its
// hygiene checks. The test loads it as a subpackage of internal/core
// and runs the determinism analyzer; expected findings are asserted by
// explicit line number in the test, not markers, because several cases
// are about the directive comment itself.
package fixignore

import "time"

// SuppressedAbove is silenced by a directive on its own line above.
func SuppressedAbove() int64 {
	//lint:ignore determinism fixture exercises above-line suppression
	return time.Now().UnixNano()
}

// SuppressedSameLine is silenced by a trailing directive.
func SuppressedSameLine() int64 {
	return time.Now().UnixNano() //lint:ignore determinism fixture exercises same-line suppression
}

// WrongLine has its directive stranded two lines above the violation:
// the violation is reported, and so is the dead directive.
func WrongLine() int64 {
	//lint:ignore determinism stranded two lines above the violation
	x := int64(0)
	return x + time.Now().UnixNano()
}

// UnknownRule names a rule that does not exist; the directive is
// reported and suppresses nothing.
func UnknownRule() int64 {
	//lint:ignore nosuchrule bogus rule name
	return time.Now().UnixNano()
}

// MissingReason omits the justification; the directive is rejected and
// suppresses nothing.
func MissingReason() int64 {
	//lint:ignore determinism
	return time.Now().UnixNano()
}
