// Package fixdet plants determinism violations. The test loads it once
// as a subpackage of internal/core (every marker must fire) and once as
// a subpackage of internal/netsim (out of scope: no findings).
package fixdet

import (
	"math/rand"
	"time"
)

// Bad reads the wall clock and the global RNG.
func Bad() (int64, time.Duration, int) {
	now := time.Now().UnixNano()       // want:determinism
	d := time.Since(time.Unix(0, now)) // want:determinism
	n := rand.Intn(10)                 // want:determinism
	time.Sleep(time.Millisecond)       // want:determinism
	return now, d, n
}

// Good threads an explicitly seeded RNG and only does duration math.
func Good(seed int64) (float64, time.Duration) {
	r := rand.New(rand.NewSource(seed))
	return r.Float64(), 3 * time.Second
}
