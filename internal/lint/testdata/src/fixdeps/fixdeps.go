// Package fixdeps plants a third-party import, which the
// dependency-free policy forbids.
package fixdeps

import (
	"fmt"

	_ "github.com/fake/dep"   // want:stdlibonly
	_ "golang.org/x/sys/unix" // want:stdlibonly
)

// Hello only needs the standard library.
func Hello() string { return fmt.Sprintf("hi") }
