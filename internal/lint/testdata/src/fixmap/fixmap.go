// Package fixmap plants map-iteration-order violations and the
// sanctioned collect-then-sort patterns next to them. The first two bad
// cases regression-lock real bugs geolint's first self-run found in
// this repository: experiment output printed per map iteration
// (exp_casestudy.go) and a returned slice filled in map order
// (netsim.RoutedSlash24s).
package fixmap

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"routergeo/internal/stats"
)

// PrintRows emits one output line per map iteration — the
// exp_casestudy.go bug class.
func PrintRows(w io.Writer, rows map[string]int) {
	for name, v := range rows {
		fmt.Fprintf(w, "%s=%d\n", name, v) // want:maporder
	}
}

// WriteRows hits the method-call forms of the same bug.
func WriteRows(buf *bytes.Buffer, rows map[string]int) {
	for name := range rows {
		buf.WriteString(name) // want:maporder
	}
	for name := range rows {
		_, _ = io.WriteString(buf, name) // want:maporder
	}
}

// Keys returns a slice filled in map order and never sorted — the
// RoutedSlash24s bug class.
func Keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k) // want:maporder
	}
	return out
}

// Feed pushes samples into an ECDF in map order.
func Feed(e *stats.ECDF, m map[string]float64) {
	for _, v := range m {
		e.Add(v) // want:maporder
	}
}

// SortedKeys is the sanctioned pattern: collect, sort, return.
func SortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Ranked is sanctioned too: the comparator call reaches the slice
// through a conversion, as sort.Slice closures and sort.Sort adapters
// do in the real tree.
func Ranked(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Copy is order-insensitive: map in, map out.
func Copy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Count appends into a local that never escapes as a slice; returning
// len(locals) is order-insensitive.
func Count(m map[string]int) int {
	var locals []string
	for k := range m {
		locals = append(locals, k)
	}
	return len(locals)
}
