// Package fixpool exercises the poolescape analyzer: every way a
// sync.Pool-managed object can outlive its Get site, next to the legal
// get/use/put shapes the hot paths actually use.
package fixpool

import "sync"

type state struct {
	buf []byte
	sub *state
}

var pool = sync.Pool{New: func() any { return new(state) }}

type holder struct{ st *state }

var global *state
var globalBuf []byte
var table [4]*state

func leakReturn() *state {
	st := pool.Get().(*state)
	return st // want:poolescape
}

func leakReturnDirect() any {
	return pool.Get() // want:poolescape
}

func leakAlias() any {
	st := pool.Get().(*state)
	alias := st
	return alias // want:poolescape
}

func leakReturnBuf() []byte {
	s := pool.Get().(*state)
	defer pool.Put(s)
	return s.buf // want:poolescape
}

func leakChan(ch chan *state) {
	st := pool.Get().(*state)
	ch <- st // want:poolescape
}

func leakStoreField(h *holder) {
	st := pool.Get().(*state)
	h.st = st // want:poolescape
}

func leakStoreGlobal() {
	global = pool.Get().(*state) // want:poolescape
}

func leakStoreGlobalBuf() {
	st := pool.Get().(*state)
	defer pool.Put(st)
	globalBuf = st.buf // want:poolescape
}

func leakGlobalTable(i int) {
	st := pool.Get().(*state)
	table[i] = st // want:poolescape
}

// okUse is the canonical shape: Get inline, copy the answer out, Put.
func okUse() int {
	st := pool.Get().(*state)
	defer pool.Put(st)
	return len(st.buf)
}

// okCopy returns a fresh copy, not the pooled memory.
func okCopy() []byte {
	st := pool.Get().(*state)
	defer pool.Put(st)
	out := make([]byte, len(st.buf))
	copy(out, st.buf)
	return out
}

// okReset writes back into the pooled object's own fields — the normal
// buffer-reset pattern, nothing escapes.
func okReset() {
	st := pool.Get().(*state)
	st.buf = st.buf[:0]
	st.sub = nil
	pool.Put(st)
}

// okWorkerTable stores into a local per-worker table that is drained
// back into the pool before returning, like the sweep engine does.
func okWorkerTable(n int) {
	res := make([]*state, n)
	for i := range res {
		res[i] = pool.Get().(*state)
	}
	for _, st := range res {
		pool.Put(st)
	}
}
