// Package fixhot exercises the hotalloc analyzer: every
// allocation-introducing construct inside //geolint:hotpath functions,
// next to the compiler-elided and pre-sized shapes the real hot paths
// use. Unannotated functions are never flagged.
package fixhot

import "fmt"

type iface interface{ M() }

type impl struct{ x int }

func (impl) M() {}

func sink(v iface)        { v.M() }
func sinkAny(v any)       { _ = v }
func variadicSink(...any) {}

// growN mirrors the hot paths' resize-without-realloc helper; hotalloc
// treats its result as pre-sized backing.
func growN(s []byte, n int) []byte {
	if cap(s) < n {
		return make([]byte, n)
	}
	return s[:n]
}

//geolint:hotpath
func badFmt(n int) string {
	return fmt.Sprintf("%d", n) // want:hotalloc
}

//geolint:hotpath
func badConcat(a, b string) string {
	return a + b // want:hotalloc
}

//geolint:hotpath
func okConstConcat() string {
	return "geo" + "lint" // constant-folded at compile time
}

//geolint:hotpath
func badPlusEq(parts []string) string {
	s := ""
	for _, p := range parts {
		s += p // want:hotalloc
	}
	return s
}

//geolint:hotpath
func badClosure(xs []int) int {
	f := func() int { return len(xs) } // want:hotalloc
	return f()
}

//geolint:hotpath
func badMapLit() map[string]int {
	return map[string]int{"a": 1} // want:hotalloc
}

//geolint:hotpath
func badMakeMap() map[string]int {
	return make(map[string]int) // want:hotalloc
}

//geolint:hotpath
func badAppend(v int) []int {
	var out []int
	out = append(out, v) // want:hotalloc
	return out
}

//geolint:hotpath
func okPresizedAppend(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

//geolint:hotpath
func okResliceAppend(buf []byte, b byte) []byte {
	out := buf[:0]
	out = append(out, b)
	return out
}

//geolint:hotpath
func okParamAppend(dst []byte, b byte) []byte {
	return append(dst, b) // caller sized the backing: its contract
}

//geolint:hotpath
func okGrowNAppend(s []byte, n int) []byte {
	s = growN(s, n)
	s = append(s, 0)
	return s
}

//geolint:hotpath
func badBoxing(v impl) {
	sink(v) // want:hotalloc
}

//geolint:hotpath
func okIfaceToIface(v iface) {
	sink(v) // already an interface: no new box
}

type empty struct{}

//geolint:hotpath
func okZeroSize() {
	sinkAny(empty{}) // zero-size values box to a static sentinel
}

//geolint:hotpath
func badVariadicBoxing(n int) {
	variadicSink(n) // want:hotalloc
}

//geolint:hotpath
func okSpread(vs []any) {
	variadicSink(vs...) // the slice is passed as-is, nothing boxes
}

//geolint:hotpath
func okPanicArg(c bool) {
	if c {
		panic("invariant broken") // panicking paths are cold by definition
	}
}

//geolint:hotpath
func badStringConv(b []byte) string {
	return string(b) // want:hotalloc
}

//geolint:hotpath
func badBytesConv(s string) []byte {
	return []byte(s) // want:hotalloc
}

//geolint:hotpath
func okSwitchConv(b []byte) int {
	switch string(b) { // compiler-elided: no copy in a switch tag
	case "ips":
		return 1
	}
	return 0
}

//geolint:hotpath
func okCompareConv(b []byte) bool {
	return string(b) == "db" // compiler-elided in == operands
}

//geolint:hotpath
func okMapIndexConv(m map[string]int, b []byte) int {
	return m[string(b)] // compiler-elided in map indexes
}

// coldFmt has no annotation: hotalloc must stay silent here.
func coldFmt(n int) string {
	return fmt.Sprintf("%d", n)
}
