// Package fixsnaplayer plants snapshot-layer violations. The test loads
// it as a subpackage of internal/geodb/snapshot, where importing obs or
// the httpapi serving layer breaks the snapshot-below-serving rule while
// the parent geodb package (which snapshot decodes into) stays legal.
package fixsnaplayer

import (
	_ "routergeo/internal/geodb"
	_ "routergeo/internal/geodb/httpapi" // want:layering
	_ "routergeo/internal/obs"           // want:layering
)
