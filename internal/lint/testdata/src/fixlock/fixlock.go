// Package fixlock exercises the lockbalance analyzer: locks that
// escape on some control-flow path, double acquisitions, read/write
// mismatches — next to the balanced shapes the tree actually uses
// (defer, explicit unlock on every branch, labeled-loop discipline).
package fixlock

import "sync"

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func (g *guarded) okDefer() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func (g *guarded) okExplicitBothPaths(c bool) int {
	g.mu.Lock()
	if c {
		g.mu.Unlock()
		return 0
	}
	n := g.n
	g.mu.Unlock()
	return n
}

func (g *guarded) okDeferClosure() {
	g.mu.Lock()
	defer func() {
		g.n++
		g.mu.Unlock()
	}()
	g.n++
}

func (g *guarded) okCondDefer(c bool) {
	if c {
		g.mu.Lock()
		defer g.mu.Unlock()
	}
	_ = g.n
}

func (g *guarded) okTwoMutexes() {
	g.mu.Lock()
	g.rw.Lock()
	g.n++
	g.rw.Unlock()
	g.mu.Unlock()
}

func (g *guarded) okLabeledLoop(rows [][]int) int {
	total := 0
outer:
	for i, row := range rows {
		g.mu.Lock()
		for _, v := range row {
			if v == i {
				g.mu.Unlock()
				continue outer
			}
			total += v
		}
		g.mu.Unlock()
	}
	return total
}

func (g *guarded) badAcrossReturn(c bool) int {
	g.mu.Lock() // want:lockbalance
	if c {
		return 0 // leaves with the lock held
	}
	n := g.n
	g.mu.Unlock()
	return n
}

func (g *guarded) badDoubleLock() {
	g.mu.Lock()
	g.mu.Lock() // want:lockbalance
	g.n++
	g.mu.Unlock()
}

func (g *guarded) badUnlockTwice() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	g.mu.Unlock() // want:lockbalance
}

func (g *guarded) badRWMismatch() int {
	g.rw.RLock()
	n := g.n
	g.rw.Unlock() // want:lockbalance
	return n
}

func (g *guarded) badLockWhileRLocked() {
	g.rw.RLock()
	g.rw.Lock() // want:lockbalance
	g.n++
	g.rw.Unlock()
}

func (g *guarded) badRLockAcrossReturn(c bool) int {
	g.rw.RLock() // want:lockbalance
	if c {
		return 0
	}
	n := g.n
	g.rw.RUnlock()
	return n
}

func (g *guarded) badLockInLoop(rounds int) {
	for i := 0; i < rounds; i++ {
		g.mu.Lock() // want:lockbalance
		g.n++
	}
}
