// Package fixslog plants structured-logging violations: odd key/value
// tails, non-constant keys, and library code printing to stdout.
package fixslog

import (
	"fmt"
	"log/slog"
)

const stableKey = "stable"

// Bad breaks each slogkeys clause once.
func Bad(l *slog.Logger, name string) {
	slog.Info("msg", "key")                        // want:slogkeys
	slog.Info("msg", name, 1)                      // want:slogkeys
	l.Warn("msg", "a", 1, "b")                     // want:slogkeys
	fmt.Println("library code printing to stdout") // want:slogkeys
}

// Good mixes constant keys, named constants and slog.Attr values.
func Good(l *slog.Logger, err error) {
	slog.Info("msg", "key", 1, slog.Int("n", 2), stableKey, "v")
	l.Error("failed", "error", err)
	slog.With("component", "x").Info("ready")
}
