// Package fixgoro exercises the gorohygiene analyzer: goroutines with
// and without termination edges, closures capturing pooled state, and
// the one loop-capture shape that still races under Go 1.22 semantics
// (a pre-loop variable reassigned on every iteration).
package fixgoro

import (
	"context"
	"fmt"
	"sync"
)

func okWaitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func okCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func okChanRange(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

func okSelect(stop chan struct{}, tick chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-tick:
			}
		}
	}()
}

// watcher has a context parameter: launching it with a ctx is a
// termination edge even though the launcher cannot see its body.
func watcher(ctx context.Context) { <-ctx.Done() }

func okNamedWithCtx(ctx context.Context) {
	go watcher(ctx)
}

func okLoopIterVar(items []int, wg *sync.WaitGroup) {
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = it // per-iteration variable since go 1.22: not shared
		}()
	}
}

func badNoEdge() {
	go func() { // want:gorohygiene
		for {
		}
	}()
}

func spin() {
	for {
	}
}

func badNamedNoEdge() {
	go spin() // want:gorohygiene
}

func badExternalNoCtx() {
	go fmt.Sprintln("fire and forget") // want:gorohygiene
}

type buf struct{ b []byte }

var pool = sync.Pool{New: func() any { return new(buf) }}

func badPoolCapture(wg *sync.WaitGroup) {
	s := pool.Get().(*buf)
	defer pool.Put(s)
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.b = s.b[:0] // want:gorohygiene
	}()
}

func badLoopShared(items []int, wg *sync.WaitGroup) {
	var cur int
	for _, it := range items {
		cur = it
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = cur // want:gorohygiene
		}()
	}
	wg.Wait()
}
