package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadFixture loads testdata/src/<name> under the given synthetic
// import path, sharing one loader per test so the real module packages
// fixtures import are only type-checked once.
func loadFixture(t *testing.T, l *Loader, name, asPath string) *Package {
	t.Helper()
	pkg, err := l.LoadAs(filepath.Join("testdata", "src", name), asPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return pkg
}

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return l
}

// collectWants scans a fixture's comments for "want:<rule>" markers and
// returns the expected findings as "file.go:line:rule" keys.
func collectWants(fset *token.FileSet, pkg *Package) map[string]int {
	wants := map[string]int{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, field := range strings.Fields(c.Text) {
					rule, ok := strings.CutPrefix(field, "want:")
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					wants[fmt.Sprintf("%s:%d:%s", filepath.Base(pos.Filename), pos.Line, rule)]++
				}
			}
		}
	}
	return wants
}

// findingKeys maps findings onto the same key space as collectWants.
func findingKeys(fs []Finding) map[string]int {
	got := map[string]int{}
	for _, f := range fs {
		got[fmt.Sprintf("%s:%d:%s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule)]++
	}
	return got
}

// checkFixture runs the analyzers over one fixture and diffs actual
// findings against the want markers.
func checkFixture(t *testing.T, l *Loader, fixture, asPath string, analyzers []*Analyzer) {
	t.Helper()
	pkg := loadFixture(t, l, fixture, asPath)
	got := findingKeys(Run([]*Package{pkg}, l.Fset, analyzers))
	want := collectWants(l.Fset, pkg)
	keys := map[string]bool{}
	for k := range got {
		keys[k] = true
	}
	for k := range want {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		if got[k] != want[k] {
			t.Errorf("%s (as %s): finding %s: got %d, want %d", fixture, asPath, k, got[k], want[k])
		}
	}
}

func TestDeterminismFixture(t *testing.T) {
	l := newTestLoader(t)
	checkFixture(t, l, "fixdet", "routergeo/internal/core/fixdet", []*Analyzer{Determinism})
}

func TestDeterminismOutOfScope(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "fixdet", "routergeo/internal/netsim/fixdet")
	if fs := Run([]*Package{pkg}, l.Fset, []*Analyzer{Determinism}); len(fs) != 0 {
		t.Fatalf("determinism fired outside its packages: %v", fs)
	}
}

func TestMapOrderFixture(t *testing.T) {
	l := newTestLoader(t)
	checkFixture(t, l, "fixmap", "routergeo/internal/experiments/fixmap", []*Analyzer{MapOrder})
}

func TestCtxFirstFixture(t *testing.T) {
	l := newTestLoader(t)
	checkFixture(t, l, "fixctx", "routergeo/internal/ark/fixctx", []*Analyzer{CtxFirst})
}

func TestCtxFirstOutOfScope(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "fixctx", "routergeo/internal/geodb/fixctx")
	if fs := Run([]*Package{pkg}, l.Fset, []*Analyzer{CtxFirst}); len(fs) != 0 {
		t.Fatalf("ctxfirst fired outside its packages: %v", fs)
	}
}

// TestCtxFirstHTTPAPIScope pins the PR 5 scope extension: the HTTP
// client package is covered (minting a context there made remote
// lookups uncancellable), while its parent internal/geodb — checked by
// TestCtxFirstOutOfScope above — stays out.
func TestCtxFirstHTTPAPIScope(t *testing.T) {
	l := newTestLoader(t)
	checkFixture(t, l, "fixctx", "routergeo/internal/geodb/httpapi/fixctx", []*Analyzer{CtxFirst})
}

func TestStdlibOnlyFixture(t *testing.T) {
	l := newTestLoader(t)
	checkFixture(t, l, "fixdeps", "routergeo/internal/hints/fixdeps", []*Analyzer{StdlibOnly})
}

func TestLayeringFixture(t *testing.T) {
	l := newTestLoader(t)
	checkFixture(t, l, "fixlayer", "routergeo/internal/stats/fixlayer", []*Analyzer{Layering})
}

// TestLayeringSnapshotFixture pins the snapshot-layer rule: loaded as a
// snapshot subpackage, importing obs or httpapi is flagged while the
// geodb import (the type snapshot decodes into) passes.
func TestLayeringSnapshotFixture(t *testing.T) {
	l := newTestLoader(t)
	checkFixture(t, l, "fixsnaplayer", "routergeo/internal/geodb/snapshot/fixsnaplayer", []*Analyzer{Layering})
}

// TestLayeringSnapshotOutOfScope pins that the snapshot rule does not
// leak upward: the same fixture loaded as an httpapi subpackage (which
// legitimately imports obs and lives in the serving layer) stays clean.
func TestLayeringSnapshotOutOfScope(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "fixsnaplayer", "routergeo/internal/geodb/httpapi/fixsnaplayer")
	if fs := Run([]*Package{pkg}, l.Fset, []*Analyzer{Layering}); len(fs) != 0 {
		t.Fatalf("snapshot layering rule fired outside its subtree: %v", fs)
	}
}

func TestLayeringObsSubtree(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "layerobs", "routergeo/internal/obs/layerobs")
	fs := Run([]*Package{pkg}, l.Fset, []*Analyzer{Layering})
	if len(fs) != 1 {
		t.Fatalf("want exactly the geodb import flagged, got %v", fs)
	}
	if !strings.Contains(fs[0].Msg, "routergeo/internal/geodb") {
		t.Fatalf("flagged the wrong import: %v", fs[0])
	}
}

func TestPoolEscapeFixture(t *testing.T) {
	l := newTestLoader(t)
	checkFixture(t, l, "fixpool", "routergeo/internal/geodb/httpapi/fixpool", []*Analyzer{PoolEscape})
}

// TestPoolEscapeCoreScope pins that the rule also covers the
// measurement engine's pools.
func TestPoolEscapeCoreScope(t *testing.T) {
	l := newTestLoader(t)
	checkFixture(t, l, "fixpool", "routergeo/internal/core/fixpool", []*Analyzer{PoolEscape})
}

func TestPoolEscapeOutOfScope(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "fixpool", "routergeo/internal/stats/fixpool")
	if fs := Run([]*Package{pkg}, l.Fset, []*Analyzer{PoolEscape}); len(fs) != 0 {
		t.Fatalf("poolescape fired outside its packages: %v", fs)
	}
}

func TestSlogKeysFixture(t *testing.T) {
	l := newTestLoader(t)
	checkFixture(t, l, "fixslog", "routergeo/internal/geodb/fixslog", []*Analyzer{SlogKeys})
}

func TestSlogKeysAllowsPrintInCmd(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "slogcmd", "routergeo/cmd/slogcmd")
	if fs := Run([]*Package{pkg}, l.Fset, []*Analyzer{SlogKeys}); len(fs) != 0 {
		t.Fatalf("fmt.Println must be allowed under cmd/: %v", fs)
	}
}

func TestByName(t *testing.T) {
	sel, _, ok := ByName([]string{"maporder", "determinism"})
	if !ok || len(sel) != 2 || sel[0].Name != "maporder" || sel[1].Name != "determinism" {
		t.Fatalf("ByName selection broken: %v %v", sel, ok)
	}
	if _, bad, ok := ByName([]string{"nosuchrule"}); ok || bad != "nosuchrule" {
		t.Fatalf("ByName must reject unknown rules, got ok=%v bad=%q", ok, bad)
	}
}

func TestAnalyzersHaveDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
