package lint

import (
	"go/ast"
)

// deterministicPkgs are the packages whose outputs must be a pure
// function of their inputs and seeds: the measurement engine, the
// statistics under it, the lookup index, and the experiment runners.
// The parallel/serial byte-identity guarantee (TestParallelMatchesSerial)
// holds only while nothing in them reads the wall clock or an unseeded
// global RNG.
var deterministicPkgs = []string{
	"routergeo/internal/core",
	"routergeo/internal/stats",
	"routergeo/internal/ipx",
	"routergeo/internal/experiments",
}

// wallClockFuncs are the time package entry points that read or react
// to the wall clock. time.Duration arithmetic and constants stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTicker": true, "NewTimer": true, "Sleep": true,
}

// seededRandFuncs are the only math/rand entry points measurement code
// may touch: explicit construction from an explicit seed. Everything
// else (rand.Intn, rand.Float64, rand.Shuffle, rand.Seed, ...) either
// uses the global RNG or reseeds it, and both break replayability.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// Determinism forbids wall-clock reads and global/unseeded randomness
// inside the measurement packages.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "Measurement code (internal/core, internal/stats, internal/ipx, " +
		"internal/experiments) must be deterministic for a given seed: no " +
		"time.Now/time.Since/timers, and math/rand only through explicitly " +
		"seeded constructors (rand.New(rand.NewSource(seed))). This is the " +
		"invariant behind the byte-identical parallel/serial guarantee.",
	Run: runDeterminism,
}

func runDeterminism(p *Pass) {
	if !pathInAny(p.Pkg.Path, deterministicPkgs) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, fn, ok := pkgFuncCall(p.Pkg.Info, call)
			if !ok {
				return true
			}
			switch pkgPath {
			case "time":
				if wallClockFuncs[fn] {
					p.Reportf(call.Pos(),
						"time.%s reads the wall clock inside measurement code; results would stop being a pure function of inputs and seed", fn)
				}
			case "math/rand", "math/rand/v2":
				if !seededRandFuncs[fn] {
					p.Reportf(call.Pos(),
						"rand.%s uses the global or unseeded RNG; construct one with rand.New(rand.NewSource(seed)) and thread it through", fn)
				}
			}
			return true
		})
	}
}
