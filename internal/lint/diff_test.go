package lint

import (
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// gitIn runs one git command in dir, with identity pinned so commits
// work in a bare CI environment.
func gitIn(t *testing.T, dir string, args ...string) {
	t.Helper()
	full := append([]string{"-c", "user.name=t", "-c", "user.email=t@example.com"}, args...)
	cmd := exec.Command("git", full...)
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("git %v: %v\n%s", args, err, out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestChangedSince(t *testing.T) {
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not installed")
	}
	dir := t.TempDir()
	gitIn(t, dir, "init", "-q")
	writeFile(t, filepath.Join(dir, "kept.go"), "package a\n")
	writeFile(t, filepath.Join(dir, "edited.go"), "package a\n")
	gitIn(t, dir, "add", ".")
	gitIn(t, dir, "commit", "-q", "-m", "seed")

	writeFile(t, filepath.Join(dir, "edited.go"), "package a // changed\n")
	writeFile(t, filepath.Join(dir, "untracked.go"), "package a\n")

	changed, err := ChangedSince(dir, "HEAD")
	if err != nil {
		t.Fatalf("ChangedSince: %v", err)
	}
	for _, want := range []string{"edited.go", "untracked.go"} {
		if !changed[filepath.Join(dir, want)] {
			t.Errorf("%s missing from changed set %v", want, changed)
		}
	}
	if changed[filepath.Join(dir, "kept.go")] {
		t.Error("kept.go must not be in the changed set")
	}
}

func TestChangedSinceOutsideRepo(t *testing.T) {
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not installed")
	}
	dir := t.TempDir() // no .git: the caller must fall back to a full run
	if _, err := ChangedSince(dir, "HEAD"); err == nil {
		t.Fatal("want an error outside a git repository")
	}
}

func TestFilterByFile(t *testing.T) {
	fs := []Finding{
		{Rule: "r", Pos: token.Position{Filename: "/repo/a.go", Line: 1}},
		{Rule: "r", Pos: token.Position{Filename: "/repo/b.go", Line: 2}},
		{Rule: "r", Pos: token.Position{Filename: "/repo/a.go", Line: 3}},
	}
	got := FilterByFile(fs, map[string]bool{"/repo/a.go": true})
	if len(got) != 2 {
		t.Fatalf("want the two a.go findings, got %v", got)
	}
	for _, f := range got {
		if f.Pos.Filename != "/repo/a.go" {
			t.Errorf("wrong file survived the filter: %v", f)
		}
	}
}
