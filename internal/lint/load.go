package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package. Type errors do
// not abort a load: they are collected so AST-only analyzers still run
// over partially-checked code (fixture packages deliberately import
// unresolvable paths, for example).
type Package struct {
	// Path is the import path the package was loaded as, e.g.
	// "routergeo/internal/core".
	Path string
	// Dir is the directory the sources came from.
	Dir string
	// Files holds the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types and Info carry the go/types results. Types is non-nil even
	// when TypeErrors is not empty.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects every error the type checker reported.
	TypeErrors []error
}

// Loader parses and type-checks packages of one module using only the
// standard library: go/parser for syntax, go/types for semantics, and
// go/importer for the standard library's export data. Module-internal
// imports are type-checked from source, recursively and memoized.
type Loader struct {
	// Fset is shared by every package the loader touches, so positions
	// from different packages compare and print consistently.
	Fset *token.FileSet
	// Module is the module path from go.mod (e.g. "routergeo").
	Module string
	// Root is the absolute module root directory.
	Root string

	std     types.Importer
	pkgs    map[string]*Package
	stubs   map[string]*types.Package
	loading map[string]bool
}

// NewLoader builds a loader rooted at the module containing dir: it
// walks up from dir until it finds a go.mod and reads the module path
// from its first "module" line.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, module, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	return &Loader{
		Fset:    token.NewFileSet(),
		Module:  module,
		Root:    root,
		std:     importer.Default(),
		pkgs:    map[string]*Package{},
		stubs:   map[string]*types.Package{},
		loading: map[string]bool{},
	}, nil
}

// findModule walks up from dir looking for go.mod.
func findModule(dir string) (root, module string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Load resolves patterns relative to the module root — "./internal/..."
// walks recursively, "./cmd/geolint" names one package — and returns the
// matched packages sorted by import path. Directories without buildable
// Go files (and testdata trees) are skipped, matching go tooling.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		rec := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			rec, pat = true, rest
		}
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" || pat == "." {
			pat = "."
		}
		base := filepath.Join(l.Root, filepath.FromSlash(pat))
		if !rec {
			dirs[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if name == "testdata" || (p != base && strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				dirs[p] = true
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: walk %s: %w", pat, err)
		}
	}
	paths := make([]string, 0, len(dirs))
	for d := range dirs {
		rel, err := filepath.Rel(l.Root, d)
		if err != nil {
			return nil, err
		}
		ip := l.Module
		if rel != "." {
			ip = l.Module + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, ip := range paths {
		pkg, err := l.loadPath(ip)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadAs parses and type-checks the single directory dir as if its
// import path were asPath. Tests use it to run path-scoped analyzers
// over fixture packages living under testdata.
func (l *Loader) LoadAs(dir, asPath string) (*Package, error) {
	if p, ok := l.pkgs[asPath]; ok {
		return p, nil
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.check(asPath, abs)
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// internalPath reports whether ip belongs to the loader's module.
func (l *Loader) internalPath(ip string) bool {
	return ip == l.Module || strings.HasPrefix(ip, l.Module+"/")
}

// loadPath loads a module-internal import path from source, memoized.
func (l *Loader) loadPath(ip string) (*Package, error) {
	if p, ok := l.pkgs[ip]; ok {
		return p, nil
	}
	if l.loading[ip] {
		return nil, fmt.Errorf("lint: import cycle through %s", ip)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(ip, l.Module), "/")
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	return l.check(ip, dir)
}

// check parses dir and type-checks it as import path ip.
func (l *Loader) check(ip, dir string) (*Package, error) {
	l.loading[ip] = true
	defer delete(l.loading, ip)

	// go/build applies build constraints and GOOS/GOARCH file filtering,
	// so platform-gated siblings (cpu_unix.go vs cpu_other.go) don't
	// collide in one type-check.
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	names := append([]string{}, bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse: %w", err)
		}
		files = append(files, f)
	}

	pkg := &Package{Path: ip, Dir: dir, Files: files}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer:    importerFunc(l.importPkg),
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns a usable (if incomplete) package even on errors; the
	// analyzers tolerate missing type info rather than giving up.
	pkg.Types, _ = conf.Check(ip, l.Fset, files, pkg.Info)
	l.pkgs[ip] = pkg
	return pkg, nil
}

// importPkg resolves one import for the type checker: module-internal
// paths recurse into loadPath, everything else goes to the compiled
// standard-library importer. Unresolvable paths degrade to an empty
// placeholder package so analysis of the importer's AST can continue
// (the stdlibonly analyzer reports them; the type checker must not die).
func (l *Loader) importPkg(ip string) (*types.Package, error) {
	if ip == "unsafe" {
		return types.Unsafe, nil
	}
	if l.internalPath(ip) {
		p, err := l.loadPath(ip)
		if err != nil {
			return l.stub(ip), nil
		}
		return p.Types, nil
	}
	if p, err := l.std.Import(ip); err == nil {
		return p, nil
	}
	return l.stub(ip), nil
}

// stub returns a memoized empty placeholder for an unresolvable import.
func (l *Loader) stub(ip string) *types.Package {
	if p, ok := l.stubs[ip]; ok {
		return p
	}
	name := ip
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	p := types.NewPackage(ip, name)
	p.MarkComplete()
	l.stubs[ip] = p
	return p
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
