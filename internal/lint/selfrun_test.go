package lint

import (
	"testing"
)

// TestSelfRunClean runs every analyzer over the real tree — the same
// invocation as `make lint` — and requires zero findings. This is the
// regression lock for the invariants themselves: any new wall-clock
// read in measurement code, unsorted map iteration on an output path,
// misplaced context parameter, third-party import, layering breach or
// malformed slog call fails this test, not just the Makefile gate.
func TestSelfRunClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l := newTestLoader(t)
	pkgs, err := l.Load("./cmd/...", "./internal/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("self-run only saw %d packages; pattern expansion is broken", len(pkgs))
	}
	for _, f := range Run(pkgs, l.Fset, All()) {
		t.Errorf("geolint finding in the real tree: %v", f)
	}
}
