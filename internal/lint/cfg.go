package lint

// Control-flow graphs over go/ast. The framework's first four analyzers
// were purely syntactic walks; the concurrency rules (lockbalance) need
// path sensitivity — "every Lock reaches an Unlock on ALL paths" is a
// statement about the CFG, not about any one AST node. This file builds
// a per-function CFG from the AST alone (no SSA, no x/tools), precise
// enough for the forward may-analyses in dataflow.go and small enough
// to hold in one's head:
//
//   - Blocks hold the nodes evaluated on that path segment, in
//     evaluation order: whole simple statements, plus the condition /
//     tag / range expressions of the control statement that ends the
//     block. Branch bodies are never stored inside a block — they get
//     their own blocks and edges.
//   - return, panic(...) and the implicit fall-off-the-end all edge to
//     the single Exit block, so "at function exit" is one program point.
//   - defer is recorded at its registration site (the DeferStmt node
//     appears in its block, and in CFG.Defers); analyses that care about
//     deferred calls treat a registered defer as running on every path
//     from its registration to Exit. That is exactly Go's semantics for
//     the may-analyses here — a defer seen on SOME path MAY run at exit.
//   - break/continue (labeled or not), goto, and switch fallthrough
//     produce real edges; unreachable blocks (code after return, bodies
//     of for{} nobody breaks out of) are pruned.
//   - Nested function literals are opaque: a FuncLit is a value, not
//     control flow of the enclosing function. Build a separate CFG for
//     its body (FuncBodies yields every declared and literal function).
//
// What this deliberately cannot prove: panics from called functions
// (only explicit panic(...) gets an exit edge), goroutine interleavings,
// and aliasing beyond what the analyses track themselves.

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A Block is one straight-line segment of a function: the nodes
// evaluated in order, then a transfer of control to one of Succs.
type Block struct {
	// Index is the block's position in CFG.Blocks after pruning; Entry
	// is always 0 and Exit always last.
	Index int
	// Kind names how the block arose ("entry", "exit", "if.then",
	// "for.head", "range.body", "switch.case", "select.comm",
	// "label.retry", ...) — diagnostic only, but pinned by tests.
	Kind string
	// Nodes are the statements and control expressions evaluated in this
	// block, in evaluation order. Control statements themselves are not
	// stored — only their evaluated parts (an IfStmt contributes its
	// Cond here and its branches elsewhere).
	Nodes []ast.Node
	// Succs are the possible successors in source order.
	Succs []*Block
}

// A CFG is the control-flow graph of one function body.
type CFG struct {
	Entry *Block
	Exit  *Block
	// Blocks holds every reachable block plus Exit, Entry first and Exit
	// last, numbered by Index.
	Blocks []*Block
	// Defers lists every defer statement of the body (including ones in
	// unreachable code), in source order.
	Defers []*ast.DeferStmt
}

// NewCFG builds the control-flow graph of body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:         &CFG{},
		labelBlocks: map[string]*Block{},
	}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = &Block{Kind: "exit"} // appended (and numbered) in finish
	b.cur = b.cfg.Entry
	b.stmt(body)
	b.jump(b.cfg.Exit) // implicit return at the end of the body
	b.finish()
	return b.cfg
}

// cfgBuilder carries the in-progress graph: the current block under
// construction, the stack of enclosing breakable/continuable contexts,
// and the label table goto resolution patches against.
type cfgBuilder struct {
	cfg *CFG
	// cur is the block new nodes append to; nil after a terminator
	// (return, break, goto) until the next label or join point revives
	// the flow — nodes added while nil land in a fresh unreachable block
	// that pruning removes.
	cur *Block

	// breaks is the stack of every enclosing breakable statement —
	// loops, switches, selects — innermost last: the targets of break.
	breaks []breakCtx
	// loops is the stack of enclosing for/range statements only,
	// innermost last: the targets of continue.
	loops []loopCtx

	// pendingLabel is the label naming the NEXT loop/switch statement,
	// so `outer: for ...` registers outer as that loop's label.
	pendingLabel string

	labelBlocks map[string]*Block
	gotoFixes   []gotoFix

	// fallTarget is the body block of the next case clause, the target
	// of a fallthrough in the current one.
	fallTarget *Block
}

type loopCtx struct {
	label  string
	contTo *Block
}

type breakCtx struct {
	label   string
	breakTo *Block
}

type gotoFix struct {
	from  *Block
	label string
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// add appends a node to the current block, reviving a dead flow into a
// fresh (unreachable, later pruned) block if needed.
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock("dead")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// edge links from → to.
func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// jump ends the current block with an edge to target and kills the flow.
func (b *cfgBuilder) jump(target *Block) {
	b.edge(b.cur, target)
	b.cur = nil
}

// moveTo ends the current block with an edge into next and continues
// building there.
func (b *cfgBuilder) moveTo(next *Block) {
	b.edge(b.cur, next)
	b.cur = next
}

// takeLabel consumes the pending label for the statement being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.IfStmt:
		b.stmt(s.Init)
		b.add(s.Cond)
		cond := b.cur
		join := &Block{Kind: "if.join"} // registered after the branches
		then := b.newBlock("if.then")
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, join)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(cond, join)
		}
		b.cfg.Blocks = append(b.cfg.Blocks, join)
		b.cur = join
	case *ast.ForStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		done := b.newBlock("for.done")
		b.moveTo(head)
		b.add(s.Cond)
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, done)
		}
		contTo := head
		if post != nil {
			contTo = post
		}
		b.breaks = append(b.breaks, breakCtx{label: label, breakTo: done})
		b.loops = append(b.loops, loopCtx{label: label, contTo: contTo})
		if label != "" {
			b.labelBlocks[label] = head
		}
		b.cur = body
		b.stmt(s.Body)
		if post != nil {
			b.moveTo(post)
			b.stmt(s.Post)
		}
		b.jump(head)
		b.loops = b.loops[:len(b.loops)-1]
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = done
	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.moveTo(head)
		b.add(s.X)
		b.edge(head, body)
		b.edge(head, done)
		b.breaks = append(b.breaks, breakCtx{label: label, breakTo: done})
		b.loops = append(b.loops, loopCtx{label: label, contTo: head})
		if label != "" {
			b.labelBlocks[label] = head
		}
		b.cur = body
		b.stmt(s.Body)
		b.jump(head)
		b.loops = b.loops[:len(b.loops)-1]
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = done
	case *ast.SwitchStmt:
		b.switchLike(s.Init, s.Tag, s.Body, "switch")
	case *ast.TypeSwitchStmt:
		// The x := y.(type) assign is recorded once in the head — it is
		// conceptually re-bound per clause, but for the forward
		// may-analyses here one evaluation before the branch is sound.
		b.switchLike(s.Init, nil, s.Body, "typeswitch", s.Assign)
	case *ast.SelectStmt:
		label := b.takeLabel()
		sel := b.cur
		if sel == nil {
			sel = b.newBlock("dead")
			b.cur = sel
		}
		done := &Block{Kind: "select.done"}
		b.breaks = append(b.breaks, breakCtx{label: label, breakTo: done})
		for _, c := range s.Body.List {
			comm := c.(*ast.CommClause)
			blk := b.newBlock("select.comm")
			b.edge(sel, blk)
			b.cur = blk
			b.stmt(comm.Comm)
			for _, st := range comm.Body {
				b.stmt(st)
			}
			b.edge(b.cur, done)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		if len(s.Body.List) == 0 {
			b.edge(sel, done)
		}
		b.cfg.Blocks = append(b.cfg.Blocks, done)
		b.cur = done
	case *ast.LabeledStmt:
		name := s.Label.Name
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// The loop/switch registers its own head under this label.
			b.pendingLabel = name
			b.stmt(s.Stmt)
		default:
			lb := b.newBlock("label." + name)
			b.moveTo(lb)
			b.labelBlocks[name] = lb
			b.stmt(s.Stmt)
		}
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			b.jump(b.breakTarget(s.Label))
		case token.CONTINUE:
			b.jump(b.continueTarget(s.Label))
		case token.GOTO:
			b.add(s)
			b.gotoFixes = append(b.gotoFixes, gotoFix{from: b.cur, label: s.Label.Name})
			b.cur = nil
		case token.FALLTHROUGH:
			b.jump(b.fallTarget)
		}
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)
	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isPanicCall(call) {
			b.jump(b.cfg.Exit)
		}
	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt, EmptyStmt:
		// straight-line, no control transfer.
		b.add(s)
	}
}

// switchLike builds switch and type-switch graphs: the head evaluates
// init and the tag, every case clause is a block fed from the head, and
// fallthrough edges into the next clause's block.
func (b *cfgBuilder) switchLike(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, kind string, extra ...ast.Node) {
	label := b.takeLabel()
	b.stmt(init)
	if tag != nil {
		b.add(tag)
	}
	for _, n := range extra {
		b.add(n)
	}
	head := b.cur
	if head == nil {
		head = b.newBlock("dead")
		b.cur = head
	}
	done := &Block{Kind: kind + ".done"}
	b.breaks = append(b.breaks, breakCtx{label: label, breakTo: done})

	var clauses []*ast.CaseClause
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock(kind + ".case")
		b.edge(head, blocks[i])
		if c.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, done)
	}
	for i, c := range clauses {
		b.cur = blocks[i]
		for _, e := range c.List {
			b.add(e)
		}
		if i+1 < len(blocks) {
			b.fallTarget = blocks[i+1]
		} else {
			b.fallTarget = nil
		}
		for _, st := range c.Body {
			b.stmt(st)
		}
		b.edge(b.cur, done)
	}
	b.fallTarget = nil
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cfg.Blocks = append(b.cfg.Blocks, done)
	b.cur = done
}

// breakTarget resolves a break to its innermost (or labeled) enclosing
// loop, switch or select.
func (b *cfgBuilder) breakTarget(label *ast.Ident) *Block {
	if label == nil {
		if n := len(b.breaks); n > 0 {
			return b.breaks[n-1].breakTo
		}
		return b.cfg.Exit
	}
	for i := len(b.breaks) - 1; i >= 0; i-- {
		if b.breaks[i].label == label.Name {
			return b.breaks[i].breakTo
		}
	}
	return b.cfg.Exit
}

// continueTarget resolves a continue to its loop's post/head block.
func (b *cfgBuilder) continueTarget(label *ast.Ident) *Block {
	if label == nil {
		if n := len(b.loops); n > 0 {
			return b.loops[n-1].contTo
		}
		return b.cfg.Exit
	}
	for i := len(b.loops) - 1; i >= 0; i-- {
		if b.loops[i].label == label.Name {
			return b.loops[i].contTo
		}
	}
	return b.cfg.Exit
}

// finish resolves gotos, prunes unreachable blocks and numbers the rest.
func (b *cfgBuilder) finish() {
	for _, fix := range b.gotoFixes {
		target, ok := b.labelBlocks[fix.label]
		if !ok {
			target = b.cfg.Exit // malformed source; stay safe
		}
		b.edge(fix.from, target)
	}
	reach := map[*Block]bool{b.cfg.Entry: true}
	work := []*Block{b.cfg.Entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range blk.Succs {
			if !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}
	kept := b.cfg.Blocks[:0]
	for _, blk := range b.cfg.Blocks {
		if reach[blk] && blk != b.cfg.Exit {
			kept = append(kept, blk)
		}
	}
	kept = append(kept, b.cfg.Exit)
	for i, blk := range kept {
		blk.Index = i
		// Drop edges into pruned blocks (possible when a kept block
		// branched into a region that only returned).
		ss := blk.Succs[:0]
		for _, s := range blk.Succs {
			if reach[s] || s == b.cfg.Exit {
				ss = append(ss, s)
			}
		}
		blk.Succs = ss
	}
	b.cfg.Blocks = kept
}

// isPanicCall reports whether call is the predeclared panic. A syntactic
// check (no types.Info at CFG-build time): anyone shadowing panic in
// this codebase has worse problems than an imprecise CFG.
func isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// Dump renders the graph deterministically for tests and debugging: one
// line per block with its kind, node count and successor indices.
func (c *CFG) Dump() string {
	var sb strings.Builder
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "b%d %s[%d]", blk.Index, blk.Kind, len(blk.Nodes))
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// FuncBodies yields every function body of the package — declarations
// and function literals alike — with a printable name. Analyses that
// build CFGs use it so nested literals are analyzed as their own
// functions, never as straight-line code of their parent.
func FuncBodies(pkg *Package, fn func(name string, node ast.Node, body *ast.BlockStmt)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				name = recvTypeName(fd.Recv.List[0].Type) + "." + name
			}
			fn(name, fd, fd.Body)
			base := name
			i := 0
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					i++
					fn(fmt.Sprintf("%s.func%d", base, i), lit, lit.Body)
				}
				return true
			})
		}
	}
}

// recvTypeName renders a receiver type for diagnostics.
func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return "?"
}

// inspectShallow walks n like ast.Inspect but does not descend into
// nested function literals: a FuncLit is a value of the enclosing
// function, and its body belongs to its own CFG.
func inspectShallow(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return f(m)
	})
}
