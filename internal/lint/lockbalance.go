package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockBalance checks, per function, that every sync.Mutex/RWMutex Lock
// is released on every control-flow path. It is the first analyzer
// built on the CFG + forward may-analysis layer (cfg.go, dataflow.go):
// the lock state of each mutex is a lattice fact propagated through
// branches, loops, labeled breaks and defers to the function's single
// exit point.
var LockBalance = &Analyzer{
	Name: "lockbalance",
	Doc: "Every mu.Lock()/mu.RLock() must reach its Unlock/RUnlock on ALL " +
		"control-flow paths of the function (defer mu.Unlock() counts for " +
		"every path after its registration). Flagged: returning — or " +
		"panicking — with the lock still held on some path, locking a mutex " +
		"that may already be held (self-deadlock), unlocking a mutex that " +
		"was never locked, and releasing a read lock with Unlock or a write " +
		"lock with RUnlock. Helpers that intentionally return holding a " +
		"lock need a //lint:ignore with the pairing explained.",
	Run: runLockBalance,
}

// Per-mutex lock state, a may-set: the states the mutex can be in on at
// least one path reaching a program point.
type lockMask uint8

const (
	mayUnlocked  lockMask = 1 << iota
	mayLocked             // held via Lock
	mayRLocked            // held via RLock
	deferUnlock           // a defer mu.Unlock() is registered
	deferRUnlock          // a defer mu.RUnlock() is registered
)

// lockFact is the dataflow fact: the state of every mutex the function
// touches, keyed by the rendered receiver path ("m.mu", "errMu"). pos
// remembers the earliest Lock site still unreleased, for diagnostics.
type lockFact map[string]lockInfo

type lockInfo struct {
	mask lockMask
	pos  token.Pos // earliest acquisition site with a held state in mask
}

// lockFlow is the FlowAnalysis. Reports are emitted from Transfer
// (double-lock, bad unlock) and after the flow (held at exit); the
// reported set dedups across fixpoint re-visits of the same node.
type lockFlow struct {
	pass     *Pass
	info     *types.Info
	reported map[token.Pos]bool
}

func (lf *lockFlow) Entry() lockFact { return lockFact{} }

func (lf *lockFlow) Equal(a, b lockFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		if vb, ok := b[k]; !ok || va != vb {
			return false
		}
	}
	return true
}

func (lf *lockFlow) Join(a, b lockFact) lockFact {
	out := make(lockFact, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if cur, ok := out[k]; ok {
			merged := lockInfo{mask: cur.mask | v.mask, pos: cur.pos}
			if v.pos != token.NoPos && (merged.pos == token.NoPos || v.pos < merged.pos) {
				merged.pos = v.pos
			}
			out[k] = merged
		} else {
			out[k] = v
		}
	}
	return out
}

func (lf *lockFlow) Transfer(fact lockFact, n ast.Node) lockFact {
	// Collect the mutex operations of this node in evaluation order.
	type op struct {
		key    string
		method string
		pos    token.Pos
	}
	var ops []op
	addCall := func(call *ast.CallExpr) {
		recv, method, ok := methodCall(lf.info, call)
		if !ok || !isMutexMethod(recv, method) {
			return
		}
		sel := call.Fun.(*ast.SelectorExpr)
		key, ok := exprPath(sel.X)
		if !ok {
			return
		}
		ops = append(ops, op{key: key, method: method, pos: call.Pos()})
	}
	switch s := n.(type) {
	case *ast.DeferStmt:
		// defer mu.Unlock() — or a one-level closure doing only that —
		// registers a discharge that runs on every path to exit.
		if recv, method, ok := methodCall(lf.info, s.Call); ok && isMutexMethod(recv, method) {
			if key, ok := exprPath(s.Call.Fun.(*ast.SelectorExpr).X); ok {
				fact = fact.clone()
				cur := fact[key]
				switch method {
				case "Unlock":
					cur.mask |= deferUnlock
				case "RUnlock":
					cur.mask |= deferRUnlock
				case "Lock", "RLock":
					// defer mu.Lock() is always wrong; flag as double-lock
					// territory rather than modeling it.
					lf.reportOnce(s.Call.Pos(), "defer %s.%s() acquires a lock at function exit with nothing left to release it", key, method)
				}
				fact[key] = cur
			}
			return fact
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			fact = fact.clone()
			inspectShallow(lit.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if recv, method, ok := methodCall(lf.info, call); ok && isMutexMethod(recv, method) {
					if key, ok := exprPath(call.Fun.(*ast.SelectorExpr).X); ok {
						cur := fact[key]
						switch method {
						case "Unlock":
							cur.mask |= deferUnlock
						case "RUnlock":
							cur.mask |= deferRUnlock
						}
						fact[key] = cur
					}
				}
				return true
			})
			return fact
		}
		return fact
	default:
		inspectShallow(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				addCall(call)
			}
			return true
		})
	}
	if len(ops) == 0 {
		return fact
	}

	fact = fact.clone()
	for _, o := range ops {
		cur, seen := fact[o.key]
		if !seen {
			cur = lockInfo{mask: mayUnlocked}
		}
		held := cur.mask & (mayLocked | mayRLocked)
		switch o.method {
		case "Lock":
			if held&mayLocked != 0 {
				lf.reportOnce(o.pos, "%s.Lock() when the mutex may already be locked (acquired at %s) — self-deadlock on that path", o.key, lf.pass.Fset.Position(cur.pos))
			} else if held&mayRLocked != 0 {
				lf.reportOnce(o.pos, "%s.Lock() while a read lock may be held (RLock at %s) — RWMutex writers wait for readers, deadlocking this goroutine against itself", o.key, lf.pass.Fset.Position(cur.pos))
			}
			cur.mask = (cur.mask &^ (mayUnlocked | mayRLocked)) | mayLocked
			cur.pos = o.pos
		case "RLock":
			if held&mayLocked != 0 {
				lf.reportOnce(o.pos, "%s.RLock() while the write lock may be held (Lock at %s) — self-deadlock on that path", o.key, lf.pass.Fset.Position(cur.pos))
			}
			cur.mask = (cur.mask &^ mayUnlocked) | mayRLocked
			if cur.pos == token.NoPos || held == 0 {
				cur.pos = o.pos
			}
		case "Unlock":
			if held == 0 && seen {
				lf.reportOnce(o.pos, "%s.Unlock() when the mutex cannot be locked on any path here", o.key)
			} else if held == mayRLocked {
				lf.reportOnce(o.pos, "%s.Unlock() releasing a read lock (RLock at %s) — use RUnlock", o.key, lf.pass.Fset.Position(cur.pos))
			}
			cur.mask = (cur.mask &^ (mayLocked | mayRLocked)) | mayUnlocked
			cur.pos = token.NoPos
		case "RUnlock":
			if held == mayLocked {
				lf.reportOnce(o.pos, "%s.RUnlock() releasing a write lock (Lock at %s) — use Unlock", o.key, lf.pass.Fset.Position(cur.pos))
			}
			cur.mask = (cur.mask &^ (mayLocked | mayRLocked)) | mayUnlocked
			cur.pos = token.NoPos
		}
		fact[o.key] = cur
	}
	return fact
}

func (f lockFact) clone() lockFact {
	out := make(lockFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func (lf *lockFlow) reportOnce(pos token.Pos, format string, args ...any) {
	if lf.reported[pos] {
		return
	}
	lf.reported[pos] = true
	lf.pass.Reportf(pos, format, args...)
}

// isMutexMethod reports whether method on recv is a sync.Mutex or
// sync.RWMutex lock operation.
func isMutexMethod(recv types.Type, method string) bool {
	switch method {
	case "Lock", "Unlock":
		return namedFrom(recv, "sync", "Mutex") || namedFrom(recv, "sync", "RWMutex")
	case "RLock", "RUnlock":
		return namedFrom(recv, "sync", "RWMutex")
	}
	return false
}

// exprPath renders a receiver expression as a stable key: an identifier
// or a selector chain rooted at one ("m.mu", "s.state.mu"). Anything
// else (map/slice elements, call results) is not tracked — lock state
// through those is beyond a per-function analysis.
func exprPath(e ast.Expr) (string, bool) {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name, true
	case *ast.ParenExpr:
		return exprPath(v.X)
	case *ast.StarExpr:
		return exprPath(v.X)
	case *ast.SelectorExpr:
		base, ok := exprPath(v.X)
		if !ok {
			return "", false
		}
		return base + "." + v.Sel.Name, true
	}
	return "", false
}

func runLockBalance(p *Pass) {
	FuncBodies(p.Pkg, func(name string, node ast.Node, body *ast.BlockStmt) {
		cfg := NewCFG(body)
		lf := &lockFlow{pass: p, info: p.Pkg.Info, reported: map[token.Pos]bool{}}
		exitIn, _ := ForwardFlow[lockFact](cfg, lf)

		fact := exitIn[cfg.Exit]
		keys := make([]string, 0, len(fact))
		for k := range fact {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v := fact[k]
			if v.mask&mayLocked != 0 && v.mask&deferUnlock == 0 {
				lf.reportOnce(v.pos, "%s.Lock() is not released on every path to return — add defer %s.Unlock() or unlock before each return", k, k)
			}
			if v.mask&mayRLocked != 0 && v.mask&deferRUnlock == 0 {
				lf.reportOnce(v.pos, "%s.RLock() is not released on every path to return — add defer %s.RUnlock() or unlock before each return", k, k)
			}
		}
	})
}
