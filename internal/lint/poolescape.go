package lint

import (
	"go/ast"
	"go/types"
)

// poolEscapePkgs are the packages whose hot paths recycle state through
// sync.Pool: the measurement engine's per-worker resolvers and sample
// buffers, and the server's pooled request state.
var poolEscapePkgs = []string{
	"routergeo/internal/core",
	"routergeo/internal/geodb/httpapi",
}

// PoolEscape flags sync.Pool-managed objects that outlive the function
// that got them.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc: "An object obtained from a sync.Pool (internal/core's resolvers and " +
		"sample buffers, httpapi's request state) must not outlive the " +
		"handler or sweep that called Get: returning it (or a field of it), " +
		"sending it on a channel, or storing it into a struct field or " +
		"package variable lets it be read after the next Get reuses the " +
		"memory. Get inline at the use site, copy data out, and Put before " +
		"leaving. Alias tracking is single-level (y := x), so keep Get " +
		"results in the variable that received them.",
	Run: runPoolEscape,
}

func runPoolEscape(p *Pass) {
	if !pathInAny(p.Pkg.Path, poolEscapePkgs) {
		return
	}
	info := p.Pkg.Info
	inspectFuncs(p.Pkg, func(_ *ast.File, fn *ast.FuncDecl) {
		tainted := poolTainted(info, fn.Body)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ReturnStmt:
				for _, res := range s.Results {
					if name, ok := poolDerived(info, res, tainted); ok {
						p.Reportf(res.Pos(),
							"%s holds sync.Pool-managed memory and is returned; the next Get reuses it under the caller — copy the data out and Put before returning", name)
					}
				}
			case *ast.SendStmt:
				if name, ok := poolDerived(info, s.Value, tainted); ok {
					p.Reportf(s.Value.Pos(),
						"%s holds sync.Pool-managed memory and is sent on a channel; the receiver races the next Get for it — send a copy instead", name)
				}
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, lhs := range s.Lhs {
					kind, ok := escapingStore(info, lhs, tainted)
					if !ok {
						continue
					}
					if name, derived := poolDerived(info, s.Rhs[i], tainted); derived {
						p.Reportf(s.Rhs[i].Pos(),
							"%s holds sync.Pool-managed memory and is stored into a %s; it outlives the Get site there — copy the data out instead", name, kind)
					}
				}
			}
			return true
		})
	})
}

// poolTainted collects the local variables of body bound to a sync.Pool
// Get result: first every direct `x := pool.Get().(*T)` binding, then
// one level of plain aliasing (`y := x`). Deeper chains and flows
// through containers are out of scope — the codebase convention is to
// keep the Get result in the variable that received it.
func poolTainted(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	type alias struct{ dst, src types.Object }
	var aliases []alias
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, isID := lhs.(*ast.Ident)
			if !isID {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			// Only locals become tainted carriers; a package-level var
			// receiving a Get result is itself the escape, not an alias.
			if pkg := obj.Pkg(); pkg != nil && obj.Parent() == pkg.Scope() {
				continue
			}
			if containsPoolGet(info, as.Rhs[i]) {
				tainted[obj] = true
			} else if src := rootIdentObj(info, as.Rhs[i]); src != nil {
				aliases = append(aliases, alias{obj, src})
			}
		}
		return true
	})
	for _, a := range aliases {
		if tainted[a.src] {
			tainted[a.dst] = true
		}
	}
	return tainted
}

// isPoolGet reports whether call is sync.Pool.Get on any receiver.
func isPoolGet(info *types.Info, call *ast.CallExpr) bool {
	recv, name, ok := methodCall(info, call)
	return ok && name == "Get" && namedFrom(recv, "sync", "Pool")
}

// containsPoolGet reports whether any subexpression of e calls
// sync.Pool.Get.
func containsPoolGet(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPoolGet(info, call) {
			found = true
		}
		return !found
	})
	return found
}

// rootIdentObj unwraps parens, type assertions and &x down to a bare
// identifier's object; anything else (calls, literals, selectors)
// returns nil so aliasing stays a same-object copy.
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return info.Uses[v]
		case *ast.ParenExpr:
			e = v.X
		case *ast.TypeAssertExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// poolDerived reports whether e exposes pool-managed memory: a tainted
// identifier, any selector/index/slice path rooted at one (st.buf is
// the pooled object's memory too), or a direct pool.Get() call. The
// walk stops at other calls — `len(st.buf)` exposes a length, not the
// memory — and returns the root's name for the diagnostic.
func poolDerived(info *types.Info, e ast.Expr, tainted map[types.Object]bool) (string, bool) {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil && tainted[obj] {
				return v.Name, true
			}
			return "", false
		case *ast.ParenExpr:
			e = v.X
		case *ast.TypeAssertExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.CallExpr:
			if isPoolGet(info, v) {
				return "the Get result", true
			}
			return "", false
		default:
			return "", false
		}
	}
}

// escapingStore classifies an assignment target: a store through a
// struct field or into a package-level variable escapes the function;
// locals (including per-worker tables indexed by a local slice) do not.
// Writes back into a pooled object's own fields (st.buf = st.buf[:0])
// are the normal reset pattern and are exempt — the root being tainted
// means nothing new escapes.
func escapingStore(info *types.Info, lhs ast.Expr, tainted map[types.Object]bool) (kind string, ok bool) {
	for {
		switch v := lhs.(type) {
		case *ast.Ident:
			obj := info.Uses[v]
			if obj == nil {
				return "", false
			}
			if tainted[obj] {
				return "", false
			}
			if pkg := obj.Pkg(); pkg != nil && obj.Parent() == pkg.Scope() {
				return "package variable", true
			}
			return "", false
		case *ast.ParenExpr:
			lhs = v.X
		case *ast.StarExpr:
			lhs = v.X
		case *ast.IndexExpr:
			lhs = v.X
		case *ast.SelectorExpr:
			if id, isID := v.X.(*ast.Ident); isID {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					return "package variable", true
				}
			}
			if _, derived := poolDerived(info, v.X, tainted); derived {
				return "", false
			}
			return "struct field", true
		default:
			return "", false
		}
	}
}
