package lint

import (
	"strconv"
)

// layerRule forbids packages under from from importing anything under
// any of to, except paths under an allow prefix (a package's own
// subtree is always allowed).
type layerRule struct {
	from  string
	to    []string
	allow []string
	why   string
}

// layerRules is the explicit import DAG. The leaves (stats, ipx) stay
// free of observability and database concerns so they can be reasoned
// about — and benchmarked — in isolation; obs sits outside the domain
// entirely; and cmd binaries are composition roots, never libraries.
var layerRules = []layerRule{
	{
		from: "routergeo/internal/stats",
		to:   []string{"routergeo/internal/obs", "routergeo/internal/geodb"},
		why:  "stats is a leaf: pure numeric machinery with no logging or database knowledge",
	},
	{
		from: "routergeo/internal/ipx",
		to:   []string{"routergeo/internal/obs", "routergeo/internal/geodb"},
		why:  "ipx is a leaf: the lookup index must not depend on observability or database layers",
	},
	{
		from:  "routergeo/internal/obs",
		to:    []string{"routergeo/internal"},
		allow: []string{"routergeo/internal/obs"},
		why:   "obs is infrastructure: it imports nothing internal so every package can import it",
	},
	{
		from: "routergeo/internal/geodb/snapshot",
		to: []string{
			"routergeo/internal/obs",
			"routergeo/internal/geodb/httpapi",
		},
		why: "snapshot sits below the serving layer: the format must load in any binary with no observability or HTTP baggage",
	},
	{
		from: "routergeo",
		to:   []string{"routergeo/cmd"},
		why:  "cmd packages are binaries (composition roots), never imported",
	},
}

// Layering enforces the explicit import DAG between the module's
// packages.
var Layering = &Analyzer{
	Name: "layering",
	Doc: "Enforces the module's import DAG: internal/stats and " +
		"internal/ipx may not import internal/obs or internal/geodb, " +
		"internal/obs imports nothing internal, " +
		"internal/geodb/snapshot may not import internal/obs or the " +
		"httpapi serving layer, and no package may import anything " +
		"under cmd/.",
	Run: runLayering,
}

func runLayering(p *Pass) {
	for _, rule := range layerRules {
		if !pathIn(p.Pkg.Path, rule.from) {
			continue
		}
		for _, f := range p.Pkg.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if violates(p.Pkg.Path, path, rule) {
					p.Reportf(imp.Pos(), "%s may not import %s: %s", p.Pkg.Path, path, rule.why)
				}
			}
		}
	}
}

// violates reports whether importing path from pkgPath breaks rule.
func violates(pkgPath, path string, rule layerRule) bool {
	if pathIn(path, pkgPath) || !pathInAny(path, rule.to) {
		return false
	}
	for _, a := range rule.allow {
		if pathIn(path, a) {
			return false
		}
	}
	return true
}
