package lint

import (
	"strings"
	"testing"
)

func TestAtomicMixFixture(t *testing.T) {
	l := newTestLoader(t)
	checkFixture(t, l, "fixatomic", "routergeo/internal/obs/fixatomic", []*Analyzer{AtomicMix})
}

// TestAtomicMixCoreScope pins that the serving tier and the measurement
// engine are both covered.
func TestAtomicMixCoreScope(t *testing.T) {
	l := newTestLoader(t)
	checkFixture(t, l, "fixatomic", "routergeo/internal/core/fixatomic", []*Analyzer{AtomicMix})
}

func TestAtomicMixOutOfScope(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "fixatomic", "routergeo/internal/stats/fixatomic")
	if fs := Run([]*Package{pkg}, l.Fset, []*Analyzer{AtomicMix}); len(fs) != 0 {
		t.Fatalf("atomicmix fired outside its packages: %v", fs)
	}
}

// TestLockBalanceFixture runs tree-wide (a lock imbalance is a bug in
// any package), so the synthetic import path is arbitrary.
func TestLockBalanceFixture(t *testing.T) {
	l := newTestLoader(t)
	checkFixture(t, l, "fixlock", "routergeo/internal/geodb/httpapi/fixlock", []*Analyzer{LockBalance})
}

func TestGoroHygieneFixture(t *testing.T) {
	l := newTestLoader(t)
	checkFixture(t, l, "fixgoro", "routergeo/internal/obs/fixgoro", []*Analyzer{GoroHygiene})
}

func TestGoroHygieneOutOfScope(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "fixgoro", "routergeo/internal/stats/fixgoro")
	if fs := Run([]*Package{pkg}, l.Fset, []*Analyzer{GoroHygiene}); len(fs) != 0 {
		t.Fatalf("gorohygiene fired outside its packages: %v", fs)
	}
}

// TestHotAllocFixture: hotalloc is annotation-scoped, not
// package-scoped — only //geolint:hotpath functions are checked, under
// any import path.
func TestHotAllocFixture(t *testing.T) {
	l := newTestLoader(t)
	checkFixture(t, l, "fixhot", "routergeo/internal/geodb/httpapi/fixhot", []*Analyzer{HotAlloc})
}

// TestHotAllocFindingsMentionRemedy pins that hot-path findings tell
// the reader what to do, not just what is wrong.
func TestHotAllocFindingsMentionRemedy(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "fixhot", "routergeo/internal/ipx/fixhot")
	fs := Run([]*Package{pkg}, l.Fset, []*Analyzer{HotAlloc})
	if len(fs) == 0 {
		t.Fatal("expected hotalloc findings")
	}
	for _, f := range fs {
		if !strings.Contains(f.Msg, "hot path") {
			t.Errorf("finding does not name the hot path contract: %s", f.Msg)
		}
	}
}
