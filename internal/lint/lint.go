// Package lint is a dependency-free static-analysis framework for this
// repository, built on go/parser, go/ast and go/types. It exists to
// mechanically enforce the invariants the measurement engine's
// correctness rests on — above all the determinism guarantee that makes
// parallel sweeps byte-identical to serial ones — instead of leaving
// them to review memory.
//
// A finding can be suppressed with an explanation:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// placed on the offending line or on its own line directly above it.
// Directives are themselves checked: an unknown rule name, a missing
// reason, or a directive that suppresses nothing (e.g. placed on the
// wrong line) is reported as a finding of the pseudo-rule "ignore".
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one named rule: Run inspects a package through its
// Pass and reports findings.
type Analyzer struct {
	// Name is the rule name used in output, -rule selection and
	// //lint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the rule and the invariant
	// it protects.
	Doc string
	// Run executes the rule over pass.Pkg.
	Run func(pass *Pass)
}

// A Finding is one rule violation at a position.
type Finding struct {
	Rule string         `json:"rule"`
	Pos  token.Position `json:"pos"`
	Msg  string         `json:"msg"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Rule, f.Msg)
}

// A Pass carries one (analyzer, package) pairing.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Fset     *token.FileSet

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Rule: p.Analyzer.Name,
		Pos:  p.Fset.Position(pos),
		Msg:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	rules  []string
	reason string
	used   bool
}

// IgnoreRule is the pseudo-rule name under which directive-hygiene
// problems (unknown rule, missing reason, unused directive) are
// reported. It cannot itself be suppressed.
const IgnoreRule = "ignore"

// parseDirectives extracts every //lint:ignore directive of a package.
// Malformed directives are reported immediately into out.
func parseDirectives(fset *token.FileSet, pkg *Package, out *[]Finding) []*ignoreDirective {
	var ds []*ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					*out = append(*out, Finding{Rule: IgnoreRule, Pos: pos,
						Msg: "malformed //lint:ignore: want \"//lint:ignore <rule> <reason>\""})
					continue
				}
				d := &ignoreDirective{
					pos:    pos,
					rules:  strings.Split(fields[0], ","),
					reason: strings.Join(fields[1:], " "),
				}
				if d.reason == "" {
					*out = append(*out, Finding{Rule: IgnoreRule, Pos: pos,
						Msg: fmt.Sprintf("//lint:ignore %s has no reason: justify every suppression", fields[0])})
					continue
				}
				ds = append(ds, d)
			}
		}
	}
	return ds
}

// suppresses reports whether d covers a finding: same file, matching
// rule, and the directive sits on the finding's line or the line above.
func (d *ignoreDirective) suppresses(f Finding) bool {
	if d.pos.Filename != f.Pos.Filename {
		return false
	}
	if d.pos.Line != f.Pos.Line && d.pos.Line != f.Pos.Line-1 {
		return false
	}
	for _, r := range d.rules {
		if r == f.Rule {
			return true
		}
	}
	return false
}

// Run executes the analyzers over every package and returns surviving
// findings sorted by position. Suppressed findings are dropped;
// directive hygiene is enforced: a directive naming a rule that is not
// in analyzers, or one that suppressed nothing, is itself a finding.
func Run(pkgs []*Package, fset *token.FileSet, analyzers []*Analyzer) []Finding {
	// selected gates the unused-directive check: a directive for a rule
	// that did not run this invocation is legitimately dormant.
	// registered (every project rule plus whatever was passed in) gates
	// the unknown-rule check, so `-rule maporder` does not misreport
	// directives for the other rules as unknown.
	selected := map[string]bool{}
	registered := map[string]bool{}
	for _, a := range All() {
		registered[a.Name] = true
	}
	for _, a := range analyzers {
		selected[a.Name] = true
		registered[a.Name] = true
	}

	var out []Finding
	for _, pkg := range pkgs {
		var raw []Finding
		directives := parseDirectives(fset, pkg, &out)
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, Fset: fset, findings: &raw})
		}
	findings:
		for _, f := range raw {
			for _, d := range directives {
				if d.suppresses(f) {
					d.used = true
					continue findings
				}
			}
			out = append(out, f)
		}
		for _, d := range directives {
			for _, r := range d.rules {
				if !registered[r] && r != IgnoreRule {
					out = append(out, Finding{Rule: IgnoreRule, Pos: d.pos,
						Msg: fmt.Sprintf("//lint:ignore names unknown rule %q", r)})
				}
			}
			if d.used {
				continue
			}
			all := true
			for _, r := range d.rules {
				if !selected[r] {
					all = false
				}
			}
			if all {
				out = append(out, Finding{Rule: IgnoreRule, Pos: d.pos,
					Msg: fmt.Sprintf("//lint:ignore %s suppresses nothing: it must sit on the offending line or the line above", strings.Join(d.rules, ","))})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// inspectFuncs walks every function declaration of the package,
// including methods, that has a body.
func inspectFuncs(pkg *Package, fn func(file *ast.File, decl *ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(f, fd)
			}
		}
	}
}
