package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `for ... range m` over a map when the loop body emits
// something order-sensitive per iteration: bytes into an io.Writer,
// samples into a stats ECDF, or appends into a slice the enclosing
// function returns without ever sorting. Go randomizes map iteration
// order, so any of those turns a deterministic sweep into one that
// differs run to run — the exact bug class that would break the
// byte-identical parallel/serial guarantee. The dominant safe pattern —
// collect keys, sort, then iterate the sorted slice — is exempt because
// the sorted slice is what gets consumed.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "Iterating a map while writing to an io.Writer, feeding an ECDF, " +
		"or appending to a returned-but-never-sorted slice produces " +
		"nondeterministic output (map order is randomized). Collect the " +
		"keys, sort them, and range over the sorted slice instead.",
	Run: runMapOrder,
}

func runMapOrder(p *Pass) {
	inspectFuncs(p.Pkg, func(_ *ast.File, fn *ast.FuncDecl) {
		returned := identObjects(p.Pkg.Info, returnExprs(fn.Body))
		sorted := sortCallArgObjects(p.Pkg.Info, fn.Body)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !rangesOverMap(p.Pkg.Info, rs) {
				return true
			}
			checkMapRangeBody(p, rs, returned, sorted)
			return true
		})
	})
}

// rangesOverMap reports whether rs iterates a map-typed expression.
func rangesOverMap(info *types.Info, rs *ast.RangeStmt) bool {
	tv, ok := info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRangeBody reports order-sensitive effects inside one
// range-over-map body.
func checkMapRangeBody(p *Pass, rs *ast.RangeStmt, returned, sorted map[types.Object]bool) {
	info := p.Pkg.Info
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkgPath, fn, ok := pkgFuncCall(info, call); ok {
			switch {
			case pkgPath == "fmt" && (fn == "Fprint" || fn == "Fprintf" || fn == "Fprintln"):
				p.Reportf(call.Pos(),
					"fmt.%s inside range over a map writes in randomized map order; sort the keys first", fn)
			case pkgPath == "io" && fn == "WriteString":
				p.Reportf(call.Pos(),
					"io.WriteString inside range over a map writes in randomized map order; sort the keys first")
			}
			return true
		}
		if recv, name, ok := methodCall(info, call); ok {
			switch {
			case namedFrom(recv, "routergeo/internal/stats", "ECDF") && (name == "Add" || name == "AddAll"):
				// ECDF.Add is order-insensitive only after the final sort;
				// the engine's merge path relies on insertion order, so
				// feeding one from map order is still banned.
				p.Reportf(call.Pos(),
					"ECDF.%s inside range over a map inserts samples in randomized order; collect and sort inputs first", name)
			case (name == "Write" || name == "WriteString" || name == "WriteByte" || name == "WriteRune") && implementsWriter(recv):
				p.Reportf(call.Pos(),
					"%s on an io.Writer inside range over a map emits bytes in randomized map order; sort the keys first", name)
			}
			return true
		}
		if builtinCall(info, call, "append") && len(call.Args) > 0 {
			id, isID := call.Args[0].(*ast.Ident)
			if !isID {
				return true
			}
			obj := info.Uses[id]
			if obj == nil || !declaredOutside(obj, rs) {
				return true
			}
			if returned[obj] && !sorted[obj] {
				p.Reportf(call.Pos(),
					"append to %s inside range over a map builds a returned slice in randomized order; sort %s (or the keys) before returning", id.Name, id.Name)
			}
		}
		return true
	})
}

// declaredOutside reports whether obj's declaration lies outside the
// range statement's extent.
func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// returnExprs collects every expression appearing in a return
// statement of body.
func returnExprs(body *ast.BlockStmt) []ast.Expr {
	var out []ast.Expr
	ast.Inspect(body, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			out = append(out, ret.Results...)
		}
		return true
	})
	return out
}

// identObjects resolves the identifiers whose *contents* escape through
// exprs. It follows only order-preserving shapes — `return out`,
// `return out[:n]`, `return Result{Names: out}`, `return append(out, x)`
// — and deliberately stops at other calls: `return len(out)` does not
// expose out's element order.
func identObjects(info *types.Info, exprs []ast.Expr) map[types.Object]bool {
	out := map[types.Object]bool{}
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch v := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil {
				out[obj] = true
			}
		case *ast.ParenExpr:
			walk(v.X)
		case *ast.SliceExpr:
			walk(v.X)
		case *ast.IndexExpr:
			walk(v.X)
		case *ast.StarExpr:
			walk(v.X)
		case *ast.UnaryExpr:
			walk(v.X)
		case *ast.SelectorExpr:
			walk(v.X)
		case *ast.CompositeLit:
			for _, el := range v.Elts {
				walk(el)
			}
		case *ast.KeyValueExpr:
			walk(v.Value)
		case *ast.CallExpr:
			if builtinCall(info, v, "append") {
				for _, a := range v.Args {
					walk(a)
				}
			}
		}
	}
	for _, e := range exprs {
		walk(e)
	}
	return out
}

// sortCallArgObjects collects objects passed (possibly nested, e.g.
// sort.Sort(byLen(out))) to any sort.* or slices.* call in body. A
// slice that flows through such a call before being returned has a
// deterministic final order regardless of how it was filled.
func sortCallArgObjects(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkgPath, _, ok := pkgFuncCall(info, call)
		if !ok || (pkgPath != "sort" && pkgPath != "slices") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, isID := m.(*ast.Ident); isID {
					if obj := info.Uses[id]; obj != nil {
						out[obj] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}
