package lint

import (
	"go/ast"
	"sort"
	"strings"
	"testing"
)

// assignedVars is a test FlowAnalysis: the set of variable names that
// MAY have been assigned on some path reaching a point. Its lattice is
// the powerset of names under union — exactly the shape the real
// analyzers use.
type assignedVars struct{}

func (assignedVars) Entry() map[string]bool { return map[string]bool{} }

func (assignedVars) Transfer(fact map[string]bool, n ast.Node) map[string]bool {
	var names []string
	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				names = append(names, id.Name)
			}
		}
	case *ast.IncDecStmt:
		if id, ok := s.X.(*ast.Ident); ok {
			names = append(names, id.Name)
		}
	}
	if len(names) == 0 {
		return fact
	}
	out := make(map[string]bool, len(fact)+len(names))
	for k := range fact {
		out[k] = true
	}
	for _, n := range names {
		out[n] = true
	}
	return out
}

func (assignedVars) Join(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func (assignedVars) Equal(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func factString(fact map[string]bool) string {
	keys := make([]string, 0, len(fact))
	for k := range fact {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, " ")
}

// blockByKind returns the first block of the given kind.
func blockByKind(t *testing.T, c *CFG, kind string) *Block {
	t.Helper()
	for _, b := range c.Blocks {
		if b.Kind == kind {
			return b
		}
	}
	t.Fatalf("no %q block in CFG:\n%s", kind, c.Dump())
	return nil
}

// TestForwardFlowJoinsBranches pins that facts from both arms of a
// branch merge at the join and reach the exit.
func TestForwardFlowJoinsBranches(t *testing.T) {
	c := NewCFG(parseBody(t, `func f(c bool) {
	a := 1
	if c {
		b := 2
		_ = b
	} else {
		d := 3
		_ = d
	}
	a++
}`))
	in, out := ForwardFlow[map[string]bool](c, assignedVars{})
	if got := factString(in[c.Exit]); got != "a b d" {
		t.Errorf("exit fact: got %q, want %q", got, "a b d")
	}
	join := blockByKind(t, c, "if.join")
	if got := factString(in[join]); got != "a b d" {
		t.Errorf("join in-fact: got %q, want %q", got, "a b d")
	}
	entry := c.Entry
	if got := factString(out[entry]); !strings.Contains(got, "a") {
		t.Errorf("entry out-fact must contain a, got %q", got)
	}
}

// TestForwardFlowLoopFixpoint pins that facts created in a loop body
// propagate around the back edge into the loop head — the fixpoint a
// single forward pass cannot reach.
func TestForwardFlowLoopFixpoint(t *testing.T) {
	c := NewCFG(parseBody(t, `func g(n int) {
	a := 0
	for i := 0; i < n; i++ {
		e := i
		_ = e
	}
}`))
	in, _ := ForwardFlow[map[string]bool](c, assignedVars{})
	head := blockByKind(t, c, "for.head")
	if got := factString(in[head]); got != "a e i" {
		t.Errorf("loop head must see the body's fact via the back edge: got %q, want %q", got, "a e i")
	}
	if got := factString(in[c.Exit]); got != "a e i" {
		t.Errorf("exit fact: got %q, want %q", got, "a e i")
	}
}

// TestForwardFlowLabeledLoopTermination pins fixpoint termination and
// fact propagation through a labeled-continue graph (two back edges
// into different heads).
func TestForwardFlowLabeledLoopTermination(t *testing.T) {
	c := NewCFG(parseBody(t, `func h(rows [][]int) {
	total := 0
outer:
	for _, row := range rows {
		for _, v := range row {
			if v < 0 {
				skipped := v
				_ = skipped
				continue outer
			}
			total += v
		}
		done := 1
		_ = done
	}
}`))
	in, _ := ForwardFlow[map[string]bool](c, assignedVars{})
	outerHead := blockByKind(t, c, "range.head")
	got := in[outerHead]
	// Range key/value bindings are not AssignStmt nodes (the head holds
	// only the range expression), so "row"/"v" are absent by design.
	for _, want := range []string{"total", "skipped", "done"} {
		if !got[want] {
			t.Errorf("outer head missing %q via back edges; got %q", want, factString(got))
		}
	}
}

// TestForwardFlowDeferHeavy pins that defer registrations flow like any
// other node: a defer registered on one branch is a MAY-fact at exit.
type sawDefer struct{}

func (sawDefer) Entry() bool { return false }
func (sawDefer) Transfer(fact bool, n ast.Node) bool {
	if _, ok := n.(*ast.DeferStmt); ok {
		return true
	}
	return fact
}
func (sawDefer) Join(a, b bool) bool  { return a || b }
func (sawDefer) Equal(a, b bool) bool { return a == b }

func TestForwardFlowDeferHeavy(t *testing.T) {
	c := NewCFG(parseBody(t, `func k(c bool) {
	if c {
		defer println("x")
	}
	println("y")
}`))
	in, _ := ForwardFlow[bool](c, sawDefer{})
	if !in[c.Exit] {
		t.Error("defer on one branch must be a may-fact at exit")
	}
	if len(c.Defers) != 1 {
		t.Errorf("Defers: got %d, want 1", len(c.Defers))
	}
}
