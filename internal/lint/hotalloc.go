package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc flags allocation-introducing constructs inside functions
// annotated //geolint:hotpath. The annotation marks the zero-alloc
// serving path (the /v2/lookup fast handler chain) and the sweep kernel
// (runBlocks, the batch resolver): code whose benchmarks assert 0
// allocs/op, where one innocent-looking fmt call or un-presized append
// silently reintroduces GC pressure that benchcompare only catches
// after the fact.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "Functions annotated //geolint:hotpath must not contain " +
		"allocation-introducing constructs: fmt.* calls, non-constant " +
		"string concatenation, closures, map literals or make(map), " +
		"append to a slice that was not pre-sized (make with capacity, " +
		"growN, or a reslice of existing backing), boxing a concrete " +
		"value into an interface parameter, or string<->[]byte " +
		"conversions outside the compiler's no-alloc positions (switch " +
		"tags, ==/!= operands, map indexes). Unavoidable allocations on " +
		"cold sub-paths (error formatting on malformed input) carry a " +
		"//lint:ignore explaining why the path is cold.",
	Run: runHotAlloc,
}

// hotpathDirective is the magic doc-comment marking a function as part
// of the zero-alloc hot path.
const hotpathDirective = "//geolint:hotpath"

// isHotpath reports whether the function declaration carries the
// //geolint:hotpath annotation in its doc comment.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotpathDirective) {
			return true
		}
	}
	return false
}

func runHotAlloc(p *Pass) {
	info := p.Pkg.Info
	inspectFuncs(p.Pkg, func(file *ast.File, fd *ast.FuncDecl) {
		if fd.Body == nil || !isHotpath(fd) {
			return
		}
		ha := &hotallocWalker{
			pass:     p,
			info:     info,
			presized: map[string]bool{},
		}
		// Receiver/parameter slices arrive with whatever backing the
		// caller sized; appending to them is the caller's contract, not
		// a fresh allocation decision made here.
		for _, fl := range paramFields(fd) {
			for _, name := range fl.Names {
				ha.presized[name.Name] = true
			}
		}
		ha.walk(fd.Body)
	})
}

// paramFields returns receiver + parameter fields of a declaration.
func paramFields(fd *ast.FuncDecl) []*ast.Field {
	var out []*ast.Field
	if fd.Recv != nil {
		out = append(out, fd.Recv.List...)
	}
	if fd.Type.Params != nil {
		out = append(out, fd.Type.Params.List...)
	}
	return out
}

type hotallocWalker struct {
	pass *Pass
	info *types.Info
	// presized tracks slice variables (by exprPath) whose backing was
	// explicitly sized: make with length/capacity, growN, a reslice of
	// existing backing, or an append chain rooted at one of those.
	// ast.Inspect's pre-order matches source order closely enough for
	// this straight-line heuristic.
	presized map[string]bool
	stack    []ast.Node
}

func (ha *hotallocWalker) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			ha.stack = ha.stack[:len(ha.stack)-1]
			return true
		}
		ha.stack = append(ha.stack, n)
		switch v := n.(type) {
		case *ast.FuncLit:
			ha.pass.Reportf(v.Pos(),
				"closure in hot path: the func literal (and every variable it captures) allocates; hoist it to a named function or method")
			// Don't descend: the closure's own body is moot once the
			// closure itself is flagged. Returning false suppresses the
			// closing nil visit, so pop here.
			ha.stack = ha.stack[:len(ha.stack)-1]
			return false
		case *ast.AssignStmt:
			ha.trackAssign(v)
			if v.Tok == token.ADD_ASSIGN && ha.isStringExpr(v.Lhs[0]) {
				ha.pass.Reportf(v.Pos(),
					"string += in hot path reallocates the whole string each time; use a pre-sized []byte and append")
			}
		case *ast.ValueSpec:
			ha.trackValueSpec(v)
		case *ast.BinaryExpr:
			if v.Op == token.ADD && ha.isStringExpr(v) && !ha.isConst(v) {
				ha.pass.Reportf(v.Pos(),
					"non-constant string concatenation in hot path allocates; use a pre-sized []byte and append, or strconv.Append*")
			}
		case *ast.CompositeLit:
			if tv, ok := ha.info.Types[v]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					ha.pass.Reportf(v.Pos(),
						"map literal in hot path allocates a new hash table per call; hoist it to a package-level var or reuse via the state pool")
				}
			}
		case *ast.CallExpr:
			ha.checkCall(v)
		}
		return true
	})
}

func (ha *hotallocWalker) checkCall(call *ast.CallExpr) {
	if pkgPath, fn, ok := pkgFuncCall(ha.info, call); ok && pkgPath == "fmt" {
		ha.pass.Reportf(call.Pos(),
			"fmt.%s in hot path: fmt boxes every operand and allocates its result; use strconv.Append* onto a pooled buffer", fn)
		return
	}
	if builtinCall(ha.info, call, "make") {
		if tv, ok := ha.info.Types[call]; ok && tv.Type != nil {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				ha.pass.Reportf(call.Pos(),
					"make(map) in hot path allocates a new hash table per call; hoist or pool it")
			}
		}
		return
	}
	if builtinCall(ha.info, call, "append") && len(call.Args) > 0 {
		if !ha.presizedExpr(call.Args[0]) {
			ha.pass.Reportf(call.Pos(),
				"append to a slice without pre-sized backing may grow-allocate on the hot path; make it with capacity, growN it, or reslice a pooled buffer first")
		}
		return
	}
	ha.checkConversion(call)
	ha.checkBoxing(call)
}

// checkConversion flags string([]byte) / []byte(string) conversions,
// which copy, except in the positions the compiler guarantees not to
// allocate: switch tags, ==/!= comparison operands, and map indexes.
func (ha *hotallocWalker) checkConversion(call *ast.CallExpr) {
	tvFun, ok := ha.info.Types[call.Fun]
	if !ok || !tvFun.IsType() || len(call.Args) != 1 {
		return
	}
	to := tvFun.Type
	from := ha.info.Types[call.Args[0]].Type
	if from == nil {
		return
	}
	toStr, fromBytes := isStringType(to), isByteSlice(from)
	toBytes, fromStr := isByteSlice(to), isStringType(from)
	if !(toStr && fromBytes) && !(toBytes && fromStr) {
		return
	}
	if toStr && ha.noAllocStringPosition(call) {
		return
	}
	if toStr {
		ha.pass.Reportf(call.Pos(),
			"string([]byte) conversion copies on the hot path; keep the []byte, or move the conversion into a switch tag / == operand / map index where the compiler elides the copy")
	} else {
		ha.pass.Reportf(call.Pos(),
			"[]byte(string) conversion copies on the hot path; keep the data as []byte end to end")
	}
}

// noAllocStringPosition reports whether the string(...) conversion at
// the top of the walker stack sits in a position the compiler compiles
// without allocating: a switch tag, an operand of == / != / < / >, or a
// map index.
func (ha *hotallocWalker) noAllocStringPosition(call *ast.CallExpr) bool {
	if len(ha.stack) < 2 {
		return false
	}
	switch parent := ha.stack[len(ha.stack)-2].(type) {
	case *ast.SwitchStmt:
		return parent.Tag == call
	case *ast.BinaryExpr:
		switch parent.Op {
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			return true
		}
	case *ast.IndexExpr:
		if parent.Index != call {
			return false
		}
		tv, ok := ha.info.Types[parent.X]
		if !ok || tv.Type == nil {
			return false
		}
		_, isMap := tv.Type.Underlying().(*types.Map)
		return isMap
	}
	return false
}

// checkBoxing flags concrete values passed to interface parameters:
// the conversion heap-allocates unless the value is pointer-shaped and
// already escapes, and the hot path shouldn't gamble on that.
func (ha *hotallocWalker) checkBoxing(call *ast.CallExpr) {
	tvFun, ok := ha.info.Types[call.Fun]
	if !ok || tvFun.IsType() || tvFun.Type == nil {
		return
	}
	sig, ok := tvFun.Type.(*types.Signature)
	if !ok {
		return
	}
	// go/types records call-site signatures for builtins too; panic's
	// argument does box, but a panicking path is cold by definition.
	if id, ok := astUnparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := ha.info.Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i, call.Ellipsis != token.NoPos)
		if pt == nil {
			continue
		}
		iface, isIface := pt.Underlying().(*types.Interface)
		if !isIface || iface == nil {
			continue
		}
		at := ha.info.Types[arg].Type
		if at == nil || ha.info.Types[arg].IsNil() {
			continue
		}
		if _, argIface := at.Underlying().(*types.Interface); argIface {
			continue // interface to interface: no new box
		}
		if zeroSized(at) {
			continue // struct{}-like values box to a static sentinel
		}
		ha.pass.Reportf(arg.Pos(),
			"passing %s into an interface parameter boxes it (heap-allocates) on the hot path; use a concrete-typed helper or a pooled value", types.TypeString(at, nil))
	}
}

// paramTypeAt returns the declared type of argument i of sig, resolving
// variadic parameters to their element type. Returns nil for a spread
// call's final argument (no boxing happens: the slice is passed as-is).
func paramTypeAt(sig *types.Signature, i int, spread bool) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if spread {
			return nil
		}
		if sl, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// --- presized-slice bookkeeping ---------------------------------------

func (ha *hotallocWalker) trackAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		path, ok := exprPath(lhs)
		if !ok {
			continue
		}
		if ha.presizedExpr(as.Rhs[i]) {
			ha.presized[path] = true
		} else {
			delete(ha.presized, path)
		}
	}
}

func (ha *hotallocWalker) trackValueSpec(vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		if i < len(vs.Values) && ha.presizedExpr(vs.Values[i]) {
			ha.presized[name.Name] = true
		}
	}
}

// presizedExpr reports whether e denotes a slice with explicitly sized
// backing: a tracked variable, a reslice of anything, make with an
// explicit length, a growN call, or an append rooted at one of those.
func (ha *hotallocWalker) presizedExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return ha.presizedExpr(v.X)
	case *ast.SliceExpr:
		return true // reslicing existing backing
	case *ast.CallExpr:
		if builtinCall(ha.info, v, "make") && len(v.Args) >= 2 {
			return true
		}
		if builtinCall(ha.info, v, "append") && len(v.Args) > 0 {
			return ha.presizedExpr(v.Args[0])
		}
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "growN" {
			return true
		}
		if sel, ok := v.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "growN" {
			return true
		}
		return false
	default:
		if path, ok := exprPath(e); ok {
			return ha.presized[path]
		}
	}
	return false
}

// astUnparen strips any parenthesis layers around e.
func astUnparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// --- small type predicates --------------------------------------------

func (ha *hotallocWalker) isStringExpr(e ast.Expr) bool {
	tv, ok := ha.info.Types[e]
	return ok && tv.Type != nil && isStringType(tv.Type)
}

func (ha *hotallocWalker) isConst(e ast.Expr) bool {
	tv, ok := ha.info.Types[e]
	return ok && tv.Value != nil
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// zeroSized reports whether values of t occupy no storage (empty
// structs, zero-length arrays): boxing one costs nothing.
func zeroSized(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !zeroSized(u.Field(i).Type()) {
				return false
			}
		}
		return true
	case *types.Array:
		return u.Len() == 0 || zeroSized(u.Elem())
	}
	return false
}
