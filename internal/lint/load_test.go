package lint

import (
	"strings"
	"testing"
)

func TestLoaderFindsModule(t *testing.T) {
	l := newTestLoader(t)
	if l.Module != "routergeo" {
		t.Fatalf("module = %q, want routergeo", l.Module)
	}
	if !strings.HasSuffix(l.Root, "repo") && l.Root == "" {
		t.Fatalf("empty module root")
	}
}

func TestLoadPatterns(t *testing.T) {
	l := newTestLoader(t)
	pkgs, err := l.Load("./internal/stats", "./cmd/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	paths := map[string]bool{}
	for _, p := range pkgs {
		paths[p.Path] = true
	}
	for _, want := range []string{"routergeo/internal/stats", "routergeo/cmd/geolint", "routergeo/cmd/benchcompare"} {
		if !paths[want] {
			t.Errorf("Load missed %s; got %v", want, paths)
		}
	}
	for p := range paths {
		if strings.Contains(p, "testdata") {
			t.Errorf("Load must skip testdata, got %s", p)
		}
	}
	// Results must be sorted for deterministic output.
	for i := 1; i < len(pkgs); i++ {
		if pkgs[i-1].Path >= pkgs[i].Path {
			t.Fatalf("packages not sorted: %s >= %s", pkgs[i-1].Path, pkgs[i].Path)
		}
	}
}

func TestLoadTypeChecks(t *testing.T) {
	l := newTestLoader(t)
	pkgs, err := l.Load("./internal/stats")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("want 1 package, got %d", len(pkgs))
	}
	p := pkgs[0]
	if len(p.TypeErrors) != 0 {
		t.Fatalf("stats must type-check cleanly: %v", p.TypeErrors)
	}
	if p.Types == nil || p.Types.Scope().Lookup("ECDF") == nil {
		t.Fatalf("type info missing ECDF")
	}
}

// TestLoadUnresolvableImportDegrades pins the graceful-degradation
// contract: a fixture importing a nonexistent module still loads (with
// type errors collected) so AST analyzers can run over it.
func TestLoadUnresolvableImportDegrades(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "fixdeps", "routergeo/internal/hints/fixdeps2")
	if pkg.Types == nil || len(pkg.Files) == 0 {
		t.Fatalf("package with unresolvable imports must still load")
	}
}
