package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// TestIgnoreDirectives pins the full suppression contract on the
// fixignore fixture: correct directives silence their finding, while a
// stranded directive, an unknown rule name and a missing reason are
// each reported instead of being silently swallowed.
func TestIgnoreDirectives(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "fixignore", "routergeo/internal/core/fixignore")
	fs := Run([]*Package{pkg}, l.Fset, []*Analyzer{Determinism})

	got := map[string]bool{}
	for _, f := range fs {
		got[fmt.Sprintf("%d:%s", f.Pos.Line, f.Rule)] = true
		if base := filepath.Base(f.Pos.Filename); base != "fixignore.go" {
			t.Errorf("finding in unexpected file %s", base)
		}
	}
	want := map[string]string{
		// WrongLine: the stranded directive suppresses nothing...
		"24:ignore": "stranded //lint:ignore must be reported as unused",
		// ...so the violation two lines below it still fires.
		"26:determinism": "violation under a stranded directive must still be reported",
		// UnknownRule: directive reported, violation reported.
		"32:ignore":      "unknown rule name in //lint:ignore must be reported",
		"33:determinism": "violation under an unknown-rule directive must still be reported",
		// MissingReason: directive reported, violation reported.
		"39:ignore":      "//lint:ignore without a reason must be reported",
		"40:determinism": "violation under a reasonless directive must still be reported",
	}
	for key, why := range want {
		if !got[key] {
			t.Errorf("missing finding %s (%s); got %v", key, why, fs)
		}
	}
	if len(fs) != len(want) {
		t.Errorf("got %d findings, want %d: %v", len(fs), len(want), fs)
	}
	// The two suppressed sites must not appear at all.
	for _, f := range fs {
		if f.Rule == "determinism" && (f.Pos.Line == 13 || f.Pos.Line == 18) {
			t.Errorf("suppressed finding leaked: %v", f)
		}
	}
}

// TestIgnoreUnselectedRuleStaysDormant checks that a directive for a
// rule that is not part of this run is not reported as unused: under
// -rule selection it is legitimately dormant.
func TestIgnoreUnselectedRuleStaysDormant(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "fixignore", "routergeo/internal/core/fixignore2")
	fs := Run([]*Package{pkg}, l.Fset, []*Analyzer{Layering})
	for _, f := range fs {
		if strings.Contains(f.Msg, "suppresses nothing") && strings.Contains(f.Msg, "determinism") {
			t.Errorf("determinism directive reported unused while determinism was not selected: %v", f)
		}
	}
}
