package lint

import (
	"go/ast"
	"go/types"
)

// atomicMixPkgs are the packages whose structs carry atomic fields on
// purpose: the serving tier's generation refcounts and drain flags, the
// observability registry's counters, and the measurement engine's
// work-stealing cursor. Everything in them that is touched through
// sync/atomic must be touched through sync/atomic ONLY — one plain read
// beside an atomic write is a data race the race detector only catches
// if a test happens to interleave it.
var atomicMixPkgs = []string{
	"routergeo/internal/core",
	"routergeo/internal/geodb/httpapi",
	"routergeo/internal/obs",
}

// AtomicMix flags struct fields that mix atomic and plain access.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "In the concurrency packages (internal/core, internal/geodb/httpapi, " +
		"internal/obs) a struct field accessed through sync/atomic — either a " +
		"typed atomic (atomic.Int64, atomic.Bool, atomic.Pointer, ...) or a " +
		"plain integer passed to atomic.AddInt64/LoadInt64/... — must never " +
		"be read or written plainly outside its type's constructor: the " +
		"racing plain access tears the happens-before edges the atomic ops " +
		"establish. Typed atomic fields may only appear as method-call " +
		"receivers; old-style fields only as &x.f arguments to sync/atomic " +
		"functions.",
	Run: runAtomicMix,
}

// atomicTypeNames are the typed atomics of sync/atomic. A field of one
// of these types is an atomic field by construction.
var atomicTypeNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true,
	"Uint32": true, "Uint64": true, "Uintptr": true,
	"Pointer": true, "Value": true,
}

// isAtomicType reports whether t is one of sync/atomic's typed atomics.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "sync/atomic" && atomicTypeNames[obj.Name()]
}

func runAtomicMix(p *Pass) {
	if !pathInAny(p.Pkg.Path, atomicMixPkgs) {
		return
	}
	info := p.Pkg.Info

	// Pass 1: collect the old-style atomic fields — every field object
	// that appears as &x.f in a sync/atomic function call anywhere in
	// the package.
	oldStyle := map[types.Object]bool{}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, _, ok := pkgFuncCall(info, call)
			if !ok || pkgPath != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok {
					continue
				}
				if fld := fieldObj(info, un.X); fld != nil {
					oldStyle[fld] = true
				}
			}
			return true
		})
	}

	// Pass 2: flag the violations. For every selector resolving to an
	// atomic field, the enclosing expression decides legality:
	//   typed field  → must be the receiver of a method call (x.f.Load()).
	//   old-style    → must be &x.f inside a sync/atomic call.
	// Constructors (functions returning the enclosing struct type) and
	// composite-literal initialization are exempt — before the value is
	// shared there is nothing to race with.
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var stack []ast.Node
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				stack = append(stack, n)
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fld := fieldObj(info, sel)
				if fld == nil {
					return true
				}
				typed := isAtomicType(fld.Type())
				if !typed && !oldStyle[fld] {
					return true
				}
				if constructorFor(info, fd, fld) {
					return true
				}
				if typed {
					if !isMethodReceiverUse(stack) {
						p.Reportf(sel.Pos(),
							"atomic field %s used without an atomic method: copying or addressing a typed atomic races its Load/Store sites — call its methods instead", fld.Name())
					}
					return true
				}
				if !isAtomicCallOperand(info, stack) {
					p.Reportf(sel.Pos(),
						"field %s is accessed via sync/atomic elsewhere in this package but read/written plainly here — a plain access races the atomic ones; use atomic.Load/Store everywhere or neither", fld.Name())
				}
				return true
			})
		}
	}
}

// fieldObj resolves e to a struct field object (a *types.Var with
// IsField), unwrapping parens; nil otherwise.
func fieldObj(info *types.Info, e ast.Expr) *types.Var {
	for {
		if pe, ok := e.(*ast.ParenExpr); ok {
			e = pe.X
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// isMethodReceiverUse reports whether the selector at the top of stack
// is the X of an enclosing method-call selector: stack ends
// [... CallExpr SelectorExpr(ourSel.Method) ourSel]. That is the only
// legal appearance of a typed atomic field.
func isMethodReceiverUse(stack []ast.Node) bool {
	if len(stack) < 3 {
		return false
	}
	parent, ok := stack[len(stack)-2].(*ast.SelectorExpr)
	if !ok || parent.X != stack[len(stack)-1] {
		return false
	}
	call, ok := stack[len(stack)-3].(*ast.CallExpr)
	return ok && call.Fun == parent
}

// isAtomicCallOperand reports whether the selector at the top of stack
// appears as &sel passed directly to a sync/atomic function:
// stack ends [... CallExpr UnaryExpr(&) ourSel].
func isAtomicCallOperand(info *types.Info, stack []ast.Node) bool {
	if len(stack) < 3 {
		return false
	}
	un, ok := stack[len(stack)-2].(*ast.UnaryExpr)
	if !ok || un.X != stack[len(stack)-1] {
		return false
	}
	call, ok := stack[len(stack)-3].(*ast.CallExpr)
	if !ok {
		return false
	}
	pkgPath, _, ok := pkgFuncCall(info, call)
	return ok && pkgPath == "sync/atomic"
}

// constructorFor reports whether fd is a constructor of the struct
// owning fld: a function (not method) with the owning named type — or a
// pointer to it — among its results. Plain initialization before the
// value escapes the constructor cannot race.
func constructorFor(info *types.Info, fd *ast.FuncDecl, fld *types.Var) bool {
	if fd.Type.Results == nil {
		return false
	}
	owner := fieldOwner(fld)
	if owner == nil {
		return false
	}
	for _, r := range fd.Type.Results.List {
		tv, ok := info.Types[r.Type]
		if !ok || tv.Type == nil {
			continue
		}
		t := tv.Type
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj() == owner {
			return true
		}
	}
	return false
}

// fieldOwner finds the named type whose struct declares fld, by
// scanning the field's package scope. Fields of anonymous structs
// return nil (no constructor exemption).
func fieldOwner(fld *types.Var) *types.TypeName {
	pkg := fld.Pkg()
	if pkg == nil {
		return nil
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == fld {
				return tn
			}
		}
	}
	return nil
}
