package obs

import (
	"bytes"
	"flag"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want slog.Level
	}{
		{"debug", slog.LevelDebug},
		{"info", slog.LevelInfo},
		{"", slog.LevelInfo},
		{"warn", slog.LevelWarn},
		{"Warning", slog.LevelWarn},
		{"ERROR", slog.LevelError},
		{"DEBUG-4", slog.LevelDebug - 4},
	} {
		got, err := ParseLevel(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) accepted")
	}
}

func TestLogFlagsSetup(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	lf := AddLogFlags(fs)
	if err := fs.Parse([]string{"-log-level", "warn", "-log-format", "json"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	prev := slog.Default()
	defer slog.SetDefault(prev)
	l, err := lf.Setup(&buf)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hidden")
	l.Warn("shown", "k", "v")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info line leaked past warn floor: %q", out)
	}
	if !strings.Contains(out, `"msg":"shown"`) {
		t.Errorf("warn line missing or not JSON: %q", out)
	}

	lf.Format = "yaml"
	if _, err := lf.Setup(&buf); err == nil {
		t.Error("Setup accepted unknown format")
	}
	lf.Format = "text"
	lf.Level = "loud"
	if _, err := lf.Setup(&buf); err == nil {
		t.Error("Setup accepted unknown level")
	}
}

func TestProgressRateLimited(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}), nil))

	p := NewProgress("test.loop", ProgressThreshold)
	p.interval = 10 * time.Millisecond
	p.logger = logger
	if !p.enabled {
		t.Fatal("reporter at threshold should be enabled")
	}
	for i := 0; i < 100; i++ {
		p.Add(ProgressThreshold / 100)
		time.Sleep(time.Millisecond)
	}
	p.Finish()

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	lines := strings.Count(out, "stage=test.loop")
	// 100ms of work at a 10ms interval: some lines, far fewer than 100
	// Adds, plus the Finish summary.
	if lines < 2 || lines > 30 {
		t.Errorf("got %d progress lines, want a handful: %q", lines, out)
	}
	if !strings.Contains(out, "progress done") {
		t.Errorf("missing completion summary: %q", out)
	}

	// Below the threshold the reporter stays silent.
	buf.Reset()
	small := NewProgress("small", ProgressThreshold-1)
	small.interval = 0
	small.logger = logger
	small.Add(50)
	small.Finish()
	mu.Lock()
	out = buf.String()
	mu.Unlock()
	if out != "" {
		t.Errorf("small loop logged: %q", out)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
