package obs

import (
	"testing"
	"time"
)

// drainKinds collects the kinds currently buffered on sub.
func drainKinds(sub *EventSub) map[string]int {
	kinds := map[string]int{}
	for {
		select {
		case ev := <-sub.C():
			kinds[ev.Kind]++
		default:
			return kinds
		}
	}
}

// TestProgressThresholdOption: WithProgressThreshold flips the log gate
// independently of the loop size.
func TestProgressThresholdOption(t *testing.T) {
	if p := NewProgress("small", 10); p.enabled {
		t.Error("10-item loop should be disabled by default")
	}
	if p := NewProgress("small", 10, WithProgressThreshold(5)); !p.enabled {
		t.Error("threshold 5 should enable a 10-item loop")
	}
	if p := NewProgress("big", ProgressThreshold); !p.enabled {
		t.Error("threshold-sized loop should be enabled by default")
	}
	if p := NewProgress("big", ProgressThreshold, WithProgressThreshold(ProgressThreshold*2)); p.enabled {
		t.Error("raised threshold should disable a threshold-sized loop")
	}
}

// TestProgressEnvThreshold: ROUTERGEO_PROGRESS_THRESHOLD is honored (the
// parse is cached process-wide, so poke the cached value directly after
// forcing the Once).
func TestProgressEnvThreshold(t *testing.T) {
	old := envThreshold() // force the Once with the real environment
	envThresholdVal = 7
	defer func() { envThresholdVal = old }()
	if p := NewProgress("env", 8); !p.enabled {
		t.Error("8-item loop should be enabled with env threshold 7")
	}
	if p := NewProgress("env", 6); p.enabled {
		t.Error("6-item loop should stay disabled with env threshold 7")
	}
}

// TestProgressPublishesRegardlessOfLogGate: a disabled (quiet) reporter
// still streams progress events while the bus has a subscriber.
func TestProgressPublishesRegardlessOfLogGate(t *testing.T) {
	bus := NewEventBus(256)
	// Big enough for every tick plus start/done — nothing may drop.
	sub := bus.Subscribe(256)
	defer sub.Close()

	p := NewProgress("quiet.sweep", 100,
		WithProgressBus(bus),
		WithProgressInterval(time.Nanosecond))
	if p.enabled {
		t.Fatal("reporter unexpectedly enabled")
	}
	for i := 0; i < 100; i++ {
		p.Add(1)
		time.Sleep(time.Microsecond) // let the interval elapse between adds
	}
	p.Finish()

	kinds := drainKinds(sub)
	if kinds["progress.start"] != 1 {
		t.Errorf("progress.start count = %d, want 1", kinds["progress.start"])
	}
	if kinds["progress"] == 0 {
		t.Error("no progress tick events published")
	}
	if kinds["progress.done"] != 1 {
		t.Errorf("progress.done count = %d, want 1", kinds["progress.done"])
	}
}

// TestProgressSilentWhenNobodyListens: with logging gated off and no
// subscriber, nothing is published (the hot path bails on one atomic
// load).
func TestProgressSilentWhenNobodyListens(t *testing.T) {
	bus := NewEventBus(64)
	p := NewProgress("idle.sweep", 100,
		WithProgressBus(bus),
		WithProgressInterval(time.Nanosecond))
	for i := 0; i < 100; i++ {
		p.Add(1)
	}
	p.Finish()
	if n := bus.Published(); n != 0 {
		t.Errorf("published %d events with no subscriber, want 0", n)
	}
}

// TestSpanEvents: Start/End publish span boundaries while subscribed.
func TestSpanEvents(t *testing.T) {
	sub := defaultBus.Subscribe(16)
	defer sub.Close()

	sp := newSpan("evented.stage")
	sp.AddItems(3)
	sp.End()

	kinds := drainKinds(sub)
	if kinds["span.start"] == 0 || kinds["span.end"] == 0 {
		t.Errorf("span events = %v, want span.start and span.end", kinds)
	}
}
