package obs

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sseClient reads one SSE stream line by line until the deadline,
// feeding complete "id/event/data" messages to got.
type sseMsg struct {
	ID   string
	Kind string
	Data string
}

// readSSE consumes messages and comment lines from r until limit
// messages arrived or the stream ends.
func readSSE(t *testing.T, resp *http.Response, limit int, wantComment string) ([]sseMsg, bool) {
	t.Helper()
	var msgs []sseMsg
	var cur sseMsg
	sawComment := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.ID = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.Kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		case strings.HasPrefix(line, ":"):
			if wantComment != "" && strings.Contains(line, wantComment) {
				sawComment = true
				if len(msgs) >= limit {
					return msgs, sawComment
				}
			}
		case line == "":
			if cur.Data != "" {
				msgs = append(msgs, cur)
				cur = sseMsg{}
				if len(msgs) >= limit && (wantComment == "" || sawComment) {
					return msgs, sawComment
				}
			}
		}
	}
	return msgs, sawComment
}

func sseGet(t *testing.T, url, lastID string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastID != "" {
		req.Header.Set("Last-Event-ID", lastID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content type = %q", ct)
	}
	return resp
}

func TestSSEStreamDeliversLiveEvents(t *testing.T) {
	bus := NewEventBus(32)
	reg := NewRegistry()
	srv := httptest.NewServer(NewSSEHandler(bus, WithSSERegistry(reg)))
	defer srv.Close()

	resp := sseGet(t, srv.URL, "")
	defer resp.Body.Close()

	// Wait for the subscription before publishing, then publish live.
	waitForStreams(t, reg, 1)
	bus.Publish("swap", "generation", "abc")
	bus.Publish("reload", "status", "ok")

	msgs, _ := readSSE(t, resp, 2, "")
	if len(msgs) != 2 || msgs[0].Kind != "swap" || msgs[1].Kind != "reload" {
		t.Fatalf("messages = %+v", msgs)
	}
	var ev Event
	if err := json.Unmarshal([]byte(msgs[0].Data), &ev); err != nil {
		t.Fatalf("data not JSON: %v", err)
	}
	if ev.Seq != 1 || ev.Data["generation"] != "abc" {
		t.Fatalf("decoded event = %+v", ev)
	}
	if msgs[0].ID != "1" || msgs[1].ID != "2" {
		t.Fatalf("SSE ids = %q, %q", msgs[0].ID, msgs[1].ID)
	}
}

func TestSSEReplayFromLastEventID(t *testing.T) {
	bus := NewEventBus(32)
	for i := 0; i < 5; i++ {
		bus.Publish("pre", "i", i)
	}
	srv := httptest.NewServer(NewSSEHandler(bus))
	defer srv.Close()

	resp := sseGet(t, srv.URL, "2")
	defer resp.Body.Close()
	msgs, _ := readSSE(t, resp, 3, "")
	if len(msgs) != 3 {
		t.Fatalf("replayed %d messages, want 3 (seqs 3..5)", len(msgs))
	}
	if msgs[0].ID != "3" || msgs[2].ID != "5" {
		t.Fatalf("replay ids = %q..%q, want 3..5", msgs[0].ID, msgs[2].ID)
	}
}

func TestSSEReplayQueryParam(t *testing.T) {
	bus := NewEventBus(8)
	bus.Publish("one")
	bus.Publish("two")
	srv := httptest.NewServer(NewSSEHandler(bus))
	defer srv.Close()

	resp := sseGet(t, srv.URL+"?last_event_id=1", "")
	defer resp.Body.Close()
	msgs, _ := readSSE(t, resp, 1, "")
	if len(msgs) != 1 || msgs[0].Kind != "two" {
		t.Fatalf("messages = %+v", msgs)
	}
}

func TestSSEHeartbeat(t *testing.T) {
	bus := NewEventBus(8)
	srv := httptest.NewServer(NewSSEHandler(bus, WithSSEHeartbeat(10*time.Millisecond)))
	defer srv.Close()

	resp := sseGet(t, srv.URL, "")
	defer resp.Body.Close()
	_, saw := readSSE(t, resp, 0, "heartbeat")
	if !saw {
		t.Fatal("no heartbeat comment observed")
	}
}

func TestSSEStopClosesStream(t *testing.T) {
	bus := NewEventBus(8)
	stop := make(chan struct{})
	reg := NewRegistry()
	srv := httptest.NewServer(NewSSEHandler(bus,
		WithSSEStop(stop), WithSSERegistry(reg)))
	defer srv.Close()

	resp := sseGet(t, srv.URL, "")
	defer resp.Body.Close()
	waitForStreams(t, reg, 1)
	close(stop)

	done := make(chan struct{})
	go func() {
		// The body must reach EOF promptly once the server drains.
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not close on stop")
	}
	waitForStreams(t, reg, 0)
}

// waitForStreams polls the events.streams gauge until it reaches want.
func waitForStreams(t *testing.T, reg *Registry, want int64) {
	t.Helper()
	g := reg.Gauge("events.streams")
	deadline := time.Now().Add(5 * time.Second)
	for g.Value() != want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if g.Value() != want {
		t.Fatalf("events.streams = %d, want %d", g.Value(), want)
	}
}
