//go:build !linux

package obs

// residentBytes is unavailable off Linux; the exposition omits the
// process_resident_memory_bytes metric.
func residentBytes() int64 { return 0 }
