package obs

import (
	"bytes"
	"fmt"
	"testing"
)

// benchRegistry builds a registry shaped like a busy geoserve: a few
// dozen counters and gauges (per-database hit/miss tallies, breaker
// state) plus latency histograms with the default bucket layout.
func benchRegistry() *Registry {
	reg := NewRegistry()
	for i := 0; i < 24; i++ {
		c := reg.Counter(fmt.Sprintf("db.source%02d.hits", i))
		c.Add(int64(i * 1000))
		reg.Counter(fmt.Sprintf("db.source%02d.misses", i)).Add(int64(i))
	}
	for i := 0; i < 12; i++ {
		reg.Gauge(fmt.Sprintf("client.breaker.host%02d.state", i)).Set(int64(i % 3))
	}
	for i := 0; i < 4; i++ {
		h := reg.Histogram(fmt.Sprintf("http.latency_ms.route%d", i), nil)
		for v := 0.1; v < 5000; v *= 3 {
			h.Observe(v)
		}
	}
	return reg
}

// BenchmarkPromRender measures one full text-exposition render of the
// registry — the per-scrape cost of GET /metrics (minus the ambient
// collectors, which are dominated by runtime/metrics sampling).
func BenchmarkPromRender(b *testing.B) {
	reg := benchRegistry()
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WritePrometheus(&buf, reg, "routergeo"); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkEventPublish measures EventBus.Publish in the three states a
// producer can meet: nobody listening, a live (draining) subscriber, and
// a stalled subscriber exercising the drop path. All three must stay
// cheap — hot paths publish unconditionally.
func BenchmarkEventPublish(b *testing.B) {
	b.Run("idle", func(b *testing.B) {
		bus := NewEventBus(DefaultEventRing)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bus.Publish("bench", "i", i)
		}
	})
	b.Run("stalled-subscriber", func(b *testing.B) {
		bus := NewEventBus(DefaultEventRing)
		sub := bus.Subscribe(8)
		defer sub.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bus.Publish("bench", "i", i)
		}
	})
	b.Run("draining-subscriber", func(b *testing.B) {
		bus := NewEventBus(DefaultEventRing)
		sub := bus.Subscribe(DefaultSubBuffer)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for range sub.C() {
			}
		}()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bus.Publish("bench", "i", i)
		}
		sub.Close()
		<-done
	})
}

// BenchmarkProgressDisabled guards the hot path of sweep loops: with
// progress logging gated off and no event subscriber, Add must stay a
// couple of atomic operations.
func BenchmarkProgressDisabled(b *testing.B) {
	prog := NewProgress("bench", int64(b.N))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog.Add(1)
	}
}
