package obs

import (
	"log/slog"
	"sync/atomic"
	"time"
)

// ProgressThreshold is the loop size below which NewProgress stays
// silent: short loops finish before a progress line would help.
const ProgressThreshold = 100_000

// defaultProgressInterval is the minimum gap between progress lines.
const defaultProgressInterval = 2 * time.Second

// Progress emits rate-limited slog progress lines (with throughput and
// ETA) for a long loop. Add and Finish are safe to call from concurrent
// worker goroutines: the item count and the last-emit timestamp are
// atomics (a CAS elects the one goroutine that emits each line), and
// every other field is written once in NewProgress before the reporter
// is shared. Add costs one atomic add plus a time read when no line is
// due, so the parallel measurement engine shares a single reporter
// across all of a sweep's workers.
type Progress struct {
	stage    string
	total    int64
	start    time.Time
	interval time.Duration // overridable in tests
	enabled  bool
	done     atomic.Int64
	lastNano atomic.Int64
	logger   *slog.Logger
}

// NewProgress returns a reporter for a loop over total items under the
// given stage name. Loops under ProgressThreshold items get a disabled
// reporter whose methods are no-ops.
func NewProgress(stage string, total int64) *Progress {
	p := &Progress{
		stage:    stage,
		total:    total,
		start:    time.Now(),
		interval: defaultProgressInterval,
		enabled:  total >= ProgressThreshold,
		logger:   slog.Default(),
	}
	p.lastNano.Store(p.start.UnixNano())
	return p
}

// Add records n more completed items, emitting a progress line if at
// least one interval elapsed since the previous line.
func (p *Progress) Add(n int64) {
	done := p.done.Add(n)
	if !p.enabled {
		return
	}
	now := time.Now()
	last := p.lastNano.Load()
	if now.UnixNano()-last < int64(p.interval) {
		return
	}
	// One goroutine wins the CAS and emits; the rest skip.
	if !p.lastNano.CompareAndSwap(last, now.UnixNano()) {
		return
	}
	elapsed := now.Sub(p.start).Seconds()
	rate := float64(done) / elapsed
	var eta time.Duration
	if rate > 0 && done < p.total {
		eta = time.Duration(float64(p.total-done) / rate * float64(time.Second))
	}
	p.logger.Info("progress",
		"stage", p.stage,
		"done", done,
		"total", p.total,
		"pct", int(100*done/max64(p.total, 1)),
		"rate_per_s", int64(rate),
		"eta", eta.Round(time.Second),
	)
}

// Finish emits a completion summary (only for enabled reporters).
func (p *Progress) Finish() {
	if !p.enabled {
		return
	}
	elapsed := time.Since(p.start)
	done := p.done.Load()
	rate := int64(0)
	if s := elapsed.Seconds(); s > 0 {
		rate = int64(float64(done) / s)
	}
	p.logger.Info("progress done",
		"stage", p.stage,
		"items", done,
		"wall", elapsed.Round(time.Millisecond),
		"rate_per_s", rate,
	)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
