package obs

import (
	"log/slog"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ProgressThreshold is the default loop size below which NewProgress
// stays silent: short loops finish before a progress line would help.
// Overridable per reporter with WithProgressThreshold and process-wide
// with the ROUTERGEO_PROGRESS_THRESHOLD environment variable.
const ProgressThreshold = 100_000

// defaultProgressInterval is the minimum gap between progress lines.
const defaultProgressInterval = 2 * time.Second

// envThreshold reads ROUTERGEO_PROGRESS_THRESHOLD once; malformed or
// negative values keep the compiled default.
var (
	envThresholdOnce sync.Once
	envThresholdVal  int64 = ProgressThreshold
)

func envThreshold() int64 {
	envThresholdOnce.Do(func() {
		if raw := os.Getenv("ROUTERGEO_PROGRESS_THRESHOLD"); raw != "" {
			if n, err := strconv.ParseInt(raw, 10, 64); err == nil && n >= 0 {
				envThresholdVal = n
			}
		}
	})
	return envThresholdVal
}

// ProgressOption configures NewProgress.
type ProgressOption func(*Progress)

// WithProgressThreshold overrides the enable threshold for this reporter
// (0 logs every loop). It takes precedence over both the compiled
// default and ROUTERGEO_PROGRESS_THRESHOLD.
func WithProgressThreshold(n int64) ProgressOption {
	return func(p *Progress) {
		if n >= 0 {
			p.enabled = p.total >= n
		}
	}
}

// WithProgressInterval overrides the minimum gap between progress lines.
func WithProgressInterval(d time.Duration) ProgressOption {
	return func(p *Progress) {
		if d > 0 {
			p.interval = d
		}
	}
}

// WithProgressBus redirects the reporter's progress events (default: the
// process-wide Events() bus). Tests use a private bus for isolation.
func WithProgressBus(b *EventBus) ProgressOption {
	return func(p *Progress) {
		if b != nil {
			p.bus = b
		}
	}
}

// Progress emits rate-limited slog progress lines (with throughput and
// ETA) for a long loop, and mirrors each line as a "progress" event on
// the event bus whenever anything is subscribed — the live stream sees
// sweep progress even when the log gate keeps the terminal quiet. Add
// and Finish are safe to call from concurrent worker goroutines: the
// item count and the last-emit timestamp are atomics (a CAS elects the
// one goroutine that emits each line), and every other field is written
// once in NewProgress before the reporter is shared. When the reporter
// is disabled and nobody subscribes to the bus, Add costs one atomic add
// plus one atomic load, so the parallel measurement engine shares a
// single reporter across all of a sweep's workers.
type Progress struct {
	stage    string
	total    int64
	start    time.Time
	interval time.Duration
	enabled  bool
	bus      *EventBus
	done     atomic.Int64
	lastNano atomic.Int64
	logger   *slog.Logger
}

// NewProgress returns a reporter for a loop over total items under the
// given stage name. Loops under the threshold (ProgressThreshold,
// overridden by ROUTERGEO_PROGRESS_THRESHOLD or WithProgressThreshold)
// get a reporter that does not log — though it still publishes progress
// events while the bus has subscribers.
func NewProgress(stage string, total int64, opts ...ProgressOption) *Progress {
	p := &Progress{
		stage:    stage,
		total:    total,
		start:    time.Now(),
		interval: defaultProgressInterval,
		enabled:  total >= envThreshold(),
		bus:      defaultBus,
		logger:   slog.Default(),
	}
	for _, o := range opts {
		o(p)
	}
	p.lastNano.Store(p.start.UnixNano())
	if p.bus.Active() {
		p.bus.Publish("progress.start", "stage", p.stage, "total", p.total)
	}
	return p
}

// Add records n more completed items, emitting a progress line (and a
// bus event) if at least one interval elapsed since the previous one.
func (p *Progress) Add(n int64) {
	done := p.done.Add(n)
	if !p.enabled && !p.bus.Active() {
		return
	}
	now := time.Now()
	last := p.lastNano.Load()
	if now.UnixNano()-last < int64(p.interval) {
		return
	}
	// One goroutine wins the CAS and emits; the rest skip.
	if !p.lastNano.CompareAndSwap(last, now.UnixNano()) {
		return
	}
	elapsed := now.Sub(p.start).Seconds()
	rate := float64(done) / elapsed
	var eta time.Duration
	if rate > 0 && done < p.total {
		eta = time.Duration(float64(p.total-done) / rate * float64(time.Second))
	}
	pct := int(100 * done / max64(p.total, 1))
	if p.bus.Active() {
		p.bus.Publish("progress",
			"stage", p.stage,
			"done", done,
			"total", p.total,
			"pct", pct,
			"rate_per_s", int64(rate),
			"eta_ms", eta.Milliseconds(),
		)
	}
	if !p.enabled {
		return
	}
	p.logger.Info("progress",
		"stage", p.stage,
		"done", done,
		"total", p.total,
		"pct", pct,
		"rate_per_s", int64(rate),
		"eta", eta.Round(time.Second),
	)
}

// Finish emits a completion summary (a log line only for enabled
// reporters; a "progress.done" event whenever the bus is live).
func (p *Progress) Finish() {
	elapsed := time.Since(p.start)
	done := p.done.Load()
	rate := int64(0)
	if s := elapsed.Seconds(); s > 0 {
		rate = int64(float64(done) / s)
	}
	if p.bus.Active() {
		p.bus.Publish("progress.done",
			"stage", p.stage,
			"items", done,
			"wall_ms", elapsed.Milliseconds(),
			"rate_per_s", rate,
		)
	}
	if !p.enabled {
		return
	}
	p.logger.Info("progress done",
		"stage", p.stage,
		"items", done,
		"wall", elapsed.Round(time.Millisecond),
		"rate_per_s", rate,
	)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
