package obs

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	ctx, root := Start(context.Background(), "root")
	ctx1, child := Start(ctx, "child")
	_, grand := Start(ctx1, "grandchild")
	grand.SetItems(7)
	grand.SetAttr("db", "ipinfuse")
	grand.End()
	child.SetBytes(1024)
	child.End()
	// A sibling started from the root context lands next to "child".
	_, sib := Start(ctx, "sibling")
	sib.End()
	root.End()

	snap := root.Snapshot()
	if snap.Name != "root" || len(snap.Children) != 2 {
		t.Fatalf("root snapshot: name=%q children=%d, want root/2", snap.Name, len(snap.Children))
	}
	c := snap.Children[0]
	if c.Name != "child" || c.Bytes != 1024 || len(c.Children) != 1 {
		t.Fatalf("child snapshot: %+v", c)
	}
	g := c.Children[0]
	if g.Name != "grandchild" || g.Items != 7 || g.Attrs["db"] != "ipinfuse" {
		t.Fatalf("grandchild snapshot: %+v", g)
	}
	if snap.Children[1].Name != "sibling" {
		t.Fatalf("sibling snapshot: %+v", snap.Children[1])
	}
	if snap.WallMs < 0 {
		t.Errorf("wall_ms = %v, want >= 0", snap.WallMs)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	_, sp := Start(context.Background(), "x")
	sp.End()
	first := sp.Snapshot().WallMs
	time.Sleep(5 * time.Millisecond)
	sp.End()
	if got := sp.Snapshot().WallMs; got != first {
		t.Errorf("second End moved wall_ms from %v to %v", first, got)
	}
}

func TestSpanDetachedRoot(t *testing.T) {
	// No span in the context: Start still works, just detached.
	ctx, sp := Start(context.Background(), "lonely")
	if FromContext(ctx) != sp {
		t.Error("context does not carry the started span")
	}
	sp.End()
}

func TestSpanConcurrentChildren(t *testing.T) {
	ctx, root := Start(context.Background(), "root")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := Start(ctx, "worker")
			sp.AddItems(1)
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Snapshot().Children); got != 16 {
		t.Errorf("children = %d, want 16", got)
	}
}

func TestRunManifest(t *testing.T) {
	run := NewRun("testtool")
	run.SetSeed(42)
	if err := run.SetConfig(map[string]int{"targets": 9}); err != nil {
		t.Fatal(err)
	}
	run.SetCount("ark_addresses", 1600000)
	run.Registry().Counter("lookups").Add(3)

	ctx := run.Context(context.Background())
	ctx, stage := Start(ctx, "groundtruth.rtt")
	_, inner := Start(ctx, "groundtruth.rtt.probe")
	inner.SetItems(500)
	inner.End()
	stage.End()

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := run.WriteManifest(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Tool != "testtool" {
		t.Errorf("tool = %q", m.Tool)
	}
	if m.Seed == nil || *m.Seed != 42 {
		t.Errorf("seed = %v, want 42", m.Seed)
	}
	if m.Counts["ark_addresses"] != 1600000 {
		t.Errorf("counts = %v", m.Counts)
	}
	if m.GoVersion == "" || m.PID == 0 || len(m.Argv) == 0 {
		t.Errorf("identity fields missing: %+v", m)
	}
	if m.Stages.Name != "testtool" || len(m.Stages.Children) != 1 {
		t.Fatalf("stage tree: %+v", m.Stages)
	}
	st := m.Stages.Children[0]
	if st.Name != "groundtruth.rtt" || len(st.Children) != 1 || st.Children[0].Items != 500 {
		t.Fatalf("stage subtree: %+v", st)
	}
	if m.Metrics == nil || m.Metrics.Counters["lookups"] != 3 {
		t.Errorf("metrics snapshot: %+v", m.Metrics)
	}
	var cfg map[string]int
	if err := json.Unmarshal(m.Config, &cfg); err != nil || cfg["targets"] != 9 {
		t.Errorf("config round-trip: %s (%v)", m.Config, err)
	}
	if m.WallMs < m.Stages.Children[0].WallMs {
		t.Errorf("run wall %v shorter than stage wall %v", m.WallMs, m.Stages.Children[0].WallMs)
	}
}

func TestRunManifestTwice(t *testing.T) {
	run := NewRun("t")
	m1 := run.Manifest()
	time.Sleep(2 * time.Millisecond)
	m2 := run.Manifest()
	if m1.WallMs != m2.WallMs {
		t.Errorf("second Manifest moved wall_ms: %v -> %v", m1.WallMs, m2.WallMs)
	}
}
