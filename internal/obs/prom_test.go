package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPromSanitize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"client.outage.generation_flips", "client_outage_generation_flips"},
		{"db.maxmind-lite.hits", "db_maxmind_lite_hits"},
		{"HTTP.Requests", "http_requests"},
		{"7layer.db", "7layer_db"},
		{"weird key/with spaces", "weird_key_with_spaces"},
		{"", "_"},
		{"-", "_"},
		{"42", "42"},
	}
	for _, c := range cases {
		if got := promSanitize(c.in); got != c.want {
			t.Errorf("promSanitize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := []struct{ prefix, in, want string }{
		{"routergeo", "client.outage.generation_flips", "routergeo_client_outage_generation_flips"},
		{"routergeo", "7layer.db-hits", "routergeo_7layer_db_hits"},
		{"", "7layer.db-hits", "_7layer_db_hits"},
		{"My-App", "x", "my_app_x"},
	}
	for _, c := range cases {
		if got := PromName(c.prefix, c.in); got != c.want {
			t.Errorf("PromName(%q, %q) = %q, want %q", c.prefix, c.in, got, c.want)
		}
	}
}

// TestWritePrometheusGolden pins the full exposition of a known registry
// byte for byte: name mangling, HELP/TYPE lines, sorted family order
// (counters, gauges, histograms; each sorted by dotted name) and the
// histogram's cumulative le math.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("http.requests").Add(42)
	reg.SetHelp("http.requests", "HTTP requests served.")
	reg.Counter("client.outage.generation_flips").Add(3)
	reg.Gauge("generation.current").Set(7)
	h := reg.Histogram("http.latency_ms", []float64{5, 50, 500})
	for _, v := range []float64{1, 10, 100, 1000} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg, ""); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := strings.Join([]string{
		`# HELP routergeo_client_outage_generation_flips_total routergeo counter (auto-registered)`,
		`# TYPE routergeo_client_outage_generation_flips_total counter`,
		`routergeo_client_outage_generation_flips_total 3`,
		`# HELP routergeo_http_requests_total HTTP requests served.`,
		`# TYPE routergeo_http_requests_total counter`,
		`routergeo_http_requests_total 42`,
		`# HELP routergeo_generation_current routergeo gauge (auto-registered)`,
		`# TYPE routergeo_generation_current gauge`,
		`routergeo_generation_current 7`,
		`# HELP routergeo_http_latency_ms routergeo histogram (auto-registered)`,
		`# TYPE routergeo_http_latency_ms histogram`,
		`routergeo_http_latency_ms_bucket{le="5"} 1`,
		`routergeo_http_latency_ms_bucket{le="50"} 2`,
		`routergeo_http_latency_ms_bucket{le="500"} 3`,
		`routergeo_http_latency_ms_bucket{le="+Inf"} 4`,
		`routergeo_http_latency_ms_sum 1111`,
		`routergeo_http_latency_ms_count 4`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	fams, err := LintExposition(strings.NewReader(want))
	if err != nil {
		t.Fatalf("golden output fails lint: %v", err)
	}
	hist := fams["routergeo_http_latency_ms"]
	if hist == nil || hist.Type != "histogram" || hist.Samples != 6 {
		t.Errorf("histogram family = %+v, want 6 samples of type histogram", hist)
	}
}

// TestWritePrometheusDeterministic renders the same registry repeatedly
// and demands identical bytes — satellite #2's pin on sorted snapshot
// iteration.
func TestWritePrometheusDeterministic(t *testing.T) {
	reg := NewRegistry()
	for _, n := range []string{"z.last", "a.first", "m.mid", "b.second", "y.tail"} {
		reg.Counter(n).Inc()
		reg.Gauge(n + ".g").Set(1)
	}
	reg.Histogram("lat.a", []float64{1, 2}).Observe(1)
	reg.Histogram("lat.b", []float64{1, 2}).Observe(2)

	var first bytes.Buffer
	if err := WritePrometheus(&first, reg, "routergeo"); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for i := 0; i < 20; i++ {
		var again bytes.Buffer
		if err := WritePrometheus(&again, reg, "routergeo"); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("render %d differs from the first:\n%s\nvs\n%s", i, again.String(), first.String())
		}
	}
}

func TestWritePrometheusEmptyRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, NewRegistry(), ""); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty registry rendered %q, want no output", buf.String())
	}
	fams, err := LintExposition(&buf)
	if err != nil || len(fams) != 0 {
		t.Errorf("lint of empty exposition: fams=%v err=%v", fams, err)
	}
}

// TestWritePrometheusZeroObservationHistogram: a registered histogram
// with no observations must still expose a complete, valid family.
func TestWritePrometheusZeroObservationHistogram(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("empty.hist", []float64{1, 2})
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg, ""); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := strings.Join([]string{
		`# HELP routergeo_empty_hist routergeo histogram (auto-registered)`,
		`# TYPE routergeo_empty_hist histogram`,
		`routergeo_empty_hist_bucket{le="1"} 0`,
		`routergeo_empty_hist_bucket{le="2"} 0`,
		`routergeo_empty_hist_bucket{le="+Inf"} 0`,
		`routergeo_empty_hist_sum 0`,
		`routergeo_empty_hist_count 0`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("zero-observation histogram:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if _, err := LintExposition(strings.NewReader(want)); err != nil {
		t.Errorf("zero-observation histogram fails lint: %v", err)
	}
}

// TestWritePrometheusOverflowOnly: observations past the largest bound
// land only in the +Inf bucket.
func TestWritePrometheusOverflowOnly(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("of.hist", []float64{1}).Observe(99)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg, ""); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, line := range []string{
		`routergeo_of_hist_bucket{le="1"} 0`,
		`routergeo_of_hist_bucket{le="+Inf"} 1`,
		`routergeo_of_hist_count 1`,
	} {
		if !strings.Contains(buf.String(), line+"\n") {
			t.Errorf("output missing %q:\n%s", line, buf.String())
		}
	}
}

// TestWritePrometheusCollision: two dotted names that sanitize to the
// same exposition name get deterministic _2 suffixes, sorted dotted name
// first.
func TestWritePrometheusCollision(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a-b").Add(1)
	reg.Counter("a.b").Add(2)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg, ""); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "routergeo_a_b_total 1\n") {
		t.Errorf(`want "a-b" (sorted first) to own routergeo_a_b_total:\n%s`, out)
	}
	if !strings.Contains(out, "routergeo_a_b_total_2 2\n") {
		t.Errorf(`want "a.b" renamed to routergeo_a_b_total_2:\n%s`, out)
	}
	if _, err := LintExposition(strings.NewReader(out)); err != nil {
		t.Errorf("collision output fails lint: %v", err)
	}
}

// TestWriteProcessMetricsLint: the ambient collectors must produce a
// strictly valid exposition with the canonical names present.
func TestWriteProcessMetricsLint(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProcessMetrics(&buf); err != nil {
		t.Fatalf("WriteProcessMetrics: %v", err)
	}
	fams, err := LintExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("process metrics fail lint: %v\n%s", err, buf.String())
	}
	for _, name := range []string{
		"routergeo_build_info",
		"process_cpu_seconds_total",
		"go_goroutines",
		"go_gc_cycles_total",
		"go_gc_pauses_seconds",
	} {
		if fams[name] == nil {
			t.Errorf("process metrics missing family %s:\n%s", name, buf.String())
		}
	}
	if f := fams["go_gc_pauses_seconds"]; f != nil && f.Type != "histogram" {
		t.Errorf("go_gc_pauses_seconds type = %s, want histogram", f.Type)
	}
}

// TestPromHandlerNegotiation: /metrics serves the text exposition by
// default and the legacy JSON snapshot when the client asks for JSON
// exclusively.
func TestPromHandlerNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("http.requests").Add(5)
	h := PromHandler(reg)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != PromContentType {
		t.Errorf("default Content-Type = %q, want %q", ct, PromContentType)
	}
	fams, err := LintExposition(rec.Body)
	if err != nil {
		t.Fatalf("default exposition fails lint: %v", err)
	}
	if fams["routergeo_http_requests_total"] == nil || fams["routergeo_build_info"] == nil {
		t.Errorf("exposition missing registry or ambient families: %v", famNames(fams))
	}

	rec = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/json")
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("JSON Content-Type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("JSON body does not decode as a snapshot: %v", err)
	}
	if snap.Counters["http.requests"] != 5 {
		t.Errorf("JSON snapshot counters = %v", snap.Counters)
	}

	// A scraper's Accept (text/plain preferred, */* fallback) stays on
	// the exposition.
	rec = httptest.NewRecorder()
	req = httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/json;q=0.5, */*;q=0.1")
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != PromContentType {
		t.Errorf("mixed Accept Content-Type = %q, want exposition", ct)
	}
}

func famNames(fams map[string]*ExpositionMetric) []string {
	out := make([]string, 0, len(fams))
	for n := range fams {
		out = append(out, n)
	}
	return out
}
