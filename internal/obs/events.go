package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event-bus defaults. The ring is deliberately small: the stream is a
// live window, not a durable log — a reconnecting consumer replays what
// the ring still holds and resumes from there.
const (
	// DefaultEventRing is the number of recent events the bus retains
	// for Last-Event-ID replay.
	DefaultEventRing = 1024
	// DefaultSubBuffer is the per-subscriber channel depth. A consumer
	// that falls further behind than this starts losing events (counted,
	// never blocking the producer).
	DefaultSubBuffer = 256
)

// Event is one observability happening: a progress tick, a stage
// boundary, a generation swap, a breaker transition, a fault injection.
// Seq is a per-bus monotonically increasing id (the SSE event id), so a
// consumer can detect gaps and replay across reconnects.
type Event struct {
	Seq  uint64         `json:"seq"`
	Time time.Time      `json:"time"`
	Kind string         `json:"kind"`
	Data map[string]any `json:"data,omitempty"`
}

// EventBus is a bounded, drop-oldest publish/subscribe bus. Publish
// never blocks: the ring overwrites its oldest entry when full, and a
// subscriber whose channel is full loses that event (tallied on the
// subscription) rather than stalling the producer. That contract is what
// lets hot paths — lookups, reloads, sweep loops — publish unconditionally.
type EventBus struct {
	mu   sync.Mutex
	ring []Event // circular, fixed capacity
	head int     // index of the oldest retained event
	n    int     // retained count
	seq  uint64

	subs map[*EventSub]struct{}
	// active mirrors len(subs) > 0 so hot paths can skip event assembly
	// with one atomic load when nobody is listening.
	active atomic.Bool

	published atomic.Int64
	dropped   atomic.Int64
}

// NewEventBus returns a bus retaining the last ringSize events
// (DefaultEventRing when <= 0).
func NewEventBus(ringSize int) *EventBus {
	if ringSize <= 0 {
		ringSize = DefaultEventRing
	}
	return &EventBus{
		ring: make([]Event, ringSize),
		subs: make(map[*EventSub]struct{}),
	}
}

// defaultBus is the process-wide bus: Progress ticks, Span boundaries
// and client-side resilience events land here, and every binary's debug
// listener streams it.
var defaultBus = NewEventBus(DefaultEventRing)

// Events returns the process-wide default bus.
func Events() *EventBus { return defaultBus }

// Publish assembles an event from alternating key/value pairs and
// publishes it on the default bus. See EventBus.Publish.
func Publish(kind string, kv ...any) uint64 { return defaultBus.Publish(kind, kv...) }

// Active reports whether the bus currently has any subscriber. Hot
// paths may use it to skip building events nobody will see; the ring
// still records everything actually published.
func (b *EventBus) Active() bool { return b.active.Load() }

// Published returns the total number of events published.
func (b *EventBus) Published() int64 { return b.published.Load() }

// Dropped returns the total number of per-subscriber deliveries lost to
// full channels.
func (b *EventBus) Dropped() int64 { return b.dropped.Load() }

// LastSeq returns the sequence number of the most recent event (0 before
// the first publish).
func (b *EventBus) LastSeq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Publish records one event and fans it out to every subscriber without
// ever blocking: a full subscriber channel drops the event for that
// subscriber only. kv is alternating key/value pairs (a trailing key
// without a value is dropped). Returns the event's sequence number.
func (b *EventBus) Publish(kind string, kv ...any) uint64 {
	var data map[string]any
	if len(kv) >= 2 {
		data = make(map[string]any, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			k, ok := kv[i].(string)
			if !ok {
				continue
			}
			data[k] = kv[i+1]
		}
	}
	ev := Event{Kind: kind, Data: data, Time: time.Now()}

	b.mu.Lock()
	b.seq++
	ev.Seq = b.seq
	if b.n < len(b.ring) {
		b.ring[(b.head+b.n)%len(b.ring)] = ev
		b.n++
	} else {
		// Full: overwrite the oldest.
		b.ring[b.head] = ev
		b.head = (b.head + 1) % len(b.ring)
	}
	for s := range b.subs {
		select {
		case s.ch <- ev:
		default:
			s.drops.Add(1)
			b.dropped.Add(1)
		}
	}
	b.mu.Unlock()
	b.published.Add(1)
	return ev.Seq
}

// Replay returns, oldest first, the retained events with Seq > after.
func (b *EventBus) Replay(after uint64) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Event
	for i := 0; i < b.n; i++ {
		ev := b.ring[(b.head+i)%len(b.ring)]
		if ev.Seq > after {
			out = append(out, ev)
		}
	}
	return out
}

// Subscribe registers a consumer with the given channel depth
// (DefaultSubBuffer when <= 0). The caller must Close the subscription;
// an abandoned one silently discards every event past its buffer.
func (b *EventBus) Subscribe(buffer int) *EventSub {
	if buffer <= 0 {
		buffer = DefaultSubBuffer
	}
	s := &EventSub{bus: b, ch: make(chan Event, buffer)}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.active.Store(true)
	b.mu.Unlock()
	return s
}

// EventSub is one subscriber's view of a bus.
type EventSub struct {
	bus   *EventBus
	ch    chan Event
	drops atomic.Int64
	once  sync.Once
}

// C is the subscription's event channel. It is closed by Close.
func (s *EventSub) C() <-chan Event { return s.ch }

// Drops returns how many events this subscriber lost to a full buffer.
func (s *EventSub) Drops() int64 { return s.drops.Load() }

// Close unregisters the subscription and closes its channel. Safe to
// call more than once.
func (s *EventSub) Close() {
	s.once.Do(func() {
		b := s.bus
		b.mu.Lock()
		delete(b.subs, s)
		b.active.Store(len(b.subs) > 0)
		// Closing under the bus lock is safe: publishers only send while
		// holding it, and s is no longer in subs.
		close(s.ch)
		b.mu.Unlock()
	})
}
