package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// LatencyBucketsMs is the default bucket layout for request latencies,
// spanning 50µs to 10s on a roughly logarithmic grid.
var LatencyBucketsMs = []float64{
	0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500,
	1000, 2000, 5000, 10000,
}

// atomicFloat is a float64 updated through CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) add(delta float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) min(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (f *atomicFloat) max(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Histogram is a fixed-bucket histogram safe for concurrent Observe.
// Each bucket counts observations at or below its upper bound (the last,
// implicit bucket catches everything above the largest bound). Quantiles
// are estimated by linear interpolation inside the owning bucket,
// sharpened by the exact observed minimum and maximum, so distributions
// that land on bucket bounds reproduce exactly.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; the extra slot is the overflow bucket
	count  atomic.Int64
	sum    atomicFloat
	mn, mx atomicFloat
}

// NewHistogram builds a histogram over the given bucket upper bounds
// (copied, sorted, deduplicated). An empty bounds slice falls back to
// LatencyBucketsMs.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBucketsMs
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	dedup := bs[:0]
	for i, b := range bs {
		if i == 0 || b != dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	h := &Histogram{bounds: dedup, counts: make([]atomic.Int64, len(dedup)+1)}
	h.mn.store(math.Inf(1))
	h.mx.store(math.Inf(-1))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.mn.min(v)
	h.mx.max(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Min returns the smallest observed value (0 before any observation).
func (h *Histogram) Min() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.mn.load()
}

// Max returns the largest observed value (0 before any observation).
func (h *Histogram) Max() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.mx.load()
}

// Mean returns the average observed value (0 before any observation).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sum.load() / float64(n)
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed
// distribution. Concurrent Observes may skew an in-flight estimate by at
// most the in-flight observations; the estimate is exact whenever the
// distribution's mass sits on bucket bounds.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	mn, mx := h.mn.load(), h.mx.load()
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if cum+c < rank {
			cum += c
			continue
		}
		// The rank-th observation lives in bucket i, spanning
		// (prev bound, bounds[i]] — clamped by the observed extremes.
		lo := mn
		if i > 0 && h.bounds[i-1] > lo {
			lo = h.bounds[i-1]
		}
		hi := mx
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if hi < lo {
			hi = lo
		}
		frac := float64(rank-cum) / float64(c)
		return lo + frac*(hi-lo)
	}
	return mx
}

// HistogramSnapshot is a point-in-time copy shaped for JSON.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Mean   float64   `json:"mean"`
	P50    float64   `json:"p50"`
	P90    float64   `json:"p90"`
	P99    float64   `json:"p99"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(bounds)+1; the last is the overflow bucket
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.Count(),
		Sum:    h.Sum(),
		Min:    h.Min(),
		Max:    h.Max(),
		Mean:   h.Mean(),
		P50:    h.Quantile(0.50),
		P90:    h.Quantile(0.90),
		P99:    h.Quantile(0.99),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}
