// Package obs is the reproduction's observability layer: structured
// leveled logging on log/slog, a process-local metrics registry
// (counters, gauges, fixed-bucket histograms with quantile estimation),
// lightweight hierarchical trace spans, rate-limited progress reporting
// for long loops, and machine-readable run manifests.
//
// The package is dependency-free by design — everything is stdlib — so
// any layer of the pipeline (server, CLIs, core evaluation, experiment
// harness) can instrument itself without import cycles or new deps.
//
// The pieces compose like this:
//
//	run := obs.NewRun("routergeo")
//	ctx := run.Context(context.Background())
//	...
//	ctx, sp := obs.Start(ctx, "groundtruth.rtt") // child of the run root
//	defer sp.End()
//	sp.SetItems(int64(ds.Len()))
//	...
//	run.WriteManifest("routergeo-run.json") // config, stage tree, metrics
package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value onto a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	// Accept slog's own spellings ("INFO", "DEBUG-4", ...) as an escape
	// hatch before rejecting.
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err == nil {
		return l, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds a leveled slog.Logger writing to w. format is "text"
// (the default) or "json"; unknown formats fall back to text so a typo
// never silences logging outright.
func NewLogger(w io.Writer, level slog.Level, format string) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if strings.EqualFold(format, "json") {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// LogFlags holds the shared -log-level/-log-format flag values every
// binary registers through AddLogFlags.
type LogFlags struct {
	Level  string
	Format string
}

// AddLogFlags registers -log-level and -log-format on fs (use
// flag.CommandLine in a main) and returns the destination struct.
func AddLogFlags(fs *flag.FlagSet) *LogFlags {
	lf := &LogFlags{}
	fs.StringVar(&lf.Level, "log-level", "info", "minimum log level: debug, info, warn or error")
	fs.StringVar(&lf.Format, "log-format", "text", "log output format: text or json")
	return lf
}

// MinLevel parses the level flag, falling back to info on nonsense (the
// error surface is Setup's job).
func (lf *LogFlags) MinLevel() slog.Level {
	level, err := ParseLevel(lf.Level)
	if err != nil {
		return slog.LevelInfo
	}
	return level
}

// Setup builds the logger the flags describe, installs it as the slog
// default (so package-level slog calls and span debug lines follow the
// binary's flags), and returns it.
func (lf *LogFlags) Setup(w io.Writer) (*slog.Logger, error) {
	level, err := ParseLevel(lf.Level)
	if err != nil {
		return nil, err
	}
	switch strings.ToLower(lf.Format) {
	case "", "text", "json":
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", lf.Format)
	}
	l := NewLogger(w, level, lf.Format)
	slog.SetDefault(l)
	return l, nil
}
