//go:build linux

package obs

import (
	"bytes"
	"os"
	"strconv"
)

// residentBytes reads the process's current resident set size from
// /proc/self/statm (second field, in pages). 0 on any failure — the
// exposition simply omits the metric then.
func residentBytes() int64 {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := bytes.Fields(data)
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(string(fields[1]), 10, 64)
	if err != nil || pages < 0 {
		return 0
	}
	return pages * int64(os.Getpagesize())
}
