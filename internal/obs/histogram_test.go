package obs

import (
	"math"
	"sync"
	"testing"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestHistogramQuantileUniformIntegers(t *testing.T) {
	// Bucket bounds at every integer: 1..100 observed once each lands one
	// value per bucket, so quantiles must be exact.
	bounds := make([]float64, 100)
	for i := range bounds {
		bounds[i] = float64(i + 1)
	}
	h := NewHistogram(bounds)
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 50}, {0.90, 90}, {0.99, 99}, {1.0, 100}, {0.01, 1},
	} {
		if got := h.Quantile(tc.q); !almostEqual(got, tc.want) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := h.Count(); got != 100 {
		t.Errorf("Count = %d, want 100", got)
	}
	if got := h.Sum(); !almostEqual(got, 5050) {
		t.Errorf("Sum = %v, want 5050", got)
	}
	if got := h.Mean(); !almostEqual(got, 50.5) {
		t.Errorf("Mean = %v, want 50.5", got)
	}
}

func TestHistogramQuantileSingleValue(t *testing.T) {
	// All mass on one value: min == max clamps interpolation, so every
	// quantile is exact regardless of bucket layout.
	h := NewHistogram([]float64{1, 10, 100})
	for i := 0; i < 1000; i++ {
		h.Observe(42)
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if got := h.Quantile(q); !almostEqual(got, 42) {
			t.Errorf("Quantile(%v) = %v, want 42", q, got)
		}
	}
	if h.Min() != 42 || h.Max() != 42 {
		t.Errorf("Min/Max = %v/%v, want 42/42", h.Min(), h.Max())
	}
}

func TestHistogramQuantileTwoPoint(t *testing.T) {
	// Half the mass at 1, half at 100, buckets splitting them: the median
	// comes from the low bucket (clamped to [1,1]), p90 from the high one
	// (clamped to [100,100] via observed max and the 50-bound floor... the
	// high bucket spans (50, 200] clamped to [50, 100]).
	h := NewHistogram([]float64{1, 50, 200})
	for i := 0; i < 50; i++ {
		h.Observe(1)
		h.Observe(100)
	}
	if got := h.Quantile(0.5); !almostEqual(got, 1) {
		t.Errorf("p50 = %v, want 1", got)
	}
	// p90: rank 90 is the 40th of 50 observations in the (50,200] bucket,
	// interpolated over [50, 100] -> 50 + 0.8*50 = 90.
	if got := h.Quantile(0.9); !almostEqual(got, 90) {
		t.Errorf("p90 = %v, want 90", got)
	}
	if got := h.Quantile(1); !almostEqual(got, 100) {
		t.Errorf("p100 = %v, want 100", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	// Values beyond the last bound land in the overflow bucket and
	// interpolate toward the observed max, never to infinity.
	h := NewHistogram([]float64{10})
	h.Observe(500)
	h.Observe(1000)
	if got := h.Quantile(1); !almostEqual(got, 1000) {
		t.Errorf("p100 = %v, want 1000", got)
	}
	got := h.Quantile(0.5)
	if math.IsInf(got, 0) || got < 10 || got > 1000 {
		t.Errorf("p50 = %v, want a finite value in [10, 1000]", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Errorf("empty Min/Max/Mean = %v/%v/%v, want zeros", h.Min(), h.Max(), h.Mean())
	}
	s := h.Snapshot()
	if s.Count != 0 || len(s.Counts) != len(s.Bounds)+1 {
		t.Errorf("empty snapshot: count=%d counts=%d bounds=%d", s.Count, len(s.Counts), len(s.Bounds))
	}
}

func TestHistogramDedupSortsBounds(t *testing.T) {
	h := NewHistogram([]float64{5, 1, 5, 3, 1})
	want := []float64{1, 3, 5}
	if len(h.bounds) != len(want) {
		t.Fatalf("bounds = %v, want %v", h.bounds, want)
	}
	for i, b := range want {
		if h.bounds[i] != b {
			t.Fatalf("bounds = %v, want %v", h.bounds, want)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	// Exercised under -race by make check: concurrent Observe plus
	// concurrent snapshots must stay race-free and lose no observations.
	h := NewHistogram(LatencyBucketsMs)
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(w*perWorker+i) / 100)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				h.Snapshot()
				h.Quantile(0.99)
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("Count = %d, want %d", got, workers*perWorker)
	}
	var bucketSum int64
	s := h.Snapshot()
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != workers*perWorker {
		t.Errorf("bucket counts sum to %d, want %d", bucketSum, workers*perWorker)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter not stable across calls")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge not stable across calls")
	}
	h1 := r.Histogram("h", []float64{1, 2})
	h2 := r.Histogram("h", []float64{9, 10, 11})
	if h1 != h2 {
		t.Error("Histogram not stable across calls")
	}
	if len(h1.bounds) != 2 {
		t.Error("later Histogram call replaced the original buckets")
	}
	r.Counter("a").Add(3)
	r.Gauge("g").Set(-7)
	r.Histogram("h", nil).Observe(1.5)
	snap := r.Snapshot()
	if snap.Counters["a"] != 3 || snap.Gauges["g"] != -7 || snap.Histograms["h"].Count != 1 {
		t.Errorf("snapshot mismatch: %+v", snap)
	}
	if snap.Empty() {
		t.Error("non-empty snapshot reported Empty")
	}
	if (Snapshot{}).Empty() != true {
		t.Error("zero snapshot not Empty")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", nil).Observe(1)
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
}
