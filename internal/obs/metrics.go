package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic tally.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current tally.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (useful for in-flight tallies).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named set of counters, gauges and histograms shared by
// one subsystem (a server handler, a run). All methods are safe for
// concurrent use; the get-or-create accessors return the same instrument
// for the same name, so callers can re-resolve by name instead of
// plumbing pointers.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		help:     map[string]string{},
	}
}

// SetHelp attaches a human-readable description to the instrument
// registered under name. The Prometheus exposition emits it as the
// metric's # HELP line; instruments without one get a generated default.
func (r *Registry) SetHelp(name, text string) {
	r.mu.Lock()
	r.help[name] = text
	r.mu.Unlock()
}

// helpText returns the registered help for name, or "".
func (r *Registry) helpText(name string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.help[name]
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (later calls keep the
// original buckets).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = NewHistogram(bounds)
	r.hists[name] = h
	return h
}

// Snapshot is a point-in-time copy of a registry, shaped for JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Empty reports whether the snapshot carries no instruments at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// sortedKeys returns m's keys in sorted order — the deterministic
// iteration order every consumer of a snapshot must use. (The JSON
// handler gets it for free: encoding/json sorts map keys.)
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CounterNames returns the snapshot's counter names, sorted.
func (s Snapshot) CounterNames() []string { return sortedKeys(s.Counters) }

// GaugeNames returns the snapshot's gauge names, sorted.
func (s Snapshot) GaugeNames() []string { return sortedKeys(s.Gauges) }

// HistogramNames returns the snapshot's histogram names, sorted.
func (s Snapshot) HistogramNames() []string { return sortedKeys(s.Histograms) }

// Snapshot copies every instrument's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := Snapshot{}
	if len(r.counters) > 0 {
		out.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			out.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		out.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			out.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		out.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			out.Histograms[name] = h.Snapshot()
		}
	}
	return out
}

// Handler serves the registry snapshot as indented JSON — the
// /debug/metrics endpoint behind geoserve's -debug-addr.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}
