package obs

import (
	"net/http"
	"net/http/pprof"
)

// NewDebugMux assembles the standard debug listener every binary mounts
// behind -debug-addr:
//
//	/debug/pprof/*   the usual profiles
//	/debug/metrics   the registry snapshot as JSON (legacy shape)
//	/metrics         Prometheus text exposition 0.0.4 (registry +
//	                 ambient process/runtime collectors)
//	/v2/events       the live event stream as SSE (also at /events)
//
// reg nil uses a fresh empty registry (the ambient collectors still
// report); bus nil uses the process-wide Events() bus, which is what
// sweeps publish progress and span boundaries to.
func NewDebugMux(reg *Registry, bus *EventBus) *http.ServeMux {
	if reg == nil {
		reg = NewRegistry()
	}
	if bus == nil {
		bus = Events()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/metrics", reg.Handler())
	mux.Handle("/metrics", PromHandler(reg))
	sse := NewSSEHandler(bus, WithSSERegistry(reg))
	mux.Handle("/v2/events", sse)
	mux.Handle("/events", sse)
	return mux
}

// ServeDebug starts the debug listener on addr in a goroutine and
// reports startup through onErr (nil ignores failures). It never blocks;
// the listener lives for the process lifetime.
func ServeDebug(addr string, reg *Registry, bus *EventBus, onErr func(error)) {
	//lint:ignore gorohygiene the debug listener is process-lifetime by design: it serves pprof/metrics until exit and is torn down by the OS, so no ctx/WaitGroup edge exists to wire
	go func() {
		if err := http.ListenAndServe(addr, NewDebugMux(reg, bus)); err != nil && onErr != nil {
			onErr(err)
		}
	}()
}
