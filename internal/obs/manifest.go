package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"
)

// Run ties one tool invocation's observability together: a root span the
// stage tree hangs off, a metrics registry, and the identifying bits
// (seed, config, counts) the manifest records.
type Run struct {
	tool string
	root *Span
	reg  *Registry

	mu     sync.Mutex
	seed   *int64
	config json.RawMessage
	counts map[string]int64
	taint  map[string]int64
}

// NewRun starts a run for the named tool. The root span starts now and
// ends when the manifest is built.
func NewRun(tool string) *Run {
	return &Run{
		tool:   tool,
		root:   newSpan(tool),
		reg:    NewRegistry(),
		counts: map[string]int64{},
	}
}

// Context returns a context carrying the run's root span, so obs.Start
// calls downstream attach their stages to this run.
func (r *Run) Context(ctx context.Context) context.Context {
	return context.WithValue(ctx, ctxKey{}, r.root)
}

// Root returns the run's root span.
func (r *Run) Root() *Span { return r.root }

// Registry returns the run's metrics registry.
func (r *Run) Registry() *Registry { return r.reg }

// SetSeed records the world seed the run used.
func (r *Run) SetSeed(seed int64) {
	r.mu.Lock()
	r.seed = &seed
	r.mu.Unlock()
}

// SetConfig records the run's configuration; v must be JSON-encodable.
func (r *Run) SetConfig(v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("obs: encode run config: %w", err)
	}
	r.mu.Lock()
	r.config = raw
	r.mu.Unlock()
	return nil
}

// SetCount records a named size of the run's inputs or outputs
// (ark_addresses, targets, ...).
func (r *Run) SetCount(name string, n int64) {
	r.mu.Lock()
	r.counts[name] = n
	r.mu.Unlock()
}

// SetTaint records a named count of results degraded by infrastructure
// trouble rather than by the data itself (e.g. remote lookups served by
// a fallback, or misses fabricated by an outage). A zero n is recorded
// too: "checked, clean" and "never checked" read differently.
func (r *Run) SetTaint(name string, n int64) {
	r.mu.Lock()
	if r.taint == nil {
		r.taint = map[string]int64{}
	}
	r.taint[name] = n
	r.mu.Unlock()
}

// Manifest is the machine-readable run record written at exit.
type Manifest struct {
	Tool      string           `json:"tool"`
	GoVersion string           `json:"go_version"`
	Hostname  string           `json:"hostname,omitempty"`
	PID       int              `json:"pid"`
	Argv      []string         `json:"argv"`
	Start     time.Time        `json:"start"`
	WallMs    float64          `json:"wall_ms"`
	Seed      *int64           `json:"seed,omitempty"`
	Config    json.RawMessage  `json:"config,omitempty"`
	Counts    map[string]int64 `json:"counts,omitempty"`
	// Taint flags results degraded by outages during the run — non-empty
	// means the numbers are reproducible but were produced under duress
	// (see Run.SetTaint).
	Taint   map[string]int64 `json:"taint,omitempty"`
	Stages  SpanSnapshot     `json:"stages"`
	Metrics *Snapshot        `json:"metrics,omitempty"`
}

// Manifest ends the root span and builds the run record. Safe to call
// more than once; the stage tree freezes at the first call.
func (r *Run) Manifest() Manifest {
	r.root.End()
	host, _ := os.Hostname()
	r.mu.Lock()
	m := Manifest{
		Tool:      r.tool,
		GoVersion: runtime.Version(),
		Hostname:  host,
		PID:       os.Getpid(),
		Argv:      os.Args,
		Start:     r.root.start,
		Seed:      r.seed,
		Config:    r.config,
		Stages:    r.root.Snapshot(),
	}
	if len(r.counts) > 0 {
		m.Counts = make(map[string]int64, len(r.counts))
		for k, v := range r.counts {
			m.Counts[k] = v
		}
	}
	if len(r.taint) > 0 {
		m.Taint = make(map[string]int64, len(r.taint))
		for k, v := range r.taint {
			m.Taint[k] = v
		}
	}
	r.mu.Unlock()
	m.WallMs = m.Stages.WallMs
	if snap := r.reg.Snapshot(); !snap.Empty() {
		m.Metrics = &snap
	}
	return m
}

// WriteManifest writes the run manifest as indented JSON to path.
func (r *Run) WriteManifest(path string) error {
	m := r.Manifest()
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encode manifest: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	return nil
}
