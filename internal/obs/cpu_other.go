//go:build !unix

package obs

import "time"

// processCPU is unavailable off unix; spans report wall time only.
func processCPU() time.Duration { return 0 }
