package obs

// Race coverage for the observability surfaces the parallel measurement
// engine leans on: many worker goroutines sharing one Progress reporter
// and writing attributes on one Span. Run with -race (make check does).

import (
	"bytes"
	"fmt"
	"log/slog"
	"sync"
	"testing"
	"time"
)

func TestProgressAddConcurrent(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress("race.loop", ProgressThreshold)
	p.logger = slog.New(slog.NewTextHandler(&buf, nil))
	p.interval = time.Nanosecond // every Add is eligible to emit

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				p.Add(1)
			}
		}()
	}
	wg.Wait()
	p.Finish()
	if done := p.done.Load(); done != workers*perWorker {
		t.Errorf("done = %d, want %d", done, workers*perWorker)
	}
	if buf.Len() == 0 {
		t.Error("no progress lines emitted")
	}
}

func TestSpanWritesConcurrent(t *testing.T) {
	sp := newSpan("race.span")
	const workers = 8
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			defer wg.Done()
			sp.SetAttr(fmt.Sprintf("worker_%d", i), i)
			sp.SetAttr("shared", i)
			sp.AddItems(100)
			_ = sp.Snapshot() // concurrent reads race-clean too
		}(i)
	}
	wg.Wait()
	sp.End()
	snap := sp.Snapshot()
	if snap.Items != workers*100 {
		t.Errorf("items = %d, want %d", snap.Items, workers*100)
	}
	if len(snap.Attrs) != workers+1 {
		t.Errorf("attrs = %d, want %d", len(snap.Attrs), workers+1)
	}
}
