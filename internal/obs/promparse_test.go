package obs

import (
	"strings"
	"testing"
)

// TestLintExpositionAccepts: well-formed expositions parse, including
// comments, timestamps, escapes and special float spellings.
func TestLintExpositionAccepts(t *testing.T) {
	const in = `# a free comment the parser ignores
# HELP up Whether the scrape target is up.
# TYPE up gauge
up 1

# HELP reqs_total Requests with an escaped help \\ line\nsecond.
# TYPE reqs_total counter
reqs_total{path="/v2/lookup",status="200"} 10 1723180000000
reqs_total{path="/v2/lookup",status="500"} 2
reqs_total{path="with \"quotes\" and \\ slash and \n newline"} 1

# TYPE odd gauge
odd NaN
odd{edge="inf"} +Inf
odd{edge="neginf"} -Inf

# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="1"} 3
lat_seconds_bucket{le="+Inf"} 4
lat_seconds_sum 2.5
lat_seconds_count 4
`
	fams, err := LintExposition(strings.NewReader(in))
	if err != nil {
		t.Fatalf("LintExposition: %v", err)
	}
	if len(fams) != 4 {
		t.Fatalf("families = %v, want 4", famNames(fams))
	}
	if f := fams["reqs_total"]; f.Type != "counter" || f.Samples != 3 || !strings.Contains(f.Help, "escaped") {
		t.Errorf("reqs_total = %+v", f)
	}
	if f := fams["lat_seconds"]; f.Type != "histogram" || f.Samples != 5 {
		t.Errorf("lat_seconds = %+v", f)
	}
	if f := fams["odd"]; f.Samples != 3 {
		t.Errorf("odd = %+v", f)
	}
}

// TestLintExpositionUntyped: bare samples with no HELP/TYPE are legal
// and default to untyped.
func TestLintExpositionUntyped(t *testing.T) {
	fams, err := LintExposition(strings.NewReader("plain_sample 42\n"))
	if err != nil {
		t.Fatalf("LintExposition: %v", err)
	}
	if f := fams["plain_sample"]; f == nil || f.Type != "untyped" {
		t.Errorf("plain_sample = %+v, want untyped", f)
	}
}

// TestLintExpositionRejects: every malformation the strict parser must
// refuse, with the reason we expect in the error.
func TestLintExpositionRejects(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		wantErr string
	}{
		{
			"duplicate series",
			"a 1\na 2\n",
			"duplicate series",
		},
		{
			"duplicate labeled series",
			`a{x="1",y="2"} 1` + "\n" + `a{y="2",x="1"} 2` + "\n",
			"duplicate series",
		},
		{
			"interleaved families",
			"a 1\nb 1\na 2\n",
			"reopened",
		},
		{
			"type after samples",
			"a 1\n# TYPE a counter\n",
			"after its samples",
		},
		{
			"duplicate type",
			"# TYPE a counter\n# TYPE a counter\na 1\n",
			"duplicate TYPE",
		},
		{
			"duplicate help",
			"# HELP a x\n# HELP a y\na 1\n",
			"duplicate HELP",
		},
		{
			"empty help",
			"# HELP a\na 1\n",
			"empty HELP",
		},
		{
			"unknown type",
			"# TYPE a carrots\na 1\n",
			"unknown TYPE",
		},
		{
			"illegal metric name",
			"9lives 1\n",
			"illegal metric name",
		},
		{
			"illegal label name",
			`a{9x="1"} 1` + "\n",
			"illegal label name",
		},
		{
			"colon in label name",
			`a{x:y="1"} 1` + "\n",
			"illegal label name",
		},
		{
			"unquoted label value",
			"a{x=1} 1\n",
			"not quoted",
		},
		{
			"bad escape",
			`a{x="\t"} 1` + "\n",
			"bad escape",
		},
		{
			"unterminated label value",
			`a{x="open} 1` + "\n",
			"unterminated",
		},
		{
			"unterminated label set",
			`a{x="1" 1` + "\n",
			"unterminated label set",
		},
		{
			"duplicate label",
			`a{x="1",x="2"} 1` + "\n",
			"duplicate label",
		},
		{
			"missing value",
			"a\n",
			"needs a name and a value",
		},
		{
			"bad value",
			"a pickles\n",
			"bad value",
		},
		{
			"bad timestamp",
			"a 1 yesterday\n",
			"bad timestamp",
		},
		{
			"histogram missing inf",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"missing +Inf",
		},
		{
			"histogram inf count mismatch",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
			"!= _count",
		},
		{
			"histogram not cumulative",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"not cumulative",
		},
		{
			"histogram missing sum",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
			"missing _sum or _count",
		},
		{
			"histogram no buckets",
			"# TYPE h histogram\nh_sum 1\nh_count 1\n",
			"no buckets",
		},
		{
			"histogram bare sample",
			"# TYPE h histogram\nh 1\n",
			"bare sample",
		},
		{
			"bucket without le",
			"# TYPE h histogram\nh_bucket 1\n",
			"without le",
		},
		{
			"unparseable le",
			"# TYPE h histogram\nh_bucket{le=\"wide\"} 1\n",
			"unparseable le",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := LintExposition(strings.NewReader(c.in))
			if err == nil {
				t.Fatalf("accepted malformed input:\n%s", c.in)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error = %q, want it to mention %q", err, c.wantErr)
			}
		})
	}
}

// TestLintExpositionHistogramSuffixFamilies: _sum/_count/_bucket only
// fold into a family that declared itself histogram (or summary); for
// anything else they are independent metrics.
func TestLintExpositionHistogramSuffixFamilies(t *testing.T) {
	const in = `# TYPE x_count counter
x_count 5
`
	fams, err := LintExposition(strings.NewReader(in))
	if err != nil {
		t.Fatalf("LintExposition: %v", err)
	}
	if f := fams["x_count"]; f == nil || f.Type != "counter" {
		t.Errorf("x_count should stand alone as a counter, got %+v", f)
	}
}
