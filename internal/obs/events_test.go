package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestEventBusPublishSubscribe(t *testing.T) {
	b := NewEventBus(16)
	sub := b.Subscribe(8)
	defer sub.Close()

	seq := b.Publish("test", "a", 1, "b", "two")
	if seq != 1 {
		t.Fatalf("first seq = %d, want 1", seq)
	}
	select {
	case ev := <-sub.C():
		if ev.Kind != "test" || ev.Seq != 1 {
			t.Fatalf("got %+v", ev)
		}
		if ev.Data["a"] != 1 || ev.Data["b"] != "two" {
			t.Fatalf("data = %+v", ev.Data)
		}
		if ev.Time.IsZero() {
			t.Fatal("event has no timestamp")
		}
	case <-time.After(time.Second):
		t.Fatal("event not delivered")
	}
}

func TestEventBusOddPairsAndNonStringKeys(t *testing.T) {
	b := NewEventBus(4)
	b.Publish("odd", "key") // trailing key without value: dropped
	b.Publish("bad", 42, "v", "k", "kept")
	evs := b.Replay(0)
	if len(evs) != 2 {
		t.Fatalf("replay = %d events, want 2", len(evs))
	}
	if len(evs[0].Data) != 0 {
		t.Errorf("odd pair produced data %+v", evs[0].Data)
	}
	if len(evs[1].Data) != 1 || evs[1].Data["k"] != "kept" {
		t.Errorf("non-string key handling wrong: %+v", evs[1].Data)
	}
}

func TestEventBusRingDropsOldest(t *testing.T) {
	b := NewEventBus(4)
	for i := 0; i < 10; i++ {
		b.Publish("e", "i", i)
	}
	evs := b.Replay(0)
	if len(evs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(evs))
	}
	for i, ev := range evs {
		want := uint64(7 + i) // seqs 7..10 survive
		if ev.Seq != want {
			t.Errorf("replay[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
	if got := b.Replay(8); len(got) != 2 || got[0].Seq != 9 {
		t.Errorf("Replay(8) = %+v, want seqs 9,10", got)
	}
	if b.LastSeq() != 10 {
		t.Errorf("LastSeq = %d, want 10", b.LastSeq())
	}
}

// TestEventBusNeverBlocks pins the core contract: a subscriber that
// never reads cannot stall Publish. The publisher must finish promptly
// with the stalled subscriber's losses counted.
func TestEventBusNeverBlocks(t *testing.T) {
	b := NewEventBus(8)
	stalled := b.Subscribe(2)
	defer stalled.Close()

	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			b.Publish("flood", "i", i)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a stalled subscriber")
	}
	if got := stalled.Drops(); got != 998 {
		t.Errorf("stalled subscriber drops = %d, want 998", got)
	}
	if b.Dropped() != 998 {
		t.Errorf("bus dropped = %d, want 998", b.Dropped())
	}
	if b.Published() != 1000 {
		t.Errorf("bus published = %d, want 1000", b.Published())
	}
}

func TestEventBusActive(t *testing.T) {
	b := NewEventBus(4)
	if b.Active() {
		t.Fatal("fresh bus reports active")
	}
	s1 := b.Subscribe(1)
	s2 := b.Subscribe(1)
	if !b.Active() {
		t.Fatal("bus with subscribers reports inactive")
	}
	s1.Close()
	if !b.Active() {
		t.Fatal("one subscriber left but inactive")
	}
	s2.Close()
	if b.Active() {
		t.Fatal("all subscribers closed but still active")
	}
	s2.Close() // idempotent
}

func TestEventBusCloseEndsChannel(t *testing.T) {
	b := NewEventBus(4)
	sub := b.Subscribe(4)
	sub.Close()
	if _, ok := <-sub.C(); ok {
		t.Fatal("channel still open after Close")
	}
	b.Publish("after", "k", "v") // must not panic on closed subscription
}

// TestEventBusConcurrent exercises publish/subscribe/close from many
// goroutines under -race.
func TestEventBusConcurrent(t *testing.T) {
	b := NewEventBus(64)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.Publish("k"+fmt.Sprint(p), "i", i)
			}
		}(p)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := b.Subscribe(16)
			defer sub.Close()
			deadline := time.After(2 * time.Second)
			for n := 0; n < 100; n++ {
				select {
				case _, ok := <-sub.C():
					if !ok {
						return
					}
				case <-deadline:
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := b.Published(); got != 2000 {
		t.Fatalf("published = %d, want 2000", got)
	}
	seqs := b.Replay(0)
	for i := 1; i < len(seqs); i++ {
		if seqs[i].Seq != seqs[i-1].Seq+1 {
			t.Fatalf("ring seqs not contiguous: %d then %d", seqs[i-1].Seq, seqs[i].Seq)
		}
	}
}
