//go:build unix

package obs

import (
	"syscall"
	"time"
)

// processCPU returns the process's cumulative user+system CPU time. Span
// CPU durations are deltas of this, so they measure the whole process —
// fine for the sequential pipeline stages this package instruments, an
// overestimate for concurrent ones.
func processCPU() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
