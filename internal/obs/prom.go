package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"strconv"
	"strings"
)

// PromContentType is the Prometheus text exposition content type this
// package emits (format version 0.0.4).
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// DefaultPromPrefix namespaces every registry-derived metric name, so
// dashboards can select the whole application with one matcher and the
// unprefixed process_*/go_* ambient names never collide with it.
const DefaultPromPrefix = "routergeo"

// promSanitize maps one dotted registry key onto the Prometheus metric
// name charset: lowercased, every illegal character replaced by "_".
func promSanitize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// PromName derives the exposition name for a dotted registry key:
// prefix + "_" + sanitized key (the key alone when prefix is empty). A
// name that would open with a digit gets a leading "_" so the result
// always matches [a-zA-Z_:][a-zA-Z0-9_:]*.
// client.outage.generation_flips with the default prefix becomes
// routergeo_client_outage_generation_flips (counters additionally get
// the _total suffix at render time).
func PromName(prefix, dotted string) string {
	out := promSanitize(dotted)
	if prefix != "" {
		out = promSanitize(prefix) + "_" + out
	}
	if out[0] >= '0' && out[0] <= '9' {
		out = "_" + out
	}
	return out
}

// promEscapeHelp escapes a HELP line per the exposition format.
func promEscapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promEscapeLabel escapes a label value per the exposition format.
func promEscapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promFloat formats a sample value or bucket bound the way Prometheus
// parsers expect.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promWriter accumulates exposition text, deduplicating metric names:
// distinct dotted keys that sanitize to the same name get deterministic
// _2/_3... suffixes (iteration is over sorted keys, so the assignment is
// stable run to run).
type promWriter struct {
	w    io.Writer
	err  error
	used map[string]bool
}

func newPromWriter(w io.Writer) *promWriter {
	return &promWriter{w: w, used: map[string]bool{}}
}

func (p *promWriter) claim(name string) string {
	if !p.used[name] {
		p.used[name] = true
		return name
	}
	for i := 2; ; i++ {
		alt := name + "_" + strconv.Itoa(i)
		if !p.used[alt] {
			p.used[alt] = true
			return alt
		}
	}
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// header emits the # HELP / # TYPE pair for one metric family.
func (p *promWriter) header(name, help, typ string) {
	if help == "" {
		help = "routergeo " + typ + " (auto-registered)"
	}
	p.printf("# HELP %s %s\n", name, promEscapeHelp(help))
	p.printf("# TYPE %s %s\n", name, typ)
}

// histogram emits one full histogram family: cumulative le buckets from
// the fixed bounds, the implicit overflow bucket as +Inf, then sum and
// count.
func (p *promWriter) histogram(name, help string, bounds []float64, counts []int64, sum float64, count int64) {
	p.header(name, help, "histogram")
	var cum int64
	for i, b := range bounds {
		cum += counts[i]
		p.printf("%s_bucket{le=\"%s\"} %d\n", name, promFloat(b), cum)
	}
	p.printf("%s_bucket{le=\"+Inf\"} %d\n", name, count)
	p.printf("%s_sum %s\n", name, promFloat(sum))
	p.printf("%s_count %d\n", name, count)
}

// WritePrometheus renders every instrument in reg in Prometheus text
// exposition format 0.0.4 under the given name prefix
// (DefaultPromPrefix when empty): counters first, then gauges, then
// histograms, each group in sorted dotted-name order — the output is a
// pure, deterministic function of the registry state.
func WritePrometheus(w io.Writer, reg *Registry, prefix string) error {
	if prefix == "" {
		prefix = DefaultPromPrefix
	}
	snap := reg.Snapshot()
	p := newPromWriter(w)
	for _, name := range snap.CounterNames() {
		n := p.claim(PromName(prefix, name) + "_total")
		p.header(n, reg.helpText(name), "counter")
		p.printf("%s %d\n", n, snap.Counters[name])
	}
	for _, name := range snap.GaugeNames() {
		n := p.claim(PromName(prefix, name))
		p.header(n, reg.helpText(name), "gauge")
		p.printf("%s %d\n", n, snap.Gauges[name])
	}
	for _, name := range snap.HistogramNames() {
		h := snap.Histograms[name]
		n := p.claim(PromName(prefix, name))
		p.histogram(n, reg.helpText(name), h.Bounds, h.Counts, h.Sum, h.Count)
	}
	return p.err
}

// runtimeSamples are the runtime/metrics readings the ambient collectors
// expose. Read returns KindBad for names a runtime no longer knows, and
// the renderer skips those, so the list degrades gracefully across Go
// versions.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
}

// buildIdentity resolves the build_info labels once: module version,
// VCS revision and the Go toolchain version.
func buildIdentity() (version, commit string) {
	version, commit = "unknown", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, commit
	}
	if bi.Main.Version != "" {
		version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			commit = s.Value
			if len(commit) > 12 {
				commit = commit[:12]
			}
		}
	}
	return version, commit
}

// WriteProcessMetrics renders the ambient process/runtime collectors:
// a build_info gauge (version, commit, Go version), process CPU seconds
// and resident memory, goroutine count, GC cycle count, live heap bytes
// and the GC pause distribution as a native histogram — everything a
// standard Go dashboard expects, without importing any client library.
func WriteProcessMetrics(w io.Writer) error {
	p := newPromWriter(w)

	version, commit := buildIdentity()
	n := p.claim(DefaultPromPrefix + "_build_info")
	p.header(n, "Build identity; the value is always 1.", "gauge")
	p.printf("%s{commit=%q,goversion=%q,version=%q} 1\n",
		n, promEscapeLabel(commit), promEscapeLabel(runtime.Version()), promEscapeLabel(version))

	n = p.claim("process_cpu_seconds_total")
	p.header(n, "Total user and system CPU time spent in seconds.", "counter")
	p.printf("%s %s\n", n, promFloat(processCPU().Seconds()))

	if rss := residentBytes(); rss > 0 {
		n = p.claim("process_resident_memory_bytes")
		p.header(n, "Resident set size in bytes.", "gauge")
		p.printf("%s %d\n", n, rss)
	}

	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	metrics.Read(samples)
	for _, s := range samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			if s.Value.Kind() == metrics.KindUint64 {
				n = p.claim("go_goroutines")
				p.header(n, "Number of goroutines that currently exist.", "gauge")
				p.printf("%s %d\n", n, s.Value.Uint64())
			}
		case "/memory/classes/heap/objects:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				n = p.claim("go_heap_objects_bytes")
				p.header(n, "Bytes of memory occupied by live heap objects.", "gauge")
				p.printf("%s %d\n", n, s.Value.Uint64())
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == metrics.KindUint64 {
				n = p.claim("go_gc_cycles_total")
				p.header(n, "Completed GC cycles.", "counter")
				p.printf("%s %d\n", n, s.Value.Uint64())
			}
		case "/gc/pauses:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				writeRuntimeHistogram(p, "go_gc_pauses_seconds",
					"Distribution of GC stop-the-world pause latencies.", s.Value.Float64Histogram())
			}
		}
	}
	return p.err
}

// writeRuntimeHistogram converts a runtime/metrics Float64Histogram
// (bucket boundaries, possibly opening at -Inf and closing at +Inf)
// into cumulative le buckets. The runtime does not track an exact sum,
// so _sum is estimated from bucket midpoints — documented in the HELP
// line so nobody trusts it past its precision.
func writeRuntimeHistogram(p *promWriter, name, help string, h *metrics.Float64Histogram) {
	if len(h.Buckets) != len(h.Counts)+1 {
		return
	}
	name = p.claim(name)
	p.header(name, help+" The sum is estimated from bucket midpoints.", "histogram")
	var cum, total uint64
	for _, c := range h.Counts {
		total += c
	}
	var sum float64
	for i, c := range h.Counts {
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		cum += c
		if math.IsInf(lo, 0) {
			lo = hi
		}
		if math.IsInf(hi, 1) {
			// The closing +Inf boundary collapses into the mandatory
			// +Inf bucket below.
			if !math.IsInf(lo, 0) {
				sum += float64(c) * lo
			}
			continue
		}
		if !math.IsInf(lo, 0) && !math.IsInf(hi, 0) {
			sum += float64(c) * (lo + hi) / 2
		}
		p.printf("%s_bucket{le=\"%s\"} %d\n", name, promFloat(hi), cum)
	}
	p.printf("%s_bucket{le=\"+Inf\"} %d\n", name, total)
	p.printf("%s_sum %s\n", name, promFloat(sum))
	p.printf("%s_count %d\n", name, total)
}

// acceptsJSONOnly reports whether the request explicitly negotiates the
// JSON snapshot instead of the text exposition (scrapers send
// text/plain or */*; the JSON debug view asks for application/json).
func acceptsJSONOnly(accept string) bool {
	return strings.Contains(accept, "application/json") &&
		!strings.Contains(accept, "text/plain") &&
		!strings.Contains(accept, "*/*")
}

// PromHandler serves reg at GET /metrics: Prometheus text exposition
// 0.0.4 (registry instruments plus the ambient process/runtime
// collectors) by default, or the legacy JSON snapshot when the request
// Accept header asks for application/json exclusively.
func PromHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if acceptsJSONOnly(r.Header.Get("Accept")) {
			reg.Handler().ServeHTTP(w, r)
			return
		}
		w.Header().Set("Content-Type", PromContentType)
		if err := WritePrometheus(w, reg, DefaultPromPrefix); err != nil {
			return
		}
		_ = WriteProcessMetrics(w)
	})
}
