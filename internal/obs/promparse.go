package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ExpositionMetric is one metric family seen by LintExposition.
type ExpositionMetric struct {
	Name    string
	Type    string // counter, gauge, histogram, summary or untyped
	Help    string
	Samples int // sample lines attributed to the family
}

// expoState tracks one family while linting.
type expoState struct {
	ExpositionMetric
	closed    bool // a later family started; more samples are an error
	haveSum   bool
	haveCount bool
	count     float64
	sum       float64
	buckets   []expoBucket
}

type expoBucket struct {
	le  float64
	raw string
	n   float64
}

// promNameOK reports whether s is a legal metric name.
func promNameOK(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// promLabelNameOK reports whether s is a legal label name.
func promLabelNameOK(s string) bool {
	if s == "" || strings.ContainsRune(s, ':') {
		return false
	}
	return promNameOK(s)
}

var expoTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// LintExposition strictly parses Prometheus text exposition format
// 0.0.4 and enforces the rules a picky scraper (or promtool check
// metrics) would: legal metric and label names, escaped label values,
// parseable sample values, HELP/TYPE declared exactly once and before
// any sample, families contiguous (no interleaving), no duplicate
// series, and — for histograms — cumulative non-decreasing buckets, a
// +Inf bucket equal to _count, and _sum/_count present. Every violation
// is an error carrying its line number. On success it returns the
// families seen, keyed by name.
func LintExposition(r io.Reader) (map[string]*ExpositionMetric, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16<<20)

	fams := map[string]*expoState{}
	series := map[string]bool{}
	var current *expoState
	line := 0

	family := func(name string) *expoState {
		if f, ok := fams[name]; ok {
			return f
		}
		f := &expoState{ExpositionMetric: ExpositionMetric{Name: name, Type: "untyped"}}
		fams[name] = f
		return f
	}
	enter := func(f *expoState) error {
		if current == f {
			return nil
		}
		if f.closed {
			return fmt.Errorf("line %d: family %s reopened after other samples (families must be contiguous)", line, f.Name)
		}
		if current != nil {
			current.closed = true
		}
		current = f
		return nil
	}

	for sc.Scan() {
		line++
		text := sc.Text()
		trimmed := strings.TrimSpace(text)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "#") {
			if err := lintComment(trimmed, line, fams, family, enter); err != nil {
				return nil, err
			}
			continue
		}
		if err := lintSample(text, line, fams, family, enter, series); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading exposition: %w", err)
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]*ExpositionMetric, len(fams))
	for _, name := range names {
		f := fams[name]
		if err := f.finish(); err != nil {
			return nil, err
		}
		m := f.ExpositionMetric
		out[name] = &m
	}
	return out, nil
}

// lintComment handles # HELP and # TYPE lines (anything else after # is
// a free comment).
func lintComment(trimmed string, line int, fams map[string]*expoState,
	family func(string) *expoState, enter func(*expoState) error) error {
	parts := strings.SplitN(trimmed, " ", 4)
	if len(parts) < 2 || (parts[1] != "HELP" && parts[1] != "TYPE") {
		return nil // ordinary comment
	}
	if len(parts) < 3 || !promNameOK(parts[2]) {
		return fmt.Errorf("line %d: malformed %s line", line, parts[1])
	}
	f := family(parts[2])
	if f.Samples > 0 {
		return fmt.Errorf("line %d: %s for %s after its samples", line, parts[1], f.Name)
	}
	if err := enter(f); err != nil {
		return err
	}
	if parts[1] == "HELP" {
		if f.Help != "" {
			return fmt.Errorf("line %d: duplicate HELP for %s", line, f.Name)
		}
		if len(parts) < 4 || parts[3] == "" {
			return fmt.Errorf("line %d: empty HELP for %s", line, f.Name)
		}
		f.Help = parts[3]
		return nil
	}
	if f.Type != "untyped" {
		return fmt.Errorf("line %d: duplicate TYPE for %s", line, f.Name)
	}
	if len(parts) < 4 || !expoTypes[parts[3]] {
		return fmt.Errorf("line %d: unknown TYPE %q for %s", line, strings.Join(parts[3:], " "), f.Name)
	}
	f.Type = parts[3]
	return nil
}

// sampleFamily maps a sample name onto its declaring family, resolving
// histogram (and summary) _bucket/_sum/_count suffixes.
func sampleFamily(fams map[string]*expoState, name string) (base string, suffix string) {
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		b := strings.TrimSuffix(name, sfx)
		if b == name {
			continue
		}
		if f, ok := fams[b]; ok && (f.Type == "histogram" || f.Type == "summary") {
			return b, sfx
		}
	}
	return name, ""
}

// lintSample validates one sample line and attributes it to a family.
func lintSample(text string, line int, fams map[string]*expoState,
	family func(string) *expoState, enter func(*expoState) error, series map[string]bool) error {
	name, labels, value, err := splitSample(text)
	if err != nil {
		return fmt.Errorf("line %d: %w", line, err)
	}
	if !promNameOK(name) {
		return fmt.Errorf("line %d: illegal metric name %q", line, name)
	}
	val, err := parsePromValue(value)
	if err != nil {
		return fmt.Errorf("line %d: bad value %q: %v", line, value, err)
	}

	base, suffix := sampleFamily(fams, name)
	f := family(base)
	if err := enter(f); err != nil {
		return err
	}
	if f.Type == "histogram" && suffix == "" && base == name {
		return fmt.Errorf("line %d: histogram %s has a bare sample (want _bucket/_sum/_count)", line, name)
	}

	key := name + "{" + canonicalLabels(labels) + "}"
	if series[key] {
		return fmt.Errorf("line %d: duplicate series %s", line, key)
	}
	series[key] = true
	f.Samples++

	switch suffix {
	case "_sum":
		f.haveSum, f.sum = true, val
	case "_count":
		f.haveCount, f.count = true, val
	case "_bucket":
		le, ok := labels["le"]
		if !ok {
			return fmt.Errorf("line %d: %s_bucket without le label", line, base)
		}
		lv, err := parsePromValue(le)
		if err != nil {
			return fmt.Errorf("line %d: unparseable le %q", line, le)
		}
		f.buckets = append(f.buckets, expoBucket{le: lv, raw: le, n: val})
	}
	return nil
}

// splitSample cuts one sample line into name, labels and value,
// validating label syntax and escapes.
func splitSample(text string) (name string, labels map[string]string, value string, err error) {
	labels = map[string]string{}
	rest := text
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return "", nil, "", fmt.Errorf("unterminated label set")
		}
		if labels, err = parseLabels(rest[i+1 : end]); err != nil {
			return "", nil, "", err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", nil, "", fmt.Errorf("sample line needs a name and a value")
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, "", fmt.Errorf("want value and optional timestamp, got %q", rest)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, "", fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, fields[0], nil
}

// parseLabels parses `k="v",k2="v2"` with exposition escapes.
func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without =: %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		if !promLabelNameOK(key) {
			return nil, fmt.Errorf("illegal label name %q", key)
		}
		s = strings.TrimSpace(s[eq+1:])
		if s == "" || s[0] != '"' {
			return nil, fmt.Errorf("label %s value not quoted", key)
		}
		s = s[1:]
		var b strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("label %s: trailing backslash", key)
				}
				i++
				switch s[i] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, fmt.Errorf("label %s: bad escape \\%c", key, s[i])
				}
				continue
			}
			if c == '"' {
				closed = true
				s = strings.TrimSpace(s[i+1:])
				break
			}
			b.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("label %s: unterminated value", key)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("duplicate label %s", key)
		}
		out[key] = b.String()
		if s == "" {
			break
		}
		if s[0] != ',' {
			return nil, fmt.Errorf("expected , between labels, got %q", s)
		}
		s = strings.TrimSpace(s[1:])
	}
	return out, nil
}

// canonicalLabels renders a label set sorted, for duplicate detection.
func canonicalLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + strconv.Quote(labels[k])
	}
	return strings.Join(parts, ",")
}

// parsePromValue parses a sample value, accepting the spec's infinity
// and NaN spellings.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "nan":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// finish validates a family's cross-sample invariants once the whole
// exposition is read.
func (f *expoState) finish() error {
	if f.Type != "histogram" {
		return nil
	}
	if !f.haveSum || !f.haveCount {
		return fmt.Errorf("histogram %s missing _sum or _count", f.Name)
	}
	if len(f.buckets) == 0 {
		return fmt.Errorf("histogram %s has no buckets", f.Name)
	}
	sort.SliceStable(f.buckets, func(i, j int) bool { return f.buckets[i].le < f.buckets[j].le })
	last := f.buckets[len(f.buckets)-1]
	if !math.IsInf(last.le, 1) {
		return fmt.Errorf("histogram %s missing +Inf bucket", f.Name)
	}
	if last.n != f.count {
		return fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", f.Name, last.n, f.count)
	}
	for i := 1; i < len(f.buckets); i++ {
		if f.buckets[i].n < f.buckets[i-1].n {
			return fmt.Errorf("histogram %s: bucket le=%q count %v below previous %v (not cumulative)",
				f.Name, f.buckets[i].raw, f.buckets[i].n, f.buckets[i-1].n)
		}
	}
	return nil
}
