package obs

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

type ctxKey struct{}

// Span is one timed stage of a run. Spans form a tree: Start called with
// a context carrying a parent span attaches the child under it, so the
// run manifest reproduces the pipeline's call structure. A Span's
// mutating methods are safe for concurrent use; End is idempotent.
type Span struct {
	name  string
	start time.Time
	cpu0  time.Duration

	mu       sync.Mutex
	ended    bool
	end      time.Time
	cpu1     time.Duration
	items    int64
	bytes    int64
	attrs    map[string]any
	children []*Span
}

// Start begins a span named name and returns a derived context carrying
// it. If ctx already carries a span the new one becomes its child;
// otherwise the span is a detached root (harmless — it just won't appear
// in any manifest).
func Start(ctx context.Context, name string) (context.Context, *Span) {
	sp := newSpan(name)
	if parent := FromContext(ctx); parent != nil {
		parent.addChild(sp)
	}
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

func newSpan(name string) *Span {
	if defaultBus.Active() {
		defaultBus.Publish("span.start", "stage", name)
	}
	return &Span{name: name, start: time.Now(), cpu0: processCPU()}
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

func (s *Span) addChild(c *Span) {
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// End closes the span, recording wall and CPU durations. Repeated calls
// keep the first end time. A debug-level slog line records the stage
// timing (free when debug logging is off).
func (s *Span) End() {
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = time.Now()
	s.cpu1 = processCPU()
	wall := s.end.Sub(s.start)
	items := s.items
	s.mu.Unlock()
	if defaultBus.Active() {
		defaultBus.Publish("span.end",
			"stage", s.name, "wall_ms", wall.Milliseconds(), "items", items)
	}
	slog.Debug("stage done", "stage", s.name, "wall", wall.Round(time.Microsecond), "items", items)
}

// Name returns the span's name.
func (s *Span) Name() string { return s.name }

// SetItems records how many items (addresses, targets, rows) the stage
// processed.
func (s *Span) SetItems(n int64) {
	s.mu.Lock()
	s.items = n
	s.mu.Unlock()
}

// AddItems increments the stage's item count.
func (s *Span) AddItems(delta int64) {
	s.mu.Lock()
	s.items += delta
	s.mu.Unlock()
}

// SetBytes records how many bytes the stage read or wrote.
func (s *Span) SetBytes(n int64) {
	s.mu.Lock()
	s.bytes = n
	s.mu.Unlock()
}

// SetAttr attaches an arbitrary key/value to the span (database name,
// monitor count, ...). Values must be JSON-encodable.
func (s *Span) SetAttr(key string, value any) {
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]any{}
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// SpanSnapshot is the JSON form of a span subtree, as embedded in run
// manifests.
type SpanSnapshot struct {
	Name     string         `json:"name"`
	Start    time.Time      `json:"start"`
	WallMs   float64        `json:"wall_ms"`
	CPUMs    float64        `json:"cpu_ms,omitempty"`
	Items    int64          `json:"items,omitempty"`
	Bytes    int64          `json:"bytes,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot copies the span and its children. Unended spans report wall
// time up to now and no CPU time.
func (s *Span) Snapshot() SpanSnapshot {
	s.mu.Lock()
	end := s.end
	if !s.ended {
		end = time.Now()
	}
	out := SpanSnapshot{
		Name:   s.name,
		Start:  s.start,
		WallMs: float64(end.Sub(s.start)) / float64(time.Millisecond),
		Items:  s.items,
		Bytes:  s.bytes,
	}
	if s.ended && s.cpu1 > s.cpu0 {
		out.CPUMs = float64(s.cpu1-s.cpu0) / float64(time.Millisecond)
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			out.Attrs[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.Snapshot())
	}
	return out
}
