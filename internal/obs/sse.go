package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// DefaultSSEHeartbeat is the idle-comment interval that keeps proxies
// and clients from reaping a quiet stream.
const DefaultSSEHeartbeat = 15 * time.Second

// SSEOption configures NewSSEHandler.
type SSEOption func(*SSEHandler)

// WithSSEHeartbeat sets the heartbeat comment interval.
func WithSSEHeartbeat(d time.Duration) SSEOption {
	return func(h *SSEHandler) {
		if d > 0 {
			h.heartbeat = d
		}
	}
}

// WithSSEStop closes every open stream when ch closes — the server's
// drain signal, so long-lived streams never hold a graceful shutdown
// hostage.
func WithSSEStop(ch <-chan struct{}) SSEOption {
	return func(h *SSEHandler) { h.stop = ch }
}

// WithSSEBuffer sets the per-connection subscriber channel depth.
func WithSSEBuffer(n int) SSEOption {
	return func(h *SSEHandler) {
		if n > 0 {
			h.buffer = n
		}
	}
}

// WithSSERegistry tallies stream lifecycle in reg: events.streams
// (gauge, currently open), events.sent and events.dropped (counters).
func WithSSERegistry(reg *Registry) SSEOption {
	return func(h *SSEHandler) {
		h.streams = reg.Gauge("events.streams")
		h.sent = reg.Counter("events.sent")
		h.lost = reg.Counter("events.dropped")
	}
}

// SSEHandler streams an EventBus as Server-Sent Events
// (text/event-stream): one message per bus event with its sequence
// number as the SSE id, periodic heartbeat comments, and Last-Event-ID
// replay from the bus ring on reconnect (also accepted as a
// ?last_event_id= query parameter for plain curl). A consumer that
// falls behind its buffer loses events rather than slowing anyone down;
// losses are reported in-band as ": dropped N" comments and counted.
type SSEHandler struct {
	bus       *EventBus
	heartbeat time.Duration
	buffer    int
	stop      <-chan struct{}

	streams *Gauge
	sent    *Counter
	lost    *Counter
}

// NewSSEHandler streams bus. See the SSEOptions for heartbeat, buffer,
// stop-channel and metrics wiring.
func NewSSEHandler(bus *EventBus, opts ...SSEOption) *SSEHandler {
	h := &SSEHandler{
		bus:       bus,
		heartbeat: DefaultSSEHeartbeat,
		buffer:    DefaultSubBuffer,
	}
	for _, o := range opts {
		o(h)
	}
	return h
}

// lastEventID resolves the resume position: the standard Last-Event-ID
// header wins, then ?last_event_id=. 0 means "no replay".
func lastEventID(r *http.Request) uint64 {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("last_event_id")
	}
	if raw == "" {
		return 0
	}
	id, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// writeEvent emits one SSE message. Data is a single JSON line, so a
// plain `curl -N` shows one event per block.
func writeEvent(w http.ResponseWriter, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
	return err
}

// ServeHTTP implements http.Handler.
func (h *SSEHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream; charset=utf-8")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	// A transport that cannot stream (no flush support) fails here, once,
	// rather than buffering events forever.
	if err := rc.Flush(); err != nil {
		return
	}

	if h.streams != nil {
		h.streams.Add(1)
		defer h.streams.Add(-1)
	}

	// Subscribe before replaying so no event can fall between the ring
	// read and the live channel; the seen guard below drops the overlap.
	sub := h.bus.Subscribe(h.buffer)
	defer sub.Close()

	// Reconnect hint for EventSource-style consumers.
	if _, err := fmt.Fprintf(w, "retry: 2000\n\n"); err != nil {
		return
	}

	var seen uint64
	if after := lastEventID(r); after > 0 {
		for _, ev := range h.bus.Replay(after) {
			if err := writeEvent(w, ev); err != nil {
				return
			}
			seen = ev.Seq
			if h.sent != nil {
				h.sent.Inc()
			}
		}
	}
	if err := rc.Flush(); err != nil {
		return
	}

	hb := time.NewTicker(h.heartbeat)
	defer hb.Stop()
	var reportedDrops int64
	for {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				return
			}
			if ev.Seq <= seen {
				continue // already sent during replay
			}
			if err := writeEvent(w, ev); err != nil {
				return
			}
			seen = ev.Seq
			if h.sent != nil {
				h.sent.Inc()
			}
			if err := rc.Flush(); err != nil {
				return
			}
		case <-hb.C:
			if d := sub.Drops(); d > reportedDrops {
				if h.lost != nil {
					h.lost.Add(d - reportedDrops)
				}
				if _, err := fmt.Fprintf(w, ": dropped %d\n\n", d-reportedDrops); err != nil {
					return
				}
				reportedDrops = d
			}
			if _, err := fmt.Fprintf(w, ": heartbeat\n\n"); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		case <-r.Context().Done():
			return
		case <-h.stop:
			// Server draining: end the stream cleanly so shutdown can
			// finish. A comment names the reason for humans watching.
			_, _ = fmt.Fprintf(w, ": server draining, stream closed\n\n")
			_ = rc.Flush()
			return
		}
	}
}
