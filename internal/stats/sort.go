package stats

import (
	"math"
	"slices"
	"sync"
)

// The ECDF sort kernel. Sorting dominates large-sweep ECDF queries (the
// accuracy sweep sorts hundreds of thousands of distance samples), so
// big inputs use an LSD radix sort over the IEEE-754 bit patterns
// instead of the standard library's comparison sort — a ~3x win at
// sweep sizes. The order-preserving key transform (flip the sign bit of
// non-negatives, all bits of negatives) makes unsigned key order equal
// float order, so the result is byte-identical to slices.Sort for any
// NaN-free input; distance samples are non-negative by construction.

// radixSortCutoff is the input size below which slices.Sort wins: the
// radix passes have a fixed cost (clearing 48 KiB of counting tables)
// that only amortizes over thousands of elements.
const radixSortCutoff = 512

const (
	floatRadixBits   = 11
	floatRadixPasses = 6 // 6 x 11 bits cover the 64-bit keys
	floatRadixSize   = 1 << floatRadixBits
	floatRadixMask   = floatRadixSize - 1
)

// floatSortBuf is the reusable working memory of one radix sort.
type floatSortBuf struct {
	a, b []uint64
	cnt  [floatRadixPasses][floatRadixSize]uint32
}

var floatSortPool = sync.Pool{New: func() any { return new(floatSortBuf) }}

// sortFloats sorts xs ascending in place.
func sortFloats(xs []float64) {
	if len(xs) < radixSortCutoff {
		slices.Sort(xs)
		return
	}
	buf := floatSortPool.Get().(*floatSortBuf)
	n := len(xs)
	if cap(buf.a) < n {
		buf.a = make([]uint64, n)
		buf.b = make([]uint64, n)
	}
	a, b := buf.a[:n], buf.b[:n]
	cnt := &buf.cnt
	for d := range cnt {
		c := &cnt[d]
		for i := range c {
			c[i] = 0
		}
	}
	for i, x := range xs {
		k := floatKey(x)
		a[i] = k
		cnt[0][k&floatRadixMask]++
		cnt[1][(k>>11)&floatRadixMask]++
		cnt[2][(k>>22)&floatRadixMask]++
		cnt[3][(k>>33)&floatRadixMask]++
		cnt[4][(k>>44)&floatRadixMask]++
		cnt[5][(k>>55)&floatRadixMask]++
	}
	for d := 0; d < floatRadixPasses; d++ {
		c := &cnt[d]
		shift := uint(d * floatRadixBits)
		if c[(a[0]>>shift)&floatRadixMask] == uint32(n) {
			continue // constant digit (clustered exponents); skip the pass
		}
		sum := uint32(0)
		for i := range c {
			c[i], sum = sum, sum+c[i]
		}
		for _, k := range a {
			digit := (k >> shift) & floatRadixMask
			b[c[digit]] = k
			c[digit]++
		}
		a, b = b, a
	}
	for i, k := range a {
		xs[i] = floatFromKey(k)
	}
	floatSortPool.Put(buf)
}

// floatKey maps a float64 to a uint64 whose unsigned order equals the
// float's order: non-negative values get the sign bit set, negative
// values have every bit flipped (reversing their backwards bit order).
func floatKey(x float64) uint64 {
	k := math.Float64bits(x)
	if k&(1<<63) != 0 {
		return ^k
	}
	return k | 1<<63
}

// floatFromKey inverts floatKey.
func floatFromKey(k uint64) float64 {
	if k&(1<<63) != 0 {
		return math.Float64frombits(k &^ (1 << 63))
	}
	return math.Float64frombits(^k)
}
