package stats

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestFractionAtOrBelow(t *testing.T) {
	var e ECDF
	e.AddAll([]float64{1, 2, 3, 4})
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, tt := range tests {
		if got := e.FractionAtOrBelow(tt.x); got != tt.want {
			t.Errorf("FractionAtOrBelow(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestEmptyCDF(t *testing.T) {
	var e ECDF
	if e.FractionAtOrBelow(5) != 0 {
		t.Error("empty CDF should return 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("Quantile on empty CDF should panic")
		}
	}()
	e.Quantile(0.5)
}

func TestQuantile(t *testing.T) {
	var e ECDF
	e.AddAll([]float64{10, 20, 30, 40, 50})
	if got := e.Median(); got != 30 {
		t.Errorf("Median = %v", got)
	}
	if got := e.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := e.Quantile(1); got != 50 {
		t.Errorf("Quantile(1) = %v", got)
	}
	if got := e.Max(); got != 50 {
		t.Errorf("Max = %v", got)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var e ECDF
	for i := 0; i < 500; i++ {
		e.Add(rng.NormFloat64() * 100)
	}
	f := func(a, b float64) bool {
		if a > b {
			a, b = b, a
		}
		return e.FractionAtOrBelow(a) <= e.FractionAtOrBelow(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantileFractionInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var e ECDF
	for i := 0; i < 300; i++ {
		e.Add(rng.Float64() * 1000)
	}
	// FractionAtOrBelow(Quantile(q)) >= q for all q.
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		if got := e.FractionAtOrBelow(e.Quantile(q)); got < q-1e-12 {
			t.Errorf("FractionAtOrBelow(Quantile(%v)) = %v < q", q, got)
		}
	}
}

func TestAddAfterQueryResorts(t *testing.T) {
	var e ECDF
	e.AddAll([]float64{5, 1})
	_ = e.Median() // forces sort
	e.Add(0)
	if got := e.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) after late Add = %v", got)
	}
	if !sort.Float64sAreSorted(e.xs) {
		t.Error("internal samples not sorted after query")
	}
}

func TestRender(t *testing.T) {
	var e ECDF
	e.AddAll([]float64{10, 50, 100, 500})
	s := e.Render([]float64{40, 1000})
	if s == "" || len(s) < 10 {
		t.Errorf("Render = %q", s)
	}
}

func TestFractionAndPct(t *testing.T) {
	if Fraction(1, 4) != 0.25 {
		t.Error("Fraction broken")
	}
	if Fraction(1, 0) != 0 {
		t.Error("Fraction must guard divide-by-zero")
	}
	if Pct(0.254) != "25.4%" {
		t.Errorf("Pct = %q", Pct(0.254))
	}
}

func TestEmptyCDFMax(t *testing.T) {
	var e ECDF
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Max on empty CDF should panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "0 samples") {
			t.Errorf("Max panic message = %v, want one naming the empty CDF", r)
		}
	}()
	e.Max()
}

func TestEmptyCDFQuantileMessage(t *testing.T) {
	var e ECDF
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Quantile on empty CDF should panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "0 samples") {
			t.Errorf("Quantile panic message = %v, want one naming the empty CDF", r)
		}
	}()
	e.Quantile(0.5)
}

func TestMerge(t *testing.T) {
	a := &ECDF{}
	a.AddAll([]float64{5, 1, 9})
	b := &ECDF{}
	b.AddAll([]float64{2, 2, 8})
	c := &ECDF{} // empty partial: a worker whose chunk had no city answers
	m := Merge(a, b, c)
	want := []float64{1, 2, 2, 5, 8, 9}
	got := m.Points()
	if len(got) != len(want) {
		t.Fatalf("Merge yields %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Merge yields %v, want %v", got, want)
		}
	}
	if m.N() != 6 || m.Max() != 9 || m.Median() != 2 {
		t.Errorf("merged queries: N=%d Max=%v Median=%v", m.N(), m.Max(), m.Median())
	}
}

func TestMergeMatchesAddAll(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	parts := make([]*ECDF, 7)
	var serial ECDF
	for i := range parts {
		parts[i] = &ECDF{}
		for j := 0; j < rng.Intn(50); j++ {
			x := rng.Float64() * 1000
			parts[i].Add(x)
			serial.Add(x)
		}
	}
	merged := Merge(parts...)
	ws, gs := serial.Points(), merged.Points()
	if len(ws) != len(gs) {
		t.Fatalf("Merge has %d samples, serial %d", len(gs), len(ws))
	}
	for i := range ws {
		if ws[i] != gs[i] {
			t.Fatalf("points diverge at %d: %v vs %v", i, gs[i], ws[i])
		}
	}
}

func TestMergeEmpty(t *testing.T) {
	m := Merge()
	if m.N() != 0 || m.FractionAtOrBelow(10) != 0 {
		t.Errorf("Merge() = %d samples", m.N())
	}
}
