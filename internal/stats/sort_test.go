package stats

import (
	"math"
	"math/rand"
	"slices"
	"testing"
)

// TestSortFloatsMatchesSlicesSort pins the radix kernel to the standard
// comparison sort across sizes straddling the cutoff and across value
// shapes: clustered magnitudes (the distance-sample case), mixed signs,
// zeros of both signs, infinities and ties.
func TestSortFloatsMatchesSlicesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	shapes := map[string]func(i int) float64{
		"distances": func(int) float64 { return rng.Float64() * 20_000 },
		"mixed":     func(int) float64 { return (rng.Float64() - 0.5) * 1e12 },
		"ties":      func(i int) float64 { return float64(i % 7) },
		"extremes": func(i int) float64 {
			switch i % 5 {
			case 0:
				return math.Inf(1)
			case 1:
				return math.Inf(-1)
			case 2:
				return math.Copysign(0, -1)
			case 3:
				return 0
			default:
				return rng.NormFloat64()
			}
		},
	}
	for name, gen := range shapes {
		for _, n := range []int{0, 1, 2, radixSortCutoff - 1, radixSortCutoff, radixSortCutoff + 1, 10_000} {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = gen(i)
			}
			want := slices.Clone(xs)
			slices.Sort(want)
			sortFloats(xs)
			for i := range xs {
				if xs[i] != want[i] && !(xs[i] == 0 && want[i] == 0) {
					t.Fatalf("%s n=%d: position %d: got %v want %v", name, n, i, xs[i], want[i])
				}
			}
		}
	}
}

// TestFloatKeyOrder pins the order-preserving key transform and its
// inverse.
func TestFloatKeyOrder(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -2.5, -1, math.Copysign(0, -1), 0, 1, 2.5, 1e300, math.Inf(1)}
	for i, x := range vals {
		if back := floatFromKey(floatKey(x)); back != x && !(back == 0 && x == 0) {
			t.Errorf("round trip broke: %v -> %v", x, back)
		}
		for _, y := range vals[i+1:] {
			if x < y && floatKey(x) >= floatKey(y) {
				t.Errorf("key order broke: %v < %v but keys %x >= %x", x, y, floatKey(x), floatKey(y))
			}
		}
	}
}

// TestFromSamples checks the adopting constructor answers like an ECDF
// built by Add.
func TestFromSamples(t *testing.T) {
	e := FromSamples([]float64{30, 10, 20})
	if e.N() != 3 {
		t.Fatalf("N = %d", e.N())
	}
	if got := e.Points(); !slices.Equal(got, []float64{10, 20, 30}) {
		t.Fatalf("Points = %v", got)
	}
	if got := e.Median(); got != 20 {
		t.Fatalf("Median = %v", got)
	}
}

// BenchmarkECDFMerge locks in the per-worker-CDF fold the accuracy
// sweep pays: merging unsorted worker sample buffers into one queryable
// CDF.
func BenchmarkECDFMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const workers, per = 8, 16_384
	parts := make([]*ECDF, workers)
	for i := range parts {
		xs := make([]float64, per)
		for j := range xs {
			xs[j] = rng.Float64() * 20_000
		}
		parts[i] = FromSamples(xs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := Merge(parts...)
		_ = m.Quantile(0.9)
	}
	b.ReportMetric(float64(workers*per)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkECDFSort locks in the lazy query-time sort at sweep size.
func BenchmarkECDFSort(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	xs := make([]float64, 131_072)
	for i := range xs {
		xs[i] = rng.Float64() * 20_000
	}
	work := make([]float64, len(xs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, xs)
		sortFloats(work)
	}
	b.ReportMetric(float64(len(xs))*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}
