// Package stats holds the small statistical toolkit the evaluation uses:
// empirical CDFs over distances (Figures 1, 2 and 5 are distance CDFs),
// quantiles, and threshold fractions.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ECDF is an empirical cumulative distribution over float64 samples.
// Add samples, then query; queries sort lazily.
type ECDF struct {
	xs     []float64
	sorted bool
}

// FromSamples adopts xs — typically the unsorted concatenation of
// per-worker sample buffers from a parallel sweep — as the ECDF's
// backing array without copying. The caller must not use xs afterwards.
// Queries sort lazily, exactly as if every sample had been Added.
func FromSamples(xs []float64) *ECDF { return &ECDF{xs: xs} }

// Add appends one sample.
func (e *ECDF) Add(x float64) {
	e.xs = append(e.xs, x)
	e.sorted = false
}

// AddAll appends many samples.
func (e *ECDF) AddAll(xs []float64) {
	e.xs = append(e.xs, xs...)
	e.sorted = false
}

// N returns the sample count.
func (e *ECDF) N() int { return len(e.xs) }

func (e *ECDF) ensure() {
	if !e.sorted {
		sortFloats(e.xs)
		e.sorted = true
	}
}

// FractionAtOrBelow returns P(X <= x); 0 for an empty CDF.
func (e *ECDF) FractionAtOrBelow(x float64) float64 {
	if len(e.xs) == 0 {
		return 0
	}
	e.ensure()
	i := sort.SearchFloat64s(e.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.xs))
}

// Quantile returns the q-th quantile (0 <= q <= 1) by the nearest-rank
// method. It panics on an empty CDF or out-of-range q.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.xs) == 0 || q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile(%v) over %d samples", q, len(e.xs)))
	}
	e.ensure()
	i := int(math.Ceil(q*float64(len(e.xs)))) - 1
	if i < 0 {
		i = 0
	}
	return e.xs[i]
}

// Median returns the 0.5 quantile.
func (e *ECDF) Median() float64 { return e.Quantile(0.5) }

// Max returns the largest sample. Like Quantile it panics on an empty
// CDF, with a message naming the misuse instead of a raw index error.
func (e *ECDF) Max() float64 {
	if len(e.xs) == 0 {
		panic("stats: Max over 0 samples")
	}
	e.ensure()
	return e.xs[len(e.xs)-1]
}

// Merge combines CDFs into one. The inputs need not be sorted and are
// not modified: the samples are concatenated and sorted in a single
// pass (the radix sort makes that cheaper than the k-way merge of
// per-input sorts it replaces). Merge of no inputs returns an empty
// CDF.
func Merge(cdfs ...*ECDF) *ECDF {
	total := 0
	for _, c := range cdfs {
		total += len(c.xs)
	}
	out := make([]float64, 0, total)
	for _, c := range cdfs {
		out = append(out, c.xs...)
	}
	sortFloats(out)
	return &ECDF{xs: out, sorted: true}
}

// Points returns the sorted samples. Plot exporters turn them into
// (value, i/n) step series — the exact curves of the paper's figures.
func (e *ECDF) Points() []float64 {
	e.ensure()
	out := make([]float64, len(e.xs))
	copy(out, e.xs)
	return out
}

// Render prints the CDF as "value@fraction" pairs at the given probe
// points, the textual stand-in for the paper's CDF figures.
func (e *ECDF) Render(points []float64) string {
	var b strings.Builder
	for i, x := range points {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "≤%g:%5.1f%%", x, 100*e.FractionAtOrBelow(x))
	}
	return b.String()
}

// Fraction formats n/d as a percentage, guarding the d == 0 case.
func Fraction(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// Pct renders a fraction as "12.3%".
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
