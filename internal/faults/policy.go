package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Builtin returns the named policies geoserve -chaos accepts, at rates
// and delays sized for live testing against a running server. Each is
// seeded so two runs of the same policy inject the same schedule; Parse
// can override any knob (Parse("errors:rate=0.5,seed=7")).
func Builtin() []Policy {
	return []Policy{
		{Name: "latency", Seed: 1, Rules: []Rule{
			{Kind: KindLatency, Rate: 0.25, Delay: 250 * time.Millisecond},
		}},
		{Name: "errors", Seed: 1, Rules: []Rule{
			{Kind: KindError, Rate: 0.2, Status: 503, Burst: 2},
		}},
		{Name: "throttle", Seed: 1, Rules: []Rule{
			{Kind: KindRateLimit, Rate: 0.2, RetryAfter: time.Second},
		}},
		{Name: "resets", Seed: 1, Rules: []Rule{
			{Kind: KindReset, Rate: 0.15},
		}},
		{Name: "truncate", Seed: 1, Rules: []Rule{
			{Kind: KindTruncate, Rate: 0.2, TruncateAt: 64},
		}},
		{Name: "slowloris", Seed: 1, Rules: []Rule{
			{Kind: KindSlowLoris, Rate: 0.15, Delay: 50 * time.Millisecond, ChunkBytes: 512},
		}},
		{Name: "mixed", Seed: 1, Rules: []Rule{
			{Kind: KindLatency, Rate: 0.1, Delay: 100 * time.Millisecond},
			{Kind: KindError, Rate: 0.1, Status: 503, Burst: 1},
			{Kind: KindRateLimit, Rate: 0.05, RetryAfter: time.Second},
			{Kind: KindReset, Rate: 0.05},
			{Kind: KindTruncate, Rate: 0.05, TruncateAt: 64},
			{Kind: KindSlowLoris, Rate: 0.05, Delay: 20 * time.Millisecond, ChunkBytes: 512},
		}},
	}
}

// ByName returns the builtin policy with the given name.
func ByName(name string) (Policy, bool) {
	for _, p := range Builtin() {
		if p.Name == name {
			return p, true
		}
	}
	return Policy{}, false
}

// Parse resolves a -chaos policy spec: a builtin name, optionally
// followed by policy-wide overrides applied to every rule:
//
//	latency
//	errors:rate=0.5,seed=7
//	mixed:delay=5ms,retryafter=1s,truncate=32,chunk=256,burst=0
//
// Keys: seed, rate, burst, delay, status, retryafter, truncate, chunk.
func Parse(spec string) (Policy, error) {
	name, params, _ := strings.Cut(spec, ":")
	p, ok := ByName(name)
	if !ok {
		names := make([]string, 0, len(Builtin()))
		for _, b := range Builtin() {
			names = append(names, b.Name)
		}
		return Policy{}, fmt.Errorf("faults: unknown policy %q (have %s)", name, strings.Join(names, ", "))
	}
	if params == "" {
		return p, nil
	}
	for _, kv := range strings.Split(params, ",") {
		key, val, found := strings.Cut(kv, "=")
		if !found || key == "" || val == "" {
			return Policy{}, fmt.Errorf("faults: malformed override %q (want key=value)", kv)
		}
		if err := applyOverride(&p, key, val); err != nil {
			return Policy{}, err
		}
	}
	return p, nil
}

// applyOverride sets one policy-wide knob on every rule it applies to.
func applyOverride(p *Policy, key, val string) error {
	switch key {
	case "seed":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("faults: seed=%q: %v", val, err)
		}
		p.Seed = n
	case "rate":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 || f > 1 {
			return fmt.Errorf("faults: rate=%q: want a probability in [0,1]", val)
		}
		for i := range p.Rules {
			p.Rules[i].Rate = f
		}
	case "burst":
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return fmt.Errorf("faults: burst=%q: want a non-negative integer", val)
		}
		for i := range p.Rules {
			p.Rules[i].Burst = n
		}
	case "delay":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return fmt.Errorf("faults: delay=%q: want a non-negative duration", val)
		}
		for i := range p.Rules {
			p.Rules[i].Delay = d
		}
	case "status":
		n, err := strconv.Atoi(val)
		if err != nil || n < 500 || n > 599 {
			return fmt.Errorf("faults: status=%q: want a 5xx status", val)
		}
		for i := range p.Rules {
			p.Rules[i].Status = n
		}
	case "retryafter":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return fmt.Errorf("faults: retryafter=%q: want a non-negative duration", val)
		}
		for i := range p.Rules {
			p.Rules[i].RetryAfter = d
		}
	case "truncate":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return fmt.Errorf("faults: truncate=%q: want a positive byte count", val)
		}
		for i := range p.Rules {
			p.Rules[i].TruncateAt = n
		}
	case "chunk":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return fmt.Errorf("faults: chunk=%q: want a positive byte count", val)
		}
		for i := range p.Rules {
			p.Rules[i].ChunkBytes = n
		}
	default:
		return fmt.Errorf("faults: unknown override key %q", key)
	}
	return nil
}
