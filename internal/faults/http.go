package faults

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Middleware wraps a handler in the injector's fault schedule — the
// server side of chaos testing (geoserve -chaos). Exempt paths pass
// through without consuming a decision, so health and stats endpoints
// stay observable and the fault schedule stays aligned with the lookup
// traffic it is meant to disturb.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if in.exempt[r.URL.Path] {
			next.ServeHTTP(w, r)
			return
		}
		d := in.Next()
		switch d.Kind {
		case KindLatency:
			in.sleep(d.Delay)
			next.ServeHTTP(w, r)
		case KindError:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(d.Status)
			fmt.Fprintf(w, `{"error":"chaos: injected %d"}`+"\n", d.Status)
		case KindRateLimit:
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(d.RetryAfter)))
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"chaos: injected throttle"}`+"\n")
		case KindReset:
			// net/http treats ErrAbortHandler as "kill the connection
			// without logging": the client sees a mid-request reset.
			panic(http.ErrAbortHandler)
		case KindTruncate:
			next.ServeHTTP(&truncateWriter{ResponseWriter: w, remaining: d.TruncateAt}, r)
		case KindSlowLoris:
			next.ServeHTTP(&dripWriter{
				ResponseWriter: w,
				chunk:          d.ChunkBytes,
				delay:          d.Delay,
				sleep:          in.sleep,
			}, r)
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// retryAfterSeconds rounds a throttle hint up to the whole seconds the
// Retry-After header speaks.
func retryAfterSeconds(d time.Duration) int {
	return int((d + time.Second - 1) / time.Second)
}

// truncateWriter lets the first remaining body bytes through and
// silently swallows the rest, leaving the client an unparseable JSON
// stump with a clean HTTP framing around it.
type truncateWriter struct {
	http.ResponseWriter
	remaining int
}

func (t *truncateWriter) Write(b []byte) (int, error) {
	if t.remaining <= 0 {
		// Report success so the wrapped handler keeps encoding; the
		// bytes just never reach the wire.
		return len(b), nil
	}
	n := len(b)
	if n > t.remaining {
		n = t.remaining
	}
	if _, err := t.ResponseWriter.Write(b[:n]); err != nil {
		return 0, err
	}
	t.remaining -= n
	return len(b), nil
}

// dripWriter forwards the response in small chunks with a pause between
// each — a slow-loris server.
type dripWriter struct {
	http.ResponseWriter
	chunk int
	delay time.Duration
	sleep func(time.Duration)
	wrote bool
}

func (d *dripWriter) Write(b []byte) (int, error) {
	total := 0
	for len(b) > 0 {
		if d.wrote {
			d.sleep(d.delay)
		}
		n := len(b)
		if n > d.chunk {
			n = d.chunk
		}
		m, err := d.ResponseWriter.Write(b[:n])
		total += m
		if err != nil {
			return total, err
		}
		if f, ok := d.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		d.wrote = true
		b = b[n:]
	}
	return total, nil
}

// RoundTripper wraps a transport in the injector's fault schedule — the
// client side of chaos testing. nil next means http.DefaultTransport.
func (in *Injector) RoundTripper(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &roundTripper{in: in, next: next}
}

type roundTripper struct {
	in   *Injector
	next http.RoundTripper
}

func (rt *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	in := rt.in
	if in.exempt[req.URL.Path] {
		return rt.next.RoundTrip(req)
	}
	d := in.Next()
	switch d.Kind {
	case KindLatency:
		in.sleep(d.Delay)
		return rt.next.RoundTrip(req)
	case KindError:
		return syntheticResponse(req, d.Status, nil,
			fmt.Sprintf(`{"error":"chaos: injected %d"}`+"\n", d.Status)), nil
	case KindRateLimit:
		hdr := http.Header{"Retry-After": []string{strconv.Itoa(retryAfterSeconds(d.RetryAfter))}}
		return syntheticResponse(req, http.StatusTooManyRequests, hdr,
			`{"error":"chaos: injected throttle"}`+"\n"), nil
	case KindReset:
		return nil, &net.OpError{Op: "read", Net: "tcp",
			Err: errors.New("faults: injected connection reset")}
	case KindTruncate:
		resp, err := rt.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &truncatedBody{rc: resp.Body, remaining: d.TruncateAt}
		return resp, nil
	case KindSlowLoris:
		resp, err := rt.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &slowBody{rc: resp.Body, chunk: d.ChunkBytes, delay: d.Delay, sleep: in.sleep}
		return resp, nil
	default:
		return rt.next.RoundTrip(req)
	}
}

// syntheticResponse fabricates an HTTP answer without touching the
// wrapped transport.
func syntheticResponse(req *http.Request, status int, hdr http.Header, body string) *http.Response {
	if hdr == nil {
		hdr = http.Header{}
	}
	hdr.Set("Content-Type", "application/json")
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        hdr,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncatedBody serves the first remaining bytes of the real body and
// then reports an unexpected EOF, as a connection dying mid-body would.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int
}

func (t *truncatedBody) Read(p []byte) (int, error) {
	if t.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > t.remaining {
		p = p[:t.remaining]
	}
	n, err := t.rc.Read(p)
	t.remaining -= n
	if err == nil && t.remaining <= 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (t *truncatedBody) Close() error { return t.rc.Close() }

// slowBody drips the real body out in small reads with a pause before
// each.
type slowBody struct {
	rc    io.ReadCloser
	chunk int
	delay time.Duration
	sleep func(time.Duration)
	read  bool
}

func (s *slowBody) Read(p []byte) (int, error) {
	if s.read {
		s.sleep(s.delay)
	}
	s.read = true
	if len(p) > s.chunk {
		p = p[:s.chunk]
	}
	return s.rc.Read(p)
}

func (s *slowBody) Close() error { return s.rc.Close() }
