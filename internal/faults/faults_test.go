package faults

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// drain reads and closes a response body.
func drain(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return b
}

// backend is a plain JSON handler big enough for truncation and
// slow-loris to bite.
func backend(t *testing.T) http.Handler {
	t.Helper()
	payload := map[string]string{"pad": strings.Repeat("x", 4096), "ok": "yes"}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(payload); err != nil {
			t.Errorf("encode: %v", err)
		}
	})
}

// TestScheduleDeterministic is the property the chaos suite depends on:
// the same seed always yields the same fault schedule, and a different
// seed yields a different one.
func TestScheduleDeterministic(t *testing.T) {
	for _, p := range Builtin() {
		t.Run(p.Name, func(t *testing.T) {
			const n = 500
			a, b := New(p), New(p)
			var faults int
			for i := 0; i < n; i++ {
				da, db := a.Next(), b.Next()
				if da != db {
					t.Fatalf("decision %d diverged under one seed: %+v vs %+v", i, da, db)
				}
				if da.Faulted() {
					faults++
				}
			}
			if faults == 0 {
				t.Fatalf("policy %s injected nothing over %d requests", p.Name, n)
			}
			if faults == n && p.Rules[0].Rate < 1 {
				t.Fatalf("policy %s faulted every request at rate %v", p.Name, p.Rules[0].Rate)
			}

			reseeded := p
			reseeded.Seed = p.Seed + 1
			c := New(reseeded)
			diverged := false
			d := New(p)
			for i := 0; i < n; i++ {
				if c.Next() != d.Next() {
					diverged = true
					break
				}
			}
			if !diverged {
				t.Errorf("policy %s: seeds %d and %d produced identical schedules", p.Name, p.Seed, reseeded.Seed)
			}
		})
	}
}

func TestBurstExtendsTriggers(t *testing.T) {
	p := Policy{Name: "bursty", Seed: 3, Rules: []Rule{
		{Kind: KindError, Rate: 0.2, Burst: 3, Status: 503},
	}}
	in := New(p)
	decisions := make([]bool, 400)
	for i := range decisions {
		decisions[i] = in.Next().Faulted()
	}
	// Every trigger must be followed by at least Burst more faulted
	// requests (bursts can also chain into fresh triggers).
	fired := false
	for i := 0; i < len(decisions)-3; i++ {
		if decisions[i] && (i == 0 || !decisions[i-1]) {
			fired = true
			for j := 1; j <= 3; j++ {
				if !decisions[i+j] {
					t.Fatalf("trigger at %d not extended to request %d", i, i+j)
				}
			}
		}
	}
	if !fired {
		t.Fatal("no trigger observed in 400 requests at rate 0.2")
	}
}

// TestInjectorConcurrent hammers one injector from many goroutines; under
// -race this guards the shared RNG, burst state and counters.
func TestInjectorConcurrent(t *testing.T) {
	p, ok := ByName("mixed")
	if !ok {
		t.Fatal("mixed policy missing")
	}
	in := New(p, WithSleep(func(time.Duration) {}))
	var wg sync.WaitGroup
	const goroutines, each = 8, 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				in.Next()
			}
		}()
	}
	wg.Wait()
	if got := in.Requests(); got != goroutines*each {
		t.Errorf("Requests = %d, want %d", got, goroutines*each)
	}
	var total int64
	for _, v := range in.Counts() {
		total += v
	}
	if total == 0 || total > goroutines*each {
		t.Errorf("fault tally %d out of range (0, %d]", total, goroutines*each)
	}
}

// alwaysPolicy fires the given rule on every request.
func alwaysPolicy(r Rule) Policy {
	r.Rate = 1
	return Policy{Name: "always-" + string(r.Kind), Seed: 1, Rules: []Rule{r}}
}

func TestMiddlewareLatency(t *testing.T) {
	var slept []time.Duration
	in := New(alwaysPolicy(Rule{Kind: KindLatency, Delay: 5 * time.Millisecond}),
		WithSleep(func(d time.Duration) { slept = append(slept, d) }))
	srv := httptest.NewServer(in.Middleware(backend(t)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	if body := drain(t, resp); resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("status = %d, body %d bytes", resp.StatusCode, len(body))
	}
	if len(slept) != 1 || slept[0] != 5*time.Millisecond {
		t.Errorf("slept = %v, want one 5ms pause", slept)
	}
}

func TestMiddlewareErrorAndObserver(t *testing.T) {
	var seen []Kind
	in := New(alwaysPolicy(Rule{Kind: KindError, Status: 503}),
		WithObserver(func(k Kind) { seen = append(seen, k) }))
	srv := httptest.NewServer(in.Middleware(backend(t)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	body := drain(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "chaos") {
		t.Errorf("body = %q", body)
	}
	if len(seen) != 1 || seen[0] != KindError {
		t.Errorf("observer saw %v", seen)
	}
	if c := in.Counts(); c[KindError] != 1 {
		t.Errorf("Counts = %v", c)
	}
}

func TestMiddlewareRateLimit(t *testing.T) {
	in := New(alwaysPolicy(Rule{Kind: KindRateLimit, RetryAfter: 1500 * time.Millisecond}))
	srv := httptest.NewServer(in.Middleware(backend(t)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	drain(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want %q (1.5s rounded up)", got, "2")
	}
}

func TestMiddlewareReset(t *testing.T) {
	in := New(alwaysPolicy(Rule{Kind: KindReset}))
	srv := httptest.NewServer(in.Middleware(backend(t)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/x")
	if err == nil {
		drain(t, resp)
		t.Fatal("reset fault produced a healthy response")
	}
}

func TestMiddlewareTruncate(t *testing.T) {
	in := New(alwaysPolicy(Rule{Kind: KindTruncate, TruncateAt: 32}))
	srv := httptest.NewServer(in.Middleware(backend(t)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	body := drain(t, resp)
	if len(body) != 32 {
		t.Fatalf("body = %d bytes, want 32", len(body))
	}
	var v map[string]string
	if err := json.Unmarshal(body, &v); err == nil {
		t.Fatal("truncated body still parsed as JSON")
	}
}

func TestMiddlewareSlowLoris(t *testing.T) {
	var pauses int
	in := New(alwaysPolicy(Rule{Kind: KindSlowLoris, Delay: time.Millisecond, ChunkBytes: 256}),
		WithSleep(func(time.Duration) { pauses++ }))
	srv := httptest.NewServer(in.Middleware(backend(t)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	body := drain(t, resp)
	var v map[string]string
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("slow-loris corrupted the body: %v", err)
	}
	if pauses < 4 {
		t.Errorf("pauses = %d, want several for a 4KiB body in 256B chunks", pauses)
	}
}

func TestMiddlewareExemptPaths(t *testing.T) {
	in := New(alwaysPolicy(Rule{Kind: KindError, Status: 503}), WithExemptPaths("/healthz"))
	srv := httptest.NewServer(in.Middleware(backend(t)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	drain(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exempt path faulted: status %d", resp.StatusCode)
	}
	if in.Requests() != 0 {
		t.Errorf("exempt path consumed a decision")
	}
	resp, err = http.Get(srv.URL + "/v2/lookup")
	if err != nil {
		t.Fatal(err)
	}
	drain(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("non-exempt path not faulted: status %d", resp.StatusCode)
	}
}

func TestRoundTripperFaults(t *testing.T) {
	srv := httptest.NewServer(backend(t))
	defer srv.Close()

	get := func(t *testing.T, in *Injector) (*http.Response, error) {
		t.Helper()
		c := &http.Client{Transport: in.RoundTripper(nil)}
		return c.Get(srv.URL + "/x")
	}

	t.Run("error", func(t *testing.T) {
		resp, err := get(t, New(alwaysPolicy(Rule{Kind: KindError, Status: 500})))
		if err != nil {
			t.Fatal(err)
		}
		drain(t, resp)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("status = %d, want 500", resp.StatusCode)
		}
	})
	t.Run("rate-limit", func(t *testing.T) {
		resp, err := get(t, New(alwaysPolicy(Rule{Kind: KindRateLimit, RetryAfter: time.Second})))
		if err != nil {
			t.Fatal(err)
		}
		drain(t, resp)
		if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") != "1" {
			t.Fatalf("status = %d, Retry-After = %q", resp.StatusCode, resp.Header.Get("Retry-After"))
		}
	})
	t.Run("reset", func(t *testing.T) {
		if resp, err := get(t, New(alwaysPolicy(Rule{Kind: KindReset}))); err == nil {
			drain(t, resp)
			t.Fatal("reset fault produced a healthy response")
		}
	})
	t.Run("truncate", func(t *testing.T) {
		resp, err := get(t, New(alwaysPolicy(Rule{Kind: KindTruncate, TruncateAt: 16})))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("read err = %v, want unexpected EOF", err)
		}
		if len(b) != 16 {
			t.Fatalf("got %d bytes before the cut, want 16", len(b))
		}
	})
	t.Run("slowloris", func(t *testing.T) {
		var pauses int
		in := New(alwaysPolicy(Rule{Kind: KindSlowLoris, Delay: time.Millisecond, ChunkBytes: 128}),
			WithSleep(func(time.Duration) { pauses++ }))
		resp, err := get(t, in)
		if err != nil {
			t.Fatal(err)
		}
		body := drain(t, resp)
		var v map[string]string
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("slow read corrupted the body: %v", err)
		}
		if pauses < 8 {
			t.Errorf("pauses = %d, want many for a 4KiB body in 128B reads", pauses)
		}
	})
	t.Run("latency", func(t *testing.T) {
		var slept []time.Duration
		in := New(alwaysPolicy(Rule{Kind: KindLatency, Delay: 3 * time.Millisecond}),
			WithSleep(func(d time.Duration) { slept = append(slept, d) }))
		resp, err := get(t, in)
		if err != nil {
			t.Fatal(err)
		}
		drain(t, resp)
		if len(slept) != 1 || slept[0] != 3*time.Millisecond {
			t.Errorf("slept = %v", slept)
		}
	})
}

func TestParse(t *testing.T) {
	p, err := Parse("errors:rate=0.5,seed=7,status=500,burst=4")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.Rules[0].Rate != 0.5 || p.Rules[0].Status != 500 || p.Rules[0].Burst != 4 {
		t.Errorf("parsed policy = %+v", p)
	}
	if p, err := Parse("latency"); err != nil || p.Name != "latency" {
		t.Errorf("Parse(latency) = %+v, %v", p, err)
	}
	if p, err := Parse("mixed:delay=2ms,retryafter=10ms,truncate=8,chunk=64"); err != nil {
		t.Errorf("Parse(mixed overrides) = %v", err)
	} else {
		for _, r := range p.Rules {
			if r.Delay != 2*time.Millisecond {
				t.Errorf("rule %s delay = %v", r.Kind, r.Delay)
			}
		}
	}
	for _, bad := range []string{
		"nope", "latency:rate=2", "latency:rate", "latency:wat=1",
		"errors:status=404", "latency:delay=-1s", "truncate:truncate=0",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestPolicyNormalization(t *testing.T) {
	in := New(Policy{Rules: []Rule{{Kind: KindError, Rate: 1}}})
	d := in.Next()
	if d.Status != 503 {
		t.Errorf("unnormalized error status = %d, want 503", d.Status)
	}
	in = New(Policy{Rules: []Rule{{Kind: KindSlowLoris, Rate: 1}}})
	if d := in.Next(); d.ChunkBytes != 512 || d.Delay != 20*time.Millisecond {
		t.Errorf("unnormalized slowloris = %+v", d)
	}
}
