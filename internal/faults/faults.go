// Package faults injects network failures deterministically, so the
// remote-evaluation path can be tested under outage conditions that are
// reproducible down to the individual request. A Policy is a named,
// seeded set of fault rules (latency spikes, 5xx bursts, 429 throttling,
// connection resets, truncated JSON bodies, slow-loris responses); an
// Injector draws from the policy's own seeded RNG to decide, request by
// request, which fault (if any) to apply.
//
// The same Injector plugs into both sides of the wire: Middleware wraps
// an http.Handler (geoserve -chaos), RoundTripper wraps an
// http.RoundTripper inside a client. Either way the decision schedule is
// a pure function of the policy seed and the arrival order of requests:
// the i-th request to reach the injector always receives the i-th
// decision. Under concurrency the goroutine interleaving decides which
// request is "i-th", but the decision sequence itself never changes —
// that is the property the chaos acceptance suite leans on when it
// asserts that a faulted sweep still produces byte-identical output.
package faults

import (
	"math/rand"
	"sync"
	"time"
)

// Kind names one fault mechanism.
type Kind string

const (
	// KindLatency delays the request by Rule.Delay before serving it.
	KindLatency Kind = "latency"
	// KindError answers with Rule.Status (a 5xx) without touching the
	// wrapped handler or transport.
	KindError Kind = "error"
	// KindRateLimit answers 429 with a Retry-After header derived from
	// Rule.RetryAfter.
	KindRateLimit Kind = "rate-limit"
	// KindReset kills the connection: the server aborts the response
	// mid-flight, the client transport returns a reset error.
	KindReset Kind = "reset"
	// KindTruncate serves the real response but cuts the body off after
	// Rule.TruncateAt bytes, leaving unparseable JSON.
	KindTruncate Kind = "truncate"
	// KindSlowLoris serves the real response dripped out in
	// Rule.ChunkBytes pieces with Rule.Delay pauses between them.
	KindSlowLoris Kind = "slowloris"
)

// Rule is one fault mechanism armed with a trigger probability.
type Rule struct {
	Kind Kind
	// Rate is the per-request trigger probability in [0,1].
	Rate float64
	// Burst extends a trigger over the next Burst requests as well, so
	// outages arrive in runs rather than as isolated blips.
	Burst int
	// Delay is the injected latency (KindLatency) or the per-chunk pause
	// (KindSlowLoris).
	Delay time.Duration
	// Status is the synthetic response status for KindError.
	Status int
	// RetryAfter is the throttle hint for KindRateLimit, rounded up to
	// whole seconds on the wire.
	RetryAfter time.Duration
	// TruncateAt is how many body bytes KindTruncate lets through.
	TruncateAt int
	// ChunkBytes is the drip size for KindSlowLoris.
	ChunkBytes int
}

// Policy is a named, seeded set of fault rules. The zero Seed means 1 so
// a hand-built Policy is still deterministic.
type Policy struct {
	Name  string
	Seed  int64
	Rules []Rule
}

// Decision is the injector's verdict for one request. The zero Decision
// (Kind == "") means the request passes through untouched.
type Decision struct {
	Kind       Kind
	Delay      time.Duration
	Status     int
	RetryAfter time.Duration
	TruncateAt int
	ChunkBytes int
}

// Faulted reports whether the decision injects anything.
func (d Decision) Faulted() bool { return d.Kind != "" }

// Option configures an Injector.
type Option func(*Injector)

// WithSleep replaces the injector's sleep function (latency and
// slow-loris pauses); tests use it to run fault schedules without real
// waiting.
func WithSleep(fn func(time.Duration)) Option {
	return func(in *Injector) { in.sleep = fn }
}

// WithObserver registers a callback invoked once per injected fault with
// its kind — the hook geoserve uses to tally chaos counters into the
// server's metrics registry.
func WithObserver(fn func(Kind)) Option {
	return func(in *Injector) { in.observe = fn }
}

// WithExemptPaths lists URL paths the Middleware never faults (health
// checks, stats endpoints), so chaos testing does not blind the
// monitoring that is supposed to watch it.
func WithExemptPaths(paths ...string) Option {
	return func(in *Injector) {
		if in.exempt == nil {
			in.exempt = make(map[string]bool, len(paths))
		}
		for _, p := range paths {
			in.exempt[p] = true
		}
	}
}

// Injector draws fault decisions from a policy's seeded RNG. Safe for
// concurrent use; every decision is taken under one lock so the schedule
// stays a pure function of the seed and request order.
type Injector struct {
	policy  Policy
	sleep   func(time.Duration)
	observe func(Kind)
	exempt  map[string]bool

	mu     sync.Mutex
	rng    *rand.Rand
	burst  []int
	n      int64
	counts map[Kind]int64
}

// New builds an Injector for the policy, normalizing zero rule fields to
// usable defaults (503 for errors, 1s Retry-After, 64-byte truncation,
// 512-byte slow-loris chunks).
func New(p Policy, opts ...Option) *Injector {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	rules := make([]Rule, len(p.Rules))
	copy(rules, p.Rules)
	for i := range rules {
		r := &rules[i]
		switch r.Kind {
		case KindLatency:
			if r.Delay <= 0 {
				r.Delay = 100 * time.Millisecond
			}
		case KindError:
			if r.Status < 500 || r.Status > 599 {
				r.Status = 503
			}
		case KindRateLimit:
			if r.RetryAfter <= 0 {
				r.RetryAfter = time.Second
			}
		case KindTruncate:
			if r.TruncateAt <= 0 {
				r.TruncateAt = 64
			}
		case KindSlowLoris:
			if r.Delay <= 0 {
				r.Delay = 20 * time.Millisecond
			}
			if r.ChunkBytes <= 0 {
				r.ChunkBytes = 512
			}
		}
	}
	p.Rules = rules
	in := &Injector{
		policy: p,
		sleep:  time.Sleep,
		rng:    rand.New(rand.NewSource(seed)),
		burst:  make([]int, len(rules)),
		counts: make(map[Kind]int64, len(rules)),
	}
	for _, o := range opts {
		o(in)
	}
	return in
}

// Policy returns the injector's normalized policy.
func (in *Injector) Policy() Policy { return in.policy }

// Next takes the decision for the next request. Every rule draws from
// the RNG on every call, in rule order, so each rule's trigger schedule
// depends only on the seed and the request index — never on what its
// sibling rules decided. When several rules fire at once the first one
// in the policy wins.
func (in *Injector) Next() Decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.n++
	decided := -1
	for i := range in.policy.Rules {
		r := &in.policy.Rules[i]
		draw := in.rng.Float64()
		fire := false
		switch {
		case in.burst[i] > 0:
			in.burst[i]--
			fire = true
		case draw < r.Rate:
			fire = true
			in.burst[i] = r.Burst
		}
		if fire && decided < 0 {
			decided = i
		}
	}
	if decided < 0 {
		return Decision{}
	}
	r := in.policy.Rules[decided]
	in.counts[r.Kind]++
	if in.observe != nil {
		in.observe(r.Kind)
	}
	return Decision{
		Kind:       r.Kind,
		Delay:      r.Delay,
		Status:     r.Status,
		RetryAfter: r.RetryAfter,
		TruncateAt: r.TruncateAt,
		ChunkBytes: r.ChunkBytes,
	}
}

// Requests reports how many decisions the injector has taken.
func (in *Injector) Requests() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.n
}

// Counts returns a copy of the injected-fault tally per kind.
func (in *Injector) Counts() map[Kind]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Kind]int64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}
