// Package rdns synthesizes the reverse-DNS zone of the synthetic world:
// every operator names its router interfaces under its own domain with its
// own grammar, and a configurable share of those names embed a location
// hint (airport code, CLLI-style site code, or city name) exactly where
// the decode rules in internal/hints expect it.
//
// This substitutes for the paper's 905K rDNS lookups over the
// Ark-topo-router addresses (§2.3.1). The zone is churn-aware: paired with
// a netsim.Evolution it answers lookups "as of" any month, reproducing the
// §3.1 hostname-churn analysis (renames, moves with and without hostname
// updates, record loss, hints that stop decoding).
package rdns

import (
	"fmt"
	"math/rand"
	"strings"

	"routergeo/internal/gazetteer"
	"routergeo/internal/hints"
	"routergeo/internal/netsim"
)

// Config controls PTR coverage.
type Config struct {
	// PTRCoverage is the probability a synthetic operator's interface has
	// a PTR record at all. The paper resolved hostnames for 905K of 1,638K
	// addresses (55%).
	PTRCoverage float64
	// SeedPTRCoverage applies to the seven seeded ground-truth domains,
	// whose operators name their gear diligently.
	SeedPTRCoverage float64
	// Seed drives the coverage and hint draws.
	Seed int64
}

// DefaultConfig matches the paper's observed coverage.
func DefaultConfig() Config {
	return Config{PTRCoverage: 0.55, SeedPTRCoverage: 0.97, Seed: 1}
}

// Zone is the synthesized PTR zone for one world.
type Zone struct {
	w      *netsim.World
	dict   *hints.Dictionary
	hasPTR []bool
	hinted []bool
	names  []string // epoch-0 names, "" when hasPTR is false
}

// Synthesize builds the zone. Deterministic for a given cfg.Seed.
func Synthesize(w *netsim.World, dict *hints.Dictionary, cfg Config) *Zone {
	rng := rand.New(rand.NewSource(cfg.Seed))
	seedDomains := map[string]bool{}
	for _, d := range hints.GroundTruthDomains() {
		seedDomains[d] = true
	}
	z := &Zone{
		w:      w,
		dict:   dict,
		hasPTR: make([]bool, w.NumInterfaces()),
		hinted: make([]bool, w.NumInterfaces()),
		names:  make([]string, w.NumInterfaces()),
	}
	for i := range w.Interfaces {
		id := netsim.IfaceID(i)
		as := w.ASOfIface(id)
		cover := cfg.PTRCoverage
		if seedDomains[as.Domain] {
			cover = cfg.SeedPTRCoverage
		}
		if rng.Float64() >= cover {
			continue
		}
		z.hasPTR[i] = true
		z.hinted[i] = rng.Float64() < as.HintCoverage
		z.names[i] = z.render(id, 0, w.CityOf(id), z.hinted[i])
	}
	return z
}

// Lookup returns the interface's hostname at collection time (month 0).
func (z *Zone) Lookup(i netsim.IfaceID) (string, bool) {
	if !z.hasPTR[i] {
		return "", false
	}
	return z.names[i], true
}

// Hinted reports whether the interface's (epoch-0) name embeds a hint.
func (z *Zone) Hinted(i netsim.IfaceID) bool { return z.hasPTR[i] && z.hinted[i] }

// LookupAt answers a PTR query as of the given month under the supplied
// churn timeline. The semantics mirror §3.1:
//
//   - lost records stop resolving;
//   - a move with a diligent operator renames the host to the new site;
//   - a move with a sloppy operator keeps the old name (stale hint);
//   - an in-place rename changes labels but encodes the same site;
//   - a few renames land on hint-free names (undecodable).
func (z *Zone) LookupAt(i netsim.IfaceID, evo *netsim.Evolution, months float64) (string, bool) {
	if !z.hasPTR[i] {
		return "", false
	}
	if evo.RDNSLost(i, months) {
		return "", false
	}
	switch {
	case evo.HintUndecodable(i, months):
		return z.undecodableName(i), true
	case evo.Moved(i, months) && !evo.HintStale(i, months):
		return z.render(i, 1, evo.CityAt(i, months), z.hinted[i]), true
	case evo.Renamed(i, months):
		return z.render(i, 1, z.w.CityOf(i), z.hinted[i]), true
	default:
		return z.names[i], true
	}
}

// render produces a hostname for an interface under its operator's
// grammar. epoch perturbs the numeric fields so renames yield different
// strings; the interface ID keeps names unique within a zone.
func (z *Zone) render(i netsim.IfaceID, epoch int, city gazetteer.City, hinted bool) string {
	as := z.w.ASOfIface(i)
	// The prime offset keeps every modulus used below nonzero across
	// epochs, so a rename always yields a different string.
	n := int(i) + epoch*1000003
	tok := ""
	if hinted {
		if t, ok := z.dict.BestToken(city); ok {
			tok = t
		}
	}
	switch as.HintScheme {
	case "cogent":
		if tok != "" {
			return fmt.Sprintf("be%d.ccr%02d.%s%02d.atlas.%s", 1000+n, n%80+10, tok, n%9+1, as.Domain)
		}
		return fmt.Sprintf("be%d.ccr%02d.core%02d.atlas.%s", 1000+n, n%80+10, n%9+1, as.Domain)
	case "ntt":
		cc := strings.ToLower(city.Country)
		if tok != "" {
			// Real NTT style: ae-5.r23.dllstx09.us.bb.gin.ntt.net; our site
			// codes end in the country code already (dllsus).
			return fmt.Sprintf("ae-%d.r%d.%s%02d.%s.bb.gin.%s", n%64, n, siteToken(z.dict, city, tok), n%9+1, cc, as.Domain)
		}
		return fmt.Sprintf("ae-%d.r%d.core%02d.%s.bb.gin.%s", n%64, n, n%9+1, cc, as.Domain)
	case "seabone":
		if tok != "" {
			if iata := z.dict.IATA(city); iata != "" {
				return fmt.Sprintf("xe-%d.%s%d.%s.%s", n, collapsed(city.Name), n%9+1, iata, as.Domain)
			}
			return fmt.Sprintf("xe-%d.%s%d.bb.%s", n, tok, n%9+1, as.Domain)
		}
		return fmt.Sprintf("xe-%d.trunk%d.bb.%s", n%16, n, as.Domain)
	case "pnap":
		if tok != "" {
			return fmt.Sprintf("core%d.%s%03d.%s", n, tok, n%500, as.Domain)
		}
		return fmt.Sprintf("core%d.pod%03d.%s", n, n%500, as.Domain)
	case "peak10":
		if tok != "" {
			return fmt.Sprintf("%s%02d-rtr%d.%s", tok, n%20+1, n, as.Domain)
		}
		return fmt.Sprintf("mgmt%02d-rtr%d.%s", n%20+1, n, as.Domain)
	case "digitalwest":
		if tok != "" {
			return fmt.Sprintf("edge%d.%s.%s", n, tok, as.Domain)
		}
		return fmt.Sprintf("edge%d.mgmt.%s", n, as.Domain)
	case "belwue":
		if tok != "" {
			return fmt.Sprintf("%s-rtr%d.%s", collapsed(city.Name), n, as.Domain)
		}
		return fmt.Sprintf("bw-rtr%d.%s", n, as.Domain)
	default: // "generic"
		if tok != "" {
			return fmt.Sprintf("r%d.%s%02d.%s", n, tok, n%9+1, as.Domain)
		}
		return fmt.Sprintf("r%d.pop%02d.%s", n, n%99, as.Domain)
	}
}

// undecodableName is the address-derived PTR some operators fall back to;
// it carries no location information.
func (z *Zone) undecodableName(i netsim.IfaceID) string {
	as := z.w.ASOfIface(i)
	a := z.w.Interfaces[i].Addr
	return fmt.Sprintf("ip-%d-%d-%d-%d.%s", a>>24, a>>16&0xff, a>>8&0xff, a&0xff, as.Domain)
}

// siteToken prefers the CLLI-style site code for operators (like NTT) that
// use site codes rather than airport codes, falling back to the supplied
// token.
func siteToken(d *hints.Dictionary, city gazetteer.City, fallback string) string {
	if s := d.SiteCode(city); s != "" {
		return s
	}
	return fallback
}

func collapsed(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		if r >= 'a' && r <= 'z' {
			b.WriteRune(r)
		}
	}
	return b.String()
}
