package rdns

import (
	"math/rand"
	"strings"
	"testing"

	"routergeo/internal/gazetteer"
	"routergeo/internal/hints"
	"routergeo/internal/netsim"
)

var (
	cachedWorld *netsim.World
	cachedZone  *Zone
	cachedDict  *hints.Dictionary
)

func setup(t *testing.T) (*netsim.World, *Zone, *hints.Dictionary) {
	t.Helper()
	if cachedWorld == nil {
		cfg := netsim.DefaultConfig()
		cfg.Seed = 9
		cfg.ASes = 200
		w, err := netsim.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cachedWorld = w
		cachedDict = hints.NewDictionary(w.Gaz)
		cachedZone = Synthesize(w, cachedDict, DefaultConfig())
	}
	return cachedWorld, cachedZone, cachedDict
}

func TestCoverageMatchesConfig(t *testing.T) {
	w, z, _ := setup(t)
	seedDomains := map[string]bool{}
	for _, d := range hints.GroundTruthDomains() {
		seedDomains[d] = true
	}
	var seedNamed, seedTotal, genNamed, genTotal int
	for i := range w.Interfaces {
		id := netsim.IfaceID(i)
		_, has := z.Lookup(id)
		if seedDomains[w.ASOfIface(id).Domain] {
			seedTotal++
			if has {
				seedNamed++
			}
		} else {
			genTotal++
			if has {
				genNamed++
			}
		}
	}
	if f := float64(seedNamed) / float64(seedTotal); f < 0.92 {
		t.Errorf("seed-domain PTR coverage = %.2f, want ~0.97", f)
	}
	if f := float64(genNamed) / float64(genTotal); f < 0.45 || f > 0.65 {
		t.Errorf("generic PTR coverage = %.2f, want ~0.55", f)
	}
}

func TestNamesUnique(t *testing.T) {
	w, z, _ := setup(t)
	seen := map[string]netsim.IfaceID{}
	for i := range w.Interfaces {
		id := netsim.IfaceID(i)
		name, ok := z.Lookup(id)
		if !ok {
			continue
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("hostname %q assigned to both %d and %d", name, prev, id)
		}
		seen[name] = id
	}
}

func TestNamesEndInOperatorDomain(t *testing.T) {
	w, z, _ := setup(t)
	for i := range w.Interfaces {
		id := netsim.IfaceID(i)
		name, ok := z.Lookup(id)
		if !ok {
			continue
		}
		if !strings.HasSuffix(name, "."+w.ASOfIface(id).Domain) {
			t.Fatalf("name %q does not end in %q", name, w.ASOfIface(id).Domain)
		}
	}
}

func TestHintedNamesDecodeToTrueCity(t *testing.T) {
	// The encode/decode contract: a hinted name, decoded with the DRoP
	// rules, must resolve to the interface's true city. This is the
	// soundness of the DNS ground-truth method in a static world.
	w, z, dict := setup(t)
	dec := hints.NewDecoder(dict)
	var hinted, decoded, correct int
	for i := range w.Interfaces {
		id := netsim.IfaceID(i)
		name, ok := z.Lookup(id)
		if !ok || !z.Hinted(id) {
			continue
		}
		hinted++
		city, _, ok := dec.Decode(name)
		if !ok {
			continue
		}
		decoded++
		truth := w.CityOf(id)
		if city.Country == truth.Country && city.Name == truth.Name {
			correct++
		}
	}
	if hinted == 0 {
		t.Fatal("no hinted names generated")
	}
	if f := float64(decoded) / float64(hinted); f < 0.95 {
		t.Errorf("only %.2f of hinted names decode", f)
	}
	if decoded > 0 && correct != decoded {
		t.Errorf("%d of %d decoded names point at the wrong city", decoded-correct, decoded)
	}
}

func TestUnhintedNamesDoNotDecode(t *testing.T) {
	w, z, dict := setup(t)
	dec := hints.NewDecoder(dict)
	for i := range w.Interfaces {
		id := netsim.IfaceID(i)
		name, ok := z.Lookup(id)
		if !ok || z.Hinted(id) {
			continue
		}
		if city, _, ok := dec.Decode(name); ok {
			t.Fatalf("unhinted name %q decoded to %s/%s", name, city.Country, city.Name)
		}
	}
}

func TestSeedDomainsUseTheirSchemes(t *testing.T) {
	w, z, _ := setup(t)
	schemes := map[string]string{} // domain -> one example name
	for i := range w.Interfaces {
		id := netsim.IfaceID(i)
		name, ok := z.Lookup(id)
		if !ok {
			continue
		}
		d := w.ASOfIface(id).Domain
		if _, have := schemes[d]; !have {
			schemes[d] = name
		}
	}
	checks := map[string]string{
		"cogentco.com": ".atlas.",
		"ntt.net":      ".bb.gin.",
		"pnap.net":     "core",
	}
	for domain, marker := range checks {
		example, ok := schemes[domain]
		if !ok {
			t.Errorf("no names for %s", domain)
			continue
		}
		if !strings.Contains(example, marker) {
			t.Errorf("%s name %q missing scheme marker %q", domain, example, marker)
		}
	}
}

func TestChurnSemantics(t *testing.T) {
	w, z, dict := setup(t)
	dec := hints.NewDecoder(dict)
	evo := w.Evolve(rand.New(rand.NewSource(2)), netsim.DefaultEvolutionParams())
	const horizon = 16.0
	var lost, renamed, kept, staleWrong int
	for i := range w.Interfaces {
		id := netsim.IfaceID(i)
		orig, ok := z.Lookup(id)
		if !ok {
			continue
		}
		now, okNow := z.LookupAt(id, evo, horizon)
		switch {
		case evo.RDNSLost(id, horizon):
			if okNow {
				t.Fatalf("lost record still resolves: %q", now)
			}
			lost++
			continue
		case !okNow:
			t.Fatal("record disappeared without loss event")
		}
		if evo.Renamed(id, horizon) {
			if now == orig {
				t.Fatalf("renamed interface kept name %q", orig)
			}
			renamed++
		} else if now != orig {
			t.Fatalf("unrenamed interface changed name %q -> %q", orig, now)
		} else {
			kept++
		}
		// Stale-hint moves: name unchanged but location changed; the decoded
		// hint must now point at the OLD city (a misleading hint, §3.1).
		if evo.HintStale(id, horizon) && z.Hinted(id) {
			city, _, ok := dec.Decode(now)
			if ok {
				old := w.CityOf(id)
				if city.Country == old.Country && city.Name == old.Name {
					staleWrong++
				}
			}
		}
		// Updated moves: decoded hint points at the NEW city.
		if evo.Moved(id, horizon) && !evo.HintStale(id, horizon) &&
			z.Hinted(id) && !evo.HintUndecodable(id, horizon) {
			city, _, ok := dec.Decode(now)
			if !ok {
				t.Fatalf("moved+updated name %q does not decode", now)
			}
			want := evo.CityAt(id, horizon)
			if city.Country != want.Country || city.Name != want.Name {
				t.Fatalf("moved name %q decodes to %s/%s, want %s/%s",
					now, city.Country, city.Name, want.Country, want.Name)
			}
		}
		// Undecodable renames must not decode.
		if evo.HintUndecodable(id, horizon) {
			if _, _, ok := dec.Decode(now); ok {
				t.Fatalf("undecodable name %q decoded", now)
			}
		}
	}
	if lost == 0 || renamed == 0 || kept == 0 {
		t.Errorf("churn produced degenerate mix: lost=%d renamed=%d kept=%d", lost, renamed, kept)
	}
	if staleWrong == 0 {
		t.Log("note: no stale-hint cases in this sample (rare but possible)")
	}
}

func TestLookupAtMonthZeroMatchesLookup(t *testing.T) {
	w, z, _ := setup(t)
	evo := w.Evolve(rand.New(rand.NewSource(3)), netsim.DefaultEvolutionParams())
	for i := 0; i < w.NumInterfaces(); i += 53 {
		id := netsim.IfaceID(i)
		a, okA := z.Lookup(id)
		b, okB := z.LookupAt(id, evo, 0)
		if okA != okB || a != b {
			t.Fatalf("LookupAt(0) diverges: %q/%v vs %q/%v", a, okA, b, okB)
		}
	}
}

func TestZoneDeterministic(t *testing.T) {
	w, _, dict := setup(t)
	a := Synthesize(w, dict, DefaultConfig())
	b := Synthesize(w, dict, DefaultConfig())
	for i := 0; i < w.NumInterfaces(); i += 31 {
		an, aok := a.Lookup(netsim.IfaceID(i))
		bn, bok := b.Lookup(netsim.IfaceID(i))
		if an != bn || aok != bok {
			t.Fatal("zone synthesis not deterministic")
		}
	}
}

func testCity(name, cc string) gazetteer.City {
	return gazetteer.City{Name: name, Country: cc}
}

func TestCollapsed(t *testing.T) {
	if got := collapsed("San Luis Obispo"); got != "sanluisobispo" {
		t.Errorf("collapsed = %q", got)
	}
	if got := collapsed("Cluj-Napoca"); got != "clujnapoca" {
		t.Errorf("collapsed = %q", got)
	}
	_ = testCity
}
