// Package registry models the Internet number registry system the paper
// consults: the five RIRs' IPv4 pools, per-organization address
// delegations, a Team-Cymru-style whois service (IP → AS, RIR, org), and a
// CAIDA-AS-Rank-style transit classification.
//
// The registry is also the root cause of the paper's central finding:
// geolocation vendors ingest registration data, and an organization's
// blocks are registered at its headquarters even when the routers numbered
// out of them sit on other continents (§5.2.3). The vendor builders in
// internal/vendors therefore read their "registry feed" from this package.
package registry

import (
	"fmt"
	"sort"

	"routergeo/internal/geo"
	"routergeo/internal/ipx"
)

// ASN is an autonomous system number.
type ASN uint32

// OrgID identifies a registered organization.
type OrgID uint32

// Org is an organization that holds address space.
type Org struct {
	ID   OrgID
	Name string
	// HQCountry and HQCity are the registered (whois) location — the
	// organization's headquarters, not where its routers are.
	HQCountry string // ISO2
	HQCity    string
	RIR       geo.RIR // registry of record
}

// Allocation is one delegated prefix.
type Allocation struct {
	Prefix ipx.Prefix
	ASN    ASN
	Org    OrgID
	RIR    geo.RIR
}

// Registry is the authoritative number registry for the synthetic world.
// Construct with New, populate single-threaded, Freeze, then query
// concurrently.
type Registry struct {
	pools   map[geo.RIR][]*ipx.Allocator
	orgs    map[OrgID]Org
	asOrg   map[ASN]OrgID
	transit map[ASN]bool
	allocs  []Allocation
	whois   ipx.RangeMap[int] // index into allocs
	frozen  bool
	nextOrg OrgID
}

// DefaultPools returns per-RIR IPv4 pools sized roughly like the real
// delegation shares (ARIN holds by far the most legacy space, AFRINIC the
// least). The specific /8s are synthetic.
func DefaultPools() map[geo.RIR][]ipx.Prefix {
	p := func(s string) ipx.Prefix { return ipx.MustParsePrefix(s) }
	return map[geo.RIR][]ipx.Prefix{
		geo.ARIN: {p("3.0.0.0/8"), p("4.0.0.0/8"), p("12.0.0.0/8"), p("13.0.0.0/8"),
			p("63.0.0.0/8"), p("64.0.0.0/8"), p("65.0.0.0/8"), p("66.0.0.0/8")},
		geo.RIPENCC: {p("77.0.0.0/8"), p("78.0.0.0/8"), p("79.0.0.0/8"),
			p("80.0.0.0/8"), p("81.0.0.0/8"), p("82.0.0.0/8")},
		geo.APNIC: {p("110.0.0.0/8"), p("111.0.0.0/8"), p("112.0.0.0/8"),
			p("113.0.0.0/8"), p("114.0.0.0/8")},
		geo.LACNIC:  {p("177.0.0.0/8"), p("179.0.0.0/8"), p("181.0.0.0/8")},
		geo.AFRINIC: {p("102.0.0.0/8"), p("105.0.0.0/8")},
	}
}

// New returns an empty registry over the given pools. Passing nil uses
// DefaultPools.
func New(pools map[geo.RIR][]ipx.Prefix) *Registry {
	if pools == nil {
		pools = DefaultPools()
	}
	r := &Registry{
		pools:   make(map[geo.RIR][]*ipx.Allocator, len(pools)),
		orgs:    make(map[OrgID]Org),
		asOrg:   make(map[ASN]OrgID),
		transit: make(map[ASN]bool),
		nextOrg: 1,
	}
	for rir, ps := range pools {
		for _, p := range ps {
			r.pools[rir] = append(r.pools[rir], ipx.NewAllocator(p))
		}
	}
	return r
}

// RegisterOrg records an organization and returns its assigned ID.
// The org's RIR is fixed at registration; all its allocations come from
// that registry's pools (as in reality, modulo transfers we do not model).
func (r *Registry) RegisterOrg(name, hqCountry, hqCity string, rir geo.RIR) OrgID {
	if r.frozen {
		panic("registry: RegisterOrg after Freeze")
	}
	id := r.nextOrg
	r.nextOrg++
	r.orgs[id] = Org{ID: id, Name: name, HQCountry: hqCountry, HQCity: hqCity, RIR: rir}
	return id
}

// BindAS associates an AS number with an organization. One org may operate
// several ASes; each AS belongs to exactly one org.
func (r *Registry) BindAS(asn ASN, org OrgID) error {
	if r.frozen {
		panic("registry: BindAS after Freeze")
	}
	if _, ok := r.orgs[org]; !ok {
		return fmt.Errorf("registry: unknown org %d", org)
	}
	if prev, dup := r.asOrg[asn]; dup {
		return fmt.Errorf("registry: AS%d already bound to org %d", asn, prev)
	}
	r.asOrg[asn] = org
	return nil
}

// MarkTransit flags an AS as a transit provider, mirroring CAIDA AS Rank's
// classification used for the Table 1 commentary.
func (r *Registry) MarkTransit(asn ASN) { r.transit[asn] = true }

// IsTransit reports whether the AS was marked as transit.
func (r *Registry) IsTransit(asn ASN) bool { return r.transit[asn] }

// Allocate delegates a fresh prefix of the given length to (org, asn) from
// the org's RIR pools. It fails when every pool of that RIR is exhausted.
func (r *Registry) Allocate(org OrgID, asn ASN, bits uint8) (ipx.Prefix, error) {
	if r.frozen {
		panic("registry: Allocate after Freeze")
	}
	o, ok := r.orgs[org]
	if !ok {
		return ipx.Prefix{}, fmt.Errorf("registry: unknown org %d", org)
	}
	for _, alloc := range r.pools[o.RIR] {
		if p, ok := alloc.Alloc(bits); ok {
			r.allocs = append(r.allocs, Allocation{Prefix: p, ASN: asn, Org: org, RIR: o.RIR})
			return p, nil
		}
	}
	return ipx.Prefix{}, fmt.Errorf("registry: %v pools exhausted for /%d", o.RIR, bits)
}

// Freeze builds the whois index. No mutation is allowed afterwards.
func (r *Registry) Freeze() error {
	if r.frozen {
		return nil
	}
	for i, a := range r.allocs {
		r.whois.AddPrefix(a.Prefix, i)
	}
	if err := r.whois.Build(); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	r.frozen = true
	return nil
}

// Whois resolves an address to its allocation and owning org, the query the
// paper sends to Team Cymru to learn each ground-truth address's RIR.
func (r *Registry) Whois(a ipx.Addr) (Allocation, Org, bool) {
	if !r.frozen {
		panic("registry: Whois before Freeze")
	}
	i, ok := r.whois.Lookup(a)
	if !ok {
		return Allocation{}, Org{}, false
	}
	alloc := r.allocs[i]
	return alloc, r.orgs[alloc.Org], true
}

// RIROf returns the registry serving an address, or geo.RIRUnknown for
// unallocated space.
func (r *Registry) RIROf(a ipx.Addr) geo.RIR {
	alloc, _, ok := r.Whois(a)
	if !ok {
		return geo.RIRUnknown
	}
	return alloc.RIR
}

// Org returns a registered organization by ID.
func (r *Registry) Org(id OrgID) (Org, bool) {
	o, ok := r.orgs[id]
	return o, ok
}

// OrgOfAS returns the organization operating an AS.
func (r *Registry) OrgOfAS(asn ASN) (Org, bool) {
	id, ok := r.asOrg[asn]
	if !ok {
		return Org{}, false
	}
	return r.orgs[id], true
}

// Allocations returns every delegation in ascending prefix order. The
// vendor builders iterate this as their registration-data feed.
func (r *Registry) Allocations() []Allocation {
	out := make([]Allocation, len(r.allocs))
	copy(out, r.allocs)
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Base < out[j].Prefix.Base })
	return out
}
