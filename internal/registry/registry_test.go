package registry

import (
	"testing"

	"routergeo/internal/geo"
	"routergeo/internal/ipx"
)

func newTestRegistry(t *testing.T) (*Registry, OrgID, ipx.Prefix) {
	t.Helper()
	r := New(nil)
	org := r.RegisterOrg("Example Transit", "US", "Dallas", geo.ARIN)
	if err := r.BindAS(65001, org); err != nil {
		t.Fatal(err)
	}
	p, err := r.Allocate(org, 65001, 16)
	if err != nil {
		t.Fatal(err)
	}
	return r, org, p
}

func TestWhoisResolvesAllocation(t *testing.T) {
	r, org, p := newTestRegistry(t)
	if err := r.Freeze(); err != nil {
		t.Fatal(err)
	}
	alloc, o, ok := r.Whois(p.First() + 42)
	if !ok {
		t.Fatal("Whois miss inside allocation")
	}
	if alloc.ASN != 65001 || alloc.Org != org || alloc.RIR != geo.ARIN {
		t.Errorf("allocation = %+v", alloc)
	}
	if o.Name != "Example Transit" || o.HQCity != "Dallas" {
		t.Errorf("org = %+v", o)
	}
}

func TestWhoisMissOutsideAllocations(t *testing.T) {
	r, _, _ := newTestRegistry(t)
	if err := r.Freeze(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := r.Whois(ipx.MustParseAddr("203.0.113.1")); ok {
		t.Error("Whois should miss for unallocated space")
	}
	if got := r.RIROf(ipx.MustParseAddr("203.0.113.1")); got != geo.RIRUnknown {
		t.Errorf("RIROf unallocated = %v", got)
	}
}

func TestAllocationsComeFromOwnRIRPool(t *testing.T) {
	r := New(nil)
	pools := DefaultPools()
	for _, rir := range geo.RIRs {
		org := r.RegisterOrg("org-"+rir.String(), "US", "X", rir)
		p, err := r.Allocate(org, ASN(64512)+ASN(rir), 20)
		if err != nil {
			t.Fatalf("allocate in %v: %v", rir, err)
		}
		found := false
		for _, pool := range pools[rir] {
			if pool.Overlaps(p) {
				found = true
			}
		}
		if !found {
			t.Errorf("%v allocation %v outside that RIR's pools", rir, p)
		}
	}
}

func TestAllocationsDisjoint(t *testing.T) {
	r := New(nil)
	org := r.RegisterOrg("o", "DE", "Berlin", geo.RIPENCC)
	var prefixes []ipx.Prefix
	for i := 0; i < 200; i++ {
		p, err := r.Allocate(org, 65002, 20)
		if err != nil {
			t.Fatal(err)
		}
		prefixes = append(prefixes, p)
	}
	// Freeze builds a RangeMap, which itself rejects overlaps; reaching
	// here without error proves disjointness.
	if err := r.Freeze(); err != nil {
		t.Fatal(err)
	}
	_ = prefixes
}

func TestAllocateSpillsToNextPool(t *testing.T) {
	// A tiny custom pool set: two /24s for ARIN. Allocating two /24s must
	// succeed (second from the second pool), a third must fail.
	pools := map[geo.RIR][]ipx.Prefix{
		geo.ARIN: {ipx.MustParsePrefix("192.0.2.0/24"), ipx.MustParsePrefix("198.51.100.0/24")},
	}
	r := New(pools)
	org := r.RegisterOrg("o", "US", "X", geo.ARIN)
	p1, err := r.Allocate(org, 65003, 24)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.Allocate(org, 65003, 24)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Overlaps(p2) {
		t.Error("pool spill produced overlapping prefixes")
	}
	if _, err := r.Allocate(org, 65003, 24); err == nil {
		t.Error("third /24 should exhaust both pools")
	}
}

func TestBindASRejectsDuplicates(t *testing.T) {
	r := New(nil)
	a := r.RegisterOrg("a", "US", "X", geo.ARIN)
	b := r.RegisterOrg("b", "US", "Y", geo.ARIN)
	if err := r.BindAS(65010, a); err != nil {
		t.Fatal(err)
	}
	if err := r.BindAS(65010, b); err == nil {
		t.Error("rebinding an AS must fail")
	}
	if err := r.BindAS(65011, 9999); err == nil {
		t.Error("binding to unknown org must fail")
	}
}

func TestOrgOfAS(t *testing.T) {
	r, org, _ := newTestRegistry(t)
	o, ok := r.OrgOfAS(65001)
	if !ok || o.ID != org {
		t.Errorf("OrgOfAS = %+v, %v", o, ok)
	}
	if _, ok := r.OrgOfAS(1); ok {
		t.Error("unknown AS should miss")
	}
}

func TestTransitClassification(t *testing.T) {
	r := New(nil)
	r.MarkTransit(65020)
	if !r.IsTransit(65020) {
		t.Error("marked AS should be transit")
	}
	if r.IsTransit(65021) {
		t.Error("unmarked AS should not be transit")
	}
}

func TestAllocationsSortedFeed(t *testing.T) {
	r := New(nil)
	orgR := r.RegisterOrg("r", "DE", "Berlin", geo.RIPENCC)
	orgA := r.RegisterOrg("a", "US", "Dallas", geo.ARIN)
	// Allocate in an order that is not address order across RIRs.
	if _, err := r.Allocate(orgR, 1, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Allocate(orgA, 2, 20); err != nil {
		t.Fatal(err)
	}
	allocs := r.Allocations()
	if len(allocs) != 2 {
		t.Fatalf("got %d allocations", len(allocs))
	}
	if allocs[0].Prefix.Base > allocs[1].Prefix.Base {
		t.Error("Allocations not sorted by address")
	}
}

func TestMutationAfterFreezePanics(t *testing.T) {
	r, org, _ := newTestRegistry(t)
	if err := r.Freeze(); err != nil {
		t.Fatal(err)
	}
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s after Freeze should panic", name)
			}
		}()
		fn()
	}
	assertPanics("Allocate", func() { _, _ = r.Allocate(org, 65001, 24) })
	assertPanics("RegisterOrg", func() { r.RegisterOrg("x", "US", "X", geo.ARIN) })
	assertPanics("BindAS", func() { _ = r.BindAS(65099, org) })
}

func TestFreezeIdempotent(t *testing.T) {
	r, _, _ := newTestRegistry(t)
	if err := r.Freeze(); err != nil {
		t.Fatal(err)
	}
	if err := r.Freeze(); err != nil {
		t.Errorf("second Freeze: %v", err)
	}
}

func TestWhoisBeforeFreezePanics(t *testing.T) {
	r, _, p := newTestRegistry(t)
	defer func() {
		if recover() == nil {
			t.Error("Whois before Freeze should panic")
		}
	}()
	r.Whois(p.First())
}

func TestDefaultPoolsShape(t *testing.T) {
	pools := DefaultPools()
	for _, rir := range geo.RIRs {
		if len(pools[rir]) == 0 {
			t.Errorf("no pool for %v", rir)
		}
	}
	// ARIN must hold the most space: the paper's ground truth is 64% ARIN
	// and the world builder needs room to reflect that.
	size := func(ps []ipx.Prefix) (n uint64) {
		for _, p := range ps {
			n += p.Size()
		}
		return
	}
	arin := size(pools[geo.ARIN])
	for _, rir := range []geo.RIR{geo.RIPENCC, geo.APNIC, geo.LACNIC, geo.AFRINIC} {
		if size(pools[rir]) >= arin {
			t.Errorf("%v pool >= ARIN pool", rir)
		}
	}
	// Pools must be pairwise disjoint across RIRs.
	var all []ipx.Prefix
	for _, ps := range pools {
		all = append(all, ps...)
	}
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			if all[i].Overlaps(all[j]) {
				t.Errorf("pools overlap: %v and %v", all[i], all[j])
			}
		}
	}
}
