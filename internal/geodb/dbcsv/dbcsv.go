// Package dbcsv reads and writes geolocation databases as CSV — the
// interchange format the real products actually ship (IP2Location's CSV
// downloads, MaxMind's legacy GeoIP CSV). One row per range:
//
//	lo,hi,country,city,lat,lon,resolution,block_bits
//
// with lo/hi as dotted quads, an optional header line, empty city/coords
// for country-level rows, and "resolution" spelled country|city.
package dbcsv

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

// header is the column line Write emits and Read tolerates.
var header = []string{"lo", "hi", "country", "city", "lat", "lon", "resolution", "block_bits"}

// Write emits db as CSV with a header line.
func Write(w io.Writer, db *geodb.DB) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	var werr error
	db.Walk(func(r ipx.Range, rec geodb.Record) bool {
		row := []string{
			r.Lo.String(),
			r.Hi.String(),
			rec.Country,
			rec.City,
			formatCoord(rec.Coord.Lat),
			formatCoord(rec.Coord.Lon),
			rec.Resolution.String(),
			strconv.Itoa(int(rec.BlockBits)),
		}
		if err := cw.Write(row); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	cw.Flush()
	return cw.Error()
}

func formatCoord(v float64) string {
	if v == 0 {
		return ""
	}
	return strconv.FormatFloat(v, 'f', 4, 64)
}

// Read parses a CSV database written by Write (or hand-assembled in the
// same shape). name becomes the database's name. Rows must be disjoint;
// a header line is skipped if present.
func Read(r io.Reader, name string) (*geodb.DB, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(header)
	b := geodb.NewBuilder(name)
	line := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dbcsv: %w", err)
		}
		line++
		if line == 1 && row[0] == header[0] {
			continue
		}
		lo, err := ipx.ParseAddr(row[0])
		if err != nil {
			return nil, fmt.Errorf("dbcsv: line %d: %w", line, err)
		}
		hi, err := ipx.ParseAddr(row[1])
		if err != nil {
			return nil, fmt.Errorf("dbcsv: line %d: %w", line, err)
		}
		if lo > hi {
			return nil, fmt.Errorf("dbcsv: line %d: inverted range %s-%s", line, row[0], row[1])
		}
		rec := geodb.Record{Country: row[2], City: row[3]}
		if row[4] != "" || row[5] != "" {
			lat, err := strconv.ParseFloat(row[4], 64)
			if err != nil {
				return nil, fmt.Errorf("dbcsv: line %d: lat: %w", line, err)
			}
			lon, err := strconv.ParseFloat(row[5], 64)
			if err != nil {
				return nil, fmt.Errorf("dbcsv: line %d: lon: %w", line, err)
			}
			rec.Coord = geo.Coordinate{Lat: lat, Lon: lon}
			if !rec.Coord.Valid() {
				return nil, fmt.Errorf("dbcsv: line %d: coordinates out of range", line)
			}
		}
		switch row[6] {
		case "city":
			rec.Resolution = geodb.ResolutionCity
		case "country":
			rec.Resolution = geodb.ResolutionCountry
		case "none", "":
			rec.Resolution = geodb.ResolutionNone
		default:
			return nil, fmt.Errorf("dbcsv: line %d: unknown resolution %q", line, row[6])
		}
		bits, err := strconv.Atoi(row[7])
		if err != nil || bits < 0 || bits > 32 {
			return nil, fmt.Errorf("dbcsv: line %d: bad block_bits %q", line, row[7])
		}
		rec.BlockBits = uint8(bits)
		b.Add(0, ipx.Range{Lo: lo, Hi: hi}, rec)
	}
	db, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("dbcsv: %w", err)
	}
	return db, nil
}

// WriteFile writes db to a CSV file at path.
func WriteFile(path string, db *geodb.DB) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, db); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a CSV database; the name derives from the file name.
func ReadFile(path, name string) (*geodb.DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f, name)
}
