package dbcsv

import (
	"strings"
	"testing"

	"routergeo/internal/ipx"
)

// FuzzRead hardens the CSV parser: arbitrary text must yield an error or
// a valid, queryable database — never a panic.
func FuzzRead(f *testing.F) {
	f.Add("lo,hi,country,city,lat,lon,resolution,block_bits\n" +
		"10.0.0.0,10.0.0.255,US,Dallas,32.7767,-96.7970,city,24\n")
	f.Add("10.0.0.0,10.0.0.255,US,,,,country,24\n")
	f.Add("")
	f.Add(",,,,,,,\n")
	f.Add("a,b,c,d,e,f,g,h\n")

	f.Fuzz(func(t *testing.T, text string) {
		db, err := Read(strings.NewReader(text), "fuzz")
		if err != nil {
			return
		}
		db.Lookup(ipx.MustParseAddr("10.0.0.1"))
	})
}
