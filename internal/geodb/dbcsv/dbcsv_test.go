package dbcsv

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

func sample(t *testing.T) *geodb.DB {
	t.Helper()
	b := geodb.NewBuilder("csvdb")
	b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/16"), geodb.Record{
		Country: "US", City: "Dallas",
		Coord: geo.Coordinate{Lat: 32.7767, Lon: -96.797}, Resolution: geodb.ResolutionCity,
	})
	b.AddPrefix(0, ipx.MustParsePrefix("10.1.0.0/16"), geodb.Record{
		Country: "DE", Resolution: geodb.ResolutionCountry,
	})
	b.AddPrefix(1, ipx.MustParsePrefix("10.0.7.0/24"), geodb.Record{
		Country: "FR", City: "Paris",
		Coord: geo.Coordinate{Lat: 48.8566, Lon: 2.3522}, Resolution: geodb.ResolutionCity,
	})
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestRoundTrip(t *testing.T) {
	db := sample(t)
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "lo,hi,country,city,lat,lon,resolution,block_bits\n") {
		t.Errorf("missing header: %q", buf.String()[:60])
	}
	back, err := Read(&buf, "csvdb")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("len %d != %d", back.Len(), db.Len())
	}
	for _, ip := range []string{"10.0.0.1", "10.0.7.200", "10.1.3.4", "10.2.0.1"} {
		a := ipx.MustParseAddr(ip)
		want, wantOK := db.Lookup(a)
		got, ok := back.Lookup(a)
		if ok != wantOK {
			t.Fatalf("%s: found %v, want %v", ip, ok, wantOK)
		}
		if ok {
			// Coordinates travel with 4-decimal precision; compare coarsely.
			if got.Country != want.Country || got.City != want.City ||
				got.Resolution != want.Resolution || got.BlockBits != want.BlockBits {
				t.Fatalf("%s: %+v != %+v", ip, got, want)
			}
			if !got.Coord.WithinKm(want.Coord, 0.05) {
				t.Fatalf("%s: coordinate drift %v vs %v", ip, got.Coord, want.Coord)
			}
		}
	}
}

func TestReadWithoutHeader(t *testing.T) {
	csvText := "10.0.0.0,10.0.0.255,US,Dallas,32.7767,-96.7970,city,24\n"
	db, err := Read(strings.NewReader(csvText), "x")
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := db.Lookup(ipx.MustParseAddr("10.0.0.77"))
	if !ok || rec.City != "Dallas" || rec.BlockBits != 24 {
		t.Errorf("record = %+v, %v", rec, ok)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad lo":         "banana,10.0.0.255,US,,,,country,24\n",
		"bad hi":         "10.0.0.0,banana,US,,,,country,24\n",
		"inverted":       "10.0.1.0,10.0.0.0,US,,,,country,24\n",
		"bad lat":        "10.0.0.0,10.0.0.255,US,Dallas,banana,1.0,city,24\n",
		"out of range":   "10.0.0.0,10.0.0.255,US,Dallas,99.0,1.0,city,24\n",
		"bad resolution": "10.0.0.0,10.0.0.255,US,,,,galaxy,24\n",
		"bad bits":       "10.0.0.0,10.0.0.255,US,,,,country,77\n",
		"short row":      "10.0.0.0,10.0.0.255,US\n",
		"overlap":        "10.0.0.0,10.0.0.255,US,,,,country,24\n10.0.0.128,10.0.1.0,DE,,,,country,24\n",
	}
	for name, text := range cases {
		if _, err := Read(strings.NewReader(text), "x"); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	db := sample(t)
	path := filepath.Join(t.TempDir(), "db.csv")
	if err := WriteFile(path, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path, "fromfile")
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "fromfile" || back.Len() != db.Len() {
		t.Errorf("file round trip: %s/%d", back.Name(), back.Len())
	}
}

func TestEmptyDatabase(t *testing.T) {
	db, err := geodb.NewBuilder("empty").Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, "empty")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Errorf("empty round trip has %d entries", back.Len())
	}
}
