// Package geodb defines the geolocation-database model the evaluation
// consumes: a Provider answers IP lookups with a location Record at
// country or city resolution, exactly the query interface MaxMind,
// IP2Location and NetAcuity expose. The concrete DB type is an immutable
// sorted range database (the layout those products actually ship) built
// through a layered Builder, plus a binary file format in the dbfile
// subpackage.
package geodb

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"

	"routergeo/internal/geo"
	"routergeo/internal/ipx"
)

// Resolution is the finest granularity a record answers at.
type Resolution uint8

const (
	// ResolutionNone marks an absent or empty record.
	ResolutionNone Resolution = iota
	// ResolutionCountry records carry only a country code.
	ResolutionCountry
	// ResolutionCity records carry country, city name and coordinates.
	ResolutionCity
)

// String names the resolution.
func (r Resolution) String() string {
	switch r {
	case ResolutionCountry:
		return "country"
	case ResolutionCity:
		return "city"
	default:
		return "none"
	}
}

// Record is one geolocation answer.
type Record struct {
	// Country is the ISO2 country code ("" when unknown).
	Country string
	// City is the city name at city resolution ("" otherwise).
	City string
	// Coord is set at city resolution; (0,0) means no coordinates.
	Coord geo.Coordinate
	// Resolution is the record's granularity.
	Resolution Resolution
	// BlockBits is the prefix length of the database entry that produced
	// this answer (e.g. 24 for a /24 record, 19 for a whole-delegation
	// record, 32 for a per-address entry). The paper's §5.2.3 uses exactly
	// this signal: "block-level — /24 block or larger — locations".
	BlockBits uint8
}

// HasCountry reports whether the record answers at country level or finer.
func (r Record) HasCountry() bool { return r.Resolution >= ResolutionCountry && r.Country != "" }

// HasCity reports whether the record answers at city level with
// coordinates.
func (r Record) HasCity() bool {
	return r.Resolution == ResolutionCity && r.City != "" && !r.Coord.IsZero()
}

// BlockLevel reports whether the record came from a /24-or-coarser entry.
func (r Record) BlockLevel() bool { return r.BlockBits <= 24 }

// Provider is the query interface the evaluation runs against.
type Provider interface {
	// Name identifies the database (e.g. "NetAcuity").
	Name() string
	// Lookup resolves one address; ok is false when the database has no
	// record covering it.
	Lookup(a ipx.Addr) (Record, bool)
}

// Finderer is implemented by providers that can mint cheap per-goroutine
// lookup functions. The returned function answers exactly like Lookup
// but may carry single-goroutine state (a locality cache), so each
// worker in a parallel sweep must call Finder for its own copy and never
// share one across goroutines.
type Finderer interface {
	Finder() func(a ipx.Addr) (Record, bool)
}

// LookupFunc returns the cheapest per-goroutine lookup function db
// offers: a private Finder when the provider mints them, the shared
// Lookup method otherwise.
func LookupFunc(db Provider) func(a ipx.Addr) (Record, bool) {
	if f, ok := db.(Finderer); ok {
		return f.Finder()
	}
	return db.Lookup
}

// BatchIndexer is implemented by providers whose record table is
// resident in memory and whose lookups can be resolved in bulk. The
// contract: out[i] after LookupIndexBatch is an index into Records()
// answering addrs[i], or -1 when the provider has no covering record —
// exactly what per-address Lookup would report, but resolved through a
// sort-and-walk kernel that touches the index monotonically. Answers
// are indices rather than Record copies so scoring loops read records
// in place without per-address copying.
type BatchIndexer interface {
	// Records returns the shared record table; callers must treat it as
	// read-only.
	Records() []Record
	// LookupIndexBatch fills out[:len(addrs)] with record-table indices
	// (-1 for a miss). s holds the reusable sort scratch; one scratch per
	// goroutine, never shared concurrently.
	LookupIndexBatch(addrs []ipx.Addr, out []int32, s *ipx.BatchScratch)
}

// DB is an immutable sorted-range geolocation database. Queries are
// served from a flat structure-of-arrays index with a /16 jump table
// whose values are indices into a deduplicated record table — the same
// two-level layout vendor snapshot files (MaxMind's mmdb, IP2Location's
// BIN) ship, and the exact layout the snapshot subpackage memory-maps,
// so a loaded snapshot and a freshly built database serve through
// identical code. The layered range map survives only inside Build.
type DB struct {
	name string
	idx  *ipx.FlatIndex[uint32]
	recs []Record
	meta Meta

	// vecs caches one unit-sphere vector per record-table entry, built
	// lazily on first RecordVecs call. The table is immutable once
	// published, like everything else here.
	vecsOnce sync.Once
	vecs     []geo.Vec3
}

// Meta is the provenance a database carries: where it came from and the
// snapshot identity (generation, checksum, build epoch) when it was
// loaded from one. The zero value means "built in memory, no identity
// attached"; Fingerprint supplies a content-derived stand-in then.
type Meta struct {
	// Generation identifies the exact database bytes (for snapshots, the
	// hex form of Checksum).
	Generation string
	// Checksum is the snapshot file checksum (0 when not snapshot-loaded).
	Checksum uint64
	// BuildEpoch is the unix-seconds build time recorded by the writer.
	BuildEpoch int64
	// SourceFormat names the artifact the database was loaded from:
	// "snapshot", "dbfile", "csv", or "" for an in-memory build.
	SourceFormat string
}

// Name implements Provider.
func (d *DB) Name() string { return d.name }

// Meta returns the database's provenance metadata.
func (d *DB) Meta() Meta { return d.meta }

// SetMeta attaches provenance metadata (loaders call this).
func (d *DB) SetMeta(m Meta) { d.meta = m }

// Lookup implements Provider.
func (d *DB) Lookup(a ipx.Addr) (Record, bool) {
	i, ok := d.idx.Lookup(a)
	if !ok {
		return Record{}, false
	}
	return d.recs[i], true
}

// Finder implements Finderer: the returned function is a private
// last-hit-caching view of the index for one goroutine.
func (d *DB) Finder() func(a ipx.Addr) (Record, bool) {
	f := d.idx.NewFinder()
	recs := d.recs
	return func(a ipx.Addr) (Record, bool) {
		i, ok := f.Lookup(a)
		if !ok {
			return Record{}, false
		}
		return recs[i], true
	}
}

// compile-time interface checks
var (
	_ Provider     = (*DB)(nil)
	_ Finderer     = (*DB)(nil)
	_ BatchIndexer = (*DB)(nil)
)

// Records implements BatchIndexer: the deduplicated record table range
// values index into. Read-only.
func (d *DB) Records() []Record { return d.recs }

// RecordVecs returns one unit-sphere vector per Records() entry,
// computed lazily on first use and shared (read-only) thereafter. The
// accuracy and consistency sweeps read it so per-pair great-circle
// distances cost a dot product (geo.ArcKm) instead of per-pair
// trigonometry. Only city records carry coordinates; every other entry
// stays the zero vector and is never consulted.
func (d *DB) RecordVecs() []geo.Vec3 {
	d.vecsOnce.Do(func() {
		vs := make([]geo.Vec3, len(d.recs))
		for i := range d.recs {
			if d.recs[i].HasCity() {
				vs[i] = d.recs[i].Coord.Vec()
			}
		}
		d.vecs = vs
	})
	return d.vecs
}

// LookupIndexBatch implements BatchIndexer over the flat index: resolve
// every address to its covering interval in one monotone walk, then map
// intervals to record-table indices.
//
//geolint:hotpath
func (d *DB) LookupIndexBatch(addrs []ipx.Addr, out []int32, s *ipx.BatchScratch) {
	d.idx.FindBatch(addrs, out, s)
	_, _, vals, _ := d.idx.SoA()
	for i, iv := range out[:len(addrs)] {
		if iv >= 0 {
			out[i] = int32(vals[iv])
		}
	}
}

// Len returns the number of range entries.
func (d *DB) Len() int { return d.idx.Len() }

// Walk visits every entry in address order.
func (d *DB) Walk(fn func(ipx.Range, Record) bool) {
	los, his, vals, _ := d.idx.SoA()
	for i := range los {
		if !fn(ipx.Range{Lo: los[i], Hi: his[i]}, d.recs[vals[i]]) {
			return
		}
	}
}

// Parts exposes the serving representation — the SoA interval arrays,
// the per-range record indices, the /16 jump table and the deduplicated
// record table — for serialization. All slices are live backing arrays
// and must be treated as read-only.
func (d *DB) Parts() (los, his []ipx.Addr, vals []uint32, jump []int32, recs []Record) {
	los, his, vals, jump = d.idx.SoA()
	return los, his, vals, jump, d.recs
}

// FromIndex wraps a pre-built flat index over a record table into a DB —
// the snapshot loader's entry point. Every range value must reference a
// record inside the table; the scan is O(ranges) integer compares, no
// per-range decoding.
func FromIndex(name string, idx *ipx.FlatIndex[uint32], recs []Record, meta Meta) (*DB, error) {
	_, _, vals, _ := idx.SoA()
	for i, v := range vals {
		if int(v) >= len(recs) {
			return nil, fmt.Errorf("geodb: %s: range %d references record %d of %d",
				name, i, v, len(recs))
		}
	}
	return &DB{name: name, idx: idx, recs: recs, meta: meta}, nil
}

// Fingerprint hashes the serving representation (FNV-1a over the name,
// the SoA arrays and the record table). It gives in-memory databases a
// stable, content-derived identity for generation/ETag purposes when no
// snapshot metadata is attached; identical builds produce identical
// fingerprints.
func (d *DB) Fingerprint() uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(d.name))
	var b [8]byte
	w32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b[:4], v)
		_, _ = h.Write(b[:4])
	}
	los, his, vals, _ := d.idx.SoA()
	for i := range los {
		w32(uint32(los[i]))
		w32(uint32(his[i]))
		w32(vals[i])
	}
	for _, r := range d.recs {
		_, _ = h.Write([]byte(r.Country))
		_, _ = h.Write([]byte{0, byte(r.Resolution), r.BlockBits})
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(r.Coord.Lat))
		_, _ = h.Write(b[:])
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(r.Coord.Lon))
		_, _ = h.Write(b[:])
		_, _ = h.Write([]byte(r.City))
		_, _ = h.Write([]byte{0})
	}
	return h.Sum64()
}

// Builder assembles a DB from layered records: vendors lay down coarse
// registration-derived records and override parts of them with finer
// evidence (measurement corrections, per-address hostname hints). Higher
// layers win; Build flattens the layers into disjoint ranges.
type Builder struct {
	name   string
	layers map[int][]entry
}

type entry struct {
	r   ipx.Range
	rec Record
}

// NewBuilder starts a database named name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, layers: make(map[int][]entry)}
}

// Add places a record on a layer. Records within one layer must be
// disjoint (Build reports an error otherwise); records on higher layers
// shadow lower ones where they overlap.
func (b *Builder) Add(layer int, r ipx.Range, rec Record) {
	b.layers[layer] = append(b.layers[layer], entry{r: r, rec: rec})
}

// AddPrefix is Add for a CIDR block, filling Record.BlockBits from the
// prefix length if unset.
func (b *Builder) AddPrefix(layer int, p ipx.Prefix, rec Record) {
	if rec.BlockBits == 0 {
		rec.BlockBits = p.Bits
	}
	b.Add(layer, ipx.RangeOf(p), rec)
}

// Build flattens the layers into a queryable database.
func (b *Builder) Build() (*DB, error) {
	var order []int
	for l := range b.layers {
		order = append(order, l)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(order)))

	db := &DB{name: b.name}
	// Records dedup into a table as they are laid down; the interning
	// order is deterministic (layer order, sorted entries, fragment
	// order), so identical builds yield identical tables.
	recIdx := map[Record]uint32{}
	intern := func(rec Record) uint32 {
		if i, ok := recIdx[rec]; ok {
			return i
		}
		i := uint32(len(db.recs))
		recIdx[rec] = i
		db.recs = append(db.recs, rec)
		return i
	}
	var m ipx.RangeMap[uint32]
	var covered coverage
	for _, l := range order {
		entries := b.layers[l]
		sort.Slice(entries, func(i, j int) bool { return entries[i].r.Lo < entries[j].r.Lo })
		for i := 1; i < len(entries); i++ {
			if entries[i].r.Lo <= entries[i-1].r.Hi {
				return nil, fmt.Errorf("geodb: %s layer %d: overlapping records %v and %v",
					b.name, l, entries[i-1].r, entries[i].r)
			}
		}
		for _, e := range entries {
			frags := covered.subtract(e.r)
			if len(frags) > 0 {
				ri := intern(e.rec)
				for _, frag := range frags {
					m.Add(frag, ri)
				}
			}
			covered.insert(e.r)
		}
	}
	if err := m.Build(); err != nil {
		return nil, fmt.Errorf("geodb: %s: %w", b.name, err)
	}
	db.idx = ipx.NewFlatIndex(&m)
	return db, nil
}

// coverage tracks the union of inserted ranges as a sorted, merged list.
type coverage struct {
	rs []ipx.Range
}

// subtract returns the parts of r not yet covered.
func (c *coverage) subtract(r ipx.Range) []ipx.Range {
	var out []ipx.Range
	lo := r.Lo
	i := sort.Search(len(c.rs), func(i int) bool { return c.rs[i].Hi >= r.Lo })
	for ; i < len(c.rs) && c.rs[i].Lo <= r.Hi; i++ {
		if c.rs[i].Lo > lo {
			out = append(out, ipx.Range{Lo: lo, Hi: c.rs[i].Lo - 1})
		}
		if c.rs[i].Hi >= r.Hi {
			return out
		}
		lo = c.rs[i].Hi + 1
	}
	if lo <= r.Hi {
		out = append(out, ipx.Range{Lo: lo, Hi: r.Hi})
	}
	return out
}

// insert adds r to the covered set, merging neighbours.
func (c *coverage) insert(r ipx.Range) {
	i := sort.Search(len(c.rs), func(i int) bool { return c.rs[i].Lo > r.Lo })
	c.rs = append(c.rs, ipx.Range{})
	copy(c.rs[i+1:], c.rs[i:])
	c.rs[i] = r
	// Merge around i.
	merged := c.rs[:0]
	for _, cur := range c.rs {
		n := len(merged)
		if n > 0 && (cur.Lo <= merged[n-1].Hi || (merged[n-1].Hi != ^ipx.Addr(0) && cur.Lo == merged[n-1].Hi+1)) {
			if cur.Hi > merged[n-1].Hi {
				merged[n-1].Hi = cur.Hi
			}
			continue
		}
		merged = append(merged, cur)
	}
	c.rs = merged
}
