package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

func buildSample(t testing.TB) *geodb.DB {
	t.Helper()
	b := geodb.NewBuilder("SampleDB")
	b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/16"), geodb.Record{
		Country: "US", City: "Dallas",
		Coord: geo.Coordinate{Lat: 32.7767, Lon: -96.797}, Resolution: geodb.ResolutionCity,
	})
	b.AddPrefix(0, ipx.MustParsePrefix("10.1.0.0/16"), geodb.Record{
		Country: "DE", Resolution: geodb.ResolutionCountry,
	})
	b.AddPrefix(1, ipx.MustParsePrefix("10.0.7.0/24"), geodb.Record{
		Country: "FR", City: "Paris",
		Coord: geo.Coordinate{Lat: 48.8566, Lon: 2.3522}, Resolution: geodb.ResolutionCity,
	})
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// buildRandom grows a database with seeded-random ranges and a healthy
// mix of record shapes, shared between the property test and benchmarks.
func buildRandom(t testing.TB, seed int64, entries int) *geodb.DB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := geodb.NewBuilder("random")
	lo := ipx.MustParseAddr("20.0.0.0")
	for i := 0; i < entries; i++ {
		lo += ipx.Addr(1 + rng.Intn(5000))
		hi := lo + ipx.Addr(rng.Intn(2000))
		rec := geodb.Record{
			Country:    string([]byte{byte('A' + rng.Intn(26)), byte('A' + rng.Intn(26))}),
			Resolution: geodb.ResolutionCountry,
			BlockBits:  uint8(8 + rng.Intn(25)),
		}
		if rng.Intn(2) == 0 {
			rec.City = []string{"Dallas", "Paris", "Berlin", "Osaka", "Quito"}[rng.Intn(5)]
			rec.Coord = geo.Coordinate{Lat: rng.Float64()*180 - 90, Lon: rng.Float64()*360 - 180}
			rec.Resolution = geodb.ResolutionCity
		}
		b.Add(0, ipx.Range{Lo: lo, Hi: hi}, rec)
		lo = hi
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func snap(t testing.TB, db *geodb.DB, meta Meta) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, db, meta); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// rechecksum patches a (possibly corrupted) image's checksum field so
// targeted corruption tests reach the validation they aim at instead of
// tripping the checksum gate first.
func rechecksum(data []byte) {
	sum := checksum(data[:headerSize], data[headerSize:])
	binary.LittleEndian.PutUint64(data[8:], sum)
}

// TestRoundTripProperty is the format's core promise: write → decode
// must be lookup-for-lookup identical to the in-memory database, checked
// against an independently built RangeMap oracle on every range boundary
// (±1) plus seeded-random probes.
func TestRoundTripProperty(t *testing.T) {
	db := buildRandom(t, 7, 4000)
	data := snap(t, db, Meta{BuildEpoch: 1700000000, SourceFormat: "test"})
	back, info, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "random" || info.Ranges != db.Len() || info.SourceFormat != "test" {
		t.Fatalf("info = %+v", info)
	}
	if back.Meta().Generation != GenerationID(info.Checksum) {
		t.Fatalf("generation %q does not match checksum %016x", back.Meta().Generation, info.Checksum)
	}

	// Independent oracle: replay the db's entries into a fresh RangeMap.
	var oracle ipx.RangeMap[geodb.Record]
	db.Walk(func(r ipx.Range, rec geodb.Record) bool {
		oracle.Add(r, rec)
		return true
	})
	if err := oracle.Build(); err != nil {
		t.Fatal(err)
	}

	var queries []ipx.Addr
	db.Walk(func(r ipx.Range, _ geodb.Record) bool {
		queries = append(queries, r.Lo, r.Hi)
		if r.Lo > 0 {
			queries = append(queries, r.Lo-1)
		}
		if r.Hi < ^ipx.Addr(0) {
			queries = append(queries, r.Hi+1)
		}
		return true
	})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		queries = append(queries, ipx.Addr(rng.Uint32()))
	}

	find := back.Finder()
	for _, a := range queries {
		want, wantOK := oracle.Lookup(a)
		if got, ok := back.Lookup(a); ok != wantOK || got != want {
			t.Fatalf("Lookup(%v) = %+v,%v; oracle %+v,%v", a, got, ok, want, wantOK)
		}
		if got, ok := find(a); ok != wantOK || got != want {
			t.Fatalf("Finder(%v) = %+v,%v; oracle %+v,%v", a, got, ok, want, wantOK)
		}
	}
}

func TestGenerationIdentity(t *testing.T) {
	db := buildSample(t)
	a := snap(t, db, Meta{BuildEpoch: 100, SourceFormat: "study"})
	b := snap(t, db, Meta{BuildEpoch: 100, SourceFormat: "study"})
	if !bytes.Equal(a, b) {
		t.Fatal("identical inputs produced different snapshot bytes")
	}
	// Same content, later build: content-identical but a distinct
	// generation, so a republished snapshot is visibly a new generation.
	c := snap(t, db, Meta{BuildEpoch: 101, SourceFormat: "study"})
	_, ia, err := Decode(a)
	if err != nil {
		t.Fatal(err)
	}
	_, ic, err := Decode(c)
	if err != nil {
		t.Fatal(err)
	}
	if ia.Generation == ic.Generation {
		t.Fatal("different build epochs share a generation id")
	}
	if len(ia.Generation) != 16 {
		t.Fatalf("generation %q not 16 hex digits", ia.Generation)
	}
}

func TestWriteFileAndOpen(t *testing.T) {
	dir := t.TempDir()
	db := buildSample(t)
	path := filepath.Join(dir, "sample"+Ext)
	if err := WriteFile(path, db, Meta{BuildEpoch: 42, SourceFormat: "study"}); err != nil {
		t.Fatal(err)
	}
	// Atomic write leaves no temp droppings.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	h, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.Info().BuildEpoch != 42 || h.Info().Name != "SampleDB" {
		t.Fatalf("info = %+v", h.Info())
	}
	a := ipx.MustParseAddr("10.0.7.9")
	want, _ := db.Lookup(a)
	got, ok := h.DB().Lookup(a)
	if !ok || got != want {
		t.Fatalf("Lookup via Open = %+v,%v, want %+v", got, ok, want)
	}
	if got := h.DB().Meta().SourceFormat; got != "snapshot" {
		t.Fatalf("loaded DB SourceFormat = %q", got)
	}
	info, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Checksum != h.Info().Checksum || info.Size != h.Info().Size {
		t.Fatalf("Inspect = %+v, Open = %+v", info, h.Info())
	}
}

func TestCorruptedSnapshots(t *testing.T) {
	db := buildSample(t)
	good := snap(t, db, Meta{BuildEpoch: 9, SourceFormat: "study"})

	tests := []struct {
		name    string
		mangle  func([]byte) []byte
		wantErr error
	}{
		{"truncated header", func(d []byte) []byte { return d[:headerSize-1] }, ErrTruncated},
		{"empty file", func(d []byte) []byte { return nil }, ErrTruncated},
		{"bad magic", func(d []byte) []byte { d[0] = 'X'; return d }, ErrBadMagic},
		{"wrong version", func(d []byte) []byte {
			binary.LittleEndian.PutUint16(d[4:], 99)
			return d
		}, ErrBadVersion},
		{"reserved flags", func(d []byte) []byte {
			binary.LittleEndian.PutUint16(d[6:], 1)
			return d
		}, ErrBadVersion},
		{"bad checksum", func(d []byte) []byte { d[len(d)-1] ^= 0xff; return d }, ErrBadChecksum},
		{"truncated payload", func(d []byte) []byte {
			d = d[:len(d)-8]
			rechecksum(d)
			return d
		}, ErrTruncated},
		{"misaligned section", func(d []byte) []byte {
			off := binary.LittleEndian.Uint64(d[72:]) // losOff
			binary.LittleEndian.PutUint64(d[72:], off+4)
			rechecksum(d)
			return d
		}, ErrMisaligned},
		{"section out of bounds", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[96:], 1<<40) // jumpOff
			rechecksum(d)
			return d
		}, ErrTruncated},
		{"absurd range count", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[24:], maxRanges+1)
			rechecksum(d)
			return d
		}, ErrCorrupt},
		{"broken jump table", func(d []byte) []byte {
			off := binary.LittleEndian.Uint64(d[96:]) // jumpOff
			d[off] ^= 0xff
			rechecksum(d)
			return d
		}, ErrCorrupt},
		{"record index out of range", func(d []byte) []byte {
			off := binary.LittleEndian.Uint64(d[88:]) // valsOff
			binary.LittleEndian.PutUint32(d[off:], 1<<30)
			rechecksum(d)
			return d
		}, ErrCorrupt},
		{"bad record resolution", func(d []byte) []byte {
			off := binary.LittleEndian.Uint64(d[104:]) // recsOff
			d[off+2] = 200
			rechecksum(d)
			return d
		}, ErrCorrupt},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mangle(append([]byte(nil), good...))
			_, _, err := Decode(data)
			if err == nil {
				t.Fatal("corrupted snapshot decoded without error")
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
	// The pristine image still decodes — corruption tests worked on copies.
	if _, _, err := Decode(good); err != nil {
		t.Fatalf("pristine image stopped decoding: %v", err)
	}
}

func TestOpenRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	db := buildSample(t)
	data := snap(t, db, Meta{})
	data[len(data)-1] ^= 0xff
	path := filepath.Join(dir, "bad"+Ext)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("Open = %v, want checksum error", err)
	}
}
