package snapshot

import (
	"fmt"
	"math"
	"sort"

	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
	"routergeo/internal/stats"
)

// The longitudinal diff engine. Two snapshots of one database taken at
// different epochs are compared as flat range sets: the address space is
// swept once across both, and every maximal run of addresses with the
// same (before, after) answer pair becomes one classified segment. The
// classification mirrors what "Longitudinal Study of an IP Geolocation
// Database" measures between releases — coverage gained, coverage lost,
// and answers that moved — plus the distance ECDF of the moves, which is
// the drift signal the paper's accuracy tables cannot show.

// Entry is one range of a flattened database: a maximal run of addresses
// sharing a record.
type Entry struct {
	Range ipx.Range
	Rec   geodb.Record
}

// Flatten returns the database's covered address space as sorted,
// disjoint, maximal entries: adjacent ranges carrying equal records are
// merged. Two databases answering every address identically flatten to
// identical slices, whatever range fragmentation their builds produced.
func Flatten(db *geodb.DB) []Entry {
	var out []Entry
	db.Walk(func(r ipx.Range, rec geodb.Record) bool {
		if n := len(out); n > 0 &&
			out[n-1].Rec == rec && uint64(out[n-1].Range.Hi)+1 == uint64(r.Lo) {
			out[n-1].Range.Hi = r.Hi
			return true
		}
		out = append(out, Entry{Range: r, Rec: rec})
		return true
	})
	return out
}

// ChangeKind classifies one diff segment.
type ChangeKind uint8

const (
	// Added addresses are covered only by the newer snapshot.
	Added ChangeKind = iota
	// Removed addresses are covered only by the older snapshot.
	Removed
	// Moved addresses are covered by both with different records.
	Moved
)

func (k ChangeKind) String() string {
	switch k {
	case Added:
		return "added"
	case Removed:
		return "removed"
	case Moved:
		return "moved"
	}
	return fmt.Sprintf("ChangeKind(%d)", uint8(k))
}

// Change is one maximal segment of addresses whose answer changed
// between the two snapshots. From is the zero Record for Added segments,
// To for Removed ones.
type Change struct {
	Range ipx.Range
	Kind  ChangeKind
	From  geodb.Record
	To    geodb.Record
}

// Diff is the classified difference between two databases.
type Diff struct {
	// Changes holds every changed segment in address order.
	Changes []Change

	// Segment tallies per kind, plus the unchanged-covered segments.
	AddedSegments, RemovedSegments, MovedSegments, UnchangedSegments int

	// Address tallies per kind (a /16 move weighs 65536 here, 1 above).
	AddedAddrs, RemovedAddrs, MovedAddrs, UnchangedAddrs uint64

	// Distances is the ECDF of great-circle kilometres between the old
	// and new coordinates of Moved segments where both sides carry a
	// city-resolution record — the location-change-distance distribution.
	// One sample per segment; nil when no such segment exists.
	Distances *stats.ECDF
}

// Compare diffs two databases (old → new) by a single sweep over both
// flattened range sets. The result is deterministic: equal inputs in
// either fragmentation produce equal diffs.
func Compare(old, new *geodb.DB) *Diff {
	ea, eb := Flatten(old), Flatten(new)
	d := &Diff{}
	ia, ib := 0, 0
	pos := uint64(0)
	for ia < len(ea) || ib < len(eb) {
		if ia < len(ea) && uint64(ea[ia].Range.Hi) < pos {
			ia++
			continue
		}
		if ib < len(eb) && uint64(eb[ib].Range.Hi) < pos {
			ib++
			continue
		}
		inA := ia < len(ea) && uint64(ea[ia].Range.Lo) <= pos
		inB := ib < len(eb) && uint64(eb[ib].Range.Lo) <= pos
		if !inA && !inB {
			// A gap in both: jump to the next covered address.
			next := uint64(math.MaxUint64)
			if ia < len(ea) {
				next = uint64(ea[ia].Range.Lo)
			}
			if ib < len(eb) && uint64(eb[ib].Range.Lo) < next {
				next = uint64(eb[ib].Range.Lo)
			}
			pos = next
			continue
		}
		// The segment ends where the nearest active range ends or the
		// nearest upcoming range begins.
		end := uint64(math.MaxUint64)
		clip := func(v uint64) {
			if v < end {
				end = v
			}
		}
		if inA {
			clip(uint64(ea[ia].Range.Hi))
		} else if ia < len(ea) {
			clip(uint64(ea[ia].Range.Lo) - 1)
		}
		if inB {
			clip(uint64(eb[ib].Range.Hi))
		} else if ib < len(eb) {
			clip(uint64(eb[ib].Range.Lo) - 1)
		}
		r := ipx.Range{Lo: ipx.Addr(pos), Hi: ipx.Addr(end)}
		n := end - pos + 1
		switch {
		case inA && inB && ea[ia].Rec == eb[ib].Rec:
			d.UnchangedSegments++
			d.UnchangedAddrs += n
		case inA && inB:
			d.MovedAddrs += n
			d.emit(Change{Range: r, Kind: Moved, From: ea[ia].Rec, To: eb[ib].Rec})
		case inA:
			d.RemovedAddrs += n
			d.emit(Change{Range: r, Kind: Removed, From: ea[ia].Rec})
		default:
			d.AddedAddrs += n
			d.emit(Change{Range: r, Kind: Added, To: eb[ib].Rec})
		}
		pos = end + 1
	}
	for _, c := range d.Changes {
		switch c.Kind {
		case Added:
			d.AddedSegments++
		case Removed:
			d.RemovedSegments++
		case Moved:
			d.MovedSegments++
			if c.From.HasCity() && c.To.HasCity() {
				if d.Distances == nil {
					d.Distances = &stats.ECDF{}
				}
				d.Distances.Add(c.From.Coord.DistanceKm(c.To.Coord))
			}
		}
	}
	return d
}

// emit appends a change, merging it into the previous one when the two
// are address-contiguous with the same kind and records — boundary
// splits of the sweep must not fragment one logical change.
func (d *Diff) emit(c Change) {
	if n := len(d.Changes); n > 0 {
		p := &d.Changes[n-1]
		if p.Kind == c.Kind && p.From == c.From && p.To == c.To &&
			uint64(p.Range.Hi)+1 == uint64(c.Range.Lo) {
			p.Range.Hi = c.Range.Hi
			return
		}
	}
	d.Changes = append(d.Changes, c)
}

// Apply replays the diff onto the older database and returns the
// flattened entries of the newer one: Apply(Compare(a, b), a) equals
// Flatten(b). It is the diff engine's round-trip property — the diff
// loses nothing.
func (d *Diff) Apply(old *geodb.DB) []Entry {
	var out []Entry
	ci := 0
	for _, e := range Flatten(old) {
		lo := uint64(e.Range.Lo)
		hi := uint64(e.Range.Hi)
		for lo <= hi {
			for ci < len(d.Changes) && uint64(d.Changes[ci].Range.Hi) < lo {
				ci++
			}
			if ci == len(d.Changes) || uint64(d.Changes[ci].Range.Lo) > hi {
				out = append(out, Entry{Range: ipx.Range{Lo: ipx.Addr(lo), Hi: ipx.Addr(hi)}, Rec: e.Rec})
				break
			}
			c := d.Changes[ci]
			if clo := uint64(c.Range.Lo); clo > lo {
				out = append(out, Entry{Range: ipx.Range{Lo: ipx.Addr(lo), Hi: ipx.Addr(clo - 1)}, Rec: e.Rec})
				lo = clo
			}
			cut := uint64(c.Range.Hi)
			if cut > hi {
				cut = hi
			}
			if c.Kind == Moved {
				out = append(out, Entry{Range: ipx.Range{Lo: ipx.Addr(lo), Hi: ipx.Addr(cut)}, Rec: c.To})
			}
			// Removed segments drop; Added segments never overlap old
			// coverage and are spliced in below.
			lo = cut + 1
		}
	}
	for _, c := range d.Changes {
		if c.Kind == Added {
			out = append(out, Entry{Range: c.Range, Rec: c.To})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Range.Lo < out[j].Range.Lo })
	// Re-merge across splice points so the result is in flattened form.
	merged := out[:0]
	for _, e := range out {
		if n := len(merged); n > 0 &&
			merged[n-1].Rec == e.Rec && uint64(merged[n-1].Range.Hi)+1 == uint64(e.Range.Lo) {
			merged[n-1].Range.Hi = e.Range.Hi
			continue
		}
		merged = append(merged, e)
	}
	return merged
}
