//go:build !linux

package snapshot

import (
	"io"
	"os"
)

// mapFile reads the whole file into the heap — the portable fallback
// when mmap is unavailable. Still a single sequential read; the decoded
// index then aliases the heap buffer exactly as it would the mapping.
func mapFile(f *os.File, size int64) (data []byte, unmap func() error, mapped bool, err error) {
	data, err = io.ReadAll(f)
	if err != nil {
		return nil, nil, false, err
	}
	return data, func() error { return nil }, false, nil
}
