// Package snapshot compiles a built geodb.DB into a versioned,
// checksummed, alignment-padded binary file — the project's answer to
// MaxMind's .mmdb: the artifact a serving fleet ships to replicas and an
// archive accumulates over time. The file holds the serving
// representation itself (the FlatIndex SoA arrays, the /16 jump table,
// the per-range record indices and the deduplicated record table), so
// loading is one read — a single mmap on linux, an io.ReadAll fallback
// elsewhere — followed by O(records) table decoding and O(ranges)
// integer validation. No per-range decoding happens; the mapped sections
// ARE the slices the Finder probes, and lookups are bit-identical to the
// in-memory index the database was compiled from.
//
// Layout (all integers little-endian; every section 64-byte aligned):
//
//	header (120 bytes):
//	  magic      "RGSP"                   4 bytes
//	  version    uint16                   currently 1
//	  flags      uint16                   reserved, must be 0
//	  checksum   uint64                   FNV-1a over the whole file with
//	                                      this field zeroed
//	  buildEpoch int64                    unix seconds, writer-supplied
//	  rangeCount uint64
//	  recCount   uint64
//	  nameOff, nameLen                    uint64 each: database name
//	  srcOff, srcLen                      uint64 each: source format
//	  losOff, hisOff, valsOff, jumpOff    uint64 each
//	  recsOff, recsLen                    uint64 each
//	sections (in file order, zero-padded to 64-byte boundaries):
//	  name       raw bytes
//	  source     raw bytes
//	  los        rangeCount × uint32      interval lower bounds
//	  his        rangeCount × uint32      interval upper bounds
//	  vals       rangeCount × uint32      record-table indices
//	  jump       65537 × int32            /16 jump table
//	  records    recCount variable-length entries:
//	               country 2 bytes (ISO2, zero-padded), res uint8,
//	               blockBits uint8, lat float64, lon float64,
//	               cityLen uint16, city bytes
//
// The checksum doubles as the snapshot's generation id (its 16-digit hex
// form); two snapshots with identical content and build epoch share a
// generation, and any change to either produces a new one.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"

	"routergeo/internal/geodb"
)

const (
	// Magic identifies a snapshot file's first four bytes.
	Magic = "RGSP"
	// Version is the current format version.
	Version = 1
	// Ext is the conventional snapshot file extension.
	Ext = ".rgsnap"

	headerSize = 120
	align      = 64
	jumpLen    = 1<<16 + 1

	// maxRecords bounds the declared record count so a forged header
	// cannot demand a runaway allocation (each record costs ≥ 22 bytes).
	maxRecords = 1 << 26
	// maxRanges likewise bounds the declared range count.
	maxRanges = 1 << 28
)

// Meta is the writer-supplied provenance stored in a snapshot header.
type Meta struct {
	// BuildEpoch is the build time in unix seconds. The writer supplies
	// it (rather than the package reading a clock) so snapshot bytes are
	// a pure function of their inputs.
	BuildEpoch int64
	// SourceFormat names what the snapshot was compiled from, e.g.
	// "study", "dbfile", "csv".
	SourceFormat string
}

// Info describes a loaded or inspected snapshot.
type Info struct {
	Name         string
	Generation   string // hex form of Checksum
	Checksum     uint64
	BuildEpoch   int64
	SourceFormat string
	Ranges       int
	Records      int
	Size         int64
	Mapped       bool // true when the sections are memory-mapped
}

// GenerationID formats a checksum as the generation id snapshots,
// /v2/databases and ETags all use.
func GenerationID(checksum uint64) string { return fmt.Sprintf("%016x", checksum) }

// Write serializes db into the snapshot format. The payload is
// assembled in memory (sections are padded and offsets are known before
// the header is emitted), checksummed, and written in one pass.
func Write(w io.Writer, db *geodb.DB, meta Meta) error {
	los, his, vals, jump, recs := db.Parts()
	if len(recs) > maxRecords {
		return fmt.Errorf("snapshot: %d records exceed the format bound", len(recs))
	}
	if len(los) > maxRanges {
		return fmt.Errorf("snapshot: %d ranges exceed the format bound", len(los))
	}

	var payload bytes.Buffer
	// section appends raw bytes padded to the alignment boundary and
	// returns the absolute file offset the section starts at.
	section := func(b []byte) uint64 {
		pad := (align - (headerSize+payload.Len())%align) % align
		payload.Write(make([]byte, pad))
		off := uint64(headerSize + payload.Len())
		payload.Write(b)
		return off
	}
	u32s := func(n int, at func(int) uint32) []byte {
		b := make([]byte, 4*n)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(b[4*i:], at(i))
		}
		return b
	}

	name := []byte(db.Name())
	src := []byte(meta.SourceFormat)
	nameOff := section(name)
	srcOff := section(src)
	losOff := section(u32s(len(los), func(i int) uint32 { return uint32(los[i]) }))
	hisOff := section(u32s(len(his), func(i int) uint32 { return uint32(his[i]) }))
	valsOff := section(u32s(len(vals), func(i int) uint32 { return vals[i] }))
	jumpOff := section(u32s(len(jump), func(i int) uint32 { return uint32(jump[i]) }))

	var rb bytes.Buffer
	for _, r := range recs {
		if len(r.Country) > 2 {
			return fmt.Errorf("snapshot: country code %q longer than ISO2", r.Country)
		}
		var cc [2]byte
		copy(cc[:], r.Country)
		rb.Write(cc[:])
		rb.WriteByte(byte(r.Resolution))
		rb.WriteByte(r.BlockBits)
		var f [8]byte
		binary.LittleEndian.PutUint64(f[:], math.Float64bits(r.Coord.Lat))
		rb.Write(f[:])
		binary.LittleEndian.PutUint64(f[:], math.Float64bits(r.Coord.Lon))
		rb.Write(f[:])
		if len(r.City) > 1<<16-1 {
			return fmt.Errorf("snapshot: city name too long (%d bytes)", len(r.City))
		}
		var cl [2]byte
		binary.LittleEndian.PutUint16(cl[:], uint16(len(r.City)))
		rb.Write(cl[:])
		rb.WriteString(r.City)
	}
	recsOff := section(rb.Bytes())

	hdr := make([]byte, headerSize)
	copy(hdr, Magic)
	binary.LittleEndian.PutUint16(hdr[4:], Version)
	binary.LittleEndian.PutUint16(hdr[6:], 0) // flags
	// hdr[8:16] is the checksum, patched below.
	binary.LittleEndian.PutUint64(hdr[16:], uint64(meta.BuildEpoch))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(los)))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(len(recs)))
	binary.LittleEndian.PutUint64(hdr[40:], nameOff)
	binary.LittleEndian.PutUint64(hdr[48:], uint64(len(name)))
	binary.LittleEndian.PutUint64(hdr[56:], srcOff)
	binary.LittleEndian.PutUint64(hdr[64:], uint64(len(src)))
	binary.LittleEndian.PutUint64(hdr[72:], losOff)
	binary.LittleEndian.PutUint64(hdr[80:], hisOff)
	binary.LittleEndian.PutUint64(hdr[88:], valsOff)
	binary.LittleEndian.PutUint64(hdr[96:], jumpOff)
	binary.LittleEndian.PutUint64(hdr[104:], recsOff)
	binary.LittleEndian.PutUint64(hdr[112:], uint64(rb.Len()))

	sum := checksum(hdr, payload.Bytes())
	binary.LittleEndian.PutUint64(hdr[8:], sum)

	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// checksum hashes header (with its checksum field treated as zero)
// followed by the payload.
func checksum(hdr, payload []byte) uint64 {
	var zero [8]byte
	h := fnv.New64a()
	_, _ = h.Write(hdr[:8])
	_, _ = h.Write(zero[:])
	_, _ = h.Write(hdr[16:])
	_, _ = h.Write(payload)
	return h.Sum64()
}

// WriteFile writes db to path atomically: the snapshot lands under a
// temporary name in the same directory and is renamed into place, so a
// concurrently polling reloader never observes a half-written file.
func WriteFile(path string, db *geodb.DB, meta Meta) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := Write(f, db, meta); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
