//go:build linux

package snapshot

import (
	"os"
	"syscall"
)

// mapFile memory-maps the whole file read-only. The mapping outlives the
// file descriptor, so Open can close f immediately; Handle.Close
// munmaps. Loading is O(1) in the data — pages fault in on first probe.
func mapFile(f *os.File, size int64) (data []byte, unmap func() error, mapped bool, err error) {
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, false, err
	}
	return data, func() error { return syscall.Munmap(data) }, true, nil
}
