package snapshot

import (
	"testing"

	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

func mustBuild(t testing.TB, name string, add func(b *geodb.Builder)) *geodb.DB {
	t.Helper()
	b := geodb.NewBuilder(name)
	add(b)
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestDiffIdenticalIsEmpty(t *testing.T) {
	a := buildRandom(t, 31, 2000)
	b := buildRandom(t, 31, 2000)
	d := Compare(a, b)
	if len(d.Changes) != 0 || d.AddedAddrs+d.RemovedAddrs+d.MovedAddrs != 0 {
		t.Fatalf("identical databases produced %d changes", len(d.Changes))
	}
	if d.UnchangedAddrs == 0 {
		t.Fatal("identical databases report no unchanged coverage")
	}
	if d.Distances != nil {
		t.Fatal("no moves, but a distance ECDF exists")
	}
}

func TestDiffClassification(t *testing.T) {
	dallas := geodb.Record{
		Country: "US", City: "Dallas",
		Coord: geo.Coordinate{Lat: 32.7767, Lon: -96.797}, Resolution: geodb.ResolutionCity,
		BlockBits: 24,
	}
	miami := geodb.Record{
		Country: "US", City: "Miami",
		Coord: geo.Coordinate{Lat: 25.7617, Lon: -80.1918}, Resolution: geodb.ResolutionCity,
		BlockBits: 24,
	}
	de := geodb.Record{Country: "DE", Resolution: geodb.ResolutionCountry, BlockBits: 24}
	old := mustBuild(t, "old", func(b *geodb.Builder) {
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/24"), dallas) // will move to Miami
		b.AddPrefix(0, ipx.MustParsePrefix("10.1.0.0/24"), de)     // will be removed
		b.AddPrefix(0, ipx.MustParsePrefix("10.2.0.0/24"), de)     // unchanged
	})
	niu := mustBuild(t, "new", func(b *geodb.Builder) {
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/24"), miami)
		b.AddPrefix(0, ipx.MustParsePrefix("10.2.0.0/24"), de)
		b.AddPrefix(0, ipx.MustParsePrefix("10.3.0.0/24"), de) // added
	})
	d := Compare(old, niu)
	if d.AddedSegments != 1 || d.RemovedSegments != 1 || d.MovedSegments != 1 || d.UnchangedSegments != 1 {
		t.Fatalf("segments = added %d removed %d moved %d unchanged %d, want 1 each",
			d.AddedSegments, d.RemovedSegments, d.MovedSegments, d.UnchangedSegments)
	}
	if d.AddedAddrs != 256 || d.RemovedAddrs != 256 || d.MovedAddrs != 256 || d.UnchangedAddrs != 256 {
		t.Fatalf("addrs = added %d removed %d moved %d unchanged %d, want 256 each",
			d.AddedAddrs, d.RemovedAddrs, d.MovedAddrs, d.UnchangedAddrs)
	}
	if d.Distances == nil || d.Distances.N() != 1 {
		t.Fatal("one city-to-city move must yield one distance sample")
	}
	want := dallas.Coord.DistanceKm(miami.Coord)
	if got := d.Distances.Max(); got != want {
		t.Fatalf("move distance = %v, want %v", got, want)
	}
	for _, c := range d.Changes {
		switch c.Kind {
		case Moved:
			if c.From != dallas || c.To != miami {
				t.Fatalf("moved segment records wrong: %+v", c)
			}
		case Removed:
			if c.From != de || c.To != (geodb.Record{}) {
				t.Fatalf("removed segment records wrong: %+v", c)
			}
		case Added:
			if c.From != (geodb.Record{}) || c.To != de {
				t.Fatalf("added segment records wrong: %+v", c)
			}
		}
	}
}

func TestDiffCountryMoveHasNoDistance(t *testing.T) {
	de := geodb.Record{Country: "DE", Resolution: geodb.ResolutionCountry}
	fr := geodb.Record{Country: "FR", Resolution: geodb.ResolutionCountry}
	old := mustBuild(t, "old", func(b *geodb.Builder) {
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/24"), de)
	})
	niu := mustBuild(t, "new", func(b *geodb.Builder) {
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/24"), fr)
	})
	d := Compare(old, niu)
	if d.MovedSegments != 1 {
		t.Fatalf("moved segments = %d, want 1", d.MovedSegments)
	}
	if d.Distances != nil {
		t.Fatal("country-only move must not produce a distance sample")
	}
}

func TestFlattenMergesFragmentation(t *testing.T) {
	de := geodb.Record{Country: "DE", Resolution: geodb.ResolutionCountry, BlockBits: 24}
	frag := mustBuild(t, "frag", func(b *geodb.Builder) {
		b.Add(0, ipx.Range{
			Lo: ipx.MustParseAddr("10.0.0.0"),
			Hi: ipx.MustParseAddr("10.0.0.127"),
		}, de)
		b.Add(0, ipx.Range{
			Lo: ipx.MustParseAddr("10.0.0.128"),
			Hi: ipx.MustParseAddr("10.0.0.255"),
		}, de)
	})
	whole := mustBuild(t, "whole", func(b *geodb.Builder) {
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/24"), de)
	})
	ef, ew := Flatten(frag), Flatten(whole)
	if len(ef) != len(ew) {
		t.Fatalf("flatten lengths differ: %d vs %d", len(ef), len(ew))
	}
	for i := range ef {
		if ef[i] != ew[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, ef[i], ew[i])
		}
	}
	if d := Compare(frag, whole); len(d.Changes) != 0 {
		t.Fatalf("equivalent databases diff as %d changes", len(d.Changes))
	}
}

// TestDiffApplyRoundTrip is the engine's core promise: the diff loses
// nothing — replaying Compare(a, b) onto a reconstructs b's flattened
// range set exactly, across random unrelated databases.
func TestDiffApplyRoundTrip(t *testing.T) {
	cases := []struct{ seedA, seedB int64 }{
		{7, 7}, {7, 8}, {3, 41}, {100, 5},
	}
	for _, tc := range cases {
		a := buildRandom(t, tc.seedA, 3000)
		b := buildRandom(t, tc.seedB, 2500)
		d := Compare(a, b)
		got := d.Apply(a)
		want := Flatten(b)
		if len(got) != len(want) {
			t.Fatalf("seeds %d/%d: apply produced %d entries, want %d",
				tc.seedA, tc.seedB, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seeds %d/%d: entry %d differs:\n got %+v\nwant %+v",
					tc.seedA, tc.seedB, i, got[i], want[i])
			}
		}
	}
}

func TestDiffDeterministic(t *testing.T) {
	a := buildRandom(t, 9, 2000)
	b := buildRandom(t, 10, 2000)
	d1 := Compare(a, b)
	d2 := Compare(a, b)
	if len(d1.Changes) != len(d2.Changes) {
		t.Fatal("repeated Compare disagrees with itself")
	}
	for i := range d1.Changes {
		if d1.Changes[i] != d2.Changes[i] {
			t.Fatalf("change %d differs across runs", i)
		}
	}
}

// BenchmarkDiff measures the sweep over two 50k-range databases with
// partial overlap — the per-epoch cost of the longitudinal series.
func BenchmarkDiff(b *testing.B) {
	dba := buildRandom(b, 21, 50000)
	dbb := buildRandom(b, 22, 50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := Compare(dba, dbb); len(d.Changes) == 0 {
			b.Fatal("unrelated databases diffed empty")
		}
	}
}
