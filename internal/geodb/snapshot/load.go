package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"unsafe"

	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

// Sentinel errors a loader failure wraps, so callers (and the corruption
// tests) can classify what went wrong without string matching.
var (
	ErrTruncated   = errors.New("snapshot: file truncated")
	ErrBadMagic    = errors.New("snapshot: bad magic")
	ErrBadVersion  = errors.New("snapshot: unsupported version")
	ErrBadChecksum = errors.New("snapshot: checksum mismatch")
	ErrMisaligned  = errors.New("snapshot: misaligned section")
	ErrCorrupt     = errors.New("snapshot: corrupt contents")
)

// hostLittle reports whether this machine stores integers little-endian
// — the precondition for pointing slices directly into the file image.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

type header struct {
	checksum             uint64
	buildEpoch           int64
	rangeCount, recCount uint64
	nameOff, nameLen     uint64
	srcOff, srcLen       uint64
	losOff, hisOff       uint64
	valsOff, jumpOff     uint64
	recsOff, recsLen     uint64
}

// Decode validates a snapshot image and turns it into a servable DB.
// Every integrity property is checked up front — magic, version, flags,
// whole-file checksum, section bounds and alignment, index invariants,
// record references — so a corrupted file fails loudly here rather than
// serving wrong answers later. On a little-endian host the returned DB's
// index slices alias data directly (zero copy, zero per-range work);
// only the variable-length record table is decoded, O(records).
//
// Because the index may alias data, the caller must keep data valid (and,
// for mmap, mapped) for the lifetime of the returned DB.
func Decode(data []byte) (*geodb.DB, Info, error) {
	var info Info
	if len(data) < headerSize {
		return nil, info, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(data), headerSize)
	}
	if string(data[:4]) != Magic {
		return nil, info, fmt.Errorf("%w: got %q", ErrBadMagic, data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != Version {
		return nil, info, fmt.Errorf("%w: file version %d, this build reads %d", ErrBadVersion, v, Version)
	}
	if fl := binary.LittleEndian.Uint16(data[6:]); fl != 0 {
		return nil, info, fmt.Errorf("%w: reserved flags 0x%04x set", ErrBadVersion, fl)
	}

	var h header
	h.checksum = binary.LittleEndian.Uint64(data[8:])
	h.buildEpoch = int64(binary.LittleEndian.Uint64(data[16:]))
	h.rangeCount = binary.LittleEndian.Uint64(data[24:])
	h.recCount = binary.LittleEndian.Uint64(data[32:])
	h.nameOff = binary.LittleEndian.Uint64(data[40:])
	h.nameLen = binary.LittleEndian.Uint64(data[48:])
	h.srcOff = binary.LittleEndian.Uint64(data[56:])
	h.srcLen = binary.LittleEndian.Uint64(data[64:])
	h.losOff = binary.LittleEndian.Uint64(data[72:])
	h.hisOff = binary.LittleEndian.Uint64(data[80:])
	h.valsOff = binary.LittleEndian.Uint64(data[88:])
	h.jumpOff = binary.LittleEndian.Uint64(data[96:])
	h.recsOff = binary.LittleEndian.Uint64(data[104:])
	h.recsLen = binary.LittleEndian.Uint64(data[112:])

	if got := checksum(data[:headerSize], data[headerSize:]); got != h.checksum {
		return nil, info, fmt.Errorf("%w: header says %016x, file hashes to %016x", ErrBadChecksum, h.checksum, got)
	}
	if h.rangeCount > maxRanges {
		return nil, info, fmt.Errorf("%w: %d ranges exceed the format bound", ErrCorrupt, h.rangeCount)
	}
	if h.recCount > maxRecords {
		return nil, info, fmt.Errorf("%w: %d records exceed the format bound", ErrCorrupt, h.recCount)
	}

	sect := func(name string, off, length uint64) ([]byte, error) {
		if off%align != 0 {
			return nil, fmt.Errorf("%w: %s section at offset %d (alignment %d)", ErrMisaligned, name, off, align)
		}
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("%w: %s section [%d,+%d) outside %d-byte file", ErrTruncated, name, off, length, len(data))
		}
		return data[off : off+length], nil
	}
	nameB, err := sect("name", h.nameOff, h.nameLen)
	if err != nil {
		return nil, info, err
	}
	srcB, err := sect("source", h.srcOff, h.srcLen)
	if err != nil {
		return nil, info, err
	}
	losB, err := sect("los", h.losOff, 4*h.rangeCount)
	if err != nil {
		return nil, info, err
	}
	hisB, err := sect("his", h.hisOff, 4*h.rangeCount)
	if err != nil {
		return nil, info, err
	}
	valsB, err := sect("vals", h.valsOff, 4*h.rangeCount)
	if err != nil {
		return nil, info, err
	}
	jumpB, err := sect("jump", h.jumpOff, 4*jumpLen)
	if err != nil {
		return nil, info, err
	}
	recsB, err := sect("records", h.recsOff, h.recsLen)
	if err != nil {
		return nil, info, err
	}

	recs, err := decodeRecords(recsB, int(h.recCount))
	if err != nil {
		return nil, info, err
	}

	los := viewOrCopy[ipx.Addr](losB)
	his := viewOrCopy[ipx.Addr](hisB)
	vals := viewOrCopy[uint32](valsB)
	jump := viewOrCopy[int32](jumpB)
	idx, err := ipx.FlatIndexFromSoA(los, his, vals, jump)
	if err != nil {
		return nil, info, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	info = Info{
		Name:         string(nameB),
		Generation:   GenerationID(h.checksum),
		Checksum:     h.checksum,
		BuildEpoch:   h.buildEpoch,
		SourceFormat: string(srcB),
		Ranges:       int(h.rangeCount),
		Records:      int(h.recCount),
		Size:         int64(len(data)),
	}
	db, err := geodb.FromIndex(info.Name, idx, recs, geodb.Meta{
		Generation:   info.Generation,
		Checksum:     h.checksum,
		BuildEpoch:   h.buildEpoch,
		SourceFormat: "snapshot",
	})
	if err != nil {
		return nil, Info{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return db, info, nil
}

// viewOrCopy reinterprets a section as a []T of 4-byte little-endian
// integers. On a little-endian host with a 4-byte-aligned section start
// (guaranteed by the 64-byte section alignment, but re-checked because
// the heap fallback path may hand us any buffer) the file bytes back the
// slice directly; otherwise the values are decoded into a fresh slice.
func viewOrCopy[T ~uint32 | ~int32](b []byte) []T {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]T, n)
	for i := range out {
		out[i] = T(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// decodeRecords parses the variable-length record table. This is the
// only per-entry decoding a snapshot load performs, and it is bounded by
// the number of distinct records, not the number of ranges.
func decodeRecords(b []byte, n int) ([]geodb.Record, error) {
	const fixed = 22 // country 2 + res 1 + blockBits 1 + lat 8 + lon 8 + cityLen 2
	recs := make([]geodb.Record, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < fixed {
			return nil, fmt.Errorf("%w: record %d truncated (%d bytes left)", ErrTruncated, i, len(b))
		}
		var r geodb.Record
		cc := b[:2]
		for len(cc) > 0 && cc[len(cc)-1] == 0 {
			cc = cc[:len(cc)-1]
		}
		r.Country = string(cc)
		r.Resolution = geodb.Resolution(b[2])
		if r.Resolution > geodb.ResolutionCity {
			return nil, fmt.Errorf("%w: record %d has resolution byte %d", ErrCorrupt, i, b[2])
		}
		r.BlockBits = b[3]
		lat := math.Float64frombits(binary.LittleEndian.Uint64(b[4:]))
		lon := math.Float64frombits(binary.LittleEndian.Uint64(b[12:]))
		if math.IsNaN(lat) || math.IsNaN(lon) || math.Abs(lat) > 90 || math.Abs(lon) > 180 {
			return nil, fmt.Errorf("%w: record %d has coordinate (%v, %v)", ErrCorrupt, i, lat, lon)
		}
		r.Coord = geo.Coordinate{Lat: lat, Lon: lon}
		cityLen := int(binary.LittleEndian.Uint16(b[20:]))
		if len(b) < fixed+cityLen {
			return nil, fmt.Errorf("%w: record %d city truncated", ErrTruncated, i)
		}
		r.City = string(b[fixed : fixed+cityLen])
		b = b[fixed+cityLen:]
		recs = append(recs, r)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d stray bytes after record table", ErrCorrupt, len(b))
	}
	return recs, nil
}

// Handle is an open snapshot: the decoded DB plus whatever backs it (an
// mmap on linux, a heap buffer elsewhere).
type Handle struct {
	db    *geodb.DB
	info  Info
	unmap func() error
}

// DB returns the servable database. Its index may alias the mapping;
// do not use it after Close.
func (h *Handle) DB() *geodb.DB { return h.db }

// Info describes the snapshot the handle was opened from.
func (h *Handle) Info() Info { return h.info }

// Close releases the backing mapping. The caller must guarantee no
// lookups are in flight or possible afterwards — in the server this is
// exactly what the generation refcount drain establishes.
func (h *Handle) Close() error {
	if h.unmap == nil {
		return nil
	}
	u := h.unmap
	h.unmap = nil
	return u()
}

// Open maps (linux) or reads (elsewhere) a snapshot file and decodes it.
func Open(path string) (*Handle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < headerSize {
		return nil, fmt.Errorf("%w: %s is %d bytes", ErrTruncated, path, st.Size())
	}
	data, unmap, mapped, err := mapFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("snapshot: open %s: %w", path, err)
	}
	db, info, err := Decode(data)
	if err != nil {
		_ = unmap()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	info.Size = st.Size()
	info.Mapped = mapped
	return &Handle{db: db, info: info, unmap: unmap}, nil
}

// Inspect reads just enough of a snapshot to describe it, without
// keeping a mapping open.
func Inspect(path string) (Info, error) {
	h, err := Open(path)
	if err != nil {
		return Info{}, err
	}
	info := h.Info()
	_ = h.Close()
	return info, nil
}

// HeaderChecksum reads only the checksum field from a snapshot file's
// header — the cheapest content fingerprint the format offers. It does
// not validate the file; a reload poller uses it to notice a same-size
// republish that a size+mtime stamp would miss, and leaves full
// validation to the Open that follows.
func HeaderChecksum(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr [16]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: %s: %v", ErrTruncated, path, err)
	}
	if string(hdr[:4]) != Magic {
		return 0, fmt.Errorf("%w: %s", ErrBadMagic, path)
	}
	return binary.LittleEndian.Uint64(hdr[8:16]), nil
}
