package snapshot

import (
	"testing"

	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

// FuzzDecode hardens the loader: arbitrary bytes must produce an error
// or a valid, queryable database — never a panic, index fault or runaway
// allocation. The corpus seeds a valid snapshot so mutations explore the
// deep paths (section slicing, record decoding, index validation).
func FuzzDecode(f *testing.F) {
	db := buildSample(f)
	f.Add(snap(f, db, Meta{BuildEpoch: 1, SourceFormat: "study"}))
	f.Add([]byte(Magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, info, err := Decode(data)
		if err != nil {
			return
		}
		if got.Len() != info.Ranges {
			t.Fatalf("decoded %d ranges, info says %d", got.Len(), info.Ranges)
		}
		got.Lookup(ipx.MustParseAddr("10.0.0.1"))
		got.Walk(func(r ipx.Range, rec geodb.Record) bool {
			if r.Lo > r.Hi {
				t.Fatalf("decoded inverted range %v", r)
			}
			return true
		})
	})
}
