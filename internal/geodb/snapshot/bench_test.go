package snapshot

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

func benchImage(b *testing.B, entries int) ([]byte, *geodb.DB) {
	b.Helper()
	db := buildRandom(b, 21, entries)
	return snap(b, db, Meta{BuildEpoch: 1, SourceFormat: "bench"}), db
}

// BenchmarkWrite measures compiling a 50k-range database to snapshot
// bytes.
func BenchmarkWrite(b *testing.B) {
	db := buildRandom(b, 21, 50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, db, Meta{BuildEpoch: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecode measures turning a heap-resident snapshot image into a
// servable DB — the cost a non-mmap load pays after reading the file.
func BenchmarkDecode(b *testing.B) {
	data, _ := benchImage(b, 50000)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpen measures the full file path: open, map (linux) or read,
// validate, decode. This is the number hot reload pays per generation.
func BenchmarkOpen(b *testing.B) {
	data, _ := benchImage(b, 50000)
	path := filepath.Join(b.TempDir(), "bench"+Ext)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := Open(path)
		if err != nil {
			b.Fatal(err)
		}
		h.Close()
	}
}

// BenchmarkLookupHeap probes a snapshot decoded from a heap buffer;
// BenchmarkLookupMapped probes one served straight off the file mapping
// (the heap fallback on non-linux, so the name stays comparable across
// platforms). Together they are the mmap-vs-heap serving comparison.
func BenchmarkLookupHeap(b *testing.B) {
	data, _ := benchImage(b, 50000)
	db, _, err := Decode(data)
	if err != nil {
		b.Fatal(err)
	}
	benchLookups(b, db)
}

func BenchmarkLookupMapped(b *testing.B) {
	data, _ := benchImage(b, 50000)
	path := filepath.Join(b.TempDir(), "bench"+Ext)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		b.Fatal(err)
	}
	h, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	benchLookups(b, h.DB())
}

func benchLookups(b *testing.B, db *geodb.DB) {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	queries := make([]ipx.Addr, 8192)
	lo, hi := ipx.MustParseAddr("20.0.0.0"), ipx.MustParseAddr("40.0.0.0")
	for i := range queries {
		queries[i] = lo + ipx.Addr(rng.Int63n(int64(hi-lo)))
	}
	find := db.Finder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		find(queries[i%len(queries)])
	}
}
