package httpapi

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"routergeo/internal/obs"
)

// Circuit-breaker defaults, applied by NewClient; WithBreaker overrides,
// WithBreaker(0, ...) disables.
const (
	// DefaultBreakerThreshold is how many consecutive failed attempts
	// trip the breaker open.
	DefaultBreakerThreshold = 5
	// DefaultBreakerCooldown is how long an open breaker rejects
	// requests before letting one half-open probe through.
	DefaultBreakerCooldown = 2 * time.Second
)

// ErrCircuitOpen is returned (wrapped with the host) when the breaker
// rejects a request without dialing: the host failed repeatedly and its
// cool-down has not elapsed.
var ErrCircuitOpen = errors.New("httpapi: circuit breaker open")

// Breaker states. The wire/JSON form is the lowercase name.
const (
	breakerClosed int64 = iota
	breakerHalfOpen
	breakerOpen
)

// breakerStateName maps a state gauge value to its JSON name.
func breakerStateName(v int64) string {
	switch v {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerStats is one host's circuit-breaker view inside a StatsResponse
// (and Client.BreakerStats).
type BreakerStats struct {
	// State is "closed", "half-open" or "open".
	State string `json:"state"`
	// Opens counts closed→open transitions.
	Opens int64 `json:"opens"`
	// ShortCircuits counts requests rejected without dialing.
	ShortCircuits int64 `json:"short_circuits"`
}

// breaker is a per-host circuit breaker: closed until threshold
// consecutive failures, then open for cooldown, then half-open letting a
// single probe decide between closing again and re-opening. It protects
// a flailing server from retry storms and lets the degradation path fail
// over to a local fallback quickly instead of timing out per address.
type breaker struct {
	host      string
	threshold int
	cooldown  time.Duration
	// now is swapped out by tests to walk the cool-down clock.
	now func() time.Time

	mu       sync.Mutex
	state    int64
	failures int
	openedAt time.Time
	probing  bool

	opens         int64
	shortCircuits int64

	// Optional registry instruments (nil when the client has no
	// metrics sink attached).
	stateGauge   *obs.Gauge
	opensCtr     *obs.Counter
	shortCircCtr *obs.Counter
}

func newBreaker(host string, threshold int, cooldown time.Duration) *breaker {
	return &breaker{
		host:      host,
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
	}
}

// bindRegistry registers the breaker's instruments under
// client.breaker.<host>.*, the prefix /v2/stats assembles its breakers
// section from.
func (b *breaker) bindRegistry(reg *obs.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	prefix := "client.breaker." + b.host + "."
	b.stateGauge = reg.Gauge(prefix + "state")
	b.opensCtr = reg.Counter(prefix + "opens")
	b.shortCircCtr = reg.Counter(prefix + "short_circuits")
	b.stateGauge.Set(b.state)
}

// setState transitions the breaker, mirrors the gauge, and announces the
// transition on the process event bus (obs.Publish never blocks, so
// holding mu across it is safe). Callers hold mu.
func (b *breaker) setState(s int64) {
	old := b.state
	b.state = s
	if b.stateGauge != nil {
		b.stateGauge.Set(s)
	}
	obs.Publish("breaker",
		"host", b.host, "from", breakerStateName(old), "to", breakerStateName(s))
}

// allow reports whether a request may proceed. Open breakers reject with
// ErrCircuitOpen until the cool-down elapses; half-open breakers admit
// exactly one probe at a time.
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.setState(breakerHalfOpen)
			b.probing = true
			return nil
		}
	case breakerHalfOpen:
		if !b.probing {
			b.probing = true
			return nil
		}
	}
	b.shortCircuits++
	if b.shortCircCtr != nil {
		b.shortCircCtr.Inc()
	}
	return fmt.Errorf("%w (host %s)", ErrCircuitOpen, b.host)
}

// success records a healthy attempt: any state collapses back to closed.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	if b.state != breakerClosed {
		b.setState(breakerClosed)
	}
}

// failure records a failed attempt: threshold consecutive failures trip
// the breaker, and a failed half-open probe re-opens it immediately.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.probing = false
		b.trip()
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	}
}

// trip opens the breaker. Callers hold mu.
func (b *breaker) trip() {
	b.failures = 0
	b.openedAt = b.now()
	b.setState(breakerOpen)
	b.opens++
	if b.opensCtr != nil {
		b.opensCtr.Inc()
	}
}

// stats snapshots the breaker for callers.
func (b *breaker) stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:         breakerStateName(b.state),
		Opens:         b.opens,
		ShortCircuits: b.shortCircuits,
	}
}
