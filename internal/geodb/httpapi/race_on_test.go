//go:build race

package httpapi

// raceEnabled mirrors the stdlib's internal/race.Enabled: allocation
// assertions are skipped under the race detector, whose instrumentation
// allocates on paths that are allocation-free in a normal build.
const raceEnabled = true
