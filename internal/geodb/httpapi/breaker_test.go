package httpapi

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"routergeo/internal/ipx"
	"routergeo/internal/obs"
)

// fakeClock advances only when told, so breaker cool-downs need no real
// waiting.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker("example:80", 3, time.Second)
	b.now = clk.now

	// Closed: failures below the threshold keep admitting.
	for i := 0; i < 2; i++ {
		if err := b.allow(); err != nil {
			t.Fatalf("closed breaker rejected attempt %d: %v", i, err)
		}
		b.failure()
	}
	if got := b.stats(); got.State != "closed" {
		t.Fatalf("state after 2 failures = %q, want closed", got.State)
	}

	// Third consecutive failure trips it open.
	if err := b.allow(); err != nil {
		t.Fatal(err)
	}
	b.failure()
	if got := b.stats(); got.State != "open" || got.Opens != 1 {
		t.Fatalf("state after threshold = %+v, want open with 1 open", got)
	}
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker admitted a request (err = %v)", err)
	}
	if got := b.stats().ShortCircuits; got != 1 {
		t.Fatalf("short circuits = %d, want 1", got)
	}

	// Cool-down elapses: one half-open probe, a second caller is rejected.
	clk.advance(time.Second)
	if err := b.allow(); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if got := b.stats().State; got != "half-open" {
		t.Fatalf("state during probe = %q, want half-open", got)
	}
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("second concurrent probe must be rejected")
	}

	// Failed probe re-opens immediately, full cool-down again.
	b.failure()
	if got := b.stats(); got.State != "open" || got.Opens != 2 {
		t.Fatalf("state after failed probe = %+v, want open with 2 opens", got)
	}

	// Successful probe closes it and clears the failure count.
	clk.advance(time.Second)
	if err := b.allow(); err != nil {
		t.Fatal(err)
	}
	b.success()
	if got := b.stats().State; got != "closed" {
		t.Fatalf("state after good probe = %q, want closed", got)
	}
	b.failure() // one failure must not trip a freshly-closed breaker
	if got := b.stats().State; got != "closed" {
		t.Fatalf("state after single post-recovery failure = %q, want closed", got)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := newBreaker("h", 3, time.Second)
	for i := 0; i < 10; i++ { // alternating failure/success never trips
		b.failure()
		b.failure()
		b.success()
	}
	if got := b.stats(); got.State != "closed" || got.Opens != 0 {
		t.Fatalf("alternating outcomes tripped the breaker: %+v", got)
	}
}

func TestBreakerRegistryInstruments(t *testing.T) {
	reg := obs.NewRegistry()
	b := newBreaker("db.example:9000", 1, time.Minute)
	b.bindRegistry(reg)
	b.failure()
	_ = b.allow() // short-circuits
	snap := reg.Snapshot()
	if got := snap.Gauges["client.breaker.db.example:9000.state"]; got != breakerOpen {
		t.Errorf("state gauge = %d, want %d (open)", got, breakerOpen)
	}
	if got := snap.Counters["client.breaker.db.example:9000.opens"]; got != 1 {
		t.Errorf("opens counter = %d, want 1", got)
	}
	if got := snap.Counters["client.breaker.db.example:9000.short_circuits"]; got != 1 {
		t.Errorf("short_circuits counter = %d, want 1", got)
	}
}

// TestClientBreakerShortCircuitsDeadHost proves the integration: a dead
// host trips the client's breaker, later attempts stop dialing, and the
// cool-down admits a probe that can close it once the host heals.
func TestClientBreakerShortCircuitsDeadHost(t *testing.T) {
	srv := testServer(t)
	ft := &flakyTransport{failures: 1 << 30} // fail "forever" for now
	clk := &fakeClock{t: time.Unix(2000, 0)}
	c := NewClient(srv.URL,
		WithDatabase("alpha"),
		WithRetries(0),
		WithBackoff(0),
		WithBreaker(3, time.Second),
		WithHTTPClient(&http.Client{Transport: ft}))
	c.br.now = clk.now

	ctx := context.Background()
	addr := ipx.MustParseAddr("10.0.0.1")
	for i := 0; i < 3; i++ {
		if _, _, err := c.TryLookup(ctx, addr); err == nil {
			t.Fatalf("attempt %d against failing transport succeeded", i)
		}
	}
	dialsSoFar := ft.calls.Load()
	if _, _, err := c.TryLookup(ctx, addr); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("tripped breaker returned %v, want ErrCircuitOpen", err)
	}
	if got := ft.calls.Load(); got != dialsSoFar {
		t.Fatalf("open breaker still dialed (round trips %d -> %d)", dialsSoFar, got)
	}
	if got := c.BreakerStats(); got.State != "open" || got.Opens != 1 || got.ShortCircuits == 0 {
		t.Fatalf("BreakerStats = %+v", got)
	}

	// Host heals; after the cool-down the probe closes the breaker.
	ft.calls.Store(1 << 30) // past "failures": transport succeeds from here on
	clk.advance(time.Second)
	if _, ok, err := c.TryLookup(ctx, addr); err != nil || !ok {
		t.Fatalf("post-cooldown probe = (_, %v, %v), want success", ok, err)
	}
	if got := c.BreakerStats().State; got != "closed" {
		t.Fatalf("breaker after healed probe = %q, want closed", got)
	}
}

func TestClientBreakerDisabled(t *testing.T) {
	c := NewClient("http://127.0.0.1:1", WithBreaker(0, time.Second))
	if c.br != nil {
		t.Fatal("WithBreaker(0, ...) must disable the breaker")
	}
	if got := c.BreakerStats(); got != (BreakerStats{}) {
		t.Fatalf("disabled breaker stats = %+v, want zero value", got)
	}
}
