package httpapi

import (
	"net/http"
	"strings"
	"sync"
	"time"

	"routergeo/internal/obs"
)

// DBStats is one database's hit/miss tally in a StatsResponse.
type DBStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// StatsResponse is the GET /v2/stats payload. The shape is frozen: it is
// served unchanged from before the obs migration, only the backing
// instruments moved from expvar to an obs.Registry.
type StatsResponse struct {
	// Requests counts every request through the middleware stack.
	Requests int64 `json:"requests"`
	// ByEndpoint counts requests per route (method + path).
	ByEndpoint map[string]int64 `json:"by_endpoint"`
	// Errors counts responses with status >= 400.
	Errors int64 `json:"errors"`
	// LatencyMs holds p50/p90/p99 estimated from the latency histogram
	// (empty until the first request).
	LatencyMs map[string]float64 `json:"latency_ms"`
	// DBs tallies lookup hits and misses per database, across /v1 and
	// /v2 alike.
	DBs map[string]DBStats `json:"dbs"`
	// Draining mirrors /healthz's shutdown state.
	Draining bool `json:"draining"`

	// Generation is the set-level generation id currently serving (also
	// the X-Geodb-Generation header and the basis of the /v2 ETags).
	Generation string `json:"generation,omitempty"`
	// Reloads counts generation swaps since the server started.
	Reloads int64 `json:"reloads,omitempty"`
	// Snapshots is the per-database identity block of the serving
	// generation.
	Snapshots map[string]SnapshotInfo `json:"snapshots,omitempty"`

	// The resilience sections below are omitted when empty, keeping the
	// frozen pre-chaos shape for deployments that use none of it.

	// Chaos tallies injected faults per kind when the server runs with
	// -chaos (registry prefix chaos.injected.).
	Chaos map[string]int64 `json:"chaos,omitempty"`
	// Breakers is the per-host circuit-breaker view of any client that
	// registered its instruments here via WithClientMetrics (registry
	// prefix client.breaker.<host>.).
	Breakers map[string]BreakerStats `json:"breakers,omitempty"`
	// Taint tallies outage bookkeeping from such clients: transport
	// errors, lookups degraded to a local fallback, lookups tainted as
	// false misses (registry prefix client.outage.).
	Taint map[string]int64 `json:"taint,omitempty"`

	// Archive describes the snapshot archive backing ?asof= time travel;
	// omitted when the server keeps no archive (WithSnapshotArchive).
	Archive *ArchiveInfo `json:"archive,omitempty"`
}

// ArchiveInfo is the StatsResponse block describing the generation
// archive.
type ArchiveInfo struct {
	// Generations is how many retired generations are currently held.
	Generations int `json:"generations"`
	// Max is the configured archive capacity.
	Max int `json:"max"`
	// HorizonEpoch is the oldest build epoch still answerable: ?asof=
	// values before it are 404s.
	HorizonEpoch int64 `json:"horizon_epoch"`
}

// dbTally is one database's pair of registry counters, resolved once at
// construction so the lookup hot path never touches the registry lock.
type dbTally struct {
	hits, misses *obs.Counter
}

// metrics is the per-handler instrument set the stats middleware feeds.
// Everything lives in a single obs.Registry (exposed via
// Handler.Registry for the -debug-addr metrics endpoint); the struct
// caches the hot instruments.
type metrics struct {
	reg      *obs.Registry
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
	// swaps counts generation swaps (registry name generation.swaps);
	// /v2/stats surfaces it as Reloads.
	swaps *obs.Counter

	// byEndpoint and byDB counters are created on demand — a hot reload
	// can introduce database names that did not exist at construction —
	// and cached so the common case is one map read under an RLock.
	mu         sync.RWMutex
	byEndpoint map[string]*obs.Counter
	byDB       map[string]*dbTally
}

func newMetrics(dbNames []string) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg:        reg,
		requests:   reg.Counter("http.requests"),
		errors:     reg.Counter("http.errors"),
		latency:    reg.Histogram("http.latency_ms", obs.LatencyBucketsMs),
		swaps:      reg.Counter("generation.swaps"),
		byEndpoint: make(map[string]*obs.Counter),
		byDB:       make(map[string]*dbTally, len(dbNames)),
	}
	// Help text rides into the Prometheus exposition's # HELP lines.
	reg.SetHelp("http.requests", "HTTP requests served, across every route.")
	reg.SetHelp("http.errors", "HTTP responses with status >= 400.")
	reg.SetHelp("http.latency_ms", "Request latency in milliseconds, end to end through the middleware stack.")
	reg.SetHelp("generation.swaps", "Hot-reload generation swaps since the server started.")
	// Pre-seed the initial serving set so its tallies exist (at zero) on
	// the first /v2/stats; later names join on first lookup.
	for _, name := range dbNames {
		m.byDB[name] = &dbTally{
			hits:   reg.Counter("db." + name + ".hits"),
			misses: reg.Counter("db." + name + ".misses"),
		}
	}
	return m
}

// endpointCounter resolves the per-route counter, creating it on first
// use under the registry name "http.by_endpoint.<METHOD PATH>".
func (m *metrics) endpointCounter(route string) *obs.Counter {
	m.mu.RLock()
	c, ok := m.byEndpoint[route]
	m.mu.RUnlock()
	if ok {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.byEndpoint[route]; ok {
		return c
	}
	c = m.reg.Counter("http.by_endpoint." + route)
	m.byEndpoint[route] = c
	return c
}

// middleware counts the request, its endpoint, its status class and its
// latency.
func (m *metrics) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		m.requests.Inc()
		if rec.status >= 400 {
			m.errors.Inc()
		}
		m.endpointCounter(r.Method + " " + r.URL.Path).Inc()
		m.latency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	})
}

// recordLookup tallies one database answer, creating the tally on first
// sight — databases can appear at runtime through a hot reload.
func (m *metrics) recordLookup(db string, found bool) {
	m.mu.RLock()
	t, ok := m.byDB[db]
	m.mu.RUnlock()
	if !ok {
		m.mu.Lock()
		t, ok = m.byDB[db]
		if !ok {
			t = &dbTally{
				hits:   m.reg.Counter("db." + db + ".hits"),
				misses: m.reg.Counter("db." + db + ".misses"),
			}
			m.byDB[db] = t
		}
		m.mu.Unlock()
	}
	if found {
		t.hits.Inc()
	} else {
		t.misses.Inc()
	}
}

// addLookups tallies a whole batch's worth of answers for one database
// in two counter adds, so the /v2/lookup hot path pays the tally-map
// lock once per (request, database) instead of once per address.
func (m *metrics) addLookups(db string, hits, misses int64) {
	m.mu.RLock()
	t, ok := m.byDB[db]
	m.mu.RUnlock()
	if !ok {
		m.mu.Lock()
		t, ok = m.byDB[db]
		if !ok {
			t = &dbTally{
				hits:   m.reg.Counter("db." + db + ".hits"),
				misses: m.reg.Counter("db." + db + ".misses"),
			}
			m.byDB[db] = t
		}
		m.mu.Unlock()
	}
	t.hits.Add(hits)
	t.misses.Add(misses)
}

// snapshot assembles a StatsResponse from the live instruments.
func (m *metrics) snapshot() StatsResponse {
	out := StatsResponse{
		Requests:   m.requests.Value(),
		Errors:     m.errors.Value(),
		ByEndpoint: make(map[string]int64),
		LatencyMs:  make(map[string]float64),
		DBs:        make(map[string]DBStats),
	}
	m.mu.RLock()
	for route, c := range m.byEndpoint {
		out.ByEndpoint[route] = c.Value()
	}
	for name, t := range m.byDB {
		out.DBs[name] = DBStats{Hits: t.hits.Value(), Misses: t.misses.Value()}
	}
	m.mu.RUnlock()
	if m.latency.Count() > 0 {
		out.LatencyMs["p50"] = m.latency.Quantile(0.50)
		out.LatencyMs["p90"] = m.latency.Quantile(0.90)
		out.LatencyMs["p99"] = m.latency.Quantile(0.99)
	}
	fillResilience(&out, m.reg.Snapshot())
	return out
}

// fillResilience populates the omitempty chaos/breaker/taint sections by
// prefix-scanning a registry snapshot. The instruments arrive from two
// sides — the chaos middleware's observer and any Client pointed here by
// WithClientMetrics — so scanning the registry is the only place they
// all meet.
func fillResilience(out *StatsResponse, snap obs.Snapshot) {
	const (
		chaosPrefix   = "chaos.injected."
		breakerPrefix = "client.breaker."
		outagePrefix  = "client.outage."
	)
	// splitBreaker resolves "client.breaker.<host>.<field>"; hosts can
	// themselves contain dots, so the split is on the last one.
	splitBreaker := func(name string) (host, field string, ok bool) {
		rest := strings.TrimPrefix(name, breakerPrefix)
		i := strings.LastIndex(rest, ".")
		if i <= 0 {
			return "", "", false
		}
		return rest[:i], rest[i+1:], true
	}
	breakers := map[string]*BreakerStats{}
	breakerFor := func(host string) *BreakerStats {
		bs, ok := breakers[host]
		if !ok {
			bs = &BreakerStats{State: breakerStateName(breakerClosed)}
			breakers[host] = bs
		}
		return bs
	}
	for name, v := range snap.Counters {
		switch {
		case strings.HasPrefix(name, chaosPrefix):
			if out.Chaos == nil {
				out.Chaos = make(map[string]int64)
			}
			out.Chaos[strings.TrimPrefix(name, chaosPrefix)] = v
		case strings.HasPrefix(name, outagePrefix):
			if out.Taint == nil {
				out.Taint = make(map[string]int64)
			}
			out.Taint[strings.TrimPrefix(name, outagePrefix)] = v
		case strings.HasPrefix(name, breakerPrefix):
			host, field, ok := splitBreaker(name)
			if !ok {
				continue
			}
			switch field {
			case "opens":
				breakerFor(host).Opens = v
			case "short_circuits":
				breakerFor(host).ShortCircuits = v
			}
		}
	}
	for name, v := range snap.Gauges {
		if host, field, ok := splitBreaker(name); ok && field == "state" &&
			strings.HasPrefix(name, breakerPrefix) {
			breakerFor(host).State = breakerStateName(v)
		}
	}
	if len(breakers) > 0 {
		out.Breakers = make(map[string]BreakerStats, len(breakers))
		for host, bs := range breakers {
			out.Breakers[host] = *bs
		}
	}
}
