package httpapi

import (
	"expvar"
	"net/http"
	"sort"
	"sync"
	"time"
)

// latencyWindow is the number of recent request latencies retained for
// quantile estimation.
const latencyWindow = 2048

// DBStats is one database's hit/miss tally in a StatsResponse.
type DBStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// StatsResponse is the GET /v2/stats payload.
type StatsResponse struct {
	// Requests counts every request through the middleware stack.
	Requests int64 `json:"requests"`
	// ByEndpoint counts requests per route (method + path).
	ByEndpoint map[string]int64 `json:"by_endpoint"`
	// Errors counts responses with status >= 400.
	Errors int64 `json:"errors"`
	// LatencyMs holds p50/p90/p99 over the last latencyWindow requests.
	LatencyMs map[string]float64 `json:"latency_ms"`
	// DBs tallies lookup hits and misses per database, across /v1 and
	// /v2 alike.
	DBs map[string]DBStats `json:"dbs"`
	// Draining mirrors /healthz's shutdown state.
	Draining bool `json:"draining"`
}

// dbTally is a pair of atomic counters. expvar.Int is an
// atomically-updated int64 with a JSON String form, which is exactly
// the counter the middleware needs; the instances stay unpublished so
// multiple handlers never fight over global expvar names.
type dbTally struct {
	hits, misses expvar.Int
}

// metrics is the per-handler counter set the stats middleware feeds.
type metrics struct {
	requests expvar.Int
	errors   expvar.Int

	mu         sync.Mutex
	byEndpoint map[string]int64
	latencies  []time.Duration // ring buffer, latest latencyWindow samples
	latIdx     int
	latFull    bool

	// byDB's key set is fixed at construction, so concurrent reads of the
	// map itself are safe; the tallies are atomic.
	byDB map[string]*dbTally
}

func newMetrics(dbNames []string) *metrics {
	m := &metrics{
		byEndpoint: make(map[string]int64),
		latencies:  make([]time.Duration, latencyWindow),
		byDB:       make(map[string]*dbTally, len(dbNames)),
	}
	for _, name := range dbNames {
		m.byDB[name] = &dbTally{}
	}
	return m
}

// middleware counts the request, its endpoint, its status class and its
// latency.
func (m *metrics) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		m.requests.Add(1)
		if rec.status >= 400 {
			m.errors.Add(1)
		}
		elapsed := time.Since(start)
		m.mu.Lock()
		m.byEndpoint[r.Method+" "+r.URL.Path]++
		m.latencies[m.latIdx] = elapsed
		m.latIdx++
		if m.latIdx == len(m.latencies) {
			m.latIdx, m.latFull = 0, true
		}
		m.mu.Unlock()
	})
}

// recordLookup tallies one database answer. Unknown names (impossible
// from the handler, possible from future callers) are dropped rather
// than grown, keeping the map read-only.
func (m *metrics) recordLookup(db string, found bool) {
	t, ok := m.byDB[db]
	if !ok {
		return
	}
	if found {
		t.hits.Add(1)
	} else {
		t.misses.Add(1)
	}
}

// snapshot assembles a StatsResponse from the live counters.
func (m *metrics) snapshot() StatsResponse {
	out := StatsResponse{
		Requests:   m.requests.Value(),
		Errors:     m.errors.Value(),
		ByEndpoint: make(map[string]int64),
		LatencyMs:  make(map[string]float64),
		DBs:        make(map[string]DBStats, len(m.byDB)),
	}
	m.mu.Lock()
	for ep, n := range m.byEndpoint {
		out.ByEndpoint[ep] = n
	}
	n := m.latIdx
	if m.latFull {
		n = len(m.latencies)
	}
	sample := append([]time.Duration(nil), m.latencies[:n]...)
	m.mu.Unlock()

	if len(sample) > 0 {
		sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
		q := func(p float64) float64 {
			i := int(p * float64(len(sample)-1))
			return float64(sample[i]) / float64(time.Millisecond)
		}
		out.LatencyMs["p50"] = q(0.50)
		out.LatencyMs["p90"] = q(0.90)
		out.LatencyMs["p99"] = q(0.99)
	}
	for name, t := range m.byDB {
		out.DBs[name] = DBStats{Hits: t.hits.Value(), Misses: t.misses.Value()}
	}
	return out
}
