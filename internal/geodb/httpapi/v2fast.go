package httpapi

import (
	"encoding/json"
	"io"
	"sync"

	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

// The POST /v2/lookup hot path. The goal is zero allocations per
// request in the steady state for well-formed batches: the body buffer,
// the parsed views into it, the address and index tables, the radix
// scratch and the response buffer all live in a pooled v2State, and the
// per-record response JSON is marshaled once per generation (see
// servedDB) so answering an address is two appends of cached bytes.
// Malformed input drops to encoding/json for exact stdlib semantics and
// error text; those paths may allocate freely.

// servedDB is one database of a generation prepared for the /v2/lookup
// serializer: the sorted serving position (JSON objects of map-typed
// results historically marshaled with sorted keys, so the cache keeps
// that order), the ready `"name":` key bytes and one marshaled
// RecordJSON per entry of the deduplicated record table.
type servedDB struct {
	name    string
	db      *geodb.DB
	keyJSON []byte
	recJSON [][]byte
}

// missJSON is the cached wire form of a lookup miss.
var missJSON = mustJSON(toJSON(geodb.Record{}, false))

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// newServedDBs builds the serializer cache for one generation. Marshal
// cost is per record-table entry (deduplicated), paid once per swap.
func newServedDBs(names []string, byName map[string]*geodb.DB) []servedDB {
	serve := make([]servedDB, 0, len(names))
	for _, name := range names {
		db := byName[name]
		recs := db.Records()
		sd := servedDB{
			name:    name,
			db:      db,
			keyJSON: mustJSON(name),
			recJSON: make([][]byte, len(recs)),
		}
		sd.keyJSON = append(sd.keyJSON, ':')
		for i := range recs {
			sd.recJSON[i] = mustJSON(toJSON(recs[i], true))
		}
		serve = append(serve, sd)
	}
	return serve
}

// v2State is the pooled per-request scratch for POST /v2/lookup.
type v2State struct {
	body  []byte     // request body
	ips   [][]byte   // views into body (or copies on the fallback path)
	addrs []ipx.Addr // parsed addresses; undefined where errs is set
	errs  []string   // per-entry parse error, "" for valid entries
	sel   []int      // selected databases, as positions in generation.serve
	idxs  [][]int32  // per selected database: record index or -1
	hits  []int64    // per selected database: hit tally
	sc    ipx.BatchScratch
	out   []byte // response buffer
}

// v2StatePool recycles request states. Get inline at the use site and
// return through putV2State; the poolescape lint rule keeps pooled
// state from outliving its request.
var v2StatePool = sync.Pool{New: func() any { return new(v2State) }}

func putV2State(st *v2State) { v2StatePool.Put(st) }

// scratchPool serves the extra radix scratches parallel batch
// resolution needs beyond the request state's own.
var scratchPool = sync.Pool{New: func() any { return new(ipx.BatchScratch) }}

// growN returns s resized to n, reallocating only when capacity is
// short.
//
//geolint:hotpath
func growN[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// errBodyTooLarge reports a request body over the configured cap.
type bodyTooLargeError struct{}

func (bodyTooLargeError) Error() string { return "request body too large" }

// readBody reads rc into the pooled body buffer, failing once the size
// cap is exceeded (it reads at most max+1 bytes to detect that).
//
//geolint:hotpath
func (st *v2State) readBody(rc io.Reader, max int64) ([]byte, error) {
	b := st.body[:0]
	if cap(b) == 0 {
		b = make([]byte, 0, 4096)
	}
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		lim := cap(b)
		if over := int64(lim) - (max + 1); over > 0 {
			lim -= int(over)
		}
		n, err := rc.Read(b[len(b):lim])
		b = b[:len(b)+n]
		st.body = b
		if int64(len(b)) > max {
			return nil, bodyTooLargeError{}
		}
		if err == io.EOF {
			return b, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// skipWS advances past JSON whitespace.
//
//geolint:hotpath
func skipWS(b []byte, i int) int {
	for i < len(b) {
		switch b[i] {
		case ' ', '\t', '\n', '\r':
			i++
		default:
			return i
		}
	}
	return i
}

// scanPlainString scans a JSON string with no escapes at b[i:],
// returning its contents and the index after the closing quote. Any
// backslash or control character bails to the stdlib fallback, which
// owns full JSON semantics.
//
//geolint:hotpath
func scanPlainString(b []byte, i int) (s []byte, rest int, ok bool) {
	if i >= len(b) || b[i] != '"' {
		return nil, i, false
	}
	i++
	start := i
	for i < len(b) {
		c := b[i]
		if c == '"' {
			return b[start:i], i + 1, true
		}
		if c == '\\' || c < 0x20 {
			return nil, i, false
		}
		i++
	}
	return nil, i, false
}

// parseBatchRequest scans a {"ips":[...],"db":"..."} body into st.ips
// and db without allocating, all views into the body buffer. ok ==
// false means the body needs the encoding/json fallback — it may still
// be valid JSON (escapes, unknown keys, non-string members) or garbage;
// the fallback decides and produces the canonical error.
//
//geolint:hotpath
func (st *v2State) parseBatchRequest(b []byte) (db []byte, ok bool) {
	st.ips = st.ips[:0]
	i := skipWS(b, 0)
	if i >= len(b) || b[i] != '{' {
		return nil, false
	}
	i = skipWS(b, i+1)
	if i < len(b) && b[i] == '}' {
		return nil, true // {} — rejected later as an empty ips list
	}
	for {
		key, rest, sok := scanPlainString(b, i)
		if !sok {
			return nil, false
		}
		i = skipWS(b, rest)
		if i >= len(b) || b[i] != ':' {
			return nil, false
		}
		i = skipWS(b, i+1)
		switch string(key) {
		case "ips":
			if i >= len(b) || b[i] != '[' {
				return nil, false
			}
			st.ips = st.ips[:0] // duplicate keys: last one wins, like stdlib
			i = skipWS(b, i+1)
			if i < len(b) && b[i] == ']' {
				i++
				break
			}
			for {
				ip, rest, sok := scanPlainString(b, i)
				if !sok {
					return nil, false
				}
				st.ips = append(st.ips, ip)
				i = skipWS(b, rest)
				if i >= len(b) {
					return nil, false
				}
				if b[i] == ',' {
					i = skipWS(b, i+1)
					continue
				}
				if b[i] == ']' {
					i++
					break
				}
				return nil, false
			}
		case "db":
			s, rest, sok := scanPlainString(b, i)
			if !sok {
				return nil, false
			}
			db, i = s, rest
		default:
			return nil, false
		}
		i = skipWS(b, i)
		if i >= len(b) {
			return nil, false
		}
		if b[i] == ',' {
			i = skipWS(b, i+1)
			continue
		}
		if b[i] == '}' {
			// Trailing bytes after the object are ignored, exactly as the
			// json.Decoder this path replaced stopped after one value.
			return db, true
		}
		return nil, false
	}
}

// setIPsFromStrings loads the fallback-decoded request into the state.
func (st *v2State) setIPsFromStrings(ips []string) {
	st.ips = st.ips[:0]
	for _, ip := range ips {
		st.ips = append(st.ips, []byte(ip))
	}
}

// parseQuad parses a canonical dotted-quad IPv4 address: four decimal
// octets 0..255, no leading zeros — exactly the IPv4 grammar
// ipx.ParseAddr accepts. ok == false sends the entry to ipx.ParseAddr
// for the authoritative verdict and error text.
//
//geolint:hotpath
func parseQuad(b []byte) (ipx.Addr, bool) {
	var a uint32
	i := 0
	for oct := 0; oct < 4; oct++ {
		if oct > 0 {
			if i >= len(b) || b[i] != '.' {
				return 0, false
			}
			i++
		}
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return 0, false
		}
		v := uint32(b[i] - '0')
		i++
		if v != 0 {
			for d := 0; d < 2 && i < len(b) && b[i] >= '0' && b[i] <= '9'; d++ {
				v = v*10 + uint32(b[i]-'0')
				i++
			}
		}
		if v > 255 {
			return 0, false
		}
		a = a<<8 | v
	}
	if i != len(b) {
		return 0, false
	}
	return ipx.Addr(a), true
}

// resolveBatch fills st.idxs[j] for every selected database, splitting
// large batches into per-worker segments resolved concurrently.
//
//geolint:hotpath
func (st *v2State) resolveBatch(serve []servedDB, sel []int, concurrency int) {
	n := len(st.addrs)
	st.idxs = growN(st.idxs, len(sel))
	for j, si := range sel {
		idx := growN(st.idxs[j], n)
		st.idxs[j] = idx
		db := serve[si].db
		if n <= parallelBatchThreshold || concurrency <= 1 {
			db.LookupIndexBatch(st.addrs, idx, &st.sc)
			continue
		}
		workers := concurrency
		if lim := n / parallelBatchThreshold; workers > lim {
			workers = lim
		}
		seg := (n + workers - 1) / workers
		var wg sync.WaitGroup
		for lo := 0; lo < n; lo += seg {
			hi := lo + seg
			if hi > n {
				hi = n
			}
			wg.Add(1)
			//lint:ignore hotalloc the fan-out only engages past parallelBatchThreshold addresses, so the per-segment closure amortizes to well under one alloc per thousand lookups; BenchmarkV2LookupHandler pins the small-batch path at zero
			go func(lo, hi int) {
				defer wg.Done()
				sc := scratchPool.Get().(*ipx.BatchScratch)
				db.LookupIndexBatch(st.addrs[lo:hi], idx[lo:hi], sc)
				scratchPool.Put(sc)
			}(lo, hi)
		}
		wg.Wait()
	}
}

// appendEntries serializes the batch answer into st.out: cached record
// bytes for hits and misses, a stdlib-marshaled BatchEntry for the rare
// per-entry parse failure (whose input needs real JSON escaping).
//
//geolint:hotpath
func (st *v2State) appendEntries(serve []servedDB, sel []int) {
	out := append(st.out[:0], `{"entries":[`...)
	st.hits = growN(st.hits, len(sel))
	for j := range st.hits {
		st.hits[j] = 0
	}
	for i, ip := range st.ips {
		if i > 0 {
			out = append(out, ',')
		}
		if st.errs[i] != "" {
			//lint:ignore hotalloc cold sub-path: only entries that failed address parsing reach stdlib marshaling (their input needs real JSON escaping); well-formed batches never allocate here
			eb := mustJSON(BatchEntry{IP: string(ip), Error: st.errs[i]})
			out = append(out, eb...)
			continue
		}
		out = append(out, `{"ip":"`...)
		out = append(out, ip...)
		if len(sel) == 0 {
			out = append(out, `"}`...)
			continue
		}
		out = append(out, `","results":{`...)
		for j := range sel {
			if j > 0 {
				out = append(out, ',')
			}
			sd := &serve[sel[j]]
			out = append(out, sd.keyJSON...)
			if k := st.idxs[j][i]; k >= 0 {
				out = append(out, sd.recJSON[k]...)
				st.hits[j]++
			} else {
				out = append(out, missJSON...)
			}
		}
		out = append(out, `}}`...)
	}
	out = append(out, "]}\n"...)
	st.out = out
}
