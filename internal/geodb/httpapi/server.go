package httpapi

import (
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
	"routergeo/internal/obs"
)

// Server defaults; all overridable through ServerOptions.
const (
	// DefaultMaxBatch bounds one POST /v2/lookup request. 100k keeps the
	// paper's 1.64M-address Ark sweep under twenty round trips while
	// capping per-request memory.
	DefaultMaxBatch = 100_000
	// DefaultMaxBodyBytes caps the /v2/lookup request body (a 100k-address
	// batch is under 2 MiB of JSON).
	DefaultMaxBodyBytes = 16 << 20
	// DefaultRequestTimeout bounds one request end to end.
	DefaultRequestTimeout = 60 * time.Second
	// parallelBatchThreshold is the batch size above which the server
	// resolves entries with a worker pool instead of a single goroutine.
	parallelBatchThreshold = 256
)

// ServerOption configures NewHandler.
type ServerOption func(*Handler)

// WithMaxBatch caps the number of addresses in one /v2/lookup request;
// larger batches are rejected with 413.
func WithMaxBatch(n int) ServerOption {
	return func(h *Handler) {
		if n > 0 {
			h.maxBatch = n
		}
	}
}

// WithMaxBodyBytes caps the /v2/lookup request body size.
func WithMaxBodyBytes(n int64) ServerOption {
	return func(h *Handler) {
		if n > 0 {
			h.maxBody = n
		}
	}
}

// WithRequestTimeout bounds each request end to end; 0 disables the
// timeout middleware.
func WithRequestTimeout(d time.Duration) ServerOption {
	return func(h *Handler) { h.timeout = d }
}

// WithServerConcurrency sets the worker-pool width used to resolve
// large batches. Defaults to GOMAXPROCS.
func WithServerConcurrency(n int) ServerOption {
	return func(h *Handler) {
		if n > 0 {
			h.concurrency = n
		}
	}
}

// WithLogger enables structured request logging through l (one line per
// request: method, path, status, duration — Info for 2xx/3xx, Warn for
// 4xx, Error for 5xx, so a Warn-floored logger keeps failures visible
// while silencing routine traffic). nil keeps access logging off.
func WithLogger(l *slog.Logger) ServerOption {
	return func(h *Handler) { h.logger = l }
}

// WithSnapshotArchive keeps the last n retired generations pinned after
// they are swapped out, so GET /v2/lookup?asof=<unix> can answer from
// the newest generation whose build epoch is at or before asof. Asof
// requests older than everything retained answer 404 with the archive-
// horizon sentinel. n <= 0 (the default) keeps no archive: asof then
// only ever matches the live generation.
func WithSnapshotArchive(n int) ServerOption {
	return func(h *Handler) {
		if n > 0 {
			h.archiveMax = n
		}
	}
}

// WithAdminReload arms the POST /v2/admin/reload endpoint with hook,
// typically a Reloader's AdminHook. The hook triggers a snapshot rescan
// (force re-loads even when the directory looks unchanged) and reports
// whether a new generation was swapped in; ErrReloadInFlight from the
// hook answers 409. Without this option the admin route does not exist.
func WithAdminReload(hook func(force bool) (bool, error)) ServerOption {
	return func(h *Handler) { h.reloadHook = hook }
}

// WithEventBus replaces the handler's event bus (default: the
// process-wide obs.Events() bus). Server-side happenings — generation
// swaps, reload outcomes, chaos injections — publish here, and
// GET /v2/events streams it. Tests use a private bus for isolation.
func WithEventBus(b *obs.EventBus) ServerOption {
	return func(h *Handler) {
		if b != nil {
			h.bus = b
		}
	}
}

// WithEventHeartbeat sets the /v2/events keep-alive comment interval
// (default obs.DefaultSSEHeartbeat). Tests shorten it to observe
// liveness quickly.
func WithEventHeartbeat(d time.Duration) ServerOption {
	return func(h *Handler) {
		if d > 0 {
			h.sseHeartbeat = d
		}
	}
}

// Handler serves the /v1 and /v2 API over a generation of databases.
// The serving set is swappable at runtime (Swap, the hot-reload path);
// everything else is immutable after NewHandler except the draining
// flag and the metrics, all safe for concurrent use.
type Handler struct {
	gen atomic.Pointer[generation]

	maxBatch    int
	maxBody     int64
	timeout     time.Duration
	concurrency int
	logger      *slog.Logger
	reloadHook  func(force bool) (bool, error)

	draining atomic.Bool
	metrics  *metrics

	// The snapshot archive: the last archiveMax retired generations, in
	// retirement order, each still holding the pin Swap would otherwise
	// have dropped. archiveMu linearizes Swap's retire/evict against
	// acquireAsOf's scan.
	archiveMax int
	archiveMu  sync.Mutex
	archive    []*generation

	// bus carries the server's live event stream; streamStop is closed
	// once when the server starts draining, ending every /v2/events
	// connection so graceful shutdown never waits on an open stream.
	bus          *obs.EventBus
	sseHeartbeat time.Duration
	streamStop   chan struct{}
	stopOnce     sync.Once

	serve http.Handler
}

// NewHandler serves the given databases behind the full middleware
// stack (panic recovery, optional request logging, metrics, request
// timeout). Two routes sit outside the timeout+metrics layers:
// GET /metrics (the Prometheus exposition must not skew the latency
// histogram it reports) and GET /v2/events (a deliberately long-lived
// SSE stream that http.TimeoutHandler would both kill and — its writer
// has no Flusher — break).
func NewHandler(dbs []*geodb.DB, opts ...ServerOption) *Handler {
	h := &Handler{
		maxBatch:     DefaultMaxBatch,
		maxBody:      DefaultMaxBodyBytes,
		timeout:      DefaultRequestTimeout,
		concurrency:  runtime.GOMAXPROCS(0),
		bus:          obs.Events(),
		sseHeartbeat: obs.DefaultSSEHeartbeat,
		streamStop:   make(chan struct{}),
	}
	gen := newGeneration(dbs, nil)
	h.gen.Store(gen)
	for _, o := range opts {
		o(h)
	}
	h.metrics = newMetrics(gen.names)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", h.handleHealthz)
	mux.HandleFunc("GET /v1/databases", h.handleV1Databases)
	mux.HandleFunc("GET /v1/lookup", h.handleV1Lookup)
	mux.HandleFunc("POST /v2/lookup", h.handleV2Lookup)
	mux.HandleFunc("GET /v2/databases", h.handleV2Databases)
	mux.HandleFunc("GET /v2/stats", h.handleV2Stats)
	if h.reloadHook != nil {
		// The route exists only when a reload hook is armed, so an unarmed
		// server answers the admin path with a plain 404.
		mux.HandleFunc("POST /v2/admin/reload", h.handleAdminReload)
	}

	var api http.Handler = mux
	if h.timeout > 0 {
		api = http.TimeoutHandler(api, h.timeout, `{"error":"request timed out"}`)
	}
	api = h.metrics.middleware(api)

	outer := http.NewServeMux()
	outer.Handle("/", api)
	outer.Handle("GET /metrics", obs.PromHandler(h.metrics.reg))
	outer.Handle("GET /v2/events", obs.NewSSEHandler(h.bus,
		obs.WithSSEHeartbeat(h.sseHeartbeat),
		obs.WithSSEStop(h.streamStop),
		obs.WithSSERegistry(h.metrics.reg),
	))

	stack := h.generationMiddleware(outer)
	if h.logger != nil {
		stack = loggingMiddleware(h.logger, stack)
	}
	stack = recoveryMiddleware(stack)
	h.serve = stack
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.serve.ServeHTTP(w, r)
}

// SetDraining flips the /healthz answer between "ok" (200) and
// "draining" (503), so load balancers stop routing to a server that is
// shutting down while in-flight requests finish. Entering the draining
// state also ends every open /v2/events stream (once — streams stay
// closed even if draining is later unset), so http.Server.Shutdown
// never waits on them.
func (h *Handler) SetDraining(v bool) {
	h.draining.Store(v)
	if v {
		h.stopOnce.Do(func() { close(h.streamStop) })
	}
}

// Draining reports the current drain state.
func (h *Handler) Draining() bool { return h.draining.Load() }

// Registry exposes the handler's metrics registry — the same instruments
// /v2/stats and /metrics are assembled from — for debug endpoints and
// tests.
func (h *Handler) Registry() *obs.Registry { return h.metrics.reg }

// EventBus exposes the bus behind GET /v2/events, so co-located
// subsystems (the chaos middleware, the reloader) publish onto the same
// stream the server serves.
func (h *Handler) EventBus() *obs.EventBus { return h.bus }

func (h *Handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if h.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

func (h *Handler) handleV1Databases(w http.ResponseWriter, r *http.Request) {
	g := h.acquireGen()
	defer g.release()
	writeJSON(w, http.StatusOK, g.names)
}

func (h *Handler) handleV1Lookup(w http.ResponseWriter, r *http.Request) {
	g := h.acquireGen()
	defer g.release()
	ipStr := r.URL.Query().Get("ip")
	addr, err := ipx.ParseAddr(ipStr)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "invalid or missing ip parameter"})
		return
	}
	dbName := r.URL.Query().Get("db")
	if dbName != "" {
		if _, ok := g.byName[dbName]; !ok {
			writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown database " + dbName})
			return
		}
	}
	resp := LookupResponse{IP: addr.String(), Results: h.resolve(g, addr, dbName)}
	writeJSON(w, http.StatusOK, resp)
}

// resolve answers one address from one database (dbName != "") or all,
// within the pinned generation g.
func (h *Handler) resolve(g *generation, addr ipx.Addr, dbName string) map[string]RecordJSON {
	out := make(map[string]RecordJSON, len(g.byName))
	for name, db := range g.byName {
		if dbName != "" && name != dbName {
			continue
		}
		rec, found := db.Lookup(addr)
		h.metrics.recordLookup(name, found)
		out[name] = toJSON(rec, found)
	}
	return out
}

// handleV2Lookup is the batch-lookup hot path: pooled request state, a
// non-allocating JSON scan and dotted-quad parse, the ipx batch-lookup
// kernel per database, and a response assembled from per-generation
// cached record JSON. A well-formed batch of hits allocates nothing per
// request in the steady state (BenchmarkV2LookupHandler pins this);
// bodies the fast scanner cannot take drop to encoding/json for exact
// stdlib semantics and error text.
func (h *Handler) handleV2Lookup(w http.ResponseWriter, r *http.Request) {
	g := h.acquireGen()
	defer g.release()
	if r.URL.RawQuery != "" {
		// Cold path: time travel. The RawQuery gate keeps URL parsing (and
		// its allocations) away from plain batch lookups.
		ag, handled := h.timeTravel(w, r)
		if handled {
			return
		}
		if ag != nil {
			defer ag.release()
			g = ag
			// Override the middleware's stamp: this answer comes from the
			// pinned historical generation, not the live one.
			w.Header().Set(GenerationHeader, g.id)
		}
	}
	st := v2StatePool.Get().(*v2State)
	defer putV2State(st)

	body, err := st.readBody(r.Body, h.maxBody)
	if err != nil {
		if _, ok := err.(bodyTooLargeError); ok {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				ErrorResponse{Error: "request body too large", MaxBatch: h.maxBatch})
			return
		}
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "malformed JSON body: " + err.Error()})
		return
	}
	dbFilter, ok := st.parseBatchRequest(body)
	if !ok {
		var req BatchRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "malformed JSON body: " + err.Error()})
			return
		}
		st.setIPsFromStrings(req.IPs)
		dbFilter = []byte(req.DB)
	}
	n := len(st.ips)
	if n == 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "empty ips list"})
		return
	}
	if n > h.maxBatch {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			ErrorResponse{Error: "batch too large", MaxBatch: h.maxBatch})
		return
	}
	sel := st.sel[:0]
	if len(dbFilter) != 0 {
		if _, ok := g.byName[string(dbFilter)]; !ok {
			writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown database " + string(dbFilter)})
			return
		}
		for i := range g.serve {
			if g.serve[i].name == string(dbFilter) {
				sel = append(sel, i)
			}
		}
	} else {
		for i := range g.serve {
			sel = append(sel, i)
		}
	}
	st.sel = sel

	// Parse every address; a malformed entry fails alone, the rest of
	// the batch still resolves. parseQuad covers the canonical grammar
	// without allocating; anything else gets the authoritative slow
	// parse and, on failure, its error text.
	st.addrs = growN(st.addrs, n)
	st.errs = growN(st.errs, n)
	valid := 0
	for i, ip := range st.ips {
		st.errs[i] = ""
		if a, ok := parseQuad(ip); ok {
			st.addrs[i], valid = a, valid+1
			continue
		}
		a, err := ipx.ParseAddr(string(ip))
		if err != nil {
			st.addrs[i], st.errs[i] = 0, err.Error()
			continue
		}
		st.addrs[i], valid = a, valid+1
	}

	st.resolveBatch(g.serve, sel, h.concurrency)
	st.appendEntries(g.serve, sel)
	for j, si := range sel {
		h.metrics.addLookups(g.serve[si].name, st.hits[j], int64(valid)-st.hits[j])
	}

	// Direct map assignment of a shared value: Header().Set builds a
	// fresh []string per call, the last allocation on this path.
	w.Header()["Content-Type"] = jsonContentType
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(st.out)
}

// jsonContentType is the shared Content-Type header value the zero-alloc
// path assigns directly (the key is already in canonical form).
var jsonContentType = []string{"application/json"}

// timeTravel resolves a /v2/lookup?asof= query to a pinned generation.
// handled == true means the response was already written (bad parameter,
// or asof precedes the archive horizon); a nil generation with handled
// == false means no asof was requested and the live generation stands.
func (h *Handler) timeTravel(w http.ResponseWriter, r *http.Request) (*generation, bool) {
	s := r.URL.Query().Get("asof")
	if s == "" {
		return nil, false
	}
	asof, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "invalid asof parameter: " + s})
		return nil, true
	}
	g := h.acquireAsOf(asof)
	if g == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: beforeHorizonText})
		return nil, true
	}
	return g, false
}

func (h *Handler) handleV2Databases(w http.ResponseWriter, r *http.Request) {
	g := h.acquireGen()
	defer g.release()
	if notModified(w, r, g) {
		return
	}
	writeJSON(w, http.StatusOK, g.infos)
}

func (h *Handler) handleV2Stats(w http.ResponseWriter, r *http.Request) {
	g := h.acquireGen()
	defer g.release()
	if notModified(w, r, g) {
		return
	}
	s := h.metrics.snapshot()
	s.Draining = h.draining.Load()
	s.Generation = g.id
	s.Reloads = h.metrics.swaps.Value()
	s.Snapshots = g.snaps
	if h.archiveMax > 0 {
		h.archiveMu.Lock()
		a := &ArchiveInfo{Generations: len(h.archive), Max: h.archiveMax}
		for i, ag := range h.archive {
			if i == 0 || ag.epoch < a.HorizonEpoch {
				a.HorizonEpoch = ag.epoch
			}
		}
		if cur := h.gen.Load(); len(h.archive) == 0 || cur.epoch < a.HorizonEpoch {
			a.HorizonEpoch = cur.epoch
		}
		h.archiveMu.Unlock()
		s.Archive = a
	}
	writeJSON(w, http.StatusOK, s)
}

func (h *Handler) handleAdminReload(w http.ResponseWriter, r *http.Request) {
	force := r.URL.Query().Get("force") == "1" || r.URL.Query().Get("force") == "true"
	swapped, err := h.reloadHook(force)
	switch {
	case errors.Is(err, ErrReloadInFlight):
		writeJSON(w, http.StatusConflict, ErrorResponse{Error: err.Error()})
		return
	case err != nil:
		// The failed rescan left the old generation serving; report that
		// identity so the caller can see nothing moved.
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	status := "unchanged"
	if swapped {
		status = "reloaded"
	}
	writeJSON(w, http.StatusOK, ReloadResponse{Status: status, Generation: h.Generation()})
}

func databaseInfo(db *geodb.DB) DatabaseInfo {
	info := DatabaseInfo{Name: db.Name(), Ranges: db.Len()}
	db.Walk(func(_ ipx.Range, rec geodb.Record) bool {
		switch rec.Resolution {
		case geodb.ResolutionCity:
			info.CityRanges++
		case geodb.ResolutionCountry:
			info.CountryRanges++
		}
		return true
	})
	return info
}

// compile-time interface check
var _ http.Handler = (*Handler)(nil)
