package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

// altDBs builds a serving set that answers differently from testDBs, so
// a swap is observable through lookups as well as the generation id.
func altDBs(t *testing.T) []*geodb.DB {
	t.Helper()
	b := geodb.NewBuilder("alpha")
	b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/16"), geodb.Record{
		Country: "FR", City: "Paris", Coord: geo.Coordinate{Lat: 48.85, Lon: 2.35},
		Resolution: geodb.ResolutionCity, BlockBits: 16,
	})
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return []*geodb.DB{db}
}

func TestGenerationHeaderOnEveryResponse(t *testing.T) {
	h := NewHandler(testDBs(t))
	srv := httptest.NewServer(h)
	defer srv.Close()

	for _, path := range []string{
		"/v1/databases",
		"/v1/lookup?ip=10.0.0.1",
		"/v2/databases",
		"/v2/stats",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get(GenerationHeader); got != h.Generation() {
			t.Errorf("%s: %s = %q, want %q", path, GenerationHeader, got, h.Generation())
		}
	}
}

func TestV2ETagNotModified(t *testing.T) {
	h := NewHandler(testDBs(t))
	srv := httptest.NewServer(h)
	defer srv.Close()

	for _, path := range []string{"/v2/databases", "/v2/stats"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		etag := resp.Header.Get("ETag")
		if want := `"` + h.Generation() + `"`; etag != want {
			t.Fatalf("%s: ETag = %q, want %q", path, etag, want)
		}

		cases := []struct {
			inm  string
			want int
		}{
			{etag, http.StatusNotModified},
			{"*", http.StatusNotModified},
			{"W/" + etag, http.StatusNotModified},
			{`"stale", ` + etag, http.StatusNotModified},
			{`"stale"`, http.StatusOK},
			{"", http.StatusOK},
		}
		for _, c := range cases {
			req, _ := http.NewRequest("GET", srv.URL+path, nil)
			if c.inm != "" {
				req.Header.Set("If-None-Match", c.inm)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != c.want {
				t.Errorf("%s If-None-Match=%q: status = %d, want %d",
					path, c.inm, resp.StatusCode, c.want)
			}
		}
	}
}

func TestSwapChangesGenerationAndAnswers(t *testing.T) {
	h := NewHandler(testDBs(t))
	srv := httptest.NewServer(h)
	defer srv.Close()

	gen1 := h.Generation()
	oldETag := `"` + gen1 + `"`
	if id := h.Swap(altDBs(t)); id == gen1 {
		t.Fatalf("Swap returned the old generation id %s", id)
	}
	if h.Generation() == gen1 {
		t.Fatal("Generation unchanged after Swap")
	}

	// The pre-swap ETag must now miss, and the body reflect the new set.
	req, _ := http.NewRequest("GET", srv.URL+"/v2/databases", nil)
	req.Header.Set("If-None-Match", oldETag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale ETag must re-fetch, got %d", resp.StatusCode)
	}
	var infos []DatabaseInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "alpha" {
		t.Fatalf("post-swap databases = %+v", infos)
	}
	if infos[0].Snapshot == nil || infos[0].Snapshot.Generation == "" {
		t.Fatalf("post-swap database missing snapshot identity: %+v", infos[0])
	}

	// Stats surface the flip: new generation, a reload counted, and the
	// per-database identity block.
	var s StatsResponse
	if err := getJSON(srv.URL+"/v2/stats", &s); err != nil {
		t.Fatal(err)
	}
	if s.Generation != h.Generation() {
		t.Errorf("stats generation = %q, want %q", s.Generation, h.Generation())
	}
	if s.Reloads != 1 {
		t.Errorf("stats reloads = %d, want 1", s.Reloads)
	}
	if _, ok := s.Snapshots["alpha"]; !ok {
		t.Errorf("stats snapshots missing alpha: %+v", s.Snapshots)
	}
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func TestSwapClosersWaitForReaders(t *testing.T) {
	var closed atomic.Bool
	h := NewHandler(nil)
	h.Swap(testDBs(t), func() error { closed.Store(true); return nil })

	// Pin the generation the way an in-flight request does, swap it out,
	// and verify the mapping release only runs after the last reader.
	g := h.acquireGen()
	h.Swap(altDBs(t))
	if closed.Load() {
		t.Fatal("closers ran while a reader still held the generation")
	}
	if _, ok := g.byName["alpha"].Lookup(ipx.MustParseAddr("10.0.0.1")); !ok {
		t.Fatal("pinned generation must stay queryable after being swapped out")
	}
	g.release()
	if !closed.Load() {
		t.Fatal("closers did not run after the last reader drained")
	}
}

// TestConcurrentLookupsDuringSwaps is the -race half of the hot-reload
// contract: lookups hammer the server while generations swap underneath,
// and every response must be a well-formed 200 from exactly one
// generation, with every retired generation's closers eventually run.
func TestConcurrentLookupsDuringSwaps(t *testing.T) {
	h := NewHandler(testDBs(t))
	srv := httptest.NewServer(h)
	defer srv.Close()

	const (
		readers = 8
		queries = 40
		swaps   = 25
	)
	var closers atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < queries; j++ {
				resp, err := http.Get(srv.URL + "/v1/lookup?ip=10.0.0.1")
				if err != nil {
					errCh <- err
					return
				}
				var body LookupResponse
				err = json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if err != nil {
					errCh <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("lookup status %d mid-swap", resp.StatusCode)
					return
				}
				cc := body.Results["alpha"].Country
				if cc != "US" && cc != "FR" {
					errCh <- fmt.Errorf("lookup answered from no known generation: %+v", body)
					return
				}
			}
		}()
	}
	for i := 0; i < swaps; i++ {
		dbs := testDBs(t)
		if i%2 == 0 {
			dbs = altDBs(t)
		}
		h.Swap(dbs, func() error { closers.Add(1); return nil })
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	// Retire the final generation too; with no requests in flight every
	// closer must have run.
	h.Swap(testDBs(t))
	if got := closers.Load(); got != swaps {
		t.Errorf("closers run = %d, want %d", got, swaps)
	}
}

func TestClientObservesGenerationFlips(t *testing.T) {
	h := NewHandler(testDBs(t))
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := NewClient(srv.URL, WithDatabase("alpha"))
	if _, _, err := c.TryLookup(c.rootCtx(), ipx.MustParseAddr("10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	if c.Generation() != h.Generation() {
		t.Fatalf("client generation = %q, want %q", c.Generation(), h.Generation())
	}
	if c.GenerationFlips() != 0 {
		t.Fatalf("flips before any swap = %d", c.GenerationFlips())
	}
	h.Swap(altDBs(t))
	if _, _, err := c.TryLookup(c.rootCtx(), ipx.MustParseAddr("10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	if c.GenerationFlips() != 1 {
		t.Errorf("flips after swap = %d, want 1", c.GenerationFlips())
	}
}

func TestClientRequiredGenerationMismatchIsTerminal(t *testing.T) {
	h := NewHandler(testDBs(t))
	pinned := h.Generation()
	var requests atomic.Int64
	counting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		h.ServeHTTP(w, r)
	}))
	defer counting.Close()

	c := NewClient(counting.URL,
		WithDatabase("alpha"),
		WithRequiredGeneration(pinned),
		WithRetries(5))
	if _, _, err := c.TryLookup(c.rootCtx(), ipx.MustParseAddr("10.0.0.1")); err != nil {
		t.Fatalf("lookup against the pinned generation: %v", err)
	}

	h.Swap(altDBs(t))
	before := requests.Load()
	_, _, err := c.TryLookup(c.rootCtx(), ipx.MustParseAddr("10.0.0.1"))
	if !errors.Is(err, ErrGenerationMismatch) {
		t.Fatalf("err = %v, want ErrGenerationMismatch", err)
	}
	// Terminal means exactly one request: retrying a moved-on server
	// cannot un-move it.
	if got := requests.Load() - before; got != 1 {
		t.Errorf("mismatch consumed %d requests, want 1 (no retries)", got)
	}
}

func TestAdminReloadRouteAbsentWhenUnarmed(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testDBs(t)))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v2/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unarmed admin reload status = %d, want 404", resp.StatusCode)
	}
}

func TestAdminReloadEndpoint(t *testing.T) {
	var swapped bool
	var hookErr error
	var gotForce bool
	h := NewHandler(testDBs(t), WithAdminReload(func(force bool) (bool, error) {
		gotForce = force
		return swapped, hookErr
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	post := func(url string) (int, ReloadResponse) {
		t.Helper()
		resp, err := http.Post(url, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rr ReloadResponse
		_ = json.NewDecoder(resp.Body).Decode(&rr)
		return resp.StatusCode, rr
	}

	swapped = true
	status, rr := post(srv.URL + "/v2/admin/reload")
	if status != http.StatusOK || rr.Status != "reloaded" {
		t.Errorf("reloaded: status=%d body=%+v", status, rr)
	}
	if gotForce {
		t.Error("force must default to false")
	}
	if rr.Generation != h.Generation() {
		t.Errorf("reload generation = %q, want %q", rr.Generation, h.Generation())
	}

	swapped = false
	status, rr = post(srv.URL + "/v2/admin/reload?force=1")
	if status != http.StatusOK || rr.Status != "unchanged" {
		t.Errorf("unchanged: status=%d body=%+v", status, rr)
	}
	if !gotForce {
		t.Error("?force=1 did not reach the hook")
	}

	hookErr = ErrReloadInFlight
	if status, _ = post(srv.URL + "/v2/admin/reload"); status != http.StatusConflict {
		t.Errorf("in-flight reload status = %d, want 409", status)
	}

	hookErr = errors.New("disk on fire")
	if status, _ = post(srv.URL + "/v2/admin/reload"); status != http.StatusInternalServerError {
		t.Errorf("failed reload status = %d, want 500", status)
	}
}
