package httpapi

import (
	"log"
	"net/http"
	"time"
)

// statusRecorder captures the response status for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// recoveryMiddleware converts a handler panic into a 500 instead of
// tearing down the connection (and, under http.Server, the goroutine).
func recoveryMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				// Headers may already be out; WriteHeader then is a no-op
				// warning at worst.
				writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: "internal error"})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// loggingMiddleware writes one line per request: method, path, status,
// duration.
func loggingMiddleware(l *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		l.Printf("%s %s %d %v", r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Microsecond))
	})
}
