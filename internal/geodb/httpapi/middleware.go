package httpapi

import (
	"log/slog"
	"net/http"
	"time"
)

// statusRecorder captures the response status for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer to http.NewResponseController, so
// streaming handlers (the /v2/events SSE stream) can still flush through
// the logging wrapper.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// recoveryMiddleware converts a handler panic into a 500 instead of
// tearing down the connection (and, under http.Server, the goroutine).
// http.ErrAbortHandler is re-raised: it is the sanctioned "kill this
// connection" signal — the chaos middleware's reset fault rides on it —
// and turning it into a tidy 500 would defeat its purpose.
func recoveryMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				if v == http.ErrAbortHandler {
					panic(v)
				}
				// Headers may already be out; WriteHeader then is a no-op
				// warning at worst.
				writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: "internal error"})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// accessLogLevel maps a response status to the level its access-log line
// carries: plain requests are Info, client errors Warn, server errors
// Error. Running the logger with a Warn floor (geoserve -quiet) thus
// silences routine traffic while failures still log.
func accessLogLevel(status int) slog.Level {
	switch {
	case status >= 500:
		return slog.LevelError
	case status >= 400:
		return slog.LevelWarn
	default:
		return slog.LevelInfo
	}
}

// loggingMiddleware writes one structured line per request: method,
// path, status, duration — at a level keyed to the status class.
func loggingMiddleware(l *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		l.Log(r.Context(), accessLogLevel(rec.status), "request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"dur", time.Since(start).Round(time.Microsecond),
		)
	})
}
