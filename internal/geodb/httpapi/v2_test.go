package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"routergeo/internal/ipx"
)

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestV2LookupBatch(t *testing.T) {
	srv := testServer(t)
	resp := postJSON(t, srv.URL+"/v2/lookup", `{"ips":["10.0.1.2","192.0.2.1"]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(out.Entries))
	}
	hit := out.Entries[0]
	if hit.IP != "10.0.1.2" || hit.Error != "" || len(hit.Results) != 2 {
		t.Fatalf("entry 0 = %+v", hit)
	}
	if a := hit.Results["alpha"]; !a.Found || a.City != "Dallas" || a.BlockBits != 16 {
		t.Errorf("alpha = %+v", a)
	}
	miss := out.Entries[1]
	if miss.Error != "" {
		t.Fatalf("miss entry has error %q", miss.Error)
	}
	for name, r := range miss.Results {
		if r.Found || r.Resolution != "none" {
			t.Errorf("%s should miss, got %+v", name, r)
		}
	}
}

func TestV2LookupDBFilter(t *testing.T) {
	srv := testServer(t)
	resp := postJSON(t, srv.URL+"/v2/lookup", `{"ips":["10.0.1.2"],"db":"beta"}`)
	defer resp.Body.Close()
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) != 1 || len(out.Entries[0].Results) != 1 {
		t.Fatalf("entries = %+v", out.Entries)
	}
	if _, ok := out.Entries[0].Results["beta"]; !ok {
		t.Error("beta missing from filtered batch answer")
	}
}

func TestV2LookupMalformedEntriesAreLocal(t *testing.T) {
	// A malformed address must fail its own entry, not the whole request.
	srv := testServer(t)
	resp := postJSON(t, srv.URL+"/v2/lookup", `{"ips":["banana","10.0.1.2","999.1.1.1"]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 despite malformed entries", resp.StatusCode)
	}
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) != 3 {
		t.Fatalf("entries = %d", len(out.Entries))
	}
	if out.Entries[0].Error == "" || out.Entries[2].Error == "" {
		t.Errorf("malformed entries lack errors: %+v", out.Entries)
	}
	if out.Entries[1].Error != "" || len(out.Entries[1].Results) == 0 {
		t.Errorf("well-formed entry tainted: %+v", out.Entries[1])
	}
}

func TestV2LookupOversizedBatch413(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testDBs(t), WithMaxBatch(4)))
	defer srv.Close()
	resp := postJSON(t, srv.URL+"/v2/lookup", `{"ips":["10.0.0.1","10.0.0.2","10.0.0.3","10.0.0.4","10.0.0.5"]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.MaxBatch != 4 {
		t.Errorf("MaxBatch = %d, want 4 so clients can re-chunk", e.MaxBatch)
	}
}

func TestV2LookupOversizedBody413(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testDBs(t), WithMaxBodyBytes(64)))
	defer srv.Close()
	var b bytes.Buffer
	b.WriteString(`{"ips":[`)
	for i := 0; i < 100; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `"10.0.0.%d"`, i%250)
	}
	b.WriteString(`]}`)
	resp := postJSON(t, srv.URL+"/v2/lookup", b.String())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

func TestV2LookupBadRequests(t *testing.T) {
	srv := testServer(t)
	for _, tc := range []struct {
		body string
		want int
	}{
		{`not json`, http.StatusBadRequest},
		{`{"ips":[]}`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},
		{`{"ips":["10.0.0.1"],"db":"nope"}`, http.StatusNotFound},
	} {
		resp := postJSON(t, srv.URL+"/v2/lookup", tc.body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("POST %q = %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
}

func TestV2LookupLargeBatchParallel(t *testing.T) {
	// Past parallelBatchThreshold the server resolves with a worker pool;
	// the answer must still preserve request order entry by entry.
	srv := httptest.NewServer(NewHandler(testDBs(t), WithServerConcurrency(4)))
	defer srv.Close()
	n := parallelBatchThreshold * 3
	ips := make([]string, n)
	for i := range ips {
		ips[i] = fmt.Sprintf("10.0.%d.%d", i/250, i%250)
	}
	body, _ := json.Marshal(BatchRequest{IPs: ips})
	resp := postJSON(t, srv.URL+"/v2/lookup", string(body))
	defer resp.Body.Close()
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) != n {
		t.Fatalf("entries = %d, want %d", len(out.Entries), n)
	}
	for i, e := range out.Entries {
		if e.IP != ips[i] {
			t.Fatalf("entry %d = %q, want %q (order lost)", i, e.IP, ips[i])
		}
		if e.Error != "" || !e.Results["alpha"].Found {
			t.Fatalf("entry %d unresolved: %+v", i, e)
		}
	}
}

func TestV2Databases(t *testing.T) {
	srv := testServer(t)
	c := NewClient(srv.URL)
	infos, err := c.DatabaseInfos()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("infos = %+v", infos)
	}
	// alpha is a single city-resolution /16; beta a country-resolution /16.
	if infos[0].Name != "alpha" || infos[0].Ranges != 1 || infos[0].CityRanges != 1 || infos[0].CountryRanges != 0 {
		t.Errorf("alpha info = %+v", infos[0])
	}
	if infos[1].Name != "beta" || infos[1].CountryRanges != 1 || infos[1].CityRanges != 0 {
		t.Errorf("beta info = %+v", infos[1])
	}
}

func TestV2Stats(t *testing.T) {
	srv := testServer(t)
	c := NewClient(srv.URL, WithDatabase("alpha"))
	if _, ok := c.Lookup(ipx.MustParseAddr("10.0.0.1")); !ok {
		t.Fatal("lookup should hit")
	}
	if _, ok := c.Lookup(ipx.MustParseAddr("192.0.2.1")); ok {
		t.Fatal("lookup should miss")
	}
	if _, err := c.BatchLookup(context.Background(), []string{"10.0.0.9"}); err != nil {
		t.Fatal(err)
	}
	s, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Requests < 3 {
		t.Errorf("Requests = %d, want >= 3", s.Requests)
	}
	if s.ByEndpoint["GET /v1/lookup"] != 2 || s.ByEndpoint["POST /v2/lookup"] != 1 {
		t.Errorf("ByEndpoint = %+v", s.ByEndpoint)
	}
	// All three lookups were pinned to alpha: two hits, one miss; beta
	// never answered.
	if got := s.DBs["alpha"]; got.Hits != 2 || got.Misses != 1 {
		t.Errorf("alpha tally = %+v", got)
	}
	if len(s.LatencyMs) != 3 {
		t.Errorf("LatencyMs = %+v, want p50/p90/p99", s.LatencyMs)
	}
	if s.Draining {
		t.Error("fresh server reports draining")
	}
}

func TestHealthzDraining(t *testing.T) {
	h := NewHandler(testDBs(t))
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func() (int, string) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		_, _ = b.ReadFrom(resp.Body)
		return resp.StatusCode, strings.TrimSpace(b.String())
	}
	if code, body := get(); code != http.StatusOK || body != "ok" {
		t.Fatalf("healthy = %d %q", code, body)
	}
	h.SetDraining(true)
	if code, body := get(); code != http.StatusServiceUnavailable || body != "draining" {
		t.Fatalf("draining = %d %q", code, body)
	}
	h.SetDraining(false)
	if code, _ := get(); code != http.StatusOK {
		t.Fatalf("recovered = %d", code)
	}
}

func TestRecoveryMiddleware(t *testing.T) {
	// A panicking handler behind the stack must answer 500, not kill the
	// connection.
	panicky := recoveryMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}))
	srv := httptest.NewServer(panicky)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
}

// TestV2StatsSurfacesResilience proves the chaos/breaker/taint sections
// appear in /v2/stats when a client registers its instruments in the
// handler's registry (WithClientMetrics), and stay omitted otherwise.
func TestV2StatsSurfacesResilience(t *testing.T) {
	h := NewHandler(testDBs(t))
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	// Plain deployments keep the frozen pre-chaos shape.
	plain := NewClient(srv.URL)
	s, err := plain.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Chaos != nil || s.Breakers != nil || s.Taint != nil {
		t.Fatalf("fresh stats carry resilience sections: %+v", s)
	}

	// A client against a dead host, reporting into this server's
	// registry: trip its breaker and taint a lookup.
	dead := NewClient("http://127.0.0.1:1",
		WithDatabase("alpha"),
		WithRetries(0),
		WithTimeout(time.Second),
		WithBreaker(2, time.Minute),
		WithClientMetrics(h.Registry()))
	p, err := NewRemoteProvider(dead)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // 2 failures trip it; the 3rd short-circuits
		p.Lookup(ipx.MustParseAddr("10.0.0.1"))
	}
	// The chaos middleware's observer feeds the same registry prefix.
	h.Registry().Counter("chaos.injected.error").Add(3)

	s, err = plain.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Chaos["error"]; got != 3 {
		t.Errorf("Chaos[error] = %d, want 3", got)
	}
	bs, ok := s.Breakers["127.0.0.1:1"]
	if !ok {
		t.Fatalf("Breakers = %+v, want an entry for 127.0.0.1:1", s.Breakers)
	}
	if bs.State != "open" || bs.Opens != 1 || bs.ShortCircuits == 0 {
		t.Errorf("breaker section = %+v", bs)
	}
	if s.Taint["transport_errors"] == 0 || s.Taint["tainted_lookups"] == 0 {
		t.Errorf("Taint = %+v, want transport_errors and tainted_lookups > 0", s.Taint)
	}
}
