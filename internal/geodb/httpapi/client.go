package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
	"routergeo/internal/obs"
)

// Client defaults, applied by NewClient; a zero/struct-literal Client
// behaves like the original v1 client (no retries, no timeout, no
// breaker).
const (
	DefaultRetries     = 2
	DefaultBackoff     = 100 * time.Millisecond
	DefaultTimeout     = 30 * time.Second
	DefaultConcurrency = 4
	// DefaultClientMaxBatch is the client-side chunk size for
	// BatchLookup; requests never exceed it even when the server would
	// accept more.
	DefaultClientMaxBatch = 10_000
	// DefaultMaxBackoff caps any single retry delay, whatever the
	// attempt count or Retry-After header asks for.
	DefaultMaxBackoff = 30 * time.Second
)

// ClientOption configures NewClient.
type ClientOption func(*Client)

// WithRetries sets how many times a failed request (transport error,
// 5xx or 429) is reissued before giving up.
func WithRetries(n int) ClientOption {
	return func(c *Client) {
		if n >= 0 {
			c.retries = n
		}
	}
}

// WithBackoff sets the base retry delay; attempt k waits up to base<<k,
// jittered, never past the WithMaxBackoff cap.
func WithBackoff(base time.Duration) ClientOption {
	return func(c *Client) {
		if base >= 0 {
			c.backoff = base
		}
	}
}

// WithMaxBackoff caps every retry delay — the exponential schedule and
// server Retry-After hints alike.
func WithMaxBackoff(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.maxBackoff = d
		}
	}
}

// WithTimeout bounds each HTTP request; 0 disables the bound.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// WithConcurrency sets the worker-pool width BatchLookup (and
// RemoteProvider prefetches) fan chunks out over.
func WithConcurrency(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.concurrency = n
		}
	}
}

// WithClientMaxBatch sets the per-request chunk size for BatchLookup.
func WithClientMaxBatch(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.maxBatch = n
		}
	}
}

// WithDatabase pins every Provider-style lookup to one database, as the
// geodb.Provider adapter requires.
func WithDatabase(name string) ClientOption {
	return func(c *Client) { c.DB = name }
}

// WithHTTPClient swaps the underlying *http.Client (custom transports,
// test round-trippers, chaos injection via faults.RoundTripper).
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *Client) { c.HTTPClient = h }
}

// WithClientLogger routes the client's retry warnings through l instead
// of the process default logger.
func WithClientLogger(l *slog.Logger) ClientOption {
	return func(c *Client) { c.logger = l }
}

// WithBreaker configures the per-host circuit breaker: threshold
// consecutive failed attempts open it, and an open breaker rejects
// requests for cooldown before letting a single probe through.
// threshold 0 disables the breaker.
func WithBreaker(threshold int, cooldown time.Duration) ClientOption {
	return func(c *Client) {
		c.brThreshold = threshold
		if cooldown > 0 {
			c.brCooldown = cooldown
		}
	}
}

// WithClientMetrics registers the client's resilience instruments —
// breaker state/opens/short-circuits under client.breaker.<host>.*,
// outage tallies under client.outage.* — in reg. Handing it a server
// Handler.Registry() makes them visible on that server's /v2/stats;
// handing it an obs.Run registry lands them in the run manifest.
func WithClientMetrics(reg *obs.Registry) ClientOption {
	return func(c *Client) { c.reg = reg }
}

// ErrGenerationMismatch is returned (wrapped) when the server answers
// from a generation other than the one pinned by WithRequiredGeneration.
// It is terminal: retrying cannot help, since the server has moved on.
var ErrGenerationMismatch = errors.New("httpapi: server generation changed")

// WithRequiredGeneration pins the client to one server generation: any
// response carrying a different X-Geodb-Generation fails immediately
// with ErrGenerationMismatch instead of silently mixing answers from
// two database generations. Use Generation() after a first request to
// learn the value to pin. Empty (the default) disables the check;
// responses without the header (older servers) always pass.
func WithRequiredGeneration(gen string) ClientOption {
	return func(c *Client) { c.requiredGen = gen }
}

// ErrBeforeArchiveHorizon is returned (wrapped) when an asof-pinned
// lookup asks for a point in time older than every generation the
// server retains. It is terminal: the archive only loses generations
// going forward, so retrying cannot help.
var ErrBeforeArchiveHorizon = errors.New("httpapi: asof precedes the snapshot archive horizon")

// beforeHorizonText is the ErrorResponse body the server sends for such
// requests; the client matches it to map the 404 onto the sentinel
// (a plain 404 — wrong path, unknown database — stays a status error).
const beforeHorizonText = "no generation at or before asof: beyond the snapshot archive horizon"

// WithAsOf pins every batch lookup to a point in time: requests go to
// /v2/lookup?asof=<unix> and the server answers from the newest
// generation built at or before it (the snapshot archive's time-travel
// query). Asking for a time the archive no longer covers fails with
// ErrBeforeArchiveHorizon.
func WithAsOf(unix int64) ClientOption {
	return func(c *Client) { c.asof, c.asofSet = unix, true }
}

// WithBaseContext sets the context Provider-shaped entry points
// (Lookup, TryLookup via RemoteProvider, Databases, Stats) derive their
// request contexts from, since the geodb.Provider interface cannot carry
// one. Cancelling it aborts their in-flight retries.
func WithBaseContext(ctx context.Context) ClientOption {
	return func(c *Client) { c.baseCtx = ctx }
}

// Client talks to a server created by NewHandler. The zero value with
// only BaseURL set is a valid v1 client; NewClient additionally arms
// retries, capped+jittered backoff, timeouts, batch concurrency and the
// circuit breaker.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// DB optionally pins every lookup to one database; required for the
	// geodb.Provider adapter.
	DB string

	retries     int
	backoff     time.Duration
	maxBackoff  time.Duration
	timeout     time.Duration
	concurrency int
	maxBatch    int
	brThreshold int
	brCooldown  time.Duration
	baseCtx     context.Context
	reg         *obs.Registry
	// sleep is swapped out by tests to avoid real backoff waits.
	sleep func(time.Duration)
	// jitter picks a random duration in [0, n]; tests pin it to n so
	// backoff assertions stay exact.
	jitter func(n time.Duration) time.Duration
	// logger defaults to slog.Default at call time, so binaries that
	// configure logging flags after building the client still apply.
	logger *slog.Logger

	br            *breaker
	transportErrs atomic.Int64
	mu            sync.Mutex
	lastErr       error

	// requiredGen pins responses to one server generation; gen tracks the
	// last generation observed and genFlips counts changes, so a sweep
	// can detect a server hot reload happening underneath it.
	requiredGen string
	genMu       sync.Mutex
	gen         string
	genFlips    atomic.Int64

	// asof pins batch lookups to a point in time (WithAsOf); asofSet
	// distinguishes "no pin" from an explicit asof of 0.
	asof    int64
	asofSet bool
}

// NewClient builds a resilient client with the Default* settings, then
// applies opts.
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{
		BaseURL:     baseURL,
		retries:     DefaultRetries,
		backoff:     DefaultBackoff,
		maxBackoff:  DefaultMaxBackoff,
		timeout:     DefaultTimeout,
		concurrency: DefaultConcurrency,
		maxBatch:    DefaultClientMaxBatch,
		brThreshold: DefaultBreakerThreshold,
		brCooldown:  DefaultBreakerCooldown,
	}
	for _, o := range opts {
		o(c)
	}
	if c.brThreshold > 0 {
		c.br = newBreaker(hostOf(baseURL), c.brThreshold, c.brCooldown)
		if c.reg != nil {
			c.br.bindRegistry(c.reg)
		}
	}
	return c
}

// hostOf extracts the host a breaker is keyed by.
func hostOf(baseURL string) string {
	if u, err := url.Parse(baseURL); err == nil && u.Host != "" {
		return u.Host
	}
	return baseURL
}

// BreakerStats snapshots the circuit breaker. The zero value means the
// breaker is disabled.
func (c *Client) BreakerStats() BreakerStats {
	if c.br == nil {
		return BreakerStats{}
	}
	return c.br.stats()
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) workers() int {
	if c.concurrency > 0 {
		return c.concurrency
	}
	return 1
}

func (c *Client) batchSize() int {
	if c.maxBatch > 0 {
		return c.maxBatch
	}
	return DefaultClientMaxBatch
}

// rootCtx is the fallback for entry points whose signatures cannot carry
// a context (the geodb.Provider interface); WithBaseContext overrides.
func (c *Client) rootCtx() context.Context {
	if c.baseCtx != nil {
		return c.baseCtx
	}
	//lint:ignore ctxfirst Provider-shaped entry points have no context parameter; WithBaseContext is the threading path
	return context.Background()
}

// Err returns the last transport-level error the client hit (nil when
// every request so far succeeded). A remote-evaluation run checks this
// after scoring: a non-nil value means some misses may be outages, not
// genuine database gaps, and the coverage numbers are tainted.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

// TransportErrors counts transport-level failures (including exhausted
// retries and breaker rejections) over the client's lifetime.
func (c *Client) TransportErrors() int64 { return c.transportErrs.Load() }

func (c *Client) log() *slog.Logger {
	if c.logger != nil {
		return c.logger
	}
	return slog.Default()
}

func (c *Client) recordErr(err error) {
	c.transportErrs.Add(1)
	if c.reg != nil {
		c.reg.Counter("client.outage.transport_errors").Inc()
	}
	c.mu.Lock()
	c.lastErr = err
	c.mu.Unlock()
}

// Generation returns the last serving generation observed in a response
// header ("" before the first generation-aware response).
func (c *Client) Generation() string {
	c.genMu.Lock()
	defer c.genMu.Unlock()
	return c.gen
}

// GenerationFlips counts how many times the observed server generation
// changed across this client's responses. Non-zero after a sweep means
// the server hot-reloaded mid-sweep and the answers may span database
// generations — the run manifest should carry that taint.
func (c *Client) GenerationFlips() int64 { return c.genFlips.Load() }

// observeGeneration tracks the generation header of one response and
// enforces the WithRequiredGeneration pin. Flips tally in the registry
// as client.outage.generation_flips so they surface in /v2/stats and
// run manifests alongside the other taint signals.
func (c *Client) observeGeneration(g string) error {
	if g == "" {
		return nil
	}
	c.genMu.Lock()
	prev := c.gen
	c.gen = g
	c.genMu.Unlock()
	if prev != "" && prev != g {
		c.genFlips.Add(1)
		if c.reg != nil {
			c.reg.Counter("client.outage.generation_flips").Inc()
		}
	}
	if c.requiredGen != "" && g != c.requiredGen {
		return fmt.Errorf("%w: pinned %s, server now serves %s",
			ErrGenerationMismatch, c.requiredGen, g)
	}
	return nil
}

// retryable reports whether a response status warrants a retry: server
// errors might heal and throttles ask for a later attempt; other client
// errors will not change.
func retryable(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests
}

// maxDelay is the hard cap on one retry sleep.
func (c *Client) maxDelay() time.Duration {
	if c.maxBackoff > 0 {
		return c.maxBackoff
	}
	return DefaultMaxBackoff
}

// backoffDelay computes the attempt-th retry delay: capped exponential
// growth from the base, with equal jitter (the delay lands uniformly in
// [d/2, d]) so a fleet of clients retrying against one recovering server
// does not stampede in lockstep. Shifts are capped before they can
// overflow time.Duration — the bug that used to turn large WithRetries
// values into negative, never-slept delays.
func (c *Client) backoffDelay(attempt int) time.Duration {
	d := c.backoff
	if d <= 0 {
		return 0
	}
	max := c.maxDelay()
	for i := 1; i < attempt; i++ {
		d <<= 1
		if d >= max || d <= 0 { // d <= 0 means the shift overflowed
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + c.jitterIn(d-half)
}

// jitterIn picks a random duration in [0, n].
func (c *Client) jitterIn(n time.Duration) time.Duration {
	if n <= 0 {
		return 0
	}
	if c.jitter != nil {
		return c.jitter(n)
	}
	return time.Duration(rand.Int63n(int64(n) + 1))
}

// sleepCtx waits for d or until ctx is cancelled, whichever comes
// first. The test hook bypasses real waiting but still honors an
// already-cancelled context.
func (c *Client) sleepCtx(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		c.sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// do issues one request with the client's retry/backoff/timeout/breaker
// policy and decodes the JSON answer into out. body non-nil makes it a
// POST. The caller's ctx bounds the whole retry loop — cancellation
// aborts in-flight attempts and pending backoff sleeps alike. Each retry
// emits a warn-level log line; exhausting all attempts logs a summary,
// so outage-tainted runs are visible without polling Err.
func (c *Client) do(ctx context.Context, path string, body []byte, out interface{}) error {
	var lastErr error
	var retryAfter time.Duration
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			delay := c.backoffDelay(attempt)
			if retryAfter > 0 {
				// Honor the server's throttle hint, inside the cap.
				delay = retryAfter
				if max := c.maxDelay(); delay > max {
					delay = max
				}
			}
			c.log().Warn("retrying request",
				"path", path,
				"attempt", attempt+1,
				"max_attempts", c.retries+1,
				"backoff", delay,
				"retry_after", retryAfter,
				"error", lastErr,
			)
			if delay > 0 {
				if err := c.sleepCtx(ctx, delay); err != nil {
					lastErr = err
					break
				}
			}
		}
		if err := ctx.Err(); err != nil {
			lastErr = err
			break
		}
		retryAfter = 0
		if c.br != nil {
			if err := c.br.allow(); err != nil {
				lastErr = err
				continue
			}
		}
		status, ra, err := c.once(ctx, path, body, out)
		if errors.Is(err, ErrGenerationMismatch) || errors.Is(err, ErrBeforeArchiveHorizon) {
			// Terminal, not a transport failure: the host answered fine,
			// the data we asked for moved past our pin or fell off the
			// archive. Retrying cannot help.
			if c.br != nil {
				c.br.success()
			}
			c.log().Error("terminal lookup error", "path", path, "error", err)
			c.mu.Lock()
			c.lastErr = err
			c.mu.Unlock()
			return err
		}
		if err == nil && !retryable(status) {
			if c.br != nil {
				c.br.success() // any well-formed answer means the host is up
			}
			if status != http.StatusOK {
				return fmt.Errorf("httpapi: %s: status %d", path, status)
			}
			return nil
		}
		if c.br != nil {
			c.br.failure()
		}
		if err == nil {
			err = fmt.Errorf("httpapi: %s: status %d", path, status)
			retryAfter = ra
		}
		lastErr = err
	}
	c.log().Error("request failed after all retries",
		"path", path,
		"attempts", c.retries+1,
		"error", lastErr,
	)
	c.recordErr(lastErr)
	return lastErr
}

// once issues a single attempt. A non-2xx status is returned for the
// caller to classify (along with any Retry-After hint); only
// transport-level failures come back as err.
func (c *Client) once(ctx context.Context, path string, body []byte, out interface{}) (int, time.Duration, error) {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	method, rd := http.MethodGet, io.Reader(nil)
	if body != nil {
		method, rd = http.MethodPost, bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return 0, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if genErr := c.observeGeneration(resp.Header.Get(GenerationHeader)); genErr != nil {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return resp.StatusCode, 0, genErr
	}
	if resp.StatusCode != http.StatusOK {
		// Drain so the connection can be reused, then report the status.
		// A 404 carrying the archive-horizon sentinel body becomes the
		// terminal ErrBeforeArchiveHorizon instead of a bare status.
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if resp.StatusCode == http.StatusNotFound {
			var er ErrorResponse
			if json.Unmarshal(b, &er) == nil && er.Error == beforeHorizonText {
				return resp.StatusCode, 0, fmt.Errorf("%w: asof=%d", ErrBeforeArchiveHorizon, c.asof)
			}
		}
		return resp.StatusCode, parseRetryAfter(resp.Header.Get("Retry-After")), nil
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return 0, 0, err
		}
	}
	return resp.StatusCode, 0, nil
}

// parseRetryAfter reads the delay-seconds form of a Retry-After header.
// The HTTP-date form needs a wall-clock comparison and is rare on lookup
// APIs, so it is treated as no hint.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Databases lists the server's databases (the stable /v1 shape).
func (c *Client) Databases() ([]string, error) {
	var names []string
	if err := c.do(c.rootCtx(), "/v1/databases", nil, &names); err != nil {
		return nil, err
	}
	return names, nil
}

// DatabaseInfos lists the server's databases with range counts and
// resolution stats (/v2/databases).
func (c *Client) DatabaseInfos() ([]DatabaseInfo, error) {
	var infos []DatabaseInfo
	if err := c.do(c.rootCtx(), "/v2/databases", nil, &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// Stats fetches the server's /v2/stats counters.
func (c *Client) Stats() (StatsResponse, error) {
	var s StatsResponse
	if err := c.do(c.rootCtx(), "/v2/stats", nil, &s); err != nil {
		return StatsResponse{}, err
	}
	return s, nil
}

// LookupAll queries every database for one address.
func (c *Client) LookupAll(ip string) (LookupResponse, error) {
	return c.lookup(c.rootCtx(), ip, "")
}

func (c *Client) lookup(ctx context.Context, ip, db string) (LookupResponse, error) {
	path := "/v1/lookup?ip=" + url.QueryEscape(ip)
	if db != "" {
		path += "&db=" + url.QueryEscape(db)
	}
	var out LookupResponse
	if err := c.do(ctx, path, nil, &out); err != nil {
		return LookupResponse{}, err
	}
	return out, nil
}

// BatchLookup resolves many addresses through POST /v2/lookup,
// splitting the list into maxBatch-sized chunks fanned out over the
// configured worker pool. ctx bounds the whole fan-out, retries
// included — cancelling it stops workers mid-list. The result preserves
// input order; malformed addresses surface per-entry in
// BatchEntry.Error. The db filter is the client's pinned DB (empty =
// all databases).
func (c *Client) BatchLookup(ctx context.Context, ips []string) ([]BatchEntry, error) {
	if len(ips) == 0 {
		return nil, nil
	}
	size := c.batchSize()
	type chunk struct{ lo, hi int }
	var chunks []chunk
	for lo := 0; lo < len(ips); lo += size {
		hi := lo + size
		if hi > len(ips) {
			hi = len(ips)
		}
		chunks = append(chunks, chunk{lo, hi})
	}

	entries := make([]BatchEntry, len(ips))
	var firstErr error
	var errMu sync.Mutex
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := c.workers()
	if workers > len(chunks) {
		workers = len(chunks)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(chunks) || ctx.Err() != nil {
					return
				}
				ck := chunks[i]
				body, err := json.Marshal(BatchRequest{IPs: ips[ck.lo:ck.hi], DB: c.DB})
				if err == nil {
					var resp BatchResponse
					err = c.do(ctx, c.v2LookupPath(), body, &resp)
					if err == nil && len(resp.Entries) != ck.hi-ck.lo {
						err = fmt.Errorf("httpapi: batch answer has %d entries, want %d",
							len(resp.Entries), ck.hi-ck.lo)
					}
					if err == nil {
						copy(entries[ck.lo:ck.hi], resp.Entries)
						continue
					}
				}
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr == nil {
		if err := ctx.Err(); err != nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return entries, nil
}

// v2LookupPath is the batch endpoint, with the asof pin attached when
// WithAsOf configured one.
func (c *Client) v2LookupPath() string {
	if !c.asofSet {
		return "/v2/lookup"
	}
	return "/v2/lookup?asof=" + strconv.FormatInt(c.asof, 10)
}

// Name implements geodb.Provider.
func (c *Client) Name() string { return c.DB }

// TryLookup resolves one address in the pinned database, distinguishing
// a transport failure (err != nil) from a genuine database miss
// (ok == false, err == nil) — the distinction Lookup's Provider
// signature cannot express. ctx bounds the attempt and its retries.
func (c *Client) TryLookup(ctx context.Context, a ipx.Addr) (geodb.Record, bool, error) {
	if c.DB == "" {
		return geodb.Record{}, false, errors.New("httpapi: no database pinned (set Client.DB or WithDatabase)")
	}
	resp, err := c.lookup(ctx, a.String(), c.DB)
	if err != nil {
		return geodb.Record{}, false, err
	}
	rj, ok := resp.Results[c.DB]
	if !ok {
		return geodb.Record{}, false, nil
	}
	rec, found := toRecord(rj)
	return rec, found, nil
}

// Lookup implements geodb.Provider over the wire, so the core
// evaluation can score a *remote* database exactly like a local one.
// Transport errors surface as misses to honor the Provider contract,
// but unlike the original client they are not silent: they tally in
// TransportErrors and persist in Err, so an evaluation can detect
// outage-tainted coverage numbers. Use TryLookup when the caller can
// handle errors directly, and WithBaseContext to make these calls
// cancellable.
func (c *Client) Lookup(a ipx.Addr) (geodb.Record, bool) {
	rec, ok, err := c.TryLookup(c.rootCtx(), a)
	if err != nil {
		return geodb.Record{}, false
	}
	return rec, ok
}

// compile-time interface check
var _ geodb.Provider = (*Client)(nil)
