package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

// Client defaults, applied by NewClient; a zero/struct-literal Client
// behaves like the original v1 client (no retries, no timeout).
const (
	DefaultRetries     = 2
	DefaultBackoff     = 100 * time.Millisecond
	DefaultTimeout     = 30 * time.Second
	DefaultConcurrency = 4
	// DefaultClientMaxBatch is the client-side chunk size for
	// BatchLookup; requests never exceed it even when the server would
	// accept more.
	DefaultClientMaxBatch = 10_000
)

// ClientOption configures NewClient.
type ClientOption func(*Client)

// WithRetries sets how many times a failed request (transport error or
// 5xx) is reissued before giving up.
func WithRetries(n int) ClientOption {
	return func(c *Client) {
		if n >= 0 {
			c.retries = n
		}
	}
}

// WithBackoff sets the base retry delay; attempt k sleeps base<<k.
func WithBackoff(base time.Duration) ClientOption {
	return func(c *Client) {
		if base >= 0 {
			c.backoff = base
		}
	}
}

// WithTimeout bounds each HTTP request; 0 disables the bound.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// WithConcurrency sets the worker-pool width BatchLookup (and
// RemoteProvider prefetches) fan chunks out over.
func WithConcurrency(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.concurrency = n
		}
	}
}

// WithClientMaxBatch sets the per-request chunk size for BatchLookup.
func WithClientMaxBatch(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.maxBatch = n
		}
	}
}

// WithDatabase pins every Provider-style lookup to one database, as the
// geodb.Provider adapter requires.
func WithDatabase(name string) ClientOption {
	return func(c *Client) { c.DB = name }
}

// WithHTTPClient swaps the underlying *http.Client (custom transports,
// test round-trippers).
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *Client) { c.HTTPClient = h }
}

// WithClientLogger routes the client's retry warnings through l instead
// of the process default logger.
func WithClientLogger(l *slog.Logger) ClientOption {
	return func(c *Client) { c.logger = l }
}

// Client talks to a server created by NewHandler. The zero value with
// only BaseURL set is a valid v1 client; NewClient additionally arms
// retries, backoff, timeouts and batch concurrency.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// DB optionally pins every lookup to one database; required for the
	// geodb.Provider adapter.
	DB string

	retries     int
	backoff     time.Duration
	timeout     time.Duration
	concurrency int
	maxBatch    int
	// sleep is swapped out by tests to avoid real backoff waits.
	sleep func(time.Duration)
	// logger defaults to slog.Default at call time, so binaries that
	// configure logging flags after building the client still apply.
	logger *slog.Logger

	transportErrs atomic.Int64
	mu            sync.Mutex
	lastErr       error
}

// NewClient builds a resilient client with the Default* settings, then
// applies opts.
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{
		BaseURL:     baseURL,
		retries:     DefaultRetries,
		backoff:     DefaultBackoff,
		timeout:     DefaultTimeout,
		concurrency: DefaultConcurrency,
		maxBatch:    DefaultClientMaxBatch,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) workers() int {
	if c.concurrency > 0 {
		return c.concurrency
	}
	return 1
}

func (c *Client) batchSize() int {
	if c.maxBatch > 0 {
		return c.maxBatch
	}
	return DefaultClientMaxBatch
}

// Err returns the last transport-level error the client hit (nil when
// every request so far succeeded). A remote-evaluation run checks this
// after scoring: a non-nil value means some misses may be outages, not
// genuine database gaps, and the coverage numbers are tainted.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

// TransportErrors counts transport-level failures (including exhausted
// retries) over the client's lifetime.
func (c *Client) TransportErrors() int64 { return c.transportErrs.Load() }

func (c *Client) log() *slog.Logger {
	if c.logger != nil {
		return c.logger
	}
	return slog.Default()
}

func (c *Client) recordErr(err error) {
	c.transportErrs.Add(1)
	c.mu.Lock()
	c.lastErr = err
	c.mu.Unlock()
}

// retryable reports whether a response status warrants a retry: server
// errors might heal; client errors will not.
func retryable(status int) bool { return status >= 500 }

// do issues one request with the client's retry/backoff/timeout policy
// and decodes the JSON answer into out. body non-nil makes it a POST.
// Each retry emits a warn-level log line; exhausting all attempts logs a
// summary, so outage-tainted runs are visible without polling Err.
func (c *Client) do(path string, body []byte, out interface{}) error {
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			delay := c.backoff << (attempt - 1)
			c.log().Warn("retrying request",
				"path", path,
				"attempt", attempt+1,
				"max_attempts", c.retries+1,
				"backoff", delay,
				"error", lastErr,
			)
			if delay > 0 {
				sleep := c.sleep
				if sleep == nil {
					sleep = time.Sleep
				}
				sleep(delay)
			}
		}
		status, err := c.once(path, body, out)
		if err == nil && !retryable(status) {
			if status != http.StatusOK {
				return fmt.Errorf("httpapi: %s: status %d", path, status)
			}
			return nil
		}
		if err == nil {
			err = fmt.Errorf("httpapi: %s: status %d", path, status)
		}
		lastErr = err
	}
	c.log().Error("request failed after all retries",
		"path", path,
		"attempts", c.retries+1,
		"error", lastErr,
	)
	c.recordErr(lastErr)
	return lastErr
}

// once issues a single attempt. A non-2xx status is returned for the
// caller to classify; only transport-level failures come back as err.
func (c *Client) once(path string, body []byte, out interface{}) (int, error) {
	ctx := context.Background()
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	method, rd := http.MethodGet, io.Reader(nil)
	if body != nil {
		method, rd = http.MethodPost, bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Drain so the connection can be reused, then report the status.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return resp.StatusCode, nil
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return 0, err
		}
	}
	return resp.StatusCode, nil
}

// Databases lists the server's databases (the stable /v1 shape).
func (c *Client) Databases() ([]string, error) {
	var names []string
	if err := c.do("/v1/databases", nil, &names); err != nil {
		return nil, err
	}
	return names, nil
}

// DatabaseInfos lists the server's databases with range counts and
// resolution stats (/v2/databases).
func (c *Client) DatabaseInfos() ([]DatabaseInfo, error) {
	var infos []DatabaseInfo
	if err := c.do("/v2/databases", nil, &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// Stats fetches the server's /v2/stats counters.
func (c *Client) Stats() (StatsResponse, error) {
	var s StatsResponse
	if err := c.do("/v2/stats", nil, &s); err != nil {
		return StatsResponse{}, err
	}
	return s, nil
}

// LookupAll queries every database for one address.
func (c *Client) LookupAll(ip string) (LookupResponse, error) {
	return c.lookup(ip, "")
}

func (c *Client) lookup(ip, db string) (LookupResponse, error) {
	path := "/v1/lookup?ip=" + url.QueryEscape(ip)
	if db != "" {
		path += "&db=" + url.QueryEscape(db)
	}
	var out LookupResponse
	if err := c.do(path, nil, &out); err != nil {
		return LookupResponse{}, err
	}
	return out, nil
}

// BatchLookup resolves many addresses through POST /v2/lookup,
// splitting the list into maxBatch-sized chunks fanned out over the
// configured worker pool. The result preserves input order; malformed
// addresses surface per-entry in BatchEntry.Error. The db filter is the
// client's pinned DB (empty = all databases).
func (c *Client) BatchLookup(ips []string) ([]BatchEntry, error) {
	if len(ips) == 0 {
		return nil, nil
	}
	size := c.batchSize()
	type chunk struct{ lo, hi int }
	var chunks []chunk
	for lo := 0; lo < len(ips); lo += size {
		hi := lo + size
		if hi > len(ips) {
			hi = len(ips)
		}
		chunks = append(chunks, chunk{lo, hi})
	}

	entries := make([]BatchEntry, len(ips))
	var firstErr error
	var errMu sync.Mutex
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := c.workers()
	if workers > len(chunks) {
		workers = len(chunks)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(chunks) {
					return
				}
				ck := chunks[i]
				body, err := json.Marshal(BatchRequest{IPs: ips[ck.lo:ck.hi], DB: c.DB})
				if err == nil {
					var resp BatchResponse
					err = c.do("/v2/lookup", body, &resp)
					if err == nil && len(resp.Entries) != ck.hi-ck.lo {
						err = fmt.Errorf("httpapi: batch answer has %d entries, want %d",
							len(resp.Entries), ck.hi-ck.lo)
					}
					if err == nil {
						copy(entries[ck.lo:ck.hi], resp.Entries)
						continue
					}
				}
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return entries, nil
}

// Name implements geodb.Provider.
func (c *Client) Name() string { return c.DB }

// TryLookup resolves one address in the pinned database, distinguishing
// a transport failure (err != nil) from a genuine database miss
// (ok == false, err == nil) — the distinction Lookup's Provider
// signature cannot express.
func (c *Client) TryLookup(a ipx.Addr) (geodb.Record, bool, error) {
	if c.DB == "" {
		return geodb.Record{}, false, errors.New("httpapi: no database pinned (set Client.DB or WithDatabase)")
	}
	resp, err := c.lookup(a.String(), c.DB)
	if err != nil {
		return geodb.Record{}, false, err
	}
	rj, ok := resp.Results[c.DB]
	if !ok {
		return geodb.Record{}, false, nil
	}
	rec, found := toRecord(rj)
	return rec, found, nil
}

// Lookup implements geodb.Provider over the wire, so the core
// evaluation can score a *remote* database exactly like a local one.
// Transport errors surface as misses to honor the Provider contract,
// but unlike the original client they are not silent: they tally in
// TransportErrors and persist in Err, so an evaluation can detect
// outage-tainted coverage numbers. Use TryLookup when the caller can
// handle errors directly.
func (c *Client) Lookup(a ipx.Addr) (geodb.Record, bool) {
	rec, ok, err := c.TryLookup(a)
	if err != nil {
		return geodb.Record{}, false
	}
	return rec, ok
}

// compile-time interface check
var _ geodb.Provider = (*Client)(nil)
