package httpapi

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"time"

	"routergeo/internal/geodb"
	"routergeo/internal/geodb/snapshot"
	"routergeo/internal/obs"
)

// ErrReloadInFlight is returned by Reloader.Rescan when another rescan
// is already loading or swapping; the admin endpoint maps it to 409.
var ErrReloadInFlight = errors.New("httpapi: snapshot reload already in flight")

// DefaultReloadInterval is how often Reloader.Run polls the snapshot
// directory when no interval is configured.
const DefaultReloadInterval = 5 * time.Second

// Reloader gives a Handler zero-downtime hot reload from a snapshot
// directory: it polls the directory, and when the set of *.rgsnap files
// changes (path, size, mtime or header checksum) it loads the whole new
// generation beside
// the old one, validates every file (magic, version, checksum — the
// loader refuses anything less), and swaps it in atomically. A failed
// load leaves the serving generation untouched. Publishers therefore
// deploy by writing snapshots to a temp name and renaming into place —
// exactly what snapshot.WriteFile does.
type Reloader struct {
	h        *Handler
	dir      string
	interval time.Duration
	logger   *slog.Logger

	// inFlight serializes rescans without blocking: concurrent callers
	// get ErrReloadInFlight instead of queueing behind a slow load.
	inFlight chan struct{}
	// state is the directory fingerprint of the generation last swapped
	// in; only the rescan holding inFlight touches it.
	state map[string]fileStamp

	reloads  *obs.Counter
	failures *obs.Counter
}

type fileStamp struct {
	size  int64
	mtime time.Time
	// sum is the snapshot header checksum: a republish of different
	// content at the same size landing within mtime granularity still
	// changes the stamp. 0 when the header could not be read — the
	// stamp is kept anyway so a corrupt publish stays visible as a
	// change (and fails the load loudly).
	sum uint64
}

// NewReloader watches dir on behalf of h. interval <= 0 selects
// DefaultReloadInterval; logger nil disables reload logging. Reload
// outcomes are counted in h's registry as reload.count / reload.failures.
func NewReloader(h *Handler, dir string, interval time.Duration, logger *slog.Logger) *Reloader {
	if interval <= 0 {
		interval = DefaultReloadInterval
	}
	h.Registry().SetHelp("reload.count", "Successful snapshot-directory hot reloads.")
	h.Registry().SetHelp("reload.failures", "Snapshot rescans that failed and left the serving generation untouched.")
	return &Reloader{
		h:        h,
		dir:      dir,
		interval: interval,
		logger:   logger,
		inFlight: make(chan struct{}, 1),
		reloads:  h.Registry().Counter("reload.count"),
		failures: h.Registry().Counter("reload.failures"),
	}
}

// scan fingerprints the snapshot files currently in the directory.
func (r *Reloader) scan() (map[string]fileStamp, error) {
	paths, err := filepath.Glob(filepath.Join(r.dir, "*"+snapshot.Ext))
	if err != nil {
		return nil, err
	}
	out := make(map[string]fileStamp, len(paths))
	for _, p := range paths {
		st, err := os.Stat(p)
		if err != nil {
			// A file vanishing between glob and stat is a publisher mid-
			// rename; skip it, the next poll sees the stable state.
			continue
		}
		sum, err := snapshot.HeaderChecksum(p)
		if err != nil {
			sum = 0
		}
		out[p] = fileStamp{size: st.Size(), mtime: st.ModTime(), sum: sum}
	}
	return out, nil
}

func sameStamps(a, b map[string]fileStamp) bool {
	if len(a) != len(b) {
		return false
	}
	for p, s := range a {
		if o, ok := b[p]; !ok || o != s {
			return false
		}
	}
	return true
}

// Rescan checks the directory once and hot-swaps a new generation if it
// changed (or force is set). It reports whether a swap happened.
// Concurrent calls do not queue: whoever finds a rescan in flight gets
// ErrReloadInFlight. Any load failure counts in reload.failures, leaves
// the serving generation untouched, and closes whatever was already
// opened for the aborted generation.
func (r *Reloader) Rescan(force bool) (bool, error) {
	select {
	case r.inFlight <- struct{}{}:
	default:
		return false, ErrReloadInFlight
	}
	defer func() { <-r.inFlight }()

	stamps, err := r.scan()
	if err != nil {
		r.failures.Inc()
		r.h.bus.Publish("reload.fail", "dir", r.dir, "error", err.Error())
		return false, err
	}
	if len(stamps) == 0 {
		r.failures.Inc()
		err := fmt.Errorf("httpapi: no %s files in %s", snapshot.Ext, r.dir)
		r.h.bus.Publish("reload.fail", "dir", r.dir, "error", err.Error())
		return false, err
	}
	if !force && sameStamps(stamps, r.state) {
		return false, nil
	}

	var paths []string
	for p := range stamps {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var dbs []*geodb.DB
	var closers []func() error
	for _, p := range paths {
		h, err := snapshot.Open(p)
		if err != nil {
			for _, c := range closers {
				_ = c()
			}
			r.failures.Inc()
			r.h.bus.Publish("reload.fail", "path", p, "error", err.Error())
			if r.logger != nil {
				r.logger.Error("snapshot reload failed; keeping serving generation",
					"path", p, "error", err)
			}
			return false, err
		}
		dbs = append(dbs, h.DB())
		closers = append(closers, h.Close)
	}
	gen := r.h.Swap(dbs, closers...)
	r.state = stamps
	r.reloads.Inc()
	r.h.bus.Publish("reload.ok", "generation", gen, "databases", len(dbs), "dir", r.dir)
	if r.logger != nil {
		r.logger.Info("snapshot generation swapped in",
			"generation", gen, "databases", len(dbs), "dir", r.dir)
	}
	return true, nil
}

// AdminHook adapts the reloader for WithAdminReload.
func (r *Reloader) AdminHook() func(force bool) (bool, error) {
	return r.Rescan
}

// Run polls the directory until ctx is cancelled. Failed rescans are
// logged and retried on the next tick; the serving generation is never
// disturbed by a bad publish.
func (r *Reloader) Run(ctx context.Context) {
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if _, err := r.Rescan(false); err != nil && !errors.Is(err, ErrReloadInFlight) {
				if r.logger != nil {
					r.logger.Warn("snapshot rescan failed", "dir", r.dir, "error", err)
				}
			}
		}
	}
}
