//go:build !race

package httpapi

// raceEnabled mirrors the stdlib's internal/race.Enabled; see
// race_on_test.go.
const raceEnabled = false
