// Package httpapi serves geolocation databases over HTTP, the way the
// commercial products the paper studies are consumed in practice
// (MaxMind's GeoIP2 Precision and IP2Location expose near-identical
// JSON lookup endpoints). It also provides the matching client, so the
// evaluation in internal/core can run unchanged against a remote
// database by wrapping the client in the geodb.Provider interface.
//
// Endpoints:
//
//	GET /v1/databases           list served database names
//	GET /v1/lookup?ip=A[&db=N]  look an address up in one or all databases
//	GET /healthz                liveness
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"

	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

// RecordJSON is the wire form of one geolocation answer.
type RecordJSON struct {
	Country    string  `json:"country,omitempty"`
	City       string  `json:"city,omitempty"`
	Lat        float64 `json:"lat,omitempty"`
	Lon        float64 `json:"lon,omitempty"`
	Resolution string  `json:"resolution"`
	BlockBits  uint8   `json:"block_bits,omitempty"`
	Found      bool    `json:"found"`
}

func toJSON(rec geodb.Record, found bool) RecordJSON {
	if !found {
		return RecordJSON{Resolution: "none"}
	}
	return RecordJSON{
		Country:    rec.Country,
		City:       rec.City,
		Lat:        rec.Coord.Lat,
		Lon:        rec.Coord.Lon,
		Resolution: rec.Resolution.String(),
		BlockBits:  rec.BlockBits,
		Found:      true,
	}
}

// LookupResponse is the /v1/lookup payload.
type LookupResponse struct {
	IP      string                `json:"ip"`
	Results map[string]RecordJSON `json:"results"`
}

// NewHandler serves the given databases.
func NewHandler(dbs []*geodb.DB) http.Handler {
	byName := make(map[string]*geodb.DB, len(dbs))
	var names []string
	for _, db := range dbs {
		byName[db.Name()] = db
		names = append(names, db.Name())
	}
	sort.Strings(names)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/databases", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, names)
	})
	mux.HandleFunc("GET /v1/lookup", func(w http.ResponseWriter, r *http.Request) {
		ipStr := r.URL.Query().Get("ip")
		addr, err := ipx.ParseAddr(ipStr)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid or missing ip parameter"})
			return
		}
		resp := LookupResponse{IP: addr.String(), Results: map[string]RecordJSON{}}
		if dbName := r.URL.Query().Get("db"); dbName != "" {
			db, ok := byName[dbName]
			if !ok {
				writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown database " + dbName})
				return
			}
			rec, found := db.Lookup(addr)
			resp.Results[dbName] = toJSON(rec, found)
		} else {
			for name, db := range byName {
				rec, found := db.Lookup(addr)
				resp.Results[name] = toJSON(rec, found)
			}
		}
		writeJSON(w, http.StatusOK, resp)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding to a ResponseWriter cannot meaningfully recover; ignore the
	// error as net/http handlers conventionally do after headers are sent.
	_ = json.NewEncoder(w).Encode(v)
}

// Client talks to a server created by NewHandler.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// DB optionally pins every lookup to one database; required for the
	// geodb.Provider adapter.
	DB string
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Databases lists the server's databases.
func (c *Client) Databases() ([]string, error) {
	resp, err := c.httpClient().Get(c.BaseURL + "/v1/databases")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("httpapi: databases: status %d", resp.StatusCode)
	}
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		return nil, err
	}
	return names, nil
}

// LookupAll queries every database for one address.
func (c *Client) LookupAll(ip string) (LookupResponse, error) {
	return c.lookup(ip, "")
}

func (c *Client) lookup(ip, db string) (LookupResponse, error) {
	u := c.BaseURL + "/v1/lookup?ip=" + url.QueryEscape(ip)
	if db != "" {
		u += "&db=" + url.QueryEscape(db)
	}
	resp, err := c.httpClient().Get(u)
	if err != nil {
		return LookupResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return LookupResponse{}, fmt.Errorf("httpapi: lookup: status %d", resp.StatusCode)
	}
	var out LookupResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return LookupResponse{}, err
	}
	return out, nil
}

// Name implements geodb.Provider.
func (c *Client) Name() string { return c.DB }

// Lookup implements geodb.Provider over the wire, so the core evaluation
// can score a *remote* database exactly like a local one. Transport
// errors surface as misses, which is how a lookup service outage would
// look to a measurement pipeline.
func (c *Client) Lookup(a ipx.Addr) (geodb.Record, bool) {
	if c.DB == "" {
		return geodb.Record{}, false
	}
	resp, err := c.lookup(a.String(), c.DB)
	if err != nil {
		return geodb.Record{}, false
	}
	rj, ok := resp.Results[c.DB]
	if !ok || !rj.Found {
		return geodb.Record{}, false
	}
	rec := geodb.Record{
		Country:   rj.Country,
		City:      rj.City,
		BlockBits: rj.BlockBits,
	}
	rec.Coord.Lat, rec.Coord.Lon = rj.Lat, rj.Lon
	switch rj.Resolution {
	case "city":
		rec.Resolution = geodb.ResolutionCity
	case "country":
		rec.Resolution = geodb.ResolutionCountry
	}
	return rec, true
}

// compile-time interface check
var _ geodb.Provider = (*Client)(nil)
