// Package httpapi serves geolocation databases over HTTP, the way the
// commercial products the paper studies are consumed in practice
// (MaxMind's GeoIP2 Precision and IP2Location expose near-identical
// JSON lookup endpoints). It also provides the matching client, so the
// evaluation in internal/core can run unchanged against a remote
// database by wrapping the client in the geodb.Provider interface.
//
// The API has two generations. /v1 is the original one-address-per-
// request surface and is kept stable for existing consumers; /v2 is
// batch-first, sized for the paper's 1.64M-address Ark sweep, and adds
// introspection endpoints:
//
//	GET  /v1/databases           list served database names (stable)
//	GET  /v1/lookup?ip=A[&db=N]  look one address up (stable)
//	POST /v2/lookup              batch lookup: {"ips":[...],"db":N}
//	GET  /v2/databases           names, range counts, snapshot identity
//	GET  /v2/stats               request counters, latency quantiles, hit/miss
//	POST /v2/admin/reload        trigger a snapshot rescan (if armed)
//	GET  /healthz                liveness ("ok", or "draining" during shutdown)
//
// The server is generation-aware: the set of databases can be hot-
// swapped at runtime (Handler.Swap, driven by a Reloader watching a
// snapshot directory) with zero dropped requests — in-flight requests
// finish on the generation they started with, and a retired
// generation's backing snapshot mappings are released only after its
// last reader drains. Every response carries the serving generation in
// the X-Geodb-Generation header; /v2/databases and /v2/stats answer
// with an ETag derived from it and honor If-None-Match with 304, so a
// poller detects a flip in one cheap conditional request.
//
// Stability: /v1 is frozen — its routes, parameters and payload shapes
// are exactly the original one-address-per-request surface and carry no
// generation fields. All generation-aware additions live on /v2
// (additive, omitempty) and in response headers.
//
// The server side threads every request through a middleware stack
// (panic recovery, request logging, metrics, timeouts, body-size caps);
// the Client adds retries with exponential backoff, per-request
// timeouts, and a bounded-concurrency BatchLookup. RemoteProvider
// combines the two into a geodb.Provider that prefetches batches
// through a worker pool, so remote evaluation runs at near-local
// throughput.
package httpapi

import (
	"encoding/json"
	"net/http"

	"routergeo/internal/geodb"
)

// RecordJSON is the wire form of one geolocation answer.
type RecordJSON struct {
	Country    string  `json:"country,omitempty"`
	City       string  `json:"city,omitempty"`
	Lat        float64 `json:"lat,omitempty"`
	Lon        float64 `json:"lon,omitempty"`
	Resolution string  `json:"resolution"`
	BlockBits  uint8   `json:"block_bits,omitempty"`
	Found      bool    `json:"found"`
}

func toJSON(rec geodb.Record, found bool) RecordJSON {
	if !found {
		return RecordJSON{Resolution: "none"}
	}
	return RecordJSON{
		Country:    rec.Country,
		City:       rec.City,
		Lat:        rec.Coord.Lat,
		Lon:        rec.Coord.Lon,
		Resolution: rec.Resolution.String(),
		BlockBits:  rec.BlockBits,
		Found:      true,
	}
}

// toRecord is toJSON's inverse, used by the client to rebuild a
// geodb.Record from the wire form.
func toRecord(rj RecordJSON) (geodb.Record, bool) {
	if !rj.Found {
		return geodb.Record{}, false
	}
	rec := geodb.Record{
		Country:   rj.Country,
		City:      rj.City,
		BlockBits: rj.BlockBits,
	}
	rec.Coord.Lat, rec.Coord.Lon = rj.Lat, rj.Lon
	switch rj.Resolution {
	case "city":
		rec.Resolution = geodb.ResolutionCity
	case "country":
		rec.Resolution = geodb.ResolutionCountry
	}
	return rec, true
}

// LookupResponse is the /v1/lookup payload.
type LookupResponse struct {
	IP      string                `json:"ip"`
	Results map[string]RecordJSON `json:"results"`
}

// BatchRequest is the POST /v2/lookup body. DB optionally restricts the
// lookup to one database; when empty every served database answers.
type BatchRequest struct {
	IPs []string `json:"ips"`
	DB  string   `json:"db,omitempty"`
}

// BatchEntry is one address's answer inside a BatchResponse. A
// malformed address carries its parse error here instead of failing the
// whole request.
type BatchEntry struct {
	IP      string                `json:"ip"`
	Error   string                `json:"error,omitempty"`
	Results map[string]RecordJSON `json:"results,omitempty"`
}

// BatchResponse is the POST /v2/lookup payload. Entries preserves the
// request order.
type BatchResponse struct {
	Entries []BatchEntry `json:"entries"`
}

// DatabaseInfo is one /v2/databases element: the name plus the range
// counts the paper's coverage analysis cares about, and the snapshot
// identity block the generation-aware /v2 surface added.
type DatabaseInfo struct {
	Name          string `json:"name"`
	Ranges        int    `json:"ranges"`
	CityRanges    int    `json:"city_ranges"`
	CountryRanges int    `json:"country_ranges"`
	// Snapshot identifies the exact database bytes being served. Always
	// present on servers of this version; older clients ignore it.
	Snapshot *SnapshotInfo `json:"snapshot,omitempty"`
}

// SnapshotInfo is the per-database identity block on /v2/databases and
// /v2/stats: which exact bytes answer lookups right now.
type SnapshotInfo struct {
	// Generation identifies the database bytes: the snapshot checksum in
	// hex for snapshot-loaded databases, a content fingerprint otherwise.
	Generation string `json:"generation"`
	// Checksum is the snapshot file checksum in hex; absent for
	// databases not loaded from a snapshot.
	Checksum string `json:"checksum,omitempty"`
	// BuildEpoch is the writer-recorded build time in unix seconds.
	BuildEpoch int64 `json:"build_epoch,omitempty"`
	// SourceFormat says where the database came from: "snapshot",
	// "dbfile", "csv" or "memory".
	SourceFormat string `json:"source_format,omitempty"`
}

// ReloadResponse is the POST /v2/admin/reload payload: whether a new
// generation was swapped in ("reloaded" / "unchanged") and the set-level
// generation id now serving.
type ReloadResponse struct {
	Status     string `json:"status"`
	Generation string `json:"generation"`
}

// ErrorResponse is the body of every non-200 JSON answer.
type ErrorResponse struct {
	Error string `json:"error"`
	// MaxBatch is set on 413 answers so clients can re-chunk.
	MaxBatch int `json:"max_batch,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding to a ResponseWriter cannot meaningfully recover; ignore the
	// error as net/http handlers conventionally do after headers are sent.
	_ = json.NewEncoder(w).Encode(v)
}
