package httpapi

import (
	"fmt"
	"sync"

	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

// RemoteProvider adapts a Client into a geodb.Provider that performs
// well over a network: addresses are fetched in /v2/lookup batches
// through the client's bounded worker pool and cached, so a core
// evaluation loop of single Lookup calls runs at near-local throughput
// instead of paying one round trip per address.
//
// It implements core's Prefetcher hook: evaluation entry points hand
// their whole target list over before the first Lookup, which turns the
// paper's 1.64M-address sweep into a few dozen pipelined requests.
// Addresses that were never prefetched fall back to a single remote
// lookup per call.
type RemoteProvider struct {
	c *Client

	mu    sync.RWMutex
	cache map[ipx.Addr]cachedRecord
}

type cachedRecord struct {
	rec   geodb.Record
	found bool
}

// NewRemoteProvider wraps c, which must have a database pinned
// (Client.DB / WithDatabase) so lookups have a well-defined answer.
func NewRemoteProvider(c *Client) (*RemoteProvider, error) {
	if c.DB == "" {
		return nil, fmt.Errorf("httpapi: RemoteProvider needs a pinned database (set Client.DB or WithDatabase)")
	}
	return &RemoteProvider{c: c, cache: make(map[ipx.Addr]cachedRecord)}, nil
}

// Name implements geodb.Provider.
func (p *RemoteProvider) Name() string { return p.c.DB }

// Prefetch resolves every not-yet-cached address through batched,
// concurrent /v2/lookup requests. It is idempotent and cheap to call
// repeatedly with overlapping address sets (per-RIR and per-country
// evaluation slices re-prefetch subsets of the same targets).
func (p *RemoteProvider) Prefetch(addrs []ipx.Addr) error {
	p.mu.RLock()
	missing := make([]string, 0, len(addrs))
	seen := make(map[ipx.Addr]bool, len(addrs))
	order := make([]ipx.Addr, 0, len(addrs))
	for _, a := range addrs {
		if seen[a] {
			continue
		}
		seen[a] = true
		if _, ok := p.cache[a]; !ok {
			missing = append(missing, a.String())
			order = append(order, a)
		}
	}
	p.mu.RUnlock()
	if len(missing) == 0 {
		return nil
	}

	entries, err := p.c.BatchLookup(missing)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, e := range entries {
		if e.Error != "" {
			continue
		}
		rec, found := toRecord(e.Results[p.c.DB])
		p.cache[order[i]] = cachedRecord{rec: rec, found: found}
	}
	return nil
}

// Lookup implements geodb.Provider: cached answers are served locally;
// anything else falls back to one remote lookup (negative answers are
// cached too, so an uncovered address costs one round trip once).
// Transport failures surface as misses per the Provider contract but
// tally on the underlying Client — check Err/TransportErrors after an
// evaluation to detect outage-tainted results.
func (p *RemoteProvider) Lookup(a ipx.Addr) (geodb.Record, bool) {
	p.mu.RLock()
	c, ok := p.cache[a]
	p.mu.RUnlock()
	if ok {
		return c.rec, c.found
	}
	rec, found, err := p.c.TryLookup(a)
	if err != nil {
		// Not cached: a later retry against a healed server may answer.
		return geodb.Record{}, false
	}
	p.mu.Lock()
	p.cache[a] = cachedRecord{rec: rec, found: found}
	p.mu.Unlock()
	return rec, found
}

// Cached reports how many addresses are resolved locally.
func (p *RemoteProvider) Cached() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.cache)
}

// Err exposes the underlying client's last transport error.
func (p *RemoteProvider) Err() error { return p.c.Err() }

// TransportErrors exposes the underlying client's failure count.
func (p *RemoteProvider) TransportErrors() int64 { return p.c.TransportErrors() }

// compile-time interface check
var _ geodb.Provider = (*RemoteProvider)(nil)
