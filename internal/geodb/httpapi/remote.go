package httpapi

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

// RemoteProvider adapts a Client into a geodb.Provider that performs
// well over a network: addresses are fetched in /v2/lookup batches
// through the client's bounded worker pool and cached, so a core
// evaluation loop of single Lookup calls runs at near-local throughput
// instead of paying one round trip per address.
//
// It implements core's Prefetcher hook: evaluation entry points hand
// their whole target list over before the first Lookup, which turns the
// paper's 1.64M-address sweep into a few dozen pipelined requests.
// Addresses that were never prefetched fall back to a single remote
// lookup per call.
//
// When the remote is unreachable (retries exhausted, circuit open) the
// provider degrades instead of silently mis-scoring:
//
//   - with WithFallback, the answer comes from the local fallback
//     provider and the lookup counts as degraded;
//   - without one, the lookup counts as tainted and reports a miss,
//     uncached, so a later attempt can still hit a healed server.
//
// Degraded/tainted tallies surface through Degraded/Tainted, the
// client's metrics registry (client.outage.*) and, via obs.Run.SetTaint,
// the run manifest.
type RemoteProvider struct {
	c        *Client
	fallback geodb.Provider

	degraded atomic.Int64
	tainted  atomic.Int64

	mu    sync.RWMutex
	cache map[ipx.Addr]cachedRecord
}

type cachedRecord struct {
	rec   geodb.Record
	found bool
}

// RemoteOption configures NewRemoteProvider.
type RemoteOption func(*RemoteProvider)

// WithFallback arms graceful degradation: when the remote cannot answer,
// lookups are served by local instead of reporting a (wrong) miss. For
// the degradation to be lossless, local must hold the same database the
// client is pinned to.
func WithFallback(local geodb.Provider) RemoteOption {
	return func(p *RemoteProvider) { p.fallback = local }
}

// NewRemoteProvider wraps c, which must have a database pinned
// (Client.DB / WithDatabase) so lookups have a well-defined answer.
func NewRemoteProvider(c *Client, opts ...RemoteOption) (*RemoteProvider, error) {
	if c.DB == "" {
		return nil, fmt.Errorf("httpapi: RemoteProvider needs a pinned database (set Client.DB or WithDatabase)")
	}
	p := &RemoteProvider{c: c, cache: make(map[ipx.Addr]cachedRecord)}
	for _, o := range opts {
		o(p)
	}
	return p, nil
}

// Name implements geodb.Provider.
func (p *RemoteProvider) Name() string { return p.c.DB }

// Prefetch resolves every not-yet-cached address through batched,
// concurrent /v2/lookup requests, bounded by ctx. It is idempotent and
// cheap to call repeatedly with overlapping address sets (per-RIR and
// per-country evaluation slices re-prefetch subsets of the same
// targets). When the remote cannot serve the batch and a fallback is
// armed, the whole missing set is resolved locally instead — degraded
// but correct.
func (p *RemoteProvider) Prefetch(ctx context.Context, addrs []ipx.Addr) error {
	p.mu.RLock()
	missing := make([]string, 0, len(addrs))
	seen := make(map[ipx.Addr]bool, len(addrs))
	order := make([]ipx.Addr, 0, len(addrs))
	for _, a := range addrs {
		if seen[a] {
			continue
		}
		seen[a] = true
		if _, ok := p.cache[a]; !ok {
			missing = append(missing, a.String())
			order = append(order, a)
		}
	}
	p.mu.RUnlock()
	if len(missing) == 0 {
		return nil
	}

	entries, err := p.c.BatchLookup(ctx, missing)
	if err != nil {
		if p.fallback == nil {
			return err
		}
		p.mu.Lock()
		defer p.mu.Unlock()
		for _, a := range order {
			rec, found := p.fallback.Lookup(a)
			p.cache[a] = cachedRecord{rec: rec, found: found}
		}
		p.countDegraded(int64(len(order)))
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, e := range entries {
		if e.Error != "" {
			continue
		}
		rec, found := toRecord(e.Results[p.c.DB])
		p.cache[order[i]] = cachedRecord{rec: rec, found: found}
	}
	return nil
}

// Lookup implements geodb.Provider: cached answers are served locally;
// anything else falls back to one remote lookup (negative answers are
// cached too, so an uncovered address costs one round trip once). When
// the remote cannot answer, the call degrades per the provider contract
// described on RemoteProvider.
func (p *RemoteProvider) Lookup(a ipx.Addr) (geodb.Record, bool) {
	p.mu.RLock()
	c, ok := p.cache[a]
	p.mu.RUnlock()
	if ok {
		return c.rec, c.found
	}
	rec, found, err := p.c.TryLookup(p.c.rootCtx(), a)
	if err != nil {
		if p.fallback != nil {
			rec, found = p.fallback.Lookup(a)
			// Cached: the fallback holds the same database, and caching
			// keeps a dead remote from being re-dialed per address.
			p.mu.Lock()
			p.cache[a] = cachedRecord{rec: rec, found: found}
			p.mu.Unlock()
			p.countDegraded(1)
			return rec, found
		}
		p.countTainted(1)
		// Not cached: a later retry against a healed server may answer.
		return geodb.Record{}, false
	}
	p.mu.Lock()
	p.cache[a] = cachedRecord{rec: rec, found: found}
	p.mu.Unlock()
	return rec, found
}

func (p *RemoteProvider) countDegraded(n int64) {
	p.degraded.Add(n)
	if p.c.reg != nil {
		p.c.reg.Counter("client.outage.degraded_lookups").Add(n)
	}
}

func (p *RemoteProvider) countTainted(n int64) {
	p.tainted.Add(n)
	if p.c.reg != nil {
		p.c.reg.Counter("client.outage.tainted_lookups").Add(n)
	}
}

// Degraded counts lookups answered by the local fallback because the
// remote was unreachable. Non-zero means the run survived an outage
// losslessly (assuming the fallback matches the remote database).
func (p *RemoteProvider) Degraded() int64 { return p.degraded.Load() }

// Tainted counts lookups that reported a miss only because the remote
// was unreachable and no fallback was armed. Non-zero means coverage
// numbers undercount and the run manifest should carry the taint.
func (p *RemoteProvider) Tainted() int64 { return p.tainted.Load() }

// Cached reports how many addresses are resolved locally.
func (p *RemoteProvider) Cached() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.cache)
}

// Err exposes the underlying client's last transport error.
func (p *RemoteProvider) Err() error { return p.c.Err() }

// Generation exposes the last server generation the underlying client
// observed.
func (p *RemoteProvider) Generation() string { return p.c.Generation() }

// GenerationFlips exposes how many times the server generation changed
// under this provider's client. Non-zero after a sweep means the remote
// hot-reloaded mid-sweep; the run manifest should record the taint.
func (p *RemoteProvider) GenerationFlips() int64 { return p.c.GenerationFlips() }

// TransportErrors exposes the underlying client's failure count.
func (p *RemoteProvider) TransportErrors() int64 { return p.c.TransportErrors() }

// compile-time interface check
var _ geodb.Provider = (*RemoteProvider)(nil)
