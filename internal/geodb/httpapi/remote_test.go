package httpapi

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"routergeo/internal/ipx"
	"routergeo/internal/obs"
)

func TestRemoteProviderNeedsPinnedDB(t *testing.T) {
	if _, err := NewRemoteProvider(NewClient("http://x")); err == nil {
		t.Fatal("RemoteProvider without a pinned database must be rejected")
	}
}

// countingTransport tallies round trips so tests can prove batching
// actually collapses the request count.
type countingTransport struct {
	calls atomic.Int64
}

func (c *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	c.calls.Add(1)
	return http.DefaultTransport.RoundTrip(req)
}

func TestRemoteProviderPrefetchMatchesLocal(t *testing.T) {
	srv := testServer(t)
	local := testDBs(t)[0] // alpha
	ct := &countingTransport{}
	p, err := NewRemoteProvider(NewClient(srv.URL,
		WithDatabase("alpha"),
		WithConcurrency(4),
		WithClientMaxBatch(50),
		WithHTTPClient(&http.Client{Transport: ct})))
	if err != nil {
		t.Fatal(err)
	}

	n := 500
	addrs := make([]ipx.Addr, n)
	for i := range addrs {
		addrs[i] = ipx.MustParseAddr(fmt.Sprintf("10.0.%d.%d", i/200, i%200+1))
	}
	addrs = append(addrs, ipx.MustParseAddr("192.0.2.7")) // a genuine miss

	if err := p.Prefetch(context.Background(), addrs); err != nil {
		t.Fatal(err)
	}
	wantReqs := int64((len(addrs) + 49) / 50)
	if got := ct.calls.Load(); got != wantReqs {
		t.Errorf("prefetch used %d requests, want %d (batching broken)", got, wantReqs)
	}
	if p.Cached() != len(addrs) {
		t.Errorf("Cached = %d, want %d", p.Cached(), len(addrs))
	}

	// Every post-prefetch Lookup is served locally: the request count
	// must not move while answers stay bit-identical to the local DB.
	before := ct.calls.Load()
	for _, a := range addrs {
		lr, lok := local.Lookup(a)
		rr, rok := p.Lookup(a)
		if lok != rok || lr != rr {
			t.Fatalf("%s: local (%+v,%v) != remote (%+v,%v)", a, lr, lok, rr, rok)
		}
	}
	if got := ct.calls.Load(); got != before {
		t.Errorf("cached lookups issued %d extra requests", got-before)
	}

	// Re-prefetching the same set is free.
	if err := p.Prefetch(context.Background(), addrs); err != nil {
		t.Fatal(err)
	}
	if got := ct.calls.Load(); got != before {
		t.Errorf("idempotent prefetch issued %d extra requests", got-before)
	}
	if err := p.Err(); err != nil {
		t.Errorf("Err = %v", err)
	}
}

func TestRemoteProviderFallbackWithoutPrefetch(t *testing.T) {
	srv := testServer(t)
	p, err := NewRemoteProvider(NewClient(srv.URL, WithDatabase("alpha")))
	if err != nil {
		t.Fatal(err)
	}
	a := ipx.MustParseAddr("10.0.0.1")
	rec, ok := p.Lookup(a)
	if !ok || rec.City != "Dallas" {
		t.Fatalf("fallback lookup = (%+v, %v)", rec, ok)
	}
	if p.Cached() != 1 {
		t.Errorf("Cached = %d, want 1 (fallback answers are cached)", p.Cached())
	}
}

func TestRemoteProviderPrefetchSurfacesOutage(t *testing.T) {
	p, err := NewRemoteProvider(NewClient("http://127.0.0.1:1",
		WithDatabase("alpha"), WithRetries(0)))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Prefetch(context.Background(), []ipx.Addr{ipx.MustParseAddr("10.0.0.1")}); err == nil {
		t.Fatal("prefetch against a dead server must error")
	}
	if p.Err() == nil || p.TransportErrors() == 0 {
		t.Error("outage must register on the provider's error surface")
	}
	// The failed addresses were not cached as misses.
	if p.Cached() != 0 {
		t.Errorf("Cached = %d after failed prefetch, want 0", p.Cached())
	}
}

func TestRemoteProviderPartialPrefetchTopUp(t *testing.T) {
	srv := testServer(t)
	ct := &countingTransport{}
	p, err := NewRemoteProvider(NewClient(srv.URL,
		WithDatabase("alpha"), WithClientMaxBatch(100),
		WithHTTPClient(&http.Client{Transport: ct})))
	if err != nil {
		t.Fatal(err)
	}
	first := []ipx.Addr{ipx.MustParseAddr("10.0.0.1"), ipx.MustParseAddr("10.0.0.2")}
	if err := p.Prefetch(context.Background(), first); err != nil {
		t.Fatal(err)
	}
	// A superset prefetch only fetches the delta.
	super := append(append([]ipx.Addr(nil), first...), ipx.MustParseAddr("10.0.0.3"))
	if err := p.Prefetch(context.Background(), super); err != nil {
		t.Fatal(err)
	}
	if got := ct.calls.Load(); got != 2 {
		t.Errorf("requests = %d, want 2 (one per prefetch, second fetches only the delta)", got)
	}
	if p.Cached() != 3 {
		t.Errorf("Cached = %d, want 3", p.Cached())
	}
}

func TestRemoteProviderDegradesToFallback(t *testing.T) {
	local := testDBs(t)[0] // alpha, same content the server would serve
	reg := obs.NewRegistry()
	dead := NewClient("http://127.0.0.1:1",
		WithDatabase("alpha"),
		WithRetries(0),
		WithTimeout(time.Second),
		WithClientMetrics(reg))
	p, err := NewRemoteProvider(dead, WithFallback(local))
	if err != nil {
		t.Fatal(err)
	}

	addrs := []ipx.Addr{
		ipx.MustParseAddr("10.0.0.1"),
		ipx.MustParseAddr("10.0.0.2"),
		ipx.MustParseAddr("192.0.2.7"), // a genuine miss, even locally
	}
	// Prefetch against the dead server falls back wholesale.
	if err := p.Prefetch(context.Background(), addrs); err != nil {
		t.Fatalf("prefetch with fallback must degrade, not fail: %v", err)
	}
	for _, a := range addrs {
		lr, lok := local.Lookup(a)
		rr, rok := p.Lookup(a)
		if lok != rok || lr != rr {
			t.Fatalf("%s: degraded (%+v,%v) != local (%+v,%v)", a, rr, rok, lr, lok)
		}
	}
	if got := p.Degraded(); got != int64(len(addrs)) {
		t.Errorf("Degraded = %d, want %d", got, len(addrs))
	}
	if got := p.Tainted(); got != 0 {
		t.Errorf("Tainted = %d, want 0 (fallback answered)", got)
	}

	// An un-prefetched address degrades per lookup too.
	extra := ipx.MustParseAddr("10.0.0.9")
	lr, lok := local.Lookup(extra)
	if rr, rok := p.Lookup(extra); rok != lok || rr != lr {
		t.Fatalf("per-lookup degradation = (%+v,%v), want local answer", rr, rok)
	}
	if got := p.Degraded(); got != int64(len(addrs))+1 {
		t.Errorf("Degraded = %d, want %d", got, len(addrs)+1)
	}

	// The registry carries the tallies for /v2/stats and the manifest.
	snap := reg.Snapshot()
	if got := snap.Counters["client.outage.degraded_lookups"]; got != int64(len(addrs))+1 {
		t.Errorf("degraded_lookups counter = %d, want %d", got, len(addrs)+1)
	}
	if snap.Counters["client.outage.transport_errors"] == 0 {
		t.Error("transport_errors counter = 0, want > 0")
	}
}

func TestRemoteProviderTaintsWithoutFallback(t *testing.T) {
	reg := obs.NewRegistry()
	dead := NewClient("http://127.0.0.1:1",
		WithDatabase("alpha"),
		WithRetries(0),
		WithTimeout(time.Second),
		WithClientMetrics(reg))
	p, err := NewRemoteProvider(dead)
	if err != nil {
		t.Fatal(err)
	}
	a := ipx.MustParseAddr("10.0.0.1")
	if _, ok := p.Lookup(a); ok {
		t.Fatal("outage lookup without fallback must miss")
	}
	if got := p.Tainted(); got != 1 {
		t.Errorf("Tainted = %d, want 1", got)
	}
	if got := p.Degraded(); got != 0 {
		t.Errorf("Degraded = %d, want 0 (no fallback armed)", got)
	}
	if p.Cached() != 0 {
		t.Error("tainted misses must not be cached; a healed server should get asked again")
	}
	if got := reg.Snapshot().Counters["client.outage.tainted_lookups"]; got != 1 {
		t.Errorf("tainted_lookups counter = %d, want 1", got)
	}
}
