package httpapi

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"

	"routergeo/internal/ipx"
)

func TestRemoteProviderNeedsPinnedDB(t *testing.T) {
	if _, err := NewRemoteProvider(NewClient("http://x")); err == nil {
		t.Fatal("RemoteProvider without a pinned database must be rejected")
	}
}

// countingTransport tallies round trips so tests can prove batching
// actually collapses the request count.
type countingTransport struct {
	calls atomic.Int64
}

func (c *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	c.calls.Add(1)
	return http.DefaultTransport.RoundTrip(req)
}

func TestRemoteProviderPrefetchMatchesLocal(t *testing.T) {
	srv := testServer(t)
	local := testDBs(t)[0] // alpha
	ct := &countingTransport{}
	p, err := NewRemoteProvider(NewClient(srv.URL,
		WithDatabase("alpha"),
		WithConcurrency(4),
		WithClientMaxBatch(50),
		WithHTTPClient(&http.Client{Transport: ct})))
	if err != nil {
		t.Fatal(err)
	}

	n := 500
	addrs := make([]ipx.Addr, n)
	for i := range addrs {
		addrs[i] = ipx.MustParseAddr(fmt.Sprintf("10.0.%d.%d", i/200, i%200+1))
	}
	addrs = append(addrs, ipx.MustParseAddr("192.0.2.7")) // a genuine miss

	if err := p.Prefetch(addrs); err != nil {
		t.Fatal(err)
	}
	wantReqs := int64((len(addrs) + 49) / 50)
	if got := ct.calls.Load(); got != wantReqs {
		t.Errorf("prefetch used %d requests, want %d (batching broken)", got, wantReqs)
	}
	if p.Cached() != len(addrs) {
		t.Errorf("Cached = %d, want %d", p.Cached(), len(addrs))
	}

	// Every post-prefetch Lookup is served locally: the request count
	// must not move while answers stay bit-identical to the local DB.
	before := ct.calls.Load()
	for _, a := range addrs {
		lr, lok := local.Lookup(a)
		rr, rok := p.Lookup(a)
		if lok != rok || lr != rr {
			t.Fatalf("%s: local (%+v,%v) != remote (%+v,%v)", a, lr, lok, rr, rok)
		}
	}
	if got := ct.calls.Load(); got != before {
		t.Errorf("cached lookups issued %d extra requests", got-before)
	}

	// Re-prefetching the same set is free.
	if err := p.Prefetch(addrs); err != nil {
		t.Fatal(err)
	}
	if got := ct.calls.Load(); got != before {
		t.Errorf("idempotent prefetch issued %d extra requests", got-before)
	}
	if err := p.Err(); err != nil {
		t.Errorf("Err = %v", err)
	}
}

func TestRemoteProviderFallbackWithoutPrefetch(t *testing.T) {
	srv := testServer(t)
	p, err := NewRemoteProvider(NewClient(srv.URL, WithDatabase("alpha")))
	if err != nil {
		t.Fatal(err)
	}
	a := ipx.MustParseAddr("10.0.0.1")
	rec, ok := p.Lookup(a)
	if !ok || rec.City != "Dallas" {
		t.Fatalf("fallback lookup = (%+v, %v)", rec, ok)
	}
	if p.Cached() != 1 {
		t.Errorf("Cached = %d, want 1 (fallback answers are cached)", p.Cached())
	}
}

func TestRemoteProviderPrefetchSurfacesOutage(t *testing.T) {
	p, err := NewRemoteProvider(NewClient("http://127.0.0.1:1",
		WithDatabase("alpha"), WithRetries(0)))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Prefetch([]ipx.Addr{ipx.MustParseAddr("10.0.0.1")}); err == nil {
		t.Fatal("prefetch against a dead server must error")
	}
	if p.Err() == nil || p.TransportErrors() == 0 {
		t.Error("outage must register on the provider's error surface")
	}
	// The failed addresses were not cached as misses.
	if p.Cached() != 0 {
		t.Errorf("Cached = %d after failed prefetch, want 0", p.Cached())
	}
}

func TestRemoteProviderPartialPrefetchTopUp(t *testing.T) {
	srv := testServer(t)
	ct := &countingTransport{}
	p, err := NewRemoteProvider(NewClient(srv.URL,
		WithDatabase("alpha"), WithClientMaxBatch(100),
		WithHTTPClient(&http.Client{Transport: ct})))
	if err != nil {
		t.Fatal(err)
	}
	first := []ipx.Addr{ipx.MustParseAddr("10.0.0.1"), ipx.MustParseAddr("10.0.0.2")}
	if err := p.Prefetch(first); err != nil {
		t.Fatal(err)
	}
	// A superset prefetch only fetches the delta.
	super := append(append([]ipx.Addr(nil), first...), ipx.MustParseAddr("10.0.0.3"))
	if err := p.Prefetch(super); err != nil {
		t.Fatal(err)
	}
	if got := ct.calls.Load(); got != 2 {
		t.Errorf("requests = %d, want 2 (one per prefetch, second fetches only the delta)", got)
	}
	if p.Cached() != 3 {
		t.Errorf("Cached = %d, want 3", p.Cached())
	}
}
