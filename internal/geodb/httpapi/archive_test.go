package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

// epochDBs builds a one-database serving set whose content and build
// epoch both encode the epoch, so every generation in an archive test
// has a distinct identity and a distinguishable answer.
func epochDBs(t testing.TB, epoch int64) []*geodb.DB {
	t.Helper()
	b := geodb.NewBuilder("alpha")
	b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/16"), geodb.Record{
		Country: "US", City: fmt.Sprintf("city-%d", epoch),
		Coord:      geo.Coordinate{Lat: float64(epoch % 90), Lon: -96.8},
		Resolution: geodb.ResolutionCity, BlockBits: 16,
	})
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	db.SetMeta(geodb.Meta{BuildEpoch: epoch})
	return []*geodb.DB{db}
}

// asofLookup posts one address to /v2/lookup?asof= and returns status,
// generation header, answered city, and the error body (when non-200).
func asofLookup(t *testing.T, url string, asof int64) (status int, gen, city, errText string) {
	t.Helper()
	body := []byte(`{"ips":["10.0.0.1"]}`)
	resp, err := http.Post(fmt.Sprintf("%s/v2/lookup?asof=%d", url, asof),
		"application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	gen = resp.Header.Get(GenerationHeader)
	if resp.StatusCode != http.StatusOK {
		var er ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return resp.StatusCode, gen, "", er.Error
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Entries) != 1 {
		t.Fatalf("batch answer has %d entries", len(br.Entries))
	}
	return resp.StatusCode, gen, br.Entries[0].Results["alpha"].City, ""
}

func TestAsOfSelectsArchivedGeneration(t *testing.T) {
	h := NewHandler(epochDBs(t, 100), WithSnapshotArchive(4))
	gen100 := h.Generation()
	h.Swap(epochDBs(t, 200))
	gen200 := h.Generation()
	h.Swap(epochDBs(t, 300))
	gen300 := h.Generation()
	if n := h.ArchivedGenerations(); n != 2 {
		t.Fatalf("archive holds %d generations, want 2", n)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	cases := []struct {
		asof     int64
		wantGen  string
		wantCity string
	}{
		{100, gen100, "city-100"}, // exact epoch
		{150, gen100, "city-100"}, // between epochs: newest at-or-before wins
		{200, gen200, "city-200"},
		{299, gen200, "city-200"},
		{300, gen300, "city-300"}, // the live generation is selectable too
		{1 << 40, gen300, "city-300"},
	}
	for _, tc := range cases {
		status, gen, city, _ := asofLookup(t, srv.URL, tc.asof)
		if status != http.StatusOK || gen != tc.wantGen || city != tc.wantCity {
			t.Errorf("asof=%d: status=%d gen=%s city=%s, want 200 %s %s",
				tc.asof, status, gen, city, tc.wantGen, tc.wantCity)
		}
	}

	// Before the horizon: 404 carrying the sentinel text, stamped with
	// the live generation (nothing historical answered).
	status, _, _, errText := asofLookup(t, srv.URL, 99)
	if status != http.StatusNotFound || errText != beforeHorizonText {
		t.Fatalf("asof=99: status=%d err=%q, want 404 sentinel", status, errText)
	}

	// A plain lookup still answers from the live generation.
	var lr LookupResponse
	if err := getJSON(srv.URL+"/v1/lookup?ip=10.0.0.1", &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Results["alpha"].City != "city-300" {
		t.Fatalf("live lookup answered %q", lr.Results["alpha"].City)
	}
}

func TestAsOfInvalidParameter(t *testing.T) {
	srv := httptest.NewServer(NewHandler(epochDBs(t, 100), WithSnapshotArchive(2)))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v2/lookup?asof=yesterday",
		"application/json", bytes.NewReader([]byte(`{"ips":["10.0.0.1"]}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestAsOfWithoutArchiveOnlyMatchesLive(t *testing.T) {
	h := NewHandler(epochDBs(t, 100))
	h.Swap(epochDBs(t, 200)) // without an archive the retiree is released
	srv := httptest.NewServer(h)
	defer srv.Close()

	if status, _, city, _ := asofLookup(t, srv.URL, 250); status != http.StatusOK || city != "city-200" {
		t.Fatalf("asof past the live epoch: status=%d city=%s", status, city)
	}
	status, _, _, errText := asofLookup(t, srv.URL, 150)
	if status != http.StatusNotFound || errText != beforeHorizonText {
		t.Fatalf("asof before the live epoch without archive: status=%d err=%q", status, errText)
	}
}

// TestEmptyBootGenerationNotArchived pins the geoserve -snap-dir boot
// shape: the handler starts with no databases, and the first Rescan
// swaps the scanned snapshots in. The empty boot generation must not be
// archived — it can answer nothing, and its zero epoch would shadow the
// real archive horizon, turning every pre-horizon asof into a 200 with
// empty results instead of the 404 sentinel.
func TestEmptyBootGenerationNotArchived(t *testing.T) {
	h := NewHandler(nil, WithSnapshotArchive(4))
	h.Swap(epochDBs(t, 100))
	h.Swap(epochDBs(t, 200))
	if n := h.ArchivedGenerations(); n != 1 {
		t.Fatalf("archive holds %d generations, want 1 (empty boot generation must be dropped)", n)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()
	if status, _, city, _ := asofLookup(t, srv.URL, 100); status != http.StatusOK || city != "city-100" {
		t.Fatalf("asof at the archived epoch: status=%d city=%s", status, city)
	}
	status, _, _, errText := asofLookup(t, srv.URL, 99)
	if status != http.StatusNotFound || errText != beforeHorizonText {
		t.Fatalf("asof before the real horizon: status=%d err=%q (empty boot generation answered?)", status, errText)
	}
}

func TestArchiveEvictionReleasesGenerations(t *testing.T) {
	h := NewHandler(epochDBs(t, 100), WithSnapshotArchive(1))
	closed := make(map[int64]bool)
	closer := func(epoch int64) func() error {
		return func() error { closed[epoch] = true; return nil }
	}
	// Closers belong to the generation being swapped IN.
	h.Swap(epochDBs(t, 200), closer(200))
	h.Swap(epochDBs(t, 300), closer(300))
	// Archive cap 1: the epoch-100 generation (no closer) was evicted to
	// make room for 200; 200 is archived, 300 live — neither closed.
	if closed[200] || closed[300] {
		t.Fatalf("archived or live generation closed early: %v", closed)
	}
	h.Swap(epochDBs(t, 400))
	if !closed[200] {
		t.Fatal("evicted generation's closers did not run")
	}
	if closed[300] {
		t.Fatal("archived generation closed while still reachable")
	}
	if n := h.ArchivedGenerations(); n != 1 {
		t.Fatalf("archive holds %d, want 1", n)
	}
}

func TestStatsReportArchive(t *testing.T) {
	h := NewHandler(epochDBs(t, 100), WithSnapshotArchive(8))
	h.Swap(epochDBs(t, 200))
	h.Swap(epochDBs(t, 300))
	srv := httptest.NewServer(h)
	defer srv.Close()
	var s StatsResponse
	if err := getJSON(srv.URL+"/v2/stats", &s); err != nil {
		t.Fatal(err)
	}
	if s.Archive == nil {
		t.Fatal("stats carry no archive block")
	}
	if s.Archive.Generations != 2 || s.Archive.Max != 8 || s.Archive.HorizonEpoch != 100 {
		t.Fatalf("archive block = %+v, want {2 8 100}", s.Archive)
	}
}

func TestStatsOmitArchiveWhenDisabled(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testDBs(t)))
	defer srv.Close()
	var s StatsResponse
	if err := getJSON(srv.URL+"/v2/stats", &s); err != nil {
		t.Fatal(err)
	}
	if s.Archive != nil {
		t.Fatalf("archive block present without WithSnapshotArchive: %+v", s.Archive)
	}
}

func TestClientWithAsOf(t *testing.T) {
	h := NewHandler(epochDBs(t, 100), WithSnapshotArchive(4))
	h.Swap(epochDBs(t, 200))
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := NewClient(srv.URL, WithAsOf(150))
	entries, err := c.BatchLookup(context.Background(), []string{"10.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	if got := entries[0].Results["alpha"].City; got != "city-100" {
		t.Fatalf("asof-pinned batch answered %q, want city-100", got)
	}

	// Before the horizon: terminal sentinel, no retry burn.
	attempts := 0
	hc := &http.Client{Transport: roundTripFunc(func(r *http.Request) (*http.Response, error) {
		attempts++
		return http.DefaultTransport.RoundTrip(r)
	})}
	c = NewClient(srv.URL, WithAsOf(50), WithHTTPClient(hc))
	if _, err := c.BatchLookup(context.Background(), []string{"10.0.0.1"}); !errors.Is(err, ErrBeforeArchiveHorizon) {
		t.Fatalf("err = %v, want ErrBeforeArchiveHorizon", err)
	}
	if attempts != 1 {
		t.Fatalf("horizon miss burned %d attempts, want 1 (terminal)", attempts)
	}
}

// roundTripFunc adapts a function to http.RoundTripper.
type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// benchEpochDBs rebuilds the standard benchmark databases stamped with a
// build epoch so ?asof= has generations to choose between.
func benchEpochDBs(b *testing.B, epoch int64) []*geodb.DB {
	dbs := benchDBs(b)
	for _, db := range dbs {
		db.SetMeta(geodb.Meta{BuildEpoch: epoch})
	}
	return dbs
}

// BenchmarkV2AsOf measures the time-travel lookup path: the asof parse,
// the archive scan under its mutex, and the extra generation pin, on top
// of the same white-box harness BenchmarkV2LookupHandler uses. The
// archived generation answers, so the scan never short-circuits on the
// live one.
func BenchmarkV2AsOf(b *testing.B) {
	h := NewHandler(benchEpochDBs(b, 100), WithSnapshotArchive(4))
	h.Swap(benchEpochDBs(b, 200))
	h.Swap(benchEpochDBs(b, 300))
	for _, n := range []int{16, 512} {
		b.Run(fmt.Sprintf("batch=%d", n), func(b *testing.B) {
			body := batchBody(n)
			rb := &replayBody{data: body}
			req := httptest.NewRequest(http.MethodPost, "/v2/lookup?asof=250", rb)
			req.Body = rb
			w := &nullResponseWriter{h: make(http.Header)}
			rb.off = 0
			h.handleV2Lookup(w, req) // warm the pools
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rb.off = 0
				h.handleV2Lookup(w, req)
			}
			b.StopTimer()
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "addrs/s")
		})
	}
}
