package httpapi

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"routergeo/internal/geodb"
)

// GenerationHeader is the response header every request carries, naming
// the serving generation that answered it. Clients compare it across
// requests to detect a hot reload happening mid-sweep.
const GenerationHeader = "X-Geodb-Generation"

// generation is one immutable serving set: the databases, their derived
// introspection payloads, and the identity the /v2 surface reports. The
// handler swaps whole generations atomically; in-flight requests pin the
// generation they started on with a refcount, so a snapshot mapping is
// only released after its last reader drains.
type generation struct {
	byName map[string]*geodb.DB
	names  []string
	infos  []DatabaseInfo
	snaps  map[string]SnapshotInfo

	// serve is the /v2/lookup serializer cache: the databases in sorted
	// name order with their per-record response JSON pre-marshaled.
	serve []servedDB

	// id is the set-level generation id: a hash over the sorted per-DB
	// generations, so it changes iff any member database changes. etag is
	// its quoted strong-ETag form.
	id   string
	etag string

	// epoch is the newest BuildEpoch among the member databases — the
	// point in time this generation represents. The ?asof= selector
	// compares against it; 0 for purely in-memory builds, which serve
	// any asof.
	epoch int64

	closers []func() error

	// refs counts pins: the handler's own reference plus one per
	// in-flight request. It starts at 1 and the closers run when it
	// reaches 0 — i.e. after the generation was swapped out AND the last
	// request against it finished.
	refs      atomic.Int64
	closeOnce sync.Once
}

func newGeneration(dbs []*geodb.DB, closers []func() error) *generation {
	g := &generation{
		byName:  make(map[string]*geodb.DB, len(dbs)),
		snaps:   make(map[string]SnapshotInfo, len(dbs)),
		closers: closers,
	}
	g.refs.Store(1)
	for _, db := range dbs {
		g.byName[db.Name()] = db
		g.names = append(g.names, db.Name())
	}
	sort.Strings(g.names)
	h := fnv.New64a()
	for _, name := range g.names {
		db := g.byName[name]
		si := snapshotInfo(db)
		g.snaps[name] = si
		if si.BuildEpoch > g.epoch {
			g.epoch = si.BuildEpoch
		}
		info := databaseInfo(db)
		info.Snapshot = &si
		g.infos = append(g.infos, info)
		_, _ = h.Write([]byte(name))
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(si.Generation))
		_, _ = h.Write([]byte{0})
	}
	g.id = fmt.Sprintf("%016x", h.Sum64())
	g.etag = `"` + g.id + `"`
	g.serve = newServedDBs(g.names, g.byName)
	return g
}

// acquire pins the generation for one request.
func (g *generation) acquire() { g.refs.Add(1) }

// release drops one pin and runs the closers when the last pin is gone.
// closeOnce guards the 0→1→0 bounce a racing acquire can cause: a reader
// that pinned a just-retired generation and lost the re-check drops it
// straight back to zero.
func (g *generation) release() {
	if g.refs.Add(-1) == 0 {
		g.closeOnce.Do(func() {
			for _, c := range g.closers {
				_ = c()
			}
		})
	}
}

// snapshotInfo derives the per-database identity block. Databases loaded
// from snapshots carry their file identity; in-memory builds get a
// content-derived fingerprint so the generation machinery treats every
// database uniformly.
func snapshotInfo(db *geodb.DB) SnapshotInfo {
	m := db.Meta()
	si := SnapshotInfo{
		Generation:   m.Generation,
		BuildEpoch:   m.BuildEpoch,
		SourceFormat: m.SourceFormat,
	}
	if m.Checksum != 0 {
		si.Checksum = fmt.Sprintf("%016x", m.Checksum)
	}
	if si.Generation == "" {
		si.Generation = fmt.Sprintf("%016x", db.Fingerprint())
	}
	if si.SourceFormat == "" {
		si.SourceFormat = "memory"
	}
	return si
}

// acquireGen pins the current generation. The re-check loop closes the
// load/swap race: if the generation moved between the load and the pin,
// the stale pin is dropped and the new generation is pinned instead, so
// a request can never probe a mapping whose closers already ran.
func (h *Handler) acquireGen() *generation {
	for {
		g := h.gen.Load()
		g.acquire()
		if h.gen.Load() == g {
			return g
		}
		g.release()
	}
}

// Swap atomically replaces the serving set with dbs. In-flight requests
// finish on the generation they started with; the old generation's
// closers (snapshot mapping releases) run only after its last reader
// drains. closers belong to the NEW generation and run when it is in
// turn swapped out and drained. Returns the new set-level generation id.
//
// With a snapshot archive configured (WithSnapshotArchive), the retired
// generation keeps its pin and moves into the archive instead, where
// ?asof= queries can still reach it; only generations evicted off the
// archive's tail are released.
func (h *Handler) Swap(dbs []*geodb.DB, closers ...func() error) string {
	g := newGeneration(dbs, closers)
	h.archiveMu.Lock()
	old := h.gen.Swap(g)
	archived := false
	var evicted []*generation
	// An empty generation (geoserve's boot state before the first
	// -snap-dir scan swaps real data in) can never answer a lookup;
	// archiving it would also shadow the real asof horizon, since its
	// zero epoch matches any asof.
	if h.archiveMax > 0 && len(old.names) > 0 {
		h.archive = append(h.archive, old)
		archived = true
		if n := len(h.archive) - h.archiveMax; n > 0 {
			evicted = append(evicted, h.archive[:n]...)
			h.archive = append(h.archive[:0], h.archive[n:]...)
		}
	}
	h.archiveMu.Unlock()
	h.metrics.swaps.Inc()
	h.bus.Publish("generation.swap",
		"from", old.id, "to", g.id, "databases", len(g.names))
	if !archived {
		old.release()
	}
	for _, e := range evicted {
		e.release()
	}
	return g.id
}

// acquireAsOf pins the newest generation whose build epoch is at or
// before asof — the current one or an archived one, later epochs (and,
// on epoch ties, later retirements) winning. nil means every reachable
// generation is newer than asof: the request predates the archive
// horizon.
//
// The scan holds archiveMu, which linearizes it against Swap: a
// generation seen in the archive or as current still holds its
// archive/handler pin (both are only dropped by a Swap that must first
// take this lock, or after it), so the acquire here can never pin a
// generation whose closers already ran.
func (h *Handler) acquireAsOf(asof int64) *generation {
	h.archiveMu.Lock()
	var best *generation
	for _, g := range h.archive {
		if g.epoch <= asof && (best == nil || g.epoch >= best.epoch) {
			best = g
		}
	}
	if g := h.gen.Load(); g.epoch <= asof && (best == nil || g.epoch >= best.epoch) {
		best = g
	}
	if best != nil {
		best.acquire()
	}
	h.archiveMu.Unlock()
	return best
}

// ArchivedGenerations reports how many retired generations the archive
// currently holds.
func (h *Handler) ArchivedGenerations() int {
	h.archiveMu.Lock()
	defer h.archiveMu.Unlock()
	return len(h.archive)
}

// Generation returns the current set-level generation id — the value of
// the GenerationHeader on responses served right now.
func (h *Handler) Generation() string { return h.gen.Load().id }

// generationMiddleware stamps every response with the serving
// generation. Only the id string is read, so no pin is needed here; the
// handlers that probe databases pin via acquireGen.
func (h *Handler) generationMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(GenerationHeader, h.gen.Load().id)
		next.ServeHTTP(w, r)
	})
}

// notModified writes the generation-derived ETag and reports whether
// If-None-Match already holds it (the 304 short-circuit for pollers
// watching /v2/databases or /v2/stats for a generation flip).
func notModified(w http.ResponseWriter, r *http.Request, g *generation) bool {
	w.Header().Set("ETag", g.etag)
	inm := r.Header.Get("If-None-Match")
	if inm == "" {
		return false
	}
	for _, tok := range strings.Split(inm, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "*" || tok == g.etag || tok == "W/"+g.etag {
			w.WriteHeader(http.StatusNotModified)
			return true
		}
	}
	return false
}
