package httpapi

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"routergeo/internal/obs"
)

// sseClient opens GET /v2/events against srv and returns a line scanner
// over the stream plus the response for cleanup.
func sseClient(t *testing.T, srv *httptest.Server) (*bufio.Scanner, *http.Response) {
	t.Helper()
	req, err := http.NewRequest("GET", srv.URL+"/v2/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v2/events status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("Content-Type = %q", ct)
	}
	return bufio.NewScanner(resp.Body), resp
}

// awaitEvent reads the stream until an event of the wanted kind arrives
// (or the stream ends) and returns its decoded payload.
func awaitEvent(t *testing.T, sc *bufio.Scanner, kind string) obs.Event {
	t.Helper()
	want := "event: " + kind
	matched := false
	for sc.Scan() {
		line := sc.Text()
		if line == want {
			matched = true
			continue
		}
		if matched && strings.HasPrefix(line, "data: ") {
			var ev obs.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("decoding %q: %v", line, err)
			}
			return ev
		}
	}
	t.Fatalf("stream ended before a %q event arrived (scan err: %v)", kind, sc.Err())
	return obs.Event{}
}

// TestServerEventStream: a hot-reload swap shows up live on an open
// /v2/events connection, and entering the draining state closes the
// stream.
func TestServerEventStream(t *testing.T) {
	bus := obs.NewEventBus(64)
	h := NewHandler(testDBs(t), WithEventBus(bus), WithEventHeartbeat(20*time.Millisecond))
	srv := httptest.NewServer(h)
	// Registered before sseClient's body-close cleanup: cleanups run LIFO,
	// so the stream's client side closes before Close waits on the server.
	t.Cleanup(srv.Close)

	sc, _ := sseClient(t, srv)

	// Give the subscription a moment to register, then swap.
	waitFor(t, time.Second, func() bool { return bus.Active() })
	oldGen := h.Generation()
	h.Swap(testDBs(t))

	ev := awaitEvent(t, sc, "generation.swap")
	if ev.Data["from"] != oldGen || ev.Data["to"] != h.Generation() {
		t.Errorf("swap event data = %v, want from=%s to=%s", ev.Data, oldGen, h.Generation())
	}
	if ev.Seq == 0 || ev.Time.IsZero() {
		t.Errorf("swap event missing seq/time: %+v", ev)
	}

	// Draining must end the stream promptly.
	h.SetDraining(true)
	deadline := time.After(5 * time.Second)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for sc.Scan() {
		}
	}()
	select {
	case <-done:
	case <-deadline:
		t.Fatal("stream still open after SetDraining(true)")
	}
	// SetDraining(false) must not panic on the already-closed stop channel.
	h.SetDraining(false)
	h.SetDraining(true)
}

// TestServerEventReplay: Last-Event-ID resumes from the ring.
func TestServerEventReplay(t *testing.T) {
	bus := obs.NewEventBus(64)
	h := NewHandler(testDBs(t), WithEventBus(bus))
	srv := httptest.NewServer(h)
	defer srv.Close()

	h.Swap(testDBs(t))
	firstSeq := bus.LastSeq()
	h.Swap(testDBs(t))
	lastSeq := bus.LastSeq()

	// Resume after the first swap: only the second one replays.
	req, err := http.NewRequest("GET", srv.URL+"/v2/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", strconv.FormatUint(firstSeq, 10))
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	ev := awaitEvent(t, sc, "generation.swap")
	if ev.Seq != lastSeq {
		t.Errorf("replay started at seq %d, want %d", ev.Seq, lastSeq)
	}
}

// TestServerEventStreamOutlivesRequestTimeout: /v2/events sits outside
// http.TimeoutHandler — a stream must survive past the request timeout
// and still deliver.
func TestServerEventStreamOutlivesRequestTimeout(t *testing.T) {
	bus := obs.NewEventBus(64)
	h := NewHandler(testDBs(t),
		WithEventBus(bus),
		WithRequestTimeout(30*time.Millisecond),
		WithEventHeartbeat(10*time.Millisecond))
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	sc, _ := sseClient(t, srv)
	waitFor(t, time.Second, func() bool { return bus.Active() })
	time.Sleep(100 * time.Millisecond) // well past the request timeout
	h.Swap(testDBs(t))
	ev := awaitEvent(t, sc, "generation.swap")
	if ev.Kind != "generation.swap" {
		t.Errorf("event kind = %q", ev.Kind)
	}
}

// TestStalledStreamNeverBlocksServer: a subscriber that never reads must
// not stall Swap (the bus drops, the server moves on).
func TestStalledStreamNeverBlocksServer(t *testing.T) {
	bus := obs.NewEventBus(16)
	h := NewHandler(testDBs(t), WithEventBus(bus))
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Open a stream and never read from it.
	req, err := http.NewRequest("GET", srv.URL+"/v2/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	waitFor(t, time.Second, func() bool { return bus.Active() })

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			bus.Publish("flood", "i", i)
		}
		h.Swap(testDBs(t))
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publishing against a stalled stream blocked the server")
	}
}

// TestMetricsEndpoint: GET /metrics serves a lint-clean Prometheus
// exposition carrying the server's instruments and the ambient
// collectors, without counting itself into the request metrics; an
// Accept: application/json request gets the JSON snapshot instead.
func TestMetricsEndpoint(t *testing.T) {
	h := NewHandler(testDBs(t), WithEventBus(obs.NewEventBus(16)))
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Generate some traffic first so the instruments are warm.
	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/v1/lookup?ip=10.0.1.2")
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.LintExposition(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("/metrics fails exposition lint: %v\n%s", err, body)
	}
	for _, name := range []string{
		"routergeo_http_requests_total",
		"routergeo_http_latency_ms",
		"routergeo_db_alpha_hits_total",
		"routergeo_generation_swaps_total",
		"routergeo_build_info",
		"process_cpu_seconds_total",
		"go_goroutines",
	} {
		if fams[name] == nil {
			t.Errorf("/metrics missing family %s", name)
		}
	}
	if f := fams["routergeo_http_latency_ms"]; f != nil && f.Type != "histogram" {
		t.Errorf("latency family type = %s, want histogram", f.Type)
	}
	if !strings.Contains(string(body), "routergeo_http_requests_total 3\n") {
		t.Errorf("scrape should not count itself; exposition:\n%s", body)
	}

	req, err := http.NewRequest("GET", srv.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	jresp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(jresp.Body).Decode(&snap); err != nil {
		t.Fatalf("JSON negotiation: %v", err)
	}
	if snap.Counters["http.requests"] != 3 {
		t.Errorf("JSON snapshot http.requests = %d, want 3", snap.Counters["http.requests"])
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
