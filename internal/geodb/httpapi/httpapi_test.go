package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

func testDBs(t *testing.T) []*geodb.DB {
	t.Helper()
	mk := func(name, cc, city string) *geodb.DB {
		b := geodb.NewBuilder(name)
		rec := geodb.Record{Country: cc, Resolution: geodb.ResolutionCountry, BlockBits: 16}
		if city != "" {
			rec.City = city
			rec.Coord = geo.Coordinate{Lat: 32.7, Lon: -96.8}
			rec.Resolution = geodb.ResolutionCity
		}
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/16"), rec)
		db, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	return []*geodb.DB{mk("alpha", "US", "Dallas"), mk("beta", "DE", "")}
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler(testDBs(t)))
	t.Cleanup(srv.Close)
	return srv
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestDatabasesEndpoint(t *testing.T) {
	srv := testServer(t)
	c := &Client{BaseURL: srv.URL}
	names, err := c.Databases()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Errorf("Databases = %v", names)
	}
}

func TestLookupAll(t *testing.T) {
	srv := testServer(t)
	c := &Client{BaseURL: srv.URL}
	resp, err := c.LookupAll("10.0.1.2")
	if err != nil {
		t.Fatal(err)
	}
	if resp.IP != "10.0.1.2" || len(resp.Results) != 2 {
		t.Fatalf("response = %+v", resp)
	}
	a := resp.Results["alpha"]
	if !a.Found || a.City != "Dallas" || a.Resolution != "city" || a.BlockBits != 16 {
		t.Errorf("alpha = %+v", a)
	}
	b := resp.Results["beta"]
	if !b.Found || b.Country != "DE" || b.Resolution != "country" {
		t.Errorf("beta = %+v", b)
	}
}

func TestLookupMiss(t *testing.T) {
	srv := testServer(t)
	c := &Client{BaseURL: srv.URL}
	resp, err := c.LookupAll("192.0.2.1")
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range resp.Results {
		if r.Found {
			t.Errorf("%s unexpectedly found %+v", name, r)
		}
		if r.Resolution != "none" {
			t.Errorf("%s miss resolution = %q", name, r.Resolution)
		}
	}
}

func TestLookupErrors(t *testing.T) {
	srv := testServer(t)
	for _, tc := range []struct {
		url  string
		want int
	}{
		{"/v1/lookup", http.StatusBadRequest},
		{"/v1/lookup?ip=banana", http.StatusBadRequest},
		{"/v1/lookup?ip=10.0.0.1&db=nope", http.StatusNotFound},
	} {
		resp, err := http.Get(srv.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.url, resp.StatusCode, tc.want)
		}
	}
}

func TestSingleDBQuery(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/lookup?ip=10.0.0.1&db=alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out LookupResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 {
		t.Fatalf("results = %+v", out.Results)
	}
	if _, ok := out.Results["alpha"]; !ok {
		t.Error("alpha missing from single-db query")
	}
}

func TestClientAsProvider(t *testing.T) {
	// The remote client must behave like a local geodb.Provider, so the
	// core evaluation runs unchanged over the wire.
	srv := testServer(t)
	remote := &Client{BaseURL: srv.URL, DB: "alpha"}
	local := testDBs(t)[0]

	for _, ip := range []string{"10.0.0.1", "10.0.255.255", "192.0.2.1"} {
		a := ipx.MustParseAddr(ip)
		lr, lok := local.Lookup(a)
		rr, rok := remote.Lookup(a)
		if lok != rok {
			t.Fatalf("%s: found %v locally, %v remotely", ip, lok, rok)
		}
		if lok && (lr.Country != rr.Country || lr.City != rr.City ||
			lr.Resolution != rr.Resolution || lr.BlockBits != rr.BlockBits) {
			t.Fatalf("%s: local %+v != remote %+v", ip, lr, rr)
		}
	}
}

func TestClientWithoutDBPinned(t *testing.T) {
	srv := testServer(t)
	c := &Client{BaseURL: srv.URL}
	if _, ok := c.Lookup(ipx.MustParseAddr("10.0.0.1")); ok {
		t.Error("Provider lookup without a pinned database must miss")
	}
}

func TestClientServerDown(t *testing.T) {
	c := &Client{BaseURL: "http://127.0.0.1:1", DB: "alpha"}
	if _, ok := c.Lookup(ipx.MustParseAddr("10.0.0.1")); ok {
		t.Error("lookup against a dead server must miss, not panic")
	}
}
