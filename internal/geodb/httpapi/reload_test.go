package httpapi

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"routergeo/internal/geodb/snapshot"
	"routergeo/internal/ipx"
)

// publishSnapshots writes the test databases into dir as one snapshot
// generation, the way a publisher (cmd/geosnap) deploys: complete files
// renamed into place. epoch distinguishes generations of identical data.
func publishSnapshots(t *testing.T, dir string, epoch int64) {
	t.Helper()
	for _, db := range testDBs(t) {
		path := filepath.Join(dir, db.Name()+snapshot.Ext)
		meta := snapshot.Meta{BuildEpoch: epoch, SourceFormat: "test"}
		if err := snapshot.WriteFile(path, db, meta); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReloaderServesAndHotSwaps(t *testing.T) {
	dir := t.TempDir()
	publishSnapshots(t, dir, 1)

	h := NewHandler(nil)
	r := NewReloader(h, dir, time.Hour, nil)
	swapped, err := r.Rescan(true)
	if err != nil || !swapped {
		t.Fatalf("initial rescan: swapped=%v err=%v", swapped, err)
	}
	gen1 := h.Generation()
	if gen1 == "" {
		t.Fatal("no generation after initial rescan")
	}

	srv := httptest.NewServer(h)
	defer srv.Close()
	var body LookupResponse
	if err := getJSON(srv.URL+"/v1/lookup?ip=10.0.0.1", &body); err != nil {
		t.Fatal(err)
	}
	if body.Results["alpha"].Country != "US" || !body.Results["alpha"].Found {
		t.Fatalf("snapshot-served lookup = %+v", body)
	}

	// An unchanged directory is a no-op without force...
	if swapped, err := r.Rescan(false); err != nil || swapped {
		t.Fatalf("unchanged rescan: swapped=%v err=%v", swapped, err)
	}
	if h.Generation() != gen1 {
		t.Fatal("no-op rescan moved the generation")
	}
	// ...but force re-loads it (same bytes, same generation id).
	if swapped, err := r.Rescan(true); err != nil || !swapped {
		t.Fatalf("forced rescan: swapped=%v err=%v", swapped, err)
	}
	if h.Generation() != gen1 {
		t.Fatal("re-loading identical snapshots changed the generation id")
	}

	// A re-publish under a new epoch is a new generation.
	publishSnapshots(t, dir, 2)
	if swapped, err := r.Rescan(false); err != nil || !swapped {
		t.Fatalf("post-publish rescan: swapped=%v err=%v", swapped, err)
	}
	if h.Generation() == gen1 {
		t.Fatal("new epoch did not change the generation")
	}
	if err := getJSON(srv.URL+"/v1/lookup?ip=10.0.0.1", &body); err != nil {
		t.Fatal(err)
	}
	if body.Results["alpha"].Country != "US" {
		t.Fatalf("post-swap lookup = %+v", body)
	}
}

func TestReloaderCorruptPublishKeepsServingGeneration(t *testing.T) {
	dir := t.TempDir()
	publishSnapshots(t, dir, 1)

	h := NewHandler(nil)
	r := NewReloader(h, dir, time.Hour, nil)
	if _, err := r.Rescan(true); err != nil {
		t.Fatal(err)
	}
	gen1 := h.Generation()

	// A corrupt publish: flip one payload byte so the checksum fails.
	victim := filepath.Join(dir, "alpha"+snapshot.Ext)
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if swapped, err := r.Rescan(false); err == nil || swapped {
		t.Fatalf("corrupt publish must fail loudly: swapped=%v err=%v", swapped, err)
	}
	if h.Generation() != gen1 {
		t.Fatal("corrupt publish disturbed the serving generation")
	}
	if got := h.Registry().Counter("reload.failures").Value(); got == 0 {
		t.Error("reload.failures not counted")
	}
	// The old generation still answers.
	g := h.acquireGen()
	defer g.release()
	if _, ok := g.byName["alpha"].Lookup(ipx.MustParseAddr("10.0.0.1")); !ok {
		t.Fatal("serving generation broken after failed reload")
	}
}

// TestReloaderDetectsSameSizeRepublish republishes byte-different but
// size-identical snapshots with pinned mtimes. Only the header checksum
// in the file stamp can tell the generations apart; before it was added
// the rescan below reported "unchanged" and kept serving stale data.
func TestReloaderDetectsSameSizeRepublish(t *testing.T) {
	dir := t.TempDir()
	publishSnapshots(t, dir, 1)

	// Pin every snapshot's mtime to a fixed instant so the republish is
	// invisible to the mtime check.
	pinned := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	pin := func() map[string]int64 {
		t.Helper()
		sizes := make(map[string]int64)
		paths, err := filepath.Glob(filepath.Join(dir, "*"+snapshot.Ext))
		if err != nil || len(paths) == 0 {
			t.Fatalf("glob: paths=%v err=%v", paths, err)
		}
		for _, p := range paths {
			if err := os.Chtimes(p, pinned, pinned); err != nil {
				t.Fatal(err)
			}
			st, err := os.Stat(p)
			if err != nil {
				t.Fatal(err)
			}
			sizes[p] = st.Size()
		}
		return sizes
	}
	before := pin()

	h := NewHandler(nil)
	r := NewReloader(h, dir, time.Hour, nil)
	if _, err := r.Rescan(true); err != nil {
		t.Fatal(err)
	}
	gen1 := h.Generation()

	// Same databases, new epoch: the epoch lives in the fixed-width
	// header, so the files are byte-different at identical size.
	publishSnapshots(t, dir, 2)
	after := pin()
	for p, sz := range after {
		if before[p] != sz {
			t.Fatalf("republish changed %s from %d to %d bytes; the test needs identical sizes", p, before[p], sz)
		}
	}

	swapped, err := r.Rescan(false)
	if err != nil || !swapped {
		t.Fatalf("same-size republish rescan: swapped=%v err=%v", swapped, err)
	}
	if h.Generation() == gen1 {
		t.Fatal("same-size republish did not change the generation")
	}
}

func TestReloaderEmptyDirIsAnError(t *testing.T) {
	h := NewHandler(testDBs(t))
	r := NewReloader(h, t.TempDir(), time.Hour, nil)
	if _, err := r.Rescan(true); err == nil {
		t.Fatal("rescan of an empty directory must fail")
	}
	if h.Generation() == "" {
		t.Fatal("failed rescan cleared the generation")
	}
}

func TestReloaderInFlightRejectsConcurrentRescan(t *testing.T) {
	dir := t.TempDir()
	publishSnapshots(t, dir, 1)
	r := NewReloader(NewHandler(nil), dir, time.Hour, nil)

	// Occupy the in-flight slot the way a slow concurrent rescan would.
	r.inFlight <- struct{}{}
	if _, err := r.Rescan(true); !errors.Is(err, ErrReloadInFlight) {
		t.Fatalf("err = %v, want ErrReloadInFlight", err)
	}
	<-r.inFlight
	if _, err := r.Rescan(true); err != nil {
		t.Fatalf("rescan after the slot freed: %v", err)
	}
}

// TestAdminReloadEndToEnd wires handler, reloader and admin route the
// way cmd/geoserve does and drives a publish → POST /v2/admin/reload →
// new generation cycle over HTTP.
func TestAdminReloadEndToEnd(t *testing.T) {
	dir := t.TempDir()
	publishSnapshots(t, dir, 1)

	var r *Reloader
	h := NewHandler(nil, WithAdminReload(func(force bool) (bool, error) {
		return r.Rescan(force)
	}))
	r = NewReloader(h, dir, time.Hour, nil)
	if _, err := r.Rescan(true); err != nil {
		t.Fatal(err)
	}
	gen1 := h.Generation()

	srv := httptest.NewServer(h)
	defer srv.Close()

	post := func() (int, ReloadResponse) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v2/admin/reload", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rr ReloadResponse
		_ = json.NewDecoder(resp.Body).Decode(&rr)
		return resp.StatusCode, rr
	}

	// Nothing new published: the admin rescan reports unchanged.
	status, rr := post()
	if status != http.StatusOK || rr.Status != "unchanged" {
		t.Fatalf("pre-publish reload: status=%d body=%+v", status, rr)
	}

	publishSnapshots(t, dir, 2)
	status, rr = post()
	if status != http.StatusOK || rr.Status != "reloaded" {
		t.Fatalf("post-publish reload: status=%d body=%+v", status, rr)
	}
	if rr.Generation == gen1 || rr.Generation != h.Generation() {
		t.Fatalf("reload generation = %q (was %q, serving %q)", rr.Generation, gen1, h.Generation())
	}
	if got := h.Registry().Counter("reload.count").Value(); got != 2 {
		t.Errorf("reload.count = %d, want 2 (initial + admin)", got)
	}
}
