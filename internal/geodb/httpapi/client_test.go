package httpapi

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"routergeo/internal/ipx"
)

// flakyTransport fails the first failures round trips (either with a
// transport error or, when status is set, an HTTP error answer), then
// delegates to the real transport.
type flakyTransport struct {
	failures int32
	status   int // 0 = transport error, else this HTTP status
	calls    atomic.Int32
	next     http.RoundTripper
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := f.calls.Add(1)
	if int(n) <= int(atomic.LoadInt32(&f.failures)) {
		if f.status != 0 {
			rec := httptest.NewRecorder()
			rec.WriteHeader(f.status)
			return rec.Result(), nil
		}
		return nil, errors.New("flaky: injected transport failure")
	}
	next := f.next
	if next == nil {
		next = http.DefaultTransport
	}
	return next.RoundTrip(req)
}

func TestClientRetriesTransportErrors(t *testing.T) {
	srv := testServer(t)
	ft := &flakyTransport{failures: 2}
	var slept []time.Duration
	c := NewClient(srv.URL,
		WithDatabase("alpha"),
		WithRetries(3),
		WithBackoff(10*time.Millisecond),
		WithHTTPClient(&http.Client{Transport: ft}))
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	// Pin jitter to its maximum so the exponential schedule is exact.
	c.jitter = func(n time.Duration) time.Duration { return n }

	rec, ok, err := c.TryLookup(context.Background(), ipx.MustParseAddr("10.0.0.1"))
	if err != nil || !ok {
		t.Fatalf("TryLookup after retries = (%v, %v, %v)", rec, ok, err)
	}
	if rec.City != "Dallas" {
		t.Errorf("rec = %+v", rec)
	}
	if got := ft.calls.Load(); got != 3 {
		t.Errorf("round trips = %d, want 3 (2 failures + 1 success)", got)
	}
	// Exponential backoff: base, then base<<1.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("backoff sleeps = %v, want %v", slept, want)
	}
	if c.TransportErrors() != 0 {
		t.Errorf("TransportErrors = %d after a recovered request", c.TransportErrors())
	}
}

func TestClientRetries5xx(t *testing.T) {
	srv := testServer(t)
	ft := &flakyTransport{failures: 1, status: http.StatusServiceUnavailable}
	c := NewClient(srv.URL,
		WithDatabase("alpha"),
		WithRetries(2),
		WithBackoff(0),
		WithHTTPClient(&http.Client{Transport: ft}))
	if _, ok, err := c.TryLookup(context.Background(), ipx.MustParseAddr("10.0.0.1")); err != nil || !ok {
		t.Fatalf("TryLookup = (_, %v, %v), want recovery from 503", ok, err)
	}
	if got := ft.calls.Load(); got != 2 {
		t.Errorf("round trips = %d, want 2", got)
	}
}

func TestClientDoesNotRetry4xx(t *testing.T) {
	srv := testServer(t)
	ft := &flakyTransport{failures: 99, status: http.StatusNotFound}
	c := NewClient(srv.URL,
		WithDatabase("alpha"),
		WithRetries(3),
		WithBackoff(0),
		WithHTTPClient(&http.Client{Transport: ft}))
	if _, _, err := c.TryLookup(context.Background(), ipx.MustParseAddr("10.0.0.1")); err == nil {
		t.Fatal("TryLookup should fail on 404")
	}
	if got := ft.calls.Load(); got != 1 {
		t.Errorf("round trips = %d, want 1 (client errors are final)", got)
	}
}

func TestClientDistinguishesOutageFromMiss(t *testing.T) {
	// The original client's defect: a dead server looked identical to an
	// address with no coverage. TryLookup separates the two, and the
	// Provider-shaped Lookup records the outage on the client.
	dead := NewClient("http://127.0.0.1:1", WithDatabase("alpha"), WithRetries(0), WithTimeout(time.Second))
	if _, ok, err := dead.TryLookup(context.Background(), ipx.MustParseAddr("10.0.0.1")); err == nil || ok {
		t.Fatalf("TryLookup against dead server = (_, %v, %v), want transport error", ok, err)
	}

	if _, ok := dead.Lookup(ipx.MustParseAddr("10.0.0.1")); ok {
		t.Fatal("Provider Lookup must still miss, not panic")
	}
	if dead.Err() == nil {
		t.Error("Err() = nil after an outage; remote evaluations cannot detect tainted coverage")
	}
	if dead.TransportErrors() < 2 {
		t.Errorf("TransportErrors = %d, want >= 2", dead.TransportErrors())
	}

	// A genuine miss leaves the error surface untouched.
	srv := testServer(t)
	healthy := NewClient(srv.URL, WithDatabase("alpha"))
	if _, ok, err := healthy.TryLookup(context.Background(), ipx.MustParseAddr("192.0.2.1")); err != nil || ok {
		t.Fatalf("miss = (_, %v, %v), want (false, nil)", ok, err)
	}
	if healthy.Err() != nil || healthy.TransportErrors() != 0 {
		t.Error("a genuine miss must not count as a transport error")
	}
}

func TestBatchLookupChunksAndPreservesOrder(t *testing.T) {
	srv := testServer(t)
	c := NewClient(srv.URL, WithClientMaxBatch(7), WithConcurrency(3))
	n := 100
	ips := make([]string, n)
	for i := range ips {
		ips[i] = fmt.Sprintf("10.0.%d.%d", i/200, i%200)
	}
	ips[41] = "not-an-ip" // malformed entries must stay per-entry across chunks
	entries, err := c.BatchLookup(context.Background(), ips)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != n {
		t.Fatalf("entries = %d, want %d", len(entries), n)
	}
	for i, e := range entries {
		if i == 41 {
			if e.Error == "" {
				t.Errorf("entry 41 should carry a parse error, got %+v", e)
			}
			continue
		}
		if e.IP != ips[i] || e.Error != "" {
			t.Fatalf("entry %d = %+v, want ip %q (order lost?)", i, e, ips[i])
		}
		if !e.Results["alpha"].Found {
			t.Fatalf("entry %d unresolved", i)
		}
	}
}

func TestBatchLookupRetriesFlakyTransport(t *testing.T) {
	srv := testServer(t)
	ft := &flakyTransport{failures: 3}
	c := NewClient(srv.URL,
		WithRetries(4),
		WithBackoff(0),
		WithClientMaxBatch(10),
		WithConcurrency(2),
		WithHTTPClient(&http.Client{Transport: ft}))
	ips := make([]string, 30)
	for i := range ips {
		ips[i] = fmt.Sprintf("10.0.0.%d", i+1)
	}
	entries, err := c.BatchLookup(context.Background(), ips)
	if err != nil {
		t.Fatalf("BatchLookup with retries = %v", err)
	}
	for i, e := range entries {
		if e.IP != ips[i] {
			t.Fatalf("entry %d = %q, want %q", i, e.IP, ips[i])
		}
	}
}

func TestBatchLookupSurfacesExhaustedRetries(t *testing.T) {
	c := NewClient("http://127.0.0.1:1", WithRetries(1), WithBackoff(0), WithTimeout(time.Second))
	if _, err := c.BatchLookup(context.Background(), []string{"10.0.0.1"}); err == nil {
		t.Fatal("BatchLookup against a dead server must error, not fabricate misses")
	}
	if c.Err() == nil || c.TransportErrors() == 0 {
		t.Error("exhausted retries must register on the error surface")
	}
}

// TestBatchLookupConcurrentUse drives one shared client from many
// goroutines; run under -race this guards the counters, the chunk
// scatter and the error recording.
func TestBatchLookupConcurrentUse(t *testing.T) {
	srv := testServer(t)
	c := NewClient(srv.URL, WithClientMaxBatch(5), WithConcurrency(4), WithDatabase("alpha"))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ips := make([]string, 40)
			for i := range ips {
				ips[i] = fmt.Sprintf("10.0.%d.%d", g, i+1)
			}
			entries, err := c.BatchLookup(context.Background(), ips)
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			for i, e := range entries {
				if e.IP != ips[i] || !e.Results["alpha"].Found {
					t.Errorf("goroutine %d entry %d = %+v", g, i, e)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Err() != nil {
		t.Errorf("Err = %v", c.Err())
	}
}

func TestBatchLookupEmpty(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // never dialed
	entries, err := c.BatchLookup(context.Background(), nil)
	if err != nil || entries != nil {
		t.Fatalf("empty batch = (%v, %v)", entries, err)
	}
}

func TestClientLogsRetries(t *testing.T) {
	srv := testServer(t)
	ft := &flakyTransport{failures: 2}
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	c := NewClient(srv.URL,
		WithDatabase("alpha"),
		WithRetries(3),
		WithBackoff(0),
		WithHTTPClient(&http.Client{Transport: ft}),
		WithClientLogger(logger))
	if _, ok, err := c.TryLookup(context.Background(), ipx.MustParseAddr("10.0.0.1")); err != nil || !ok {
		t.Fatalf("TryLookup = (_, %v, %v), want recovery", ok, err)
	}
	out := buf.String()
	if got := strings.Count(out, "retrying request"); got != 2 {
		t.Errorf("got %d retry warnings, want 2: %q", got, out)
	}
	if !strings.Contains(out, "level=WARN") {
		t.Errorf("retry lines not warn-level: %q", out)
	}
	if !strings.Contains(out, "attempt=2") || !strings.Contains(out, "max_attempts=4") {
		t.Errorf("retry lines missing attempt counts: %q", out)
	}
	if strings.Contains(out, "request failed after all retries") {
		t.Errorf("recovered request logged a give-up summary: %q", out)
	}
}

func TestClientLogsGiveUp(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	dead := NewClient("http://127.0.0.1:1",
		WithDatabase("alpha"),
		WithRetries(1),
		WithBackoff(0),
		WithTimeout(time.Second),
		WithClientLogger(logger))
	if _, _, err := dead.TryLookup(context.Background(), ipx.MustParseAddr("10.0.0.1")); err == nil {
		t.Fatal("TryLookup against a dead server should fail")
	}
	out := buf.String()
	if !strings.Contains(out, "request failed after all retries") {
		t.Errorf("missing give-up summary: %q", out)
	}
	if !strings.Contains(out, "level=ERROR") {
		t.Errorf("give-up summary not error-level: %q", out)
	}
	if !strings.Contains(out, "attempts=2") {
		t.Errorf("give-up summary missing attempt count: %q", out)
	}
}

// TestBackoffDelayCapsInsteadOfOverflowing is the regression test for
// the old `backoff << (attempt-1)` bug: past ~40 doublings the shift
// overflowed time.Duration into a negative delay that was never slept,
// turning the tail of a long retry budget into a hot loop.
func TestBackoffDelayCapsInsteadOfOverflowing(t *testing.T) {
	c := NewClient("http://x",
		WithBackoff(100*time.Millisecond),
		WithMaxBackoff(5*time.Second))
	c.jitter = func(n time.Duration) time.Duration { return n } // pin to max
	for _, attempt := range []int{1, 2, 3, 7, 40, 63, 64, 200, 1 << 20} {
		d := c.backoffDelay(attempt)
		if d <= 0 {
			t.Fatalf("backoffDelay(%d) = %v; overflowed", attempt, d)
		}
		if d > 5*time.Second {
			t.Fatalf("backoffDelay(%d) = %v, want <= cap", attempt, d)
		}
	}
	if got := c.backoffDelay(1); got != 100*time.Millisecond {
		t.Errorf("backoffDelay(1) = %v, want base", got)
	}
	if got := c.backoffDelay(3); got != 400*time.Millisecond {
		t.Errorf("backoffDelay(3) = %v, want base<<2", got)
	}
	if got := c.backoffDelay(63); got != 5*time.Second {
		t.Errorf("backoffDelay(63) = %v, want the cap", got)
	}
}

func TestBackoffJitterStaysInEqualJitterWindow(t *testing.T) {
	c := NewClient("http://x", WithBackoff(64*time.Millisecond))
	for i := 0; i < 200; i++ { // default (random) jitter: delay in [d/2, d]
		d := c.backoffDelay(2) // nominal 128ms
		if d < 64*time.Millisecond || d > 128*time.Millisecond {
			t.Fatalf("jittered delay = %v, want within [64ms, 128ms]", d)
		}
	}
}

// throttleTransport answers 429 with a Retry-After hint a few times,
// then delegates.
type throttleTransport struct {
	remaining  atomic.Int32
	retryAfter string
	next       http.RoundTripper
}

func (tt *throttleTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if tt.remaining.Add(-1) >= 0 {
		rec := httptest.NewRecorder()
		if tt.retryAfter != "" {
			rec.Header().Set("Retry-After", tt.retryAfter)
		}
		rec.WriteHeader(http.StatusTooManyRequests)
		return rec.Result(), nil
	}
	next := tt.next
	if next == nil {
		next = http.DefaultTransport
	}
	return next.RoundTrip(req)
}

// TestClientRetries429HonoringRetryAfter is the regression test for
// retryable() treating throttles as final: a 429 must be retried, and
// the server's Retry-After hint must override the exponential schedule.
func TestClientRetries429HonoringRetryAfter(t *testing.T) {
	srv := testServer(t)
	tt := &throttleTransport{retryAfter: "3"}
	tt.remaining.Store(2)
	var slept []time.Duration
	c := NewClient(srv.URL,
		WithDatabase("alpha"),
		WithRetries(3),
		WithBackoff(10*time.Millisecond),
		WithHTTPClient(&http.Client{Transport: tt}))
	c.sleep = func(d time.Duration) { slept = append(slept, d) }

	if _, ok, err := c.TryLookup(context.Background(), ipx.MustParseAddr("10.0.0.1")); err != nil || !ok {
		t.Fatalf("TryLookup through throttling = (_, %v, %v), want recovery", ok, err)
	}
	want := []time.Duration{3 * time.Second, 3 * time.Second}
	if len(slept) != 2 || slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("sleeps = %v, want Retry-After hints %v", slept, want)
	}
}

func TestClientCapsRetryAfterAtMaxBackoff(t *testing.T) {
	srv := testServer(t)
	tt := &throttleTransport{retryAfter: "3600"} // an hour: do not obey literally
	tt.remaining.Store(1)
	var slept []time.Duration
	c := NewClient(srv.URL,
		WithDatabase("alpha"),
		WithRetries(2),
		WithBackoff(time.Millisecond),
		WithMaxBackoff(50*time.Millisecond),
		WithHTTPClient(&http.Client{Transport: tt}))
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	if _, ok, err := c.TryLookup(context.Background(), ipx.MustParseAddr("10.0.0.1")); err != nil || !ok {
		t.Fatalf("TryLookup = (_, %v, %v), want recovery", ok, err)
	}
	if len(slept) != 1 || slept[0] != 50*time.Millisecond {
		t.Errorf("sleeps = %v, want the 50ms cap", slept)
	}
}

func TestClient429WithoutRetryAfterUsesBackoff(t *testing.T) {
	srv := testServer(t)
	tt := &throttleTransport{} // no header
	tt.remaining.Store(1)
	var slept []time.Duration
	c := NewClient(srv.URL,
		WithDatabase("alpha"),
		WithRetries(2),
		WithBackoff(10*time.Millisecond),
		WithHTTPClient(&http.Client{Transport: tt}))
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	c.jitter = func(n time.Duration) time.Duration { return n }
	if _, ok, err := c.TryLookup(context.Background(), ipx.MustParseAddr("10.0.0.1")); err != nil || !ok {
		t.Fatalf("TryLookup = (_, %v, %v), want recovery", ok, err)
	}
	if len(slept) != 1 || slept[0] != 10*time.Millisecond {
		t.Errorf("sleeps = %v, want the exponential base", slept)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"0", 0},
		{"2", 2 * time.Second},
		{"-1", 0},
		{"soon", 0},
		{"Mon, 02 Jan 2006 15:04:05 GMT", 0}, // HTTP-date form: treated as no hint
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestClientHonorsCallerContext is the regression test for once()
// minting context.Background(): cancelling the caller's context must
// abort the retry loop (and its backoff sleeps) immediately.
func TestClientHonorsCallerContext(t *testing.T) {
	ft := &flakyTransport{failures: 1 << 30}
	c := NewClient("http://127.0.0.1:1",
		WithDatabase("alpha"),
		WithRetries(1000),
		WithBackoff(time.Hour), // a real sleep here would hang the test
		WithBreaker(0, 0),
		WithHTTPClient(&http.Client{Transport: ft}))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, _, err := c.TryLookup(ctx, ipx.MustParseAddr("10.0.0.1"))
	if err == nil {
		t.Fatal("TryLookup with a cancelled context must fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; the hour-long backoff was slept", elapsed)
	}
	if got := ft.calls.Load(); got > 1 {
		t.Errorf("round trips after cancellation = %d, want <= 1", got)
	}
}

func TestBatchLookupHonorsCallerContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewClient("http://127.0.0.1:1", WithRetries(1000), WithBackoff(time.Hour))
	start := time.Now()
	if _, err := c.BatchLookup(ctx, []string{"10.0.0.1"}); err == nil {
		t.Fatal("BatchLookup with a cancelled context must fail")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

func TestClientBaseContextThreadsIntoProviderLookups(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewClient("http://127.0.0.1:1",
		WithDatabase("alpha"),
		WithRetries(1000),
		WithBackoff(time.Hour),
		WithBaseContext(ctx))
	start := time.Now()
	if _, ok := c.Lookup(ipx.MustParseAddr("10.0.0.1")); ok {
		t.Fatal("Lookup with a cancelled base context must miss")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("base-context cancellation took %v", elapsed)
	}
}
