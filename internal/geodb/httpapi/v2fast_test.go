package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

// TestParseQuadMatchesParseAddr pins the fast dotted-quad parser to
// ipx.ParseAddr's acceptance: everything parseQuad takes must parse to
// the same address (rejections fall through to the slow parse, so they
// only cost speed, never correctness).
func TestParseQuadMatchesParseAddr(t *testing.T) {
	cases := []string{
		"0.0.0.0", "1.2.3.4", "255.255.255.255", "10.0.1.2", "192.0.2.1",
		"01.2.3.4", "1.2.3.04", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.400",
		"", ".", "...", "1..2.3", "1.2.3.", ".1.2.3.4", "1.2.3.4 ", " 1.2.3.4",
		"banana", "999.1.1.1", "1.2.3.4\n", "0x1.2.3.4", "-1.2.3.4",
		"1.2.3.4%eth0", "::ffff:1.2.3.4", "10.000.0.1", "0.0.0.00",
	}
	for oct := 0; oct < 256; oct++ {
		cases = append(cases, fmt.Sprintf("%d.%d.%d.%d", oct, 255-oct, oct/2, oct))
	}
	for _, s := range cases {
		fast, fok := parseQuad([]byte(s))
		slow, err := ipx.ParseAddr(s)
		if fok && err != nil {
			t.Errorf("parseQuad accepts %q, ipx.ParseAddr rejects it: %v", s, err)
		}
		if fok && fast != slow {
			t.Errorf("parseQuad(%q) = %v, ipx.ParseAddr = %v", s, fast, slow)
		}
		if !fok && err == nil {
			// Tolerated (slow path answers), but the canonical grammar
			// should never miss: flag it so the fast path stays complete.
			t.Errorf("parseQuad rejects %q, which ipx.ParseAddr accepts", s)
		}
	}
}

// TestParseBatchRequestScanner checks the fast body scanner against the
// stdlib on bodies it must take, and that bodies needing full JSON
// semantics are refused (falling back rather than misparsing).
func TestParseBatchRequestScanner(t *testing.T) {
	accepted := []string{
		`{"ips":["1.2.3.4","5.6.7.8"]}`,
		`{"ips":["1.2.3.4"],"db":"alpha"}`,
		`{"db":"beta","ips":["1.2.3.4"]}`,
		` { "ips" : [ "1.2.3.4" , "x" ] , "db" : "b" } `,
		`{"ips":[]}`,
		`{}`,
		"{\n\t\"ips\": [\"9.9.9.9\"]\n}\n",
		`{"ips":["a","a","a"]}`,
		`{"ips":["old"],"ips":["new"]}`, // duplicate key: last wins
	}
	st := new(v2State)
	for _, body := range accepted {
		db, ok := st.parseBatchRequest([]byte(body))
		if !ok {
			t.Errorf("scanner refused %q", body)
			continue
		}
		var want BatchRequest
		if err := json.Unmarshal([]byte(body), &want); err != nil {
			t.Fatalf("stdlib rejects accepted body %q: %v", body, err)
		}
		if len(st.ips) != len(want.IPs) {
			t.Errorf("%q: scanner found %d ips, stdlib %d", body, len(st.ips), len(want.IPs))
			continue
		}
		for i := range want.IPs {
			if string(st.ips[i]) != want.IPs[i] {
				t.Errorf("%q: ip %d = %q, want %q", body, i, st.ips[i], want.IPs[i])
			}
		}
		if string(db) != want.DB {
			t.Errorf("%q: db = %q, want %q", body, db, want.DB)
		}
	}
	refused := []string{
		`not json`,
		`[]`,
		`{"ips":"1.2.3.4"}`,
		`{"ips":[1,2]}`,
		`{"ips":["a\"b"]}`,
		`{"ips":["a\u0041b"]}`,
		`{"extra":1,"ips":["1.2.3.4"]}`,
		`{"ips":["1.2.3.4"]`,
		`{"ips":[null]}`,
		`{"db":7}`,
	}
	for _, body := range refused {
		if _, ok := st.parseBatchRequest([]byte(body)); ok {
			t.Errorf("scanner accepted %q, which needs the stdlib fallback", body)
		}
	}
}

// TestV2LookupWireParity pins the fast serializer's bytes to exactly
// what encoding/json produced for the same answer: sorted result keys,
// omitted zero fields, the Encoder's trailing newline.
func TestV2LookupWireParity(t *testing.T) {
	dbs := testDBs(t)
	h := NewHandler(dbs)
	ips := []string{"10.0.1.2", "192.0.2.1", "banana", "10.0.9.9"}
	body, _ := json.Marshal(BatchRequest{IPs: ips})

	req := httptest.NewRequest(http.MethodPost, "/v2/lookup", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}

	entries := make([]BatchEntry, 0, len(ips))
	for _, ip := range ips {
		addr, err := ipx.ParseAddr(ip)
		if err != nil {
			entries = append(entries, BatchEntry{IP: ip, Error: err.Error()})
			continue
		}
		results := make(map[string]RecordJSON, len(dbs))
		for _, db := range dbs {
			rec, found := db.Lookup(addr)
			results[db.Name()] = toJSON(rec, found)
		}
		entries = append(entries, BatchEntry{IP: ip, Results: results})
	}
	want, _ := json.Marshal(BatchResponse{Entries: entries})
	want = append(want, '\n')
	if got := rec.Body.Bytes(); !bytes.Equal(got, want) {
		t.Errorf("wire bytes diverge from encoding/json:\n got %s\nwant %s", got, want)
	}
}

// nullResponseWriter swallows the response so the alloc measurements
// see only the handler's own work.
type nullResponseWriter struct{ h http.Header }

func (n *nullResponseWriter) Header() http.Header         { return n.h }
func (n *nullResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (n *nullResponseWriter) WriteHeader(int)             {}

// replayBody is a resettable no-alloc request body.
type replayBody struct {
	data []byte
	off  int
}

func (r *replayBody) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}
func (r *replayBody) Close() error { return nil }

func batchBody(n int) []byte {
	var b strings.Builder
	b.WriteString(`{"ips":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `"10.0.%d.%d"`, i/250, i%250)
	}
	b.WriteString(`]}`)
	return []byte(b.String())
}

// TestV2LookupZeroAllocSteadyState drives the handler directly (no
// net/http server machinery) and requires the steady-state hot path to
// stop allocating once the pooled state has grown to the batch size.
func TestV2LookupZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the zero-alloc bar is asserted in normal builds and by the bench-compare gate")
	}
	h := NewHandler(testDBs(t))
	body := batchBody(512)
	rb := &replayBody{data: body}
	req := httptest.NewRequest(http.MethodPost, "/v2/lookup", rb)
	req.Body = rb
	w := &nullResponseWriter{h: make(http.Header)}

	run := func() {
		rb.off = 0
		h.handleV2Lookup(w, req)
	}
	run() // warm the pools
	if avg := testing.AllocsPerRun(200, run); avg > 0.1 {
		t.Errorf("steady-state /v2/lookup allocates %.2f times per request, want 0", avg)
	}
}

func benchDBs(b *testing.B) []*geodb.DB {
	b.Helper()
	mk := func(name string, seed int) *geodb.DB {
		bl := geodb.NewBuilder(name)
		for i := 0; i < 256; i++ {
			rec := geodb.Record{Country: "US", Resolution: geodb.ResolutionCountry, BlockBits: 24}
			if (i+seed)%2 == 0 {
				rec.City = fmt.Sprintf("city-%d", i)
				rec.Coord = geo.Coordinate{Lat: float64(i) / 8, Lon: -float64(i) / 4}
				rec.Resolution = geodb.ResolutionCity
			}
			bl.AddPrefix(0, ipx.Prefix{Base: ipx.Addr(10<<24 | i<<8), Bits: 24}, rec)
		}
		db, err := bl.Build()
		if err != nil {
			b.Fatal(err)
		}
		return db
	}
	return []*geodb.DB{mk("alpha", 0), mk("beta", 1)}
}

// BenchmarkV2LookupHandler measures the POST /v2/lookup hot path white
// box: the handler is called directly with a replayed body and a null
// writer, so B/op and allocs/op are the handler's own (bench-compare
// gates them against the committed baseline).
func BenchmarkV2LookupHandler(b *testing.B) {
	h := NewHandler(benchDBs(b))
	for _, n := range []int{16, 512, 8192} {
		b.Run(fmt.Sprintf("batch=%d", n), func(b *testing.B) {
			body := batchBody(n)
			rb := &replayBody{data: body}
			req := httptest.NewRequest(http.MethodPost, "/v2/lookup", rb)
			req.Body = rb
			w := &nullResponseWriter{h: make(http.Header)}
			rb.off = 0
			h.handleV2Lookup(w, req) // warm the pools
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rb.off = 0
				h.handleV2Lookup(w, req)
			}
			b.StopTimer()
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "addrs/s")
		})
	}
}
