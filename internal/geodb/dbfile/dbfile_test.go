package dbfile

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

func buildSample(t *testing.T) *geodb.DB {
	t.Helper()
	b := geodb.NewBuilder("SampleDB")
	b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/16"), geodb.Record{
		Country: "US", City: "Dallas",
		Coord: geo.Coordinate{Lat: 32.7767, Lon: -96.797}, Resolution: geodb.ResolutionCity,
	})
	b.AddPrefix(0, ipx.MustParsePrefix("10.1.0.0/16"), geodb.Record{
		Country: "DE", Resolution: geodb.ResolutionCountry,
	})
	b.AddPrefix(1, ipx.MustParsePrefix("10.0.7.0/24"), geodb.Record{
		Country: "FR", City: "Paris",
		Coord: geo.Coordinate{Lat: 48.8566, Lon: 2.3522}, Resolution: geodb.ResolutionCity,
	})
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestRoundTrip(t *testing.T) {
	db := buildSample(t)
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "SampleDB" {
		t.Errorf("name = %q", back.Name())
	}
	if back.Len() != db.Len() {
		t.Errorf("len = %d, want %d", back.Len(), db.Len())
	}
	for _, ip := range []string{"10.0.0.1", "10.0.7.9", "10.1.200.3", "10.0.255.255"} {
		a := ipx.MustParseAddr(ip)
		want, wantOK := db.Lookup(a)
		got, ok := back.Lookup(a)
		if ok != wantOK || got != want {
			t.Errorf("Lookup(%s): %+v,%v vs original %+v,%v", ip, got, ok, want, wantOK)
		}
	}
	// Misses survive too.
	if _, ok := back.Lookup(ipx.MustParseAddr("11.0.0.1")); ok {
		t.Error("miss became a hit after round trip")
	}
}

func TestRoundTripLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := geodb.NewBuilder("big")
	base := ipx.MustParseAddr("50.0.0.0")
	for i := 0; i < 5000; i++ {
		lo := base + ipx.Addr(i*300)
		hi := lo + ipx.Addr(rng.Intn(250))
		rec := geodb.Record{
			Country:    string([]byte{byte('A' + i%26), byte('A' + (i/26)%26)}),
			Resolution: geodb.ResolutionCountry,
			BlockBits:  uint8(16 + i%17),
		}
		if i%3 == 0 {
			rec.City = "City"
			rec.Coord = geo.Coordinate{Lat: float64(i%180) - 90, Lon: float64(i%360) - 180}
			rec.Resolution = geodb.ResolutionCity
		}
		b.Add(0, ipx.Range{Lo: lo, Hi: hi}, rec)
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("len mismatch %d vs %d", back.Len(), db.Len())
	}
	for i := 0; i < 2000; i++ {
		a := base + ipx.Addr(rng.Intn(5000*300))
		want, wantOK := db.Lookup(a)
		got, ok := back.Lookup(a)
		if ok != wantOK || got != want {
			t.Fatalf("Lookup(%v) diverged after round trip", a)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	db := buildSample(t)
	path := filepath.Join(t.TempDir(), "sample.rgdb")
	if err := WriteFile(path, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() || back.Name() != db.Name() {
		t.Error("file round trip mismatch")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"short magic": []byte("RG"),
		"bad magic":   []byte("XXXX\x01\x00"),
		"truncated":   []byte("RGDB\x01\x00\x05\x00ab"),
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: Read accepted garbage", name)
		}
	}
}

func TestReadRejectsWrongVersion(t *testing.T) {
	db := buildSample(t)
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version low byte
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("wrong version accepted")
	}
}

func TestReadRejectsBadLocationIndex(t *testing.T) {
	db := buildSample(t)
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The final 4 bytes are the last range's location index; point it
	// beyond the table.
	data[len(data)-1] = 0xff
	data[len(data)-2] = 0xff
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("out-of-range location index accepted")
	}
}

func TestEmptyDatabaseRoundTrip(t *testing.T) {
	db, err := geodb.NewBuilder("empty").Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 || back.Name() != "empty" {
		t.Error("empty database round trip failed")
	}
}
