package dbfile

import (
	"bytes"
	"fmt"
	"testing"

	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

func benchDB(b *testing.B, entries int) *geodb.DB {
	b.Helper()
	builder := geodb.NewBuilder("bench")
	base := ipx.MustParseAddr("20.0.0.0")
	for i := 0; i < entries; i++ {
		lo := base + ipx.Addr(i*256)
		builder.Add(0, ipx.Range{Lo: lo, Hi: lo + 255}, geodb.Record{
			Country: "US", City: fmt.Sprintf("City%d", i%500),
			Coord:      geo.Coordinate{Lat: float64(i%90) + 0.5, Lon: float64(i%180) + 0.5},
			Resolution: geodb.ResolutionCity, BlockBits: 24,
		})
	}
	db, err := builder.Build()
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkWrite measures serializing a 10k-range database.
func BenchmarkWrite(b *testing.B) {
	db := benchDB(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, db); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRead measures parsing it back.
func BenchmarkRead(b *testing.B) {
	db := benchDB(b, 10000)
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
