package dbfile

import (
	"bytes"
	"testing"

	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

// FuzzRead hardens the binary parser: arbitrary input must produce an
// error or a valid database — never a panic or a runaway allocation.
// The seed corpus includes a valid file so mutations explore deep paths.
func FuzzRead(f *testing.F) {
	b := geodb.NewBuilder("seed")
	b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/16"), geodb.Record{
		Country: "US", City: "Dallas",
		Coord: geo.Coordinate{Lat: 32.77, Lon: -96.8}, Resolution: geodb.ResolutionCity,
	})
	db, err := b.Build()
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("RGDB"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed database must be queryable.
		got.Lookup(ipx.MustParseAddr("10.0.0.1"))
		got.Walk(func(r ipx.Range, rec geodb.Record) bool {
			if r.Lo > r.Hi {
				t.Fatalf("parsed inverted range %v", r)
			}
			return true
		})
	})
}
