// Package dbfile serializes geodb databases to a compact binary format,
// playing the role of the vendor file formats (MaxMind's mmdb,
// IP2Location's BIN, NetAcuity's db files): a sorted table of address
// ranges referencing a deduplicated location table.
//
// Layout (all integers little-endian):
//
//	magic     "RGDB"            4 bytes
//	version   uint16            currently 1
//	nameLen   uint16, name      database name
//	locCount  uint32
//	locations locCount times:
//	    country   2 bytes (ISO2, zero-padded)
//	    res       uint8
//	    blockBits uint8
//	    lat, lon  float64
//	    cityLen   uint16, city
//	rangeCount uint32
//	ranges     rangeCount times: lo uint32, hi uint32, locIdx uint32
//
// Ranges must be sorted and disjoint; ReadFrom validates both.
package dbfile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

const (
	// Magic identifies a dbfile's first four bytes; the dbload sniffer
	// dispatches on it.
	Magic = "RGDB"

	magic   = Magic
	version = 1
)

// Write serializes db.
func Write(w io.Writer, db *geodb.DB) error {
	bw := bufio.NewWriter(w)

	// Deduplicate locations.
	type locKey struct {
		country, city string
		lat, lon      float64
		res           geodb.Resolution
		bits          uint8
	}
	locIdx := map[locKey]uint32{}
	var locs []locKey
	type rangeEnt struct {
		r   ipx.Range
		loc uint32
	}
	var ranges []rangeEnt
	db.Walk(func(r ipx.Range, rec geodb.Record) bool {
		k := locKey{
			country: rec.Country, city: rec.City,
			lat: rec.Coord.Lat, lon: rec.Coord.Lon,
			res: rec.Resolution, bits: rec.BlockBits,
		}
		idx, ok := locIdx[k]
		if !ok {
			idx = uint32(len(locs))
			locIdx[k] = idx
			locs = append(locs, k)
		}
		ranges = append(ranges, rangeEnt{r: r, loc: idx})
		return true
	})

	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(version)); err != nil {
		return err
	}
	if err := writeString16(bw, db.Name()); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(locs))); err != nil {
		return err
	}
	for _, l := range locs {
		var cc [2]byte
		copy(cc[:], l.country)
		if _, err := bw.Write(cc[:]); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(l.res)); err != nil {
			return err
		}
		if err := bw.WriteByte(l.bits); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, l.lat); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, l.lon); err != nil {
			return err
		}
		if err := writeString16(bw, l.city); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(ranges))); err != nil {
		return err
	}
	for _, re := range ranges {
		if err := binary.Write(bw, binary.LittleEndian, uint32(re.r.Lo)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(re.r.Hi)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, re.loc); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a database written by Write.
func Read(r io.Reader) (*geodb.DB, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("dbfile: header: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("dbfile: bad magic %q", head)
	}
	var ver uint16
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("dbfile: unsupported version %d", ver)
	}
	name, err := readString16(br)
	if err != nil {
		return nil, err
	}

	var locCount uint32
	if err := binary.Read(br, binary.LittleEndian, &locCount); err != nil {
		return nil, err
	}
	if locCount > 1<<26 {
		return nil, fmt.Errorf("dbfile: implausible location count %d", locCount)
	}
	// Grow incrementally rather than trusting the declared count: a forged
	// header must not be able to pre-allocate gigabytes before the stream
	// runs dry (each location costs at least 22 bytes on the wire).
	locs := make([]geodb.Record, 0, minU32(locCount, 4096))
	for i := uint32(0); i < locCount; i++ {
		cc := make([]byte, 2)
		if _, err := io.ReadFull(br, cc); err != nil {
			return nil, err
		}
		res, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		bits, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		var lat, lon float64
		if err := binary.Read(br, binary.LittleEndian, &lat); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &lon); err != nil {
			return nil, err
		}
		city, err := readString16(br)
		if err != nil {
			return nil, err
		}
		if math.IsNaN(lat) || math.IsNaN(lon) {
			return nil, fmt.Errorf("dbfile: NaN coordinates in location %d", i)
		}
		country := string(cc)
		if cc[0] == 0 {
			country = ""
		}
		locs = append(locs, geodb.Record{
			Country:    country,
			City:       city,
			Coord:      geo.Coordinate{Lat: lat, Lon: lon},
			Resolution: geodb.Resolution(res),
			BlockBits:  bits,
		})
	}

	var rangeCount uint32
	if err := binary.Read(br, binary.LittleEndian, &rangeCount); err != nil {
		return nil, err
	}
	if rangeCount > 1<<28 {
		return nil, fmt.Errorf("dbfile: implausible range count %d", rangeCount)
	}
	b := geodb.NewBuilder(name)
	for i := uint32(0); i < rangeCount; i++ {
		var lo, hi, loc uint32
		if err := binary.Read(br, binary.LittleEndian, &lo); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &hi); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &loc); err != nil {
			return nil, err
		}
		if lo > hi {
			return nil, fmt.Errorf("dbfile: inverted range entry %d", i)
		}
		if loc >= uint32(len(locs)) {
			return nil, fmt.Errorf("dbfile: range %d references location %d of %d", i, loc, len(locs))
		}
		b.Add(0, ipx.Range{Lo: ipx.Addr(lo), Hi: ipx.Addr(hi)}, locs[loc])
	}
	db, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("dbfile: %w", err)
	}
	return db, nil
}

// WriteFile writes db to path.
func WriteFile(path string, db *geodb.DB) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, db); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a database from path.
func ReadFile(path string) (*geodb.DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func writeString16(w *bufio.Writer, s string) error {
	if len(s) > 1<<16-1 {
		return fmt.Errorf("dbfile: string too long (%d bytes)", len(s))
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString16(r *bufio.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
