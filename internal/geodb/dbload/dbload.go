// Package dbload is the one loader every binary shares: it opens a
// geolocation database in any of the repo's on-disk formats — CSV dump,
// RGDB binary, RGSP snapshot — dispatching on magic bytes rather than
// file extension, so a renamed artifact still opens as what it is. It
// also centralizes the matching write dispatch and the directory scan
// the servers use, ending the per-binary extension-switch duplication.
package dbload

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"routergeo/internal/geodb"
	"routergeo/internal/geodb/dbcsv"
	"routergeo/internal/geodb/dbfile"
	"routergeo/internal/geodb/snapshot"
)

// Format names an on-disk database format. The zero value is Auto:
// sniff the file's magic bytes.
type Format string

const (
	Auto   Format = "auto"
	CSV    Format = "csv"
	DBFile Format = "dbfile"
	Snap   Format = "snap"
)

// String implements flag.Value.
func (f *Format) String() string {
	if *f == "" {
		return string(Auto)
	}
	return string(*f)
}

// Set implements flag.Value, so binaries can share
// `flag.Var(&format, "format", ...)`.
func (f *Format) Set(s string) error {
	switch Format(s) {
	case Auto, CSV, DBFile, Snap:
		*f = Format(s)
		return nil
	}
	return fmt.Errorf("unknown format %q (want auto, csv, dbfile or snap)", s)
}

// Ext returns the conventional file extension for the format.
func (f Format) Ext() string {
	switch f {
	case CSV:
		return ".csv"
	case DBFile:
		return ".rgdb"
	case Snap:
		return snapshot.Ext
	}
	return ""
}

// Sniff classifies leading file bytes by magic. Anything that is not a
// known binary magic is presumed CSV — the CSV reader then produces the
// real parse error if it is not.
func Sniff(head []byte) Format {
	if len(head) >= 4 {
		switch string(head[:4]) {
		case snapshot.Magic:
			return Snap
		case dbfile.Magic:
			return DBFile
		}
	}
	return CSV
}

// SniffFile classifies a file on disk by its magic bytes.
func SniffFile(path string) (Format, error) {
	f, err := os.Open(path)
	if err != nil {
		return Auto, err
	}
	defer f.Close()
	head := make([]byte, 4)
	n, _ := f.Read(head)
	return Sniff(head[:n]), nil
}

// Loaded is one opened database plus what backed it. Close is never nil;
// for snapshots it releases the file mapping and must only run once no
// lookups against DB remain possible.
type Loaded struct {
	DB     *geodb.DB
	Path   string
	Format Format
	Close  func() error
}

// Open loads one database file. Format Auto (or "") sniffs the magic
// bytes; naming a format insists on it, and a mismatched magic is an
// error rather than a silent fallback.
func Open(path string, format Format) (Loaded, error) {
	sniffed, err := SniffFile(path)
	if err != nil {
		return Loaded{}, err
	}
	if format == Auto || format == "" {
		format = sniffed
	} else if format != sniffed {
		return Loaded{}, fmt.Errorf("%s: file is %s, not the requested %s", path, sniffed, format)
	}
	noop := func() error { return nil }
	switch format {
	case Snap:
		h, err := snapshot.Open(path)
		if err != nil {
			return Loaded{}, err
		}
		return Loaded{DB: h.DB(), Path: path, Format: Snap, Close: h.Close}, nil
	case DBFile:
		db, err := dbfile.ReadFile(path)
		if err != nil {
			return Loaded{}, err
		}
		meta := db.Meta()
		meta.SourceFormat = "dbfile"
		db.SetMeta(meta)
		return Loaded{DB: db, Path: path, Format: DBFile, Close: noop}, nil
	default:
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		db, err := dbcsv.ReadFile(path, name)
		if err != nil {
			return Loaded{}, err
		}
		meta := db.Meta()
		meta.SourceFormat = "csv"
		db.SetMeta(meta)
		return Loaded{DB: db, Path: path, Format: CSV, Close: noop}, nil
	}
}

// OpenDir loads every database artifact in dir (*.rgdb, *.csv, *.rgsnap),
// sniffing each by magic, in sorted path order. Closing any returned
// Loaded is the caller's job; on error the already-opened ones are
// closed before returning.
func OpenDir(dir string) ([]Loaded, error) {
	var paths []string
	for _, pattern := range []string{"*.rgdb", "*.csv", "*" + snapshot.Ext} {
		matches, err := filepath.Glob(filepath.Join(dir, pattern))
		if err != nil {
			return nil, err
		}
		paths = append(paths, matches...)
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("%s: no .rgdb, .csv or %s files", dir, snapshot.Ext)
	}
	var out []Loaded
	for _, p := range paths {
		l, err := Open(p, Auto)
		if err != nil {
			for _, prev := range out {
				_ = prev.Close()
			}
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		out = append(out, l)
	}
	return out, nil
}

// WriteFile writes db to path in the named format (Auto writes the
// format matching the path's extension, defaulting to dbfile). The meta
// is consulted only by the snapshot writer.
func WriteFile(path string, db *geodb.DB, format Format, meta snapshot.Meta) error {
	if format == Auto || format == "" {
		switch filepath.Ext(path) {
		case ".csv":
			format = CSV
		case snapshot.Ext:
			format = Snap
		default:
			format = DBFile
		}
	}
	switch format {
	case Snap:
		return snapshot.WriteFile(path, db, meta)
	case CSV:
		return dbcsv.WriteFile(path, db)
	default:
		return dbfile.WriteFile(path, db)
	}
}
