package dbload

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/geodb/snapshot"
	"routergeo/internal/ipx"
)

func sample(t *testing.T, name string) *geodb.DB {
	t.Helper()
	b := geodb.NewBuilder(name)
	b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/16"), geodb.Record{
		Country: "US", City: "Dallas",
		Coord: geo.Coordinate{Lat: 32.77, Lon: -96.8}, Resolution: geodb.ResolutionCity,
	})
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestSniffIgnoresExtension is the point of the package: files open as
// what their bytes say, whatever they are called.
func TestSniffIgnoresExtension(t *testing.T) {
	dir := t.TempDir()
	db := sample(t, "mislabeled")
	// A snapshot wearing a .csv name and a dbfile wearing a snapshot name.
	snapAsCSV := filepath.Join(dir, "x.csv")
	if err := WriteFile(snapAsCSV, db, Snap, snapshot.Meta{BuildEpoch: 5}); err != nil {
		t.Fatal(err)
	}
	dbfileAsSnap := filepath.Join(dir, "y"+snapshot.Ext)
	if err := WriteFile(dbfileAsSnap, db, DBFile, snapshot.Meta{}); err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]Format{snapAsCSV: Snap, dbfileAsSnap: DBFile} {
		got, err := SniffFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("SniffFile(%s) = %s, want %s", filepath.Base(path), got, want)
		}
		l, err := Open(path, Auto)
		if err != nil {
			t.Fatalf("Open(%s): %v", path, err)
		}
		if l.Format != want || l.DB.Name() != "mislabeled" {
			t.Errorf("Open(%s) = format %s name %q", filepath.Base(path), l.Format, l.DB.Name())
		}
		l.Close()
	}
}

func TestOpenFormatMismatch(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "db.rgdb")
	if err := WriteFile(p, sample(t, "s"), DBFile, snapshot.Meta{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(p, Snap); err == nil || !strings.Contains(err.Error(), "not the requested") {
		t.Fatalf("requesting wrong format: err = %v", err)
	}
	if _, err := Open(p, DBFile); err != nil {
		t.Fatalf("requesting right format: %v", err)
	}
}

func TestRoundTripAllFormats(t *testing.T) {
	dir := t.TempDir()
	db := sample(t, "rt")
	addr := ipx.MustParseAddr("10.0.1.2")
	want, _ := db.Lookup(addr)
	for _, f := range []Format{CSV, DBFile, Snap} {
		p := filepath.Join(dir, "db"+f.Ext())
		if err := WriteFile(p, db, Auto, snapshot.Meta{BuildEpoch: 9}); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		l, err := Open(p, Auto)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		got, ok := l.DB.Lookup(addr)
		if !ok || got.Country != want.Country || got.City != want.City {
			t.Errorf("%s: Lookup = %+v,%v", f, got, ok)
		}
		if src := l.DB.Meta().SourceFormat; src == "" {
			t.Errorf("%s: SourceFormat not set", f)
		}
		l.Close()
	}
	// CSV keeps the file-derived name (it has no embedded one).
	l, err := Open(filepath.Join(dir, "db.csv"), CSV)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.DB.Name() != "db" {
		t.Errorf("csv name = %q", l.DB.Name())
	}
}

func TestOpenDirMixedFormats(t *testing.T) {
	dir := t.TempDir()
	for name, f := range map[string]Format{"alpha": CSV, "bravo": DBFile, "charlie": Snap} {
		p := filepath.Join(dir, name+f.Ext())
		if err := WriteFile(p, sample(t, name), f, snapshot.Meta{BuildEpoch: 1}); err != nil {
			t.Fatal(err)
		}
	}
	loaded, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 3 {
		t.Fatalf("loaded %d databases", len(loaded))
	}
	for _, l := range loaded {
		l.Close()
	}
	if _, err := OpenDir(t.TempDir()); err == nil {
		t.Error("empty directory should error")
	}
}

func TestOpenDirClosesOnError(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFile(filepath.Join(dir, "good"+snapshot.Ext), sample(t, "good"), Snap, snapshot.Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "zbad"+snapshot.Ext), []byte("RGSPgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir); err == nil {
		t.Fatal("corrupt member should fail the directory load")
	}
}

func TestFormatFlagValue(t *testing.T) {
	var f Format
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.Var(&f, "format", "")
	if err := fs.Parse([]string{"-format", "snap"}); err != nil {
		t.Fatal(err)
	}
	if f != Snap {
		t.Fatalf("parsed %q", f)
	}
	if err := f.Set("parquet"); err == nil {
		t.Error("bad format accepted")
	}
	var zero Format
	if zero.String() != "auto" {
		t.Errorf("zero value String = %q", zero.String())
	}
}
