package geodb

import (
	"math/rand"
	"testing"

	"routergeo/internal/geo"
	"routergeo/internal/ipx"
)

func rec(cc, city string, res Resolution) Record {
	r := Record{Country: cc, City: city, Resolution: res}
	if res == ResolutionCity {
		r.Coord = geo.Coordinate{Lat: 1, Lon: 1}
	}
	return r
}

func TestRecordPredicates(t *testing.T) {
	if (Record{}).HasCountry() || (Record{}).HasCity() {
		t.Error("zero record should answer nothing")
	}
	c := rec("US", "", ResolutionCountry)
	if !c.HasCountry() || c.HasCity() {
		t.Error("country record misclassified")
	}
	city := rec("US", "Dallas", ResolutionCity)
	if !city.HasCountry() || !city.HasCity() {
		t.Error("city record misclassified")
	}
	// City resolution without coordinates does not count as a city answer.
	noCoord := Record{Country: "US", City: "Dallas", Resolution: ResolutionCity}
	if noCoord.HasCity() {
		t.Error("city record without coordinates should not answer city")
	}
	if !(Record{BlockBits: 24}).BlockLevel() || (Record{BlockBits: 32}).BlockLevel() {
		t.Error("BlockLevel misclassified")
	}
}

func TestBuilderSingleLayer(t *testing.T) {
	b := NewBuilder("test")
	b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/8"), rec("US", "", ResolutionCountry))
	b.AddPrefix(0, ipx.MustParsePrefix("11.0.0.0/8"), rec("DE", "", ResolutionCountry))
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if db.Name() != "test" {
		t.Errorf("Name = %q", db.Name())
	}
	got, ok := db.Lookup(ipx.MustParseAddr("10.1.2.3"))
	if !ok || got.Country != "US" {
		t.Errorf("Lookup = %+v, %v", got, ok)
	}
	if _, ok := db.Lookup(ipx.MustParseAddr("12.0.0.1")); ok {
		t.Error("lookup outside records should miss")
	}
}

func TestBuilderLayering(t *testing.T) {
	// Base /16 country record, /24 correction, /32 hint — the NetAcuity
	// stack. Queries must resolve to the finest covering layer.
	b := NewBuilder("layered")
	b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/16"), rec("US", "Washington", ResolutionCity))
	b.AddPrefix(1, ipx.MustParsePrefix("10.0.5.0/24"), rec("DE", "Frankfurt", ResolutionCity))
	hint := rec("FR", "Paris", ResolutionCity)
	hint.BlockBits = 32
	b.Add(2, ipx.Range{Lo: ipx.MustParseAddr("10.0.5.7"), Hi: ipx.MustParseAddr("10.0.5.7")}, hint)
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		ip   string
		city string
		bits uint8
	}{
		{"10.0.0.1", "Washington", 16},
		{"10.0.4.255", "Washington", 16},
		{"10.0.5.1", "Frankfurt", 24},
		{"10.0.5.7", "Paris", 32},
		{"10.0.5.8", "Frankfurt", 24},
		{"10.0.6.0", "Washington", 16},
		{"10.0.255.255", "Washington", 16},
	}
	for _, tt := range tests {
		got, ok := db.Lookup(ipx.MustParseAddr(tt.ip))
		if !ok || got.City != tt.city || got.BlockBits != tt.bits {
			t.Errorf("Lookup(%s) = %+v, %v; want city %s bits %d", tt.ip, got, ok, tt.city, tt.bits)
		}
	}
}

func TestBuilderRejectsIntraLayerOverlap(t *testing.T) {
	b := NewBuilder("bad")
	b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/8"), rec("US", "", ResolutionCountry))
	b.AddPrefix(0, ipx.MustParsePrefix("10.5.0.0/16"), rec("DE", "", ResolutionCountry))
	if _, err := b.Build(); err == nil {
		t.Error("intra-layer overlap must be rejected")
	}
}

func TestBuilderOverrideAtEdges(t *testing.T) {
	// Overrides touching the base range's first and last addresses must
	// not produce inverted or overlapping fragments.
	b := NewBuilder("edges")
	b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/24"), rec("US", "", ResolutionCountry))
	b.Add(1, ipx.Range{Lo: ipx.MustParseAddr("10.0.0.0"), Hi: ipx.MustParseAddr("10.0.0.0")}, rec("AA", "", ResolutionCountry))
	b.Add(1, ipx.Range{Lo: ipx.MustParseAddr("10.0.0.255"), Hi: ipx.MustParseAddr("10.0.0.255")}, rec("ZZ", "", ResolutionCountry))
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for ip, want := range map[string]string{
		"10.0.0.0": "AA", "10.0.0.1": "US", "10.0.0.254": "US", "10.0.0.255": "ZZ",
	} {
		got, ok := db.Lookup(ipx.MustParseAddr(ip))
		if !ok || got.Country != want {
			t.Errorf("Lookup(%s) = %+v, want %s", ip, got, want)
		}
	}
}

func TestBuilderFullOverride(t *testing.T) {
	// An override covering the whole base leaves no base fragments.
	b := NewBuilder("full")
	b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/24"), rec("US", "", ResolutionCountry))
	b.AddPrefix(1, ipx.MustParsePrefix("10.0.0.0/24"), rec("DE", "", ResolutionCountry))
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d, want 1", db.Len())
	}
	got, _ := db.Lookup(ipx.MustParseAddr("10.0.0.128"))
	if got.Country != "DE" {
		t.Errorf("full override failed: %+v", got)
	}
}

func TestLayeringRandomizedProperty(t *testing.T) {
	// Random layered construction vs a brute-force per-address oracle.
	rng := rand.New(rand.NewSource(3))
	b := NewBuilder("prop")
	type ent struct {
		layer int
		r     ipx.Range
		cc    string
	}
	var ents []ent
	for layer := 0; layer < 3; layer++ {
		used := &coverage{}
		for i := 0; i < 40; i++ {
			lo := ipx.Addr(rng.Intn(5000))
			hi := lo + ipx.Addr(rng.Intn(200))
			frags := used.subtract(ipx.Range{Lo: lo, Hi: hi})
			if len(frags) == 0 || frags[0].Lo != lo || frags[0].Hi != hi {
				continue // would overlap within the layer; skip
			}
			used.insert(ipx.Range{Lo: lo, Hi: hi})
			cc := string([]byte{byte('A' + layer), byte('A' + i%26)})
			b.Add(layer, ipx.Range{Lo: lo, Hi: hi}, rec(cc, "", ResolutionCountry))
			ents = append(ents, ent{layer: layer, r: ipx.Range{Lo: lo, Hi: hi}, cc: cc})
		}
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	oracle := func(a ipx.Addr) (string, bool) {
		best, bestLayer := "", -1
		for _, e := range ents {
			if e.r.Contains(a) && e.layer > bestLayer {
				best, bestLayer = e.cc, e.layer
			}
		}
		return best, bestLayer >= 0
	}
	for a := ipx.Addr(0); a < 5300; a++ {
		want, wantOK := oracle(a)
		got, ok := db.Lookup(a)
		if ok != wantOK || (ok && got.Country != want) {
			t.Fatalf("Lookup(%d) = %q,%v; oracle %q,%v", a, got.Country, ok, want, wantOK)
		}
	}
}

func TestCoverageSubtractInsert(t *testing.T) {
	var c coverage
	c.insert(ipx.Range{Lo: 10, Hi: 20})
	c.insert(ipx.Range{Lo: 30, Hi: 40})
	frags := c.subtract(ipx.Range{Lo: 5, Hi: 45})
	want := []ipx.Range{{Lo: 5, Hi: 9}, {Lo: 21, Hi: 29}, {Lo: 41, Hi: 45}}
	if len(frags) != len(want) {
		t.Fatalf("subtract = %v, want %v", frags, want)
	}
	for i := range want {
		if frags[i] != want[i] {
			t.Fatalf("subtract[%d] = %v, want %v", i, frags[i], want[i])
		}
	}
	// Adjacent ranges merge.
	c.insert(ipx.Range{Lo: 21, Hi: 29})
	if len(c.rs) != 1 || c.rs[0].Lo != 10 || c.rs[0].Hi != 40 {
		t.Fatalf("merge failed: %v", c.rs)
	}
	// Fully covered subtraction yields nothing.
	if got := c.subtract(ipx.Range{Lo: 15, Hi: 35}); len(got) != 0 {
		t.Fatalf("covered subtract = %v", got)
	}
}

func TestCoverageInsertAtTopOfSpace(t *testing.T) {
	var c coverage
	c.insert(ipx.Range{Lo: 0xfffffffe, Hi: 0xffffffff})
	c.insert(ipx.Range{Lo: 0xfffffff0, Hi: 0xfffffffd})
	if len(c.rs) != 1 {
		t.Fatalf("top-of-space merge failed: %v", c.rs)
	}
	if got := c.subtract(ipx.Range{Lo: 0xffffffff, Hi: 0xffffffff}); len(got) != 0 {
		t.Fatalf("top address should be covered, got %v", got)
	}
}
