package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/groundtruth"
	"routergeo/internal/ipx"
	"routergeo/internal/stats"
)

// forceParallel drops the serial cutoff, shrinks the block size and pins
// the worker count so even tiny inputs split into many stolen blocks,
// restoring everything on cleanup.
func forceParallel(t *testing.T, workers int) {
	t.Helper()
	oldCutoff, oldBlock := serialCutoff, blockSize
	serialCutoff = 1
	blockSize = 512
	SetParallelism(workers)
	t.Cleanup(func() {
		serialCutoff, blockSize = oldCutoff, oldBlock
		SetParallelism(0)
	})
}

// noBatch hides every fast-path interface of a database, forcing the
// engine down the per-address fallback so the equality tests cover both
// resolver paths.
type noBatch struct{ db geodb.Provider }

func (n noBatch) Name() string                           { return n.db.Name() }
func (n noBatch) Lookup(a ipx.Addr) (geodb.Record, bool) { return n.db.Lookup(a) }

// synthDB builds a deterministic database: /24s across 10.0.0.0/8 cycle
// through city, country-only, and missing records, with coordinates
// drifting so distances vary.
func synthDB(t testing.TB, name string, seed int64) *geodb.DB {
	b := geodb.NewBuilder(name)
	rng := rand.New(rand.NewSource(seed))
	countries := []string{"US", "DE", "FR", "BR", "JP"}
	for i := 0; i < 700; i++ {
		p := ipx.Prefix{Base: ipx.Addr(10<<24 | i<<8), Bits: 24}
		switch i % 3 {
		case 0:
			cc := countries[rng.Intn(len(countries))]
			coord := geo.Coordinate{Lat: -60 + rng.Float64()*120, Lon: -170 + rng.Float64()*340}
			b.AddPrefix(0, p, geodb.Record{
				Country: cc, City: fmt.Sprintf("city-%d", i), Coord: coord,
				Resolution: geodb.ResolutionCity,
			})
		case 1:
			b.AddPrefix(0, p, geodb.Record{
				Country:    countries[rng.Intn(len(countries))],
				Resolution: geodb.ResolutionCountry,
			})
		}
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// synthInputs returns a deterministic address sweep and target list over
// the synthetic databases' address space, misses included.
func synthInputs(n int) ([]ipx.Addr, []Target) {
	rng := rand.New(rand.NewSource(42))
	addrs := make([]ipx.Addr, n)
	targets := make([]Target, n)
	countries := []string{"US", "DE", "FR", "BR", "JP"}
	rirs := []geo.RIR{geo.ARIN, geo.RIPENCC, geo.APNIC, geo.LACNIC, geo.AFRINIC}
	methods := []groundtruth.Method{groundtruth.DNS, groundtruth.RTT}
	for i := range addrs {
		a := ipx.Addr(10<<24 | rng.Intn(900)<<8 | rng.Intn(256))
		addrs[i] = a
		truth := geo.Coordinate{Lat: -60 + rng.Float64()*120, Lon: -170 + rng.Float64()*340}
		targets[i] = Target{
			Addr:     a,
			Truth:    truth,
			TruthVec: truth.Vec(), // cached, as TargetsFromDataset would
			Country:  countries[rng.Intn(len(countries))],
			RIR:      rirs[rng.Intn(len(rirs))],
			Method:   methods[rng.Intn(len(methods))],
		}
	}
	return addrs, targets
}

func sameAccuracy(t *testing.T, label string, want, got Accuracy) {
	t.Helper()
	if want.Total != got.Total || want.CountryAnswered != got.CountryAnswered ||
		want.CountryCorrect != got.CountryCorrect || want.CityAnswered != got.CityAnswered ||
		want.Within40Km != got.Within40Km {
		t.Errorf("%s: counters diverge: serial %+v parallel %+v", label, want, got)
	}
	samePoints(t, label, want.ErrorCDF, got.ErrorCDF)
}

func samePoints(t *testing.T, label string, want, got *stats.ECDF) {
	t.Helper()
	ws, gs := want.Points(), got.Points()
	if len(ws) != len(gs) {
		t.Fatalf("%s: CDF has %d samples serial, %d parallel", label, len(ws), len(gs))
	}
	for i := range ws {
		if ws[i] != gs[i] {
			t.Fatalf("%s: CDF point %d: serial %v parallel %v", label, i, ws[i], gs[i])
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	ctx := context.Background()
	dbA := synthDB(t, "a", 1)
	dbB := synthDB(t, "b", 2)
	dbC := synthDB(t, "c", 3)
	providers := []geodb.Provider{dbA, dbB, dbC}
	addrs, targets := synthInputs(5000)

	// Serial oracle first.
	SetParallelism(1)
	covS := MeasureCoverage(ctx, dbA, addrs)
	accS := MeasureAccuracy(ctx, dbA, targets)
	byRIRS := AccuracyByRIR(ctx, dbA, targets)
	byCCS := AccuracyByCountry(ctx, dbA, targets)
	byMS := AccuracyByMethod(ctx, dbA, targets)
	agreeS, bothS := CountryAgreement(ctx, dbA, dbB, addrs)
	allS, totalS := CountryAgreementAll(ctx, providers, addrs)
	pairS := MeasurePairwiseCity(ctx, dbA, dbB, addrs)
	cityS := CityAnsweredInAll(ctx, providers, addrs)
	sharedS, wrongS := SharedIncorrect(providers, targets)

	// The fallback variant hides BatchIndexer behind a wrapper: both
	// resolver paths must reproduce the same serial oracle.
	variants := []struct {
		name      string
		a, b      geodb.Provider
		providers []geodb.Provider
	}{
		{"batch", dbA, dbB, providers},
		{"fallback", noBatch{dbA}, noBatch{dbB},
			[]geodb.Provider{noBatch{dbA}, noBatch{dbB}, noBatch{dbC}}},
	}

	for _, v := range variants {
		for _, workers := range []int{2, 3, 7} {
			t.Run(fmt.Sprintf("%s/workers=%d", v.name, workers), func(t *testing.T) {
				forceParallel(t, workers)
				dbA, dbB, providers := v.a, v.b, v.providers

				if covP := MeasureCoverage(ctx, dbA, addrs); covP != covS {
					t.Errorf("coverage: serial %+v parallel %+v", covS, covP)
				}
				sameAccuracy(t, "accuracy", accS, MeasureAccuracy(ctx, dbA, targets))

				byRIRP := AccuracyByRIR(ctx, dbA, targets)
				if len(byRIRP) != len(byRIRS) {
					t.Fatalf("byRIR sizes: %d vs %d", len(byRIRS), len(byRIRP))
				}
				for k, want := range byRIRS {
					sameAccuracy(t, "byRIR["+k.String()+"]", want, byRIRP[k])
				}
				byCCP := AccuracyByCountry(ctx, dbA, targets)
				if len(byCCP) != len(byCCS) {
					t.Fatalf("byCountry sizes: %d vs %d", len(byCCS), len(byCCP))
				}
				for k, want := range byCCS {
					sameAccuracy(t, "byCountry["+k+"]", want, byCCP[k])
				}
				byMP := AccuracyByMethod(ctx, dbA, targets)
				for k, want := range byMS {
					sameAccuracy(t, "byMethod", want, byMP[k])
				}

				if agreeP, bothP := CountryAgreement(ctx, dbA, dbB, addrs); agreeP != agreeS || bothP != bothS {
					t.Errorf("agreement: serial %d/%d parallel %d/%d", agreeS, bothS, agreeP, bothP)
				}
				if allP, totalP := CountryAgreementAll(ctx, providers, addrs); allP != allS || totalP != totalS {
					t.Errorf("agreement-all: serial %d/%d parallel %d/%d", allS, totalS, allP, totalP)
				}

				pairP := MeasurePairwiseCity(ctx, dbA, dbB, addrs)
				if pairP.Both != pairS.Both || pairP.Identical != pairS.Identical || pairP.Over40Km != pairS.Over40Km {
					t.Errorf("pairwise: serial %+v parallel %+v", pairS, pairP)
				}
				samePoints(t, "pairwise CDF", pairS.CDF, pairP.CDF)

				cityP := CityAnsweredInAll(ctx, providers, addrs)
				if len(cityP) != len(cityS) {
					t.Fatalf("city-in-all: %d vs %d survivors", len(cityS), len(cityP))
				}
				for i := range cityS {
					if cityP[i] != cityS[i] {
						t.Fatalf("city-in-all order diverges at %d: %v vs %v", i, cityS[i], cityP[i])
					}
				}

				sharedP, wrongP := SharedIncorrect(providers, targets)
				if sharedP != sharedS {
					t.Errorf("shared-incorrect: serial %d parallel %d", sharedS, sharedP)
				}
				for i := range wrongS {
					if wrongP[i] != wrongS[i] {
						t.Errorf("wrongPerDB[%d]: serial %d parallel %d", i, wrongS[i], wrongP[i])
					}
				}
			})
		}
	}
}

// TestParallelMatchesSerialAdversarial runs the sweep equality check on
// address patterns chosen to stress the batch kernel: already sorted,
// reversed, all-duplicate, tightly clustered and block-striped inputs.
func TestParallelMatchesSerialAdversarial(t *testing.T) {
	ctx := context.Background()
	dbA := synthDB(t, "a", 1)
	dbB := synthDB(t, "b", 2)

	n := 5000
	patterns := map[string]func(i int) ipx.Addr{
		"sorted":    func(i int) ipx.Addr { return ipx.Addr(10<<24 | (i%900)<<8 | i%256) },
		"reversed":  func(i int) ipx.Addr { return ipx.Addr(10<<24 | ((n-i)%900)<<8 | (n-i)%256) },
		"identical": func(i int) ipx.Addr { return ipx.Addr(10<<24 | 3<<8 | 7) },
		"clustered": func(i int) ipx.Addr { return ipx.Addr(10<<24 | 5<<8 | i%256) },
		"striped":   func(i int) ipx.Addr { return ipx.Addr(10<<24 | (i*37%900)<<8 | i*101%256) },
	}
	for name, gen := range patterns {
		t.Run(name, func(t *testing.T) {
			addrs := make([]ipx.Addr, n)
			for i := range addrs {
				addrs[i] = gen(i)
			}
			SetParallelism(1)
			covS := MeasureCoverage(ctx, dbA, addrs)
			agreeS, bothS := CountryAgreement(ctx, dbA, dbB, addrs)
			pairS := MeasurePairwiseCity(ctx, dbA, dbB, addrs)

			forceParallel(t, 4)
			if covP := MeasureCoverage(ctx, dbA, addrs); covP != covS {
				t.Errorf("coverage: serial %+v parallel %+v", covS, covP)
			}
			if agreeP, bothP := CountryAgreement(ctx, dbA, dbB, addrs); agreeP != agreeS || bothP != bothS {
				t.Errorf("agreement: serial %d/%d parallel %d/%d", agreeS, bothS, agreeP, bothP)
			}
			pairP := MeasurePairwiseCity(ctx, dbA, dbB, addrs)
			if pairP.Both != pairS.Both || pairP.Identical != pairS.Identical || pairP.Over40Km != pairS.Over40Km {
				t.Errorf("pairwise: serial %+v parallel %+v", pairS, pairP)
			}
			samePoints(t, "pairwise CDF", pairS.CDF, pairP.CDF)
		})
	}
}

// TestRunBlocks checks the block engine's contract: every index in
// [0, n) is processed exactly once, block bounds match the block index,
// and the serial path visits blocks in order.
func TestRunBlocks(t *testing.T) {
	oldBlock := blockSize
	blockSize = 64
	t.Cleanup(func() { blockSize = oldBlock })

	for _, tc := range []struct{ n, workers int }{
		{0, 1}, {0, 4}, {1, 1}, {63, 2}, {64, 3}, {65, 7},
		{1000, 1}, {1000, 4}, {4096, 8}, {100, 100},
	} {
		var mu sync.Mutex
		seen := make([]int, tc.n)
		var serialOrder []int
		runBlocks(tc.n, tc.workers, func(wi, bi, lo, hi int) {
			if lo != bi*blockSize || hi != min(lo+blockSize, tc.n) || lo >= hi {
				t.Errorf("runBlocks(%d,%d): block %d has bounds [%d,%d)", tc.n, tc.workers, bi, lo, hi)
			}
			mu.Lock()
			for i := lo; i < hi; i++ {
				seen[i]++
			}
			if tc.workers == 1 {
				serialOrder = append(serialOrder, bi)
			}
			mu.Unlock()
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("runBlocks(%d,%d): index %d processed %d times", tc.n, tc.workers, i, c)
			}
		}
		for i := 1; i < len(serialOrder); i++ {
			if serialOrder[i] != serialOrder[i-1]+1 {
				t.Fatalf("serial path visited blocks out of order: %v", serialOrder)
			}
		}
		if want := numBlocks(tc.n); tc.workers == 1 && len(serialOrder) != want {
			t.Fatalf("runBlocks(%d,1): %d blocks visited, want %d", tc.n, len(serialOrder), want)
		}
	}
}

func TestWorkersFor(t *testing.T) {
	SetParallelism(8)
	defer SetParallelism(0)
	if w := workersFor(10); w != 1 {
		t.Errorf("small input got %d workers", w)
	}
	if w := workersFor(serialCutoff); w != 8 {
		t.Errorf("large input got %d workers, want 8", w)
	}
	SetParallelism(1)
	if w := workersFor(1 << 20); w != 1 {
		t.Errorf("parallelism=1 got %d workers", w)
	}
}
