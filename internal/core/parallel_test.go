package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/groundtruth"
	"routergeo/internal/ipx"
	"routergeo/internal/stats"
)

// forceParallel drops the serial cutoff and pins the worker count so
// even tiny inputs exercise the chunked path, restoring both on cleanup.
func forceParallel(t *testing.T, workers int) {
	t.Helper()
	oldCutoff := serialCutoff
	serialCutoff = 1
	SetParallelism(workers)
	t.Cleanup(func() {
		serialCutoff = oldCutoff
		SetParallelism(0)
	})
}

// synthDB builds a deterministic database: /24s across 10.0.0.0/8 cycle
// through city, country-only, and missing records, with coordinates
// drifting so distances vary.
func synthDB(t testing.TB, name string, seed int64) *geodb.DB {
	b := geodb.NewBuilder(name)
	rng := rand.New(rand.NewSource(seed))
	countries := []string{"US", "DE", "FR", "BR", "JP"}
	for i := 0; i < 700; i++ {
		p := ipx.Prefix{Base: ipx.Addr(10<<24 | i<<8), Bits: 24}
		switch i % 3 {
		case 0:
			cc := countries[rng.Intn(len(countries))]
			coord := geo.Coordinate{Lat: -60 + rng.Float64()*120, Lon: -170 + rng.Float64()*340}
			b.AddPrefix(0, p, geodb.Record{
				Country: cc, City: fmt.Sprintf("city-%d", i), Coord: coord,
				Resolution: geodb.ResolutionCity,
			})
		case 1:
			b.AddPrefix(0, p, geodb.Record{
				Country:    countries[rng.Intn(len(countries))],
				Resolution: geodb.ResolutionCountry,
			})
		}
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// synthInputs returns a deterministic address sweep and target list over
// the synthetic databases' address space, misses included.
func synthInputs(n int) ([]ipx.Addr, []Target) {
	rng := rand.New(rand.NewSource(42))
	addrs := make([]ipx.Addr, n)
	targets := make([]Target, n)
	countries := []string{"US", "DE", "FR", "BR", "JP"}
	rirs := []geo.RIR{geo.ARIN, geo.RIPENCC, geo.APNIC, geo.LACNIC, geo.AFRINIC}
	methods := []groundtruth.Method{groundtruth.DNS, groundtruth.RTT}
	for i := range addrs {
		a := ipx.Addr(10<<24 | rng.Intn(900)<<8 | rng.Intn(256))
		addrs[i] = a
		targets[i] = Target{
			Addr:    a,
			Truth:   geo.Coordinate{Lat: -60 + rng.Float64()*120, Lon: -170 + rng.Float64()*340},
			Country: countries[rng.Intn(len(countries))],
			RIR:     rirs[rng.Intn(len(rirs))],
			Method:  methods[rng.Intn(len(methods))],
		}
	}
	return addrs, targets
}

func sameAccuracy(t *testing.T, label string, want, got Accuracy) {
	t.Helper()
	if want.Total != got.Total || want.CountryAnswered != got.CountryAnswered ||
		want.CountryCorrect != got.CountryCorrect || want.CityAnswered != got.CityAnswered ||
		want.Within40Km != got.Within40Km {
		t.Errorf("%s: counters diverge: serial %+v parallel %+v", label, want, got)
	}
	samePoints(t, label, want.ErrorCDF, got.ErrorCDF)
}

func samePoints(t *testing.T, label string, want, got *stats.ECDF) {
	t.Helper()
	ws, gs := want.Points(), got.Points()
	if len(ws) != len(gs) {
		t.Fatalf("%s: CDF has %d samples serial, %d parallel", label, len(ws), len(gs))
	}
	for i := range ws {
		if ws[i] != gs[i] {
			t.Fatalf("%s: CDF point %d: serial %v parallel %v", label, i, ws[i], gs[i])
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	ctx := context.Background()
	dbA := synthDB(t, "a", 1)
	dbB := synthDB(t, "b", 2)
	dbC := synthDB(t, "c", 3)
	providers := []geodb.Provider{dbA, dbB, dbC}
	addrs, targets := synthInputs(5000)

	// Serial oracle first.
	SetParallelism(1)
	covS := MeasureCoverage(ctx, dbA, addrs)
	accS := MeasureAccuracy(ctx, dbA, targets)
	byRIRS := AccuracyByRIR(ctx, dbA, targets)
	byCCS := AccuracyByCountry(ctx, dbA, targets)
	byMS := AccuracyByMethod(ctx, dbA, targets)
	agreeS, bothS := CountryAgreement(ctx, dbA, dbB, addrs)
	allS, totalS := CountryAgreementAll(ctx, providers, addrs)
	pairS := MeasurePairwiseCity(ctx, dbA, dbB, addrs)
	cityS := CityAnsweredInAll(ctx, providers, addrs)
	sharedS, wrongS := SharedIncorrect(providers, targets)

	for _, workers := range []int{2, 3, 7} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			forceParallel(t, workers)

			if covP := MeasureCoverage(ctx, dbA, addrs); covP != covS {
				t.Errorf("coverage: serial %+v parallel %+v", covS, covP)
			}
			sameAccuracy(t, "accuracy", accS, MeasureAccuracy(ctx, dbA, targets))

			byRIRP := AccuracyByRIR(ctx, dbA, targets)
			if len(byRIRP) != len(byRIRS) {
				t.Fatalf("byRIR sizes: %d vs %d", len(byRIRS), len(byRIRP))
			}
			for k, want := range byRIRS {
				sameAccuracy(t, "byRIR["+k.String()+"]", want, byRIRP[k])
			}
			byCCP := AccuracyByCountry(ctx, dbA, targets)
			if len(byCCP) != len(byCCS) {
				t.Fatalf("byCountry sizes: %d vs %d", len(byCCS), len(byCCP))
			}
			for k, want := range byCCS {
				sameAccuracy(t, "byCountry["+k+"]", want, byCCP[k])
			}
			byMP := AccuracyByMethod(ctx, dbA, targets)
			for k, want := range byMS {
				sameAccuracy(t, "byMethod", want, byMP[k])
			}

			if agreeP, bothP := CountryAgreement(ctx, dbA, dbB, addrs); agreeP != agreeS || bothP != bothS {
				t.Errorf("agreement: serial %d/%d parallel %d/%d", agreeS, bothS, agreeP, bothP)
			}
			if allP, totalP := CountryAgreementAll(ctx, providers, addrs); allP != allS || totalP != totalS {
				t.Errorf("agreement-all: serial %d/%d parallel %d/%d", allS, totalS, allP, totalP)
			}

			pairP := MeasurePairwiseCity(ctx, dbA, dbB, addrs)
			if pairP.Both != pairS.Both || pairP.Identical != pairS.Identical || pairP.Over40Km != pairS.Over40Km {
				t.Errorf("pairwise: serial %+v parallel %+v", pairS, pairP)
			}
			samePoints(t, "pairwise CDF", pairS.CDF, pairP.CDF)

			cityP := CityAnsweredInAll(ctx, providers, addrs)
			if len(cityP) != len(cityS) {
				t.Fatalf("city-in-all: %d vs %d survivors", len(cityS), len(cityP))
			}
			for i := range cityS {
				if cityP[i] != cityS[i] {
					t.Fatalf("city-in-all order diverges at %d: %v vs %v", i, cityS[i], cityP[i])
				}
			}

			sharedP, wrongP := SharedIncorrect(providers, targets)
			if sharedP != sharedS {
				t.Errorf("shared-incorrect: serial %d parallel %d", sharedS, sharedP)
			}
			for i := range wrongS {
				if wrongP[i] != wrongS[i] {
					t.Errorf("wrongPerDB[%d]: serial %d parallel %d", i, wrongS[i], wrongP[i])
				}
			}
		})
	}
}

func TestChunkBounds(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 1}, {1, 1}, {5, 2}, {10, 3}, {8192, 7}, {100, 100},
	} {
		bounds := chunkBounds(tc.n, tc.workers)
		if len(bounds) != tc.workers {
			t.Fatalf("chunkBounds(%d,%d) yields %d chunks", tc.n, tc.workers, len(bounds))
		}
		prev, minSz, maxSz := 0, tc.n, 0
		for _, b := range bounds {
			if b[0] != prev {
				t.Fatalf("chunkBounds(%d,%d): gap before %v", tc.n, tc.workers, b)
			}
			prev = b[1]
			if sz := b[1] - b[0]; sz < minSz {
				minSz = sz
			} else if sz > maxSz {
				maxSz = sz
			}
		}
		if prev != tc.n {
			t.Fatalf("chunkBounds(%d,%d) ends at %d", tc.n, tc.workers, prev)
		}
		if tc.n >= tc.workers && maxSz-minSz > 1 {
			t.Errorf("chunkBounds(%d,%d): uneven chunks (%d..%d)", tc.n, tc.workers, minSz, maxSz)
		}
	}
}

func TestWorkersFor(t *testing.T) {
	SetParallelism(8)
	defer SetParallelism(0)
	if w := workersFor(10); w != 1 {
		t.Errorf("small input got %d workers", w)
	}
	if w := workersFor(serialCutoff); w != 8 {
		t.Errorf("large input got %d workers, want 8", w)
	}
	SetParallelism(1)
	if w := workersFor(1 << 20); w != 1 {
		t.Errorf("parallelism=1 got %d workers", w)
	}
}
