package core

import (
	"routergeo/internal/gazetteer"
	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

// CityCoordCheck is the §4 sanity check result: are a database's city
// coordinates really city-level?
type CityCoordCheck struct {
	// Cities is the number of distinct (country, city) pairs checked.
	Cities int
	// Within40Km of them sit within the city range of the gazetteer's
	// coordinates for the same (country, city); Unmatched were not in the
	// gazetteer at all.
	Within40Km int
	Unmatched  int
}

// ValidateCityCoords compares every distinct city in a database against
// the gazetteer (the paper's GeoNames check: >99% within 40 km).
func ValidateCityCoords(db *geodb.DB, gaz *gazetteer.Gazetteer) CityCoordCheck {
	type cityKey struct{ cc, name string }
	seen := map[cityKey]geo.Coordinate{}
	db.Walk(func(_ ipx.Range, rec geodb.Record) bool {
		if rec.HasCity() {
			k := cityKey{rec.Country, rec.City}
			if _, dup := seen[k]; !dup {
				seen[k] = rec.Coord
			}
		}
		return true
	})
	var out CityCoordCheck
	for k, coord := range seen {
		out.Cities++
		ref, ok := gaz.City(k.cc, k.name)
		if !ok {
			out.Unmatched++
			continue
		}
		if coord.WithinKm(ref.Coord, CityRangeKm) {
			out.Within40Km++
		}
	}
	return out
}

// CrossDBCityCoords compares the coordinates two databases assign to the
// same (country, city) — the paper's second §4 check, which justifies
// treating any two coordinates within 40 km as the same city.
func CrossDBCityCoords(a, b *geodb.DB) (within40, common int) {
	type cityKey struct{ cc, name string }
	coordsA := map[cityKey]geo.Coordinate{}
	a.Walk(func(_ ipx.Range, rec geodb.Record) bool {
		if rec.HasCity() {
			k := cityKey{rec.Country, rec.City}
			if _, dup := coordsA[k]; !dup {
				coordsA[k] = rec.Coord
			}
		}
		return true
	})
	seenB := map[cityKey]bool{}
	b.Walk(func(_ ipx.Range, rec geodb.Record) bool {
		if !rec.HasCity() {
			return true
		}
		k := cityKey{rec.Country, rec.City}
		if seenB[k] {
			return true
		}
		seenB[k] = true
		if ca, ok := coordsA[k]; ok {
			common++
			if ca.WithinKm(rec.Coord, CityRangeKm) {
				within40++
			}
		}
		return true
	})
	return within40, common
}
