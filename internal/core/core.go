// Package core implements the paper's contribution: the evaluation
// methodology for router geolocation in databases (§4). Given any set of
// geodb.Providers it measures
//
//   - coverage: the fraction of addresses with country- and city-level
//     answers;
//   - consistency: pairwise country agreement and pairwise city-level
//     coordinate-distance CDFs with the 40 km city-range threshold;
//   - coordinate validity: database city coordinates against the
//     gazetteer, and the same city across databases;
//   - accuracy against ground truth: overall, per RIR, per country and
//     per ground-truth method, as geolocation-error CDFs and
//     within-40 km rates;
//   - the ARIN case study (§5.2.3) and the §6 recommendation synthesis.
//
// Nothing in this package knows about the simulator; it consumes opaque
// Providers and ground-truth targets, so it would work unchanged against
// real database snapshots.
package core

import (
	"context"
	"sort"
	"sync"

	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/groundtruth"
	"routergeo/internal/ipx"
	"routergeo/internal/netsim"
	"routergeo/internal/obs"
	"routergeo/internal/stats"
)

// CityRangeKm is the paper's city-range threshold: two locations within
// 40 km are considered the same city (§4).
const CityRangeKm = 40.0

// Target is one ground-truth address to score against.
type Target struct {
	Addr    ipx.Addr
	Truth   geo.Coordinate
	Country string // ISO2 of the true location
	RIR     geo.RIR
	Method  groundtruth.Method
}

// TargetsFromDataset converts a ground-truth dataset into evaluation
// targets, resolving each address's RIR through whois as the paper does
// with Team Cymru.
func TargetsFromDataset(w *netsim.World, ds *groundtruth.Dataset) []Target {
	out := make([]Target, 0, ds.Len())
	for _, e := range ds.Entries {
		out = append(out, Target{
			Addr:    e.Addr,
			Truth:   e.Coord,
			Country: e.Country,
			RIR:     w.Reg.RIROf(e.Addr),
			Method:  e.Method,
		})
	}
	return out
}

// Coverage counts how many of a set of addresses a database answers at
// each resolution (§5.1, §5.2.1).
type Coverage struct {
	Total   int
	Country int
	City    int
}

// CountryPct and CityPct return coverage fractions.
func (c Coverage) CountryPct() float64 { return stats.Fraction(c.Country, c.Total) }
func (c Coverage) CityPct() float64    { return stats.Fraction(c.City, c.Total) }

// Prefetcher is the optional bulk-resolution hook a Provider may
// implement (httpapi.RemoteProvider does). Evaluation entry points hand
// the full address list over before the first Lookup, letting a remote
// provider pipeline batched requests instead of paying one round trip
// per address. A prefetch failure is non-fatal: per-address Lookup
// remains the fallback, and transport-aware providers report outages
// through their own error surface.
type Prefetcher interface {
	Prefetch(ctx context.Context, addrs []ipx.Addr) error
}

// prefetch offers addrs to db if it supports bulk resolution, bounded by
// the evaluation's ctx so cancellation stops the batched requests too.
func prefetch(ctx context.Context, db geodb.Provider, addrs []ipx.Addr) {
	if p, ok := db.(Prefetcher); ok {
		_ = p.Prefetch(ctx, addrs)
	}
}

// prefetchTargets is prefetch over a target list's addresses.
func prefetchTargets(ctx context.Context, db geodb.Provider, targets []Target) {
	if _, ok := db.(Prefetcher); !ok {
		return
	}
	addrs := make([]ipx.Addr, len(targets))
	for i, t := range targets {
		addrs[i] = t.Addr
	}
	prefetch(ctx, db, addrs)
}

// MeasureCoverage queries every address once. Large inputs are scored by
// the parallel engine; the result is identical either way.
func MeasureCoverage(ctx context.Context, db geodb.Provider, addrs []ipx.Addr) Coverage {
	ctx, sp := obs.Start(ctx, "core.coverage")
	defer sp.End()
	sp.SetAttr("db", db.Name())
	sp.SetItems(int64(len(addrs)))
	workers := workersFor(len(addrs))
	sp.SetAttr("workers", workers)
	prog := obs.NewProgress("core.coverage "+db.Name(), int64(len(addrs)))
	defer prog.Finish()
	parts := make([]Coverage, workers)
	runChunks(len(addrs), workers, func(ci, lo, hi int) {
		chunk := addrs[lo:hi]
		prefetch(ctx, db, chunk)
		parts[ci] = coverageChunk(geodb.LookupFunc(db), chunk, prog)
	})
	var c Coverage
	for _, p := range parts {
		c.Total += p.Total
		c.Country += p.Country
		c.City += p.City
	}
	return c
}

// coverageChunk is the serial scoring loop over one chunk.
func coverageChunk(lookup func(ipx.Addr) (geodb.Record, bool), addrs []ipx.Addr, prog *obs.Progress) Coverage {
	c := Coverage{Total: len(addrs)}
	for _, a := range addrs {
		rec, ok := lookup(a)
		prog.Add(1)
		if !ok {
			continue
		}
		if rec.HasCountry() {
			c.Country++
		}
		if rec.HasCity() {
			c.City++
		}
	}
	return c
}

// Accuracy scores one database against ground truth (§5.2).
type Accuracy struct {
	// Total is the number of targets evaluated.
	Total int
	// CountryAnswered/CountryCorrect cover country-level accuracy.
	CountryAnswered int
	CountryCorrect  int
	// CityAnswered targets had city-level answers; Within40Km of them fall
	// inside the city range; ErrorCDF holds their geolocation errors
	// (Figures 2 and 5).
	CityAnswered int
	Within40Km   int
	ErrorCDF     *stats.ECDF
}

// CountryCoverage, CountryAccuracy, CityCoverage, CityAccuracy return the
// paper's headline fractions.
func (a Accuracy) CountryCoverage() float64 { return stats.Fraction(a.CountryAnswered, a.Total) }
func (a Accuracy) CountryAccuracy() float64 {
	return stats.Fraction(a.CountryCorrect, a.CountryAnswered)
}
func (a Accuracy) CityCoverage() float64 { return stats.Fraction(a.CityAnswered, a.Total) }
func (a Accuracy) CityAccuracy() float64 { return stats.Fraction(a.Within40Km, a.CityAnswered) }

// MeasureAccuracy scores db on every target. Large inputs fan out over
// the parallel engine, each worker filling a private partial whose raw
// error samples are k-way merged back in chunk order.
func MeasureAccuracy(ctx context.Context, db geodb.Provider, targets []Target) Accuracy {
	ctx, sp := obs.Start(ctx, "core.accuracy")
	defer sp.End()
	sp.SetAttr("db", db.Name())
	sp.SetItems(int64(len(targets)))
	workers := workersFor(len(targets))
	sp.SetAttr("workers", workers)
	parts := make([]Accuracy, workers)
	runChunks(len(targets), workers, func(ci, lo, hi int) {
		chunk := targets[lo:hi]
		prefetchTargets(ctx, db, chunk)
		parts[ci] = accuracyChunk(geodb.LookupFunc(db), chunk)
	})
	return mergeAccuracy(parts)
}

// accuracyChunk is the serial scoring loop over one chunk.
func accuracyChunk(lookup func(ipx.Addr) (geodb.Record, bool), targets []Target) Accuracy {
	acc := Accuracy{Total: len(targets), ErrorCDF: &stats.ECDF{}}
	for _, t := range targets {
		rec, ok := lookup(t.Addr)
		if !ok {
			continue
		}
		if rec.HasCountry() {
			acc.CountryAnswered++
			if rec.Country == t.Country {
				acc.CountryCorrect++
			}
		}
		if rec.HasCity() {
			acc.CityAnswered++
			d := rec.Coord.DistanceKm(t.Truth)
			acc.ErrorCDF.Add(d)
			if d <= CityRangeKm {
				acc.Within40Km++
			}
		}
	}
	return acc
}

// mergeAccuracy folds per-worker partials, in chunk order, into one
// Accuracy. Counter sums are order-free; the per-worker CDFs are merged
// without re-sorting.
func mergeAccuracy(parts []Accuracy) Accuracy {
	var out Accuracy
	cdfs := make([]*stats.ECDF, len(parts))
	for i, p := range parts {
		out.Total += p.Total
		out.CountryAnswered += p.CountryAnswered
		out.CountryCorrect += p.CountryCorrect
		out.CityAnswered += p.CityAnswered
		out.Within40Km += p.Within40Km
		cdfs[i] = p.ErrorCDF
	}
	out.ErrorCDF = stats.Merge(cdfs...)
	return out
}

// AccuracyByRIR breaks targets down by registry (Figures 3 and 5).
func AccuracyByRIR(ctx context.Context, db geodb.Provider, targets []Target) map[geo.RIR]Accuracy {
	grouped := map[geo.RIR][]Target{}
	for _, t := range targets {
		grouped[t.RIR] = append(grouped[t.RIR], t)
	}
	return accuracyByGroup(ctx, db, grouped)
}

// AccuracyByCountry breaks targets down by true country (Figure 4).
func AccuracyByCountry(ctx context.Context, db geodb.Provider, targets []Target) map[string]Accuracy {
	grouped := map[string][]Target{}
	for _, t := range targets {
		grouped[t.Country] = append(grouped[t.Country], t)
	}
	return accuracyByGroup(ctx, db, grouped)
}

// AccuracyByMethod splits targets by ground-truth method (§5.2.4).
func AccuracyByMethod(ctx context.Context, db geodb.Provider, targets []Target) map[groundtruth.Method]Accuracy {
	grouped := map[groundtruth.Method][]Target{}
	for _, t := range targets {
		grouped[t.Method] = append(grouped[t.Method], t)
	}
	return accuracyByGroup(ctx, db, grouped)
}

// accuracyByGroup measures independent target groups, concurrently when
// the engine is parallel: many small groups (per-country slices) spread
// across workers, while a dominant group still fans out inside its own
// MeasureAccuracy call. Group results are independent, so the map is
// identical to the serial loop's.
func accuracyByGroup[K comparable](ctx context.Context, db geodb.Provider, grouped map[K][]Target) map[K]Accuracy {
	out := make(map[K]Accuracy, len(grouped))
	workers := Parallelism()
	if workers <= 1 || len(grouped) <= 1 {
		for k, ts := range grouped {
			out[k] = MeasureAccuracy(ctx, db, ts)
		}
		return out
	}
	keys := make([]K, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	results := make([]Accuracy, len(keys))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	wg.Add(len(keys))
	for i, k := range keys {
		go func(i int, ts []Target) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = MeasureAccuracy(ctx, db, ts)
		}(i, grouped[k])
	}
	wg.Wait()
	for i, k := range keys {
		out[k] = results[i]
	}
	return out
}

// TopCountries returns the ISO2 codes of the n countries with the most
// targets, ordered by descending count (Figure 4's x-axis).
func TopCountries(targets []Target, n int) []string {
	counts := map[string]int{}
	for _, t := range targets {
		counts[t.Country]++
	}
	out := make([]string, 0, len(counts))
	for cc := range counts {
		out = append(out, cc)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if counts[a] != counts[b] {
			return counts[a] > counts[b]
		}
		return a < b
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// SharedIncorrect counts, for a reference country-level mistake set, how
// many targets a group of databases all geolocate to the *same wrong
// country* — the paper's observation that IP2Location and both MaxMinds
// share roughly two thirds of their wrong answers (Figure 4 discussion).
func SharedIncorrect(dbs []geodb.Provider, targets []Target) (shared int, wrongPerDB []int) {
	workers := workersFor(len(targets))
	type partial struct {
		shared int
		wrong  []int
	}
	parts := make([]partial, workers)
	runChunks(len(targets), workers, func(ci, lo, hi int) {
		p := partial{wrong: make([]int, len(dbs))}
		lookups := make([]func(ipx.Addr) (geodb.Record, bool), len(dbs))
		for i, db := range dbs {
			lookups[i] = geodb.LookupFunc(db)
		}
		answers := make([]string, len(dbs))
		for _, t := range targets[lo:hi] {
			allSameWrong := true
			for i, lookup := range lookups {
				rec, ok := lookup(t.Addr)
				if !ok || !rec.HasCountry() {
					allSameWrong = false
					answers[i] = ""
					continue
				}
				answers[i] = rec.Country
				if rec.Country != t.Country {
					p.wrong[i]++
				}
			}
			if !allSameWrong {
				continue
			}
			first := answers[0]
			if first == t.Country {
				continue
			}
			same := true
			for _, a := range answers[1:] {
				if a != first {
					same = false
					break
				}
			}
			if same {
				p.shared++
			}
		}
		parts[ci] = p
	})
	wrongPerDB = make([]int, len(dbs))
	for _, p := range parts {
		shared += p.shared
		for i, n := range p.wrong {
			wrongPerDB[i] += n
		}
	}
	return shared, wrongPerDB
}
