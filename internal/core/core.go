// Package core implements the paper's contribution: the evaluation
// methodology for router geolocation in databases (§4). Given any set of
// geodb.Providers it measures
//
//   - coverage: the fraction of addresses with country- and city-level
//     answers;
//   - consistency: pairwise country agreement and pairwise city-level
//     coordinate-distance CDFs with the 40 km city-range threshold;
//   - coordinate validity: database city coordinates against the
//     gazetteer, and the same city across databases;
//   - accuracy against ground truth: overall, per RIR, per country and
//     per ground-truth method, as geolocation-error CDFs and
//     within-40 km rates;
//   - the ARIN case study (§5.2.3) and the §6 recommendation synthesis.
//
// Nothing in this package knows about the simulator; it consumes opaque
// Providers and ground-truth targets, so it would work unchanged against
// real database snapshots.
package core

import (
	"context"
	"sort"
	"sync"

	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/groundtruth"
	"routergeo/internal/ipx"
	"routergeo/internal/netsim"
	"routergeo/internal/obs"
	"routergeo/internal/stats"
)

// CityRangeKm is the paper's city-range threshold: two locations within
// 40 km are considered the same city (§4).
const CityRangeKm = 40.0

// Target is one ground-truth address to score against.
type Target struct {
	Addr  ipx.Addr
	Truth geo.Coordinate
	// TruthVec caches Truth's unit-sphere vector for the accuracy
	// sweep's distance kernel (geo.ArcKm). TargetsFromDataset fills it;
	// the zero value means "not cached" and the sweep computes it on
	// the fly, so hand-built targets score identically.
	TruthVec geo.Vec3
	Country  string // ISO2 of the true location
	RIR      geo.RIR
	Method   groundtruth.Method
}

// TargetsFromDataset converts a ground-truth dataset into evaluation
// targets, resolving each address's RIR through whois as the paper does
// with Team Cymru.
func TargetsFromDataset(w *netsim.World, ds *groundtruth.Dataset) []Target {
	out := make([]Target, 0, ds.Len())
	for _, e := range ds.Entries {
		out = append(out, Target{
			Addr:     e.Addr,
			Truth:    e.Coord,
			TruthVec: e.Coord.Vec(),
			Country:  e.Country,
			RIR:      w.Reg.RIROf(e.Addr),
			Method:   e.Method,
		})
	}
	return out
}

// Coverage counts how many of a set of addresses a database answers at
// each resolution (§5.1, §5.2.1).
type Coverage struct {
	Total   int
	Country int
	City    int
}

// CountryPct and CityPct return coverage fractions.
func (c Coverage) CountryPct() float64 { return stats.Fraction(c.Country, c.Total) }
func (c Coverage) CityPct() float64    { return stats.Fraction(c.City, c.Total) }

// Prefetcher is the optional bulk-resolution hook a Provider may
// implement (httpapi.RemoteProvider does). Evaluation entry points hand
// the full address list over before the first Lookup, letting a remote
// provider pipeline batched requests instead of paying one round trip
// per address. A prefetch failure is non-fatal: per-address Lookup
// remains the fallback, and transport-aware providers report outages
// through their own error surface.
type Prefetcher interface {
	Prefetch(ctx context.Context, addrs []ipx.Addr) error
}

// prefetch offers addrs to db if it supports bulk resolution, bounded by
// the evaluation's ctx so cancellation stops the batched requests too.
func prefetch(ctx context.Context, db geodb.Provider, addrs []ipx.Addr) {
	if p, ok := db.(Prefetcher); ok {
		_ = p.Prefetch(ctx, addrs)
	}
}

// prefetchTargets is prefetch over a target list's addresses.
func prefetchTargets(ctx context.Context, db geodb.Provider, targets []Target) {
	if _, ok := db.(Prefetcher); !ok {
		return
	}
	addrs := make([]ipx.Addr, len(targets))
	for i, t := range targets {
		addrs[i] = t.Addr
	}
	prefetch(ctx, db, addrs)
}

// MeasureCoverage queries every address once. Large inputs are scored by
// the parallel engine; the result is identical either way.
func MeasureCoverage(ctx context.Context, db geodb.Provider, addrs []ipx.Addr) Coverage {
	ctx, sp := obs.Start(ctx, "core.coverage")
	defer sp.End()
	sp.SetAttr("db", db.Name())
	sp.SetItems(int64(len(addrs)))
	workers := workersFor(len(addrs))
	sp.SetAttr("workers", workers)
	prog := obs.NewProgress("core.coverage "+db.Name(), int64(len(addrs)))
	defer prog.Finish()
	// One up-front prefetch for the whole sweep: a remote provider
	// pipelines the full batch through its own worker pool instead of
	// being serialized by per-chunk calls inside the workers.
	prefetch(ctx, db, addrs)
	parts := make([]slot[Coverage], workers)
	res := make([]*resolver, workers)
	runBlocks(len(addrs), workers, func(wi, _, lo, hi int) {
		r := res[wi]
		if r == nil {
			r = resolverPool.Get().(*resolver)
			r.bind(db)
			res[wi] = r
		}
		block := addrs[lo:hi]
		r.resolve(block)
		c := Coverage{Total: len(block)}
		for k := range block {
			rec, ok := r.rec(k)
			if !ok {
				continue
			}
			if rec.HasCountry() {
				c.Country++
			}
			if rec.HasCity() {
				c.City++
			}
		}
		prog.Add(int64(len(block)))
		p := &parts[wi].v
		p.Total += c.Total
		p.Country += c.Country
		p.City += c.City
	})
	putResolvers(res)
	var c Coverage
	for i := range parts {
		c.Total += parts[i].v.Total
		c.Country += parts[i].v.Country
		c.City += parts[i].v.City
	}
	return c
}

// Accuracy scores one database against ground truth (§5.2).
type Accuracy struct {
	// Total is the number of targets evaluated.
	Total int
	// CountryAnswered/CountryCorrect cover country-level accuracy.
	CountryAnswered int
	CountryCorrect  int
	// CityAnswered targets had city-level answers; Within40Km of them fall
	// inside the city range; ErrorCDF holds their geolocation errors
	// (Figures 2 and 5).
	CityAnswered int
	Within40Km   int
	ErrorCDF     *stats.ECDF
}

// CountryCoverage, CountryAccuracy, CityCoverage, CityAccuracy return the
// paper's headline fractions.
func (a Accuracy) CountryCoverage() float64 { return stats.Fraction(a.CountryAnswered, a.Total) }
func (a Accuracy) CountryAccuracy() float64 {
	return stats.Fraction(a.CountryCorrect, a.CountryAnswered)
}
func (a Accuracy) CityCoverage() float64 { return stats.Fraction(a.CityAnswered, a.Total) }
func (a Accuracy) CityAccuracy() float64 { return stats.Fraction(a.Within40Km, a.CityAnswered) }

// MeasureAccuracy scores db on every target. Large inputs fan out over
// the parallel engine, each worker appending raw error samples into a
// pooled buffer; the buffers concatenate into the result CDF, whose
// sorted points are identical whatever the accumulation order.
func MeasureAccuracy(ctx context.Context, db geodb.Provider, targets []Target) Accuracy {
	ctx, sp := obs.Start(ctx, "core.accuracy")
	defer sp.End()
	sp.SetAttr("db", db.Name())
	sp.SetItems(int64(len(targets)))
	workers := workersFor(len(targets))
	sp.SetAttr("workers", workers)
	prefetchTargets(ctx, db, targets)
	parts := make([]slot[Accuracy], workers)
	res := make([]*resolver, workers)
	bufs := make([]*[]float64, workers)
	runBlocks(len(targets), workers, func(wi, _, lo, hi int) {
		r := res[wi]
		if r == nil {
			r = resolverPool.Get().(*resolver)
			r.bind(db)
			res[wi] = r
			sb := samplePool.Get().(*[]float64)
			*sb = (*sb)[:0]
			bufs[wi] = sb
		}
		block := targets[lo:hi]
		r.resolveTargets(block)
		var acc Accuracy
		acc.Total = len(block)
		s := *bufs[wi]
		for k := range block {
			t := &block[k]
			rec, ok := r.rec(k)
			if !ok {
				continue
			}
			if rec.HasCountry() {
				acc.CountryAnswered++
				if rec.Country == t.Country {
					acc.CountryCorrect++
				}
			}
			if rec.HasCity() {
				acc.CityAnswered++
				tv := t.TruthVec
				if tv.IsZero() {
					tv = t.Truth.Vec()
				}
				d := geo.ArcKm(r.vec(k, rec), tv)
				s = append(s, d)
				if d <= CityRangeKm {
					acc.Within40Km++
				}
			}
		}
		*bufs[wi] = s
		p := &parts[wi].v
		p.Total += acc.Total
		p.CountryAnswered += acc.CountryAnswered
		p.CountryCorrect += acc.CountryCorrect
		p.CityAnswered += acc.CityAnswered
		p.Within40Km += acc.Within40Km
	})
	putResolvers(res)
	var out Accuracy
	for i := range parts {
		p := &parts[i].v
		out.Total += p.Total
		out.CountryAnswered += p.CountryAnswered
		out.CountryCorrect += p.CountryCorrect
		out.CityAnswered += p.CityAnswered
		out.Within40Km += p.Within40Km
	}
	out.ErrorCDF = stats.FromSamples(mergeSamples(bufs))
	return out
}

// AccuracyByRIR breaks targets down by registry (Figures 3 and 5).
func AccuracyByRIR(ctx context.Context, db geodb.Provider, targets []Target) map[geo.RIR]Accuracy {
	grouped := map[geo.RIR][]Target{}
	for _, t := range targets {
		grouped[t.RIR] = append(grouped[t.RIR], t)
	}
	return accuracyByGroup(ctx, db, grouped)
}

// AccuracyByCountry breaks targets down by true country (Figure 4).
func AccuracyByCountry(ctx context.Context, db geodb.Provider, targets []Target) map[string]Accuracy {
	grouped := map[string][]Target{}
	for _, t := range targets {
		grouped[t.Country] = append(grouped[t.Country], t)
	}
	return accuracyByGroup(ctx, db, grouped)
}

// AccuracyByMethod splits targets by ground-truth method (§5.2.4).
func AccuracyByMethod(ctx context.Context, db geodb.Provider, targets []Target) map[groundtruth.Method]Accuracy {
	grouped := map[groundtruth.Method][]Target{}
	for _, t := range targets {
		grouped[t.Method] = append(grouped[t.Method], t)
	}
	return accuracyByGroup(ctx, db, grouped)
}

// accuracyByGroup measures independent target groups, concurrently when
// the engine is parallel: many small groups (per-country slices) spread
// across workers, while a dominant group still fans out inside its own
// MeasureAccuracy call. Group results are independent, so the map is
// identical to the serial loop's.
func accuracyByGroup[K comparable](ctx context.Context, db geodb.Provider, grouped map[K][]Target) map[K]Accuracy {
	out := make(map[K]Accuracy, len(grouped))
	workers := Parallelism()
	if workers <= 1 || len(grouped) <= 1 {
		for k, ts := range grouped {
			out[k] = MeasureAccuracy(ctx, db, ts)
		}
		return out
	}
	keys := make([]K, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	results := make([]Accuracy, len(keys))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	wg.Add(len(keys))
	for i, k := range keys {
		go func(i int, ts []Target) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = MeasureAccuracy(ctx, db, ts)
		}(i, grouped[k])
	}
	wg.Wait()
	for i, k := range keys {
		out[k] = results[i]
	}
	return out
}

// TopCountries returns the ISO2 codes of the n countries with the most
// targets, ordered by descending count (Figure 4's x-axis).
func TopCountries(targets []Target, n int) []string {
	counts := map[string]int{}
	for _, t := range targets {
		counts[t.Country]++
	}
	out := make([]string, 0, len(counts))
	for cc := range counts {
		out = append(out, cc)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if counts[a] != counts[b] {
			return counts[a] > counts[b]
		}
		return a < b
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// SharedIncorrect counts, for a reference country-level mistake set, how
// many targets a group of databases all geolocate to the *same wrong
// country* — the paper's observation that IP2Location and both MaxMinds
// share roughly two thirds of their wrong answers (Figure 4 discussion).
func SharedIncorrect(dbs []geodb.Provider, targets []Target) (shared int, wrongPerDB []int) {
	workers := workersFor(len(targets))
	type partial struct {
		shared int
		wrong  []int
	}
	parts := make([]slot[partial], workers)
	res := make([][]*resolver, workers)
	runBlocks(len(targets), workers, func(wi, _, lo, hi int) {
		rs := res[wi]
		if rs == nil {
			rs = bindResolvers(dbs)
			res[wi] = rs
			parts[wi].v.wrong = make([]int, len(dbs))
		}
		block := targets[lo:hi]
		for _, r := range rs {
			r.resolveTargets(block)
		}
		p := &parts[wi].v
		answers := make([]string, len(dbs))
		for k := range block {
			t := &block[k]
			allSameWrong := true
			for i, r := range rs {
				rec, ok := r.rec(k)
				if !ok || !rec.HasCountry() {
					allSameWrong = false
					answers[i] = ""
					continue
				}
				answers[i] = rec.Country
				if rec.Country != t.Country {
					p.wrong[i]++
				}
			}
			if !allSameWrong {
				continue
			}
			first := answers[0]
			if first == t.Country {
				continue
			}
			same := true
			for _, a := range answers[1:] {
				if a != first {
					same = false
					break
				}
			}
			if same {
				p.shared++
			}
		}
	})
	for _, rs := range res {
		putResolvers(rs)
	}
	wrongPerDB = make([]int, len(dbs))
	for i := range parts {
		p := &parts[i].v
		shared += p.shared
		for i, n := range p.wrong {
			wrongPerDB[i] += n
		}
	}
	return shared, wrongPerDB
}

// bindResolvers mints one worker's resolver per provider. The pool Gets
// stay inline per the poolescape rule's pairing with putResolvers at
// sweep end.
func bindResolvers(dbs []geodb.Provider) []*resolver {
	rs := make([]*resolver, len(dbs))
	for i, db := range dbs {
		r := resolverPool.Get().(*resolver)
		r.bind(db)
		rs[i] = r
	}
	return rs
}
