package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The parallel measurement engine. Every measurement in this package is
// embarrassingly parallel — no cross-address state — so each one runs as
// a chunked map-reduce: the input slice is split into one contiguous
// chunk per worker, each worker accumulates into a private partial
// (counters plus raw ECDF samples) using its own per-goroutine lookup
// finder, and the partials are merged in chunk order. Merging in chunk
// order makes the result identical to the serial loop's, whatever the
// goroutine schedule; the single-worker case degenerates to the plain
// serial loop with no goroutines spawned, and doubles as the oracle the
// equality tests compare against.

// parallelismSetting holds the configured worker count; <= 0 means "use
// GOMAXPROCS".
var parallelismSetting atomic.Int64

// SetParallelism fixes the engine's worker count. n <= 0 restores the
// default of GOMAXPROCS; n == 1 forces the serial path everywhere. The
// cmd binaries wire their -parallelism flag here.
func SetParallelism(n int) { parallelismSetting.Store(int64(n)) }

// Parallelism returns the resolved worker count the engine will use for
// large inputs.
func Parallelism() int {
	if n := parallelismSetting.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// serialCutoff is the input size below which measurements take the
// serial fast path regardless of Parallelism: goroutine startup costs
// more than scanning a few thousand addresses. A variable so the
// equality tests can force tiny inputs through the parallel path.
var serialCutoff = 1 << 13

// workersFor resolves how many workers an input of n items gets.
func workersFor(n int) int {
	w := Parallelism()
	if w <= 1 || n < serialCutoff {
		return 1
	}
	if w > n {
		w = n
	}
	return w
}

// chunkBounds splits [0, n) into workers contiguous chunks whose sizes
// differ by at most one, in index order.
func chunkBounds(n, workers int) [][2]int {
	out := make([][2]int, 0, workers)
	lo := 0
	for i := 0; i < workers; i++ {
		hi := lo + (n-lo)/(workers-i)
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// runChunks executes process once per chunk, on the caller's goroutine
// when workers == 1 and on one goroutine per chunk otherwise, and waits
// for all of them. process receives the chunk index and its [lo, hi)
// bounds; callers store partials by chunk index, which keeps every merge
// order-deterministic.
func runChunks(n, workers int, process func(ci, lo, hi int)) {
	if workers <= 1 {
		process(0, 0, n)
		return
	}
	bounds := chunkBounds(n, workers)
	var wg sync.WaitGroup
	wg.Add(len(bounds))
	for ci, b := range bounds {
		go func(ci, lo, hi int) {
			defer wg.Done()
			process(ci, lo, hi)
		}(ci, b[0], b[1])
	}
	wg.Wait()
}
