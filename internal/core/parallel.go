package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The parallel measurement engine. Every measurement in this package is
// embarrassingly parallel — no cross-address state — so each one runs
// as a block map-reduce: the input is cut into fixed-size blocks, the
// workers claim blocks off a shared atomic cursor (work stealing: a
// worker stalled on a page miss or a slow remote batch cannot idle the
// others, unlike the one-big-chunk-per-worker split this replaced), and
// per-worker partials merge after the last block. Two properties keep
// the result byte-identical to the serial loop's, whatever the
// goroutine schedule: counter sums and ECDF sample multisets are
// accumulation-order-free, and the one order-sensitive output
// (CityAnsweredInAll's survivor list) is stored per block and
// concatenated in block order. The single-worker case visits the same
// blocks in index order on the caller's goroutine with no goroutines
// spawned, and doubles as the oracle the equality tests compare
// against.
//
// Blocks are also the batch-lookup grain: each worker resolves a whole
// block through geodb.BatchIndexer (sort-and-walk, see ipx.FindBatch)
// before scoring it, and per-block obs.Progress updates replace the
// per-address ones that used to dominate sweep profiles.

// parallelismSetting holds the configured worker count; <= 0 means "use
// GOMAXPROCS".
var parallelismSetting atomic.Int64

// SetParallelism fixes the engine's worker count. n <= 0 restores the
// default of GOMAXPROCS; n == 1 forces the serial path everywhere. The
// cmd binaries wire their -parallelism flag here.
func SetParallelism(n int) { parallelismSetting.Store(int64(n)) }

// Parallelism returns the resolved worker count the engine will use for
// large inputs.
func Parallelism() int {
	if n := parallelismSetting.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// serialCutoff is the input size below which measurements take the
// serial fast path regardless of Parallelism: goroutine startup costs
// more than scanning a few thousand addresses. A variable so the
// equality tests can force tiny inputs through the parallel path.
var serialCutoff = 1 << 13

// blockSize is the work-stealing grain and the batch-lookup unit: big
// enough that claiming a block (one atomic add) is noise, small enough
// that a sweep splits into many more blocks than workers, so uneven
// per-block cost rebalances. A variable so tests can force multi-block
// schedules on tiny inputs.
var blockSize = 8192

// workersFor resolves how many workers an input of n items gets.
func workersFor(n int) int {
	w := Parallelism()
	if w <= 1 || n < serialCutoff {
		return 1
	}
	if w > n {
		w = n
	}
	return w
}

// numBlocks returns how many blocks [0, n) splits into.
func numBlocks(n int) int { return (n + blockSize - 1) / blockSize }

// slot pads a per-worker partial to its own cache line, so workers
// flushing block-local tallies into parts[wi] never false-share with
// their neighbours.
type slot[T any] struct {
	v T
	_ [64]byte
}

// runBlocks executes process once per block of [0, n) and waits for all
// of them. workers == 1 visits the blocks in index order on the
// caller's goroutine; otherwise workers goroutines claim blocks off an
// atomic cursor. process receives the claiming worker's index wi (for
// per-worker state: resolvers, sample buffers), the block index bi (for
// order-sensitive merges) and the block's [lo, hi) bounds.
//
//geolint:hotpath
func runBlocks(n, workers int, process func(wi, bi, lo, hi int)) {
	nb := numBlocks(n)
	if workers <= 1 {
		for bi := 0; bi < nb; bi++ {
			lo := bi * blockSize
			process(0, bi, lo, min(lo+blockSize, n))
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for wi := 0; wi < workers; wi++ {
		//lint:ignore hotalloc one closure per WORKER per sweep, not per block — the allocation amortizes over the thousands of blocks each worker claims off the cursor
		go func(wi int) {
			defer wg.Done()
			for {
				bi := int(cursor.Add(1)) - 1
				if bi >= nb {
					return
				}
				lo := bi * blockSize
				process(wi, bi, lo, min(lo+blockSize, n))
			}
		}(wi)
	}
	wg.Wait()
}
