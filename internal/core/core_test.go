package core

import (
	"context"
	"strings"
	"testing"

	"routergeo/internal/gazetteer"
	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/groundtruth"
	"routergeo/internal/ipx"
)

// fakeDB builds a small database from (prefix, record) pairs.
func fakeDB(t *testing.T, name string, add func(b *geodb.Builder)) *geodb.DB {
	t.Helper()
	b := geodb.NewBuilder(name)
	add(b)
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func cityRec(cc, city string, coord geo.Coordinate) geodb.Record {
	return geodb.Record{Country: cc, City: city, Coord: coord, Resolution: geodb.ResolutionCity}
}

func countryRec(cc string) geodb.Record {
	return geodb.Record{Country: cc, Resolution: geodb.ResolutionCountry}
}

var (
	dallas = geo.Coordinate{Lat: 32.7767, Lon: -96.797}
	miami  = geo.Coordinate{Lat: 25.7617, Lon: -80.1918}
	paris  = geo.Coordinate{Lat: 48.8566, Lon: 2.3522}
)

func addrsRange(base string, n int) []ipx.Addr {
	start := ipx.MustParseAddr(base)
	out := make([]ipx.Addr, n)
	for i := range out {
		out[i] = start + ipx.Addr(i)
	}
	return out
}

func TestMeasureCoverage(t *testing.T) {
	db := fakeDB(t, "d", func(b *geodb.Builder) {
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/24"), cityRec("US", "Dallas", dallas))
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.1.0/24"), countryRec("US"))
	})
	addrs := []ipx.Addr{
		ipx.MustParseAddr("10.0.0.5"), // city
		ipx.MustParseAddr("10.0.1.5"), // country only
		ipx.MustParseAddr("10.0.2.5"), // miss
	}
	c := MeasureCoverage(context.Background(), db, addrs)
	if c.Total != 3 || c.Country != 2 || c.City != 1 {
		t.Errorf("coverage = %+v", c)
	}
	if c.CountryPct() != 2.0/3 || c.CityPct() != 1.0/3 {
		t.Errorf("pcts = %v, %v", c.CountryPct(), c.CityPct())
	}
}

func TestMeasureAccuracy(t *testing.T) {
	db := fakeDB(t, "d", func(b *geodb.Builder) {
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/24"), cityRec("US", "Dallas", dallas))
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.1.0/24"), countryRec("FR"))
	})
	targets := []Target{
		{Addr: ipx.MustParseAddr("10.0.0.1"), Truth: dallas, Country: "US"}, // right city
		{Addr: ipx.MustParseAddr("10.0.0.2"), Truth: miami, Country: "US"},  // right country, wrong city
		{Addr: ipx.MustParseAddr("10.0.1.1"), Truth: paris, Country: "FR"},  // country-only, right
		{Addr: ipx.MustParseAddr("10.0.9.1"), Truth: paris, Country: "FR"},  // miss
	}
	a := MeasureAccuracy(context.Background(), db, targets)
	if a.Total != 4 || a.CountryAnswered != 3 || a.CountryCorrect != 3 {
		t.Errorf("country stats = %+v", a)
	}
	if a.CityAnswered != 2 || a.Within40Km != 1 {
		t.Errorf("city stats = %+v", a)
	}
	if a.CityAccuracy() != 0.5 {
		t.Errorf("CityAccuracy = %v", a.CityAccuracy())
	}
	if a.ErrorCDF.N() != 2 {
		t.Errorf("CDF samples = %d", a.ErrorCDF.N())
	}
}

func TestAccuracyBreakdowns(t *testing.T) {
	db := fakeDB(t, "d", func(b *geodb.Builder) {
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/16"), countryRec("US"))
	})
	targets := []Target{
		{Addr: ipx.MustParseAddr("10.0.0.1"), Truth: dallas, Country: "US", RIR: geo.ARIN, Method: groundtruth.DNS},
		{Addr: ipx.MustParseAddr("10.0.0.2"), Truth: paris, Country: "FR", RIR: geo.RIPENCC, Method: groundtruth.RTT},
		{Addr: ipx.MustParseAddr("10.0.0.3"), Truth: miami, Country: "US", RIR: geo.ARIN, Method: groundtruth.RTT},
	}
	byRIR := AccuracyByRIR(context.Background(), db, targets)
	if byRIR[geo.ARIN].Total != 2 || byRIR[geo.RIPENCC].Total != 1 {
		t.Errorf("byRIR = %+v", byRIR)
	}
	if byRIR[geo.RIPENCC].CountryCorrect != 0 {
		t.Error("FR target should be wrong in a US-only database")
	}
	byCC := AccuracyByCountry(context.Background(), db, targets)
	if byCC["US"].Total != 2 || byCC["FR"].Total != 1 {
		t.Errorf("byCountry = %+v", byCC)
	}
	byM := AccuracyByMethod(context.Background(), db, targets)
	if byM[groundtruth.DNS].Total != 1 || byM[groundtruth.RTT].Total != 2 {
		t.Errorf("byMethod = %+v", byM)
	}
}

func TestTopCountries(t *testing.T) {
	targets := []Target{
		{Country: "US"}, {Country: "US"}, {Country: "US"},
		{Country: "DE"}, {Country: "DE"},
		{Country: "FR"},
	}
	got := TopCountries(targets, 2)
	if len(got) != 2 || got[0] != "US" || got[1] != "DE" {
		t.Errorf("TopCountries = %v", got)
	}
	all := TopCountries(targets, 10)
	if len(all) != 3 || all[2] != "FR" {
		t.Errorf("TopCountries(10) = %v", all)
	}
}

func TestCountryAgreement(t *testing.T) {
	a := fakeDB(t, "a", func(b *geodb.Builder) {
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/24"), countryRec("US"))
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.1.0/24"), countryRec("DE"))
	})
	bdb := fakeDB(t, "b", func(b *geodb.Builder) {
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/24"), countryRec("US"))
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.1.0/24"), countryRec("FR"))
	})
	addrs := []ipx.Addr{
		ipx.MustParseAddr("10.0.0.1"),
		ipx.MustParseAddr("10.0.1.1"),
		ipx.MustParseAddr("10.0.2.1"), // miss in both
	}
	agree, both := CountryAgreement(context.Background(), a, bdb, addrs)
	if agree != 1 || both != 2 {
		t.Errorf("agreement = %d/%d", agree, both)
	}
	all, total := CountryAgreementAll(context.Background(), []geodb.Provider{a, bdb}, addrs)
	if all != 1 || total != 3 {
		t.Errorf("all-agreement = %d/%d", all, total)
	}
}

func TestMeasurePairwiseCity(t *testing.T) {
	a := fakeDB(t, "a", func(b *geodb.Builder) {
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/24"), cityRec("US", "Dallas", dallas))
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.1.0/24"), cityRec("US", "Miami", miami))
	})
	bdb := fakeDB(t, "b", func(b *geodb.Builder) {
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/24"), cityRec("US", "Dallas", dallas)) // identical
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.1.0/24"), cityRec("FR", "Paris", paris))   // far
	})
	addrs := []ipx.Addr{ipx.MustParseAddr("10.0.0.1"), ipx.MustParseAddr("10.0.1.1")}
	p := MeasurePairwiseCity(context.Background(), a, bdb, addrs)
	if p.Both != 2 || p.Identical != 1 || p.Over40Km != 1 {
		t.Errorf("pairwise = %+v", p)
	}
	if p.DisagreeOver40Pct() != 0.5 {
		t.Errorf("DisagreeOver40Pct = %v", p.DisagreeOver40Pct())
	}
	if p.CDF.N() != 1 {
		t.Errorf("CDF holds %d samples; identical pairs must be excluded", p.CDF.N())
	}

	filtered := CityAnsweredInAll(context.Background(), []geodb.Provider{a, bdb}, append(addrs, ipx.MustParseAddr("10.0.2.1")))
	if len(filtered) != 2 {
		t.Errorf("CityAnsweredInAll = %v", filtered)
	}
}

func TestValidateCityCoords(t *testing.T) {
	gaz := gazetteer.New()
	dal, _ := gaz.City("US", "Dallas")
	good := dal.Coord.Offset(5, 90)
	bad := dal.Coord.Offset(500, 90)
	db := fakeDB(t, "d", func(b *geodb.Builder) {
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/24"), cityRec("US", "Dallas", good))
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.1.0/24"), cityRec("US", "Springfield", bad)) // not in gazetteer
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.2.0/24"), cityRec("US", "Miami", bad))       // way off
	})
	chk := ValidateCityCoords(db, gaz)
	if chk.Cities != 3 || chk.Within40Km != 1 || chk.Unmatched != 1 {
		t.Errorf("check = %+v", chk)
	}
}

func TestCrossDBCityCoords(t *testing.T) {
	gaz := gazetteer.New()
	dal, _ := gaz.City("US", "Dallas")
	a := fakeDB(t, "a", func(b *geodb.Builder) {
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/24"), cityRec("US", "Dallas", dal.Coord.Offset(3, 0)))
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.1.0/24"), cityRec("US", "Miami", miami))
	})
	bdb := fakeDB(t, "b", func(b *geodb.Builder) {
		b.AddPrefix(0, ipx.MustParsePrefix("20.0.0.0/24"), cityRec("US", "Dallas", dal.Coord.Offset(6, 180)))
		b.AddPrefix(0, ipx.MustParsePrefix("20.0.1.0/24"), cityRec("US", "Miami", miami.Offset(300, 90)))
	})
	within, common := CrossDBCityCoords(a, bdb)
	if common != 2 || within != 1 {
		t.Errorf("cross-db = %d/%d", within, common)
	}
}

func TestSharedIncorrect(t *testing.T) {
	mk := func(name, cc1 string) *geodb.DB {
		return fakeDB(t, name, func(b *geodb.Builder) {
			b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/24"), countryRec(cc1))
		})
	}
	dbs := []geodb.Provider{mk("a", "US"), mk("b", "US"), mk("c", "US")}
	targets := []Target{
		{Addr: ipx.MustParseAddr("10.0.0.1"), Country: "FR"}, // all wrong, same answer
		{Addr: ipx.MustParseAddr("10.0.0.2"), Country: "US"}, // all right
	}
	shared, wrong := SharedIncorrect(dbs, targets)
	if shared != 1 {
		t.Errorf("shared = %d", shared)
	}
	for i, n := range wrong {
		if n != 1 {
			t.Errorf("wrong[%d] = %d", i, n)
		}
	}
}

func TestRunARINCaseStudy(t *testing.T) {
	// A database that sends one non-US ARIN target to the US with a city,
	// and answers two US targets (one wrong at block level).
	db := fakeDB(t, "d", func(b *geodb.Builder) {
		hq := cityRec("US", "Dallas", dallas)
		hq.BlockBits = 20
		b.AddPrefix(0, ipx.MustParsePrefix("10.0.0.0/20"), hq)
	})
	targets := []Target{
		{Addr: ipx.MustParseAddr("10.0.0.1"), Truth: paris, Country: "FR", RIR: geo.ARIN},  // non-US, placed in US
		{Addr: ipx.MustParseAddr("10.0.1.1"), Truth: dallas, Country: "US", RIR: geo.ARIN}, // right
		{Addr: ipx.MustParseAddr("10.0.2.1"), Truth: miami, Country: "US", RIR: geo.ARIN},  // wrong, block level
		{Addr: ipx.MustParseAddr("20.0.0.1"), Truth: paris, Country: "FR", RIR: geo.RIPENCC},
	}
	s := RunARINCaseStudy(db, targets)
	if s.ARINTargets != 3 || s.NonUS != 1 || s.NonUSPlacedInUS != 1 || s.NonUSPlacedInUSCity != 1 {
		t.Errorf("case study = %+v", s)
	}
	if s.NonUSCityOver1000Km != 1 {
		t.Errorf("expected the Paris target to be >1000 km off: %+v", s)
	}
	if s.USARINCityAnswered != 2 || s.USARINCityWrong != 1 || s.WrongBlockLevel != 1 {
		t.Errorf("US stats = %+v", s)
	}
	if s.WrongBlockShare() != 1 || s.CorrectBlockShare() != 1 {
		t.Errorf("block shares = %v, %v", s.WrongBlockShare(), s.CorrectBlockShare())
	}
	if s.ARINShare != 0.75 {
		t.Errorf("ARINShare = %v", s.ARINShare)
	}
}

func TestRecommendations(t *testing.T) {
	mkAcc := func(total, ctryAns, ctryOK, cityAns, within int) Accuracy {
		return Accuracy{Total: total, CountryAnswered: ctryAns, CountryCorrect: ctryOK,
			CityAnswered: cityAns, Within40Km: within}
	}
	results := map[string]Accuracy{
		"NetAcuity":        mkAcc(1000, 1000, 894, 996, 720),
		"MaxMind-Paid":     mkAcc(1000, 954, 750, 413, 270),
		"MaxMind-GeoLite":  mkAcc(1000, 954, 745, 304, 180),
		"IP2Location-Lite": mkAcc(1000, 1000, 775, 998, 310),
	}
	perRIR := map[string]map[geo.RIR]Accuracy{
		"NetAcuity":        {geo.ARIN: mkAcc(640, 640, 566, 636, 420)},
		"MaxMind-Paid":     {geo.ARIN: mkAcc(640, 610, 490, 260, 110)},
		"MaxMind-GeoLite":  {geo.ARIN: mkAcc(640, 610, 480, 200, 80)},
		"IP2Location-Lite": {geo.ARIN: mkAcc(640, 640, 492, 638, 180)},
	}
	recs := Recommend(results, perRIR)
	if len(recs) < 4 {
		t.Fatalf("only %d recommendations", len(recs))
	}
	joined := ""
	for _, r := range recs {
		if r.Rank == 0 || r.Text == "" {
			t.Errorf("malformed recommendation %+v", r)
		}
		joined += r.Subject + ": " + r.Text + "\n"
	}
	if !strings.Contains(joined, "NetAcuity") {
		t.Error("the best database (NetAcuity) should be recommended")
	}
	if !strings.Contains(joined, "IP2Location") {
		t.Error("the least accurate full-coverage database should be warned about")
	}
	if !strings.Contains(joined, "ARIN") {
		t.Error("ARIN city-level warning missing")
	}
	if !strings.Contains(joined, "commercial MaxMind") {
		t.Error("paid-over-free MaxMind recommendation missing")
	}
}

func TestRecommendationsEmptyInput(t *testing.T) {
	recs := Recommend(map[string]Accuracy{}, nil)
	// With nothing measured there is nothing to advise except possibly the
	// "best" of nothing; just make sure it does not panic and stays small.
	if len(recs) > 1 {
		t.Errorf("unexpected recommendations from empty input: %+v", recs)
	}
}
