package core

// Benchmarks for the measurement engine's three hot sweeps: coverage,
// accuracy and consistency. Each runs serial (the oracle path) and
// parallel (the engine at GOMAXPROCS) over the same synthetic inputs,
// so the pairwise delta is the engine's speedup on this machine:
//
//	go test -bench 'Coverage|Accuracy|Consistency' -benchmem ./internal/core/
//
// make bench tees the module-wide run into BENCH_core.json; make
// bench-compare diffs a fresh run against that baseline.

import (
	"context"
	"io"
	"log/slog"
	"sync"
	"testing"

	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

const benchAddrs = 200_000

var (
	benchOnce    sync.Once
	benchDBA     *geodb.DB
	benchDBB     *geodb.DB
	benchAddrSet []ipx.Addr
	benchTargets []Target
)

func benchInputs(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		// Progress reporters log through slog.Default; silence it so the
		// bench output (teed into BENCH_core.json) stays machine-parseable.
		slog.SetDefault(slog.New(slog.NewTextHandler(io.Discard, nil)))
		benchDBA = synthDB(b, "bench-a", 11)
		benchDBB = synthDB(b, "bench-b", 12)
		benchAddrSet, benchTargets = synthInputs(benchAddrs)
	})
}

// benchModes runs fn once per engine mode with parallelism pinned.
func benchModes(b *testing.B, fn func(b *testing.B)) {
	benchInputs(b)
	for _, mode := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // GOMAXPROCS
	} {
		b.Run(mode.name, func(b *testing.B) {
			SetParallelism(mode.workers)
			defer SetParallelism(0)
			b.ReportAllocs()
			b.ResetTimer()
			fn(b)
		})
	}
}

func BenchmarkCoverage(b *testing.B) {
	benchModes(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MeasureCoverage(context.Background(), benchDBA, benchAddrSet)
		}
	})
}

func BenchmarkAccuracy(b *testing.B) {
	benchModes(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MeasureAccuracy(context.Background(), benchDBA, benchTargets)
		}
	})
}

// BenchmarkConsistency measures the pairwise sweeps behind §5.1 and
// Figure 1: country agreement plus the city-distance comparison.
func BenchmarkConsistency(b *testing.B) {
	benchModes(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			CountryAgreement(context.Background(), benchDBA, benchDBB, benchAddrSet)
			MeasurePairwiseCity(context.Background(), benchDBA, benchDBB, benchAddrSet)
		}
	})
}

// BenchmarkConsistencyAllDBs measures the every-database agreement scan.
func BenchmarkConsistencyAllDBs(b *testing.B) {
	benchInputs(b)
	dbs := []geodb.Provider{benchDBA, benchDBB}
	benchModes(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			CountryAgreementAll(context.Background(), dbs, benchAddrSet)
		}
	})
}
