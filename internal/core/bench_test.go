package core

// Benchmarks for the measurement engine's three hot sweeps: coverage,
// accuracy and consistency. Each runs serial (the oracle path) and
// parallel (the engine at GOMAXPROCS) over the same synthetic inputs,
// so the pairwise delta is the engine's speedup on this machine:
//
//	go test -bench 'Coverage|Accuracy|Consistency' -benchmem ./internal/core/
//
// make bench tees the module-wide run into BENCH_core.json; make
// bench-compare diffs a fresh run against that baseline.

import (
	"context"
	"io"
	"log/slog"
	"sync"
	"testing"

	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

const benchAddrs = 200_000

var (
	benchOnce    sync.Once
	benchDBA     *geodb.DB
	benchDBB     *geodb.DB
	benchAddrSet []ipx.Addr
	benchTargets []Target
)

func benchInputs(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		// Progress reporters log through slog.Default; silence it so the
		// bench output (teed into BENCH_core.json) stays machine-parseable.
		slog.SetDefault(slog.New(slog.NewTextHandler(io.Discard, nil)))
		benchDBA = synthDB(b, "bench-a", 11)
		benchDBB = synthDB(b, "bench-b", 12)
		benchAddrSet, benchTargets = synthInputs(benchAddrs)
	})
}

// benchModes runs one sweep per iteration under every engine mode with
// parallelism pinned: serial (the oracle path), parallel (GOMAXPROCS —
// the bench-compare baseline) and the workers=1/2/4/8 scaling sweep.
// Every variant reports allocations and an items/s throughput metric
// over the benchAddrs-sized input; a warm-up sweep before the timer
// starts keeps allocs/op independent of the iteration count (the
// engine's pools amortize their warm-up, so without it a short -benchtime
// run would report inflated allocations and flake the CI alloc gate).
// On a machine with fewer cores than a variant's worker count the extra
// goroutines time-slice one CPU; the sweep then measures scheduling
// overhead rather than speedup.
func benchModes(b *testing.B, items int, sweep func()) {
	benchInputs(b)
	for _, mode := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // GOMAXPROCS
		{"workers=1", 1},
		{"workers=2", 2},
		{"workers=4", 4},
		{"workers=8", 8},
	} {
		b.Run(mode.name, func(b *testing.B) {
			SetParallelism(mode.workers)
			defer SetParallelism(0)
			sweep() // warm the pools under this mode's worker count
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sweep()
			}
			b.StopTimer()
			b.ReportMetric(float64(items)*float64(b.N)/b.Elapsed().Seconds(), "items/s")
		})
	}
}

func BenchmarkCoverage(b *testing.B) {
	benchModes(b, benchAddrs, func() {
		MeasureCoverage(context.Background(), benchDBA, benchAddrSet)
	})
}

func BenchmarkAccuracy(b *testing.B) {
	benchModes(b, benchAddrs, func() {
		MeasureAccuracy(context.Background(), benchDBA, benchTargets)
	})
}

// BenchmarkConsistency measures the pairwise sweeps behind §5.1 and
// Figure 1: country agreement plus the city-distance comparison.
func BenchmarkConsistency(b *testing.B) {
	benchModes(b, benchAddrs, func() {
		CountryAgreement(context.Background(), benchDBA, benchDBB, benchAddrSet)
		MeasurePairwiseCity(context.Background(), benchDBA, benchDBB, benchAddrSet)
	})
}

// BenchmarkConsistencyAllDBs measures the every-database agreement scan.
func BenchmarkConsistencyAllDBs(b *testing.B) {
	benchInputs(b)
	dbs := []geodb.Provider{benchDBA, benchDBB}
	benchModes(b, benchAddrs, func() {
		CountryAgreementAll(context.Background(), dbs, benchAddrSet)
	})
}
