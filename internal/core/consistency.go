package core

import (
	"context"

	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
	"routergeo/internal/obs"
	"routergeo/internal/stats"
)

// CountryAgreement counts pairwise country-level agreement over the
// addresses both databases answer (§5.1).
func CountryAgreement(ctx context.Context, a, b geodb.Provider, addrs []ipx.Addr) (agree, both int) {
	_, sp := obs.Start(ctx, "core.country_agreement")
	defer sp.End()
	sp.SetAttr("db_a", a.Name())
	sp.SetAttr("db_b", b.Name())
	sp.SetItems(int64(len(addrs)))
	prog := obs.NewProgress("core.country_agreement "+a.Name()+"/"+b.Name(), int64(len(addrs)))
	defer prog.Finish()
	prefetch(a, addrs)
	prefetch(b, addrs)
	for _, addr := range addrs {
		ra, okA := a.Lookup(addr)
		rb, okB := b.Lookup(addr)
		prog.Add(1)
		if !okA || !okB || !ra.HasCountry() || !rb.HasCountry() {
			continue
		}
		both++
		if ra.Country == rb.Country {
			agree++
		}
	}
	return agree, both
}

// CountryAgreementAll counts addresses on which *every* database agrees at
// country level (the paper's 95.8% over 1.64M addresses).
func CountryAgreementAll(ctx context.Context, dbs []geodb.Provider, addrs []ipx.Addr) (agree, total int) {
	_, sp := obs.Start(ctx, "core.country_agreement_all")
	defer sp.End()
	sp.SetAttr("dbs", len(dbs))
	sp.SetItems(int64(len(addrs)))
	prog := obs.NewProgress("core.country_agreement_all", int64(len(addrs)))
	defer prog.Finish()
	total = len(addrs)
	for _, addr := range addrs {
		country := ""
		ok := true
		for _, db := range dbs {
			rec, found := db.Lookup(addr)
			if !found || !rec.HasCountry() {
				ok = false
				break
			}
			if country == "" {
				country = rec.Country
			} else if rec.Country != country {
				ok = false
				break
			}
		}
		prog.Add(1)
		if ok {
			agree++
		}
	}
	return agree, total
}

// PairwiseCity compares two databases' city-level coordinates over a set
// of addresses (Figure 1). Only addresses with city answers in *both*
// databases contribute. Identical coordinates are counted separately and
// excluded from the CDF, matching the figure's truncation of the 68%
// identical MaxMind pairs.
type PairwiseCity struct {
	Both      int
	Identical int
	Over40Km  int
	CDF       *stats.ECDF
}

// MeasurePairwiseCity computes the Figure 1 comparison for one pair.
func MeasurePairwiseCity(ctx context.Context, a, b geodb.Provider, addrs []ipx.Addr) PairwiseCity {
	_, sp := obs.Start(ctx, "core.pairwise_city")
	defer sp.End()
	sp.SetAttr("db_a", a.Name())
	sp.SetAttr("db_b", b.Name())
	sp.SetItems(int64(len(addrs)))
	prog := obs.NewProgress("core.pairwise_city "+a.Name()+"/"+b.Name(), int64(len(addrs)))
	defer prog.Finish()
	prefetch(a, addrs)
	prefetch(b, addrs)
	out := PairwiseCity{CDF: &stats.ECDF{}}
	for _, addr := range addrs {
		ra, okA := a.Lookup(addr)
		rb, okB := b.Lookup(addr)
		prog.Add(1)
		if !okA || !okB || !ra.HasCity() || !rb.HasCity() {
			continue
		}
		out.Both++
		if ra.Coord == rb.Coord {
			out.Identical++
			continue
		}
		d := ra.Coord.DistanceKm(rb.Coord)
		out.CDF.Add(d)
		if d > CityRangeKm {
			out.Over40Km++
		}
	}
	return out
}

// DisagreeOver40Pct returns the fraction of compared addresses the two
// databases place more than 40 km apart — the paper's headline "at least
// 29% city-level disagreements" metric.
func (p PairwiseCity) DisagreeOver40Pct() float64 {
	return stats.Fraction(p.Over40Km, p.Both)
}

// CityAnsweredInAll filters addrs to those with city-level coordinates in
// every database — the ~692K-address subset Figure 1 is computed over.
func CityAnsweredInAll(ctx context.Context, dbs []geodb.Provider, addrs []ipx.Addr) []ipx.Addr {
	_, sp := obs.Start(ctx, "core.city_answered_in_all")
	defer sp.End()
	sp.SetAttr("dbs", len(dbs))
	sp.SetItems(int64(len(addrs)))
	prog := obs.NewProgress("core.city_answered_in_all", int64(len(addrs)))
	defer prog.Finish()
	var out []ipx.Addr
	for _, addr := range addrs {
		all := true
		for _, db := range dbs {
			rec, ok := db.Lookup(addr)
			if !ok || !rec.HasCity() {
				all = false
				break
			}
		}
		prog.Add(1)
		if all {
			out = append(out, addr)
		}
	}
	return out
}
