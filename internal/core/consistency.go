package core

import (
	"context"

	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
	"routergeo/internal/obs"
	"routergeo/internal/stats"
)

// CountryAgreement counts pairwise country-level agreement over the
// addresses both databases answer (§5.1).
func CountryAgreement(ctx context.Context, a, b geodb.Provider, addrs []ipx.Addr) (agree, both int) {
	ctx, sp := obs.Start(ctx, "core.country_agreement")
	defer sp.End()
	sp.SetAttr("db_a", a.Name())
	sp.SetAttr("db_b", b.Name())
	sp.SetItems(int64(len(addrs)))
	workers := workersFor(len(addrs))
	sp.SetAttr("workers", workers)
	prog := obs.NewProgress("core.country_agreement "+a.Name()+"/"+b.Name(), int64(len(addrs)))
	defer prog.Finish()
	type partial struct{ agree, both int }
	parts := make([]partial, workers)
	runChunks(len(addrs), workers, func(ci, lo, hi int) {
		chunk := addrs[lo:hi]
		prefetch(ctx, a, chunk)
		prefetch(ctx, b, chunk)
		la, lb := geodb.LookupFunc(a), geodb.LookupFunc(b)
		var p partial
		for _, addr := range chunk {
			ra, okA := la(addr)
			rb, okB := lb(addr)
			prog.Add(1)
			if !okA || !okB || !ra.HasCountry() || !rb.HasCountry() {
				continue
			}
			p.both++
			if ra.Country == rb.Country {
				p.agree++
			}
		}
		parts[ci] = p
	})
	for _, p := range parts {
		agree += p.agree
		both += p.both
	}
	return agree, both
}

// CountryAgreementAll counts addresses on which *every* database agrees at
// country level (the paper's 95.8% over 1.64M addresses).
func CountryAgreementAll(ctx context.Context, dbs []geodb.Provider, addrs []ipx.Addr) (agree, total int) {
	_, sp := obs.Start(ctx, "core.country_agreement_all")
	defer sp.End()
	sp.SetAttr("dbs", len(dbs))
	sp.SetItems(int64(len(addrs)))
	workers := workersFor(len(addrs))
	sp.SetAttr("workers", workers)
	prog := obs.NewProgress("core.country_agreement_all", int64(len(addrs)))
	defer prog.Finish()
	total = len(addrs)
	parts := make([]int, workers)
	runChunks(len(addrs), workers, func(ci, lo, hi int) {
		lookups := make([]func(ipx.Addr) (geodb.Record, bool), len(dbs))
		for i, db := range dbs {
			lookups[i] = geodb.LookupFunc(db)
		}
		n := 0
		for _, addr := range addrs[lo:hi] {
			country := ""
			ok := true
			for _, lookup := range lookups {
				rec, found := lookup(addr)
				if !found || !rec.HasCountry() {
					ok = false
					break
				}
				if country == "" {
					country = rec.Country
				} else if rec.Country != country {
					ok = false
					break
				}
			}
			prog.Add(1)
			if ok {
				n++
			}
		}
		parts[ci] = n
	})
	for _, n := range parts {
		agree += n
	}
	return agree, total
}

// PairwiseCity compares two databases' city-level coordinates over a set
// of addresses (Figure 1). Only addresses with city answers in *both*
// databases contribute. Identical coordinates are counted separately and
// excluded from the CDF, matching the figure's truncation of the 68%
// identical MaxMind pairs.
type PairwiseCity struct {
	Both      int
	Identical int
	Over40Km  int
	CDF       *stats.ECDF
}

// MeasurePairwiseCity computes the Figure 1 comparison for one pair.
func MeasurePairwiseCity(ctx context.Context, a, b geodb.Provider, addrs []ipx.Addr) PairwiseCity {
	ctx, sp := obs.Start(ctx, "core.pairwise_city")
	defer sp.End()
	sp.SetAttr("db_a", a.Name())
	sp.SetAttr("db_b", b.Name())
	sp.SetItems(int64(len(addrs)))
	workers := workersFor(len(addrs))
	sp.SetAttr("workers", workers)
	prog := obs.NewProgress("core.pairwise_city "+a.Name()+"/"+b.Name(), int64(len(addrs)))
	defer prog.Finish()
	parts := make([]PairwiseCity, workers)
	runChunks(len(addrs), workers, func(ci, lo, hi int) {
		chunk := addrs[lo:hi]
		prefetch(ctx, a, chunk)
		prefetch(ctx, b, chunk)
		la, lb := geodb.LookupFunc(a), geodb.LookupFunc(b)
		p := PairwiseCity{CDF: &stats.ECDF{}}
		for _, addr := range chunk {
			ra, okA := la(addr)
			rb, okB := lb(addr)
			prog.Add(1)
			if !okA || !okB || !ra.HasCity() || !rb.HasCity() {
				continue
			}
			p.Both++
			if ra.Coord == rb.Coord {
				p.Identical++
				continue
			}
			d := ra.Coord.DistanceKm(rb.Coord)
			p.CDF.Add(d)
			if d > CityRangeKm {
				p.Over40Km++
			}
		}
		parts[ci] = p
	})
	var out PairwiseCity
	cdfs := make([]*stats.ECDF, len(parts))
	for i, p := range parts {
		out.Both += p.Both
		out.Identical += p.Identical
		out.Over40Km += p.Over40Km
		cdfs[i] = p.CDF
	}
	out.CDF = stats.Merge(cdfs...)
	return out
}

// DisagreeOver40Pct returns the fraction of compared addresses the two
// databases place more than 40 km apart — the paper's headline "at least
// 29% city-level disagreements" metric.
func (p PairwiseCity) DisagreeOver40Pct() float64 {
	return stats.Fraction(p.Over40Km, p.Both)
}

// CityAnsweredInAll filters addrs to those with city-level coordinates in
// every database — the ~692K-address subset Figure 1 is computed over.
// Per-chunk survivor lists concatenate in chunk order, so the output
// preserves input order exactly as the serial loop does.
func CityAnsweredInAll(ctx context.Context, dbs []geodb.Provider, addrs []ipx.Addr) []ipx.Addr {
	_, sp := obs.Start(ctx, "core.city_answered_in_all")
	defer sp.End()
	sp.SetAttr("dbs", len(dbs))
	sp.SetItems(int64(len(addrs)))
	workers := workersFor(len(addrs))
	sp.SetAttr("workers", workers)
	prog := obs.NewProgress("core.city_answered_in_all", int64(len(addrs)))
	defer prog.Finish()
	parts := make([][]ipx.Addr, workers)
	runChunks(len(addrs), workers, func(ci, lo, hi int) {
		lookups := make([]func(ipx.Addr) (geodb.Record, bool), len(dbs))
		for i, db := range dbs {
			lookups[i] = geodb.LookupFunc(db)
		}
		var keep []ipx.Addr
		for _, addr := range addrs[lo:hi] {
			all := true
			for _, lookup := range lookups {
				rec, ok := lookup(addr)
				if !ok || !rec.HasCity() {
					all = false
					break
				}
			}
			prog.Add(1)
			if all {
				keep = append(keep, addr)
			}
		}
		parts[ci] = keep
	})
	if workers == 1 {
		return parts[0]
	}
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]ipx.Addr, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
