package core

import (
	"context"

	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
	"routergeo/internal/obs"
	"routergeo/internal/stats"
)

// CountryAgreement counts pairwise country-level agreement over the
// addresses both databases answer (§5.1).
func CountryAgreement(ctx context.Context, a, b geodb.Provider, addrs []ipx.Addr) (agree, both int) {
	ctx, sp := obs.Start(ctx, "core.country_agreement")
	defer sp.End()
	sp.SetAttr("db_a", a.Name())
	sp.SetAttr("db_b", b.Name())
	sp.SetItems(int64(len(addrs)))
	workers := workersFor(len(addrs))
	sp.SetAttr("workers", workers)
	prog := obs.NewProgress("core.country_agreement "+a.Name()+"/"+b.Name(), int64(len(addrs)))
	defer prog.Finish()
	prefetch(ctx, a, addrs)
	prefetch(ctx, b, addrs)
	type partial struct{ agree, both int }
	parts := make([]slot[partial], workers)
	res := make([][]*resolver, workers)
	dbs := []geodb.Provider{a, b}
	runBlocks(len(addrs), workers, func(wi, _, lo, hi int) {
		rs := res[wi]
		if rs == nil {
			rs = bindResolvers(dbs)
			res[wi] = rs
		}
		block := addrs[lo:hi]
		rs[0].resolve(block)
		rs[1].resolve(block)
		var p partial
		for k := range block {
			ra, okA := rs[0].rec(k)
			rb, okB := rs[1].rec(k)
			if !okA || !okB || !ra.HasCountry() || !rb.HasCountry() {
				continue
			}
			p.both++
			if ra.Country == rb.Country {
				p.agree++
			}
		}
		prog.Add(int64(len(block)))
		parts[wi].v.agree += p.agree
		parts[wi].v.both += p.both
	})
	for _, rs := range res {
		putResolvers(rs)
	}
	for i := range parts {
		agree += parts[i].v.agree
		both += parts[i].v.both
	}
	return agree, both
}

// CountryAgreementAll counts addresses on which *every* database agrees at
// country level (the paper's 95.8% over 1.64M addresses).
func CountryAgreementAll(ctx context.Context, dbs []geodb.Provider, addrs []ipx.Addr) (agree, total int) {
	ctx, sp := obs.Start(ctx, "core.country_agreement_all")
	defer sp.End()
	sp.SetAttr("dbs", len(dbs))
	sp.SetItems(int64(len(addrs)))
	workers := workersFor(len(addrs))
	sp.SetAttr("workers", workers)
	prog := obs.NewProgress("core.country_agreement_all", int64(len(addrs)))
	defer prog.Finish()
	for _, db := range dbs {
		prefetch(ctx, db, addrs)
	}
	total = len(addrs)
	parts := make([]slot[int], workers)
	res := make([][]*resolver, workers)
	runBlocks(len(addrs), workers, func(wi, _, lo, hi int) {
		rs := res[wi]
		if rs == nil {
			rs = bindResolvers(dbs)
			res[wi] = rs
		}
		block := addrs[lo:hi]
		for _, r := range rs {
			r.resolve(block)
		}
		n := 0
		for k := range block {
			country := ""
			ok := true
			for _, r := range rs {
				rec, found := r.rec(k)
				if !found || !rec.HasCountry() {
					ok = false
					break
				}
				if country == "" {
					country = rec.Country
				} else if rec.Country != country {
					ok = false
					break
				}
			}
			if ok {
				n++
			}
		}
		prog.Add(int64(len(block)))
		parts[wi].v += n
	})
	for _, rs := range res {
		putResolvers(rs)
	}
	for i := range parts {
		agree += parts[i].v
	}
	return agree, total
}

// PairwiseCity compares two databases' city-level coordinates over a set
// of addresses (Figure 1). Only addresses with city answers in *both*
// databases contribute. Identical coordinates are counted separately and
// excluded from the CDF, matching the figure's truncation of the 68%
// identical MaxMind pairs.
type PairwiseCity struct {
	Both      int
	Identical int
	Over40Km  int
	CDF       *stats.ECDF
}

// MeasurePairwiseCity computes the Figure 1 comparison for one pair.
func MeasurePairwiseCity(ctx context.Context, a, b geodb.Provider, addrs []ipx.Addr) PairwiseCity {
	ctx, sp := obs.Start(ctx, "core.pairwise_city")
	defer sp.End()
	sp.SetAttr("db_a", a.Name())
	sp.SetAttr("db_b", b.Name())
	sp.SetItems(int64(len(addrs)))
	workers := workersFor(len(addrs))
	sp.SetAttr("workers", workers)
	prog := obs.NewProgress("core.pairwise_city "+a.Name()+"/"+b.Name(), int64(len(addrs)))
	defer prog.Finish()
	prefetch(ctx, a, addrs)
	prefetch(ctx, b, addrs)
	parts := make([]slot[PairwiseCity], workers)
	res := make([][]*resolver, workers)
	bufs := make([]*[]float64, workers)
	dbs := []geodb.Provider{a, b}
	runBlocks(len(addrs), workers, func(wi, _, lo, hi int) {
		rs := res[wi]
		if rs == nil {
			rs = bindResolvers(dbs)
			res[wi] = rs
			sb := samplePool.Get().(*[]float64)
			*sb = (*sb)[:0]
			bufs[wi] = sb
		}
		block := addrs[lo:hi]
		rs[0].resolve(block)
		rs[1].resolve(block)
		var p PairwiseCity
		s := *bufs[wi]
		for k := range block {
			ra, okA := rs[0].rec(k)
			rb, okB := rs[1].rec(k)
			if !okA || !okB || !ra.HasCity() || !rb.HasCity() {
				continue
			}
			p.Both++
			if ra.Coord == rb.Coord {
				p.Identical++
				continue
			}
			d := geo.ArcKm(rs[0].vec(k, ra), rs[1].vec(k, rb))
			s = append(s, d)
			if d > CityRangeKm {
				p.Over40Km++
			}
		}
		*bufs[wi] = s
		prog.Add(int64(len(block)))
		parts[wi].v.Both += p.Both
		parts[wi].v.Identical += p.Identical
		parts[wi].v.Over40Km += p.Over40Km
	})
	for _, rs := range res {
		putResolvers(rs)
	}
	var out PairwiseCity
	for i := range parts {
		out.Both += parts[i].v.Both
		out.Identical += parts[i].v.Identical
		out.Over40Km += parts[i].v.Over40Km
	}
	out.CDF = stats.FromSamples(mergeSamples(bufs))
	return out
}

// DisagreeOver40Pct returns the fraction of compared addresses the two
// databases place more than 40 km apart — the paper's headline "at least
// 29% city-level disagreements" metric.
func (p PairwiseCity) DisagreeOver40Pct() float64 {
	return stats.Fraction(p.Over40Km, p.Both)
}

// CityAnsweredInAll filters addrs to those with city-level coordinates in
// every database — the ~692K-address subset Figure 1 is computed over.
// Per-block survivor lists concatenate in block order, so the output
// preserves input order exactly as the serial loop does.
func CityAnsweredInAll(ctx context.Context, dbs []geodb.Provider, addrs []ipx.Addr) []ipx.Addr {
	ctx, sp := obs.Start(ctx, "core.city_answered_in_all")
	defer sp.End()
	sp.SetAttr("dbs", len(dbs))
	sp.SetItems(int64(len(addrs)))
	workers := workersFor(len(addrs))
	sp.SetAttr("workers", workers)
	prog := obs.NewProgress("core.city_answered_in_all", int64(len(addrs)))
	defer prog.Finish()
	for _, db := range dbs {
		prefetch(ctx, db, addrs)
	}
	parts := make([][]ipx.Addr, numBlocks(len(addrs)))
	res := make([][]*resolver, workers)
	runBlocks(len(addrs), workers, func(wi, bi, lo, hi int) {
		rs := res[wi]
		if rs == nil {
			rs = bindResolvers(dbs)
			res[wi] = rs
		}
		block := addrs[lo:hi]
		for _, r := range rs {
			r.resolve(block)
		}
		var keep []ipx.Addr
		for k := range block {
			all := true
			for _, r := range rs {
				rec, ok := r.rec(k)
				if !ok || !rec.HasCity() {
					all = false
					break
				}
			}
			if all {
				keep = append(keep, block[k])
			}
		}
		prog.Add(int64(len(block)))
		parts[bi] = keep
	})
	for _, rs := range res {
		putResolvers(rs)
	}
	if len(parts) == 1 {
		return parts[0]
	}
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]ipx.Addr, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
