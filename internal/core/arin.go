package core

import (
	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/stats"
)

// ARINCaseStudy reproduces §5.2.3's drill-down into why city-level
// accuracy collapses for ARIN addresses.
type ARINCaseStudy struct {
	// ARINTargets of the ground truth fall in ARIN space; ARINShare is
	// their fraction of the whole set (the paper's 64%).
	ARINTargets int
	ARINShare   float64

	// NonUS counts ARIN targets actually located outside the US;
	// NonUSPlacedInUS of them are geolocated to the US anyway (70% for
	// MaxMind-Paid). NonUSPlacedInUSWithCity of those carry city answers,
	// and NonUSCityOver1000Km of the city answers are >1000 km off.
	NonUS               int
	NonUSPlacedInUS     int
	NonUSPlacedInUSCity int
	NonUSCityOver1000Km int

	// USARINCityAnswered counts US-located ARIN targets with city answers;
	// USARINCityWrong of them miss the 40 km range (58.2% in the paper).
	// Of the wrong ones, WrongBlockLevel came from /24-or-coarser records
	// (~91%); of the correct ones, CorrectBlockLevel did (~78%).
	USARINCityAnswered int
	USARINCityWrong    int
	WrongBlockLevel    int
	CorrectBlockLevel  int
}

// WrongBlockShare and CorrectBlockShare return the block-level fractions.
func (s ARINCaseStudy) WrongBlockShare() float64 {
	return stats.Fraction(s.WrongBlockLevel, s.USARINCityWrong)
}
func (s ARINCaseStudy) CorrectBlockShare() float64 {
	return stats.Fraction(s.CorrectBlockLevel, s.USARINCityAnswered-s.USARINCityWrong)
}

// RunARINCaseStudy evaluates one database (the paper uses MaxMind-Paid).
func RunARINCaseStudy(db geodb.Provider, targets []Target) ARINCaseStudy {
	var s ARINCaseStudy
	for _, t := range targets {
		if t.RIR != geo.ARIN {
			continue
		}
		s.ARINTargets++
		rec, ok := db.Lookup(t.Addr)

		if t.Country != "US" {
			s.NonUS++
			if ok && rec.HasCountry() && rec.Country == "US" {
				s.NonUSPlacedInUS++
				if rec.HasCity() {
					s.NonUSPlacedInUSCity++
					if rec.Coord.DistanceKm(t.Truth) > 1000 {
						s.NonUSCityOver1000Km++
					}
				}
			}
			continue
		}

		// US-located ARIN targets with city answers.
		if ok && rec.HasCity() {
			s.USARINCityAnswered++
			block := rec.BlockLevel()
			if rec.Coord.DistanceKm(t.Truth) > CityRangeKm {
				s.USARINCityWrong++
				if block {
					s.WrongBlockLevel++
				}
			} else if block {
				s.CorrectBlockLevel++
			}
		}
	}
	if len(targets) > 0 {
		s.ARINShare = float64(s.ARINTargets) / float64(len(targets))
	}
	return s
}
