package core

import (
	"sync"

	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/ipx"
)

// resolver is one worker's lookup machinery for one provider: it
// resolves a whole block of addresses up front, then hands the scoring
// loop per-position record views. Local databases resolve through
// geodb.BatchIndexer — the sort-and-walk kernel plus an index into the
// shared record table, no per-address record copies — and everything
// else falls back to the provider's per-address lookup function.
// Resolvers are pooled: the buffers and the radix scratch survive
// across blocks, workers and measurements, so steady-state sweeps
// allocate nothing per block. Not safe for concurrent use; one
// resolver per (worker, provider).
type resolver struct {
	// batch path
	batch geodb.BatchIndexer
	recs  []geodb.Record
	vecs  []geo.Vec3 // cached unit vectors per record, nil when unavailable
	idxs  []int32
	sc    ipx.BatchScratch

	// fallback path
	lookup func(ipx.Addr) (geodb.Record, bool)
	recbuf []geodb.Record
	okbuf  []bool

	// addrbuf extracts target addresses for resolveTargets.
	addrbuf []ipx.Addr
}

// resolverPool recycles resolvers. Sites must Get inline and hand the
// object back through putResolver; the poolescape lint rule keeps
// pooled objects from outliving the sweep that got them.
var resolverPool = sync.Pool{New: func() any { return new(resolver) }}

// recordVeccer is the optional provider hook for a cached unit-vector
// table parallel to Records() (geodb.DB implements it).
type recordVeccer interface {
	RecordVecs() []geo.Vec3
}

// bind points the resolver at db, choosing the batch or fallback path.
func (r *resolver) bind(db geodb.Provider) {
	if b, ok := db.(geodb.BatchIndexer); ok {
		r.batch, r.recs, r.lookup = b, b.Records(), nil
		if v, ok := db.(recordVeccer); ok {
			r.vecs = v.RecordVecs()
		}
		return
	}
	r.batch, r.recs, r.lookup = nil, nil, geodb.LookupFunc(db)
}

// putResolver returns r to the pool, dropping the provider references
// so a pooled resolver never pins a hot-swapped database's memory.
func putResolver(r *resolver) {
	if r == nil {
		return
	}
	r.batch, r.recs, r.vecs, r.lookup = nil, nil, nil, nil
	resolverPool.Put(r)
}

// putResolvers returns every bound resolver of a per-worker table.
func putResolvers(rs []*resolver) {
	for _, r := range rs {
		putResolver(r)
	}
}

// grow returns s resized to n, reallocating only when capacity is
// short.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// resolve answers one block of addresses; rec(k) then reads position k.
func (r *resolver) resolve(addrs []ipx.Addr) {
	n := len(addrs)
	if r.batch != nil {
		r.idxs = grow(r.idxs, n)
		r.batch.LookupIndexBatch(addrs, r.idxs, &r.sc)
		return
	}
	r.recbuf = grow(r.recbuf, n)
	r.okbuf = grow(r.okbuf, n)
	for i, a := range addrs {
		r.recbuf[i], r.okbuf[i] = r.lookup(a)
	}
}

// resolveTargets is resolve over a target block's addresses.
func (r *resolver) resolveTargets(targets []Target) {
	r.addrbuf = grow(r.addrbuf, len(targets))
	for i := range targets {
		r.addrbuf[i] = targets[i].Addr
	}
	r.resolve(r.addrbuf)
}

// rec returns the record answering the k-th address of the last
// resolved block, or ok == false for a miss. The returned pointer is
// valid until the next resolve and must not be written through.
func (r *resolver) rec(k int) (rec *geodb.Record, ok bool) {
	if r.batch != nil {
		i := r.idxs[k]
		if i < 0 {
			return nil, false
		}
		return &r.recs[i], true
	}
	if !r.okbuf[k] {
		return nil, false
	}
	return &r.recbuf[k], true
}

// vec returns the unit vector of rec's coordinates, where rec is the
// record rec(k) reported for the last resolved block: the cached table
// entry on the batch path, computed on the fly otherwise. Both give the
// same bits — the table is built by the same Coordinate.Vec — so batch
// and fallback sweeps score identically.
func (r *resolver) vec(k int, rec *geodb.Record) geo.Vec3 {
	if r.vecs != nil {
		return r.vecs[r.idxs[k]]
	}
	return rec.Coord.Vec()
}

// samplePool recycles per-worker ECDF sample buffers. Workers append
// raw distance samples during a sweep; the merge step concatenates them
// into the result CDF and puts the buffers back via putSamples.
var samplePool = sync.Pool{New: func() any {
	s := make([]float64, 0, 1<<14)
	return &s
}}

// putSamples hands a sample buffer (possibly grown) back to the pool.
func putSamples(s *[]float64) {
	if s != nil {
		samplePool.Put(s)
	}
}

// mergeSamples concatenates per-worker sample buffers into one freshly
// allocated slice (the one allocation that must escape into the result
// CDF) and recycles the buffers.
func mergeSamples(bufs []*[]float64) []float64 {
	total := 0
	for _, s := range bufs {
		if s != nil {
			total += len(*s)
		}
	}
	out := make([]float64, 0, total)
	for _, s := range bufs {
		if s != nil {
			out = append(out, *s...)
			putSamples(s)
		}
	}
	return out
}
