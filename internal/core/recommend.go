package core

import (
	"fmt"
	"sort"

	"routergeo/internal/geo"
	"routergeo/internal/stats"
)

// Recommendation is one §6-style guidance item derived from measured
// results rather than hard-coded text.
type Recommendation struct {
	// Rank orders recommendations by importance (1 first).
	Rank int
	// Subject is the database or region the item is about.
	Subject string
	// Text is the human-readable guidance.
	Text string
}

// Recommend synthesizes the paper's §6 guidance from measured results.
// results maps database name to overall ground-truth accuracy; perRIR
// carries the regional breakdown. The function is deliberately mechanical:
// every bullet in §6 is a threshold test over the measurements, so if the
// databases behaved differently the advice would change with them.
func Recommend(results map[string]Accuracy, perRIR map[string]map[geo.RIR]Accuracy) []Recommendation {
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)

	// Composite score: city accuracy weighted by city coverage, the
	// "combination of coverage and accuracy" the paper ranks NetAcuity
	// first on (§8).
	score := func(n string) float64 {
		a := results[n]
		return a.CityAccuracy() * a.CityCoverage()
	}
	best := ""
	for _, n := range names {
		if best == "" || score(n) > score(best) {
			best = n
		}
	}

	var recs []Recommendation
	add := func(subject, text string) {
		recs = append(recs, Recommendation{Rank: len(recs) + 1, Subject: subject, Text: text})
	}

	a := results[best]
	add(best, fmt.Sprintf(
		"If a geolocation database is the only option for routers, use %s: "+
			"it combines %s city-level coverage with %s city-level accuracy over ground truth.",
		best, stats.Pct(a.CityCoverage()), stats.Pct(a.CityAccuracy())))

	// MaxMind guidance: low city coverage, regionally decent accuracy.
	var mmNames []string
	for _, n := range names {
		if len(n) >= 7 && n[:7] == "MaxMind" {
			mmNames = append(mmNames, n)
		}
	}
	for _, n := range mmNames {
		acc := results[n]
		if acc.CityCoverage() < 0.5 {
			add(n, fmt.Sprintf(
				"Do not rely on %s when city-level coverage matters: it answers at city "+
					"level for only %s of router addresses (accuracy on the answers it does "+
					"give is %s).", n, stats.Pct(acc.CityCoverage()), stats.Pct(acc.CityAccuracy())))
		}
	}
	if len(mmNames) == 2 {
		paid, free := results["MaxMind-Paid"], results["MaxMind-GeoLite"]
		if paid.CityCoverage() > free.CityCoverage() {
			add("MaxMind", fmt.Sprintf(
				"Prefer the commercial MaxMind over the free one for routers: city coverage "+
					"%s vs %s and accuracy %s vs %s.",
				stats.Pct(paid.CityCoverage()), stats.Pct(free.CityCoverage()),
				stats.Pct(paid.CityAccuracy()), stats.Pct(free.CityAccuracy())))
		}
	}

	// The least city-accurate full-coverage database gets a warning.
	worst := ""
	for _, n := range names {
		if results[n].CityCoverage() < 0.9 {
			continue
		}
		if worst == "" || results[n].CityAccuracy() < results[worst].CityAccuracy() {
			worst = n
		}
	}
	if worst != "" && worst != best {
		add(worst, fmt.Sprintf(
			"Avoid %s when accuracy matters: despite %s city coverage its city-level "+
				"accuracy is only %s.", worst,
			stats.Pct(results[worst].CityCoverage()), stats.Pct(results[worst].CityAccuracy())))
	}

	// Budget option: if the registry-fed databases cluster at country
	// level, say they are interchangeable there.
	var countryAccs []float64
	for _, n := range names {
		countryAccs = append(countryAccs, results[n].CountryAccuracy())
	}
	sort.Float64s(countryAccs)
	if len(countryAccs) >= 3 && countryAccs[len(countryAccs)-2]-countryAccs[0] < 0.05 {
		add("budget", fmt.Sprintf(
			"If ~%s country-level accuracy is acceptable, the free databases are "+
				"comparable to the commercial ones below the leader — but per-country "+
				"accuracy varies widely.", stats.Pct(countryAccs[0])))
	}

	// Regional warning: if every database's ARIN city accuracy is poor,
	// tell users not to trust city answers there (§6's strongest bullet).
	allPoor := len(perRIR) > 0
	worstARIN := 1.0
	for _, byRIR := range perRIR {
		acc, ok := byRIR[geo.ARIN]
		if !ok {
			continue
		}
		if acc.CityAccuracy() > 0.8 {
			allPoor = false
		}
		if acc.CityAccuracy() < worstARIN {
			worstARIN = acc.CityAccuracy()
		}
	}
	if allPoor {
		add("ARIN", fmt.Sprintf(
			"Do not trust city-level answers for ARIN addresses regardless of database: "+
				"even the best database stays under 80%% there (worst observed %s).",
			stats.Pct(worstARIN)))
	}
	return recs
}
