// Package groundtruth builds the paper's two router-location ground-truth
// datasets (§2.3) and the correctness analyses over them (§3):
//
//   - the DNS-based dataset: rDNS names of Ark-observed interfaces under
//     the seven operator-confirmed domains, decoded with the DRoP rules;
//   - the RTT-proximity dataset: interfaces seen within 0.5 ms of a RIPE
//     Atlas probe, after disqualifying probes parked on default country
//     coordinates and probes that fail the RTT-nearby consistency check.
//
// Locations in the datasets come exclusively from hostnames and probe
// self-reports — never from the world's truth — so the datasets carry the
// same kinds of residual error the paper's do, and §3's validations are
// real checks, not tautologies.
package groundtruth

import (
	"sort"

	"routergeo/internal/geo"
	"routergeo/internal/ipx"
	"routergeo/internal/netsim"
)

// Method says how an entry's location was derived.
type Method uint8

const (
	// DNS entries decode a location hint in the interface's hostname.
	DNS Method = iota + 1
	// RTT entries inherit the location of an RTT-proximate probe.
	RTT
)

// String names the method.
func (m Method) String() string {
	switch m {
	case DNS:
		return "DNS-based"
	case RTT:
		return "RTT-proximity"
	default:
		return "unknown"
	}
}

// Entry is one ground-truth address.
type Entry struct {
	Iface   netsim.IfaceID
	Addr    ipx.Addr
	Coord   geo.Coordinate
	Country string // ISO2 of the claimed location
	Method  Method
	// Domain is the rule that decoded a DNS entry ("" for RTT entries).
	Domain string
	// ProbeID and HopsFromProbe are set on RTT entries.
	ProbeID       int
	HopsFromProbe int
}

// Dataset is an ordered, indexed set of entries (one per address).
type Dataset struct {
	Name    string
	Entries []Entry
	byAddr  map[ipx.Addr]int
}

// NewDataset builds a dataset from entries, dropping duplicate addresses
// (first occurrence wins) and sorting by address.
func NewDataset(name string, entries []Entry) *Dataset {
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Addr < entries[j].Addr })
	d := &Dataset{Name: name, byAddr: make(map[ipx.Addr]int, len(entries))}
	for _, e := range entries {
		if _, dup := d.byAddr[e.Addr]; dup {
			continue
		}
		d.byAddr[e.Addr] = len(d.Entries)
		d.Entries = append(d.Entries, e)
	}
	return d
}

// Len returns the number of addresses.
func (d *Dataset) Len() int { return len(d.Entries) }

// ByAddr fetches an entry by address.
func (d *Dataset) ByAddr(a ipx.Addr) (Entry, bool) {
	i, ok := d.byAddr[a]
	if !ok {
		return Entry{}, false
	}
	return d.Entries[i], true
}

// Countries returns the number of distinct claimed countries (Table 1).
func (d *Dataset) Countries() int {
	set := map[string]bool{}
	for _, e := range d.Entries {
		set[e.Country] = true
	}
	return len(set)
}

// UniqueCoords returns the number of distinct lat/lon pairs (Table 1).
func (d *Dataset) UniqueCoords() int {
	set := map[geo.Coordinate]bool{}
	for _, e := range d.Entries {
		set[e.Coord] = true
	}
	return len(set)
}

// RIRCounts breaks the dataset down by the registry serving each address
// (the Team Cymru whois column group of Table 1).
func (d *Dataset) RIRCounts(w *netsim.World) map[geo.RIR]int {
	out := map[geo.RIR]int{}
	for _, e := range d.Entries {
		out[w.Reg.RIROf(e.Addr)]++
	}
	return out
}

// TransitShare returns the fraction of addresses announced by transit
// ASes, per the registry's AS-rank classification (§2.3.3).
func (d *Dataset) TransitShare(w *netsim.World) float64 {
	if len(d.Entries) == 0 {
		return 0
	}
	n := 0
	for _, e := range d.Entries {
		if alloc, _, ok := w.Reg.Whois(e.Addr); ok && w.Reg.IsTransit(alloc.ASN) {
			n++
		}
	}
	return float64(n) / float64(len(d.Entries))
}

// Merge combines the DNS-based and RTT-proximity datasets into the
// 16,586-address-style evaluation set; addresses in both are kept only as
// DNS entries, as the paper does (§5.2.4).
func Merge(dns, rtt *Dataset) *Dataset {
	entries := make([]Entry, 0, dns.Len()+rtt.Len())
	entries = append(entries, dns.Entries...)
	for _, e := range rtt.Entries {
		if _, dup := dns.byAddr[e.Addr]; !dup {
			entries = append(entries, e)
		}
	}
	return NewDataset("ground-truth", entries)
}

// OverlapStats compares the locations two datasets claim for their common
// addresses (§3.1's DNS-vs-RTT and DNS-vs-1ms checks).
type OverlapStats struct {
	Common      int
	Within10Km  int
	Within40Km  int
	Within100Km int
	MaxKm       float64
}

// CompareOverlap computes agreement between two datasets.
func CompareOverlap(a, b *Dataset) OverlapStats {
	var s OverlapStats
	for _, e := range a.Entries {
		o, ok := b.ByAddr(e.Addr)
		if !ok {
			continue
		}
		s.Common++
		d := e.Coord.DistanceKm(o.Coord)
		if d <= 10 {
			s.Within10Km++
		}
		if d <= 40 {
			s.Within40Km++
		}
		if d <= 100 {
			s.Within100Km++
		}
		if d > s.MaxKm {
			s.MaxKm = d
		}
	}
	return s
}
