package groundtruth

import (
	"math/rand"

	"routergeo/internal/hints"
	"routergeo/internal/netsim"
	"routergeo/internal/rdns"
)

// ChurnStats reproduces the §3.1 hostname-churn breakdown of the
// DNS-based dataset re-checked after a horizon: 69.1% same hostname, 24%
// renamed, 6.9% without rDNS; of the renamed, 67.7% decode to the same
// location, 30.8% to a different one, 1.5% no longer decode.
type ChurnStats struct {
	Total    int
	SameName int
	Renamed  int
	Lost     int
	// Of the renamed:
	RenamedSameLoc  int
	RenamedMovedLoc int
	RenamedNoHint   int
	// MovedShareOfAll is RenamedMovedLoc over Total (the paper's 7.4%).
	MovedShareOfAll float64
}

// HostnameChurn re-resolves the DNS dataset's addresses at the horizon
// and re-decodes the new names with the same DRoP rules, exactly as the
// paper re-checked its May-2016 names in September 2017.
func HostnameChurn(w *netsim.World, zone *rdns.Zone, dec *hints.Decoder,
	evo *netsim.Evolution, dns *Dataset, months float64) ChurnStats {

	var s ChurnStats
	for _, e := range dns.Entries {
		s.Total++
		orig, _ := zone.Lookup(e.Iface)
		now, ok := zone.LookupAt(e.Iface, evo, months)
		if !ok {
			s.Lost++
			continue
		}
		if now == orig {
			s.SameName++
			continue
		}
		s.Renamed++
		city, _, decoded := dec.Decode(now)
		switch {
		case !decoded:
			s.RenamedNoHint++
		case city.Coord.WithinKm(e.Coord, 40):
			s.RenamedSameLoc++
		default:
			s.RenamedMovedLoc++
		}
	}
	if s.Total > 0 {
		s.MovedShareOfAll = float64(s.RenamedMovedLoc) / float64(s.Total)
	}
	return s
}

// Build1ms synthesizes the external comparison dataset of §3.1/§3.2: a
// 1 ms-threshold RTT-proximity collection gathered about ten months after
// the base datasets (the Giotsas et al. "remote peering" dataset). It
// applies the 1 ms rule to the supplied measurements and then accounts for
// world churn at the horizon: moved addresses are re-observed at their new
// site (a probe near the new location) with probability reobserveProb, and
// drop out otherwise.
func Build1ms(w *netsim.World, base *Dataset, evo *netsim.Evolution,
	months float64, reobserveProb float64, seed int64) *Dataset {

	rng := rand.New(rand.NewSource(seed))
	var entries []Entry
	for _, e := range base.Entries {
		ne := e
		if evo.Moved(e.Iface, months) {
			if rng.Float64() >= reobserveProb {
				continue
			}
			c := evo.CityAt(e.Iface, months)
			ne.Coord = evo.CoordAt(e.Iface, months)
			ne.Country = c.Country
		}
		entries = append(entries, ne)
	}
	return NewDataset("1ms-RTT-proximity", entries)
}
