package groundtruth

import (
	"context"
	"sort"

	"routergeo/internal/atlas"
	"routergeo/internal/ipx"
	"routergeo/internal/netsim"
	"routergeo/internal/obs"
	"routergeo/internal/rtt"
)

// RTTConfig parameterizes the RTT-proximity construction (§2.3.2, §3.2).
type RTTConfig struct {
	// ThresholdMs is the proximity bound: 0.5 ms ⇒ hops within 50 km of
	// their probe. The Giotsas comparison dataset uses 1 ms.
	ThresholdMs float64
	// CentroidKm disqualifies probes reported within this distance of any
	// country's default coordinates (the paper uses 5 km).
	CentroidKm float64
	// NearbyMaxKm bounds the reported distance between two probes that are
	// RTT-nearby to the same router: with a T-ms threshold both sit within
	// 100·T km of it, so within 200·T km of each other; the paper uses
	// 100 km for T = 0.5.
	NearbyMaxKm float64
}

// DefaultRTTConfig matches the paper's 0.5 ms pipeline.
func DefaultRTTConfig() RTTConfig {
	return RTTConfig{ThresholdMs: 0.5, CentroidKm: 5, NearbyMaxKm: 100}
}

// RTTStats reports the filtering funnel of §3.2.
type RTTStats struct {
	// CandidateAddrs is the number of distinct addresses with any
	// sub-threshold hop (the paper's 4,960).
	CandidateAddrs int
	// ProbesContributing is the number of distinct probes with
	// sub-threshold hops (1,387).
	ProbesContributing int
	// CentroidProbes and CentroidAddrsRemoved cover the first filter
	// (19 probes, 109 addresses).
	CentroidProbes       int
	CentroidAddrsRemoved int
	// NearbyGroupAddrs is the number of surviving addresses vouched for by
	// two or more probes (495); InconsistentAddrs of them have probes more
	// than NearbyMaxKm apart (12).
	NearbyGroupAddrs  int
	InconsistentAddrs int
	// ProbesInGroups is the number of distinct probes in multi-probe
	// groups (223); DisqualifiedProbes of them fail the consistency vote
	// (5); NearbyAddrsRemoved addresses fall with them (13).
	ProbesInGroups     int
	DisqualifiedProbes int
	NearbyAddrsRemoved int
	// Final is the dataset size after both filters (4,838).
	Final int
	// TwoPlusHopsShare is the fraction of final addresses at least two
	// hops from their probe (the paper's >80% home-router check).
	TwoPlusHopsShare float64
}

// BuildRTT derives the RTT-proximity ground truth from built-in
// measurements. Only the probes' *reported* locations are used; the §3.2
// filters must catch mislocated probes on their own.
func BuildRTT(ctx context.Context, w *netsim.World, fleet *atlas.Fleet, ms []atlas.Measurement, cfg RTTConfig) (*Dataset, RTTStats) {
	_, sp := obs.Start(ctx, "groundtruth.rtt")
	defer sp.End()
	sp.SetAttr("threshold_ms", cfg.ThresholdMs)
	sp.SetAttr("measurements", len(ms))
	probeByID := map[int]*atlas.Probe{}
	for i := range fleet.Probes {
		probeByID[fleet.Probes[i].ID] = &fleet.Probes[i]
	}

	// Step 1: harvest sub-threshold (address, probe) sightings.
	type sighting struct {
		probe int
		rtt   float64
		hops  int
	}
	byAddr := map[ipx.Addr][]sighting{}
	probeSet := map[int]bool{}
	for _, m := range ms {
		for _, h := range m.Result {
			min := h.MinRTT()
			if min > cfg.ThresholdMs {
				continue
			}
			a, err := ipx.ParseAddr(h.From)
			if err != nil {
				continue
			}
			cur := byAddr[a]
			found := false
			for i := range cur {
				if cur[i].probe == m.ProbeID {
					if min < cur[i].rtt {
						cur[i].rtt = min
						cur[i].hops = h.Hop
					}
					found = true
					break
				}
			}
			if !found {
				byAddr[a] = append(cur, sighting{probe: m.ProbeID, rtt: min, hops: h.Hop})
			}
			probeSet[m.ProbeID] = true
		}
	}

	var stats RTTStats
	stats.CandidateAddrs = len(byAddr)
	stats.ProbesContributing = len(probeSet)

	// Filter 1: probes parked on default country coordinates.
	centroidProbes := map[int]bool{}
	for id := range probeSet {
		p := probeByID[id]
		if _, near := w.Gaz.NearCountryCentroid(p.Reported, cfg.CentroidKm); near {
			centroidProbes[id] = true
		}
	}
	stats.CentroidProbes = len(centroidProbes)
	for a, sightings := range byAddr {
		for _, s := range sightings {
			if centroidProbes[s.probe] {
				delete(byAddr, a)
				stats.CentroidAddrsRemoved++
				break
			}
		}
	}

	// Filter 2: RTT-nearby groups. Two probes near the same router must be
	// near each other; probes that disagree with their groups more than
	// they agree are disqualified, along with their addresses.
	agree := map[int]int{}
	disagree := map[int]int{}
	probesInGroups := map[int]bool{}
	for _, sightings := range byAddr {
		if len(sightings) < 2 {
			continue
		}
		stats.NearbyGroupAddrs++
		inconsistent := false
		for i := 0; i < len(sightings); i++ {
			probesInGroups[sightings[i].probe] = true
			for j := i + 1; j < len(sightings); j++ {
				pi := probeByID[sightings[i].probe]
				pj := probeByID[sightings[j].probe]
				if pi.Reported.DistanceKm(pj.Reported) > cfg.NearbyMaxKm {
					inconsistent = true
					disagree[pi.ID]++
					disagree[pj.ID]++
				} else {
					agree[pi.ID]++
					agree[pj.ID]++
				}
			}
		}
		if inconsistent {
			stats.InconsistentAddrs++
		}
	}
	stats.ProbesInGroups = len(probesInGroups)
	disqualified := map[int]bool{}
	for id, bad := range disagree {
		if bad > 0 && bad >= agree[id] {
			disqualified[id] = true
		}
	}
	stats.DisqualifiedProbes = len(disqualified)
	for a, sightings := range byAddr {
		for _, s := range sightings {
			if disqualified[s.probe] {
				delete(byAddr, a)
				stats.NearbyAddrsRemoved++
				break
			}
		}
	}

	// Assemble: each surviving address inherits the location of its
	// lowest-RTT vouching probe.
	var entries []Entry
	twoPlus := 0
	for a, sightings := range byAddr {
		best := sightings[0]
		for _, s := range sightings[1:] {
			if s.rtt < best.rtt {
				best = s
			}
		}
		p := probeByID[best.probe]
		id, ok := w.IfaceByAddr(a)
		if !ok {
			continue
		}
		entries = append(entries, Entry{
			Iface:         id,
			Addr:          a,
			Coord:         p.Reported,
			Country:       p.ReportedCountry,
			Method:        RTT,
			ProbeID:       best.probe,
			HopsFromProbe: best.hops,
		})
		if best.hops >= 2 {
			twoPlus++
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Addr < entries[j].Addr })
	ds := NewDataset("RTT-proximity", entries)
	stats.Final = ds.Len()
	sp.SetItems(int64(ds.Len()))
	if ds.Len() > 0 {
		stats.TwoPlusHopsShare = float64(twoPlus) / float64(ds.Len())
	}
	return ds, stats
}

// MaxProximityKm returns the distance bound the configured threshold
// implies (50 km for 0.5 ms).
func (c RTTConfig) MaxProximityKm() float64 { return rtt.MaxDistanceKmForRTT(c.ThresholdMs) }
