package groundtruth

import (
	"context"
	"testing"

	"routergeo/internal/ark"
	"routergeo/internal/atlas"
	"routergeo/internal/hints"
	"routergeo/internal/netsim"
	"routergeo/internal/rdns"
)

type benchEnv struct {
	w     *netsim.World
	coll  *ark.Collection
	zone  *rdns.Zone
	dec   *hints.Decoder
	fleet *atlas.Fleet
	ms    []atlas.Measurement
}

var cachedBench *benchEnv

func benchSetup(b *testing.B) *benchEnv {
	b.Helper()
	if cachedBench != nil {
		return cachedBench
	}
	cfg := netsim.DefaultConfig()
	cfg.Seed = 31
	cfg.ASes = 250
	w, err := netsim.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	dict := hints.NewDictionary(w.Gaz)
	e := &benchEnv{
		w:    w,
		coll: ark.Collect(context.Background(), w, ark.DefaultConfig()),
		zone: rdns.Synthesize(w, dict, rdns.DefaultConfig()),
		dec:  hints.NewDecoder(dict),
	}
	fc := atlas.DefaultConfig()
	fc.Probes = 700
	e.fleet = atlas.Deploy(w, fc)
	e.ms = e.fleet.RunBuiltins(3)
	cachedBench = e
	return e
}

// BenchmarkBuildDNS measures the DNS-based ground-truth construction.
func BenchmarkBuildDNS(b *testing.B) {
	e := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildDNS(context.Background(), e.w, e.coll, e.zone, e.dec)
	}
}

// BenchmarkBuildRTT measures the RTT-proximity construction including
// both §3.2 disqualification filters.
func BenchmarkBuildRTT(b *testing.B) {
	e := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildRTT(context.Background(), e.w, e.fleet, e.ms, DefaultRTTConfig())
	}
}
