package groundtruth

import (
	"context"

	"routergeo/internal/ark"
	"routergeo/internal/hints"
	"routergeo/internal/netsim"
	"routergeo/internal/obs"
	"routergeo/internal/rdns"
)

// DNSStats reports the funnel of the DNS-based construction (§2.3.1): how
// many Ark interfaces had hostnames, how many fell under the seven
// ground-truth domains, and how many of those decoded.
type DNSStats struct {
	ArkInterfaces   int
	WithHostname    int
	InGTDomains     int
	Decoded         int
	PerDomainCounts map[string]int
}

// BuildDNS derives the DNS-based ground truth from an Ark collection:
// reverse-resolve every observed interface, keep the seven confirmed
// domains, decode the location hints. Locations are the decoded cities'
// coordinates; interfaces whose names carry no decodable hint are dropped
// (the paper geolocated 11,857 of ~13.5K candidate addresses).
func BuildDNS(ctx context.Context, w *netsim.World, coll *ark.Collection, zone *rdns.Zone, dec *hints.Decoder) (*Dataset, DNSStats) {
	_, sp := obs.Start(ctx, "groundtruth.dns")
	defer sp.End()
	sp.SetAttr("ark_interfaces", len(coll.Interfaces))
	gtDomains := map[string]bool{}
	for _, d := range hints.GroundTruthDomains() {
		gtDomains[d] = true
	}
	stats := DNSStats{
		ArkInterfaces:   len(coll.Interfaces),
		PerDomainCounts: map[string]int{},
	}
	var entries []Entry
	for _, id := range coll.Interfaces {
		name, ok := zone.Lookup(id)
		if !ok {
			continue
		}
		stats.WithHostname++
		// The paper filters by domain suffix first, then applies the
		// domain's rule. Our AS model knows the operator domain; the real
		// pipeline infers it from the name — same outcome.
		domain := w.ASOfIface(id).Domain
		if !gtDomains[domain] {
			continue
		}
		stats.InGTDomains++
		city, ruleDomain, ok := dec.Decode(name)
		if !ok || ruleDomain != domain {
			continue
		}
		stats.Decoded++
		stats.PerDomainCounts[domain]++
		entries = append(entries, Entry{
			Iface:   id,
			Addr:    w.Interfaces[id].Addr,
			Coord:   city.Coord,
			Country: city.Country,
			Method:  DNS,
			Domain:  domain,
		})
	}
	sp.SetItems(int64(len(entries)))
	return NewDataset("DNS-based", entries), stats
}
