package groundtruth

import (
	"context"
	"math/rand"
	"testing"

	"routergeo/internal/ark"
	"routergeo/internal/atlas"
	"routergeo/internal/geo"
	"routergeo/internal/hints"
	"routergeo/internal/netsim"
	"routergeo/internal/rdns"
)

type env struct {
	w     *netsim.World
	coll  *ark.Collection
	zone  *rdns.Zone
	dec   *hints.Decoder
	fleet *atlas.Fleet
	ms    []atlas.Measurement
	dns   *Dataset
	dnsSt DNSStats
	rtt   *Dataset
	rttSt RTTStats
}

var cached *env

func setup(t *testing.T) *env {
	t.Helper()
	if cached != nil {
		return cached
	}
	cfg := netsim.DefaultConfig()
	cfg.Seed = 31
	cfg.ASes = 250
	w, err := netsim.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dict := hints.NewDictionary(w.Gaz)
	e := &env{
		w:    w,
		coll: ark.Collect(context.Background(), w, ark.DefaultConfig()),
		zone: rdns.Synthesize(w, dict, rdns.DefaultConfig()),
		dec:  hints.NewDecoder(dict),
	}
	fc := atlas.DefaultConfig()
	fc.Probes = 700
	e.fleet = atlas.Deploy(w, fc)
	e.ms = e.fleet.RunBuiltins(3)
	e.dns, e.dnsSt = BuildDNS(context.Background(), w, e.coll, e.zone, e.dec)
	e.rtt, e.rttSt = BuildRTT(context.Background(), w, e.fleet, e.ms, DefaultRTTConfig())
	cached = e
	return e
}

func TestDNSDatasetNonTrivial(t *testing.T) {
	e := setup(t)
	if e.dns.Len() < 200 {
		t.Fatalf("DNS dataset has only %d entries", e.dns.Len())
	}
	// Funnel sanity: decoded <= in-domain <= with-hostname <= ark.
	s := e.dnsSt
	if !(s.Decoded <= s.InGTDomains && s.InGTDomains <= s.WithHostname && s.WithHostname <= s.ArkInterfaces) {
		t.Errorf("funnel out of order: %+v", s)
	}
	if s.Decoded != e.dns.Len() {
		t.Errorf("decoded %d != dataset %d", s.Decoded, e.dns.Len())
	}
	// All seven domains should contribute, cogent the most (it has the
	// largest footprint, as in the paper's Table of §2.3.1).
	if len(s.PerDomainCounts) < 6 {
		t.Errorf("only %d domains contributed: %v", len(s.PerDomainCounts), s.PerDomainCounts)
	}
	for d, n := range s.PerDomainCounts {
		if d != "cogentco.com" && n > s.PerDomainCounts["cogentco.com"] {
			t.Errorf("%s (%d) outweighs cogent (%d)", d, n, s.PerDomainCounts["cogentco.com"])
		}
	}
}

func TestDNSLocationsAccurate(t *testing.T) {
	// The DNS method must be *approximately* right (that is why the paper
	// uses it as ground truth): nearly all entries within the city range
	// of the interface's true location.
	e := setup(t)
	within := 0
	for _, entry := range e.dns.Entries {
		if entry.Coord.WithinKm(e.w.CoordOf(entry.Iface), 40) {
			within++
		}
	}
	if frac := float64(within) / float64(e.dns.Len()); frac < 0.97 {
		t.Errorf("only %.3f of DNS entries within 40 km of truth", frac)
	}
}

func TestDNSDatasetARINHeavy(t *testing.T) {
	// Five of the seven domains are ARIN operators; the DNS dataset must
	// be ARIN-dominated like the paper's (9,588 of 11,857).
	e := setup(t)
	counts := e.dns.RIRCounts(e.w)
	if counts[geo.ARIN] <= counts[geo.RIPENCC] {
		t.Errorf("DNS dataset not ARIN-heavy: %v", counts)
	}
}

func TestDNSTransitShare(t *testing.T) {
	// §2.3.3: 99.9% of DNS-based addresses come from transit ASes.
	e := setup(t)
	if s := e.dns.TransitShare(e.w); s < 0.9 {
		t.Errorf("DNS transit share = %.3f, want >= 0.9", s)
	}
}

func TestRTTDatasetNonTrivial(t *testing.T) {
	e := setup(t)
	if e.rtt.Len() < 100 {
		t.Fatalf("RTT dataset has only %d entries", e.rtt.Len())
	}
	s := e.rttSt
	if s.Final != e.rtt.Len() {
		t.Errorf("stats.Final %d != dataset %d", s.Final, e.rtt.Len())
	}
	if s.CandidateAddrs < s.Final {
		t.Errorf("filtering grew the dataset: %+v", s)
	}
	if s.ProbesContributing == 0 {
		t.Error("no contributing probes")
	}
}

func TestRTTLocationsSound(t *testing.T) {
	// After filtering, surviving entries should place interfaces within
	// ~50 km (+ reporting jitter) of their true position for nearly all
	// addresses — the residue are mislocated probes the filters missed,
	// which the paper accepts as small (§3.2).
	e := setup(t)
	bad := 0
	for _, entry := range e.rtt.Entries {
		if !entry.Coord.WithinKm(e.w.CoordOf(entry.Iface), 55) {
			bad++
		}
	}
	if frac := float64(bad) / float64(e.rtt.Len()); frac > 0.03 {
		t.Errorf("%.3f of RTT entries are off by more than the proximity bound", frac)
	}
}

func TestRTTFiltersCatchCentroidProbes(t *testing.T) {
	e := setup(t)
	// Every centroid-parked probe that contributed sightings must be
	// caught by the first filter: reported-at-centroid is detectable by
	// construction.
	if e.rttSt.CentroidProbes == 0 {
		t.Skip("no centroid probes contributed sub-threshold hops in this sample")
	}
	if e.rttSt.CentroidAddrsRemoved == 0 {
		t.Error("centroid probes caught but no addresses removed")
	}
	// No surviving entry may carry a near-centroid location.
	for _, entry := range e.rtt.Entries {
		if _, near := e.w.Gaz.NearCountryCentroid(entry.Coord, 5); near {
			t.Errorf("entry %v still located at a country centroid", entry.Addr)
		}
	}
}

func TestRTTMostAddressesBeyondFirstHop(t *testing.T) {
	// §2.3.2: more than 80% of gathered addresses are at least 2 hops from
	// their probes (so mostly not home routers).
	e := setup(t)
	if e.rttSt.TwoPlusHopsShare < 0.5 {
		t.Errorf("two-plus-hop share = %.2f; expected most addresses beyond the first hop",
			e.rttSt.TwoPlusHopsShare)
	}
}

func TestRTTDatasetRIPEHeavy(t *testing.T) {
	// Table 1: the probe fleet's European skew makes the RTT dataset
	// RIPE-heavy (3,160 of 4,838).
	e := setup(t)
	counts := e.rtt.RIRCounts(e.w)
	total := 0
	for _, n := range counts {
		total += n
	}
	frac := float64(counts[geo.RIPENCC]) / float64(total)
	if frac < 0.30 {
		t.Errorf("RIPE share of RTT dataset = %.2f, want >= 0.30", frac)
	}
	if counts[geo.RIPENCC] < counts[geo.APNIC] || counts[geo.RIPENCC] < counts[geo.LACNIC] ||
		counts[geo.RIPENCC] < counts[geo.AFRINIC] {
		t.Errorf("RIPE (%d) should outweigh the smaller regions: %v", counts[geo.RIPENCC], counts)
	}
}

func TestMergePrefersDNS(t *testing.T) {
	e := setup(t)
	merged := Merge(e.dns, e.rtt)
	if merged.Len() > e.dns.Len()+e.rtt.Len() {
		t.Fatal("merge grew beyond the union")
	}
	common := 0
	for _, entry := range e.rtt.Entries {
		if _, ok := e.dns.ByAddr(entry.Addr); ok {
			common++
		}
	}
	if merged.Len() != e.dns.Len()+e.rtt.Len()-common {
		t.Errorf("merged %d != %d + %d - %d", merged.Len(), e.dns.Len(), e.rtt.Len(), common)
	}
	for _, entry := range e.rtt.Entries {
		if _, ok := e.dns.ByAddr(entry.Addr); ok {
			got, _ := merged.ByAddr(entry.Addr)
			if got.Method != DNS {
				t.Fatalf("common address %v kept as %v, want DNS", entry.Addr, got.Method)
			}
		}
	}
}

func TestOverlapAgreement(t *testing.T) {
	// §3.1: DNS and RTT datasets agree closely on common addresses
	// (105 of 109 within 10 km, all within 43 km in the paper).
	e := setup(t)
	s := CompareOverlap(e.dns, e.rtt)
	if s.Common == 0 {
		t.Skip("no overlap in this sample")
	}
	if frac := float64(s.Within40Km) / float64(s.Common); frac < 0.9 {
		t.Errorf("only %.2f of common addresses agree within 40 km (max %.1f km)", frac, s.MaxKm)
	}
}

func TestHostnameChurnBreakdown(t *testing.T) {
	e := setup(t)
	evo := e.w.Evolve(rand.New(rand.NewSource(5)), netsim.DefaultEvolutionParams())
	s := HostnameChurn(e.w, e.zone, e.dec, evo, e.dns, 16)
	if s.Total != e.dns.Len() {
		t.Fatalf("churn total %d != dataset %d", s.Total, e.dns.Len())
	}
	if s.SameName+s.Renamed+s.Lost != s.Total {
		t.Fatalf("churn categories do not partition: %+v", s)
	}
	if s.RenamedSameLoc+s.RenamedMovedLoc+s.RenamedNoHint != s.Renamed {
		t.Fatalf("renamed categories do not partition: %+v", s)
	}
	// Paper: ~69% same, ~24% renamed, ~7% lost; generous bands.
	same := float64(s.SameName) / float64(s.Total)
	ren := float64(s.Renamed) / float64(s.Total)
	lost := float64(s.Lost) / float64(s.Total)
	if same < 0.55 || same > 0.85 {
		t.Errorf("same-name share %.2f outside band", same)
	}
	if ren < 0.12 || ren > 0.38 {
		t.Errorf("renamed share %.2f outside band", ren)
	}
	if lost < 0.02 || lost > 0.14 {
		t.Errorf("lost share %.2f outside band", lost)
	}
	// Renames are mostly in-place (paper: 67.7% same location).
	if s.Renamed > 0 && s.RenamedSameLoc <= s.RenamedMovedLoc {
		t.Errorf("renames should be mostly in-place: %+v", s)
	}
}

func TestBuild1msChurnAdjustment(t *testing.T) {
	e := setup(t)
	evo := e.w.Evolve(rand.New(rand.NewSource(6)), netsim.DefaultEvolutionParams())
	oneMs := Build1ms(e.w, e.rtt, evo, 10, 0.7, 7)
	if oneMs.Len() == 0 || oneMs.Len() > e.rtt.Len() {
		t.Fatalf("1ms dataset size %d out of range (base %d)", oneMs.Len(), e.rtt.Len())
	}
	// Unmoved addresses keep their base location.
	for _, entry := range oneMs.Entries {
		if !evo.Moved(entry.Iface, 10) {
			base, _ := e.rtt.ByAddr(entry.Addr)
			if base.Coord != entry.Coord {
				t.Fatal("unmoved entry changed location in the 1ms dataset")
			}
		} else if base, _ := e.rtt.ByAddr(entry.Addr); base.Coord == entry.Coord {
			t.Fatal("moved entry kept its old location in the 1ms dataset")
		}
	}
}

func TestDatasetBasics(t *testing.T) {
	entries := []Entry{
		{Addr: 30, Coord: geo.Coordinate{Lat: 1, Lon: 1}, Country: "US", Method: DNS},
		{Addr: 10, Coord: geo.Coordinate{Lat: 2, Lon: 2}, Country: "DE", Method: RTT},
		{Addr: 10, Coord: geo.Coordinate{Lat: 9, Lon: 9}, Country: "FR", Method: DNS}, // dup, dropped
		{Addr: 20, Coord: geo.Coordinate{Lat: 2, Lon: 2}, Country: "DE", Method: RTT},
	}
	d := NewDataset("t", entries)
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.Entries[0].Addr != 10 || d.Entries[2].Addr != 30 {
		t.Error("entries not sorted")
	}
	got, ok := d.ByAddr(10)
	if !ok || got.Country != "DE" {
		t.Errorf("duplicate handling broke: %+v", got)
	}
	if d.Countries() != 2 {
		t.Errorf("Countries = %d", d.Countries())
	}
	if d.UniqueCoords() != 2 {
		t.Errorf("UniqueCoords = %d", d.UniqueCoords())
	}
	if MethodName := DNS.String(); MethodName != "DNS-based" {
		t.Errorf("Method.String = %q", MethodName)
	}
}

func TestRTTConfigProximityBound(t *testing.T) {
	if got := DefaultRTTConfig().MaxProximityKm(); got != 50 {
		t.Errorf("0.5 ms bound = %v km, want 50", got)
	}
	if got := (RTTConfig{ThresholdMs: 1}).MaxProximityKm(); got != 100 {
		t.Errorf("1 ms bound = %v km, want 100", got)
	}
}
