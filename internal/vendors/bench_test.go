package vendors

import (
	"testing"

	"routergeo/internal/hints"
	"routergeo/internal/netsim"
	"routergeo/internal/rdns"
)

// BenchmarkBuildNetAcuity measures the most expensive vendor pipeline
// (registry walk + SWIP + corrections + per-interface hint decoding).
func BenchmarkBuildNetAcuity(b *testing.B) {
	cfg := netsim.DefaultConfig()
	cfg.Seed = 21
	cfg.ASes = 250
	w, err := netsim.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	dict := hints.NewDictionary(w.Gaz)
	in := Inputs{
		World:   w,
		Feed:    BuildFeed(w, DefaultFeedConfig()),
		Zone:    rdns.Synthesize(w, dict, rdns.DefaultConfig()),
		Decoder: hints.NewDecoder(dict),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(in, NetAcuity()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildFeed measures registration-feed derivation.
func BenchmarkBuildFeed(b *testing.B) {
	cfg := netsim.DefaultConfig()
	cfg.Seed = 21
	cfg.ASes = 250
	w, err := netsim.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildFeed(w, DefaultFeedConfig())
	}
}
