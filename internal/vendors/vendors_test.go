package vendors

import (
	"bytes"
	"math/rand"
	"testing"

	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/geodb/dbfile"
	"routergeo/internal/hints"
	"routergeo/internal/ipx"
	"routergeo/internal/netsim"
	"routergeo/internal/rdns"
)

var (
	cachedWorld *netsim.World
	cachedDBs   map[string]*geodb.DB
)

func setup(t *testing.T) (*netsim.World, map[string]*geodb.DB) {
	t.Helper()
	if cachedWorld == nil {
		cfg := netsim.DefaultConfig()
		cfg.Seed = 21
		cfg.ASes = 250
		w, err := netsim.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dict := hints.NewDictionary(w.Gaz)
		in := Inputs{
			World:   w,
			Feed:    BuildFeed(w, DefaultFeedConfig()),
			Zone:    rdns.Synthesize(w, dict, rdns.DefaultConfig()),
			Decoder: hints.NewDecoder(dict),
		}
		dbs, err := BuildAll(in)
		if err != nil {
			t.Fatal(err)
		}
		cachedWorld = w
		cachedDBs = map[string]*geodb.DB{}
		for _, db := range dbs {
			cachedDBs[db.Name()] = db
		}
	}
	return cachedWorld, cachedDBs
}

// measure returns country coverage, city coverage, country accuracy and
// city accuracy (within 40 km) of a database over every world interface.
func measure(w *netsim.World, db *geodb.DB) (covCountry, covCity, accCountry, accCity float64) {
	var n, hasCountry, hasCity, okCountry, okCity int
	for i := range w.Interfaces {
		id := netsim.IfaceID(i)
		n++
		rec, ok := db.Lookup(w.Interfaces[i].Addr)
		if !ok {
			continue
		}
		if rec.HasCountry() {
			hasCountry++
			if rec.Country == w.CountryOf(id) {
				okCountry++
			}
		}
		if rec.HasCity() {
			hasCity++
			if rec.Coord.WithinKm(w.CoordOf(id), 40) {
				okCity++
			}
		}
	}
	return float64(hasCountry) / float64(n), float64(hasCity) / float64(n),
		float64(okCountry) / float64(hasCountry), float64(okCity) / float64(hasCity)
}

func TestCoverageShapes(t *testing.T) {
	w, dbs := setup(t)
	type shape struct{ covCountry, covCity float64 }
	got := map[string]shape{}
	for name, db := range dbs {
		cc, ci, _, _ := measure(w, db)
		got[name] = shape{cc, ci}
		t.Logf("%s: country coverage %.3f, city coverage %.3f", name, cc, ci)
	}
	// IP2Location and NetAcuity: near-perfect coverage at both levels.
	for _, name := range []string{"IP2Location-Lite", "NetAcuity"} {
		if got[name].covCountry < 0.99 || got[name].covCity < 0.95 {
			t.Errorf("%s coverage too low: %+v", name, got[name])
		}
	}
	// MaxMind: high country coverage but visibly partial city coverage,
	// GeoLite below Paid (paper: 43%% vs 61.6%% on the Ark set).
	for _, name := range []string{"MaxMind-Paid", "MaxMind-GeoLite"} {
		if got[name].covCountry < 0.90 {
			t.Errorf("%s country coverage too low: %+v", name, got[name])
		}
		if got[name].covCity > 0.85 {
			t.Errorf("%s city coverage suspiciously high: %+v", name, got[name])
		}
	}
	if got["MaxMind-GeoLite"].covCity >= got["MaxMind-Paid"].covCity {
		t.Errorf("GeoLite city coverage (%.3f) should trail Paid (%.3f)",
			got["MaxMind-GeoLite"].covCity, got["MaxMind-Paid"].covCity)
	}
}

func TestAccuracyOrdering(t *testing.T) {
	w, dbs := setup(t)
	acc := map[string]struct{ country, city float64 }{}
	for name, db := range dbs {
		_, _, ac, ai := measure(w, db)
		acc[name] = struct{ country, city float64 }{ac, ai}
		t.Logf("%s: country accuracy %.3f, city accuracy %.3f", name, ac, ai)
	}
	// NetAcuity must lead everyone at country level (paper: 89.4%% vs
	// ~78%%) and beat IP2Location at city level.
	for _, other := range []string{"IP2Location-Lite", "MaxMind-GeoLite", "MaxMind-Paid"} {
		if acc["NetAcuity"].country <= acc[other].country {
			t.Errorf("NetAcuity country accuracy (%.3f) should beat %s (%.3f)",
				acc["NetAcuity"].country, other, acc[other].country)
		}
	}
	if acc["NetAcuity"].city <= acc["IP2Location-Lite"].city {
		t.Errorf("NetAcuity city accuracy (%.3f) should beat IP2Location (%.3f)",
			acc["NetAcuity"].city, acc["IP2Location-Lite"].city)
	}
	// IP2Location is the least city-accurate of all (paper Fig. 2).
	for _, other := range []string{"MaxMind-GeoLite", "MaxMind-Paid", "NetAcuity"} {
		if acc["IP2Location-Lite"].city >= acc[other].city {
			t.Errorf("IP2Location city accuracy (%.3f) should trail %s (%.3f)",
				acc["IP2Location-Lite"].city, other, acc[other].city)
		}
	}
}

func TestMaxMindFamilyCoordinatesIdentical(t *testing.T) {
	// When both MaxMind products answer the same city, the coordinates are
	// usually bit-identical — the signature of one family sharing its city
	// table (Figure 1: 68% identical). The free product's stale snapshot
	// (CoordStaleProb) breaks identity for a bounded share of cities, and
	// the drift stays small (the paper's MaxMind pair disagrees by >40 km
	// for only 11.4% of addresses).
	w, dbs := setup(t)
	paid, lite := dbs["MaxMind-Paid"], dbs["MaxMind-GeoLite"]
	var same, sameCity, far int
	for i := range w.Interfaces {
		a := w.Interfaces[i].Addr
		rp, ok1 := paid.Lookup(a)
		rl, ok2 := lite.Lookup(a)
		if !ok1 || !ok2 || !rp.HasCity() || !rl.HasCity() {
			continue
		}
		if rp.Country == rl.Country && rp.City == rl.City {
			sameCity++
			if rp.Coord == rl.Coord {
				same++
			} else if !rp.Coord.WithinKm(rl.Coord, 70) {
				far++
			}
		}
	}
	if sameCity == 0 {
		t.Fatal("no overlapping city answers between the MaxMind products")
	}
	identicalFrac := float64(same) / float64(sameCity)
	if identicalFrac < 0.55 || identicalFrac > 0.95 {
		t.Errorf("identical-coordinate share = %.2f, want 0.55-0.95 (paper: ~0.68 of pairs)", identicalFrac)
	}
	if far > 0 {
		t.Errorf("%d same-city answers differ by more than the staleness bound", far)
	}
}

func TestDifferentFamiliesDifferentCoords(t *testing.T) {
	w, dbs := setup(t)
	ip2, neta := dbs["IP2Location-Lite"], dbs["NetAcuity"]
	var sameCity, identical int
	for i := range w.Interfaces {
		a := w.Interfaces[i].Addr
		r1, ok1 := ip2.Lookup(a)
		r2, ok2 := neta.Lookup(a)
		if !ok1 || !ok2 || !r1.HasCity() || !r2.HasCity() {
			continue
		}
		if r1.Country == r2.Country && r1.City == r2.City {
			sameCity++
			if r1.Coord == r2.Coord {
				identical++
			}
		}
	}
	if sameCity > 0 && identical == sameCity {
		t.Error("independent vendors produced identical coordinates everywhere; families are not separated")
	}
}

func TestRegistryBiasPlanted(t *testing.T) {
	// Interfaces of multinational ARIN orgs located outside the US must
	// frequently be geolocated to the US by the registry-fed vendors —
	// the §5.2.3 mechanism.
	w, dbs := setup(t)
	ip2 := dbs["IP2Location-Lite"]
	var abroad, toUS int
	for i := range w.Interfaces {
		id := netsim.IfaceID(i)
		as := w.ASOfIface(id)
		if as.RIR != geo.ARIN || as.HomeCountry != "US" || !as.Multinational {
			continue
		}
		if w.CountryOf(id) == "US" {
			continue
		}
		abroad++
		if rec, ok := ip2.Lookup(w.Interfaces[i].Addr); ok && rec.Country == "US" {
			toUS++
		}
	}
	if abroad == 0 {
		t.Fatal("no foreign interfaces of US multinationals in the world")
	}
	if frac := float64(toUS) / float64(abroad); frac < 0.4 {
		t.Errorf("only %.2f of foreign US-org interfaces geolocated to the US; paper saw ~0.70", frac)
	}
}

func TestHintPipelineOnlyNetAcuity(t *testing.T) {
	// Per-address (/32) records exist only in NetAcuity's database.
	_, dbs := setup(t)
	for name, db := range dbs {
		has32 := false
		db.Walk(func(_ ipx.Range, rec geodb.Record) bool {
			if rec.BlockBits == 32 {
				has32 = true
				return false
			}
			return true
		})
		if name == "NetAcuity" && !has32 {
			t.Error("NetAcuity has no per-address hint records")
		}
		if name != "NetAcuity" && has32 {
			t.Errorf("%s has per-address records; only NetAcuity runs the hint pipeline", name)
		}
	}
}

func TestBuildRequiresInputs(t *testing.T) {
	if _, err := Build(Inputs{}, IP2LocationLite()); err == nil {
		t.Error("Build without inputs must fail")
	}
	w, _ := setup(t)
	in := Inputs{World: w, Feed: BuildFeed(w, DefaultFeedConfig())}
	if _, err := Build(in, NetAcuity()); err == nil {
		t.Error("NetAcuity without a zone/decoder must fail")
	}
}

func TestVendorDBRoundTripsThroughDBFile(t *testing.T) {
	w, dbs := setup(t)
	db := dbs["NetAcuity"]
	var buf bytes.Buffer
	if err := dbfile.Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := dbfile.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("round trip changed entry count: %d vs %d", back.Len(), db.Len())
	}
	for i := 0; i < w.NumInterfaces(); i += 71 {
		a := w.Interfaces[i].Addr
		r1, ok1 := db.Lookup(a)
		r2, ok2 := back.Lookup(a)
		if ok1 != ok2 || r1 != r2 {
			t.Fatalf("lookup diverged after round trip at %v", a)
		}
	}
}

func TestFeedSWIPSkewsTowardARINAndHQ(t *testing.T) {
	w, _ := setup(t)
	feed := BuildFeed(w, DefaultFeedConfig())
	counts := map[geo.RIR]struct{ blocks, swip, atHQ int }{}
	for ai, blocks := range feed.BlocksOf {
		info := feed.Allocations[ai]
		c := counts[info.Alloc.RIR]
		for _, b := range blocks {
			c.blocks++
			if rec, ok := feed.SWIP[b]; ok {
				c.swip++
				if rec.City == info.Org.HQCity && rec.Country == info.Org.HQCountry {
					c.atHQ++
				}
			}
		}
		counts[info.Alloc.RIR] = c
	}
	arin, ripe := counts[geo.ARIN], counts[geo.RIPENCC]
	if arin.blocks == 0 || ripe.blocks == 0 {
		t.Fatal("feed missing blocks in ARIN or RIPE")
	}
	arinFrac := float64(arin.swip) / float64(arin.blocks)
	ripeFrac := float64(ripe.swip) / float64(ripe.blocks)
	if arinFrac <= ripeFrac {
		t.Errorf("SWIP presence ARIN %.2f should exceed RIPE %.2f", arinFrac, ripeFrac)
	}
	if arin.swip > 0 && float64(arin.atHQ)/float64(arin.swip) < 0.5 {
		t.Errorf("ARIN SWIP at-HQ fraction %.2f too low; need HQ bias", float64(arin.atHQ)/float64(arin.swip))
	}
}

func TestBuildDeterministic(t *testing.T) {
	w, dbs := setup(t)
	dict := hints.NewDictionary(w.Gaz)
	in := Inputs{
		World:   w,
		Feed:    BuildFeed(w, DefaultFeedConfig()),
		Zone:    rdns.Synthesize(w, dict, rdns.DefaultConfig()),
		Decoder: hints.NewDecoder(dict),
	}
	again, err := Build(in, NetAcuity())
	if err != nil {
		t.Fatal(err)
	}
	orig := dbs["NetAcuity"]
	if again.Len() != orig.Len() {
		t.Fatalf("non-deterministic build: %d vs %d entries", again.Len(), orig.Len())
	}
}

func TestEvolvedBuildAtZeroIsIdentity(t *testing.T) {
	// A horizon-zero evolved build must be byte-identical to the base
	// build: LookupAt(·, evo, 0) ≡ Lookup and BlockMajorityCityAt(·, 0)
	// ≡ BlockMajorityCity, so even the hint pipeline's sequential rng
	// consumption is unchanged. The longitudinal series leans on this to
	// share epoch 0 with the point-in-time experiments.
	w, _ := setup(t)
	dict := hints.NewDictionary(w.Gaz)
	in := Inputs{
		World:   w,
		Feed:    BuildFeed(w, DefaultFeedConfig()),
		Zone:    rdns.Synthesize(w, dict, rdns.DefaultConfig()),
		Decoder: hints.NewDecoder(dict),
	}
	evo := w.Evolve(rand.New(rand.NewSource(42)), netsim.DefaultEvolutionParams())
	for _, p := range []Params{IP2LocationLite(), NetAcuity()} {
		base, err := Build(in, p)
		if err != nil {
			t.Fatal(err)
		}
		inEvo := in
		inEvo.Evo = evo
		evolved, err := Build(inEvo, p)
		if err != nil {
			t.Fatal(err)
		}
		var b1, b2 bytes.Buffer
		if err := dbfile.Write(&b1, base); err != nil {
			t.Fatal(err)
		}
		if err := dbfile.Write(&b2, evolved); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Errorf("%s: evolved build at month 0 differs from the base build", p.Name)
		}
	}
}

func TestEvolvedBuildAtHorizonDiffers(t *testing.T) {
	w, _ := setup(t)
	dict := hints.NewDictionary(w.Gaz)
	in := Inputs{
		World:   w,
		Feed:    BuildFeed(w, DefaultFeedConfig()),
		Zone:    rdns.Synthesize(w, dict, rdns.DefaultConfig()),
		Decoder: hints.NewDecoder(dict),
		Evo:     w.Evolve(rand.New(rand.NewSource(42)), netsim.DefaultEvolutionParams()),
	}
	base, err := Build(in, NetAcuity())
	if err != nil {
		t.Fatal(err)
	}
	in.AsOfMonths = 16
	later, err := Build(in, NetAcuity())
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := dbfile.Write(&b1, base); err != nil {
		t.Fatal(err)
	}
	if err := dbfile.Write(&b2, later); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("16 months of churn left the NetAcuity build untouched")
	}
}

func TestEvolvedBuildRequiresTimeline(t *testing.T) {
	w, _ := setup(t)
	in := Inputs{World: w, Feed: BuildFeed(w, DefaultFeedConfig()), AsOfMonths: 10}
	if _, err := Build(in, IP2LocationLite()); err == nil {
		t.Error("AsOfMonths without Evo must fail")
	}
}
