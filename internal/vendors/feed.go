// Package vendors builds the four simulated geolocation databases the
// paper evaluates. Each builder consumes the same registration-data feed
// (the common upstream source the paper suspects behind the databases'
// correlated errors, §5.1/§5.2.2) plus vendor-specific evidence:
// measurement-derived block corrections, SWIP-style per-block
// registration cities, and — for NetAcuity only — DNS hostname hints.
//
// The builders never read interface truth directly; everything flows
// through the feeds, so vendor accuracy is an *outcome* of the modelled
// pipelines, not an input parameter.
package vendors

import (
	"math/rand"
	"sort"

	"routergeo/internal/gazetteer"
	"routergeo/internal/geo"
	"routergeo/internal/ipx"
	"routergeo/internal/netsim"
	"routergeo/internal/registry"
)

// SWIPRecord is a per-/24 reassignment entry in the registration feed:
// the city the block's holder filed for it. Operators frequently register
// infrastructure blocks at headquarters rather than at the deployment
// site, which is what poisons block-level city records (§5.2.3).
type SWIPRecord struct {
	Country string
	City    string
}

// Feed is the registration-data input shared by all vendors.
type Feed struct {
	// Allocations in address order, with the registering org resolved.
	Allocations []AllocationInfo
	// SWIP maps /24 base addresses to reassignment entries.
	SWIP map[ipx.Addr]SWIPRecord
	// Blocks lists the /24 base addresses that contain interfaces, in
	// address order, grouped under their covering allocation index.
	BlocksOf map[int][]ipx.Addr
}

// AllocationInfo pairs a registry allocation with its org record.
type AllocationInfo struct {
	Alloc registry.Allocation
	Org   registry.Org
}

// FeedConfig tunes feed construction.
type FeedConfig struct {
	// SWIPPresence is the probability a routed /24 has a SWIP entry,
	// keyed by the allocation's RIR. ARIN's SWIP culture makes per-block
	// entries far more common there.
	SWIPPresence map[geo.RIR]float64
	// SWIPAtHQ is the probability a SWIP entry names the org's HQ city
	// rather than the block's true deployment city.
	SWIPAtHQ float64
	Seed     int64
}

// DefaultFeedConfig mirrors the registration-data landscape the paper's
// ARIN findings imply.
func DefaultFeedConfig() FeedConfig {
	return FeedConfig{
		SWIPPresence: map[geo.RIR]float64{
			geo.ARIN:    0.85,
			geo.RIPENCC: 0.25,
			geo.APNIC:   0.25,
			geo.LACNIC:  0.30,
			geo.AFRINIC: 0.30,
		},
		SWIPAtHQ: 0.72,
		Seed:     1,
	}
}

// BuildFeed derives the registration feed from the world's registry.
func BuildFeed(w *netsim.World, cfg FeedConfig) *Feed {
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Feed{
		SWIP:     make(map[ipx.Addr]SWIPRecord),
		BlocksOf: make(map[int][]ipx.Addr),
	}
	allocIdx := make(map[registry.ASN][]int)
	for _, a := range w.Reg.Allocations() {
		org, _ := w.Reg.Org(a.Org)
		f.Allocations = append(f.Allocations, AllocationInfo{Alloc: a, Org: org})
		allocIdx[a.ASN] = append(allocIdx[a.ASN], len(f.Allocations)-1)
	}

	// Group routed /24s under allocations, in address order.
	blocks := w.RoutedSlash24s()
	sortPrefixes(blocks)
	for _, blk := range blocks {
		ai := -1
		for _, idx := range allocIdxForAddr(f, allocIdx, w, blk.Base) {
			if f.Allocations[idx].Alloc.Prefix.Contains(blk.Base) {
				ai = idx
				break
			}
		}
		if ai < 0 {
			continue
		}
		f.BlocksOf[ai] = append(f.BlocksOf[ai], blk.Base)

		info := f.Allocations[ai]
		if rng.Float64() >= cfg.SWIPPresence[info.Alloc.RIR] {
			continue
		}
		rec := SWIPRecord{Country: info.Org.HQCountry, City: info.Org.HQCity}
		if rng.Float64() >= cfg.SWIPAtHQ {
			if city, ok := w.BlockMajorityCity(blk.Base); ok {
				rec = SWIPRecord{Country: city.Country, City: city.Name}
			}
		}
		f.SWIP[blk.Base] = rec
	}
	return f
}

func allocIdxForAddr(f *Feed, byASN map[registry.ASN][]int, w *netsim.World, a ipx.Addr) []int {
	alloc, _, ok := w.Reg.Whois(a)
	if !ok {
		return nil
	}
	return byASN[alloc.ASN]
}

func sortPrefixes(ps []ipx.Prefix) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Base < ps[j].Base })
}

// neighborCity returns a plausible wrong answer for a measurement-derived
// correction: half the time the nearest other city (metro confusion),
// otherwise a random city in the same country.
func neighborCity(g *gazetteer.Gazetteer, truth gazetteer.City, rng *rand.Rand) gazetteer.City {
	if rng.Float64() < 0.5 {
		// Nearest other city: probe just outside the true city.
		probe := truth.Coord.Offset(45, rng.Float64()*360)
		c, _ := g.Nearest(probe)
		if c.Name != truth.Name || c.Country != truth.Country {
			return c
		}
	}
	for tries := 0; tries < 8; tries++ {
		c := g.SampleCity(rng, truth.Country)
		if c.Name != truth.Name {
			return c
		}
	}
	return g.SampleCity(rng, "")
}
