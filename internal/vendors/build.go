package vendors

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"routergeo/internal/gazetteer"
	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/hints"
	"routergeo/internal/ipx"
	"routergeo/internal/netsim"
	"routergeo/internal/rdns"
)

// Params is one vendor's pipeline configuration. The four presets below
// (IP2LocationLite, MaxMindPaid, MaxMindGeoLite, NetAcuity) encode the
// behavioural differences the paper observes; everything else is shared.
type Params struct {
	Name string
	// CoordFamily keys the vendor's city-coordinate generator. The two
	// MaxMind products share a family, which is why 68% of their answers
	// carry *identical* coordinates in Figure 1.
	CoordFamily string
	Seed        int64

	// AllocCoverage is the probability an allocation gets any record at
	// all (MaxMind's country coverage is ~99.3%, not 100%).
	AllocCoverage float64
	// RegistryCityForAll emits the org HQ city for every record
	// (IP2Location's and NetAcuity's near-total city coverage).
	RegistryCityForAll bool
	// StubCityProb emits a city for small (/22 and longer) allocations
	// even when RegistryCityForAll is false: single-site orgs'
	// registration city is usually right, and MaxMind keeps those when it
	// has enough confidence.
	StubCityProb float64

	// UseSWIP consumes per-/24 SWIP entries; SWIPTrust is the probability
	// a present entry is emitted as a city record.
	UseSWIP   bool
	SWIPTrust float64

	// CorrectionRate is the probability the vendor's measurement pipeline
	// produced a city fix for a routed /24; CorrectionCityAcc is the
	// probability that fix names the block's true majority city.
	// CorrectionTransitFactor discounts the rate for blocks announced by
	// transit ASes: latency-based pipelines resolve eyeball blocks far
	// better than backbone interfaces, which is one reason every database
	// does worse on routers than on end hosts (§8).
	CorrectionRate          float64
	CorrectionCityAcc       float64
	CorrectionTransitFactor float64

	// CoordStaleProb is the per-city probability that this *product*
	// ships an outdated coordinate for the city (a few km off the current
	// one). It models stale snapshots: the free GeoLite lags the paid
	// product, which is why their coordinates are not always identical
	// (Figure 1: 68% identical, most of the rest nearby).
	CoordStaleProb float64

	// UseHints enables the rDNS pipeline (NetAcuity only, per §5.2.4);
	// HintDecodeRate is the chance a hinted hostname is in the vendor's
	// rule set and decoded into a per-address record.
	UseHints       bool
	HintDecodeRate float64

	// City-coordinate placement: vendors do not copy GeoNames verbatim.
	// Offsets stay small (the paper found >99% of vendor city coordinates
	// within 40 km of GeoNames, §4) with rare outliers.
	CityCoordJitterKm    float64
	CityCoordOutlierProb float64
	CityCoordOutlierKm   float64
}

// IP2LocationLite: registration data for everything — near-perfect
// city-level coverage, lowest accuracy.
func IP2LocationLite() Params {
	return Params{
		Name: "IP2Location-Lite", CoordFamily: "ip2location", Seed: 11,
		AllocCoverage: 1.0, RegistryCityForAll: true,
		UseSWIP: true, SWIPTrust: 0.9,
		CorrectionRate: 0.06, CorrectionCityAcc: 0.75, CorrectionTransitFactor: 0.5,
		CityCoordJitterKm: 4, CityCoordOutlierProb: 0.004, CityCoordOutlierKm: 80,
	}
}

// MaxMindPaid: confidence-gated city records — corrections plus SWIP in
// ARIN, country-only elsewhere.
func MaxMindPaid() Params {
	return Params{
		Name: "MaxMind-Paid", CoordFamily: "maxmind", Seed: 12,
		AllocCoverage: 0.96, StubCityProb: 0.72,
		UseSWIP: true, SWIPTrust: 0.45,
		CorrectionRate: 0.20, CorrectionCityAcc: 0.90, CorrectionTransitFactor: 0.45,
		CityCoordJitterKm: 3, CityCoordOutlierProb: 0.003, CityCoordOutlierKm: 70,
	}
}

// MaxMindGeoLite: the free variant — same pipeline, fewer and staler
// corrections, less SWIP trust.
func MaxMindGeoLite() Params {
	return Params{
		Name: "MaxMind-GeoLite", CoordFamily: "maxmind", Seed: 13,
		AllocCoverage: 0.96, StubCityProb: 0.55,
		UseSWIP: true, SWIPTrust: 0.20,
		CorrectionRate: 0.09, CorrectionCityAcc: 0.90, CorrectionTransitFactor: 0.45,
		CoordStaleProb:    0.30,
		CityCoordJitterKm: 3, CityCoordOutlierProb: 0.003, CityCoordOutlierKm: 70,
	}
}

// NetAcuity: full coverage, the widest measurement pipeline, and the only
// vendor consuming DNS hints (the paper's §5.2.4 inference).
func NetAcuity() Params {
	return Params{
		Name: "NetAcuity", CoordFamily: "netacuity", Seed: 14,
		AllocCoverage: 1.0, RegistryCityForAll: true,
		UseSWIP: true, SWIPTrust: 0.5,
		CorrectionRate: 0.45, CorrectionCityAcc: 0.92,
		UseHints: true, HintDecodeRate: 0.62,
		CityCoordJitterKm: 3, CityCoordOutlierProb: 0.002, CityCoordOutlierKm: 60,
	}
}

// AllParams returns the four vendor configurations in the paper's
// presentation order.
func AllParams() []Params {
	return []Params{IP2LocationLite(), MaxMindGeoLite(), MaxMindPaid(), NetAcuity()}
}

// Inputs bundles what a vendor pipeline may consume.
type Inputs struct {
	World *netsim.World
	Feed  *Feed
	// Zone and Decoder feed the hint pipeline; only consulted when
	// Params.UseHints is set.
	Zone    *rdns.Zone
	Decoder *hints.Decoder

	// Evo and AsOfMonths rebuild the vendor as of a churn horizon: the
	// measurement pipeline observes each block's majority city after the
	// timeline's moves, and the hint pipeline reads the evolved zone
	// (renames, stale hints, lost records). A horizon of zero with a
	// non-nil Evo is byte-identical to the un-evolved build — LookupAt
	// and BlockMajorityCityAt are exact identities at month 0 — which is
	// what lets the longitudinal series share epoch 0 with every other
	// experiment. AsOfMonths != 0 requires Evo.
	Evo        *netsim.Evolution
	AsOfMonths float64
}

// Build runs one vendor pipeline and returns its database.
func Build(in Inputs, p Params) (*geodb.DB, error) {
	if in.World == nil || in.Feed == nil {
		return nil, fmt.Errorf("vendors: %s: missing world or feed", p.Name)
	}
	if p.UseHints && (in.Zone == nil || in.Decoder == nil) {
		return nil, fmt.Errorf("vendors: %s: hint pipeline requires zone and decoder", p.Name)
	}
	if in.AsOfMonths != 0 && in.Evo == nil {
		return nil, fmt.Errorf("vendors: %s: AsOfMonths=%v requires an evolution timeline", p.Name, in.AsOfMonths)
	}
	majorityCity := in.World.BlockMajorityCity
	lookupPTR := in.Zone.Lookup
	if in.Evo != nil {
		majorityCity = func(base ipx.Addr) (gazetteer.City, bool) {
			return in.Evo.BlockMajorityCityAt(base, in.AsOfMonths)
		}
		lookupPTR = func(id netsim.IfaceID) (string, bool) {
			return in.Zone.LookupAt(id, in.Evo, in.AsOfMonths)
		}
	}
	rng := rand.New(rand.NewSource(p.Seed))
	coords := newCoordTable(p)
	b := geodb.NewBuilder(p.Name)

	// Evidence draws are keyed by (coord family, purpose, block), not by a
	// sequential RNG: products of one vendor family then share their
	// measurement corrections and SWIP decisions, with a lower-rate product
	// holding a strict subset. That reproduces the paper's MaxMind pair
	// behaviour — 99.6% country agreement and 68% identical coordinates —
	// without any cross-product coordination in the pipeline itself.
	draw := func(purpose string, base ipx.Addr) float64 {
		h := fnv.New64a()
		h.Write([]byte(p.CoordFamily))
		h.Write([]byte{0})
		h.Write([]byte(purpose))
		h.Write([]byte{0})
		var buf [4]byte
		buf[0], buf[1], buf[2], buf[3] = byte(base>>24), byte(base>>16), byte(base>>8), byte(base)
		h.Write(buf[:])
		return float64(h.Sum64()%1000000) / 1000000
	}
	subRNG := func(purpose string, base ipx.Addr) *rand.Rand {
		h := fnv.New64a()
		h.Write([]byte(p.CoordFamily))
		h.Write([]byte{1})
		h.Write([]byte(purpose))
		var buf [4]byte
		buf[0], buf[1], buf[2], buf[3] = byte(base>>24), byte(base>>16), byte(base>>8), byte(base)
		h.Write(buf[:])
		return rand.New(rand.NewSource(int64(h.Sum64())))
	}

	const (
		layerBase = iota
		layerSWIP
		layerCorrection
		layerHint
	)

	// Group the world's interfaces by /24 once for the hint pipeline.
	var ifacesByBlock map[ipx.Addr][]netsim.IfaceID
	if p.UseHints {
		ifacesByBlock = make(map[ipx.Addr][]netsim.IfaceID)
		for i := range in.World.Interfaces {
			base := in.World.Interfaces[i].Addr.Slash24().Base
			ifacesByBlock[base] = append(ifacesByBlock[base], netsim.IfaceID(i))
		}
	}

	for ai, info := range in.Feed.Allocations {
		if draw("alloc", info.Alloc.Prefix.Base) >= p.AllocCoverage {
			continue
		}
		// Base record: registration country, optionally registration city.
		base := geodb.Record{
			Country:    info.Org.HQCountry,
			Resolution: geodb.ResolutionCountry,
			BlockBits:  info.Alloc.Prefix.Bits,
		}
		registryCity := p.RegistryCityForAll ||
			(info.Alloc.Prefix.Bits >= 22 && draw("stubcity", info.Alloc.Prefix.Base) < p.StubCityProb)
		if registryCity {
			if c, ok := in.World.Gaz.City(info.Org.HQCountry, info.Org.HQCity); ok {
				base.City = c.Name
				base.Coord = coords.coordFor(c)
				base.Resolution = geodb.ResolutionCity
			}
		}
		b.AddPrefix(layerBase, info.Alloc.Prefix, base)

		for _, blkBase := range in.Feed.BlocksOf[ai] {
			blk := ipx.Prefix{Base: blkBase, Bits: 24}

			if p.UseSWIP {
				if swip, ok := in.Feed.SWIP[blkBase]; ok && draw("swip", blkBase) < p.SWIPTrust {
					if c, ok := in.World.Gaz.City(swip.Country, swip.City); ok {
						b.AddPrefix(layerSWIP, blk, geodb.Record{
							Country: c.Country, City: c.Name,
							Coord: coords.coordFor(c), Resolution: geodb.ResolutionCity,
							BlockBits: 24,
						})
					}
				}
			}

			corrRate := p.CorrectionRate
			if p.CorrectionTransitFactor > 0 && in.World.Reg.IsTransit(info.Alloc.ASN) {
				corrRate *= p.CorrectionTransitFactor
			}
			if draw("corr", blkBase) < corrRate {
				if truth, ok := majorityCity(blkBase); ok {
					city := truth
					if draw("corracc", blkBase) >= p.CorrectionCityAcc {
						city = neighborCity(in.World.Gaz, truth, subRNG("wrongcity", blkBase))
					}
					b.AddPrefix(layerCorrection, blk, geodb.Record{
						Country: city.Country, City: city.Name,
						Coord: coords.coordFor(city), Resolution: geodb.ResolutionCity,
						BlockBits: 24,
					})
				}
			}

			if p.UseHints {
				for _, id := range ifacesByBlock[blkBase] {
					name, ok := lookupPTR(id)
					if !ok || rng.Float64() >= p.HintDecodeRate {
						continue
					}
					city, _, decoded := in.Decoder.Decode(name)
					if !decoded {
						continue
					}
					a := in.World.Interfaces[id].Addr
					b.Add(layerHint, ipx.Range{Lo: a, Hi: a}, geodb.Record{
						Country: city.Country, City: city.Name,
						Coord: coords.coordFor(city), Resolution: geodb.ResolutionCity,
						BlockBits: 32,
					})
				}
			}
		}
	}
	return b.Build()
}

// BuildAll runs every vendor pipeline.
func BuildAll(in Inputs) ([]*geodb.DB, error) {
	var out []*geodb.DB
	for _, p := range AllParams() {
		db, err := Build(in, p)
		if err != nil {
			return nil, err
		}
		out = append(out, db)
	}
	return out, nil
}

// coordTable assigns each (vendor family, city) pair a stable coordinate:
// the gazetteer position plus a small deterministic offset, with rare
// large outliers. Families, not vendors, key the table so MaxMind's two
// products answer with identical coordinates (Figure 1's 68%).
type coordTable struct {
	p     Params
	cache map[string]geo.Coordinate
}

func newCoordTable(p Params) *coordTable {
	return &coordTable{p: p, cache: make(map[string]geo.Coordinate)}
}

func (t *coordTable) coordFor(c gazetteer.City) geo.Coordinate {
	key := c.Country + "/" + c.Name
	if v, ok := t.cache[key]; ok {
		return v
	}
	h := fnv.New64a()
	h.Write([]byte(t.p.CoordFamily))
	h.Write([]byte{0})
	h.Write([]byte(key))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))

	dist := rng.Float64() * t.p.CityCoordJitterKm
	if rng.Float64() < t.p.CityCoordOutlierProb {
		dist = 40 + rng.Float64()*t.p.CityCoordOutlierKm
	}
	v := c.Coord.Offset(dist, rng.Float64()*360)

	// Product-specific staleness: salted by the product name, not the
	// family, so a stale free product drifts from its paid sibling.
	if t.p.CoordStaleProb > 0 {
		hs := fnv.New64a()
		hs.Write([]byte(t.p.Name))
		hs.Write([]byte{2})
		hs.Write([]byte(key))
		srng := rand.New(rand.NewSource(int64(hs.Sum64())))
		if srng.Float64() < t.p.CoordStaleProb {
			v = v.Offset(6+srng.Float64()*22, srng.Float64()*360)
		}
	}
	t.cache[key] = v
	return v
}
