package ark

import (
	"context"
	"testing"

	"routergeo/internal/netsim"
)

var (
	cachedWorld *netsim.World
	cachedColl  *Collection
)

func testSetup(t *testing.T) (*netsim.World, *Collection) {
	t.Helper()
	if cachedWorld == nil {
		cfg := netsim.DefaultConfig()
		cfg.Seed = 7
		cfg.ASes = 200
		w, err := netsim.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cachedWorld = w
		cachedColl = Collect(context.Background(), w, DefaultConfig())
	}
	return cachedWorld, cachedColl
}

func TestCollectCoversSubstantialFraction(t *testing.T) {
	w, c := testSetup(t)
	frac := float64(len(c.Interfaces)) / float64(w.NumInterfaces())
	// Traceroute reveals ingress interfaces along shortest paths only, so
	// coverage is partial (as with the real Ark), but a sweep across every
	// /24 from 60 monitors must see a large share of the core.
	if frac < 0.22 {
		t.Errorf("Ark sweep observed only %.1f%% of interfaces", 100*frac)
	}
	if frac >= 1.0 {
		t.Errorf("Ark sweep observed every interface; ingress bias is missing")
	}
}

func TestCollectedInterfacesAreDeduplicated(t *testing.T) {
	w, c := testSetup(t)
	seen := map[netsim.IfaceID]bool{}
	for _, id := range c.Interfaces {
		if seen[id] {
			t.Fatalf("interface %d appears twice", id)
		}
		seen[id] = true
		if !c.Contains(w.Interfaces[id].Addr) {
			t.Fatalf("Contains misses a collected address")
		}
	}
}

func TestCollectedSortedByAddress(t *testing.T) {
	w, c := testSetup(t)
	for i := 1; i < len(c.Interfaces); i++ {
		if w.Interfaces[c.Interfaces[i-1]].Addr >= w.Interfaces[c.Interfaces[i]].Addr {
			t.Fatal("interfaces not sorted by address")
		}
	}
}

func TestTraceCount(t *testing.T) {
	w, c := testSetup(t)
	cfg := DefaultConfig()
	want := len(w.RoutedSlash24s()) * cfg.MonitorsPerTarget * cfg.Cycles
	if c.Traces != want {
		t.Errorf("Traces = %d, want %d", c.Traces, want)
	}
}

func TestAliasSetsGroupByRouter(t *testing.T) {
	w, c := testSetup(t)
	sets := AliasSets(w, c)
	total := 0
	for r, ifaces := range sets {
		total += len(ifaces)
		for _, id := range ifaces {
			if w.Interfaces[id].Router != r {
				t.Fatalf("interface %d grouped under wrong router", id)
			}
		}
	}
	if total != len(c.Interfaces) {
		t.Errorf("alias sets cover %d interfaces, collection has %d", total, len(c.Interfaces))
	}
	// Interfaces-per-router of the *observed* set should resemble the
	// paper's 1,638K/485K ≈ 3.4 (we accept a broad band).
	ratio := float64(total) / float64(len(sets))
	if ratio < 1.2 || ratio > 6 {
		t.Errorf("observed alias ratio = %.2f, want 1.2-6", ratio)
	}
}

func TestMonitorsPlacedAndAttached(t *testing.T) {
	w, c := testSetup(t)
	if len(c.Monitors) != DefaultConfig().Monitors {
		t.Fatalf("placed %d monitors", len(c.Monitors))
	}
	names := map[string]bool{}
	for _, m := range c.Monitors {
		if names[m.Name] {
			t.Errorf("duplicate monitor %s", m.Name)
		}
		names[m.Name] = true
		if int(m.Router) >= w.NumRouters() {
			t.Errorf("monitor %s attached to invalid router", m.Name)
		}
	}
}

func TestCollectDeterministic(t *testing.T) {
	w, _ := testSetup(t)
	a := Collect(context.Background(), w, Config{Monitors: 10, MonitorsPerTarget: 1, Seed: 3})
	b := Collect(context.Background(), w, Config{Monitors: 10, MonitorsPerTarget: 1, Seed: 3})
	if len(a.Interfaces) != len(b.Interfaces) {
		t.Fatalf("non-deterministic: %d vs %d interfaces", len(a.Interfaces), len(b.Interfaces))
	}
	for i := range a.Interfaces {
		if a.Interfaces[i] != b.Interfaces[i] {
			t.Fatal("non-deterministic interface sets")
		}
	}
}

func TestSmallerSweepSeesLess(t *testing.T) {
	w, c := testSetup(t)
	small := Collect(context.Background(), w, Config{Monitors: 3, MonitorsPerTarget: 1, Seed: 5})
	if len(small.Interfaces) >= len(c.Interfaces) {
		t.Errorf("3-monitor sweep (%d) saw at least as much as 60-monitor sweep (%d)",
			len(small.Interfaces), len(c.Interfaces))
	}
}
