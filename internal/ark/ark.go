// Package ark reproduces the CAIDA Ark topology pipeline the paper's
// Ark-topo-router dataset comes from (§2.1): a fleet of monitors spread
// around the world runs traceroutes toward randomly selected addresses in
// every routed /24, and the union of intermediate-hop addresses is the
// router-interface dataset. An ITDK-style alias-resolution step groups the
// collected interfaces into routers to estimate the router count (the
// paper's 1,638K interfaces ≈ 485K routers).
package ark

import (
	"context"
	"math/rand"
	"sort"

	"routergeo/internal/gazetteer"
	"routergeo/internal/ipx"
	"routergeo/internal/netsim"
	"routergeo/internal/obs"
	"routergeo/internal/traceroute"
)

// Config parameterizes a collection sweep.
type Config struct {
	// Monitors is the number of vantage points (Ark ran ~107 in 2016; the
	// default world uses 60, plenty for full edge coverage of a world three
	// orders of magnitude smaller than the Internet).
	Monitors int
	// MonitorsPerTarget is how many distinct monitors probe each routed
	// /24 during one cycle.
	MonitorsPerTarget int
	// Cycles is how many probing cycles the sweep runs (the paper uses one
	// week of daily team-probing cycles). Each cycle re-probes every /24
	// from freshly drawn monitors toward a freshly drawn address.
	Cycles int
	// Seed drives monitor placement and target selection.
	Seed int64
	// Sink, when non-nil, receives every raw trace as it is collected —
	// the hook cmd/arkcollect uses to archive the sweep in the wartslite
	// container, the way real Ark stores warts files.
	Sink func(monitor string, dst ipx.Addr, hops []traceroute.Hop)
}

// DefaultConfig returns the sweep parameters the experiments use.
func DefaultConfig() Config {
	return Config{Monitors: 60, MonitorsPerTarget: 3, Cycles: 7, Seed: 1}
}

// Monitor is one Ark vantage point. Monitors sit in well-connected
// facilities, so their access delay is negligible and they are attached
// directly to a nearby router.
type Monitor struct {
	Name   string
	City   gazetteer.City
	Router netsim.RouterID
}

// Collection is the result of one topology sweep.
type Collection struct {
	Monitors []Monitor
	// Interfaces is the deduplicated, address-sorted set of router
	// interfaces observed as intermediate or terminal hops — the
	// reproduction's Ark-topo-router dataset.
	Interfaces []netsim.IfaceID
	// Traces is the number of traceroutes run.
	Traces int

	addrs map[ipx.Addr]bool
}

// Collect runs one full sweep over every routed /24 in the world.
func Collect(ctx context.Context, w *netsim.World, cfg Config) *Collection {
	_, sp := obs.Start(ctx, "ark.collect")
	defer sp.End()
	rng := rand.New(rand.NewSource(cfg.Seed))
	eng := traceroute.New(w)

	monitors := placeMonitors(w, rng, cfg.Monitors)
	trees := make([]*traceroute.Tree, len(monitors))
	for i, m := range monitors {
		trees[i] = eng.BuildTree(m.Router)
	}

	c := &Collection{Monitors: monitors, addrs: make(map[ipx.Addr]bool)}
	seen := make(map[netsim.IfaceID]bool)

	// RoutedSlash24s is already in ascending address order, so the seeded
	// per-block sampling below replays identically run to run.
	blocks := w.RoutedSlash24s()

	cycles := cfg.Cycles
	if cycles < 1 {
		cycles = 1
	}
	sp.SetAttr("monitors", len(monitors))
	sp.SetAttr("cycles", cycles)
	prog := obs.NewProgress("ark.collect", int64(cycles)*int64(len(blocks)))
	defer prog.Finish()
	for cycle := 0; cycle < cycles; cycle++ {
		for _, blk := range blocks {
			prog.Add(1)
			// Ark picks a random address inside each /24.
			target := blk.Base + ipx.Addr(1+rng.Intn(254))
			dst, ok := w.DestRouterFor(target)
			if !ok {
				continue
			}
			for k := 0; k < cfg.MonitorsPerTarget; k++ {
				mi := rng.Intn(len(monitors))
				hops := eng.Trace(rng, trees[mi], dst, 0)
				c.Traces++
				if cfg.Sink != nil {
					cfg.Sink(monitors[mi].Name, target, hops)
				}
				for _, h := range hops {
					if h.Iface < 0 {
						continue
					}
					if !seen[h.Iface] {
						seen[h.Iface] = true
						c.Interfaces = append(c.Interfaces, h.Iface)
						c.addrs[w.Interfaces[h.Iface].Addr] = true
					}
				}
			}
		}
	}
	sort.Slice(c.Interfaces, func(i, j int) bool {
		return w.Interfaces[c.Interfaces[i]].Addr < w.Interfaces[c.Interfaces[j]].Addr
	})
	sp.SetItems(int64(len(c.Interfaces)))
	sp.SetAttr("traces", c.Traces)
	return c
}

// Contains reports whether an address was observed during the sweep.
func (c *Collection) Contains(a ipx.Addr) bool { return c.addrs[a] }

// AliasSets groups the collected interfaces by router, as ITDK alias
// resolution does, returning the per-router interface groups (routers with
// at least one observed interface).
func AliasSets(w *netsim.World, c *Collection) map[netsim.RouterID][]netsim.IfaceID {
	out := make(map[netsim.RouterID][]netsim.IfaceID)
	for _, id := range c.Interfaces {
		r := w.Interfaces[id].Router
		out[r] = append(out[r], id)
	}
	return out
}

// placeMonitors spreads vantage points over the gazetteer's cities
// (population-weighted, deduplicated) and attaches each to the nearest
// router in its country.
func placeMonitors(w *netsim.World, rng *rand.Rand, n int) []Monitor {
	var out []Monitor
	used := map[string]bool{}
	for len(out) < n {
		city := w.Gaz.SampleCity(rng, "")
		key := city.Country + "/" + city.Name
		if used[key] {
			continue
		}
		used[key] = true
		r, ok := w.NearestRouter(city.Coord, city.Country)
		if !ok {
			continue
		}
		out = append(out, Monitor{
			Name:   "ark-" + key,
			City:   city,
			Router: r,
		})
	}
	return out
}
