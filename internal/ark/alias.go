package ark

import (
	"sort"

	"routergeo/internal/ark/wartslite"
	"routergeo/internal/ipx"
	"routergeo/internal/netsim"
)

// AliasProber groups interface addresses into routers the way Mercator
// (and the ITDK's iffinder stage) does: send a UDP probe to a high,
// closed port on each address; the ICMP port-unreachable reply is sourced
// from the router's *canonical* interface address, so two probed
// addresses answering with the same source address are aliases.
//
// The simulation keeps the measurement semantics: Probe answers with the
// router's first interface address, which is exactly the shared-source
// behaviour the technique exploits. The inference itself never touches
// router identities.
type AliasProber struct {
	w *netsim.World
}

// NewAliasProber returns a prober over the world.
func NewAliasProber(w *netsim.World) *AliasProber {
	return &AliasProber{w: w}
}

// Probe sends one alias probe to addr and returns the source address of
// the reply. ok is false when the address does not answer (not a router
// interface in this world).
func (p *AliasProber) Probe(addr ipx.Addr) (reply ipx.Addr, ok bool) {
	id, found := p.w.IfaceByAddr(addr)
	if !found {
		return 0, false
	}
	r := p.w.RouterOf(id)
	// Routers source ICMP errors from their canonical (first) interface.
	return p.w.Interfaces[r.Ifaces[0]].Addr, true
}

// AliasSet is one inferred router: the canonical reply address and every
// probed address that answered with it.
type AliasSet struct {
	Canonical ipx.Addr
	Members   []ipx.Addr
}

// ResolveAliases probes every address of a collection and groups them by
// reply source, returning the inferred routers sorted by canonical
// address. Unresponsive addresses are returned separately (real alias
// resolution never reaches every interface either).
func ResolveAliases(w *netsim.World, c *Collection) (sets []AliasSet, unresponsive []ipx.Addr) {
	p := NewAliasProber(w)
	byReply := map[ipx.Addr][]ipx.Addr{}
	for _, id := range c.Interfaces {
		addr := w.Interfaces[id].Addr
		reply, ok := p.Probe(addr)
		if !ok {
			unresponsive = append(unresponsive, addr)
			continue
		}
		byReply[reply] = append(byReply[reply], addr)
	}
	for canonical, members := range byReply {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		sets = append(sets, AliasSet{Canonical: canonical, Members: members})
	}
	sort.Slice(sets, func(i, j int) bool { return sets[i].Canonical < sets[j].Canonical })
	return sets, unresponsive
}

// ExtractFromTraces rebuilds an interface collection from archived traces
// — the paper's actual workflow: its Ark-topo-router dataset was extracted
// from one week of *stored* topology traces, not from a live collector.
// Addresses that do not correspond to interfaces of this world are
// ignored (a real extraction would keep them; a replay against the wrong
// world should not invent interfaces).
func ExtractFromTraces(w *netsim.World, traces []wartslite.Trace) *Collection {
	c := &Collection{addrs: make(map[ipx.Addr]bool)}
	seen := map[netsim.IfaceID]bool{}
	monitors := map[string]bool{}
	for _, t := range traces {
		c.Traces++
		if !monitors[t.Monitor] {
			monitors[t.Monitor] = true
			c.Monitors = append(c.Monitors, Monitor{Name: t.Monitor})
		}
		for _, h := range t.Hops {
			id, ok := w.IfaceByAddr(h.Addr)
			if !ok || seen[id] {
				continue
			}
			seen[id] = true
			c.Interfaces = append(c.Interfaces, id)
			c.addrs[h.Addr] = true
		}
	}
	sort.Slice(c.Interfaces, func(i, j int) bool {
		return w.Interfaces[c.Interfaces[i]].Addr < w.Interfaces[c.Interfaces[j]].Addr
	})
	sort.Slice(c.Monitors, func(i, j int) bool { return c.Monitors[i].Name < c.Monitors[j].Name })
	return c
}
