package wartslite

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"routergeo/internal/ipx"
)

func sampleTraces(n int, seed int64) []Trace {
	rng := rand.New(rand.NewSource(seed))
	monitors := []string{"ark-us-nyc", "ark-de-fra", "ark-jp-tyo"}
	out := make([]Trace, 0, n)
	for i := 0; i < n; i++ {
		t := Trace{
			Monitor: monitors[rng.Intn(len(monitors))],
			Dst:     ipx.Addr(rng.Uint32()),
		}
		for h := 0; h < 1+rng.Intn(12); h++ {
			t.Hops = append(t.Hops, Hop{
				Addr:  ipx.Addr(rng.Uint32()),
				RTTMs: rng.Float64() * 300,
			})
		}
		out = append(out, t)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	traces := sampleTraces(200, 1)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, []string{"ark-us-nyc", "ark-de-fra", "ark-jp-tyo"})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range traces {
		if err := w.WriteTrace(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(traces) {
		t.Fatalf("read %d traces, wrote %d", len(back), len(traces))
	}
	for i := range traces {
		if back[i].Monitor != traces[i].Monitor || back[i].Dst != traces[i].Dst ||
			len(back[i].Hops) != len(traces[i].Hops) {
			t.Fatalf("trace %d mismatched: %+v vs %+v", i, back[i], traces[i])
		}
		for j := range traces[i].Hops {
			if back[i].Hops[j].Addr != traces[i].Hops[j].Addr {
				t.Fatalf("trace %d hop %d address mismatch", i, j)
			}
			// RTTs travel as float32.
			if d := back[i].Hops[j].RTTMs - traces[i].Hops[j].RTTMs; d > 0.001 || d < -0.001 {
				t.Fatalf("trace %d hop %d RTT drifted by %v", i, j, d)
			}
		}
	}
}

func TestMonitorTable(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, []string{"a", "a"}); err == nil {
		t.Error("duplicate monitors accepted")
	}
	buf.Reset()
	w, err := NewWriter(&buf, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTrace(Trace{Monitor: "c", Dst: 1}); err == nil {
		t.Error("unknown monitor accepted")
	}
	if err := w.WriteTrace(Trace{Monitor: "b", Dst: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Monitors()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Monitors = %v", got)
	}
}

func TestTruncationDetected(t *testing.T) {
	traces := sampleTraces(5, 2)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, []string{"ark-us-nyc", "ark-de-fra", "ark-jp-tyo"})
	for _, tr := range traces {
		if err := w.WriteTrace(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Chop mid-record: everything but the last 3 bytes.
	if _, err := ReadAll(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Error("truncated stream read without error")
	}
}

func TestRejectsGarbage(t *testing.T) {
	for name, data := range map[string][]byte{
		"empty":     {},
		"bad magic": []byte("XXXX\x00\x00"),
		"cut table": []byte("WLT1\x02\x00\x05ab"),
	} {
		if _, err := ReadAll(bytes.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Unknown record type after a valid header.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, []string{"m"})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(99)
	if _, err := ReadAll(&buf); err == nil {
		t.Error("unknown record type accepted")
	}
}

func TestEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, []string{"m"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("empty stream Next = %v, want io.EOF", err)
	}
}

// FuzzReader hardens the parser against arbitrary bytes.
func FuzzReader(f *testing.F) {
	traces := sampleTraces(3, 3)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, []string{"ark-us-nyc", "ark-de-fra", "ark-jp-tyo"})
	for _, tr := range traces {
		_ = w.WriteTrace(tr)
	}
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("WLT1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, tr := range got {
			if tr.Monitor == "" && len(tr.Hops) == 0 && tr.Dst == 0 {
				continue
			}
		}
	})
}
