// Package wartslite is a compact binary container for traceroute results,
// standing in for the warts format the CAIDA topology dataset ships in:
// a monitor table up front, then a stream of per-trace records. It exists
// so the Ark pipeline's raw output can be archived and re-processed, the
// way the paper extracted its interface set from one week of stored
// traces rather than from a live collector.
//
// Layout (integers little-endian):
//
//	magic     "WLT1"                  4 bytes
//	monitors  u16 count, then per monitor: u8 len + name
//	records   until EOF:
//	    type    u8   (1 = trace)
//	    monitor u16  (index into the table)
//	    dst     u32
//	    hops    u8 count, then per hop: u32 addr, f32 rttMs
package wartslite

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"routergeo/internal/ipx"
)

const magic = "WLT1"

// recordTrace is the only record type so far; the byte exists so the
// format can grow (warts has many record types).
const recordTrace = 1

// Hop is one responding hop.
type Hop struct {
	Addr  ipx.Addr
	RTTMs float64
}

// Trace is one traceroute: the monitor that ran it, the probed
// destination, and the responding hops in order.
type Trace struct {
	Monitor string
	Dst     ipx.Addr
	Hops    []Hop
}

// Writer streams traces to an output.
type Writer struct {
	bw       *bufio.Writer
	monitors map[string]uint16
}

// NewWriter writes the header for the given monitor table and returns a
// Writer. Every trace's Monitor must be in the table.
func NewWriter(w io.Writer, monitors []string) (*Writer, error) {
	if len(monitors) > math.MaxUint16 {
		return nil, fmt.Errorf("wartslite: %d monitors exceed the table limit", len(monitors))
	}
	out := &Writer{bw: bufio.NewWriter(w), monitors: make(map[string]uint16, len(monitors))}
	if _, err := out.bw.WriteString(magic); err != nil {
		return nil, err
	}
	if err := binary.Write(out.bw, binary.LittleEndian, uint16(len(monitors))); err != nil {
		return nil, err
	}
	for i, m := range monitors {
		if len(m) > math.MaxUint8 {
			return nil, fmt.Errorf("wartslite: monitor name %q too long", m)
		}
		if _, dup := out.monitors[m]; dup {
			return nil, fmt.Errorf("wartslite: duplicate monitor %q", m)
		}
		out.monitors[m] = uint16(i)
		if err := out.bw.WriteByte(byte(len(m))); err != nil {
			return nil, err
		}
		if _, err := out.bw.WriteString(m); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WriteTrace appends one trace record.
func (w *Writer) WriteTrace(t Trace) error {
	idx, ok := w.monitors[t.Monitor]
	if !ok {
		return fmt.Errorf("wartslite: unknown monitor %q", t.Monitor)
	}
	if len(t.Hops) > math.MaxUint8 {
		return fmt.Errorf("wartslite: %d hops exceed the record limit", len(t.Hops))
	}
	if err := w.bw.WriteByte(recordTrace); err != nil {
		return err
	}
	if err := binary.Write(w.bw, binary.LittleEndian, idx); err != nil {
		return err
	}
	if err := binary.Write(w.bw, binary.LittleEndian, uint32(t.Dst)); err != nil {
		return err
	}
	if err := w.bw.WriteByte(byte(len(t.Hops))); err != nil {
		return err
	}
	for _, h := range t.Hops {
		if err := binary.Write(w.bw, binary.LittleEndian, uint32(h.Addr)); err != nil {
			return err
		}
		if err := binary.Write(w.bw, binary.LittleEndian, float32(h.RTTMs)); err != nil {
			return err
		}
	}
	return nil
}

// Flush drains the writer's buffer; call once after the last trace.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader streams traces back from input.
type Reader struct {
	br       *bufio.Reader
	monitors []string
}

// NewReader parses the header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("wartslite: header: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("wartslite: bad magic %q", head)
	}
	var count uint16
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	monitors := make([]string, 0, count)
	for i := 0; i < int(count); i++ {
		n, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		monitors = append(monitors, string(buf))
	}
	return &Reader{br: br, monitors: monitors}, nil
}

// Monitors returns the header's monitor table.
func (r *Reader) Monitors() []string {
	out := make([]string, len(r.monitors))
	copy(out, r.monitors)
	return out
}

// Next returns the next trace, or io.EOF cleanly at end of stream.
func (r *Reader) Next() (Trace, error) {
	typ, err := r.br.ReadByte()
	if err == io.EOF {
		return Trace{}, io.EOF
	}
	if err != nil {
		return Trace{}, err
	}
	if typ != recordTrace {
		return Trace{}, fmt.Errorf("wartslite: unknown record type %d", typ)
	}
	var idx uint16
	if err := binary.Read(r.br, binary.LittleEndian, &idx); err != nil {
		return Trace{}, unexpect(err)
	}
	if int(idx) >= len(r.monitors) {
		return Trace{}, fmt.Errorf("wartslite: monitor index %d out of table", idx)
	}
	var dst uint32
	if err := binary.Read(r.br, binary.LittleEndian, &dst); err != nil {
		return Trace{}, unexpect(err)
	}
	hopCount, err := r.br.ReadByte()
	if err != nil {
		return Trace{}, unexpect(err)
	}
	t := Trace{Monitor: r.monitors[idx], Dst: ipx.Addr(dst), Hops: make([]Hop, 0, hopCount)}
	for i := 0; i < int(hopCount); i++ {
		var addr uint32
		if err := binary.Read(r.br, binary.LittleEndian, &addr); err != nil {
			return Trace{}, unexpect(err)
		}
		var rtt float32
		if err := binary.Read(r.br, binary.LittleEndian, &rtt); err != nil {
			return Trace{}, unexpect(err)
		}
		if math.IsNaN(float64(rtt)) || rtt < 0 {
			return Trace{}, fmt.Errorf("wartslite: invalid hop RTT %v", rtt)
		}
		t.Hops = append(t.Hops, Hop{Addr: ipx.Addr(addr), RTTMs: float64(rtt)})
	}
	return t, nil
}

// unexpect turns a mid-record EOF into an explicit truncation error so
// callers can distinguish a clean end of stream from a cut-off file.
func unexpect(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ReadAll drains a reader into a slice.
func ReadAll(r io.Reader) ([]Trace, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []Trace
	for {
		t, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}
