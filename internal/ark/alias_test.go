package ark

import (
	"bytes"
	"context"
	"testing"

	"routergeo/internal/ark/wartslite"
	"routergeo/internal/ipx"
	"routergeo/internal/netsim"
	"routergeo/internal/traceroute"
)

func TestResolveAliasesMatchesTruth(t *testing.T) {
	// The inferred alias sets must partition the collected addresses and
	// agree exactly with the world's true router assignment — Mercator's
	// shared-source-address trick is sound when every router answers from
	// a canonical interface.
	w, c := testSetup(t)
	sets, unresponsive := ResolveAliases(w, c)
	if len(unresponsive) != 0 {
		t.Fatalf("%d collected addresses unresponsive; all collected addresses are real interfaces", len(unresponsive))
	}
	seen := map[ipx.Addr]bool{}
	total := 0
	for _, set := range sets {
		if len(set.Members) == 0 {
			t.Fatal("empty alias set")
		}
		var wantRouter netsim.RouterID = -1
		for _, addr := range set.Members {
			if seen[addr] {
				t.Fatalf("address %v in two alias sets", addr)
			}
			seen[addr] = true
			total++
			id, ok := w.IfaceByAddr(addr)
			if !ok {
				t.Fatalf("member %v unknown", addr)
			}
			r := w.Interfaces[id].Router
			if wantRouter < 0 {
				wantRouter = r
			} else if r != wantRouter {
				t.Fatalf("alias set %v mixes routers %d and %d", set.Canonical, wantRouter, r)
			}
		}
		// The canonical address must belong to the same router.
		cid, ok := w.IfaceByAddr(set.Canonical)
		if !ok || w.Interfaces[cid].Router != wantRouter {
			t.Fatalf("canonical %v not on router %d", set.Canonical, wantRouter)
		}
	}
	if total != len(c.Interfaces) {
		t.Fatalf("alias sets cover %d of %d addresses", total, len(c.Interfaces))
	}

	// Completeness: inferred router count equals the truth-derived count
	// for the observed interfaces.
	truth := AliasSets(w, c)
	if len(sets) != len(truth) {
		t.Fatalf("inferred %d routers, truth has %d", len(sets), len(truth))
	}
}

func TestAliasProbeUnresponsive(t *testing.T) {
	w, _ := testSetup(t)
	p := NewAliasProber(w)
	if _, ok := p.Probe(ipx.MustParseAddr("203.0.113.1")); ok {
		t.Error("non-interface address should not answer alias probes")
	}
}

func TestAliasProbeDeterministicCanonical(t *testing.T) {
	// Every interface of one router must yield the same reply address.
	w, _ := testSetup(t)
	p := NewAliasProber(w)
	r := w.Routers[0]
	var canonical ipx.Addr
	for i, id := range r.Ifaces {
		reply, ok := p.Probe(w.Interfaces[id].Addr)
		if !ok {
			t.Fatal("router interface unresponsive")
		}
		if i == 0 {
			canonical = reply
		} else if reply != canonical {
			t.Fatalf("router answered from %v and %v", canonical, reply)
		}
	}
}

func TestExtractFromTracesMatchesLiveCollection(t *testing.T) {
	// Archiving a sweep and re-extracting must yield exactly the interface
	// set the live collector produced — the paper's stored-traces workflow.
	w, _ := testSetup(t)
	var archived []wartslite.Trace
	cfg := Config{Monitors: 10, MonitorsPerTarget: 1, Cycles: 2, Seed: 9}
	cfg.Sink = func(monitor string, dst ipx.Addr, hops []traceroute.Hop) {
		tr := wartslite.Trace{Monitor: monitor, Dst: dst}
		for _, h := range hops {
			if h.Iface < 0 {
				continue
			}
			tr.Hops = append(tr.Hops, wartslite.Hop{Addr: w.Interfaces[h.Iface].Addr, RTTMs: h.RTTMs})
		}
		archived = append(archived, tr)
	}
	live := Collect(context.Background(), w, cfg)

	// Round-trip the archive through the binary container.
	names := make([]string, len(live.Monitors))
	for i, m := range live.Monitors {
		names[i] = m.Name
	}
	var buf bytes.Buffer
	ww, err := wartslite.NewWriter(&buf, names)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range archived {
		if err := ww.WriteTrace(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := ww.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := wartslite.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}

	replay := ExtractFromTraces(w, back)
	if replay.Traces != live.Traces {
		t.Errorf("replayed %d traces, live ran %d", replay.Traces, live.Traces)
	}
	if len(replay.Interfaces) != len(live.Interfaces) {
		t.Fatalf("replay found %d interfaces, live %d", len(replay.Interfaces), len(live.Interfaces))
	}
	for i := range replay.Interfaces {
		if replay.Interfaces[i] != live.Interfaces[i] {
			t.Fatalf("interface %d differs after replay", i)
		}
	}
}
