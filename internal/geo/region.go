package geo

// RIR identifies one of the five Regional Internet Registries. The paper
// breaks down every regional analysis (Table 1, Figures 3 and 5) by RIR.
type RIR uint8

const (
	// RIRUnknown marks addresses whose registry could not be determined.
	RIRUnknown RIR = iota
	// ARIN covers the United States, Canada and parts of the Caribbean.
	ARIN
	// RIPENCC covers Europe, the Middle East and the former USSR.
	RIPENCC
	// APNIC covers the Asia-Pacific region.
	APNIC
	// LACNIC covers Latin America and the Caribbean.
	LACNIC
	// AFRINIC covers Africa.
	AFRINIC
)

// RIRs lists the five registries in the order the paper's tables use
// (Table 1: ARIN, APNIC, AFRINIC, LACNIC, RIPENCC).
var RIRs = [...]RIR{ARIN, APNIC, AFRINIC, LACNIC, RIPENCC}

// String returns the registry's conventional name.
func (r RIR) String() string {
	switch r {
	case ARIN:
		return "ARIN"
	case RIPENCC:
		return "RIPENCC"
	case APNIC:
		return "APNIC"
	case LACNIC:
		return "LACNIC"
	case AFRINIC:
		return "AFRINIC"
	default:
		return "UNKNOWN"
	}
}

// ParseRIR maps a registry name (as printed by String) back to its RIR.
// Unrecognized names map to RIRUnknown.
func ParseRIR(s string) RIR {
	switch s {
	case "ARIN":
		return ARIN
	case "RIPENCC", "RIPE", "RIPE NCC":
		return RIPENCC
	case "APNIC":
		return APNIC
	case "LACNIC":
		return LACNIC
	case "AFRINIC":
		return AFRINIC
	default:
		return RIRUnknown
	}
}
