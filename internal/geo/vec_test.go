package geo

import (
	"math"
	"math/rand"
	"testing"
)

// TestAsinSqrt pins the rational kernel to the library composition
// asin(√h) across the full domain, including both reduction branches
// and their boundary.
func TestAsinSqrt(t *testing.T) {
	check := func(h float64) {
		got := asinSqrt(h)
		want := math.Asin(math.Sqrt(h))
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("asinSqrt(%v) = %v, want %v (diff %g)", h, got, want, got-want)
		}
	}
	for i := 0; i <= 1_000_000; i++ {
		check(float64(i) / 1_000_000)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1_000_000; i++ {
		check(rng.Float64())
	}
	for _, h := range []float64{0, 0.25, math.Nextafter(0.25, 1), 1} {
		check(h)
	}
}

// TestVecUnit checks Vec returns unit vectors at the poles, the
// equator and random points.
func TestVecUnit(t *testing.T) {
	cases := []Coordinate{
		{Lat: 0, Lon: 0}, {Lat: 90, Lon: 0}, {Lat: -90, Lon: 0},
		{Lat: 0, Lon: 180}, {Lat: 0, Lon: -180}, {Lat: 45, Lon: -122},
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		cases = append(cases, Coordinate{
			Lat: rng.Float64()*180 - 90,
			Lon: rng.Float64()*360 - 180,
		})
	}
	for _, c := range cases {
		v := c.Vec()
		n := v.X*v.X + v.Y*v.Y + v.Z*v.Z
		if math.Abs(n-1) > 1e-14 {
			t.Errorf("Vec(%v) norm² = %v", c, n)
		}
	}
	if !(Vec3{}).IsZero() || (Coordinate{Lat: 45, Lon: 45}).Vec().IsZero() {
		t.Error("IsZero sentinel misbehaves")
	}
}

// TestArcKmMatchesDistanceKm checks the cached-vector distance agrees
// with the coordinate haversine everywhere the evaluation looks:
// random world pairs, threshold-scale offsets, and degenerate pairs.
// Tolerance is 1e-4 km (10 cm) — see the ArcKm comment on why nearly
// coincident points carry that much cancellation noise.
func TestArcKmMatchesDistanceKm(t *testing.T) {
	const tol = 1e-4
	check := func(a, b Coordinate) {
		got := ArcKm(a.Vec(), b.Vec())
		want := a.DistanceKm(b)
		if math.Abs(got-want) > tol {
			t.Fatalf("ArcKm(%v, %v) = %v, DistanceKm = %v (diff %g)",
				a, b, got, want, got-want)
		}
	}
	rng := rand.New(rand.NewSource(13))
	randPt := func() Coordinate {
		return Coordinate{Lat: rng.Float64()*180 - 90, Lon: rng.Float64()*360 - 180}
	}
	for i := 0; i < 200_000; i++ {
		check(randPt(), randPt())
	}
	// Threshold-scale pairs: the 40 km city range and the 50/100 km
	// proximity bounds are where a formula disagreement would bite.
	for i := 0; i < 10_000; i++ {
		a := randPt()
		check(a, a.Offset(rng.Float64()*120, rng.Float64()*360))
	}
	check(Coordinate{}, Coordinate{})
	check(Coordinate{Lat: 90}, Coordinate{Lat: -90})                // antipodal poles
	check(Coordinate{Lat: 0, Lon: 0}, Coordinate{Lat: 0, Lon: 180}) // antipodal equator
	same := Coordinate{Lat: 47.6, Lon: -122.3}
	check(same, same)
}

// BenchmarkArcKm measures the cached-vector distance kernel against the
// coordinate haversine it replaces on the sweep hot path.
func BenchmarkArcKm(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	const n = 1024
	va := make([]Vec3, n)
	vb := make([]Vec3, n)
	ca := make([]Coordinate, n)
	cb := make([]Coordinate, n)
	for i := 0; i < n; i++ {
		ca[i] = Coordinate{Lat: rng.Float64()*180 - 90, Lon: rng.Float64()*360 - 180}
		cb[i] = Coordinate{Lat: rng.Float64()*180 - 90, Lon: rng.Float64()*360 - 180}
		va[i], vb[i] = ca[i].Vec(), cb[i].Vec()
	}
	b.Run("vec", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += ArcKm(va[i%n], vb[i%n])
		}
		benchSink = sink
	})
	b.Run("haversine", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += ca[i%n].DistanceKm(cb[i%n])
		}
		benchSink = sink
	})
}

var benchSink float64
