package geo

import "math"

// Vec3 is a position on the unit sphere: the Cartesian unit vector of a
// Coordinate. The measurement sweeps precompute one per database record
// and per ground-truth target so the per-pair great-circle distance
// (ArcKm) costs a dot product instead of four trigonometric calls — the
// haversine quantity h = sin²(Δφ/2) + cosφ₁·cosφ₂·sin²(Δλ/2) equals
// (1 − a·b)/2 exactly, so ArcKm computes the same distance DistanceKm
// does, just from cached inputs.
//
// The zero value doubles as a "not cached" sentinel (it is not a unit
// vector, so no real coordinate produces it).
type Vec3 struct {
	X, Y, Z float64
}

// IsZero reports whether v is the zero vector — the "not cached"
// sentinel, never a real position.
func (v Vec3) IsZero() bool { return v == Vec3{} }

// Vec returns c's unit vector on the sphere.
func (c Coordinate) Vec() Vec3 {
	const degToRad = math.Pi / 180
	sinLat, cosLat := math.Sincos(c.Lat * degToRad)
	sinLon, cosLon := math.Sincos(c.Lon * degToRad)
	return Vec3{X: cosLat * cosLon, Y: cosLat * sinLon, Z: sinLat}
}

// ArcKm returns the great-circle distance in kilometres between the unit
// vectors a and b. It evaluates the same spherical formula DistanceKm
// does — h = (1 − a·b)/2 is algebraically the haversine of the central
// angle — so results agree to well under a metre everywhere the paper's
// thresholds (40/50/100 km) look. The one caveat: for nearly coincident
// points the subtraction 1 − a·b cancels, so distances under ~10 m come
// back with up to ~10 cm of noise where the coordinate form would be
// exact; every consumer compares against kilometre-scale thresholds or
// feeds a CDF binned far coarser than that.
func ArcKm(a, b Vec3) float64 {
	h := 0.5 - 0.5*(a.X*b.X+a.Y*b.Y+a.Z*b.Z)
	if h <= 0 {
		return 0
	}
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * asinSqrt(h)
}

// asinSqrt returns asin(√h) for h in [0, 1] without the library Asin.
// math.Asin on this port reduces through Atan and costs ~100 ns; the
// sweeps call it once per scored pair, where it dominates the profile.
// This is the classic fdlibm kernel instead: a single minimax rational
// R(t) ≈ (asin(x) − x)/x on t = x² ∈ [0, 0.25], applied directly for
// x = √h ≤ 0.5 and through the half-angle identity
// asin(x) = π/2 − 2·asin(√((1−x)/2)) above. TestAsinSqrt pins it to
// math.Asin(math.Sqrt(h)) within 1e-12 across the full domain.
func asinSqrt(h float64) float64 {
	if h <= 0.25 { // x = √h ≤ 0.5: asin(x) = x + x·R(x²), x² = h
		s := math.Sqrt(h)
		return s + s*asinR(h)
	}
	t := 0.5 - 0.5*math.Sqrt(h) // (1 − x)/2 ∈ [0, 0.25)
	s := math.Sqrt(t)
	return math.Pi/2 - 2*(s+s*asinR(t))
}

// asinR evaluates the fdlibm rational approximation of (asin(x) − x)/x
// on t = x², valid for t ≤ 0.25.
func asinR(t float64) float64 {
	const (
		pS0 = 1.66666666666666657415e-01
		pS1 = -3.25565818622400915405e-01
		pS2 = 2.01212532134862925881e-01
		pS3 = -4.00555345006794114027e-02
		pS4 = 7.91534994289814532176e-04
		pS5 = 3.47933107596021167570e-05
		qS1 = -2.40339491173441421878e+00
		qS2 = 2.02094576023350569471e+00
		qS3 = -6.88283971605453293030e-01
		qS4 = 7.70381505559019352791e-02
	)
	p := t * (pS0 + t*(pS1+t*(pS2+t*(pS3+t*(pS4+t*pS5)))))
	q := 1 + t*(qS1+t*(qS2+t*(qS3+t*qS4)))
	return p / q
}
