package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Reference distances computed from published great-circle calculators,
// rounded to the nearest kilometre. Tolerance is 0.5% to absorb the
// spherical-vs-ellipsoidal difference.
func TestDistanceKnownPairs(t *testing.T) {
	tests := []struct {
		name   string
		a, b   Coordinate
		wantKm float64
	}{
		{"london-paris", Coordinate{51.5074, -0.1278}, Coordinate{48.8566, 2.3522}, 344},
		{"nyc-la", Coordinate{40.7128, -74.0060}, Coordinate{34.0522, -118.2437}, 3936},
		{"sydney-tokyo", Coordinate{-33.8688, 151.2093}, Coordinate{35.6762, 139.6503}, 7823},
		{"equator-degree", Coordinate{0, 0}, Coordinate{0, 1}, 111.2},
		{"dallas-miami", Coordinate{32.7767, -96.7970}, Coordinate{25.7617, -80.1918}, 1787},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.a.DistanceKm(tt.b)
			if math.Abs(got-tt.wantKm) > tt.wantKm*0.005+0.5 {
				t.Errorf("DistanceKm = %.1f, want ~%.1f", got, tt.wantKm)
			}
		})
	}
}

func TestDistanceIdentity(t *testing.T) {
	c := Coordinate{52.52, 13.405}
	if d := c.DistanceKm(c); d != 0 {
		t.Errorf("distance to self = %v, want 0", d)
	}
}

func TestDistanceAntipodal(t *testing.T) {
	a := Coordinate{0, 0}
	b := Coordinate{0, 180}
	want := math.Pi * EarthRadiusKm
	if got := a.DistanceKm(b); math.Abs(got-want) > 1 {
		t.Errorf("antipodal distance = %.1f, want %.1f", got, want)
	}
}

func randomCoordinate(r *rand.Rand) Coordinate {
	// Sample uniformly on the sphere so polar coordinates are not
	// over-represented.
	u := r.Float64()*2 - 1 // cos(colatitude)
	lat := math.Asin(u) * 180 / math.Pi
	lon := r.Float64()*360 - 180
	return Coordinate{Lat: lat, Lon: lon}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := randomCoordinate(r), randomCoordinate(r)
		d1, d2 := a.DistanceKm(b), b.DistanceKm(a)
		return math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequalityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		a, b, c := randomCoordinate(r), randomCoordinate(r), randomCoordinate(r)
		return a.DistanceKm(c) <= a.DistanceKm(b)+b.DistanceKm(c)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDistanceBoundedProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	max := math.Pi * EarthRadiusKm
	f := func() bool {
		a, b := randomCoordinate(r), randomCoordinate(r)
		d := a.DistanceKm(b)
		return d >= 0 && d <= max+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestOffsetRoundTripDistanceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func() bool {
		c := randomCoordinate(r)
		dist := r.Float64() * 2000 // up to 2000 km
		bearing := r.Float64() * 360
		o := c.Offset(dist, bearing)
		return math.Abs(c.DistanceKm(o)-dist) < 0.5 && o.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestOffsetZeroDistance(t *testing.T) {
	c := Coordinate{45, 45}
	o := c.Offset(0, 123)
	if c.DistanceKm(o) > 1e-6 {
		t.Errorf("offset by 0 km moved point to %v", o)
	}
}

func TestOffsetCardinalDirections(t *testing.T) {
	c := Coordinate{10, 20}
	north := c.Offset(100, 0)
	if north.Lat <= c.Lat {
		t.Errorf("north offset did not increase latitude: %v", north)
	}
	if math.Abs(north.Lon-c.Lon) > 0.01 {
		t.Errorf("north offset changed longitude: %v", north)
	}
	east := c.Offset(100, 90)
	if east.Lon <= c.Lon {
		t.Errorf("east offset did not increase longitude: %v", east)
	}
}

func TestMidpointEquidistantProperty(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		a, b := randomCoordinate(r), randomCoordinate(r)
		// Skip near-antipodal pairs where the midpoint is ill-conditioned.
		if a.DistanceKm(b) > 0.95*math.Pi*EarthRadiusKm {
			return true
		}
		m := a.Midpoint(b)
		return math.Abs(a.DistanceKm(m)-b.DistanceKm(m)) < 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWithinKm(t *testing.T) {
	london := Coordinate{51.5074, -0.1278}
	paris := Coordinate{48.8566, 2.3522}
	if london.WithinKm(paris, 40) {
		t.Error("London should not be within 40 km of Paris")
	}
	if !london.WithinKm(paris, 400) {
		t.Error("London should be within 400 km of Paris")
	}
}

func TestCoordinateValid(t *testing.T) {
	tests := []struct {
		c    Coordinate
		want bool
	}{
		{Coordinate{0, 0}, true},
		{Coordinate{90, 180}, true},
		{Coordinate{-90, -180}, true},
		{Coordinate{91, 0}, false},
		{Coordinate{0, 181}, false},
		{Coordinate{math.NaN(), 0}, false},
	}
	for _, tt := range tests {
		if got := tt.c.Valid(); got != tt.want {
			t.Errorf("Valid(%v) = %v, want %v", tt.c, got, tt.want)
		}
	}
}

func TestCoordinateIsZero(t *testing.T) {
	if !(Coordinate{}).IsZero() {
		t.Error("zero value should report IsZero")
	}
	if (Coordinate{0.0001, 0}).IsZero() {
		t.Error("non-zero coordinate reported IsZero")
	}
}

func TestCoordinateString(t *testing.T) {
	c := Coordinate{51.50740001, -0.1278}
	if got, want := c.String(), "51.5074,-0.1278"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestRIRStringRoundTrip(t *testing.T) {
	for _, r := range RIRs {
		if got := ParseRIR(r.String()); got != r {
			t.Errorf("ParseRIR(%q) = %v, want %v", r.String(), got, r)
		}
	}
	if ParseRIR("bogus") != RIRUnknown {
		t.Error("ParseRIR of unknown name should be RIRUnknown")
	}
	if RIRUnknown.String() != "UNKNOWN" {
		t.Errorf("RIRUnknown.String() = %q", RIRUnknown.String())
	}
}

func TestRIRsOrderMatchesTable1(t *testing.T) {
	want := []string{"ARIN", "APNIC", "AFRINIC", "LACNIC", "RIPENCC"}
	for i, r := range RIRs {
		if r.String() != want[i] {
			t.Errorf("RIRs[%d] = %s, want %s", i, r, want[i])
		}
	}
}
