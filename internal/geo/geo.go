// Package geo provides the geographic primitives used throughout the
// reproduction: WGS84-style coordinates, great-circle distance, and the
// small amount of spherical trigonometry the simulators and the evaluation
// methodology need.
//
// Distances are computed with the haversine formula on a spherical Earth
// (radius 6371.0088 km, the IUGG mean). The paper's analyses only ever
// compare distances against coarse thresholds (40 km city range, 50/100 km
// proximity bounds), so spherical error (<0.6%) is irrelevant here.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the IUGG mean Earth radius in kilometres.
const EarthRadiusKm = 6371.0088

// Coordinate is a geographic point in decimal degrees.
// The zero value (0,0) is a valid point in the Gulf of Guinea; use IsZero
// only where (0,0) is reserved as "unset", as geolocation records do.
type Coordinate struct {
	Lat float64 // degrees north, [-90, 90]
	Lon float64 // degrees east, [-180, 180]
}

// IsZero reports whether c is the exact zero coordinate, used by records
// that encode "no coordinates" as (0,0).
func (c Coordinate) IsZero() bool { return c.Lat == 0 && c.Lon == 0 }

// Valid reports whether c lies within the valid latitude/longitude ranges.
func (c Coordinate) Valid() bool {
	return c.Lat >= -90 && c.Lat <= 90 && c.Lon >= -180 && c.Lon <= 180 &&
		!math.IsNaN(c.Lat) && !math.IsNaN(c.Lon)
}

// String formats the coordinate as "lat,lon" with 4 decimal places
// (roughly 11 m resolution), matching the precision geolocation databases
// typically publish.
func (c Coordinate) String() string {
	return fmt.Sprintf("%.4f,%.4f", c.Lat, c.Lon)
}

// DistanceKm returns the great-circle distance in kilometres between c and o.
func (c Coordinate) DistanceKm(o Coordinate) float64 {
	const degToRad = math.Pi / 180
	lat1 := c.Lat * degToRad
	lat2 := o.Lat * degToRad
	dLat := (o.Lat - c.Lat) * degToRad
	dLon := (o.Lon - c.Lon) * degToRad

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// WithinKm reports whether o is within km kilometres of c.
func (c Coordinate) WithinKm(o Coordinate, km float64) bool {
	return c.DistanceKm(o) <= km
}

// Offset returns the coordinate reached by travelling distanceKm from c on
// the initial bearing bearingDeg (degrees clockwise from north). It is used
// by the simulators to jitter router and probe positions around city
// centres, and by vendor builders to displace city coordinates.
func (c Coordinate) Offset(distanceKm, bearingDeg float64) Coordinate {
	const degToRad = math.Pi / 180
	const radToDeg = 180 / math.Pi

	ad := distanceKm / EarthRadiusKm // angular distance
	br := bearingDeg * degToRad
	lat1 := c.Lat * degToRad
	lon1 := c.Lon * degToRad

	sinLat2 := math.Sin(lat1)*math.Cos(ad) + math.Cos(lat1)*math.Sin(ad)*math.Cos(br)
	lat2 := math.Asin(sinLat2)
	y := math.Sin(br) * math.Sin(ad) * math.Cos(lat1)
	x := math.Cos(ad) - math.Sin(lat1)*sinLat2
	lon2 := lon1 + math.Atan2(y, x)

	// Normalize longitude to [-180, 180).
	lonDeg := math.Mod(lon2*radToDeg+540, 360) - 180
	return Coordinate{Lat: lat2 * radToDeg, Lon: lonDeg}
}

// Midpoint returns the great-circle midpoint of c and o. The evaluation uses
// it only for diagnostics; the simulators use it to place intermediate
// waypoints when synthesizing long-haul links.
func (c Coordinate) Midpoint(o Coordinate) Coordinate {
	const degToRad = math.Pi / 180
	const radToDeg = 180 / math.Pi

	lat1 := c.Lat * degToRad
	lon1 := c.Lon * degToRad
	lat2 := o.Lat * degToRad
	dLon := (o.Lon - c.Lon) * degToRad

	bx := math.Cos(lat2) * math.Cos(dLon)
	by := math.Cos(lat2) * math.Sin(dLon)
	lat3 := math.Atan2(math.Sin(lat1)+math.Sin(lat2),
		math.Sqrt((math.Cos(lat1)+bx)*(math.Cos(lat1)+bx)+by*by))
	lon3 := lon1 + math.Atan2(by, math.Cos(lat1)+bx)

	lonDeg := math.Mod(lon3*radToDeg+540, 360) - 180
	return Coordinate{Lat: lat3 * radToDeg, Lon: lonDeg}
}
