package rtt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"routergeo/internal/geo"
)

func coord(lat, lon float64) geo.Coordinate { return geo.Coordinate{Lat: lat, Lon: lon} }

func TestMinRTTKnownDistance(t *testing.T) {
	// 200 km apart -> 2 ms RTT floor.
	a := coord(0, 0)
	b := coord(0, 200/111.195) // ~200 km along the equator
	got := MinRTTMs(a, b)
	if got < 1.9 || got > 2.1 {
		t.Errorf("MinRTTMs for ~200 km = %.3f ms, want ~2", got)
	}
}

func TestMaxDistanceForRTT(t *testing.T) {
	// The paper's rule: 0.5 ms RTT bounds distance at 50 km (§2.3.2).
	if got := MaxDistanceKmForRTT(0.5); got != 50 {
		t.Errorf("MaxDistanceKmForRTT(0.5) = %v, want 50", got)
	}
	// Giotsas et al.'s rule: 1 ms bounds at 100 km (§3.1).
	if got := MaxDistanceKmForRTT(1.0); got != 100 {
		t.Errorf("MaxDistanceKmForRTT(1.0) = %v, want 100", got)
	}
}

func TestBoundsAreConsistentProperty(t *testing.T) {
	// MinRTTMs and MaxDistanceKmForRTT must be exact inverses: if two points
	// are D km apart, the RTT floor maps back to exactly D.
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		a := coord(rng.Float64()*170-85, rng.Float64()*360-180)
		b := coord(rng.Float64()*170-85, rng.Float64()*360-180)
		d := a.DistanceKm(b)
		back := MaxDistanceKmForRTT(MinRTTMs(a, b))
		return back >= d-1e-6 && back <= d+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSampleNeverUndercutsFloorProperty(t *testing.T) {
	// The load-bearing invariant: no sampled RTT may be faster than light in
	// fibre, otherwise the proximity ground truth would be unsound.
	m := DefaultModel()
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		a := coord(rng.Float64()*170-85, rng.Float64()*360-180)
		b := coord(rng.Float64()*170-85, rng.Float64()*360-180)
		hops := rng.Intn(20)
		s := m.Sample(rng, a, b, hops)
		return s >= MinRTTMs(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPropagationMonotonicInHops(t *testing.T) {
	m := DefaultModel()
	a, b := coord(40, -74), coord(34, -118)
	if m.PropagationMs(a, b, 10) <= m.PropagationMs(a, b, 2) {
		t.Error("more hops should mean more delay")
	}
}

func TestPropagationIncludesStretch(t *testing.T) {
	m := DefaultModel()
	a, b := coord(51.5, -0.13), coord(48.86, 2.35) // London-Paris
	floor := MinRTTMs(a, b)
	if got := m.PropagationMs(a, b, 0); got < floor*1.49 {
		t.Errorf("PropagationMs = %.3f, want >= 1.5x floor %.3f", got, floor)
	}
}

func TestSampleLinkNonNegativeJitter(t *testing.T) {
	m := DefaultModel()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if got := m.SampleLink(rng, 1.0); got < 1.0 {
			t.Fatalf("SampleLink returned %.4f < propagation 1.0", got)
		}
	}
}

func TestLastMileMixture(t *testing.T) {
	lm := DefaultLastMile()
	rng := rand.New(rand.NewSource(4))
	fast, n := 0, 20000
	for i := 0; i < n; i++ {
		d := lm.Sample(rng)
		if d <= 0 {
			t.Fatalf("non-positive last-mile delay %v", d)
		}
		if d < 0.5 {
			fast++
		}
	}
	frac := float64(fast) / float64(n)
	// Around 35% of probes plus the lucky tail of the slow mixture should be
	// under 0.5 ms — the population the 0.5 ms ground-truth rule can use.
	if frac < 0.25 || frac > 0.55 {
		t.Errorf("fraction of sub-0.5ms last miles = %.3f, want 0.25-0.55", frac)
	}
}

func TestLastMileDeterministicUnderSeed(t *testing.T) {
	lm := DefaultLastMile()
	a := lm.Sample(rand.New(rand.NewSource(99)))
	b := lm.Sample(rand.New(rand.NewSource(99)))
	if a != b {
		t.Errorf("same seed, different samples: %v vs %v", a, b)
	}
}
