// Package rtt models packet delay over the synthetic Internet.
//
// The model matters for one load-bearing property the paper relies on
// (§2.3.2): a 0.5 ms RTT between two hosts bounds their distance at 50 km,
// "likely much less due to inflation in RTT measurement". Signals in fibre
// propagate at roughly 2/3 of c, i.e. ~200 km/ms one-way, so x ms of RTT
// bounds the one-way distance at 100·x km; the paper's 0.5 ms ⇒ 50 km
// bound follows. Our model therefore never lets an RTT undercut the
// speed-of-light-in-fibre floor for the great-circle distance, and adds
// only non-negative inflation (path stretch, serialization, queueing) on
// top — exactly the asymmetry the proximity method depends on.
package rtt

import (
	"math"
	"math/rand"

	"routergeo/internal/geo"
)

// KmPerMsOneWay is the one-way propagation speed in fibre, ~2/3 c,
// expressed in km per millisecond.
const KmPerMsOneWay = 200.0

// MinRTTMs returns the physical lower bound on the round-trip time between
// two points: great-circle distance there and back at fibre speed.
func MinRTTMs(a, b geo.Coordinate) float64 {
	return 2 * a.DistanceKm(b) / KmPerMsOneWay
}

// MaxDistanceKmForRTT inverts the bound: an observed RTT of ms milliseconds
// places the endpoints within the returned great-circle distance. This is
// the constraint the RTT-proximity ground-truth method applies with
// ms = 0.5 (⇒ 50 km).
func MaxDistanceKmForRTT(ms float64) float64 {
	return ms * KmPerMsOneWay / 2
}

// Model generates RTT samples with configurable inflation. The zero value
// is not usable; call DefaultModel or fill every field.
type Model struct {
	// PathStretch multiplies the great-circle propagation delay to account
	// for fibre routes not following geodesics. Typical measured values are
	// 1.2-2.5; we default to 1.5.
	PathStretch float64
	// PerHopMs is the fixed per-hop forwarding/serialization cost added for
	// every router on the path (both directions), in milliseconds.
	PerHopMs float64
	// QueueMeanMs is the mean of the exponentially distributed queueing
	// delay added per measurement (not per hop).
	QueueMeanMs float64
}

// DefaultModel returns delay parameters in line with published traceroute
// inflation studies: 1.5× geographic stretch, 20 µs per-hop forwarding,
// 80 µs mean queueing. The per-hop costs matter for the RTT-proximity
// method: modern metro hops add tens of microseconds, which is what lets
// a probe see routers several hops away under the paper's 0.5 ms bound.
func DefaultModel() Model {
	return Model{PathStretch: 1.5, PerHopMs: 0.02, QueueMeanMs: 0.08}
}

// PropagationMs returns the deterministic (no-queueing) RTT between two
// points over hops intermediate routers.
func (m Model) PropagationMs(a, b geo.Coordinate, hops int) float64 {
	return MinRTTMs(a, b)*m.PathStretch + float64(hops)*m.PerHopMs
}

// Sample returns one RTT measurement between a and b across hops routers,
// adding exponential queueing noise. The result never undercuts the
// physical floor MinRTTMs(a, b).
func (m Model) Sample(rng *rand.Rand, a, b geo.Coordinate, hops int) float64 {
	rtt := m.PropagationMs(a, b, hops) + rng.ExpFloat64()*m.QueueMeanMs
	if floor := MinRTTMs(a, b); rtt < floor {
		rtt = floor
	}
	return rtt
}

// SampleLink returns one RTT measurement for a single link of known
// propagation delay propMs (already round-trip), used by the traceroute
// engine which accumulates per-link delays.
func (m Model) SampleLink(rng *rand.Rand, propMs float64) float64 {
	return propMs + m.PerHopMs + rng.ExpFloat64()*m.QueueMeanMs
}

// LastMile models the access link between a measurement probe and its
// first-hop router. RIPE Atlas probes sit in homes, offices and data
// centres; delays to the first hop range from tens of microseconds
// (data-centre probes) to tens of milliseconds (DSL interleaving). The
// distribution below is a mixture: a fraction Fast of probes get a
// sub-half-millisecond access link, the rest get a log-normal spread.
type LastMile struct {
	// Fast is the fraction of probes with data-centre-grade access
	// (uniform 0.05-0.45 ms).
	Fast float64
	// SlowMedianMs and SlowSigma parameterize the log-normal delay of the
	// remaining probes.
	SlowMedianMs float64
	SlowSigma    float64
}

// DefaultLastMile returns a mixture in which roughly a third of probes can
// observe a sub-0.5 ms first hop, matching the yield the paper saw (1,387
// probes contributed 0.5 ms-proximate hops out of the ~9.5k connected
// probes of the 2016 Atlas fleet).
func DefaultLastMile() LastMile {
	return LastMile{Fast: 0.35, SlowMedianMs: 4.0, SlowSigma: 1.0}
}

// Sample draws one probe's access-link RTT in milliseconds.
func (l LastMile) Sample(rng *rand.Rand) float64 {
	if rng.Float64() < l.Fast {
		return 0.05 + rng.Float64()*0.40
	}
	return l.SlowMedianMs * math.Exp(rng.NormFloat64()*l.SlowSigma)
}
