package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"routergeo/internal/geo"
	"routergeo/internal/groundtruth"
	"routergeo/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Table 1: ground-truth location statistics and regional distribution",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "sec31",
		Title: "§3.1: DNS-based ground-truth correctness (overlaps, 1ms comparison, hostname churn)",
		Run:   runSec31,
	})
	register(Experiment{
		ID:    "sec32",
		Title: "§3.2: RTT-proximity ground-truth correctness (probe disqualification funnel)",
		Run:   runSec32,
	})
}

func runTable1(ctx context.Context, w io.Writer, env *Env) error {
	fmt.Fprintf(w, "%-14s %7s %10s %8s %6s %6s %8s %7s %8s\n",
		"GroundTruth", "Total", "Countries", "lat/lon",
		"ARIN", "APNIC", "AFRINIC", "LACNIC", "RIPENCC")
	for _, ds := range []*groundtruth.Dataset{env.DNS, env.RTTDS} {
		counts := ds.RIRCounts(env.W)
		fmt.Fprintf(w, "%-14s %7d %10d %8d %6d %6d %8d %7d %8d\n",
			ds.Name, ds.Len(), ds.Countries(), ds.UniqueCoords(),
			counts[geo.ARIN], counts[geo.APNIC], counts[geo.AFRINIC],
			counts[geo.LACNIC], counts[geo.RIPENCC])
	}
	fmt.Fprintf(w, "\nTransit-AS share: DNS-based %s, RTT-proximity %s (paper: 99.9%%, 74.5%%)\n",
		stats.Pct(env.DNS.TransitShare(env.W)), stats.Pct(env.RTTDS.TransitShare(env.W)))
	fmt.Fprintf(w, "Merged ground truth: %d addresses (DNS %d + RTT %d − overlap %d)\n",
		env.GT.Len(), env.DNS.Len(), env.RTTDS.Len(), env.DNS.Len()+env.RTTDS.Len()-env.GT.Len())

	fmt.Fprintf(w, "\nPer-domain DNS ground truth (paper: cogent 6462, ntt 2331, pnap 1437, seabone 1405, peak10 170, digitalwest 29, belwue 23):\n")
	type dc struct {
		d string
		n int
	}
	var domains []dc
	for d, n := range env.DNSStats.PerDomainCounts {
		domains = append(domains, dc{d, n})
	}
	sort.Slice(domains, func(i, j int) bool { return domains[i].n > domains[j].n })
	for _, x := range domains {
		fmt.Fprintf(w, "  %-18s %5d\n", x.d, x.n)
	}
	fmt.Fprintf(w, "rDNS funnel: %d Ark interfaces -> %d with hostnames (%s) -> %d in GT domains -> %d decoded\n",
		env.DNSStats.ArkInterfaces, env.DNSStats.WithHostname,
		stats.Pct(stats.Fraction(env.DNSStats.WithHostname, env.DNSStats.ArkInterfaces)),
		env.DNSStats.InGTDomains, env.DNSStats.Decoded)
	return nil
}

func runSec31(ctx context.Context, w io.Writer, env *Env) error {
	// DNS vs RTT overlap (paper: 109 common; 105 within 10 km, rest ≤43 km).
	ov := groundtruth.CompareOverlap(env.DNS, env.RTTDS)
	fmt.Fprintf(w, "DNS ∩ RTT-proximity: %d common addresses; within 10 km %d (%s), within 40 km %d (%s), max %.1f km\n",
		ov.Common, ov.Within10Km, stats.Pct(stats.Fraction(ov.Within10Km, ov.Common)),
		ov.Within40Km, stats.Pct(stats.Fraction(ov.Within40Km, ov.Common)), ov.MaxKm)

	// DNS vs the 1ms-RTT-proximity set gathered ~10 months later
	// (paper: 384 common; 92.45% within 100 km, 87.8% within 40 km).
	ov1 := groundtruth.CompareOverlap(env.DNS, env.OneMs)
	fmt.Fprintf(w, "DNS ∩ 1ms-RTT-proximity (+10 months): %d common; within 40 km %s, within 100 km %s\n",
		ov1.Common,
		stats.Pct(stats.Fraction(ov1.Within40Km, ov1.Common)),
		stats.Pct(stats.Fraction(ov1.Within100Km, ov1.Common)))

	// RTT vs 1ms overlap (paper §3.2: 1,661 common; 96.8% within 40 km,
	// 97.4% within 100 km).
	ov2 := groundtruth.CompareOverlap(env.RTTDS, env.OneMs)
	fmt.Fprintf(w, "RTT ∩ 1ms-RTT-proximity: %d common; within 40 km %s, within 100 km %s\n",
		ov2.Common,
		stats.Pct(stats.Fraction(ov2.Within40Km, ov2.Common)),
		stats.Pct(stats.Fraction(ov2.Within100Km, ov2.Common)))

	// Hostname churn at +16 months (paper: 69.1% same name, 24% renamed,
	// 6.9% lost; of renamed 67.7% same location, 30.8% moved, 1.5% no hint;
	// moved = 7.4% of all).
	ch := groundtruth.HostnameChurn(env.W, env.Zone, env.Dec, env.Evo, env.DNS, 16)
	fmt.Fprintf(w, "\nHostname churn over 16 months (n=%d):\n", ch.Total)
	fmt.Fprintf(w, "  same hostname      %6d (%s)   [paper 69.1%%]\n", ch.SameName, stats.Pct(stats.Fraction(ch.SameName, ch.Total)))
	fmt.Fprintf(w, "  different hostname %6d (%s)   [paper 24%%]\n", ch.Renamed, stats.Pct(stats.Fraction(ch.Renamed, ch.Total)))
	fmt.Fprintf(w, "  no rDNS record     %6d (%s)   [paper 6.9%%]\n", ch.Lost, stats.Pct(stats.Fraction(ch.Lost, ch.Total)))
	fmt.Fprintf(w, "  of renamed: same location %d (%s) [67.7%%], moved %d (%s) [30.8%%], no hint %d (%s) [1.5%%]\n",
		ch.RenamedSameLoc, stats.Pct(stats.Fraction(ch.RenamedSameLoc, ch.Renamed)),
		ch.RenamedMovedLoc, stats.Pct(stats.Fraction(ch.RenamedMovedLoc, ch.Renamed)),
		ch.RenamedNoHint, stats.Pct(stats.Fraction(ch.RenamedNoHint, ch.Renamed)))
	fmt.Fprintf(w, "  moved share of all addresses: %s [paper 7.4%%]\n", stats.Pct(ch.MovedShareOfAll))
	return nil
}

func runSec32(ctx context.Context, w io.Writer, env *Env) error {
	s := env.RTTStats
	fmt.Fprintf(w, "RTT-proximity construction funnel (0.5 ms threshold ⇒ %0.f km bound):\n",
		env.Cfg.RTT.MaxProximityKm())
	fmt.Fprintf(w, "  candidate addresses                %6d   [paper 4,960]\n", s.CandidateAddrs)
	fmt.Fprintf(w, "  contributing probes                %6d   [paper 1,387]\n", s.ProbesContributing)
	fmt.Fprintf(w, "  filter 1 — default country coordinates:\n")
	fmt.Fprintf(w, "    probes near a centroid (≤5 km)   %6d   [paper 19]\n", s.CentroidProbes)
	fmt.Fprintf(w, "    addresses removed                %6d   [paper 109]\n", s.CentroidAddrsRemoved)
	fmt.Fprintf(w, "  filter 2 — RTT-nearby consistency (≤%.0f km between probes):\n", env.Cfg.RTT.NearbyMaxKm)
	fmt.Fprintf(w, "    addresses with ≥2 probes         %6d   [paper 495]\n", s.NearbyGroupAddrs)
	fmt.Fprintf(w, "    inconsistent addresses           %6d (%s)  [paper 12, 2.4%%]\n",
		s.InconsistentAddrs, stats.Pct(stats.Fraction(s.InconsistentAddrs, s.NearbyGroupAddrs)))
	fmt.Fprintf(w, "    probes in groups                 %6d   [paper 223]\n", s.ProbesInGroups)
	fmt.Fprintf(w, "    probes disqualified              %6d (%s)  [paper 5, 2.2%%]\n",
		s.DisqualifiedProbes, stats.Pct(stats.Fraction(s.DisqualifiedProbes, s.ProbesInGroups)))
	fmt.Fprintf(w, "    addresses removed                %6d   [paper 13]\n", s.NearbyAddrsRemoved)
	fmt.Fprintf(w, "  final dataset                      %6d   [paper 4,838]\n", s.Final)
	fmt.Fprintf(w, "  ≥2 hops from probe                 %s   [paper >80%%]\n", stats.Pct(s.TwoPlusHopsShare))

	// Filter effectiveness against internal truth: how many genuinely
	// mislocated probes slipped through (the paper cannot measure this;
	// the simulator can, which is the point of having exact truth).
	misloc := map[int]bool{}
	for _, p := range env.Fleet.Probes {
		if p.Mislocated {
			misloc[p.ID] = true
		}
	}
	var leaked int
	for _, e := range env.RTTDS.Entries {
		if misloc[e.ProbeID] {
			leaked++
		}
	}
	fmt.Fprintf(w, "  residual entries vouched by mislocated probes: %d of %d (%s)\n",
		leaked, env.RTTDS.Len(), stats.Pct(stats.Fraction(leaked, env.RTTDS.Len())))
	return nil
}
