package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"

	"routergeo/internal/core"
	"routergeo/internal/geodb"
	"routergeo/internal/geodb/snapshot"
	"routergeo/internal/obs"
	"routergeo/internal/stats"
)

// targetsAt re-grounds the evaluation targets at a churn horizon: an
// interface that moved by then is scored against its new location, so
// the drift the sweep reports is the databases' staleness, not the
// world's. Month zero returns the shared target slice untouched.
func targetsAt(env *Env, months float64) []core.Target {
	if months == 0 {
		return env.Targets
	}
	out := make([]core.Target, len(env.Targets))
	copy(out, env.Targets)
	for i := range out {
		id, ok := env.W.IfaceByAddr(out[i].Addr)
		if !ok || !env.Evo.Moved(id, months) {
			continue
		}
		out[i].Truth = env.Evo.CoordAt(id, months)
		out[i].TruthVec = out[i].Truth.Vec()
		out[i].Country = env.Evo.CityAt(id, months).Country
	}
	return out
}

// epochReport is one epoch's fully rendered block, buffered so the
// parallel sweep can emit blocks in epoch order — the output stream is
// byte-identical whether epochs run serially or concurrently.
type epochReport struct {
	rows bytes.Buffer
	err  error
}

// Longitudinal runs the drift sweep: it rebuilds the four vendor
// databases at each churn horizon (epoch k is k·intervalMonths months of
// evolution on the environment's shared timeline) and scores every
// epoch's databases against ground truth re-grounded at the same
// horizon. Per epoch and database it reports coverage, accuracy and the
// median city error, plus the address-weighted share of the epoch-0
// range set that has moved (the snapshot diff engine's view of the same
// churn); per epoch it reports the all-database country-agreement
// consistency over the Ark address list.
//
// Epochs are independent given the immutable Env, so with the parallel
// engine they run concurrently with buffered output, emitted in epoch
// order — byte-identical to the serial run, like every other sweep.
func Longitudinal(ctx context.Context, w io.Writer, env *Env, epochs int, intervalMonths float64) error {
	if epochs < 1 || intervalMonths <= 0 {
		return fmt.Errorf("experiments: longitudinal sweep needs epochs >= 1 and a positive interval, got %d and %v", epochs, intervalMonths)
	}
	ctx, sp := obs.Start(ctx, "longitudinal.sweep")
	defer sp.End()
	sp.SetItems(int64(epochs))

	fmt.Fprintf(w, "longitudinal drift sweep: %d epochs, %.1f months apart (world seed %d, evolution seed %d)\n",
		epochs, intervalMonths, env.Cfg.World.Seed, env.Cfg.EvolutionSeed)
	fmt.Fprintf(w, "%-5s %-7s %-18s %9s %9s %9s %9s %7s %7s\n",
		"epoch", "months", "db", "ctry-cov", "ctry-acc", "city-cov", "city-acc", "med-km", "moved")

	runEpoch := func(ctx context.Context, k int, out *bytes.Buffer) error {
		ctx, esp := obs.Start(ctx, fmt.Sprintf("longitudinal.epoch_%d", k))
		defer esp.End()
		months := float64(k) * intervalMonths

		dbs := env.DBs
		if k > 0 {
			var err error
			dbs, err = env.BuildDBsAt(ctx, months)
			if err != nil {
				return err
			}
		}
		targets := targetsAt(env, months)
		esp.SetItems(int64(len(targets)))

		providers := make([]geodb.Provider, len(dbs))
		for j, db := range dbs {
			providers[j] = db
		}
		for j, db := range dbs {
			acc := core.MeasureAccuracy(ctx, db, targets)
			med := 0.0
			if acc.ErrorCDF != nil && acc.ErrorCDF.N() > 0 {
				med = acc.ErrorCDF.Quantile(0.5)
			}
			// The diff engine's view of the same churn: how much of the
			// epoch-0 range set (by address weight) answers differently now.
			moved := "-"
			if k > 0 {
				d := snapshot.Compare(env.DBs[j], db)
				if denom := d.MovedAddrs + d.UnchangedAddrs + d.RemovedAddrs; denom > 0 {
					moved = stats.Pct(float64(d.MovedAddrs) / float64(denom))
				}
			}
			fmt.Fprintf(out, "%-5d %-7.1f %-18s %9s %9s %9s %9s %7.0f %7s\n",
				k, months, db.Name(),
				stats.Pct(acc.CountryCoverage()), stats.Pct(acc.CountryAccuracy()),
				stats.Pct(acc.CityCoverage()), stats.Pct(acc.CityAccuracy()),
				med, moved)
		}
		agree, total := core.CountryAgreementAll(ctx, providers, env.ArkAddrs)
		fmt.Fprintf(out, "%-5d %-7.1f %-18s all-db country agreement %s (%d of %d)\n",
			k, months, "(consistency)", stats.Pct(stats.Fraction(agree, total)), agree, total)
		return nil
	}

	workers := core.Parallelism()
	reports := make([]epochReport, epochs)
	if workers <= 1 {
		for k := 0; k < epochs; k++ {
			if err := runEpoch(ctx, k, &reports[k].rows); err != nil {
				return fmt.Errorf("epoch %d: %w", k, err)
			}
			if _, err := w.Write(reports[k].rows.Bytes()); err != nil {
				return err
			}
		}
		return nil
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	wg.Add(epochs)
	for k := 0; k < epochs; k++ {
		go func(k int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			reports[k].err = runEpoch(ctx, k, &reports[k].rows)
		}(k)
	}
	wg.Wait()
	for k := range reports {
		if reports[k].err != nil {
			return fmt.Errorf("epoch %d: %w", k, reports[k].err)
		}
		if _, err := w.Write(reports[k].rows.Bytes()); err != nil {
			return err
		}
	}
	return nil
}
