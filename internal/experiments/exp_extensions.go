package experiments

// Beyond-the-paper analyses. Each extension either implements something
// the paper names but does not do (block co-locality, §5.2.3's explicit
// future work), compares against the alternative it mentions (delay-based
// geolocation, §1), or stress-tests one of its methodological choices
// (the 0.5 ms threshold, the probe filters, majority voting from prior
// work §7).

import (
	"context"
	"fmt"
	"io"
	"sort"

	"routergeo/internal/cbg"
	"routergeo/internal/core"
	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/groundtruth"
	"routergeo/internal/ipx"
	"routergeo/internal/stats"
)

func init() {
	registerExt(Experiment{
		ID:    "ext-cbg",
		Title: "Extension: constraint-based (delay) geolocation vs the databases",
		Run:   runExtCBG,
	})
	registerExt(Experiment{
		ID:    "ext-blocks",
		Title: "Extension: /24 block co-locality (the paper's deferred analysis)",
		Run:   runExtBlocks,
	})
	registerExt(Experiment{
		ID:    "ext-ablation",
		Title: "Extension: RTT-proximity threshold and filter ablation",
		Run:   runExtAblation,
	})
	registerExt(Experiment{
		ID:    "ext-majority",
		Title: "Extension: majority-vote evaluation (Geocompare-style) vs real ground truth",
		Run:   runExtMajority,
	})
}

// runExtCBG harvests per-address RTT observations from the Atlas built-in
// measurements, multilaterates each ground-truth address seen by at least
// three probes, and compares the error CDF with the four databases on the
// same address subset.
func runExtCBG(ctx context.Context, w io.Writer, env *Env) error {
	probeCoord := map[int]geo.Coordinate{}
	for i := range env.Fleet.Probes {
		p := &env.Fleet.Probes[i]
		probeCoord[p.ID] = p.Reported
	}
	obsByAddr := map[ipx.Addr][]cbg.Observation{}
	for _, m := range env.Measurements {
		pc, ok := probeCoord[m.ProbeID]
		if !ok {
			continue
		}
		for _, h := range m.Result {
			a, err := ipx.ParseAddr(h.From)
			if err != nil {
				continue
			}
			obsByAddr[a] = append(obsByAddr[a], cbg.Observation{
				From:  pc,
				RTTMs: h.MinRTT(),
			})
		}
	}

	cbgCDF := &stats.ECDF{}
	dbCDFs := map[string]*stats.ECDF{}
	for _, db := range env.DBs {
		dbCDFs[db.Name()] = &stats.ECDF{}
	}
	evaluated, feasible := 0, 0
	for _, t := range env.Targets {
		obs := obsByAddr[t.Addr]
		if len(obs) < 3 {
			continue
		}
		res, ok := cbg.Estimate(obs)
		if !ok {
			continue
		}
		evaluated++
		if res.Feasible {
			feasible++
		}
		cbgCDF.Add(res.Coord.DistanceKm(t.Truth))
		for _, db := range env.DBs {
			if rec, ok := db.Lookup(t.Addr); ok && rec.HasCity() {
				dbCDFs[db.Name()].Add(rec.Coord.DistanceKm(t.Truth))
			}
		}
	}
	if evaluated == 0 {
		fmt.Fprintln(w, "no ground-truth address was observed by >=3 probes; nothing to multilaterate")
		return nil
	}
	fmt.Fprintf(w, "ground-truth addresses with >=3 probe observations: %d (%d feasible systems)\n\n", evaluated, feasible)
	fmt.Fprintf(w, "%-22s %s\n", "CBG (delay-based)", cbgCDF.Render(cdfPoints))
	for _, db := range env.DBs {
		c := dbCDFs[db.Name()]
		if c.N() == 0 {
			continue
		}
		fmt.Fprintf(w, "%-22s %s\n", db.Name()+fmt.Sprintf(" (n=%d)", c.N()), c.Render(cdfPoints))
	}
	fmt.Fprintf(w, "\nwithin the 40 km city range: CBG %s vs NetAcuity %s on this subset\n",
		stats.Pct(cbgCDF.FractionAtOrBelow(40)), stats.Pct(dbCDFs["NetAcuity"].FractionAtOrBelow(40)))
	fmt.Fprintf(w, "(the paper's §1: delay-based geolocation is a viable alternative when probes are near targets)\n")
	return nil
}

// runExtBlocks quantifies /24 co-locality: how many routed blocks span
// multiple cities, how far apart, and how much worse block-level records
// do on spanning blocks.
func runExtBlocks(ctx context.Context, w io.Writer, env *Env) error {
	world := env.W
	spread := &stats.ECDF{}
	single, multi := 0, 0
	for _, p := range world.RoutedSlash24s() {
		cities := world.BlockCities(p.Base)
		if len(cities) <= 1 {
			single++
			continue
		}
		multi++
		max := 0.0
		for i := 0; i < len(cities); i++ {
			for j := i + 1; j < len(cities); j++ {
				if d := cities[i].Coord.DistanceKm(cities[j].Coord); d > max {
					max = d
				}
			}
		}
		spread.Add(max)
	}
	fmt.Fprintf(w, "routed /24 blocks: %d co-located, %d spanning multiple cities (%s)\n",
		single, multi, stats.Pct(stats.Fraction(multi, single+multi)))
	if spread.N() > 0 {
		fmt.Fprintf(w, "spanning blocks' maximum intra-block distance: median %.0f km, p90 %.0f km\n",
			spread.Median(), spread.Quantile(0.9))
	}

	// Does block co-locality predict database error? Split the MaxMind-Paid
	// ground-truth city answers by their block's co-locality.
	db := env.DB("MaxMind-Paid")
	var colocOK, colocN, spanOK, spanN int
	for _, t := range env.Targets {
		rec, ok := db.Lookup(t.Addr)
		if !ok || !rec.HasCity() || !rec.BlockLevel() {
			continue
		}
		within := rec.Coord.WithinKm(t.Truth, core.CityRangeKm)
		if world.BlockCityCount(t.Addr) > 1 {
			spanN++
			if within {
				spanOK++
			}
		} else {
			colocN++
			if within {
				colocOK++
			}
		}
	}
	fmt.Fprintf(w, "\nMaxMind-Paid block-level city answers over ground truth:\n")
	fmt.Fprintf(w, "  co-located blocks:    %s correct of %d\n", stats.Pct(stats.Fraction(colocOK, colocN)), colocN)
	fmt.Fprintf(w, "  city-spanning blocks: %s correct of %d\n", stats.Pct(stats.Fraction(spanOK, spanN)), spanN)
	fmt.Fprintf(w, "(a block-level record cannot be right for every interface of a spanning block — §5.2.3's hypothesis)\n")
	return nil
}

// runExtAblation re-runs the RTT-proximity construction across thresholds
// and with the §3.2 filters disabled, measuring yield and purity against
// the world's exact truth — the sensitivity analysis the paper's fixed
// choices imply.
func runExtAblation(ctx context.Context, w io.Writer, env *Env) error {
	fmt.Fprintf(w, "%-34s %8s %10s %10s\n", "configuration", "yield", "purity", "(bound km)")
	for _, th := range []float64{0.25, 0.5, 1.0, 2.0} {
		cfg := groundtruth.RTTConfig{ThresholdMs: th, CentroidKm: 5, NearbyMaxKm: 2 * th * 200}
		ds, _ := groundtruth.BuildRTT(ctx, env.W, env.Fleet, env.Measurements, cfg)
		fmt.Fprintf(w, "%-34s %8d %10s %10.0f\n",
			fmt.Sprintf("threshold %.2f ms, filters on", th),
			ds.Len(), stats.Pct(purity(env, ds, cfg.MaxProximityKm()+5)), cfg.MaxProximityKm())
	}
	// Filters off: disable both by making them vacuous.
	off := groundtruth.RTTConfig{ThresholdMs: 0.5, CentroidKm: 0, NearbyMaxKm: 1e9}
	ds, _ := groundtruth.BuildRTT(ctx, env.W, env.Fleet, env.Measurements, off)
	fmt.Fprintf(w, "%-34s %8d %10s %10.0f\n", "threshold 0.50 ms, filters OFF",
		ds.Len(), stats.Pct(purity(env, ds, 55)), 50.0)
	fmt.Fprintf(w, "\nyield = dataset size; purity = fraction of entries within the proximity bound of exact truth.\n")
	fmt.Fprintf(w, "Tighter thresholds buy purity with yield; the filters buy purity almost for free (§3.2).\n")
	return nil
}

func purity(env *Env, ds *groundtruth.Dataset, boundKm float64) float64 {
	if ds.Len() == 0 {
		return 0
	}
	ok := 0
	for _, e := range ds.Entries {
		if e.Coord.WithinKm(env.W.CoordOf(e.Iface), boundKm) {
			ok++
		}
	}
	return float64(ok) / float64(ds.Len())
}

// runExtMajority evaluates the databases the way prior work did — against
// a majority vote across databases — and contrasts the resulting ranking
// with the real ground truth, demonstrating the paper's warning that
// agreement does not imply correctness (§5.1, §8).
func runExtMajority(ctx context.Context, w io.Writer, env *Env) error {
	type vote struct {
		name string
		rec  geodb.Record
	}
	majorityCorrect := map[string]int{}
	majorityTotal := map[string]int{}
	truthCorrect := map[string]int{}
	truthTotal := map[string]int{}
	majorityWrong := 0
	votedTargets := 0

	for _, t := range env.Targets {
		var votes []vote
		for _, db := range env.DBs {
			if rec, ok := db.Lookup(t.Addr); ok && rec.HasCity() {
				votes = append(votes, vote{db.Name(), rec})
			}
		}
		if len(votes) < 3 {
			continue
		}
		votedTargets++
		// Majority location: the vote whose 40 km neighbourhood contains
		// the most votes (ties broken by database order).
		best, bestN := -1, 0
		for i := range votes {
			n := 0
			for j := range votes {
				if votes[i].rec.Coord.WithinKm(votes[j].rec.Coord, core.CityRangeKm) {
					n++
				}
			}
			if n > bestN {
				best, bestN = i, n
			}
		}
		majority := votes[best].rec.Coord
		if !majority.WithinKm(t.Truth, core.CityRangeKm) {
			majorityWrong++
		}
		for _, v := range votes {
			majorityTotal[v.name]++
			if v.rec.Coord.WithinKm(majority, core.CityRangeKm) {
				majorityCorrect[v.name]++
			}
			truthTotal[v.name]++
			if v.rec.Coord.WithinKm(t.Truth, core.CityRangeKm) {
				truthCorrect[v.name]++
			}
		}
	}

	fmt.Fprintf(w, "targets with city votes from >=3 databases: %d\n", votedTargets)
	fmt.Fprintf(w, "majority location wrong (>40 km from truth): %s\n\n",
		stats.Pct(stats.Fraction(majorityWrong, votedTargets)))
	fmt.Fprintf(w, "%-18s %18s %18s\n", "database", "acc vs majority", "acc vs truth")
	var names []string
	for n := range majorityTotal {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%-18s %18s %18s\n", n,
			stats.Pct(stats.Fraction(majorityCorrect[n], majorityTotal[n])),
			stats.Pct(stats.Fraction(truthCorrect[n], truthTotal[n])))
	}
	fmt.Fprintf(w, "\nA majority-vote evaluation (as in Geocompare and Shavitt et al., §7) rewards the\n")
	fmt.Fprintf(w, "registry-fed databases for agreeing on the same wrong answers; scoring against real\n")
	fmt.Fprintf(w, "ground truth reorders them — the paper's core argument for building ground truth.\n")
	return nil
}
