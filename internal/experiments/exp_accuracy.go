package experiments

import (
	"context"
	"fmt"
	"io"

	"routergeo/internal/core"
	"routergeo/internal/geo"
	"routergeo/internal/geodb"
	"routergeo/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "sec521",
		Title: "§5.2.1: coverage and country-level accuracy over the ground truth",
		Run:   runSec521,
	})
	register(Experiment{
		ID:    "fig2",
		Title: "Figure 2: geolocation-error CDFs vs ground truth",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Figure 3: country-level accuracy by RIR",
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Figure 4: country-level accuracy for the top-20 ground-truth countries",
		Run:   runFig4,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Figure 5: city-level error CDFs by RIR (MaxMind-Paid and NetAcuity)",
		Run:   runFig5,
	})
}

func runSec521(ctx context.Context, w io.Writer, env *Env) error {
	fmt.Fprintf(w, "Ground truth: %d addresses\n\n", len(env.Targets))
	fmt.Fprintf(w, "%-18s %16s %16s %18s %15s\n",
		"Database", "country coverage", "city coverage", "country accuracy", "city accuracy")
	for _, db := range env.DBs {
		a := core.MeasureAccuracy(ctx, db, env.Targets)
		fmt.Fprintf(w, "%-18s %16s %16s %18s %15s\n", db.Name(),
			stats.Pct(a.CountryCoverage()), stats.Pct(a.CityCoverage()),
			stats.Pct(a.CountryAccuracy()), stats.Pct(a.CityAccuracy()))
	}
	fmt.Fprintf(w, "\nPaper: NetAcuity country accuracy 89.4%%, others 77.5–78.6%%; MaxMind city coverage 30.4%%/41.3%%.\n")
	return nil
}

func runFig2(ctx context.Context, w io.Writer, env *Env) error {
	fmt.Fprintf(w, "Geolocation error vs ground truth for addresses with city answers (40 km city range):\n")
	for _, db := range env.DBs {
		a := core.MeasureAccuracy(ctx, db, env.Targets)
		fmt.Fprintf(w, "%-18s (n=%5d): %s\n", db.Name(), a.CityAnswered, a.ErrorCDF.Render(cdfPoints))
	}
	fmt.Fprintf(w, "\nPaper's shape: NetAcuity best, IP2Location-Lite worst but with full coverage;\n")
	fmt.Fprintf(w, "CDF n per database in the paper: IP2Loc 16538, MM-Paid 6848, MM-GeoLite 5037, NetAcuity 16519.\n")
	return nil
}

func runFig3(ctx context.Context, w io.Writer, env *Env) error {
	fmt.Fprintf(w, "%-18s", "Database")
	for _, r := range geo.RIRs {
		fmt.Fprintf(w, " %14s", r.String())
	}
	fmt.Fprintln(w)
	for _, db := range env.DBs {
		byRIR := core.AccuracyByRIR(ctx, db, env.Targets)
		fmt.Fprintf(w, "%-18s", db.Name())
		for _, r := range geo.RIRs {
			a := byRIR[r]
			incorrect := a.CountryAnswered - a.CountryCorrect
			fmt.Fprintf(w, " %5d/%-4d %4s", a.CountryCorrect, incorrect,
				stats.Pct(1-a.CountryAccuracy()))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "(cells: correct/incorrect and %% incorrect; paper's %% incorrect rows:\n")
	fmt.Fprintf(w, " AFRINIC 6.2/6.1/6.1/6.1, APNIC 19.8/7.3/7.2/6.4, ARIN 23.0/21.1/19.6/11.4,\n")
	fmt.Fprintf(w, " LACNIC 0/0/0/0, RIPENCC 22.6/29.5/29.1/10.0 for IP2Loc/MM-GeoLite/MM-Paid/NetAcuity)\n")
	return nil
}

func runFig4(ctx context.Context, w io.Writer, env *Env) error {
	top := core.TopCountries(env.Targets, 20)
	perDB := map[string]map[string]core.Accuracy{}
	for _, db := range env.DBs {
		perDB[db.Name()] = core.AccuracyByCountry(ctx, db, env.Targets)
	}
	counts := map[string]int{}
	for _, t := range env.Targets {
		counts[t.Country]++
	}

	fmt.Fprintf(w, "%-4s %6s", "CC", "n")
	for _, db := range env.DBs {
		fmt.Fprintf(w, " %18s", db.Name())
	}
	fmt.Fprintln(w)
	for _, cc := range top {
		fmt.Fprintf(w, "%-4s %6d", cc, counts[cc])
		for _, db := range env.DBs {
			a := perDB[db.Name()][cc]
			fmt.Fprintf(w, " %18s", stats.Pct(a.CountryAccuracy()))
		}
		fmt.Fprintln(w)
	}

	// The shared-wrong-answer analysis: the three registry-fed databases
	// agree on the same wrong country for most of their mistakes.
	regFed := []string{"IP2Location-Lite", "MaxMind-GeoLite", "MaxMind-Paid"}
	dbs := make([]geodb.Provider, 0, len(regFed))
	for _, name := range regFed {
		dbs = append(dbs, env.DB(name))
	}
	shared, wrong := core.SharedIncorrect(dbs, env.Targets)
	fmt.Fprintf(w, "\nShared incorrect country answers among %v: %d\n", regFed, shared)
	for i, name := range regFed {
		fmt.Fprintf(w, "  %-18s wrong on %5d, shared share %s (paper: 61–67%%)\n",
			name, wrong[i], stats.Pct(stats.Fraction(shared, wrong[i])))
	}
	return nil
}

func runFig5(ctx context.Context, w io.Writer, env *Env) error {
	for _, name := range []string{"MaxMind-Paid", "NetAcuity"} {
		db := env.DB(name)
		overall := core.MeasureAccuracy(ctx, db, env.Targets)
		fmt.Fprintf(w, "%s — city answers for %s of ground truth (paper: 41.29%% / 99.6%%):\n",
			name, stats.Pct(overall.CityCoverage()))
		byRIR := core.AccuracyByRIR(ctx, db, env.Targets)
		for _, r := range geo.RIRs {
			a := byRIR[r]
			if a.CityAnswered == 0 {
				fmt.Fprintf(w, "  %-8s (n=    0)\n", r.String())
				continue
			}
			fmt.Fprintf(w, "  %-8s (n=%5d): %s\n", r.String(), a.CityAnswered, a.ErrorCDF.Render(cdfPoints))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "Paper's shape: ARIN is the worst region at city level for every database.\n")
	return nil
}
