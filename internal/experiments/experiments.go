package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"routergeo/internal/core"
	"routergeo/internal/obs"
)

// Experiment is one reproducible artifact of the paper's evaluation.
type Experiment struct {
	// ID is the short handle used on the command line (e.g. "fig2").
	ID string
	// Title names the paper artifact.
	Title string
	// Run prints the artifact's rows/series to w. The context carries the
	// run's trace span, so core measurements nest under the experiment.
	Run func(ctx context.Context, w io.Writer, env *Env) error
}

// RunOne executes a single experiment under its own "exp.<id>" span.
func RunOne(ctx context.Context, e Experiment, w io.Writer, env *Env) error {
	ctx, sp := obs.Start(ctx, "exp."+e.ID)
	defer sp.End()
	return e.Run(ctx, w, env)
}

// registry of experiments, populated by the exp_*.go files; extensions
// holds the beyond-the-paper analyses (CBG comparison, block co-locality,
// ablations, majority vote) kept apart so All() stays exactly the paper's
// 14 artifacts.
var (
	registry   []Experiment
	extensions []Experiment
)

func register(e Experiment)    { registry = append(registry, e) }
func registerExt(e Experiment) { extensions = append(extensions, e) }

// Extensions returns the beyond-the-paper analyses in registration order.
func Extensions() []Experiment {
	out := make([]Experiment, len(extensions))
	copy(out, extensions)
	return out
}

// All returns every experiment in presentation order (Table 1 first, the
// recommendations last).
func All() []Experiment {
	order := map[string]int{
		"table1": 1, "sec31": 2, "sec32": 3, "sec4": 4, "sec51": 5,
		"fig1": 6, "sec521": 7, "fig2": 8, "fig3": 9, "fig4": 10,
		"fig5": 11, "sec523": 12, "sec524": 13, "rec": 14,
	}
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return order[out[i].ID] < order[out[j].ID] })
	return out
}

// ByID fetches one experiment, searching the paper artifacts first and
// the extensions second.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	for _, e := range extensions {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment against env, writing each artifact
// under a banner in presentation order. The experiments are independent
// (each reads the immutable Env and builds its own accumulators), so
// when the measurement engine is parallel they run concurrently with
// their output buffered and emitted in registry order — the stream is
// byte-identical to a sequential run. Output stops at the first failed
// experiment and its error is returned, though later experiments may
// already have run by then.
func RunAll(ctx context.Context, w io.Writer, env *Env) error {
	exps := All()
	workers := core.Parallelism()
	if workers <= 1 {
		for _, e := range exps {
			fmt.Fprintf(w, "\n================ %s — %s ================\n", e.ID, e.Title)
			if err := RunOne(ctx, e, w, env); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		return nil
	}
	bufs := make([]bytes.Buffer, len(exps))
	errs := make([]error, len(exps))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	wg.Add(len(exps))
	for i, e := range exps {
		go func(i int, e Experiment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = RunOne(ctx, e, &bufs[i], env)
		}(i, e)
	}
	wg.Wait()
	for i, e := range exps {
		fmt.Fprintf(w, "\n================ %s — %s ================\n", e.ID, e.Title)
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			return err
		}
		if errs[i] != nil {
			return fmt.Errorf("%s: %w", e.ID, errs[i])
		}
	}
	return nil
}

// cdfPoints are the distance probes (km) the textual CDFs print at,
// spanning the paper's log-scale x-axes.
var cdfPoints = []float64{1, 10, 40, 100, 500, 1000, 5000, 10000}
