package experiments

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"routergeo/internal/core"
	"routergeo/internal/geo"
	"routergeo/internal/obs"
)

// WritePlotData exports the raw series behind every figure as
// tab-separated files, ready for gnuplot/matplotlib, so the paper's plots
// can be regenerated graphically rather than as textual CDFs:
//
//	fig1_<A>_vs_<B>.tsv      distance_km  cdf        (+ header comment with identical-share)
//	fig2_<db>.tsv            error_km     cdf
//	fig3.tsv                 rir  db  correct  incorrect
//	fig4.tsv                 cc   n   acc per database
//	fig5_<db>_<rir>.tsv      error_km     cdf
func WritePlotData(ctx context.Context, dir string, env *Env) error {
	ctx, sp := obs.Start(ctx, "plot.write")
	defer sp.End()
	sp.SetAttr("dir", dir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	// Figure 1.
	subset := core.CityAnsweredInAll(ctx, env.Providers(), env.ArkAddrs)
	pairs := [][2]string{
		{"MaxMind-GeoLite", "MaxMind-Paid"},
		{"IP2Location-Lite", "NetAcuity"},
		{"MaxMind-Paid", "NetAcuity"},
		{"IP2Location-Lite", "MaxMind-Paid"},
	}
	for _, pair := range pairs {
		p := core.MeasurePairwiseCity(ctx, env.DB(pair[0]), env.DB(pair[1]), subset)
		name := fmt.Sprintf("fig1_%s_vs_%s.tsv", slug(pair[0]), slug(pair[1]))
		header := fmt.Sprintf("# pairwise distance CDF; n=%d compared, %d identical pairs excluded",
			p.Both, p.Identical)
		if err := writeCDF(filepath.Join(dir, name), header, p.CDF.Points()); err != nil {
			return err
		}
	}

	// Figure 2.
	for _, db := range env.DBs {
		a := core.MeasureAccuracy(ctx, db, env.Targets)
		name := fmt.Sprintf("fig2_%s.tsv", slug(db.Name()))
		header := fmt.Sprintf("# geolocation error CDF vs ground truth; n=%d city answers", a.CityAnswered)
		if err := writeCDF(filepath.Join(dir, name), header, a.ErrorCDF.Points()); err != nil {
			return err
		}
	}

	// Figure 3.
	f3, err := os.Create(filepath.Join(dir, "fig3.tsv"))
	if err != nil {
		return err
	}
	w3 := bufio.NewWriter(f3)
	fmt.Fprintln(w3, "# country-level accuracy by RIR\nrir\tdb\tcorrect\tincorrect")
	for _, db := range env.DBs {
		byRIR := core.AccuracyByRIR(ctx, db, env.Targets)
		for _, r := range geo.RIRs {
			a := byRIR[r]
			fmt.Fprintf(w3, "%s\t%s\t%d\t%d\n", r, db.Name(), a.CountryCorrect, a.CountryAnswered-a.CountryCorrect)
		}
	}
	if err := w3.Flush(); err != nil {
		return err
	}
	if err := f3.Close(); err != nil {
		return err
	}

	// Figure 4.
	f4, err := os.Create(filepath.Join(dir, "fig4.tsv"))
	if err != nil {
		return err
	}
	w4 := bufio.NewWriter(f4)
	fmt.Fprint(w4, "# country-level accuracy, top-20 ground-truth countries\ncc\tn")
	for _, db := range env.DBs {
		fmt.Fprintf(w4, "\t%s", slug(db.Name()))
	}
	fmt.Fprintln(w4)
	counts := map[string]int{}
	for _, t := range env.Targets {
		counts[t.Country]++
	}
	perDB := map[string]map[string]core.Accuracy{}
	for _, db := range env.DBs {
		perDB[db.Name()] = core.AccuracyByCountry(ctx, db, env.Targets)
	}
	for _, cc := range core.TopCountries(env.Targets, 20) {
		fmt.Fprintf(w4, "%s\t%d", cc, counts[cc])
		for _, db := range env.DBs {
			fmt.Fprintf(w4, "\t%.4f", perDB[db.Name()][cc].CountryAccuracy())
		}
		fmt.Fprintln(w4)
	}
	if err := w4.Flush(); err != nil {
		return err
	}
	if err := f4.Close(); err != nil {
		return err
	}

	// Figure 5 (both panels, all regions).
	for _, name := range []string{"MaxMind-Paid", "NetAcuity"} {
		byRIR := core.AccuracyByRIR(ctx, env.DB(name), env.Targets)
		for _, r := range geo.RIRs {
			a := byRIR[r]
			if a.ErrorCDF == nil || a.ErrorCDF.N() == 0 {
				continue
			}
			file := fmt.Sprintf("fig5_%s_%s.tsv", slug(name), strings.ToLower(r.String()))
			header := fmt.Sprintf("# %s city-error CDF in %s; n=%d", name, r, a.CityAnswered)
			if err := writeCDF(filepath.Join(dir, file), header, a.ErrorCDF.Points()); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeCDF emits a (value, cumulative fraction) step series.
func writeCDF(path, header string, points []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, "value\tcdf")
	n := float64(len(points))
	for i, x := range points {
		fmt.Fprintf(w, "%.4f\t%.6f\n", x, float64(i+1)/n)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func slug(s string) string {
	return strings.ToLower(strings.ReplaceAll(s, "-", "_"))
}
