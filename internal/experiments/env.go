// Package experiments wires the full reproduction together: it builds one
// Env (world, Ark sweep, rDNS zone, Atlas fleet, ground truth, the four
// vendor databases) and exposes one runner per table, figure and in-text
// analysis of the paper's evaluation. Each runner prints the rows or
// series the paper reports, at this reproduction's scale.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"routergeo/internal/ark"
	"routergeo/internal/atlas"
	"routergeo/internal/core"
	"routergeo/internal/geodb"
	"routergeo/internal/groundtruth"
	"routergeo/internal/hints"
	"routergeo/internal/ipx"
	"routergeo/internal/netsim"
	"routergeo/internal/obs"
	"routergeo/internal/rdns"
	"routergeo/internal/vendors"
)

// Config assembles the sub-configurations of the pipeline. Zero values
// pull each component's defaults.
type Config struct {
	World netsim.Config
	Ark   ark.Config
	RDNS  rdns.Config
	Atlas atlas.Config
	RTT   groundtruth.RTTConfig
	// OneMsProbes sizes the second, later fleet used to synthesize the
	// Giotsas-style 1 ms comparison dataset (§3.1/§3.2).
	OneMsProbes int
	// EvolutionSeed drives the churn timeline shared by §3's analyses.
	EvolutionSeed int64
}

// DefaultConfig runs the pipeline at the scale DESIGN.md documents.
func DefaultConfig() Config {
	return Config{
		World:         netsim.DefaultConfig(),
		Ark:           ark.DefaultConfig(),
		RDNS:          rdns.DefaultConfig(),
		Atlas:         atlas.DefaultConfig(),
		RTT:           groundtruth.DefaultRTTConfig(),
		OneMsProbes:   2600,
		EvolutionSeed: 97,
	}
}

// Env is the fully built experimental environment. Build it once with
// NewEnv and run any number of experiments against it.
type Env struct {
	Cfg  Config
	W    *netsim.World
	Coll *ark.Collection
	Dict *hints.Dictionary
	Dec  *hints.Decoder
	Zone *rdns.Zone

	Fleet        *atlas.Fleet
	Measurements []atlas.Measurement

	DNS      *groundtruth.Dataset
	DNSStats groundtruth.DNSStats
	RTTDS    *groundtruth.Dataset
	RTTStats groundtruth.RTTStats
	GT       *groundtruth.Dataset
	Targets  []core.Target

	// Evo is the shared churn timeline; OneMs the +10-month 1 ms dataset.
	Evo   *netsim.Evolution
	OneMs *groundtruth.Dataset

	// Feed is the registration-data input the vendor builds consumed,
	// retained so BuildDBsAt can rebuild the same vendors at a later
	// churn horizon without re-deriving it.
	Feed *vendors.Feed

	// DBs holds the four databases in the paper's presentation order:
	// IP2Location-Lite, MaxMind-GeoLite, MaxMind-Paid, NetAcuity.
	DBs []*geodb.DB

	// ArkAddrs is the Ark-topo-router address list the §5.1 analyses use.
	ArkAddrs []ipx.Addr
}

// DB fetches a database by name; it panics on unknown names, which would
// be a programming error in an experiment.
func (e *Env) DB(name string) *geodb.DB {
	for _, db := range e.DBs {
		if db.Name() == name {
			return db
		}
	}
	panic("experiments: unknown database " + name)
}

// Providers returns the databases as the provider interface slice the
// core methodology consumes.
func (e *Env) Providers() []geodb.Provider {
	out := make([]geodb.Provider, len(e.DBs))
	for i, db := range e.DBs {
		out[i] = db
	}
	return out
}

// NewEnv builds the environment. With the default configuration this
// takes a few seconds on one core; everything downstream is cheap. The
// context carries the run's trace span (if any); every build stage
// attaches its own child span under "env.build".
func NewEnv(ctx context.Context, cfg Config) (*Env, error) {
	ctx, envSpan := obs.Start(ctx, "env.build")
	defer envSpan.End()

	_, wSpan := obs.Start(ctx, "netsim.build")
	w, err := netsim.Build(cfg.World)
	if err != nil {
		wSpan.End()
		return nil, fmt.Errorf("experiments: build world: %w", err)
	}
	wSpan.SetItems(int64(len(w.Interfaces)))
	wSpan.End()
	e := &Env{Cfg: cfg, W: w}

	_, zSpan := obs.Start(ctx, "rdns.synthesize")
	e.Dict = hints.NewDictionary(w.Gaz)
	e.Dec = hints.NewDecoder(e.Dict)
	e.Zone = rdns.Synthesize(w, e.Dict, cfg.RDNS)
	zSpan.End()

	// The three measurement campaigns are independent of one another (each
	// owns its RNG), so they run concurrently; their consumers join below.
	// Their spans all attach under env.build — children append under the
	// parent's lock, so concurrent Starts are safe.
	var (
		wg     sync.WaitGroup
		fleet2 *atlas.Fleet
		ms2    []atlas.Measurement
	)
	wg.Add(3)
	go func() {
		defer wg.Done()
		e.Coll = ark.Collect(ctx, w, cfg.Ark)
	}()
	go func() {
		defer wg.Done()
		_, sp := obs.Start(ctx, "atlas.deploy")
		defer sp.End()
		e.Fleet = atlas.Deploy(w, cfg.Atlas)
		e.Measurements = e.Fleet.RunBuiltins(cfg.Atlas.Seed + 1)
		sp.SetItems(int64(len(e.Measurements)))
	}()
	go func() {
		defer wg.Done()
		// The Giotsas-style comparison fleet: larger, later, 1 ms rule.
		_, sp := obs.Start(ctx, "atlas.deploy_1ms")
		defer sp.End()
		fleet2Cfg := cfg.Atlas
		fleet2Cfg.Probes = cfg.OneMsProbes
		fleet2Cfg.Seed = cfg.Atlas.Seed + 1000
		fleet2 = atlas.Deploy(w, fleet2Cfg)
		ms2 = fleet2.RunBuiltins(fleet2Cfg.Seed + 1)
		sp.SetItems(int64(len(ms2)))
	}()
	wg.Wait()

	for _, id := range e.Coll.Interfaces {
		e.ArkAddrs = append(e.ArkAddrs, w.Interfaces[id].Addr)
	}

	e.DNS, e.DNSStats = groundtruth.BuildDNS(ctx, w, e.Coll, e.Zone, e.Dec)
	e.RTTDS, e.RTTStats = groundtruth.BuildRTT(ctx, w, e.Fleet, e.Measurements, cfg.RTT)

	_, mSpan := obs.Start(ctx, "groundtruth.merge")
	e.GT = groundtruth.Merge(e.DNS, e.RTTDS)
	e.Targets = core.TargetsFromDataset(w, e.GT)
	mSpan.SetItems(int64(len(e.Targets)))
	mSpan.End()

	_, evoSpan := obs.Start(ctx, "netsim.evolve")
	e.Evo = w.Evolve(rand.New(rand.NewSource(cfg.EvolutionSeed)), netsim.DefaultEvolutionParams())
	evoSpan.End()

	oneMsCtx, oneMsSpan := obs.Start(ctx, "groundtruth.1ms")
	oneMsCfg := groundtruth.RTTConfig{ThresholdMs: 1.0, CentroidKm: cfg.RTT.CentroidKm, NearbyMaxKm: 200}
	oneMsBase, _ := groundtruth.BuildRTT(oneMsCtx, w, fleet2, ms2, oneMsCfg)
	e.OneMs = groundtruth.Build1ms(w, oneMsBase, e.Evo, 10, 0.7, cfg.EvolutionSeed+1)
	oneMsSpan.SetItems(int64(e.OneMs.Len()))
	oneMsSpan.End()

	// The four vendor pipelines are read-only over the shared inputs and
	// deterministic per vendor; build them concurrently, keeping the
	// presentation order stable.
	vCtx, vSpan := obs.Start(ctx, "vendors.build")
	defer vSpan.End()
	e.Feed = vendors.BuildFeed(w, vendors.DefaultFeedConfig())
	in := vendors.Inputs{
		World:   w,
		Feed:    e.Feed,
		Zone:    e.Zone,
		Decoder: e.Dec,
	}
	params := vendors.AllParams()
	dbs := make([]*geodb.DB, len(params))
	errs := make([]error, len(params))
	wg.Add(len(params))
	for i, p := range params {
		go func(i int, p vendors.Params) {
			defer wg.Done()
			_, sp := obs.Start(vCtx, "vendors.build."+p.Name)
			defer sp.End()
			dbs[i], errs[i] = vendors.Build(in, p)
			if dbs[i] != nil {
				sp.SetItems(int64(dbs[i].Len()))
			}
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: build vendors: %w", err)
		}
	}
	e.DBs = dbs
	return e, nil
}

// BuildDBsAt rebuilds the four vendor databases as of a churn horizon on
// the environment's evolution timeline, in the same presentation order
// as DBs. A horizon of zero reproduces DBs byte for byte — every vendor
// pipeline consumes the month-0 view of the same timeline — which is the
// anchor the longitudinal analyses (and the snapshot series geosnap
// publishes) rest on.
func (e *Env) BuildDBsAt(ctx context.Context, months float64) ([]*geodb.DB, error) {
	vCtx, vSpan := obs.Start(ctx, "vendors.build_at")
	defer vSpan.End()
	in := vendors.Inputs{
		World:      e.W,
		Feed:       e.Feed,
		Zone:       e.Zone,
		Decoder:    e.Dec,
		Evo:        e.Evo,
		AsOfMonths: months,
	}
	params := vendors.AllParams()
	dbs := make([]*geodb.DB, len(params))
	errs := make([]error, len(params))
	var wg sync.WaitGroup
	wg.Add(len(params))
	for i, p := range params {
		go func(i int, p vendors.Params) {
			defer wg.Done()
			_, sp := obs.Start(vCtx, "vendors.build_at."+p.Name)
			defer sp.End()
			dbs[i], errs[i] = vendors.Build(in, p)
			if dbs[i] != nil {
				sp.SetItems(int64(dbs[i].Len()))
			}
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: build vendors at %v months: %w", months, err)
		}
	}
	return dbs, nil
}
