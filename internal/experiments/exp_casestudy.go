package experiments

import (
	"context"
	"fmt"
	"io"

	"routergeo/internal/core"
	"routergeo/internal/geo"
	"routergeo/internal/groundtruth"
	"routergeo/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "sec523",
		Title: "§5.2.3: poor city-level accuracy at ARIN (MaxMind-Paid case study)",
		Run:   runSec523,
	})
	register(Experiment{
		ID:    "sec524",
		Title: "§5.2.4: accuracy against the DNS-based and RTT-proximity datasets separately",
		Run:   runSec524,
	})
	register(Experiment{
		ID:    "rec",
		Title: "§6: recommendations synthesized from the measured results",
		Run:   runRecommendations,
	})
}

func runSec523(ctx context.Context, w io.Writer, env *Env) error {
	s := core.RunARINCaseStudy(env.DB("MaxMind-Paid"), env.Targets)
	fmt.Fprintf(w, "ARIN holds %d ground-truth addresses (%s of the set) [paper: 10,608 = 64%%]\n",
		s.ARINTargets, stats.Pct(s.ARINShare))
	fmt.Fprintf(w, "ARIN addresses not located in the US:   %5d [paper: 2,793]\n", s.NonUS)
	fmt.Fprintf(w, "  of those, geolocated to the US:       %5d (%s) [paper: 1,955 = 70%%]\n",
		s.NonUSPlacedInUS, stats.Pct(stats.Fraction(s.NonUSPlacedInUS, s.NonUS)))
	fmt.Fprintf(w, "  of those, with city-level answers:    %5d (%s) [paper: 519 = 26.6%%]\n",
		s.NonUSPlacedInUSCity, stats.Pct(stats.Fraction(s.NonUSPlacedInUSCity, s.NonUSPlacedInUS)))
	fmt.Fprintf(w, "  of those, >1000 km off:               %5d (%s) [paper: 504]\n",
		s.NonUSCityOver1000Km, stats.Pct(stats.Fraction(s.NonUSCityOver1000Km, s.NonUSPlacedInUSCity)))
	fmt.Fprintf(w, "\nUS-located ARIN addresses with city answers: %5d [paper: 3,897]\n", s.USARINCityAnswered)
	fmt.Fprintf(w, "  geolocation error > 40 km:            %5d (%s) [paper: 2,267 = 58.2%%]\n",
		s.USARINCityWrong, stats.Pct(stats.Fraction(s.USARINCityWrong, s.USARINCityAnswered)))
	fmt.Fprintf(w, "  block-level among the wrong answers:  %s [paper: ~91%%]\n", stats.Pct(s.WrongBlockShare()))
	fmt.Fprintf(w, "  block-level among the correct ones:   %s [paper: ~78%%]\n", stats.Pct(s.CorrectBlockShare()))
	return nil
}

func runSec524(ctx context.Context, w io.Writer, env *Env) error {
	fmt.Fprintf(w, "City-level accuracy and coverage per ground-truth method (40 km range):\n\n")
	fmt.Fprintf(w, "%-18s %22s %22s\n", "Database", "DNS-based acc (cov)", "RTT-proximity acc (cov)")
	type row struct{ dnsAcc, rttAcc float64 }
	rows := map[string]row{}
	for _, db := range env.DBs {
		byM := core.AccuracyByMethod(ctx, db, env.Targets)
		dns, rtt := byM[groundtruth.DNS], byM[groundtruth.RTT]
		rows[db.Name()] = row{dns.CityAccuracy(), rtt.CityAccuracy()}
		fmt.Fprintf(w, "%-18s %12s (%6s) %14s (%6s)\n", db.Name(),
			stats.Pct(dns.CityAccuracy()), stats.Pct(dns.CityCoverage()),
			stats.Pct(rtt.CityAccuracy()), stats.Pct(rtt.CityCoverage()))
	}
	fmt.Fprintf(w, "\nPaper: NetAcuity 74.2%% DNS vs 70.1%% RTT — the only database better on the\n")
	fmt.Fprintf(w, "DNS-based data, implying it decodes hostname hints; MaxMind-Paid 43.9%% vs 66.5%%.\n")
	// Iterate in the databases' presentation order, not map order: these
	// lines are experiment output and must be byte-identical run to run.
	better := 0
	for _, db := range env.DBs {
		r := rows[db.Name()]
		if r.dnsAcc > r.rttAcc {
			fmt.Fprintf(w, "Better on DNS-based here: %s (%s vs %s)\n",
				db.Name(), stats.Pct(r.dnsAcc), stats.Pct(r.rttAcc))
			better++
		}
	}
	if better == 0 {
		fmt.Fprintf(w, "No database did better on the DNS-based data in this run.\n")
	}

	// Regional view for NetAcuity (paper: ARIN 55.1%% RTT vs 70.6%% DNS).
	neta := env.DB("NetAcuity")
	var dnsT, rttT []core.Target
	for _, t := range env.Targets {
		if t.Method == groundtruth.DNS {
			dnsT = append(dnsT, t)
		} else {
			rttT = append(rttT, t)
		}
	}
	byRIRDNS := core.AccuracyByRIR(ctx, neta, dnsT)
	byRIRRTT := core.AccuracyByRIR(ctx, neta, rttT)
	fmt.Fprintf(w, "\nNetAcuity city accuracy by RIR and method:\n")
	for _, r := range geo.RIRs {
		fmt.Fprintf(w, "  %-8s DNS %s (n=%d)   RTT %s (n=%d)\n", r.String(),
			stats.Pct(byRIRDNS[r].CityAccuracy()), byRIRDNS[r].CityAnswered,
			stats.Pct(byRIRRTT[r].CityAccuracy()), byRIRRTT[r].CityAnswered)
	}
	return nil
}

func runRecommendations(ctx context.Context, w io.Writer, env *Env) error {
	results := map[string]core.Accuracy{}
	perRIR := map[string]map[geo.RIR]core.Accuracy{}
	for _, db := range env.DBs {
		results[db.Name()] = core.MeasureAccuracy(ctx, db, env.Targets)
		perRIR[db.Name()] = core.AccuracyByRIR(ctx, db, env.Targets)
	}
	recs := core.Recommend(results, perRIR)
	for _, r := range recs {
		fmt.Fprintf(w, "%d. [%s] %s\n", r.Rank, r.Subject, r.Text)
	}
	return nil
}
