package experiments

import (
	"context"
	"fmt"
	"io"

	"routergeo/internal/groundtruth"
	"routergeo/internal/hints"
	"routergeo/internal/stats"
)

func init() {
	registerExt(Experiment{
		ID:    "ext-drop",
		Title: "Extension: learn DRoP rules from RTT-proximity data and rebuild the DNS ground truth",
		Run:   runExtDrop,
	})
}

// runExtDrop closes the loop the paper's two ground-truth methods imply:
// DRoP (Huffaker et al. 2014) *learned* its hostname rules from latency
// measurements; the paper then used seven operator-confirmed rules to
// build its DNS ground truth. Here we learn rules exactly that way —
// training pairs are the RTT-proximity dataset's hostnames and
// probe-derived locations — and compare the learned rule set and the
// ground truth it produces against the operator-confirmed pipeline.
func runExtDrop(ctx context.Context, w io.Writer, env *Env) error {
	// Training data: RTT-proximity entries that have hostnames. The
	// locations come from probes, not from the world's truth.
	var examples []hints.Example
	for _, e := range env.RTTDS.Entries {
		name, ok := env.Zone.Lookup(e.Iface)
		if !ok {
			continue
		}
		city, dist := env.W.Gaz.Nearest(e.Coord)
		if dist > 25 { // probe location not resolvable to a known city
			continue
		}
		examples = append(examples, hints.Example{
			Hostname: name, Country: city.Country, City: city.Name,
		})
	}
	learned := hints.LearnRules(env.Dict, examples, 8, 0.7)
	fmt.Fprintf(w, "training examples (RTT-proximity hostnames): %d\n", len(examples))
	fmt.Fprintf(w, "learned rules: %d\n\n", len(learned))
	gtDomains := map[string]bool{}
	for _, d := range hints.GroundTruthDomains() {
		gtDomains[d] = true
	}
	learnedGT := 0
	for _, r := range learned {
		marker := " "
		if gtDomains[r.Suffix] {
			marker = "*"
			learnedGT++
		}
		fmt.Fprintf(w, "  %s %-20s label %d from end, dashHead=%v, support %d, accuracy %s\n",
			marker, r.Suffix, r.LabelFromEnd, r.DashHead, r.Support, stats.Pct(r.Accuracy))
	}
	fmt.Fprintf(w, "(* = one of the paper's seven operator-confirmed domains; %d of 7 recovered —\n", learnedGT)
	fmt.Fprintf(w, " recovery needs the domain's routers to sit near enough probes, as in DRoP)\n\n")

	// Rebuild the DNS ground truth with the learned decoder and compare
	// with the operator-confirmed one.
	dec := hints.DecoderWithLearned(env.Dict, learned)
	learnedDNS, _ := groundtruth.BuildDNS(ctx, env.W, env.Coll, env.Zone, dec)
	ov := groundtruth.CompareOverlap(env.DNS, learnedDNS)
	fmt.Fprintf(w, "DNS ground truth rebuilt with learned rules: %d addresses (confirmed rules: %d)\n",
		learnedDNS.Len(), env.DNS.Len())
	fmt.Fprintf(w, "common addresses: %d; agreeing within 40 km: %s\n",
		ov.Common, stats.Pct(stats.Fraction(ov.Within40Km, ov.Common)))

	// Truth check (possible only in simulation): accuracy of each set.
	acc := func(ds *groundtruth.Dataset) float64 {
		if ds.Len() == 0 {
			return 0
		}
		ok := 0
		for _, e := range ds.Entries {
			if e.Coord.WithinKm(env.W.CoordOf(e.Iface), 40) {
				ok++
			}
		}
		return float64(ok) / float64(ds.Len())
	}
	fmt.Fprintf(w, "against exact truth: confirmed-rule set %s correct, learned-rule set %s correct\n",
		stats.Pct(acc(env.DNS)), stats.Pct(acc(learnedDNS)))
	return nil
}
