package experiments

import (
	"context"
	"fmt"
	"io"

	"routergeo/internal/core"
	"routergeo/internal/geo"
	"routergeo/internal/groundtruth"
	"routergeo/internal/obs"
	"routergeo/internal/stats"
)

// StabilityReport rebuilds the whole environment under each seed and
// prints the headline metrics side by side — the evidence behind the
// claim that the reproduction's findings are properties of the modelled
// mechanisms, not of one lucky world. Each row is a full pipeline run.
func StabilityReport(ctx context.Context, w io.Writer, base Config, seeds []int64) error {
	ctx, sp := obs.Start(ctx, "stability.report")
	defer sp.End()
	sp.SetItems(int64(len(seeds)))
	fmt.Fprintf(w, "%-6s %6s %8s %8s %9s %9s %9s %9s %8s %9s\n",
		"seed", "GT", "NetA", "reg-fed", "NetA", "IP2L", "MM-P", "MM-P", "ARIN", "NetA-DNS")
	fmt.Fprintf(w, "%-6s %6s %8s %8s %9s %9s %9s %9s %8s %9s\n",
		"", "size", "country", "country", "city", "city", "city", "citycov", "wrong", "advant.")
	for _, seed := range seeds {
		cfg := base
		cfg.World.Seed = seed
		env, err := NewEnv(ctx, cfg)
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}

		neta := core.MeasureAccuracy(ctx, env.DB("NetAcuity"), env.Targets)
		ip2 := core.MeasureAccuracy(ctx, env.DB("IP2Location-Lite"), env.Targets)
		mmp := core.MeasureAccuracy(ctx, env.DB("MaxMind-Paid"), env.Targets)
		mmg := core.MeasureAccuracy(ctx, env.DB("MaxMind-GeoLite"), env.Targets)
		regFed := (ip2.CountryAccuracy() + mmp.CountryAccuracy() + mmg.CountryAccuracy()) / 3

		// ARIN city wrongness for MaxMind-Paid (the §5.2.3 signal).
		arin := core.AccuracyByRIR(ctx, env.DB("MaxMind-Paid"), env.Targets)[geo.ARIN]

		// NetAcuity's DNS-over-RTT advantage (the §5.2.4 signal).
		byM := core.AccuracyByMethod(ctx, env.DB("NetAcuity"), env.Targets)
		adv := byM[groundtruth.DNS].CityAccuracy() - byM[groundtruth.RTT].CityAccuracy()

		fmt.Fprintf(w, "%-6d %6d %8s %8s %9s %9s %9s %9s %8s %+8.1f\n",
			seed, env.GT.Len(),
			stats.Pct(neta.CountryAccuracy()), stats.Pct(regFed),
			stats.Pct(neta.CityAccuracy()), stats.Pct(ip2.CityAccuracy()),
			stats.Pct(mmp.CityAccuracy()), stats.Pct(mmp.CityCoverage()),
			stats.Pct(1-arin.CityAccuracy()), 100*adv)
	}
	fmt.Fprintf(w, "\ninvariants to check by eye: NetA country leads reg-fed by >10 points; IP2L city\n")
	fmt.Fprintf(w, "is worst; MM-P city coverage is partial; ARIN city wrongness is high; the\n")
	fmt.Fprintf(w, "NetAcuity DNS advantage stays positive. Paper anchors: 89.4%% vs ~78%%; 41.3%%\n")
	fmt.Fprintf(w, "coverage; 58.2%% ARIN wrong; +4.1-point DNS advantage.\n")
	return nil
}
