package experiments

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"strings"
	"testing"

	"routergeo/internal/core"
	"routergeo/internal/geo"
)

var cachedEnv *Env

func testEnv(t *testing.T) *Env {
	t.Helper()
	if cachedEnv != nil {
		return cachedEnv
	}
	cfg := DefaultConfig()
	cfg.World.ASes = 250
	cfg.Atlas.Probes = 600
	cfg.OneMsProbes = 900
	env, err := NewEnv(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cachedEnv = env
	return env
}

func TestEnvInvariants(t *testing.T) {
	env := testEnv(t)
	if len(env.DBs) != 4 {
		t.Fatalf("%d databases built", len(env.DBs))
	}
	if env.GT.Len() != len(env.Targets) {
		t.Errorf("targets (%d) != ground truth (%d)", len(env.Targets), env.GT.Len())
	}
	if env.DNS.Len()+env.RTTDS.Len() < env.GT.Len() {
		t.Error("merged ground truth exceeds its parts")
	}
	if len(env.ArkAddrs) != len(env.Coll.Interfaces) {
		t.Error("Ark address list inconsistent with collection")
	}
	if env.OneMs.Len() == 0 {
		t.Error("1ms comparison dataset empty")
	}
	// Every target address must resolve in the world and carry a RIR.
	for _, tg := range env.Targets[:min(200, len(env.Targets))] {
		if _, ok := env.W.IfaceByAddr(tg.Addr); !ok {
			t.Fatalf("target %v unknown to world", tg.Addr)
		}
		if tg.RIR == geo.RIRUnknown {
			t.Fatalf("target %v has no RIR", tg.Addr)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
	}
	want := []string{"table1", "sec31", "sec32", "sec4", "sec51", "fig1",
		"sec521", "fig2", "fig3", "fig4", "fig5", "sec523", "sec524", "rec"}
	if len(ids) != len(want) {
		t.Fatalf("have %d experiments, want %d", len(ids), len(want))
	}
	for _, id := range want {
		if !ids[id] {
			t.Errorf("experiment %q missing", id)
		}
	}
	// Presentation order: table1 first, rec last.
	all := All()
	if all[0].ID != "table1" || all[len(all)-1].ID != "rec" {
		t.Errorf("presentation order wrong: %s ... %s", all[0].ID, all[len(all)-1].ID)
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig2"); !ok {
		t.Error("fig2 should exist")
	}
	if _, ok := ByID("ext-cbg"); !ok {
		t.Error("ByID should find extensions")
	}
	if _, ok := ByID("fig99"); ok {
		t.Error("fig99 should not exist")
	}
}

func TestExtensionsSeparateFromPaperArtifacts(t *testing.T) {
	exts := Extensions()
	if len(exts) != 6 {
		t.Fatalf("got %d extensions", len(exts))
	}
	paper := map[string]bool{}
	for _, e := range All() {
		paper[e.ID] = true
	}
	for _, e := range exts {
		if paper[e.ID] {
			t.Errorf("extension %s leaked into the paper artifact list", e.ID)
		}
		if !strings.HasPrefix(e.ID, "ext-") {
			t.Errorf("extension id %q should be ext-prefixed", e.ID)
		}
	}
}

// TestExtensionsRun executes the four beyond-the-paper analyses and
// verifies their headline claims hold in the built environment.
func TestExtensionsRun(t *testing.T) {
	env := testEnv(t)
	markers := map[string][]string{
		"ext-cbg":      {"CBG (delay-based)", "NetAcuity"},
		"ext-blocks":   {"co-located", "spanning"},
		"ext-ablation": {"threshold", "filters OFF", "purity"},
		"ext-majority": {"acc vs majority", "acc vs truth"},
		"ext-vendors":  {"hint-pipeline ablation", "SWIP ablation", "control"},
		"ext-drop":     {"learned rules", "against exact truth"},
	}
	for _, e := range Extensions() {
		var buf bytes.Buffer
		if err := RunOne(context.Background(), e, &buf, env); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		out := buf.String()
		for _, m := range markers[e.ID] {
			if !strings.Contains(out, m) {
				t.Errorf("%s output missing %q", e.ID, m)
			}
		}
	}
}

func TestWritePlotData(t *testing.T) {
	env := testEnv(t)
	dir := t.TempDir()
	if err := WritePlotData(context.Background(), dir, env); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range entries {
		names[e.Name()] = true
	}
	for _, want := range []string{
		"fig1_maxmind_geolite_vs_maxmind_paid.tsv",
		"fig2_netacuity.tsv",
		"fig3.tsv",
		"fig4.tsv",
		"fig5_maxmind_paid_arin.tsv",
		"fig5_netacuity_ripencc.tsv",
	} {
		if !names[want] {
			t.Errorf("plot file %s missing (have %v)", want, names)
		}
	}
	// CDF files must be monotone step series reaching 1.0.
	data, err := os.ReadFile(dir + "/fig2_netacuity.tsv")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 10 {
		t.Fatalf("fig2 series suspiciously short: %d lines", len(lines))
	}
	var lastVal, lastCDF float64
	for _, line := range lines[2:] {
		var v, c float64
		if _, err := fmt.Sscanf(line, "%f\t%f", &v, &c); err != nil {
			t.Fatalf("bad series line %q: %v", line, err)
		}
		if v < lastVal || c < lastCDF {
			t.Fatalf("series not monotone at %q", line)
		}
		lastVal, lastCDF = v, c
	}
	if lastCDF < 0.999 {
		t.Errorf("CDF ends at %f, want 1.0", lastCDF)
	}
}

// TestEveryExperimentRuns executes all 14 artifacts and spot-checks their
// output for the paper's key row labels.
func TestEveryExperimentRuns(t *testing.T) {
	env := testEnv(t)
	markers := map[string][]string{
		"table1": {"DNS-based", "RTT-proximity", "RIPENCC", "cogentco.com"},
		"sec31":  {"Hostname churn", "1ms-RTT-proximity"},
		"sec32":  {"candidate addresses", "probes disqualified", "final dataset"},
		"sec4":   {"gazetteer", "within 40 km"},
		"sec51":  {"Pairwise country-level agreement", "All four databases agree"},
		"fig1":   {"identical coordinates", "MaxMind-GeoLite vs MaxMind-Paid"},
		"sec521": {"country accuracy", "NetAcuity"},
		"fig2":   {"Geolocation error", "IP2Location-Lite"},
		"fig3":   {"ARIN", "RIPENCC"},
		"fig4":   {"US", "Shared incorrect"},
		"fig5":   {"MaxMind-Paid", "NetAcuity", "ARIN"},
		"sec523": {"ARIN holds", "block-level"},
		"sec524": {"DNS-based acc", "RTT-proximity acc"},
		"rec":    {"NetAcuity"},
	}
	for _, e := range All() {
		var buf bytes.Buffer
		if err := RunOne(context.Background(), e, &buf, env); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		out := buf.String()
		if len(out) < 50 {
			t.Fatalf("%s output suspiciously short: %q", e.ID, out)
		}
		for _, m := range markers[e.ID] {
			if !strings.Contains(out, m) {
				t.Errorf("%s output missing %q", e.ID, m)
			}
		}
	}
}

func TestRunAll(t *testing.T) {
	env := testEnv(t)
	var buf bytes.Buffer
	if err := RunAll(context.Background(), &buf, env); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, e := range All() {
		if !strings.Contains(out, e.Title) {
			t.Errorf("RunAll output missing banner for %s", e.ID)
		}
	}
}

// TestPaperShapesHold asserts the qualitative findings the reproduction
// must deliver, end to end, at test scale. These are the "who wins, by
// roughly what factor" checks from the deliverable spec.
func TestPaperShapesHold(t *testing.T) {
	env := testEnv(t)
	acc := map[string]accTriple{}
	for _, db := range env.DBs {
		acc[db.Name()] = measureTriple(env, db.Name())
	}

	neta := acc["NetAcuity"]
	for _, other := range []string{"IP2Location-Lite", "MaxMind-GeoLite", "MaxMind-Paid"} {
		if neta.country <= acc[other].country {
			t.Errorf("NetAcuity country accuracy %.3f should lead %s (%.3f)",
				neta.country, other, acc[other].country)
		}
	}
	// MaxMind city coverage visibly partial; NetAcuity/IP2Location ~full.
	if acc["MaxMind-Paid"].cityCov > 0.8 || acc["MaxMind-GeoLite"].cityCov > 0.7 {
		t.Errorf("MaxMind city coverage too high: %.2f / %.2f",
			acc["MaxMind-Paid"].cityCov, acc["MaxMind-GeoLite"].cityCov)
	}
	if acc["NetAcuity"].cityCov < 0.95 || acc["IP2Location-Lite"].cityCov < 0.95 {
		t.Error("NetAcuity/IP2Location should have near-full city coverage")
	}
	// IP2Location is the least city-accurate.
	for _, other := range []string{"NetAcuity", "MaxMind-Paid", "MaxMind-GeoLite"} {
		if acc["IP2Location-Lite"].city >= acc[other].city {
			t.Errorf("IP2Location city accuracy %.3f should trail %s (%.3f)",
				acc["IP2Location-Lite"].city, other, acc[other].city)
		}
	}
}

type accTriple struct {
	country, city, cityCov float64
}

func measureTriple(env *Env, name string) accTriple {
	db := env.DB(name)
	var total, ctryAns, ctryOK, cityAns, within int
	for _, tg := range env.Targets {
		total++
		rec, ok := db.Lookup(tg.Addr)
		if !ok {
			continue
		}
		if rec.HasCountry() {
			ctryAns++
			if rec.Country == tg.Country {
				ctryOK++
			}
		}
		if rec.HasCity() {
			cityAns++
			if rec.Coord.WithinKm(tg.Truth, 40) {
				within++
			}
		}
	}
	return accTriple{
		country: frac(ctryOK, ctryAns),
		city:    frac(within, cityAns),
		cityCov: frac(cityAns, total),
	}
}

func frac(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestStabilityReport(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds the pipeline twice")
	}
	cfg := DefaultConfig()
	cfg.World.ASes = 200
	cfg.Atlas.Probes = 400
	cfg.OneMsProbes = 500
	var buf bytes.Buffer
	if err := StabilityReport(context.Background(), &buf, cfg, []int64{11, 12}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, m := range []string{"seed", "NetA", "invariants"} {
		if !strings.Contains(out, m) {
			t.Errorf("stability output missing %q", m)
		}
	}
	if strings.Count(out, "\n") < 6 {
		t.Errorf("stability output too short:\n%s", out)
	}
}

// TestRunAllConcurrentMatchesSequential pins the determinism guarantee:
// with the engine parallel, RunAll buffers per-experiment output and
// emits it in registry order, so the stream is byte-identical to a
// one-worker run.
func TestRunAllConcurrentMatchesSequential(t *testing.T) {
	env := testEnv(t)
	ctx := context.Background()

	core.SetParallelism(1)
	var serial bytes.Buffer
	if err := RunAll(ctx, &serial, env); err != nil {
		t.Fatal(err)
	}

	core.SetParallelism(4)
	defer core.SetParallelism(0)
	var parallel bytes.Buffer
	if err := RunAll(ctx, &parallel, env); err != nil {
		t.Fatal(err)
	}

	if serial.String() != parallel.String() {
		// Find the first diverging line for a readable failure.
		sl, pl := strings.Split(serial.String(), "\n"), strings.Split(parallel.String(), "\n")
		for i := 0; i < len(sl) && i < len(pl); i++ {
			if sl[i] != pl[i] {
				t.Fatalf("outputs diverge at line %d:\n  serial:   %q\n  parallel: %q", i, sl[i], pl[i])
			}
		}
		t.Fatalf("outputs differ in length: %d vs %d bytes", serial.Len(), parallel.Len())
	}
}
