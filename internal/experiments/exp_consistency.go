package experiments

import (
	"context"
	"fmt"
	"io"

	"routergeo/internal/core"
	"routergeo/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "sec4",
		Title: "§4: methodology checks — database city coordinates vs gazetteer, and across databases",
		Run:   runSec4,
	})
	register(Experiment{
		ID:    "sec51",
		Title: "§5.1: coverage and country-level consistency over the Ark-topo-router set",
		Run:   runSec51,
	})
	register(Experiment{
		ID:    "fig1",
		Title: "Figure 1: pairwise city-level distance CDFs over the Ark-topo-router set",
		Run:   runFig1,
	})
}

func runSec4(ctx context.Context, w io.Writer, env *Env) error {
	fmt.Fprintf(w, "Database city coordinates vs gazetteer (paper: within 40 km >99%% of the time):\n")
	for _, db := range env.DBs {
		chk := core.ValidateCityCoords(db, env.W.Gaz)
		fmt.Fprintf(w, "  %-18s %4d cities, within 40 km %s, unmatched %d\n",
			db.Name(), chk.Cities,
			stats.Pct(stats.Fraction(chk.Within40Km, chk.Cities-chk.Unmatched)), chk.Unmatched)
	}
	fmt.Fprintf(w, "\nSame city across database pairs (paper: within 40 km >99%%):\n")
	for i := 0; i < len(env.DBs); i++ {
		for j := i + 1; j < len(env.DBs); j++ {
			within, common := core.CrossDBCityCoords(env.DBs[i], env.DBs[j])
			fmt.Fprintf(w, "  %-18s vs %-18s: %4d common cities, within 40 km %s\n",
				env.DBs[i].Name(), env.DBs[j].Name(), common,
				stats.Pct(stats.Fraction(within, common)))
		}
	}
	return nil
}

func runSec51(ctx context.Context, w io.Writer, env *Env) error {
	fmt.Fprintf(w, "Ark-topo-router dataset: %d interface addresses (paper: 1,638K)\n\n", len(env.ArkAddrs))
	fmt.Fprintf(w, "Coverage (paper: IP2Loc/NetAcuity ≈100%%/≈100%%; MaxMind-GeoLite 99.3%%/43%%; MaxMind-Paid 99.3%%/61.6%%):\n")
	for _, db := range env.DBs {
		c := core.MeasureCoverage(ctx, db, env.ArkAddrs)
		fmt.Fprintf(w, "  %-18s country %s  city %s\n", db.Name(),
			stats.Pct(c.CountryPct()), stats.Pct(c.CityPct()))
	}

	fmt.Fprintf(w, "\nPairwise country-level agreement (paper: MaxMind pair 99.6%%, others 97.0–97.6%%):\n")
	for i := 0; i < len(env.DBs); i++ {
		for j := i + 1; j < len(env.DBs); j++ {
			agree, both := core.CountryAgreement(ctx, env.DBs[i], env.DBs[j], env.ArkAddrs)
			fmt.Fprintf(w, "  %-18s vs %-18s: %s of %d\n",
				env.DBs[i].Name(), env.DBs[j].Name(),
				stats.Pct(stats.Fraction(agree, both)), both)
		}
	}
	all, total := core.CountryAgreementAll(ctx, env.Providers(), env.ArkAddrs)
	fmt.Fprintf(w, "All four databases agree: %s of %d addresses (paper: 95.8%%)\n",
		stats.Pct(stats.Fraction(all, total)), total)
	return nil
}

func runFig1(ctx context.Context, w io.Writer, env *Env) error {
	subset := core.CityAnsweredInAll(ctx, env.Providers(), env.ArkAddrs)
	fmt.Fprintf(w, "Addresses with city answers in all four databases: %d (paper: ~692K of 1.64M)\n\n", len(subset))

	pairs := [][2]string{
		{"MaxMind-GeoLite", "MaxMind-Paid"},
		{"IP2Location-Lite", "NetAcuity"},
		{"MaxMind-Paid", "NetAcuity"},
		{"IP2Location-Lite", "MaxMind-Paid"},
	}
	for _, pair := range pairs {
		p := core.MeasurePairwiseCity(ctx, env.DB(pair[0]), env.DB(pair[1]), subset)
		fmt.Fprintf(w, "%s vs %s (n=%d):\n", pair[0], pair[1], p.Both)
		fmt.Fprintf(w, "  identical coordinates: %d (%s)   >40 km apart: %d (%s)\n",
			p.Identical, stats.Pct(stats.Fraction(p.Identical, p.Both)),
			p.Over40Km, stats.Pct(p.DisagreeOver40Pct()))
		if p.CDF.N() > 0 {
			fmt.Fprintf(w, "  distance CDF (identical pairs excluded): %s\n", p.CDF.Render(cdfPoints))
		}
	}
	fmt.Fprintf(w, "\nPaper's headline: MaxMind pair 68%% identical, 11.4%% >40 km; cross-vendor pairs ≥29%% >40 km.\n")
	return nil
}
