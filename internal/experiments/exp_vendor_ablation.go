package experiments

import (
	"context"
	"fmt"
	"io"

	"routergeo/internal/core"
	"routergeo/internal/geo"
	"routergeo/internal/groundtruth"
	"routergeo/internal/stats"
	"routergeo/internal/vendors"
)

func init() {
	registerExt(Experiment{
		ID:    "ext-vendors",
		Title: "Extension: vendor-pipeline ablation (which mechanism causes which finding?)",
		Run:   runExtVendors,
	})
}

// runExtVendors rebuilds vendor databases with single mechanisms removed
// and re-runs the paper's analyses, turning DESIGN.md's causal claims into
// measurements:
//
//   - NetAcuity without the DNS-hint pipeline must lose its §5.2.4
//     advantage on the DNS-based ground truth;
//   - MaxMind-Paid without SWIP must lose most of its wrong block-level
//     city answers in ARIN (§5.2.3);
//   - IP2Location with NetAcuity's correction pipeline must close most of
//     its accuracy gap, showing the gap is pipeline, not format.
func runExtVendors(ctx context.Context, w io.Writer, env *Env) error {
	in := vendors.Inputs{
		World:   env.W,
		Feed:    vendors.BuildFeed(env.W, vendors.DefaultFeedConfig()),
		Zone:    env.Zone,
		Decoder: env.Dec,
	}
	// 1. NetAcuity without hints.
	noHints := vendors.NetAcuity()
	noHints.Name = "NetAcuity-noHints"
	noHints.UseHints = false
	dbNoHints, err := vendors.Build(in, noHints)
	if err != nil {
		return err
	}

	byMethod := core.AccuracyByMethod(ctx, env.DB("NetAcuity"), env.Targets)
	byMethodAbl := core.AccuracyByMethod(ctx, dbNoHints, env.Targets)
	fmt.Fprintf(w, "NetAcuity hint-pipeline ablation (§5.2.4 causality):\n")
	fmt.Fprintf(w, "  %-22s DNS-based %s   RTT-proximity %s\n", "with hints",
		stats.Pct(byMethod[groundtruth.DNS].CityAccuracy()),
		stats.Pct(byMethod[groundtruth.RTT].CityAccuracy()))
	fmt.Fprintf(w, "  %-22s DNS-based %s   RTT-proximity %s\n", "without hints",
		stats.Pct(byMethodAbl[groundtruth.DNS].CityAccuracy()),
		stats.Pct(byMethodAbl[groundtruth.RTT].CityAccuracy()))
	gapWith := byMethod[groundtruth.DNS].CityAccuracy() - byMethod[groundtruth.RTT].CityAccuracy()
	gapWithout := byMethodAbl[groundtruth.DNS].CityAccuracy() - byMethodAbl[groundtruth.RTT].CityAccuracy()
	fmt.Fprintf(w, "  DNS-vs-RTT advantage: %+.1f points with hints, %+.1f without\n\n",
		100*gapWith, 100*gapWithout)

	// 2. MaxMind-Paid without SWIP.
	noSWIP := vendors.MaxMindPaid()
	noSWIP.Name = "MaxMind-Paid-noSWIP"
	noSWIP.UseSWIP = false
	dbNoSWIP, err := vendors.Build(in, noSWIP)
	if err != nil {
		return err
	}
	caseWith := core.RunARINCaseStudy(env.DB("MaxMind-Paid"), env.Targets)
	caseWithout := core.RunARINCaseStudy(dbNoSWIP, env.Targets)
	fmt.Fprintf(w, "MaxMind-Paid SWIP ablation (§5.2.3 causality):\n")
	fmt.Fprintf(w, "  %-22s US-ARIN city answers %4d, wrong (>40 km) %s\n", "with SWIP",
		caseWith.USARINCityAnswered,
		stats.Pct(stats.Fraction(caseWith.USARINCityWrong, caseWith.USARINCityAnswered)))
	fmt.Fprintf(w, "  %-22s US-ARIN city answers %4d, wrong (>40 km) %s\n", "without SWIP",
		caseWithout.USARINCityAnswered,
		stats.Pct(stats.Fraction(caseWithout.USARINCityWrong, caseWithout.USARINCityAnswered)))
	fmt.Fprintf(w, "  (SWIP entries filed at headquarters are the wrong-city block records)\n\n")

	// 3. IP2Location with a NetAcuity-grade measurement pipeline.
	upgraded := vendors.IP2LocationLite()
	upgraded.Name = "IP2Location-upgraded"
	na := vendors.NetAcuity()
	upgraded.CorrectionRate = na.CorrectionRate
	upgraded.CorrectionCityAcc = na.CorrectionCityAcc
	upgraded.CorrectionTransitFactor = na.CorrectionTransitFactor
	dbUpgraded, err := vendors.Build(in, upgraded)
	if err != nil {
		return err
	}
	accBase := core.MeasureAccuracy(ctx, env.DB("IP2Location-Lite"), env.Targets)
	accUp := core.MeasureAccuracy(ctx, dbUpgraded, env.Targets)
	accNA := core.MeasureAccuracy(ctx, env.DB("NetAcuity"), env.Targets)
	fmt.Fprintf(w, "IP2Location correction-pipeline upgrade:\n")
	fmt.Fprintf(w, "  %-22s city accuracy %s\n", "as shipped", stats.Pct(accBase.CityAccuracy()))
	fmt.Fprintf(w, "  %-22s city accuracy %s\n", "NetAcuity-grade fixes", stats.Pct(accUp.CityAccuracy()))
	fmt.Fprintf(w, "  %-22s city accuracy %s\n", "NetAcuity itself", stats.Pct(accNA.CityAccuracy()))
	fmt.Fprintf(w, "  (the vendor gap is measurement investment, not database format)\n\n")

	// Regional sanity: the ablations must not change LACNIC, where no
	// mechanism under test operates (Figure 3's 0% row).
	withRIR := core.AccuracyByRIR(ctx, env.DB("MaxMind-Paid"), env.Targets)[geo.LACNIC]
	withoutRIR := core.AccuracyByRIR(ctx, dbNoSWIP, env.Targets)[geo.LACNIC]
	fmt.Fprintf(w, "control: MaxMind-Paid LACNIC country accuracy %s with SWIP, %s without\n",
		stats.Pct(withRIR.CountryAccuracy()), stats.Pct(withoutRIR.CountryAccuracy()))
	return nil
}
