// Package traceroute runs simulated traceroutes over a netsim.World.
//
// Both measurement systems the paper consumes are built on it: CAIDA
// Ark's topology sweeps (internal/ark) and RIPE Atlas's built-in
// measurements (internal/atlas). A measurement source is attached to a
// router; paths follow the world's link graph along minimum-delay routes
// (one shortest-path tree per source, so tracing to every destination
// from one vantage point costs a single Dijkstra run); each hop reveals
// the *ingress* interface of the router it crosses, which is what real
// traceroute shows and what makes the collected interface sets
// ingress-biased exactly like Ark's.
package traceroute

import (
	"container/heap"
	"math"
	"math/rand"

	"routergeo/internal/netsim"
	"routergeo/internal/rtt"
)

// Hop is one line of a traceroute result.
type Hop struct {
	Router netsim.RouterID
	// Iface is the ingress interface whose address appears in the result.
	// It is -1 for the source router itself (a traceroute never reveals
	// its own first router's upstream side).
	Iface netsim.IfaceID
	// RTTMs is the sampled round-trip time from the source to this hop.
	RTTMs float64
}

// Tree is a single-source shortest-delay tree over the world's routers.
type Tree struct {
	Src netsim.RouterID

	parent      []netsim.RouterID
	parentIface []netsim.IfaceID // ingress iface at node, on the link from parent
	distMs      []float64        // one-way propagation from Src
	hops        []int32
}

// Engine runs traceroutes with a given delay model.
type Engine struct {
	World *netsim.World
	Model rtt.Model
}

// New returns an engine with the default delay model.
func New(w *netsim.World) *Engine {
	return &Engine{World: w, Model: rtt.DefaultModel()}
}

// BuildTree computes the shortest-delay tree from src. Cost is one
// Dijkstra run (O(E log V)); reuse the tree for every destination.
func (e *Engine) BuildTree(src netsim.RouterID) *Tree {
	n := e.World.NumRouters()
	t := &Tree{
		Src:         src,
		parent:      make([]netsim.RouterID, n),
		parentIface: make([]netsim.IfaceID, n),
		distMs:      make([]float64, n),
		hops:        make([]int32, n),
	}
	for i := range t.parent {
		t.parent[i] = -1
		t.parentIface[i] = -1
		t.distMs[i] = math.Inf(1)
	}
	t.distMs[src] = 0

	pq := &nodeQueue{{router: src, dist: 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(node)
		if cur.dist > t.distMs[cur.router] {
			continue // stale entry
		}
		for _, h := range e.World.Neighbors(cur.router) {
			nd := cur.dist + h.OneWayMs
			if nd < t.distMs[h.Peer] {
				t.distMs[h.Peer] = nd
				t.parent[h.Peer] = cur.router
				t.parentIface[h.Peer] = h.PeerIface
				t.hops[h.Peer] = t.hops[cur.router] + 1
				heap.Push(pq, node{router: h.Peer, dist: nd})
			}
		}
	}
	return t
}

// Parent returns the previous router on the tree path from the source to
// r, or -1 for the source itself. Because the world's links are symmetric,
// a tree rooted at a *destination* doubles as a reverse-path table: walking
// Parent pointers from any router yields that router's forward path to the
// root. internal/atlas exploits this to serve thousands of probes with one
// Dijkstra run per target.
func (t *Tree) Parent(r netsim.RouterID) netsim.RouterID { return t.parent[r] }

// ParentIface returns the interface *at r* on the link between r and its
// parent, or -1 at the root.
func (t *Tree) ParentIface(r netsim.RouterID) netsim.IfaceID { return t.parentIface[r] }

// Reachable reports whether dst is reachable from the tree's source.
func (t *Tree) Reachable(dst netsim.RouterID) bool {
	return !math.IsInf(t.distMs[dst], 1)
}

// DistMs returns the one-way propagation delay to dst.
func (t *Tree) DistMs(dst netsim.RouterID) float64 { return t.distMs[dst] }

// HopCount returns the number of links on the path to dst.
func (t *Tree) HopCount(dst netsim.RouterID) int { return int(t.hops[dst]) }

// Path returns the router sequence from the source to dst, inclusive.
// It returns nil when dst is unreachable.
func (t *Tree) Path(dst netsim.RouterID) []netsim.RouterID {
	if !t.Reachable(dst) {
		return nil
	}
	out := make([]netsim.RouterID, 0, t.hops[dst]+1)
	for r := dst; ; r = t.parent[r] {
		out = append(out, r)
		if r == t.Src {
			break
		}
	}
	// Reverse into source-to-destination order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Trace produces the hop list a traceroute from the tree's source to dst
// would report. baseMs is added to every RTT (the source's access-link
// delay — zero for Ark monitors colocated with their first router,
// the probe's last-mile for Atlas). Per-hop RTTs are sampled with
// independent queueing noise but share the deterministic propagation
// component, so RTTs increase (almost) monotonically along the path like
// real traceroutes. Returns nil when dst is unreachable.
func (e *Engine) Trace(rng *rand.Rand, t *Tree, dst netsim.RouterID, baseMs float64) []Hop {
	routers := t.Path(dst)
	if routers == nil {
		return nil
	}
	out := make([]Hop, 0, len(routers))
	for i, r := range routers {
		var iface netsim.IfaceID = -1
		if i > 0 {
			iface = t.parentIface[r]
		}
		prop := 2*t.distMs[r] + float64(i)*e.Model.PerHopMs
		rtt := baseMs + prop + rng.ExpFloat64()*e.Model.QueueMeanMs
		out = append(out, Hop{Router: r, Iface: iface, RTTMs: rtt})
	}
	return out
}

// node and nodeQueue implement the Dijkstra priority queue.
type node struct {
	router netsim.RouterID
	dist   float64
}

type nodeQueue []node

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(node)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}
