package traceroute

import (
	"math/rand"
	"testing"

	"routergeo/internal/netsim"
	"routergeo/internal/rtt"
)

var cachedWorld *netsim.World

func testWorld(t *testing.T) *netsim.World {
	t.Helper()
	if cachedWorld != nil {
		return cachedWorld
	}
	cfg := netsim.DefaultConfig()
	cfg.Seed = 42
	cfg.ASes = 150
	w, err := netsim.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cachedWorld = w
	return w
}

func TestTreeReachesEveryRouter(t *testing.T) {
	w := testWorld(t)
	e := New(w)
	tree := e.BuildTree(0)
	for r := 0; r < w.NumRouters(); r++ {
		if !tree.Reachable(netsim.RouterID(r)) {
			t.Fatalf("router %d unreachable; world should be connected", r)
		}
	}
}

func TestPathEndpointsAndContinuity(t *testing.T) {
	w := testWorld(t)
	e := New(w)
	tree := e.BuildTree(0)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		dst := netsim.RouterID(rng.Intn(w.NumRouters()))
		path := tree.Path(dst)
		if path[0] != 0 || path[len(path)-1] != dst {
			t.Fatalf("path endpoints wrong: %v -> %v", path[0], path[len(path)-1])
		}
		// Every consecutive pair must share a link.
		for i := 1; i < len(path); i++ {
			found := false
			for _, h := range w.Neighbors(path[i-1]) {
				if h.Peer == path[i] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("path step %v->%v is not a link", path[i-1], path[i])
			}
		}
		if len(path) != tree.HopCount(dst)+1 {
			t.Fatalf("HopCount %d inconsistent with path length %d", tree.HopCount(dst), len(path))
		}
	}
}

func TestShortestDistances(t *testing.T) {
	// Dijkstra distances must satisfy the triangle property over links:
	// dist[b] <= dist[a] + w(a,b) for every link (a,b).
	w := testWorld(t)
	e := New(w)
	tree := e.BuildTree(0)
	for r := 0; r < w.NumRouters(); r++ {
		for _, h := range w.Neighbors(netsim.RouterID(r)) {
			if tree.DistMs(h.Peer) > tree.DistMs(netsim.RouterID(r))+h.OneWayMs+1e-9 {
				t.Fatalf("relaxation violated at link %d->%d", r, h.Peer)
			}
		}
	}
}

func TestTraceRevealsIngressInterfaces(t *testing.T) {
	w := testWorld(t)
	e := New(w)
	tree := e.BuildTree(0)
	rng := rand.New(rand.NewSource(2))
	dst := netsim.RouterID(w.NumRouters() - 1)
	hops := e.Trace(rng, tree, dst, 0)
	if hops == nil {
		t.Fatal("trace failed")
	}
	if hops[0].Iface != -1 {
		t.Error("source hop must not reveal an interface")
	}
	for _, h := range hops[1:] {
		if h.Iface < 0 {
			t.Fatal("intermediate hop without interface")
		}
		ifc := w.Interfaces[h.Iface]
		if ifc.Router != h.Router {
			t.Fatalf("revealed interface %d not on router %d", h.Iface, h.Router)
		}
	}
}

func TestTraceRTTsRespectPropagation(t *testing.T) {
	w := testWorld(t)
	e := New(w)
	tree := e.BuildTree(0)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		dst := netsim.RouterID(rng.Intn(w.NumRouters()))
		base := 1.5
		for _, h := range e.Trace(rng, tree, dst, base) {
			floor := base + 2*tree.DistMs(h.Router)
			if h.RTTMs < floor-1e-9 {
				t.Fatalf("hop RTT %.3f below propagation floor %.3f", h.RTTMs, floor)
			}
		}
	}
}

func TestTraceToSelf(t *testing.T) {
	w := testWorld(t)
	e := New(w)
	tree := e.BuildTree(7)
	hops := e.Trace(rand.New(rand.NewSource(4)), tree, 7, 0)
	if len(hops) != 1 || hops[0].Router != 7 {
		t.Fatalf("self-trace = %+v", hops)
	}
}

func TestNearbyDestinationHasSmallRTT(t *testing.T) {
	// A destination one link away must show an RTT close to twice the link
	// delay — the property the 0.5 ms proximity rule exploits.
	w := testWorld(t)
	e := New(w)
	src := netsim.RouterID(0)
	tree := e.BuildTree(src)
	var nearest netsim.RouterID = -1
	bestD := 0.0
	for _, h := range w.Neighbors(src) {
		if nearest < 0 || tree.DistMs(h.Peer) < bestD {
			nearest, bestD = h.Peer, tree.DistMs(h.Peer)
		}
	}
	rng := rand.New(rand.NewSource(5))
	hops := e.Trace(rng, tree, nearest, 0)
	last := hops[len(hops)-1]
	if last.RTTMs < 2*bestD {
		t.Fatalf("RTT %.3f under propagation %.3f", last.RTTMs, 2*bestD)
	}
	if last.RTTMs > 2*bestD+5 {
		t.Fatalf("RTT %.3f implausibly inflated for a direct link of %.3f ms", last.RTTMs, bestD)
	}
}

func TestProximityRuleSoundOverTraces(t *testing.T) {
	// For every hop of every trace: if the RTT (minus the known base) is
	// under 0.5 ms, the hop router must be within 50 km of the source.
	// This is the end-to-end soundness of the paper's §2.3.2 rule in our
	// simulator.
	w := testWorld(t)
	e := New(w)
	rng := rand.New(rand.NewSource(6))
	srcs := []netsim.RouterID{0, 11, 77}
	for _, src := range srcs {
		tree := e.BuildTree(src)
		srcCoord := w.Routers[src].Coord
		for trial := 0; trial < 40; trial++ {
			dst := netsim.RouterID(rng.Intn(w.NumRouters()))
			for _, h := range e.Trace(rng, tree, dst, 0) {
				if h.RTTMs < 0.5 {
					d := w.Routers[h.Router].Coord.DistanceKm(srcCoord)
					if d > rtt.MaxDistanceKmForRTT(0.5) {
						t.Fatalf("hop with %.3f ms RTT is %.1f km away", h.RTTMs, d)
					}
				}
			}
		}
	}
}

func BenchmarkBuildTree(b *testing.B) {
	cfg := netsim.DefaultConfig()
	cfg.Seed = 42
	cfg.ASes = 150
	w, err := netsim.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	e := New(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.BuildTree(netsim.RouterID(i % w.NumRouters()))
	}
}
