package gazetteer

import (
	"math/rand"
	"strings"
	"testing"

	"routergeo/internal/geo"
)

func TestTableIntegrity(t *testing.T) {
	g := New()

	seenISO2 := map[string]bool{}
	for _, c := range g.Countries() {
		if len(c.ISO2) != 2 || c.ISO2 != strings.ToUpper(c.ISO2) {
			t.Errorf("country %q: bad ISO2 %q", c.Name, c.ISO2)
		}
		if len(c.ISO3) != 3 {
			t.Errorf("country %q: bad ISO3 %q", c.Name, c.ISO3)
		}
		if seenISO2[c.ISO2] {
			t.Errorf("duplicate country ISO2 %q", c.ISO2)
		}
		seenISO2[c.ISO2] = true
		if !c.Centroid.Valid() {
			t.Errorf("country %q: invalid centroid %v", c.Name, c.Centroid)
		}
		if c.RIR == geo.RIRUnknown {
			t.Errorf("country %q: unknown RIR", c.Name)
		}
	}

	seenCity := map[string]bool{}
	seenIATA := map[string]string{}
	for _, c := range g.Cities() {
		if !seenISO2[c.Country] {
			t.Errorf("city %q references unknown country %q", c.Name, c.Country)
		}
		key := c.Country + "/" + c.Name
		if seenCity[key] {
			t.Errorf("duplicate city %q", key)
		}
		seenCity[key] = true
		if !c.Coord.Valid() || c.Coord.IsZero() {
			t.Errorf("city %q: invalid coordinates %v", key, c.Coord)
		}
		if c.IATA != "" {
			if len(c.IATA) != 3 || c.IATA != strings.ToUpper(c.IATA) {
				t.Errorf("city %q: bad IATA %q", key, c.IATA)
			}
			if prev, dup := seenIATA[c.IATA]; dup {
				t.Errorf("IATA %q assigned to both %q and %q", c.IATA, prev, key)
			}
			seenIATA[c.IATA] = key
		}
		if c.Class < Mega || c.Class > Small {
			t.Errorf("city %q: bad population class %d", key, c.Class)
		}
	}
}

func TestCityCoordinatesPlausible(t *testing.T) {
	// Every city must be within ~3000 km of its country's centroid. That is a
	// loose sanity bound (Russia/US are huge) but catches sign errors and
	// swapped lat/lon, the classic data-entry bugs.
	g := New()
	for _, c := range g.Cities() {
		country, ok := g.Country(c.Country)
		if !ok {
			continue
		}
		limit := 3000.0
		switch c.Country {
		case "US": // Honolulu and Anchorage are far from the CONUS centroid
			limit = 6500
		case "RU", "CA", "AU", "BR", "CN":
			limit = 5500
		}
		if d := c.Coord.DistanceKm(country.Centroid); d > limit {
			t.Errorf("city %s/%s is %.0f km from the %s centroid", c.Country, c.Name, d, country.Name)
		}
	}
}

func TestScaleOfTables(t *testing.T) {
	g := New()
	if n := len(g.Countries()); n < 70 {
		t.Errorf("only %d countries embedded; want >= 70 for regional analyses", n)
	}
	if n := len(g.Cities()); n < 200 {
		t.Errorf("only %d cities embedded; want >= 200", n)
	}
	// Every RIR needs at least a handful of countries for the regional
	// breakdowns (Table 1, Figures 3 and 5).
	for _, r := range geo.RIRs {
		if n := len(g.CountriesIn(r)); n < 3 {
			t.Errorf("RIR %v has only %d countries", r, n)
		}
	}
	// The paper's Figure 4 needs its 20 named countries in the world.
	for _, cc := range []string{"US", "DE", "GB", "IT", "FR", "NL", "JP", "CA", "ES", "SG",
		"CH", "RU", "PL", "BG", "AU", "CZ", "SE", "RO", "UA", "HK"} {
		if _, ok := g.Country(cc); !ok {
			t.Errorf("missing Figure-4 country %s", cc)
		}
		if len(g.CitiesIn(cc)) == 0 {
			t.Errorf("Figure-4 country %s has no cities", cc)
		}
	}
}

func TestLookups(t *testing.T) {
	g := New()

	c, ok := g.Country("us")
	if !ok || c.Name != "United States" || c.RIR != geo.ARIN {
		t.Fatalf("Country(us) = %+v, %v", c, ok)
	}
	if _, ok := g.Country("XX"); ok {
		t.Error("Country(XX) should not exist")
	}

	city, ok := g.City("US", "dallas")
	if !ok || city.IATA != "DFW" {
		t.Fatalf("City(US, dallas) = %+v, %v", city, ok)
	}
	if _, ok := g.City("DE", "Dallas"); ok {
		t.Error("Dallas should not be in Germany")
	}

	byIATA, ok := g.CityByIATA("dfw")
	if !ok || byIATA.Name != "Dallas" {
		t.Fatalf("CityByIATA(dfw) = %+v, %v", byIATA, ok)
	}

	if g.RIROf("JP") != geo.APNIC {
		t.Error("Japan should be in APNIC")
	}
	if g.RIROf("ZZ") != geo.RIRUnknown {
		t.Error("unknown country should map to RIRUnknown")
	}
}

func TestCityNameCollisionAcrossCountries(t *testing.T) {
	// Birmingham exists in both US and GB; lookups must disambiguate by
	// country, mirroring the paper's GeoNames matching that includes region
	// and country (§4).
	g := New()
	us, okUS := g.City("US", "Birmingham")
	gb, okGB := g.City("GB", "Birmingham")
	if !okUS || !okGB {
		t.Fatal("expected Birmingham in both US and GB")
	}
	if us.Coord.DistanceKm(gb.Coord) < 5000 {
		t.Errorf("US and GB Birmingham suspiciously close: %v vs %v", us.Coord, gb.Coord)
	}
}

func TestNearest(t *testing.T) {
	g := New()
	// A point 10 km east of Frankfurt should resolve to Frankfurt.
	fra, _ := g.City("DE", "Frankfurt")
	near := fra.Coord.Offset(10, 90)
	city, d := g.Nearest(near)
	if city.Name != "Frankfurt" {
		t.Errorf("Nearest = %s, want Frankfurt", city.Name)
	}
	if d < 9 || d > 11 {
		t.Errorf("Nearest distance = %.1f, want ~10", d)
	}
}

func TestNearCountryCentroid(t *testing.T) {
	g := New()
	// The paper's German example: N51 E9.
	if c, ok := g.NearCountryCentroid(geo.Coordinate{Lat: 51.0, Lon: 9.0}, 5); !ok || c.ISO2 != "DE" {
		t.Errorf("N51 E9 should match the German centroid, got %+v %v", c, ok)
	}
	// Berlin is not near any centroid within 5 km.
	berlin, _ := g.City("DE", "Berlin")
	if _, ok := g.NearCountryCentroid(berlin.Coord, 5); ok {
		t.Error("Berlin should not be within 5 km of a country centroid")
	}
}

func TestSampleCityRespectsCountry(t *testing.T) {
	g := New()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		c := g.SampleCity(rng, "JP")
		if c.Country != "JP" {
			t.Fatalf("SampleCity(JP) returned %s/%s", c.Country, c.Name)
		}
	}
}

func TestSampleCityWeighting(t *testing.T) {
	// Mega cities should be sampled noticeably more often than small ones.
	g := New()
	rng := rand.New(rand.NewSource(8))
	counts := map[string]int{}
	for i := 0; i < 20000; i++ {
		c := g.SampleCity(rng, "US")
		counts[c.Name]++
	}
	if counts["New York"] < counts["San Luis Obispo"] {
		t.Errorf("weighting broken: NYC %d <= SLO %d", counts["New York"], counts["San Luis Obispo"])
	}
}

func TestSampleCountryRespectsRIR(t *testing.T) {
	g := New()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		c := g.SampleCountry(rng, geo.AFRINIC)
		if c.RIR != geo.AFRINIC {
			t.Fatalf("SampleCountry(AFRINIC) returned %s (%v)", c.ISO2, c.RIR)
		}
	}
}

func TestSampleCityPanicsOnUnknownCountry(t *testing.T) {
	g := New()
	rng := rand.New(rand.NewSource(10))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown country")
		}
	}()
	g.SampleCity(rng, "ZZ")
}

func TestSampleDeterminism(t *testing.T) {
	g := New()
	a := g.SampleCity(rand.New(rand.NewSource(42)), "")
	b := g.SampleCity(rand.New(rand.NewSource(42)), "")
	if a != b {
		t.Errorf("same seed gave different cities: %v vs %v", a, b)
	}
}
