// Package gazetteer is the reproduction's stand-in for the GeoNames
// geographical database the paper uses as a third-party coordinate
// reference (§4), and doubles as the world model every simulator draws
// from: countries with ISO codes, RIR membership and "default country
// coordinates" (the country-centroid positions the paper's probe filter
// looks for, §3.2), and cities with coordinates, IATA airport codes and a
// coarse population class.
//
// All data is embedded; the package has no I/O. Lookups are case-insensitive
// on names and exact on ISO codes.
package gazetteer

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"routergeo/internal/geo"
)

// Country describes one country known to the gazetteer.
type Country struct {
	ISO2     string         // ISO 3166-1 alpha-2, e.g. "US"
	ISO3     string         // ISO 3166-1 alpha-3, e.g. "USA"
	Name     string         // English short name
	Centroid geo.Coordinate // the "default country coordinates" (§3.2)
	RIR      geo.RIR        // registry that serves this country
}

// PopulationClass buckets cities by rough size; it drives sampling weights
// in the world builder (bigger cities host more routers, probes and PoPs).
type PopulationClass uint8

const (
	// Mega cities: >5M metro population (weight 8).
	Mega PopulationClass = iota + 1
	// Large cities: 1-5M (weight 4).
	Large
	// Medium cities: 200k-1M (weight 2).
	Medium
	// Small cities: <200k (weight 1).
	Small
)

// Weight returns the sampling weight used when the world builder picks
// cities for PoPs and probes.
func (p PopulationClass) Weight() int {
	switch p {
	case Mega:
		return 8
	case Large:
		return 4
	case Medium:
		return 2
	default:
		return 1
	}
}

// City describes one city known to the gazetteer.
type City struct {
	Name    string          // English name, unique within a country here
	Country string          // ISO2 of the containing country
	Coord   geo.Coordinate  // city-centre coordinates
	IATA    string          // primary airport code ("" if none embedded)
	Class   PopulationClass // rough size bucket
}

// Gazetteer is an immutable, indexed view over the embedded world data.
type Gazetteer struct {
	countries  []Country
	cities     []City
	byISO2     map[string]int
	cityKey    map[string]int // "cc/lowername" -> index into cities
	byIATA     map[string]int
	citiesByCC map[string][]int
}

// New returns a gazetteer over the embedded country and city tables.
// The returned value is safe for concurrent use.
func New() *Gazetteer {
	g := &Gazetteer{
		countries:  countryTable,
		cities:     cityTable,
		byISO2:     make(map[string]int, len(countryTable)),
		cityKey:    make(map[string]int, len(cityTable)),
		byIATA:     make(map[string]int, len(cityTable)),
		citiesByCC: make(map[string][]int, len(countryTable)),
	}
	for i, c := range g.countries {
		g.byISO2[c.ISO2] = i
	}
	for i, c := range g.cities {
		g.cityKey[cityKey(c.Country, c.Name)] = i
		if c.IATA != "" {
			g.byIATA[c.IATA] = i
		}
		g.citiesByCC[c.Country] = append(g.citiesByCC[c.Country], i)
	}
	return g
}

func cityKey(cc, name string) string {
	return cc + "/" + strings.ToLower(name)
}

// Countries returns all countries, ordered by ISO2.
func (g *Gazetteer) Countries() []Country {
	out := make([]Country, len(g.countries))
	copy(out, g.countries)
	sort.Slice(out, func(i, j int) bool { return out[i].ISO2 < out[j].ISO2 })
	return out
}

// Cities returns a copy of every embedded city.
func (g *Gazetteer) Cities() []City {
	out := make([]City, len(g.cities))
	copy(out, g.cities)
	return out
}

// Country looks a country up by ISO2 code.
func (g *Gazetteer) Country(iso2 string) (Country, bool) {
	i, ok := g.byISO2[strings.ToUpper(iso2)]
	if !ok {
		return Country{}, false
	}
	return g.countries[i], true
}

// RIROf returns the registry serving the country with the given ISO2 code,
// or geo.RIRUnknown for countries the gazetteer does not know.
func (g *Gazetteer) RIROf(iso2 string) geo.RIR {
	c, ok := g.Country(iso2)
	if !ok {
		return geo.RIRUnknown
	}
	return c.RIR
}

// City looks a city up by country code and name (case-insensitive).
// This mirrors the paper's GeoNames matching, which includes region and
// country because city names collide across the world (§4).
func (g *Gazetteer) City(iso2, name string) (City, bool) {
	i, ok := g.cityKey[cityKey(strings.ToUpper(iso2), name)]
	if !ok {
		return City{}, false
	}
	return g.cities[i], true
}

// CityByIATA looks a city up by its airport code.
func (g *Gazetteer) CityByIATA(code string) (City, bool) {
	i, ok := g.byIATA[strings.ToUpper(code)]
	if !ok {
		return City{}, false
	}
	return g.cities[i], true
}

// CitiesIn returns the cities of one country, in table order.
func (g *Gazetteer) CitiesIn(iso2 string) []City {
	idx := g.citiesByCC[strings.ToUpper(iso2)]
	out := make([]City, len(idx))
	for i, j := range idx {
		out[i] = g.cities[j]
	}
	return out
}

// CountriesIn returns the ISO2 codes of every country served by the given
// registry, ordered alphabetically.
func (g *Gazetteer) CountriesIn(r geo.RIR) []string {
	var out []string
	for _, c := range g.countries {
		if c.RIR == r {
			out = append(out, c.ISO2)
		}
	}
	sort.Strings(out)
	return out
}

// Nearest returns the embedded city closest to p and its distance in km.
// It scans linearly; the table is small enough (a few hundred entries) that
// anything cleverer would be noise.
func (g *Gazetteer) Nearest(p geo.Coordinate) (City, float64) {
	best := -1
	bestD := 0.0
	for i := range g.cities {
		d := g.cities[i].Coord.DistanceKm(p)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return g.cities[best], bestD
}

// NearCountryCentroid reports whether p lies within withinKm of any
// country's default coordinates — the check the paper uses to disqualify
// probes parked on default country coordinates (§3.2).
func (g *Gazetteer) NearCountryCentroid(p geo.Coordinate, withinKm float64) (Country, bool) {
	for _, c := range g.countries {
		if c.Centroid.WithinKm(p, withinKm) {
			return c, true
		}
	}
	return Country{}, false
}

// SampleCity picks a city at random, weighted by population class, optionally
// restricted to one country (iso2 != ""). It panics if the restriction
// matches no city, which indicates a programming error in the caller.
func (g *Gazetteer) SampleCity(rng *rand.Rand, iso2 string) City {
	var pool []int
	if iso2 == "" {
		pool = make([]int, len(g.cities))
		for i := range pool {
			pool[i] = i
		}
	} else {
		pool = g.citiesByCC[strings.ToUpper(iso2)]
	}
	if len(pool) == 0 {
		panic(fmt.Sprintf("gazetteer: no cities for country %q", iso2))
	}
	total := 0
	for _, i := range pool {
		total += g.cities[i].Class.Weight()
	}
	n := rng.Intn(total)
	for _, i := range pool {
		n -= g.cities[i].Class.Weight()
		if n < 0 {
			return g.cities[i]
		}
	}
	return g.cities[pool[len(pool)-1]]
}

// SampleCountry picks a country at random, weighted by how many cities it
// has embedded (a crude but serviceable proxy for Internet footprint),
// optionally restricted to one registry (r != geo.RIRUnknown).
func (g *Gazetteer) SampleCountry(rng *rand.Rand, r geo.RIR) Country {
	var pool []Country
	for _, c := range g.countries {
		if r != geo.RIRUnknown && c.RIR != r {
			continue
		}
		pool = append(pool, c)
	}
	if len(pool) == 0 {
		panic(fmt.Sprintf("gazetteer: no countries in RIR %v", r))
	}
	total := 0
	for _, c := range pool {
		total += len(g.citiesByCC[c.ISO2]) + 1
	}
	n := rng.Intn(total)
	for _, c := range pool {
		n -= len(g.citiesByCC[c.ISO2]) + 1
		if n < 0 {
			return c
		}
	}
	return pool[len(pool)-1]
}
